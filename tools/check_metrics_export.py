#!/usr/bin/env python3
"""CI validator for the ST_METRICS_EXPORT Prometheus snapshot file.

Reads the text-exposition file the MetricsExporter publishes (atomic
tmp+rename, so a scrape never sees a torn file) and checks:

  - every non-comment line parses as `name[{labels}] value`;
  - every required series family (--require, repeatable) is present;
  - every histogram family is internally consistent: `le` bucket
    values cumulative and nondecreasing, `+Inf` bucket == `_count`;
  - with --scrapes N > 1, the file is re-read every --interval-s and
    counters (`_total` series) never move backwards -- the contract a
    real scraper's rate() depends on.

Exit codes: 0 pass, 1 validation failure, 2 unreadable/malformed file.
"""

import argparse
import math
import re
import sys
import time

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
LE_RE = re.compile(r'le="([^"]+)"')


def parse_exposition(path):
    """Return {series_name: [(labels, value)]} preserving file order."""
    series = {}
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"metrics-export: cannot read {path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    for n, line in enumerate(lines, 1):
        if not line or line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            print(f"metrics-export: {path}:{n}: unparseable sample "
                  f"line: {line!r}", file=sys.stderr)
            sys.exit(2)
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        try:
            v = float(value)
        except ValueError:
            print(f"metrics-export: {path}:{n}: non-numeric value "
                  f"{value!r}", file=sys.stderr)
            sys.exit(2)
        if math.isnan(v):
            print(f"metrics-export: {path}:{n}: NaN value",
                  file=sys.stderr)
            sys.exit(2)
        series.setdefault(name, []).append((labels, v))
    return series


def check_histograms(series):
    """Bucket cumulativity + +Inf == _count for every histogram."""
    failures = []
    for name, samples in series.items():
        if not name.endswith("_bucket"):
            continue
        family = name[:-len("_bucket")]
        prev = -1.0
        inf_value = None
        for labels, value in samples:
            le = LE_RE.search(labels)
            if not le:
                failures.append(f"{name}: bucket sample without an "
                                f"le label: {labels!r}")
                continue
            if value < prev:
                failures.append(
                    f"{name}: cumulative bucket counts decrease at "
                    f"le={le.group(1)} ({value} < {prev})")
            prev = value
            if le.group(1) == "+Inf":
                inf_value = value
        if inf_value is None:
            failures.append(f"{name}: no +Inf bucket")
            continue
        count = series.get(f"{family}_count")
        if not count:
            failures.append(f"{family}: has buckets but no _count")
        elif count[0][1] != inf_value:
            failures.append(
                f"{family}: +Inf bucket {inf_value} != _count "
                f"{count[0][1]}")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("path", help="exported .prom file to validate")
    ap.add_argument("--require", action="append", default=[],
                    help="series name that must be present "
                         "(repeatable)")
    ap.add_argument("--scrapes", type=int, default=1,
                    help="number of reads; >1 also checks counter "
                         "monotonicity between reads (default 1)")
    ap.add_argument("--interval-s", type=float, default=0.5,
                    help="sleep between scrapes (default 0.5)")
    args = ap.parse_args()

    failures = []
    prev_counters = None
    for scrape in range(max(1, args.scrapes)):
        if scrape:
            time.sleep(args.interval_s)
        series = parse_exposition(args.path)
        print(f"metrics-export: scrape {scrape + 1}: "
              f"{len(series)} series families parsed")

        for required in args.require:
            if required not in series:
                failures.append(
                    f"scrape {scrape + 1}: required series "
                    f"{required!r} missing")

        failures += [f"scrape {scrape + 1}: {f}"
                     for f in check_histograms(series)]

        counters = {name: samples[0][1]
                    for name, samples in series.items()
                    if name.endswith("_total")}
        if prev_counters is not None:
            for name, value in counters.items():
                before = prev_counters.get(name)
                if before is not None and value < before:
                    failures.append(
                        f"scrape {scrape + 1}: counter {name} went "
                        f"backwards ({before} -> {value})")
        prev_counters = counters

    if failures:
        for f in failures:
            print(f"metrics-export: FAIL: {f}", file=sys.stderr)
        sys.exit(1)
    print("metrics-export: pass")


if __name__ == "__main__":
    main()
