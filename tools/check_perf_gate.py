#!/usr/bin/env python3
"""CI perf gate for the parallel engines.

Reads one or more (bench --json report, committed baseline) pairs --
repeat --report/--baseline to gate several benches in one invocation,
e.g. BENCH_parallel.json for the pipelined batch engine and
BENCH_grl.json for the conservative-parallel GRL event engine -- and
fails the build when a measured multi-thread speedup falls below the
committed floor, or when any thread count failed the bit-identity
check. The bench name the records are filed under comes from the
baseline's "bench" field.

The floor is core-count aware: a hosted runner with 4 cores cannot
show a 4x speedup at 8 threads, so the required speedup for a gate at
T threads is

    required = min(speedup_floor, core_derate * usable_cores)

with usable_cores = min(T, hardware_concurrency of the bench machine,
as self-reported in the report's series). Machines with fewer than
min_cores cores skip the scaling assertion entirely (identity is still
enforced) -- a 1-core container can only measure overhead, not scaling.

Exit codes: 0 pass/skip, 1 gate failure, 2 malformed input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf-gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def series_value(report, bench, config, metric):
    for p in report.get("series", []):
        if (p.get("bench") == bench and p.get("config") == config
                and p.get("metric") == metric):
            return p["value"]
    return None


def speedup_at(report, bench, threads):
    cfg = f"threads={threads}"
    for r in report.get("results", []):
        if r.get("bench") == bench and r.get("config") == cfg:
            return r["speedup"]
    return None


def check_pair(report_path, baseline_path, allow_smoke):
    """Gate one (report, baseline) pair; returns a list of failures."""
    report = load(report_path)
    base = load(baseline_path)
    bench = base.get("bench", "parallel")

    if report.get("smoke") and not allow_smoke:
        print(f"perf-gate: {report_path} was produced with --smoke; "
              f"the gate needs a full-size run", file=sys.stderr)
        sys.exit(2)

    failures = []

    identical = series_value(report, bench, "machine", "identical")
    if identical is None:
        failures.append(f"{bench}: report has no machine/identical "
                        f"series (bench too old?)")
    elif identical != 1.0:
        failures.append(f"{bench}: bit-identity check failed at some "
                        f"thread count (identical != 1) -- determinism "
                        f"regression")

    cores = series_value(report, bench, "machine",
                         "hardware_concurrency")
    if cores is None:
        failures.append(f"{bench}: report has no hardware_concurrency "
                        f"series")
        cores = 0
    cores = int(cores)

    min_cores = int(base.get("min_cores", 4))
    derate = float(base.get("core_derate", 0.75))

    if cores < min_cores:
        print(f"perf-gate: [{bench}] machine has {cores} core(s) < "
              f"min_cores {min_cores}; scaling gate SKIPPED (identity "
              f"still checked)")
        return failures

    for gate in base.get("gates", []):
        threads = int(gate["threads"])
        floor = float(gate["speedup_floor"])
        usable = min(threads, cores)
        required = min(floor, derate * usable)
        measured = speedup_at(report, bench, threads)
        if measured is None:
            failures.append(f"{bench}: threads={threads}: no speedup "
                            f"in report")
            continue
        verdict = "ok" if measured >= required else "FAIL"
        print(f"perf-gate: [{bench}] threads={threads} speedup "
              f"{measured:.2f}x (required {required:.2f}x = "
              f"min({floor}, {derate} * {usable} usable cores of "
              f"{cores})) .. {verdict}")
        if measured < required:
            failures.append(
                f"{bench}: threads={threads}: speedup {measured:.2f}x "
                f"below required {required:.2f}x")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--report", required=True, action="append",
                    help="bench --json output (repeatable; pairs up "
                         "with --baseline in order)")
    ap.add_argument("--baseline", required=True, action="append",
                    help="committed floor JSON (repeatable)")
    ap.add_argument("--allow-smoke", action="store_true",
                    help="accept a --smoke report (local debugging only)")
    args = ap.parse_args()

    if len(args.report) != len(args.baseline):
        print(f"perf-gate: {len(args.report)} --report vs "
              f"{len(args.baseline)} --baseline; they pair up in "
              f"order", file=sys.stderr)
        sys.exit(2)

    failures = []
    for report_path, baseline_path in zip(args.report, args.baseline):
        failures += check_pair(report_path, baseline_path,
                               args.allow_smoke)

    if failures:
        for f in failures:
            print(f"perf-gate: FAIL: {f}", file=sys.stderr)
        sys.exit(1)
    print("perf-gate: pass")


if __name__ == "__main__":
    main()
