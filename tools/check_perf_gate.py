#!/usr/bin/env python3
"""CI perf gate for the parallel batch engine.

Reads a bench_parallel --json report and the committed baseline
(BENCH_parallel.json at the repo root) and fails the build when the
measured multi-thread speedup falls below the committed floor, or when
any thread count failed the bit-identity check.

The floor is core-count aware: a hosted runner with 4 cores cannot
show a 4x speedup at 8 threads, so the required speedup for a gate at
T threads is

    required = min(speedup_floor, core_derate * usable_cores)

with usable_cores = min(T, hardware_concurrency of the bench machine,
as self-reported in the report's series). Machines with fewer than
min_cores cores skip the scaling assertion entirely (identity is still
enforced) -- a 1-core container can only measure overhead, not scaling.

Exit codes: 0 pass/skip, 1 gate failure, 2 malformed input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf-gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def series_value(report, config, metric):
    for p in report.get("series", []):
        if (p.get("bench") == "parallel" and p.get("config") == config
                and p.get("metric") == metric):
            return p["value"]
    return None


def speedup_at(report, threads):
    cfg = f"threads={threads}"
    for r in report.get("results", []):
        if r.get("bench") == "parallel" and r.get("config") == cfg:
            return r["speedup"]
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--report", required=True,
                    help="bench_parallel --json output")
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_parallel.json floor")
    ap.add_argument("--allow-smoke", action="store_true",
                    help="accept a --smoke report (local debugging only)")
    args = ap.parse_args()

    report = load(args.report)
    base = load(args.baseline)

    if report.get("smoke") and not args.allow_smoke:
        print("perf-gate: report was produced with --smoke; the gate "
              "needs a full-size run", file=sys.stderr)
        sys.exit(2)

    failures = []

    identical = series_value(report, "machine", "identical")
    if identical is None:
        failures.append("report has no parallel/machine/identical series "
                        "(bench too old?)")
    elif identical != 1.0:
        failures.append("bit-identity check failed at some thread count "
                        "(identical != 1) -- determinism regression")

    cores = series_value(report, "machine", "hardware_concurrency")
    if cores is None:
        failures.append("report has no hardware_concurrency series")
        cores = 0
    cores = int(cores)

    min_cores = int(base.get("min_cores", 4))
    derate = float(base.get("core_derate", 0.75))

    if cores < min_cores:
        print(f"perf-gate: machine has {cores} core(s) < min_cores "
              f"{min_cores}; scaling gate SKIPPED (identity still "
              f"checked)")
    else:
        for gate in base.get("gates", []):
            threads = int(gate["threads"])
            floor = float(gate["speedup_floor"])
            usable = min(threads, cores)
            required = min(floor, derate * usable)
            measured = speedup_at(report, threads)
            if measured is None:
                failures.append(f"threads={threads}: no speedup in report")
                continue
            verdict = "ok" if measured >= required else "FAIL"
            print(f"perf-gate: threads={threads} speedup {measured:.2f}x "
                  f"(required {required:.2f}x = min({floor}, {derate} * "
                  f"{usable} usable cores of {cores})) .. {verdict}")
            if measured < required:
                failures.append(
                    f"threads={threads}: speedup {measured:.2f}x below "
                    f"required {required:.2f}x")

    if failures:
        for f in failures:
            print(f"perf-gate: FAIL: {f}", file=sys.stderr)
        sys.exit(1)
    print("perf-gate: pass")


if __name__ == "__main__":
    main()
