/**
 * @file
 * stmodel_pack — pack, inspect and verify STMF model containers.
 *
 *   stmodel_pack --in net.tnn  --out net.stmf [--id NAME]
 *                [--model-version N]             # pack a text TNN
 *   stmodel_pack --in f.stnet  --out f.stmf [--grl]
 *                                               # compile + pack a plan
 *   stmodel_pack --demo 8 --out demo.stmf [--kind tnn|plan|lsm]
 *                                               # generate a demo model
 *   stmodel_pack --info   model.stmf            # header + section table
 *   stmodel_pack --verify model.stmf            # both load paths agree
 *
 * --in sniffs the text format from its header line ("sttnn 1" vs
 * "stnet 1"). --verify loads the container through BOTH paths — mmap
 * with pointer fixup and the copying fallback — runs the same
 * deterministic probe volleys through each, and requires bit-identical
 * outputs; it exits non-zero (with the loader's contextual Status) on
 * any disagreement or validation failure, so a CI step can gate a
 * model publish on it.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "core/network_io.hpp"
#include "model/serialize.hpp"
#include "model/stmf.hpp"
#include "tnn/lsm.hpp"
#include "tnn/tnn_io.hpp"
#include "tnn/tnn_network.hpp"

using namespace st;
using namespace st::model;

namespace {

int
usage()
{
    std::cerr
        << "usage:\n"
           "  stmodel_pack --in FILE --out FILE.stmf [--id NAME]\n"
           "               [--model-version N] [--grl]\n"
           "  stmodel_pack --demo N --out FILE.stmf"
           " [--kind tnn|plan|lsm]\n"
           "               [--id NAME] [--model-version N]\n"
           "  stmodel_pack --info FILE.stmf\n"
           "  stmodel_pack --verify FILE.stmf\n"
           "--in accepts the sttnn and stnet text formats (sniffed\n"
           "from the header line). --verify loads via mmap AND the\n"
           "copying fallback and requires bit-identical probe-volley\n"
           "outputs from both.\n";
    return 2;
}

std::string
readFile(const std::string &path, bool &ok)
{
    std::ifstream in(path, std::ios::binary);
    ok = static_cast<bool>(in);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** First whitespace-delimited token of the text (format sniff). */
std::string
firstToken(const std::string &text)
{
    size_t b = text.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = text.find_first_of(" \t\r\n", b);
    return text.substr(b, e == std::string::npos ? e : e - b);
}

const char *
sectionName(uint32_t type)
{
    switch (static_cast<SectionType>(type)) {
    case SectionType::Meta:
        return "meta";
    case SectionType::Tnn:
        return "tnn";
    case SectionType::Plan:
        return "plan";
    case SectionType::Grl:
        return "grl";
    case SectionType::Lsm:
        return "lsm";
    }
    return "?";
}

/** The same 2-layer WTA demo stack stnet_serve --demo builds. */
TnnNetwork
demoTnn(size_t inputs)
{
    TnnNetwork net;
    ColumnParams l1;
    l1.numInputs = inputs;
    l1.numNeurons = inputs * 2;
    l1.wtaK = 4;
    net.addLayer(l1);
    ColumnParams l2;
    l2.numInputs = inputs * 2;
    l2.numNeurons = inputs;
    l2.wtaK = 1;
    net.addLayer(l2);
    return net;
}

/**
 * A demo s-t network exercising every op the plan codec serializes:
 * min/max trees over the inputs, an lt race, an inc delay and a
 * config micro-weight.
 */
Network
demoNetwork(size_t inputs)
{
    Network net(inputs);
    std::vector<NodeId> ins;
    for (size_t i = 0; i < inputs; ++i)
        ins.push_back(net.input(i));
    const NodeId first = net.min(ins);
    const NodeId last = net.max(ins);
    const NodeId spread = net.lt(first, last);
    const NodeId delayed = net.inc(first, 3);
    const NodeId gate = net.config(Time(0));
    net.markOutput(net.max(spread, gate));
    net.markOutput(net.min(delayed, last));
    return net;
}

/**
 * Deterministic probe volleys: a mix of finite times and inf (no
 * spike) lines, different per volley, identical across runs.
 */
std::vector<Volley>
probeVolleys(size_t width, size_t count)
{
    std::vector<Volley> volleys;
    for (size_t j = 0; j < count; ++j) {
        Volley v(width, INF);
        for (size_t i = 0; i < width; ++i)
            if ((i + 3 * j) % 7 != 0)
                v[i] = Time((i * 37 + j * 101) % 64);
        volleys.push_back(std::move(v));
    }
    return volleys;
}

std::string
timesToString(std::span<const Time> times)
{
    std::string s;
    for (const Time &t : times) {
        s += t.isInf() ? std::string("inf") : std::to_string(t.value());
        s += ' ';
    }
    return s;
}

/**
 * Run the loaded model over @p volleys and flatten every output into
 * one bit-exact signature string (Time reps and double bit patterns,
 * so "identical" means identical to the last bit, not to printf
 * precision).
 */
std::string
probeSignature(const LoadedModel &loaded,
               const std::vector<Volley> &volleys)
{
    std::ostringstream sig;
    if (loaded.tnn) {
        for (const Volley &v : volleys)
            sig << timesToString(loaded.tnn->process(v)) << '\n';
    } else if (loaded.plan) {
        EvalScratch scratch;
        std::vector<Time> out;
        for (const Volley &v : volleys) {
            loaded.plan->evaluate(v, scratch, out);
            sig << timesToString(out) << '\n';
        }
    } else if (loaded.lsm) {
        // The reservoir is re-derived from the seeded params, so the
        // probe runs the actual dynamics both configs would serve.
        Reservoir reservoir(loaded.lsm->params);
        for (const Volley &v : volleys) {
            reservoir.reset();
            const size_t spikes = reservoir.runVolley(
                v, loaded.lsm->stepsPerVolley);
            sig << spikes << ':';
            for (const double trace : reservoir.traces()) {
                uint64_t bits = 0;
                std::memcpy(&bits, &trace, sizeof(bits));
                sig << bits << ' ';
            }
            sig << '\n';
        }
    }
    return sig.str();
}

int
cmdInfo(const std::string &path)
{
    StmfFile file;
    if (Status status = StmfFile::open(path, LoadMode::Mmap, file);
        !status.isOk()) {
        std::cerr << "stmodel_pack: " << status.str() << "\n";
        return 1;
    }
    std::printf("container  %s\n", path.c_str());
    std::printf("bytes      %zu\n", file.fileBytes());
    std::printf("file-crc   %08x\n", file.fileCrc());
    std::printf("load-mode  %s\n",
                file.mode() == LoadMode::Mmap ? "mmap" : "copy");
    std::printf("sections   %zu\n", file.sections().size());
    for (const StmfFile::Section &s : file.sections())
        std::printf("  %-5s off %8llu  len %8llu  crc %08x\n",
                    sectionName(s.type),
                    static_cast<unsigned long long>(s.offset),
                    static_cast<unsigned long long>(s.length), s.crc);
    ModelInfo info;
    if (Status status = decodeMeta(file, info); !status.isOk()) {
        std::cerr << "stmodel_pack: " << status.str() << "\n";
        return 1;
    }
    std::printf("kind       %s\n", info.kind.c_str());
    std::printf("id         %s\n", info.id.c_str());
    std::printf("version    %llu\n",
                static_cast<unsigned long long>(info.version));
    std::printf("inputs     %llu\n",
                static_cast<unsigned long long>(info.inputWidth));
    return 0;
}

int
cmdVerify(const std::string &path)
{
    LoadedModel mapped;
    if (Status status = loadModel(path, LoadMode::Mmap, mapped);
        !status.isOk()) {
        std::cerr << "stmodel_pack: mmap load: " << status.str()
                  << "\n";
        return 1;
    }
    LoadedModel copied;
    if (Status status = loadModel(path, LoadMode::Copy, copied);
        !status.isOk()) {
        std::cerr << "stmodel_pack: copy load: " << status.str()
                  << "\n";
        return 1;
    }
    if (mapped.info.fileCrc != copied.info.fileCrc ||
        mapped.info.kind != copied.info.kind ||
        mapped.info.inputWidth != copied.info.inputWidth) {
        std::cerr << "stmodel_pack: load paths disagree on identity\n";
        return 1;
    }
    const std::vector<Volley> volleys =
        probeVolleys(mapped.info.inputWidth, 8);
    const std::string a = probeSignature(mapped, volleys);
    const std::string b = probeSignature(copied, volleys);
    if (a != b) {
        std::cerr << "stmodel_pack: VERIFY FAILED — mmap and copy "
                     "paths produced different outputs\n";
        return 1;
    }
    std::printf("verify ok: %s \"%s\" v%llu, %llu inputs, "
                "%zu probe volleys bit-identical (mmap vs copy), "
                "crc %08x\n",
                mapped.info.kind.c_str(), mapped.info.id.c_str(),
                static_cast<unsigned long long>(mapped.info.version),
                static_cast<unsigned long long>(
                    mapped.info.inputWidth),
                volleys.size(), mapped.info.fileCrc);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string inPath;
    std::string outPath;
    std::string infoPath;
    std::string verifyPath;
    std::string kind = "tnn";
    size_t demoInputs = 0;
    bool withGrl = false;
    PackOptions options;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasNext = i + 1 < argc;
        if (arg == "--in" && hasNext) {
            inPath = argv[++i];
        } else if (arg == "--out" && hasNext) {
            outPath = argv[++i];
        } else if (arg == "--info" && hasNext) {
            infoPath = argv[++i];
        } else if (arg == "--verify" && hasNext) {
            verifyPath = argv[++i];
        } else if (arg == "--demo" && hasNext) {
            demoInputs = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--kind" && hasNext) {
            kind = argv[++i];
        } else if (arg == "--id" && hasNext) {
            options.id = argv[++i];
        } else if (arg == "--model-version" && hasNext) {
            options.version = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--grl") {
            withGrl = true;
        } else {
            return usage();
        }
    }

    if (!infoPath.empty())
        return cmdInfo(infoPath);
    if (!verifyPath.empty())
        return cmdVerify(verifyPath);

    if (outPath.empty() ||
        (inPath.empty() && demoInputs == 0) ||
        (!inPath.empty() && demoInputs > 0))
        return usage();

    Status status;
    try {
        if (demoInputs > 0) {
            if (kind == "tnn") {
                status =
                    packTnn(demoTnn(demoInputs), outPath, options);
            } else if (kind == "plan") {
                status = packNetwork(demoNetwork(demoInputs), outPath,
                                     options, true);
            } else if (kind == "lsm") {
                LsmModelConfig config;
                config.params.numInputs = demoInputs;
                config.params.numNeurons = 96;
                status = packLsm(config, outPath, options);
            } else {
                return usage();
            }
        } else {
            bool ok = false;
            const std::string text = readFile(inPath, ok);
            if (!ok) {
                std::cerr << "stmodel_pack: cannot open " << inPath
                          << "\n";
                return 1;
            }
            const std::string token = firstToken(text);
            if (token == "sttnn")
                status = packTnn(tnnFromText(text), outPath, options);
            else if (token == "stnet")
                status = packNetwork(networkFromText(text), outPath,
                                     options, withGrl);
            else {
                std::cerr << "stmodel_pack: " << inPath
                          << ": unrecognized input format (expected "
                             "an sttnn or stnet header)\n";
                return 1;
            }
        }
    } catch (const std::exception &e) {
        std::cerr << "stmodel_pack: " << e.what() << "\n";
        return 1;
    }
    if (!status.isOk()) {
        std::cerr << "stmodel_pack: " << status.str() << "\n";
        return 1;
    }

    // Round-trip sanity on what was just written, then report like
    // --info so the pack step's log shows what actually shipped.
    return cmdVerify(outPath);
}
