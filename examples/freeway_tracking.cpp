/**
 * @file
 * Freeway car-trajectory tracking from AER events — the reproduction of
 * the paper's Fig. 4 scenario (Bichler et al. [5]).
 *
 * The original uses a DVS camera over a freeway; its recordings are
 * proprietary, so a synthetic generator produces the same kind of
 * stimulus: cars crossing a lane of spiking sensors with lane-specific
 * timing, jitter and sensor misses, delivered as an AER event stream.
 * An STDP-trained TNN column then learns, unsupervised, one detector per
 * lane — "extraction of temporally correlated features".
 *
 * Run: ./freeway_tracking [passes]
 */

#include <cstdlib>
#include <iostream>

#include "spacetime.hpp"
#include "util/table.hpp"

using namespace st;

int
main(int argc, char **argv)
{
    const size_t passes =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 600;

    FreewayParams fp;
    fp.lanes = 3;
    fp.sensorsPerLane = 8;
    fp.sensorSpacing = {2, 3, 4}; // lane speeds differ
    fp.jitter = 0.3;
    fp.missProb = 0.05;
    fp.seed = 42;
    FreewayGenerator gen(fp);

    std::cout << "Sensor array: " << fp.lanes << " lanes x "
              << fp.sensorsPerLane << " sensors = "
              << gen.numAddresses() << " AER addresses\n";

    // Show a snippet of the raw AER stream.
    std::vector<size_t> labels;
    AerStream stream = gen.generateStream(3, labels);
    std::cout << "First pass (lane " << labels[0] << ") AER events:";
    for (size_t i = 0; i < stream.size() && stream.events()[i].time <
                                                gen.windowSize();
         ++i) {
        const AerEvent &e = stream.events()[i];
        std::cout << " (t=" << e.time << ",a=" << e.address << ")";
    }
    std::cout << "\n\n";

    ColumnParams cp;
    cp.numInputs = gen.numAddresses();
    cp.numNeurons = 6;
    cp.threshold = 14;
    cp.fatigue = 8;
    cp.maxWeight = 7;
    cp.shape = ResponseShape::Step;
    cp.seed = 7;
    Column col(cp);
    SimplifiedStdp rule(0.07, 0.05);

    std::cout << "Training " << cp.numNeurons << " neurons on " << passes
              << " car passes (unsupervised WTA learning)...\n";
    for (const auto &s : gen.generate(passes))
        col.trainStep(s.volley, rule);

    ConfusionMatrix m(cp.numNeurons, fp.lanes);
    for (const auto &s : gen.generate(200)) {
        auto fired = col.rawFireTimes(s.volley);
        std::optional<size_t> winner;
        Time best = INF;
        for (size_t j = 0; j < fired.size(); ++j) {
            if (fired[j] < best) {
                best = fired[j];
                winner = j;
            }
        }
        m.add(winner, s.label);
    }

    std::cout << "\nNeuron-vs-lane contingency (200 test passes):\n"
              << m.str();
    AsciiTable summary({"metric", "value"});
    summary.row("coverage", m.coverage());
    summary.row("purity", m.purity());
    summary.row("lanes covered", m.distinctLabelsCovered());
    summary.writeTo(std::cout);

    // Visualize the learned receptive fields: weights per lane segment.
    std::cout << "\nLearned 3-bit receptive fields (rows = neurons, "
              << "columns = lane sensors | separated per lane):\n";
    for (size_t j = 0; j < cp.numNeurons; ++j) {
        auto dw = col.discreteWeights(j);
        std::cout << "  N" << j << ": ";
        for (size_t lane = 0; lane < fp.lanes; ++lane) {
            for (size_t s = 0; s < fp.sensorsPerLane; ++s)
                std::cout << dw[lane * fp.sensorsPerLane + s];
            std::cout << (lane + 1 < fp.lanes ? " | " : "");
        }
        std::cout << "\n";
    }
    std::cout << "(a trained neuron concentrates weight inside one "
              << "lane's block)\n";
    return 0;
}
