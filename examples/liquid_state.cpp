/**
 * @file
 * Liquid State Machine demo — the recurrent extension the paper defers
 * (Sec. II.C: LSMs "are based on the same principles as TNNs ...
 * the theory in this paper may potentially be extended to include
 * them").
 *
 * A feedforward single-wave network forgets everything once its wave
 * has passed; a random recurrent reservoir of spiking neurons holds a
 * fading temporal context. This demo injects jittered temporal
 * patterns, lets the reservoir run silent for a delay, then classifies
 * *from the reservoir state alone* with a simple trained linear
 * readout — accuracy vs delay traces out the fading memory curve.
 *
 * Run: ./liquid_state [reservoir_neurons]
 */

#include <cstdlib>
#include <iostream>

#include "spacetime.hpp"
#include "util/table.hpp"

using namespace st;

int
main(int argc, char **argv)
{
    const size_t neurons =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 96;

    PatternSetParams dp;
    dp.numClasses = 3;
    dp.numLines = 8;
    dp.timeSpan = 7;
    dp.jitter = 0.25;
    dp.seed = 777;
    PatternDataset data(dp);

    ReservoirParams rp;
    rp.numInputs = dp.numLines;
    rp.numNeurons = neurons;
    // Hold the expected in-degree (~7 synapses/neuron) constant as the
    // reservoir grows, keeping the dynamics in the fading regime.
    rp.connectProb = 7.0 / static_cast<double>(neurons);
    rp.seed = 5150;
    Reservoir reservoir(rp);
    std::cout << "Reservoir: " << rp.numNeurons << " LIF neurons, "
              << reservoir.numConnections()
              << " random recurrent synapses ("
              << static_cast<int>(100 * rp.excitatoryFraction)
              << "% excitatory)\n";

    // Show the echo: activity per step for one injected volley.
    auto sample = data.sample(0);
    reservoir.reset();
    std::cout << "\nReservoir activity for one class-0 volley "
              << volleyStr(sample.volley)
              << " (input stops after t=7):\n  spikes/step:";
    for (size_t t = 0; t < 24; ++t) {
        std::vector<uint32_t> channels;
        for (size_t c = 0; c < sample.volley.size(); ++c) {
            if (sample.volley[c].isFinite() &&
                sample.volley[c].value() == t) {
                channels.push_back(static_cast<uint32_t>(c));
            }
        }
        std::cout << ' ' << reservoir.step(channels).size();
    }
    std::cout << "\n(the echo outlives the stimulus, then fades — the "
              << "liquid's memory)\n";

    std::cout << "\nClassification from the reservoir state after a "
              << "silent delay:\n";
    AsciiTable t({"delay (steps)", "readout accuracy"});
    for (size_t delay : {0, 2, 4, 8, 16, 32, 64}) {
        LinearReadout readout(rp.numNeurons, dp.numClasses, 11);
        auto featurize = [&](const Volley &v) {
            reservoir.reset();
            reservoir.runVolley(v, 8 + delay);
            return reservoir.traces();
        };
        for (int epoch = 0; epoch < 12; ++epoch) {
            for (const auto &s : data.sampleMany(60))
                readout.train(featurize(s.volley), s.label, 0.05);
        }
        size_t right = 0;
        const size_t tests = 150;
        for (const auto &s : data.sampleMany(tests))
            right += readout.classify(featurize(s.volley)) == s.label;
        t.row(delay, static_cast<double>(right) / tests);
    }
    t.writeTo(std::cout);
    std::cout << "(chance = 0.33; the curve IS the fading memory — "
              << "feedforward TNNs sit at the delay-0 column only)\n";
    return 0;
}
