/**
 * @file
 * Anatomy of one SRM0 neuron built from space-time primitives (paper
 * Figs. 1, 2, 11, 12): prints the discretized biexponential response and
 * its up/down step schedule, the construction's size accounting, the
 * spike wave traced through the network, agreement with the numerical
 * reference model, and the neuron's compiled CMOS footprint.
 *
 * Run: ./srm0_anatomy
 */

#include <iostream>

#include "spacetime.hpp"
#include "util/raster.hpp"
#include "util/table.hpp"

using namespace st;

int
main()
{
    std::cout << "== The biexponential response function (Fig. 2a/11) "
              << "==\n";
    ResponseFunction r = ResponseFunction::biexponential(5, 4.0, 1.0);
    std::cout << "A(t): ";
    for (ResponseFunction::Amp a : r.samples())
        std::cout << a << ' ';
    std::cout << "(then flat)\n";

    std::cout << "amplitude bars:\n";
    for (Time::rep t = 0; t <= r.tMax(); ++t) {
        std::cout << "  t=" << (t < 10 ? " " : "") << t << " |";
        for (int i = 0; i < r.at(t); ++i)
            std::cout << '#';
        std::cout << "\n";
    }
    auto ups = r.upSteps();
    auto downs = r.downSteps();
    std::cout << "up steps at:  ";
    for (Time::rep t : ups)
        std::cout << t << ' ';
    std::cout << "\ndown steps at: ";
    for (Time::rep t : downs)
        std::cout << t << ' ';
    std::cout << "\n(the Fig. 11 fanout/inc network emits exactly these "
              << "delayed copies)\n\n";

    std::cout << "== The Fig. 12 construction ==\n";
    std::vector<ResponseFunction> synapses{r, r, r.negated()};
    const ResponseFunction::Amp theta = 4;
    Network net = buildSrm0Network(synapses, theta);
    Srm0NetworkStats stats = srm0NetworkStats(synapses, theta);
    AsciiTable t({"construction element", "count"});
    t.row("synapses (2 excitatory + 1 inhibitory)", synapses.size());
    t.row("up-step taps -> up sorter", stats.upTaps);
    t.row("down-step taps -> down sorter", stats.downTaps);
    t.row("sorter compare-exchange elements", stats.comparators);
    t.row("threshold-rank lt blocks", stats.ltBlocks);
    t.row("total network nodes", stats.totalNodes);
    t.row("logic depth", stats.depth);
    t.writeTo(std::cout);

    std::cout << "\n== A spike wave through the neuron ==\n";
    std::vector<Time> x{0_t, 1_t, 3_t};
    std::cout << "inputs " << volleyStr(x) << ", theta = " << theta
              << "\n";
    RasterOptions raster;
    raster.names = {"exc0", "exc1", "inh2"};
    std::cout << rasterPlot(x, raster);
    Srm0Neuron reference(synapses, theta);
    auto traj = reference.trajectory(x);
    std::cout << "body potential: ";
    for (ResponseFunction::Amp p : traj)
        std::cout << p << ' ';
    std::cout << "\n";

    TraceSimulator sim(net);
    Trace trace = sim.run(x);
    std::cout << "network propagates " << trace.spikeCount()
              << " spikes; output fires at " << trace.outputs[0]
              << " (reference model: " << reference.fire(x) << ")\n";

    std::cout << "\n== Agreement sweep ==\n";
    Rng rng(1);
    size_t agree = 0, total = 0, fired = 0;
    for (int s = 0; s < 500; ++s) {
        std::vector<Time> probe(3);
        for (Time &v : probe)
            v = rng.chance(0.2) ? INF : Time(rng.below(10));
        Time a = net.evaluate(probe)[0];
        Time b = reference.fire(probe);
        agree += a == b;
        fired += b.isFinite();
        ++total;
    }
    std::cout << "network == reference on " << agree << "/" << total
              << " random volleys (" << fired << " produced a spike)\n";

    std::cout << "\n== Bonus: a compound-synapse RBF detector "
              << "(Hopfield [23]) ==\n";
    std::vector<Time> pattern{0_t, 3_t, 1_t, 2_t};
    Network rbf = buildRbfDetector(pattern, {.width = 1});
    std::cout << "stored pattern " << volleyStr(pattern)
              << "; multipath delays realign it into a coincidence:\n";
    auto delays = alignmentDelays(pattern);
    std::cout << "  per-input delays:";
    for (Time::rep d : delays)
        std::cout << ' ' << d;
    std::cout << "\n";
    auto probe = [&rbf](std::vector<Time> x) {
        return rbf.evaluate(x)[0];
    };
    std::cout << "  detector(pattern)          = "
              << probe(pattern) << "\n";
    std::cout << "  detector(pattern + 5)      = "
              << probe(shifted(pattern, 5)) << " (shift-invariant)\n";
    std::cout << "  detector(1-unit perturbed) = "
              << probe({0_t, 3_t, 2_t, 2_t}) << " (within radius)\n";
    std::cout << "  detector(scrambled)        = "
              << probe({3_t, 0_t, 2_t, 1_t}) << " (outside radius)\n";

    std::cout << "\n== Compiled to CMOS (GRL) ==\n";
    auto compiled = grl::compileToGrl(net);
    std::cout << "gates: " << compiled.circuit.countOf(grl::GateKind::And)
              << " AND, " << compiled.circuit.countOf(grl::GateKind::Or)
              << " OR, "
              << compiled.circuit.countOf(grl::GateKind::LtCell)
              << " LT cells, " << compiled.circuit.totalStages()
              << " flipflop stages\n";
    grl::SimResult gsim = grl::simulate(compiled.circuit, x);
    std::cout << "circuit output falls at " << gsim.outputs[0]
              << "; transitions: " << gsim.totalInternalTransitions()
              << " internal, " << gsim.inputTransitions << " inputs\n";
    return 0;
}
