/**
 * @file
 * Race-logic applications (paper Sec. V, after Madhavan et al. [31]):
 * shortest paths and DNA edit distance, computed by letting a single
 * spike race through delay elements — then the same networks compiled
 * to off-the-shelf CMOS (GRL) and simulated cycle by cycle, with the
 * switching-activity accounting of Sec. VI.
 *
 * Run: ./racelogic_paths [rows] [cols]
 */

#include <cstdlib>
#include <iostream>

#include "spacetime.hpp"
#include "util/table.hpp"

using namespace st;
using namespace st::racelogic;

int
main(int argc, char **argv)
{
    const size_t rows =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
    const size_t cols =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;

    std::cout << "== Shortest paths on a " << rows << "x" << cols
              << " grid DAG ==\n";
    Rng rng(12345);
    Graph g = Graph::grid(rng, rows, cols, 7);
    Network net = buildRaceNetwork(g, 0);
    std::cout << "race network: " << net.size() << " nodes ("
              << net.countOf(Op::Min) << " min, " << net.countOf(Op::Inc)
              << " inc totalling " << net.totalIncStages()
              << " delay stages)\n";

    std::vector<Time> start{0_t};
    auto race = net.evaluate(start);
    auto base = dijkstra(g, 0);
    size_t agree = 0;
    for (size_t v = 0; v < g.numVertices(); ++v)
        agree += race[v] == base[v];
    std::cout << "agreement with Dijkstra: " << agree << "/"
              << g.numVertices() << " vertices\n";

    std::cout << "\nArrival-time field (the spike wavefront):\n";
    for (size_t r = 0; r < rows; ++r) {
        std::cout << "  ";
        for (size_t c = 0; c < cols; ++c) {
            Time t = race[r * cols + c];
            std::cout << (t.isInf() ? std::string("  .")
                                    : (t.value() < 10 ? "  " : " ") +
                                          t.str());
        }
        std::cout << "\n";
    }

    std::cout << "\n== The same graph as a CMOS circuit (GRL) ==\n";
    auto compiled = grl::compileToGrl(net);
    grl::SimResult sim = grl::simulate(compiled.circuit, start);
    size_t circuit_agree = 0;
    for (size_t v = 0; v < g.numVertices(); ++v)
        circuit_agree += sim.outputs[v] == base[v];
    std::cout << "circuit fall times match Dijkstra on "
              << circuit_agree << "/" << g.numVertices()
              << " vertices\n";
    grl::EnergyReport energy =
        grl::estimateEnergy(compiled.circuit, sim);
    AsciiTable et({"energy term", "units"});
    et.row("combinational switching", energy.combinational);
    et.row("lt cells", energy.ltCells);
    et.row("flipflop data", energy.flopData);
    et.row("clock into delay stages", energy.clock);
    et.row("input drivers", energy.inputs);
    et.row("total", energy.total);
    et.writeTo(std::cout);
    std::cout << "delay elements burn "
              << static_cast<int>(100 * energy.delayFraction())
              << "% of the energy — the paper's Sec. V.B caveat.\n";

    std::cout << "\n== DNA edit distance by racing (Madhavan's original "
              << "application) ==\n";
    AsciiTable dt({"a", "b", "race", "DP"});
    for (auto [a, b] :
         std::vector<std::pair<std::string, std::string>>{
             {"GATTACA", "TACGACG"},
             {"ACGTACGT", "ACGTCGT"},
             {"AAAA", "TTTT"}}) {
        Network ed = buildEditDistanceNetwork(a, b);
        Time t = ed.evaluate(start)[0];
        dt.row(a, b, t, editDistanceDp(a, b));
    }
    dt.writeTo(std::cout);
    std::cout << "\"the time it takes to compute a value IS the "
              << "value\" (paper Sec. VI).\n";
    return 0;
}
