/**
 * @file
 * stnet_serve — the streaming AER inference daemon.
 *
 * Loads (or builds) a model, starts a StreamServer, and serves the
 * stserve wire protocol (see serve/session.hpp) over a transport:
 *
 *   stnet_serve --demo 8 --tcp 0              # demo TNN, ephemeral port
 *   stnet_serve --model net.tnn --tcp 7170    # trained TNN from disk
 *   stnet_serve --lsm-demo 16 --pipe          # LSM anomaly scoring on
 *                                             # stdin/stdout
 *   stnet_serve --demo 8 --tcp 0 --chaos 0.3  # live fault injection
 *
 * The bound TCP port is announced on stderr as "listening <port>" so a
 * driver using an ephemeral port can find it. SIGTERM/SIGINT starts a
 * graceful drain: admission stops, in-flight volleys finish, every
 * session gets its end line, and the final metrics snapshot goes to
 * stderr before the process exits 0 (exit 1 if the drain had to
 * force-close sessions).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "tnn/tnn_io.hpp"
#include "util/parse.hpp"
#include "util/version.hpp"

using namespace st;
using namespace st::serve;

namespace {

int
usage()
{
    std::cerr
        << "usage: stnet_serve [model] [transport] [options]\n"
           "  model:     --demo N | --lsm-demo N | --model FILE\n"
           "  transport: --tcp PORT (0 = ephemeral) | --pipe\n"
           "  options:   --chaos SEVERITY (0..1, deterministic seed)\n"
           "             --threads N (batch fan-out; 0 = auto)\n"
           "All serve limits also read ST_SERVE_* env vars\n"
           "(see serve/config.hpp).\n";
    return 2;
}

/** A small but real 2-layer WTA column stack for --demo mode. */
TnnNetwork
buildDemoTnn(size_t inputs)
{
    TnnNetwork net;
    ColumnParams l1;
    l1.numInputs = inputs;
    l1.numNeurons = inputs * 2;
    l1.wtaK = 4;
    net.addLayer(l1);
    ColumnParams l2;
    l2.numInputs = inputs * 2;
    l2.numNeurons = inputs;
    l2.wtaK = 1;
    net.addLayer(l2);
    return net;
}

fault::FaultSpec
chaosSpec(double severity)
{
    fault::FaultSpec spec;
    spec.seed = 0x5e54e;
    spec.jitter = static_cast<Time::rep>(severity * 4.0);
    spec.dropProb = 0.10 * severity;
    spec.spuriousProb = 0.05 * severity;
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    size_t demoInputs = 0;
    size_t lsmInputs = 0;
    std::string modelFile;
    bool pipe = false;
    bool haveTcp = false;
    uint16_t tcpPort = 0;
    double chaos = -1.0;
    size_t threads = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasNext = i + 1 < argc;
        if (arg == "--demo" && hasNext) {
            demoInputs = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--lsm-demo" && hasNext) {
            lsmInputs = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--model" && hasNext) {
            modelFile = argv[++i];
        } else if (arg == "--tcp" && hasNext) {
            haveTcp = true;
            tcpPort = static_cast<uint16_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--pipe") {
            pipe = true;
        } else if (arg == "--chaos" && hasNext) {
            chaos = std::strtod(argv[++i], nullptr);
        } else if (arg == "--threads" && hasNext) {
            threads = std::strtoull(argv[++i], nullptr, 10);
        } else {
            return usage();
        }
    }
    if (!pipe && !haveTcp)
        return usage();
    if ((demoInputs > 0) + (lsmInputs > 0) + (!modelFile.empty()) != 1)
        return usage();

    std::unique_ptr<ServeModel> model;
    try {
        if (demoInputs > 0) {
            model = std::make_unique<TnnServeModel>(
                buildDemoTnn(demoInputs));
        } else if (lsmInputs > 0) {
            ReservoirParams params;
            params.numInputs = lsmInputs;
            params.numNeurons = 96;
            model = std::make_unique<LsmAnomalyModel>(params, 8);
        } else {
            std::ifstream in(modelFile);
            if (!in) {
                std::cerr << "stnet_serve: cannot open " << modelFile
                          << "\n";
                return 1;
            }
            std::ostringstream os;
            os << in.rdbuf();
            model = std::make_unique<TnnServeModel>(
                tnnFromText(os.str()));
        }
    } catch (const std::exception &e) {
        std::cerr << "stnet_serve: model load failed: " << e.what()
                  << "\n";
        return 1;
    }

    ServeConfig config = ServeConfig::fromEnv();
    if (threads > 0)
        config.nthreads = threads;

    StreamServer server(std::move(model), config);
    if (chaos >= 0.0)
        server.enableChaos(chaosSpec(chaos));
    StreamServer::installSignalHandlers(&server);
    server.start();

    // ST_METRICS_EXPORT=path[,interval_ms]: periodic Prometheus text
    // snapshots (atomic tmp+rename) for scrapers; ST_FLIGHT=path arms
    // the flight-recorder dump the incident paths (and the drain
    // below) write.
    std::unique_ptr<obs::MetricsExporter> exporter =
        obs::MetricsExporter::fromEnv();
    if (exporter)
        exporter->start();

    bool clean = true;
    if (pipe) {
        runPipeSession(server, stdin, stdout);
        server.requestStop();
        clean = server.waitDrained();
    } else {
        try {
            TcpTransport tcp(server, tcpPort);
            std::cerr << "listening " << tcp.port() << std::endl;
            tcp.serve(); // returns when SIGTERM/SIGINT drains
            clean = server.waitDrained();
        } catch (const std::exception &e) {
            std::cerr << "stnet_serve: " << e.what() << "\n";
            return 1;
        }
    }

    if (exporter)
        exporter->stop(); // final publish with the drained totals
    obs::FlightRecorder::instance().dump();
    std::cerr << "stnet_serve " << kVersionString << ": drained "
              << (clean ? "cleanly" : "with force-closed sessions")
              << "\n"
              << server.healthJson() << std::endl;
    StreamServer::installSignalHandlers(nullptr);
    return clean ? 0 : 1;
}
