/**
 * @file
 * stnet_serve — the streaming AER inference daemon.
 *
 * Loads (or builds) a model, starts a StreamServer, and serves the
 * stserve wire protocol (see serve/session.hpp) over a transport:
 *
 *   stnet_serve --demo 8 --tcp 0              # demo TNN, ephemeral port
 *   stnet_serve --model net.tnn --tcp 7170    # trained TNN from disk
 *   stnet_serve --model net.stmf --tcp 7170   # packed STMF container
 *   stnet_serve --model-dir models/ --tcp 0   # newest *.stmf, hot-swap
 *   stnet_serve --lsm-demo 16 --pipe          # LSM anomaly scoring on
 *                                             # stdin/stdout
 *   stnet_serve --demo 8 --tcp 0 --chaos 0.3  # live fault injection
 *
 * --model sniffs the file: the STMF magic selects the binary container
 * loader (mmap; every malformed byte is a contextual error, never a
 * crash), anything else is parsed as the text TNN format. With
 * --model-dir the daemon boots from the highest-versioned valid
 * *.stmf and hot-reloads on SIGHUP or the `reload` wire command; a
 * watcher thread (--watch-ms, default 500, 0 disables) also triggers
 * the reload when a newer version lands in the directory. A reload
 * that fails validation or the canary rolls back: the incumbent keeps
 * serving and the `reload` reply / log carries the reason.
 *
 * The bound TCP port is announced on stderr as "listening <port>" so a
 * driver using an ephemeral port can find it. SIGTERM/SIGINT starts a
 * graceful drain: admission stops, in-flight volleys finish, every
 * session gets its end line, and the final metrics snapshot goes to
 * stderr before the process exits 0 (exit 1 if the drain had to
 * force-close sessions).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include "model/serialize.hpp"
#include "model/stmf.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "tnn/tnn_io.hpp"
#include "util/parse.hpp"
#include "util/version.hpp"

using namespace st;
using namespace st::serve;

namespace {

int
usage()
{
    std::cerr
        << "usage: stnet_serve [model] [transport] [options]\n"
           "  model:     --demo N | --lsm-demo N | --model FILE\n"
           "             | --model-dir DIR (newest *.stmf, hot-swap)\n"
           "  transport: --tcp PORT (0 = ephemeral) | --pipe\n"
           "  options:   --chaos SEVERITY (0..1, deterministic seed)\n"
           "             --threads N (batch fan-out; 0 = auto)\n"
           "             --watch-ms N (model-dir poll; 0 = off)\n"
           "--model FILE sniffs STMF vs text TNN; SIGHUP or the\n"
           "`reload` wire command re-loads and hot-swaps the model.\n"
           "All serve limits also read ST_SERVE_* env vars\n"
           "(see serve/config.hpp).\n";
    return 2;
}

/** A small but real 2-layer WTA column stack for --demo mode. */
TnnNetwork
buildDemoTnn(size_t inputs)
{
    TnnNetwork net;
    ColumnParams l1;
    l1.numInputs = inputs;
    l1.numNeurons = inputs * 2;
    l1.wtaK = 4;
    net.addLayer(l1);
    ColumnParams l2;
    l2.numInputs = inputs * 2;
    l2.numNeurons = inputs;
    l2.wtaK = 1;
    net.addLayer(l2);
    return net;
}

fault::FaultSpec
chaosSpec(double severity)
{
    fault::FaultSpec spec;
    spec.seed = 0x5e54e;
    spec.jitter = static_cast<Time::rep>(severity * 4.0);
    spec.dropProb = 0.10 * severity;
    spec.spuriousProb = 0.05 * severity;
    return spec;
}

/** Does the file start with the STMF container magic? */
bool
looksLikeStmf(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    char head[4] = {};
    in.read(head, sizeof(head));
    return in.gcount() == 4 && std::memcmp(head, "STMF", 4) == 0;
}

/**
 * The reload procedure shared by SIGHUP, the `reload` wire command
 * and the directory watcher: pick the candidate (newest valid *.stmf
 * in dir mode, the fixed path otherwise), load it, and swap it in
 * through the server's canary. Internally synchronized — the server
 * may invoke it from the reaper or a transport thread concurrently.
 */
struct ModelReloader
{
    StreamServer *server = nullptr;
    std::string dir;       //!< empty = fixed-path mode
    std::string fixedPath; //!< used when dir is empty

    std::mutex mutex;
    std::string appliedPath;
    uint64_t appliedVersion = 0;
    uint32_t appliedCrc = 0;

    Status
    reload()
    {
        std::lock_guard<std::mutex> lock(mutex);
        std::string path = fixedPath;
        Status skipped; // first corrupt sibling seen by the dir scan
        if (!dir.empty()) {
            const Status pick = pickLatestModel(dir, path, &skipped);
            if (!pick.isOk())
                return !skipped.isOk() ? skipped : pick;
        }
        model::LoadedModel loaded;
        ST_RETURN_IF_ERROR(
            model::loadModel(path, model::LoadMode::Mmap, loaded));
        if (path == appliedPath &&
            loaded.info.version == appliedVersion &&
            loaded.info.fileCrc == appliedCrc) {
            // Nothing new to publish; still surface a corrupt sibling
            // (e.g. a botched upload of the next version) so the
            // operator's `reload` reply explains why it was skipped.
            return skipped;
        }
        std::unique_ptr<ServeModel> candidate =
            makeServeModel(loaded);
        if (!candidate)
            return Status(StatusCode::Internal,
                          path + ": loaded model has no engine");
        ST_RETURN_IF_ERROR(server->swapModel(std::move(candidate),
                                             loaded.info));
        appliedPath = path;
        appliedVersion = loaded.info.version;
        appliedCrc = loaded.info.fileCrc;
        return Status::ok();
    }

    /**
     * Cheap poll for the watcher: has the directory's best candidate
     * (path, version, file checksum) moved past what is serving?
     * Reads only the container header + META — no full decode.
     */
    bool
    changed()
    {
        std::string path;
        if (!pickLatestModel(dir, path).isOk())
            return false;
        model::StmfFile file;
        if (!model::StmfFile::open(path, model::LoadMode::Copy, file)
                 .isOk())
            return false; // racing writer; next poll settles it
        model::ModelInfo info;
        if (!model::decodeMeta(file, info).isOk())
            return false;
        std::lock_guard<std::mutex> lock(mutex);
        return path != appliedPath || info.version != appliedVersion ||
               file.fileCrc() != appliedCrc;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    size_t demoInputs = 0;
    size_t lsmInputs = 0;
    std::string modelFile;
    std::string modelDir;
    bool pipe = false;
    bool haveTcp = false;
    uint16_t tcpPort = 0;
    double chaos = -1.0;
    size_t threads = 0;
    uint64_t watchMs = 500;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasNext = i + 1 < argc;
        if (arg == "--demo" && hasNext) {
            demoInputs = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--lsm-demo" && hasNext) {
            lsmInputs = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--model" && hasNext) {
            modelFile = argv[++i];
        } else if (arg == "--model-dir" && hasNext) {
            modelDir = argv[++i];
        } else if (arg == "--tcp" && hasNext) {
            haveTcp = true;
            tcpPort = static_cast<uint16_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--pipe") {
            pipe = true;
        } else if (arg == "--chaos" && hasNext) {
            chaos = std::strtod(argv[++i], nullptr);
        } else if (arg == "--threads" && hasNext) {
            threads = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--watch-ms" && hasNext) {
            watchMs = std::strtoull(argv[++i], nullptr, 10);
        } else {
            return usage();
        }
    }
    if (!pipe && !haveTcp)
        return usage();
    if ((demoInputs > 0) + (lsmInputs > 0) + (!modelFile.empty()) +
            (!modelDir.empty()) !=
        1)
        return usage();

    // An STMF boot carries its identity into health; text/demo models
    // fall back to the server's builtin placeholder info.
    std::unique_ptr<ServeModel> model;
    model::ModelInfo stmfInfo;
    bool haveStmfInfo = false;
    std::string stmfPath; // the container actually loaded, if any
    try {
        if (demoInputs > 0) {
            model = std::make_unique<TnnServeModel>(
                buildDemoTnn(demoInputs));
        } else if (lsmInputs > 0) {
            ReservoirParams params;
            params.numInputs = lsmInputs;
            params.numNeurons = 96;
            model = std::make_unique<LsmAnomalyModel>(params, 8);
        } else {
            std::string path = modelFile;
            if (!modelDir.empty()) {
                const Status pick = pickLatestModel(modelDir, path);
                if (!pick.isOk()) {
                    std::cerr << "stnet_serve: " << pick.str()
                              << "\n";
                    return 1;
                }
            }
            if (!modelDir.empty() || looksLikeStmf(path)) {
                model::LoadedModel loaded;
                const Status status = model::loadModel(
                    path, model::LoadMode::Mmap, loaded);
                if (!status.isOk()) {
                    std::cerr << "stnet_serve: " << status.str()
                              << "\n";
                    return 1;
                }
                model = makeServeModel(loaded);
                stmfInfo = loaded.info;
                haveStmfInfo = true;
                stmfPath = path;
            } else {
                std::ifstream in(path);
                if (!in) {
                    std::cerr << "stnet_serve: cannot open " << path
                              << "\n";
                    return 1;
                }
                std::ostringstream os;
                os << in.rdbuf();
                model = std::make_unique<TnnServeModel>(
                    tnnFromText(os.str()));
            }
        }
    } catch (const std::exception &e) {
        std::cerr << "stnet_serve: model load failed: " << e.what()
                  << "\n";
        return 1;
    }

    ServeConfig config = ServeConfig::fromEnv();
    if (threads > 0)
        config.nthreads = threads;

    // Two-phase construction keeps one server object whichever boot
    // path ran; the STMF path hands its real ModelInfo to the ctor.
    std::unique_ptr<StreamServer> serverPtr;
    if (haveStmfInfo)
        serverPtr = std::make_unique<StreamServer>(
            std::shared_ptr<ServeModel>(std::move(model)), stmfInfo,
            config);
    else
        serverPtr =
            std::make_unique<StreamServer>(std::move(model), config);
    StreamServer &server = *serverPtr;

    // Hot reload: SIGHUP and the `reload` wire command re-run the
    // loader; --model-dir mode additionally polls for new versions.
    ModelReloader reloader;
    std::thread watcher;
    std::atomic<bool> stopWatcher{false};
    if (haveStmfInfo) {
        reloader.server = &server;
        reloader.dir = modelDir;
        reloader.fixedPath = stmfPath;
        reloader.appliedPath = stmfPath;
        reloader.appliedVersion = stmfInfo.version;
        reloader.appliedCrc = stmfInfo.fileCrc;
        server.setReloadHandler([&reloader] {
            return reloader.reload();
        });
        if (!modelDir.empty() && watchMs > 0)
            watcher = std::thread([&] {
                while (!stopWatcher.load(std::memory_order_acquire)) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(watchMs));
                    if (stopWatcher.load(std::memory_order_acquire))
                        break;
                    if (reloader.changed())
                        (void)server.triggerReload();
                }
            });
    }

    if (chaos >= 0.0)
        server.enableChaos(chaosSpec(chaos));
    StreamServer::installSignalHandlers(&server);
    server.start();

    // ST_METRICS_EXPORT=path[,interval_ms]: periodic Prometheus text
    // snapshots (atomic tmp+rename) for scrapers; ST_FLIGHT=path arms
    // the flight-recorder dump the incident paths (and the drain
    // below) write.
    std::unique_ptr<obs::MetricsExporter> exporter =
        obs::MetricsExporter::fromEnv();
    if (exporter)
        exporter->start();

    bool clean = true;
    if (pipe) {
        runPipeSession(server, stdin, stdout);
        server.requestStop();
        clean = server.waitDrained();
    } else {
        try {
            TcpTransport tcp(server, tcpPort);
            std::cerr << "listening " << tcp.port() << std::endl;
            tcp.serve(); // returns when SIGTERM/SIGINT drains
            clean = server.waitDrained();
        } catch (const std::exception &e) {
            std::cerr << "stnet_serve: " << e.what() << "\n";
            return 1;
        }
    }

    stopWatcher.store(true, std::memory_order_release);
    if (watcher.joinable())
        watcher.join();

    if (exporter)
        exporter->stop(); // final publish with the drained totals
    obs::FlightRecorder::instance().dump();
    std::cerr << "stnet_serve " << kVersionString << ": drained "
              << (clean ? "cleanly" : "with force-closed sessions")
              << "\n"
              << server.healthJson() << std::endl;
    StreamServer::installSignalHandlers(nullptr);
    return clean ? 0 : 1;
}
