/**
 * @file
 * stnet_client — loopback driver for stnet_serve.
 *
 * Opens N concurrent sessions against a running daemon, streams AER
 * events (synthetic, or replayed from an staer file), reads the
 * responses, and *verifies the protocol held*: per-session volley seqs
 * strictly increase, every queued volley is answered or accounted as a
 * drop, and the end line's counters match what the client observed.
 *
 *   stnet_client --connect 7170 --sessions 4 --volleys 32
 *   stnet_client --connect 7170 --aer stream.staer
 *   stnet_client --connect 7170 --chaos 0.5 --seed 7   # wire chaos
 *   stnet_client --connect 7170 --health               # health JSON
 *   stnet_client --connect 7170 --reload               # hot-swap now
 *
 * Wire chaos (client side, deterministic in --seed): events are
 * dropped and time-jittered *before* sending — distinct from the
 * daemon's --chaos, which perturbs framed volleys. Jitter keeps times
 * nondecreasing so chaos exercises degradation, not the quarantine
 * path; add --malformed to also send one garbage line per session and
 * verify quarantine isolation.
 *
 * Exit 0 iff every session ran the protocol to its end line with
 * order preserved (busy/shed answers count as protocol-correct).
 */

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "tnn/aer.hpp"

using namespace st;

namespace {

struct Options
{
    uint16_t port = 0;
    size_t sessions = 1;
    size_t addresses = 8;
    size_t volleys = 16;
    uint64_t window = 16;
    std::string aerFile;
    double chaos = 0.0;
    uint64_t seed = 1;
    bool malformed = false;
    bool health = false;
    bool reload = false;
};

int
usage()
{
    std::cerr
        << "usage: stnet_client --connect PORT [options]\n"
           "  --sessions N   concurrent sessions (default 1)\n"
           "  --addresses N  synthetic stream width (default 8)\n"
           "  --volleys N    windows per session (default 16)\n"
           "  --window W     window width (default 16)\n"
           "  --aer FILE     replay an staer file instead\n"
           "  --chaos S      wire chaos severity 0..1\n"
           "  --seed S       chaos/stimulus seed (default 1)\n"
           "  --malformed    inject one garbage line per session\n"
           "  --health       query health JSON and exit\n"
           "  --reload       ask the daemon to hot-reload its model\n";
    return 2;
}

/** splitmix64: the repo-wide cheap deterministic generator. */
uint64_t
mix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

int
dialLoopback(uint16_t port)
{
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                sizeof(addr)) < 0) {
        close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

/** Blocking line reader over a socket. */
class LineSocket
{
  public:
    explicit LineSocket(int fd) : fd_(fd) {}

    bool
    next(std::string &line)
    {
        while (true) {
            const size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                line.assign(buf_, 0, nl);
                buf_.erase(0, nl + 1);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                return true;
            }
            char chunk[4096];
            const ssize_t n = read(fd_, chunk, sizeof(chunk));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                return false;
            buf_.append(chunk, static_cast<size_t>(n));
        }
    }

  private:
    int fd_;
    std::string buf_;
};

/** The event stream one session will send. */
AerStream
makeStimulus(const Options &opt, size_t session_index)
{
    if (!opt.aerFile.empty()) {
        std::ifstream in(opt.aerFile);
        if (!in)
            throw std::runtime_error("cannot open " + opt.aerFile);
        std::ostringstream os;
        os << in.rdbuf();
        return aerFromText(os.str());
    }
    AerStream stream(static_cast<uint32_t>(opt.addresses));
    uint64_t rng = opt.seed * 0x2545f4914f6cdd1dULL + session_index;
    for (size_t w = 0; w < opt.volleys; ++w) {
        const uint64_t base = w * opt.window;
        // A few events per window at sorted offsets.
        uint64_t t = base;
        for (size_t k = 0; k < 3; ++k) {
            t += mix64(rng) % (opt.window / 4 + 1);
            if (t >= base + opt.window)
                break;
            stream.push(t, static_cast<uint32_t>(mix64(rng) %
                                                 opt.addresses));
        }
    }
    return stream;
}

/**
 * Structural JSON re-indenter for --health: walks the text tracking
 * string state and nesting depth — no parse, so any server-side
 * schema growth keeps printing.
 */
std::string
prettyJson(const std::string &json)
{
    std::string out;
    out.reserve(json.size() * 2);
    int depth = 0;
    bool in_string = false;
    const auto newline = [&] {
        out += '\n';
        out.append(static_cast<size_t>(depth) * 2, ' ');
    };
    for (size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (in_string) {
            out += c;
            if (c == '\\' && i + 1 < json.size())
                out += json[++i];
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"':
            in_string = true;
            out += c;
            break;
          case '{':
          case '[':
            out += c;
            ++depth;
            newline();
            break;
          case '}':
          case ']':
            --depth;
            newline();
            out += c;
            break;
          case ',':
            out += c;
            newline();
            break;
          case ':':
            out += ": ";
            break;
          default:
            if (c != ' ' && c != '\t' && c != '\n')
                out += c;
            break;
        }
    }
    return out;
}

struct SessionResult
{
    bool ok = false;
    uint64_t volleys = 0;
    uint64_t drops = 0;
    bool busy = false;
    std::string error;
};

SessionResult
runSession(const Options &opt, size_t index)
{
    SessionResult res;
    const int fd = dialLoopback(opt.port);
    if (fd < 0) {
        res.error = "connect failed";
        return res;
    }
    LineSocket in(fd);

    const AerStream stimulus = makeStimulus(opt, index);
    const uint32_t addresses = stimulus.numAddresses();

    std::ostringstream req;
    req << "stserve 1\n";
    req << "addresses " << addresses << " window " << opt.window
        << "\n";
    uint64_t rng = opt.seed ^ (0xc4a5 + index);
    uint64_t lastSent = 0;
    for (const AerEvent &e : stimulus.events()) {
        if (opt.chaos > 0.0 &&
            (mix64(rng) % 1000) < uint64_t(100.0 * opt.chaos))
            continue; // dropped on the wire
        uint64_t t = e.time;
        if (opt.chaos > 0.0) {
            t += mix64(rng) % (uint64_t(4.0 * opt.chaos) + 1);
            if (t < lastSent)
                t = lastSent; // keep nondecreasing
        }
        lastSent = t;
        req << t << " " << e.address << "\n";
    }
    if (opt.malformed)
        req << "zorp " << index << "\n"; // quarantine trigger
    req << "end\n";
    if (!sendAll(fd, req.str())) {
        res.error = "send failed";
        close(fd);
        return res;
    }

    std::string line;
    uint64_t lastSeq = 0;
    bool sawSeq = false;
    bool quarantined = false;
    while (in.next(line)) {
        std::istringstream is(line);
        std::string tag;
        is >> tag;
        if (tag == "busy") {
            res.busy = true;
            res.ok = true; // shed via the defined reject path
            break;
        } else if (tag == "volley") {
            // The order guarantee is on *deliveries*; drop notices
            // (shed at submit time) may interleave out of seq order.
            uint64_t seq = 0;
            is >> seq;
            if (sawSeq && seq <= lastSeq) {
                res.error = "out-of-order seq " +
                            std::to_string(seq) + " after " +
                            std::to_string(lastSeq);
                break;
            }
            lastSeq = seq;
            sawSeq = true;
            ++res.volleys;
        } else if (tag == "drop") {
            ++res.drops;
        } else if (tag == "err") {
            quarantined = true; // expected with --malformed
        } else if (tag == "end") {
            std::string kw;
            uint64_t v = 0, d = 0;
            is >> kw >> v >> kw >> d;
            if (v != res.volleys) {
                res.error = "end reports " + std::to_string(v) +
                            " volleys, client saw " +
                            std::to_string(res.volleys);
            } else if (opt.malformed && !quarantined) {
                res.error = "malformed line not quarantined";
            } else {
                res.ok = true;
            }
            break;
        }
        // note/health lines are informational
    }
    if (!res.ok && res.error.empty())
        res.error = "connection closed before end line";
    close(fd);
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasNext = i + 1 < argc;
        if (arg == "--connect" && hasNext)
            opt.port = static_cast<uint16_t>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (arg == "--sessions" && hasNext)
            opt.sessions = std::strtoull(argv[++i], nullptr, 10);
        else if (arg == "--addresses" && hasNext)
            opt.addresses = std::strtoull(argv[++i], nullptr, 10);
        else if (arg == "--volleys" && hasNext)
            opt.volleys = std::strtoull(argv[++i], nullptr, 10);
        else if (arg == "--window" && hasNext)
            opt.window = std::strtoull(argv[++i], nullptr, 10);
        else if (arg == "--aer" && hasNext)
            opt.aerFile = argv[++i];
        else if (arg == "--chaos" && hasNext)
            opt.chaos = std::strtod(argv[++i], nullptr);
        else if (arg == "--seed" && hasNext)
            opt.seed = std::strtoull(argv[++i], nullptr, 10);
        else if (arg == "--malformed")
            opt.malformed = true;
        else if (arg == "--health")
            opt.health = true;
        else if (arg == "--reload")
            opt.reload = true;
        else
            return usage();
    }
    if (opt.port == 0)
        return usage();

    if (opt.health) {
        const int fd = dialLoopback(opt.port);
        if (fd < 0) {
            std::cerr << "stnet_client: connect failed\n";
            return 1;
        }
        sendAll(fd, "health\n");
        LineSocket in(fd);
        std::string line;
        while (in.next(line)) {
            if (line.rfind("health ", 0) == 0) {
                std::cout << prettyJson(line.substr(7)) << "\n";
                close(fd);
                return 0;
            }
        }
        close(fd);
        std::cerr << "stnet_client: no health reply\n";
        return 1;
    }

    if (opt.reload) {
        const int fd = dialLoopback(opt.port);
        if (fd < 0) {
            std::cerr << "stnet_client: connect failed\n";
            return 1;
        }
        sendAll(fd, "reload\n");
        LineSocket in(fd);
        std::string line;
        while (in.next(line)) {
            if (line.rfind("reload", 0) == 0) {
                std::cout << line << "\n";
                close(fd);
                // "reload ok" exits 0; a rolled-back reload exits 1
                // so scripts can assert on the outcome directly.
                return line == "reload ok" ? 0 : 1;
            }
        }
        close(fd);
        std::cerr << "stnet_client: no reload reply\n";
        return 1;
    }

    std::vector<SessionResult> results(opt.sessions);
    std::vector<std::thread> threads;
    threads.reserve(opt.sessions);
    for (size_t i = 0; i < opt.sessions; ++i)
        threads.emplace_back([&, i] { results[i] = runSession(opt, i); });
    for (auto &t : threads)
        t.join();

    uint64_t volleys = 0, drops = 0, busy = 0, failed = 0;
    for (size_t i = 0; i < results.size(); ++i) {
        const SessionResult &r = results[i];
        volleys += r.volleys;
        drops += r.drops;
        busy += r.busy ? 1 : 0;
        if (!r.ok) {
            ++failed;
            std::cerr << "stnet_client: session " << i << ": "
                      << r.error << "\n";
        }
    }
    std::cout << "sessions " << opt.sessions << " ok "
              << (opt.sessions - failed) << " busy " << busy
              << " volleys " << volleys << " drops " << drops
              << "\n";
    return failed == 0 ? 0 : 1;
}
