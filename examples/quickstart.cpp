/**
 * @file
 * Quickstart: a guided tour of the space-time algebra library.
 *
 * Follows the paper's own arc: values as spike times (Fig. 5), the three
 * primitives (Fig. 6), normalized function tables (Fig. 7), max from
 * min/lt (Fig. 8 / Lemma 2), minterm synthesis (Fig. 9 / Theorem 1), and
 * finally compiling the synthesized network to a race-logic CMOS circuit
 * (Fig. 16) and simulating it cycle by cycle.
 *
 * Run: ./quickstart
 */

#include <iostream>

#include "spacetime.hpp"
#include "util/table.hpp"

using namespace st;

int
main(int argc, char **argv)
{
    if (argc > 1 && std::string_view(argv[1]) == "--dot") {
        // Print the Fig. 9 minterm network as Graphviz DOT and exit.
        FunctionTable fig7 = FunctionTable::parse(3, "0 1 2 3\n"
                                                     "1 0 inf 2\n"
                                                     "2 2 0 2\n");
        std::cout << toDot(synthesizeMinterms(fig7), "fig9");
        return 0;
    }
    std::cout << "== 1. Values are event times over N0^inf ==\n";
    Time a = 3_t, b = 7_t;
    std::cout << "a = " << a << ", b = " << b << ", inf = " << INF
              << "\n";
    std::cout << "min(a,b) = " << tmin(a, b) << "   max(a,b) = "
              << tmax(a, b) << "   lt(a,b) = " << tlt(a, b)
              << "   a+2 = " << tinc(a, 2) << "\n";
    std::cout << "inf absorbs: max(a, inf) = " << tmax(a, INF)
              << ", inf + 5 = " << (INF + 5) << "\n\n";

    std::cout << "== 2. A small feedforward network (Fig. 6 style) ==\n";
    Network net(3);
    NodeId m = net.min(net.input(0), net.input(1));
    NodeId d = net.inc(m, 1);
    NodeId y = net.lt(d, net.input(2));
    net.markOutput(y);
    std::vector<Time> x{2_t, 5_t, 4_t};
    std::cout << "y = lt(min(x0,x1)+1, x2) on [2, 5, 4] -> "
              << net.evaluate(x)[0] << "\n\n";

    std::cout << "== 3. The paper's Fig. 7 function table ==\n";
    FunctionTable table = FunctionTable::parse(3, "0 1 2 3\n"
                                                  "1 0 inf 2\n"
                                                  "2 2 0 2\n");
    std::cout << table.str();
    std::vector<Time> probe{3_t, 4_t, 5_t};
    std::cout << "evaluate [3, 4, 5]: normalize -> [0, 1, 2], "
              << "lookup -> 3, shift back -> "
              << table.evaluate(probe) << "\n\n";

    std::cout << "== 4. Lemma 2: max from min and lt only ==\n";
    Network mx = maxFromMinLtNetwork();
    AsciiTable lemma({"a", "b", "max(a,b)"});
    for (auto [va, vb] : {std::pair{2_t, 5_t}, {4_t, 4_t}, {7_t, 3_t},
                          {3_t, INF}}) {
        std::vector<Time> in{va, vb};
        lemma.row(va, vb, mx.evaluate(in)[0]);
    }
    lemma.writeTo(std::cout);
    std::cout << "(" << mx.countOf(Op::Lt) << " lt blocks, "
              << mx.countOf(Op::Min) << " min block)\n\n";

    std::cout << "== 5. Theorem 1: minterm synthesis of the table ==\n";
    Network synth = synthesizeMinterms(table);
    std::cout << "synthesized network: " << synth.size() << " nodes, "
              << "depth " << synth.depth() << "\n";
    std::cout << "network([0,1,2]) = "
              << synth.evaluate(std::vector<Time>{0_t, 1_t, 2_t})[0]
              << "  (table says "
              << table.evaluate(std::vector<Time>{0_t, 1_t, 2_t})
              << ")\n\n";

    std::cout << "== 6. Compile to generalized race logic (Fig. 16) ==\n";
    grl::CompileResult compiled = grl::compileToGrl(synth);
    const grl::Circuit &circuit = compiled.circuit;
    std::cout << "CMOS circuit: " << circuit.countOf(grl::GateKind::And)
              << " AND, " << circuit.countOf(grl::GateKind::Or)
              << " OR, " << circuit.countOf(grl::GateKind::LtCell)
              << " LT cells, " << circuit.totalStages()
              << " shift-register stages\n";
    grl::SimResult sim = grl::simulate(circuit, probe);
    std::cout << "circuit fall time on [3, 4, 5]: " << sim.outputs[0]
              << " (network says " << synth.evaluate(probe)[0] << ")\n";
    std::cout << "transitions this computation: "
              << sim.totalInternalTransitions()
              << " internal + " << sim.inputTransitions << " inputs\n\n";

    std::cout << "== 7. Export the network as Graphviz DOT ==\n";
    std::cout << "toDot(...) yields " << toDot(synth).size()
              << " bytes; run `quickstart --dot | dot -Tpng -o fig9.png`"
              << " to render it.\n";
    return 0;
}
