/**
 * @file
 * Unsupervised temporal pattern clustering with STDP + WTA — the
 * workload of the TNN literature the paper surveys (Sec. II.C,
 * Guyonneau [21], Masquelier [37], Kheradpisheh [28]).
 *
 * A column of SRM0 neurons with low-resolution (3-bit) synaptic weights
 * watches jittered repetitions of a handful of temporal prototypes.
 * Training is strictly local (simplified STDP on the WTA winner), yet
 * neurons become selective for distinct classes — the "emergence" the
 * paper conjectures in Sec. VI. The trained winner is then programmed
 * into a micro-weight SRM0 network (Fig. 14) to show the hardware path.
 *
 * Run: ./temporal_classifier [num_classes] [train_samples]
 */

#include <cstdlib>
#include <iostream>

#include "spacetime.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

std::optional<size_t>
winnerOf(const std::vector<Time> &fired)
{
    std::optional<size_t> winner;
    Time best = INF;
    for (size_t j = 0; j < fired.size(); ++j) {
        if (fired[j] < best) {
            best = fired[j];
            winner = j;
        }
    }
    return winner;
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t num_classes =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
    const size_t train_samples =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 800;

    PatternSetParams dp;
    dp.numClasses = num_classes;
    dp.numLines = 16;
    dp.timeSpan = 7; // 3-bit temporal resolution, per the paper
    dp.jitter = 0.4;
    dp.dropProb = 0.03;
    dp.seed = 2718;
    PatternDataset data(dp);

    std::cout << "Prototypes (" << num_classes << " classes, "
              << dp.numLines << " lines, values 0.." << dp.timeSpan
              << "):\n";
    for (size_t c = 0; c < num_classes; ++c)
        std::cout << "  class " << c << ": "
                  << volleyStr(data.prototypes()[c]) << "\n";

    ColumnParams cp;
    cp.numInputs = dp.numLines;
    cp.numNeurons = 2 * num_classes;
    cp.threshold = 14; // selective: needs several strong coincident lines
    cp.fatigue = 8;   // conscience: every neuron gets to specialize
    cp.maxWeight = 7; // 3-bit weights (Pfeil et al. [43])
    cp.shape = ResponseShape::Step;
    cp.seed = 99;
    Column col(cp);
    SimplifiedStdp rule(0.06, 0.045);

    std::cout << "\nTraining " << cp.numNeurons << " neurons on "
              << train_samples << " jittered samples (local STDP, WTA "
              << "winner updates)...\n";
    size_t fired = 0;
    for (const auto &s : data.sampleMany(train_samples))
        fired += col.trainStep(s.volley, rule).winner.has_value();
    std::cout << "steps with a winner: " << fired << "/" << train_samples
              << "\n";

    const size_t test_samples = 300;
    ConfusionMatrix m(cp.numNeurons, num_classes);
    for (const auto &s : data.sampleMany(test_samples))
        m.add(winnerOf(col.rawFireTimes(s.volley)), s.label);

    std::cout << "\nNeuron-vs-class contingency table:\n" << m.str();
    AsciiTable summary({"metric", "value"});
    summary.row("coverage", m.coverage());
    summary.row("purity", m.purity());
    summary.row("accuracy (majority map)", m.accuracy());
    summary.row("classes covered", m.distinctLabelsCovered());
    summary.writeTo(std::cout);

    // Show the learned selectivity: the discrete (3-bit) weights of the
    // neuron assigned to class 0.
    auto assignment = m.majorityAssignment();
    for (size_t j = 0; j < cp.numNeurons; ++j) {
        if (assignment[j] && *assignment[j] == 0) {
            std::cout << "\nNeuron " << j
                      << " (majority class 0) 3-bit weights:";
            for (size_t w : col.discreteWeights(j))
                std::cout << ' ' << w;
            std::cout << "\nClass-0 prototype:              "
                      << volleyStr(data.prototypes()[0]) << "\n";

            // Hardware path: program the weights into a Fig. 14
            // micro-weight SRM0 and check it matches the model.
            ProgrammableSrm0 hw(cp.numInputs, col.family(),
                                cp.threshold);
            auto dw = col.discreteWeights(j);
            for (size_t i = 0; i < dw.size(); ++i)
                hw.setWeight(i, dw[i]);
            auto sample = data.sample(0);
            std::cout << "micro-weight hardware neuron on a class-0 "
                      << "sample: fires at " << hw.fire(sample.volley)
                      << " (reference model: "
                      << col.neuronModel(j).fire(sample.volley) << ")\n";
            break;
        }
    }

    // Epilogue: the supervised end of the spectrum — a one-vs-rest
    // tempotron bank (Guetig-Sompolinsky) on the same data.
    std::vector<Tempotron> readout;
    for (size_t c = 0; c < num_classes; ++c) {
        TempotronParams tp;
        tp.numInputs = dp.numLines;
        tp.threshold = 1.5;
        tp.learningRate = 0.05;
        tp.seed = 600 + c;
        readout.emplace_back(tp);
    }
    auto sup_train = data.sampleMany(200);
    for (int epoch = 0; epoch < 20; ++epoch) {
        for (const auto &s : sup_train)
            for (size_t c = 0; c < num_classes; ++c)
                readout[c].train({s.volley, c == s.label});
    }
    size_t right = 0;
    auto sup_test = data.sampleMany(200);
    for (const auto &s : sup_test) {
        double best = -1e300;
        size_t pick = 0;
        for (size_t c = 0; c < num_classes; ++c) {
            double p = readout[c].potentialAt(
                s.volley, readout[c].peakTime(s.volley));
            if (readout[c].fires(s.volley))
                p += 1e6;
            if (p > best) {
                best = p;
                pick = c;
            }
        }
        right += pick == s.label;
    }
    std::cout << "\nSupervised comparison: one-vs-rest tempotron bank "
              << "reaches " << static_cast<double>(right) / 200.0
              << " accuracy after 20 epochs on the same volleys.\n";
    return 0;
}
