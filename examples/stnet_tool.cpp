/**
 * @file
 * stnet_tool — a command-line Swiss-army knife for space-time networks
 * in the stnet text format (see core/network_io.hpp).
 *
 * Subcommands:
 *   info <file>                  sizes, depth, per-op counts, GRL cost
 *   eval <file> t1 t2 ...        evaluate one volley ("inf" for quiet)
 *   trace <file> t1 t2 ...       event-driven run: raster + spike list
 *   opt <file>                   optimize (CSE+DCE), emit stnet to stdout
 *   lower <file>                 rewrite max via Lemma 2, emit stnet
 *   dot <file>                   emit Graphviz DOT
 *   grl <file> t1 t2 ...         compile to GRL, simulate, report
 *                                fall times and transition counts
 *   vcd <file> t1 t2 ...         compile to GRL, simulate, and dump a
 *                                VCD waveform (view with GTKWave)
 *   synth <table-file> <arity>   minterm-synthesize a function table
 *                                (Fig. 7 text format), emit stnet
 *
 * Example round trip:
 *   ./quickstart --dot                    # see a network
 *   ./stnet_tool synth table.txt 3 > f.stnet
 *   ./stnet_tool eval f.stnet 3 4 5
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "spacetime.hpp"
#include "util/raster.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open " + path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::vector<Time>
parseVolley(int argc, char **argv, int first, size_t expected)
{
    std::vector<Time> v;
    for (int i = first; i < argc; ++i) {
        std::string tok = argv[i];
        v.push_back(tok == "inf" ? INF : Time(std::stoull(tok)));
    }
    if (v.size() != expected) {
        throw std::runtime_error(
            "expected " + std::to_string(expected) + " input times, got " +
            std::to_string(v.size()));
    }
    return v;
}

int
cmdInfo(const Network &net)
{
    AsciiTable t({"metric", "value"});
    t.row("inputs", net.numInputs());
    t.row("outputs", net.outputs().size());
    t.row("nodes", net.size());
    t.row("depth", net.depth());
    for (Op op : {Op::Inc, Op::Min, Op::Max, Op::Lt, Op::Config})
        t.row(opName(op), net.countOf(op));
    t.row("inc stages (GRL flipflops)", net.totalIncStages());
    grl::Circuit c = grl::compileToGrl(net).circuit;
    t.row("GRL AND gates", c.countOf(grl::GateKind::And));
    t.row("GRL OR gates", c.countOf(grl::GateKind::Or));
    t.row("GRL LT cells", c.countOf(grl::GateKind::LtCell));
    t.writeTo(std::cout);
    return 0;
}

int
cmdEval(const Network &net, const std::vector<Time> &x)
{
    auto out = net.evaluate(x);
    std::cout << "inputs:  " << volleyStr(x) << "\n";
    std::cout << "outputs: " << volleyStr(out) << "\n";
    return 0;
}

int
cmdTrace(const Network &net, const std::vector<Time> &x)
{
    TraceSimulator sim(net);
    Trace trace = sim.run(x);
    std::cout << "input raster:\n" << rasterPlot(x);
    std::cout << "\n" << trace.spikeCount() << " spikes propagated:\n";
    for (const TraceEvent &e : trace.events) {
        std::cout << "  t=" << e.time << "  node " << e.node << " ("
                  << opName(net.nodes()[e.node].op);
        if (!net.label(e.node).empty())
            std::cout << ": " << net.label(e.node);
        std::cout << ")\n";
    }
    std::cout << "outputs: " << volleyStr(trace.outputs) << "\n";
    return 0;
}

int
cmdGrl(const Network &net, const std::vector<Time> &x)
{
    grl::CompileResult compiled = grl::compileToGrl(net);
    grl::SimResult sim = grl::simulate(compiled.circuit, x);
    std::cout << "circuit outputs: " << volleyStr(sim.outputs) << "\n";
    AsciiTable t({"transitions", "count"});
    t.row("AND/OR gates", sim.gateTransitions);
    t.row("LT outputs", sim.ltOutputTransitions);
    t.row("LT latch captures", sim.ltLatchTransitions);
    t.row("flipflop data", sim.flopDataTransitions);
    t.row("inputs/consts", sim.inputTransitions);
    t.row("reset (next computation)", sim.resetTransitions());
    t.writeTo(std::cout);
    grl::EnergyReport e = grl::estimateEnergy(compiled.circuit, sim);
    std::cout << "energy estimate: " << e.total << " units ("
              << static_cast<int>(100 * e.delayFraction())
              << "% in delay elements)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::cerr << "usage: stnet_tool "
                     "{info|eval|trace|opt|lower|dot|grl|vcd} <file> "
                     "[times...]\n"
                     "       stnet_tool synth <table-file> <arity>\n";
        return 2;
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "synth") {
            size_t arity = std::stoul(argv[3]);
            FunctionTable table =
                FunctionTable::parse(arity, readFile(argv[2]));
            std::cout << networkToText(synthesizeMinterms(table));
            return 0;
        }

        Network net = networkFromText(readFile(argv[2]));
        if (cmd == "info")
            return cmdInfo(net);
        if (cmd == "opt") {
            std::cout << networkToText(optimize(net));
            return 0;
        }
        if (cmd == "lower") {
            std::cout << networkToText(lowerMax(net));
            return 0;
        }
        if (cmd == "dot") {
            std::cout << toDot(net);
            return 0;
        }
        auto x = parseVolley(argc, argv, 3, net.numInputs());
        if (cmd == "eval")
            return cmdEval(net, x);
        if (cmd == "trace")
            return cmdTrace(net, x);
        if (cmd == "grl")
            return cmdGrl(net, x);
        if (cmd == "vcd") {
            grl::CompileResult compiled = grl::compileToGrl(net);
            grl::SimResult sim = grl::simulate(compiled.circuit, x);
            grl::VcdOptions opt;
            // Carry node labels onto the waveform where present.
            opt.names.resize(net.size());
            for (size_t i = 0; i < net.size(); ++i) {
                if (!net.label(static_cast<NodeId>(i)).empty())
                    opt.names[compiled.wireOf[i]] =
                        net.label(static_cast<NodeId>(i));
            }
            std::cout << grl::toVcd(compiled.circuit, sim, opt);
            return 0;
        }
        std::cerr << "unknown command: " << cmd << "\n";
        return 2;
    } catch (const std::exception &e) {
        std::cerr << "stnet_tool: " << e.what() << "\n";
        return 1;
    }
}
