/**
 * @file
 * Cortical-sheet generator CLI: build a rows x cols sheet of the
 * paper's Fig. 12-16 column (SRM0 bank + WTA, compiled to GRL), run
 * it through the serial and the conservative-parallel event engines,
 * check they agree bit for bit, and print the chip-scale per-partition
 * energy report (EXPERIMENTS.md E9).
 *
 * Run: ./grl_sheet [--rows N] [--cols N] [--neurons N] [--synapses N]
 *                  [--inter D] [--vert D] [--seed S] [--salt K]
 *                  [--partitions P] [--threads T]
 */

#include <cstdio>
#include <iostream>
#include <string_view>

#include "spacetime.hpp"
#include "util/parse.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

uint64_t
flagValue(int argc, char **argv, std::string_view flag, uint64_t fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag) {
            if (auto v = parseUint64Strict(argv[i + 1]))
                return *v;
            std::cerr << "grl_sheet: bad value for " << flag << ": '"
                      << argv[i + 1] << "'\n";
            std::exit(2);
        }
    }
    return fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    static constexpr std::string_view kFlags[] = {
        "--rows",  "--cols", "--neurons",    "--synapses", "--inter",
        "--vert",  "--seed", "--partitions", "--threads",  "--salt",
    };
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        bool known = false;
        for (std::string_view f : kFlags)
            known = known || arg == f;
        if (known) {
            if (i + 1 == argc) {
                std::cerr << "grl_sheet: " << arg
                          << " needs a value\n";
                return 2;
            }
            ++i; // skip the flag's value
            continue;
        }
        if (arg == "--help") {
            std::cout
                << "usage: grl_sheet [--rows N] [--cols N] [--neurons N]"
                << " [--synapses N]\n"
                << "                 [--inter D] [--vert D] [--seed S]"
                << " [--salt K]\n"
                << "                 [--partitions P] [--threads T]\n";
            return 0;
        }
        std::cerr << "grl_sheet: unknown argument '" << arg
                  << "' (try --help)\n";
        return 1;
    }
    grl::SheetParams p;
    p.rows = flagValue(argc, argv, "--rows", 2);
    p.cols = flagValue(argc, argv, "--cols", 8);
    p.neurons = flagValue(argc, argv, "--neurons", 4);
    p.synapses = flagValue(argc, argv, "--synapses", 3);
    p.interDelay = static_cast<uint32_t>(
        flagValue(argc, argv, "--inter", 4));
    p.vertDelay = static_cast<uint32_t>(
        flagValue(argc, argv, "--vert", 0));
    p.seed = flagValue(argc, argv, "--seed", 1);
    const uint64_t salt = flagValue(argc, argv, "--salt", 0);
    grl::ParallelSimOptions opts;
    opts.partitions = flagValue(argc, argv, "--partitions", 0);
    opts.threads = flagValue(argc, argv, "--threads", 0);

    std::cout << "== Building the sheet ==\n";
    Stopwatch sw;
    grl::Sheet sheet = grl::buildCorticalSheet(p);
    const grl::Circuit &c = sheet.circuit;
    std::cout << p.rows << " x " << p.cols << " columns, " << p.neurons
              << " neurons x " << p.synapses << " synapses each ("
              << sw.millis() << " ms)\n";
    AsciiTable shape({"netlist", "count"});
    shape.row("gates", c.gates().size());
    shape.row("flipflop stages", c.totalStages());
    shape.row("primary inputs", c.numInputs());
    shape.row("zero-delay components", c.components().count());
    shape.writeTo(std::cout);

    std::vector<Time> x = grl::sheetInputVolley(sheet, salt);

    std::cout << "\n== Serial vs parallel ==\n";
    sw.reset();
    grl::SimResult serial = grl::simulateEvents(c, x);
    const double serialMs = sw.millis();
    sw.reset();
    grl::ParallelSimReport report;
    grl::SimResult par = grl::simulateEventsParallel(c, x, 0, opts,
                                                     &report);
    const double parMs = sw.millis();
    const bool identical =
        serial.outputs == par.outputs &&
        serial.fallTime == par.fallTime &&
        serial.gateTransitions == par.gateTransitions;
    std::cout << "serial " << serialMs << " ms, parallel " << parMs
              << " ms on " << report.partitions << " partitions / "
              << report.threads << " threads (lookahead "
              << report.lookahead << ", " << report.windows
              << " windows, " << report.boundaryEvents
              << " boundary events"
              << (report.fellBack ? ", FELL BACK TO SERIAL" : "")
              << ")\n";
    std::cout << "results bit-identical: "
              << (identical ? "yes" : "NO — BUG") << "\n";

    std::cout << "\n== Chip-scale energy report (E9) ==\n";
    grl::ChipEnergyReport chip = grl::chipEnergy(report);
    AsciiTable energy({"partition", "gates", "stages", "events",
                       "energy", "delay frac"});
    char buf[32];
    for (size_t i = 0; i < report.perPartition.size(); ++i) {
        const grl::PartitionStats &ps = report.perPartition[i];
        const grl::EnergyReport &er = chip.perPartition[i];
        std::snprintf(buf, sizeof buf, "%.2f", er.delayFraction());
        energy.row(i, ps.gates, ps.stages, ps.eventsFired,
                   static_cast<uint64_t>(er.total), buf);
    }
    std::snprintf(buf, sizeof buf, "%.2f",
                  chip.total.delayFraction());
    energy.row("total", c.gates().size(), c.totalStages(),
               serial.totalInternalTransitions(),
               static_cast<uint64_t>(chip.total.total), buf);
    energy.writeTo(std::cout);
    const double whole = grl::estimateEnergy(c, serial).total;
    std::cout << "whole-circuit estimate " << whole
              << " (partition sum " << chip.total.total << ")\n";
    return identical ? 0 : 1;
}
