/**
 * @file
 * Translation-invariant motif detection with a convolutional TNN —
 * the hierarchical arrangement of Kheradpisheh et al. that the paper
 * surveys in Sec. II.C, on a workload where it demonstrably matters.
 *
 * Temporal motifs appear at random positions in a wide sensor array.
 * A flat column binds weights to absolute positions and fragments its
 * capacity across placements; a weight-shared convolutional layer with
 * temporal pooling (earliest spike across positions) recognizes each
 * motif anywhere. Both are trained with the same local STDP rule.
 *
 * Run: ./motif_search [train_samples]
 */

#include <cstdlib>
#include <iostream>

#include "spacetime.hpp"
#include "util/raster.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

std::optional<size_t>
winnerOf(const Volley &fired)
{
    std::optional<size_t> winner;
    Time best = INF;
    for (size_t j = 0; j < fired.size(); ++j) {
        if (fired[j] < best) {
            best = fired[j];
            winner = j;
        }
    }
    return winner;
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t train_samples =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1200;

    ShiftedPatternParams dp;
    dp.numClasses = 3;
    dp.motifWidth = 6;
    dp.inputWidth = 24;
    dp.timeSpan = 7;
    dp.jitter = 0.3;
    dp.seed = 12; // distinct onset signatures (see EXPERIMENTS.md E3d)
    ShiftedPatternDataset data(dp);

    std::cout << "Motifs (" << dp.numClasses << " classes, width "
              << dp.motifWidth << ", placed anywhere in "
              << dp.inputWidth << " lines):\n";
    for (size_t c = 0; c < dp.numClasses; ++c)
        std::cout << "  class " << c << ": "
                  << volleyStr(data.motifs()[c]) << "\n";

    PlacedVolley example = data.sample(0, 9);
    std::cout << "\nA class-0 sample placed at offset 9:\n"
              << rasterPlot(example.volley) << "\n";

    // --- Contender 1: flat column over the whole array. ---
    ColumnParams flat;
    flat.numInputs = dp.inputWidth;
    flat.numNeurons = 6;
    flat.threshold = 10;
    flat.fatigue = 8;
    flat.seed = 12;
    Column column(flat);

    // --- Contender 2: conv layer, kernel = motif width, pooling. ---
    Conv1dParams cp;
    cp.inputWidth = dp.inputWidth;
    cp.kernelSize = dp.motifWidth;
    cp.stride = 1;
    cp.numFeatures = 6;
    cp.threshold = 10;
    cp.fatigue = 8;
    cp.seed = 12;
    Conv1dLayer conv(cp);

    SimplifiedStdp rule(0.12, 0.09);
    std::cout << "Training both detectors on " << train_samples
              << " randomly placed samples...\n";
    for (size_t s = 0; s < train_samples; ++s) {
        PlacedVolley v = data.sample();
        column.trainStep(v.volley, rule);
        conv.trainStep(v.volley, rule);
    }

    const size_t test_samples = 400;
    ConfusionMatrix flat_m(flat.numNeurons, dp.numClasses);
    ConfusionMatrix conv_m(cp.numFeatures, dp.numClasses);
    for (size_t s = 0; s < test_samples; ++s) {
        PlacedVolley v = data.sample();
        flat_m.add(winnerOf(column.rawFireTimes(v.volley)), v.label);
        conv_m.add(winnerOf(conv.pooled(v.volley)), v.label);
    }

    AsciiTable t({"detector", "coverage", "purity", "classes covered"});
    t.row("flat column", flat_m.coverage(), flat_m.purity(),
          flat_m.distinctLabelsCovered());
    t.row("conv + temporal pooling", conv_m.coverage(), conv_m.purity(),
          conv_m.distinctLabelsCovered());
    t.writeTo(std::cout);

    std::cout << "\nConv feature map for the sample above (feature x "
                 "position, earliest spikes win):\n";
    Volley map = conv.featureMap(example.volley);
    for (size_t f = 0; f < cp.numFeatures; ++f) {
        std::cout << "  F" << f << ": ";
        for (size_t p = 0; p < conv.numPositions(); ++p) {
            Time v = map[f * conv.numPositions() + p];
            std::cout << (v.isInf() ? '.' : static_cast<char>(
                                                '0' + v.value() % 10));
        }
        std::cout << "\n";
    }
    std::cout << "(a tuned feature lights up exactly at the motif's "
                 "position; pooling makes the code position-free)\n";
    return 0;
}
