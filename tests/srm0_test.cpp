/**
 * @file
 * Tests for the SRM0 neuron (paper Figs. 1, 11, 12).
 *
 * The reproduction's central cross-domain check lives here: the
 * Fig. 12 construction (response fanouts -> bitonic sorters -> lt rank
 * comparison -> min) must compute exactly the same spike time as the
 * independent numerical SRM0 reference (Fig. 1) on every input volley —
 * excitatory, inhibitory, leaky and non-leaky responses alike.
 */

#include <gtest/gtest.h>

#include "core/properties.hpp"
#include "neuron/srm0_network.hpp"
#include "neuron/srm0_reference.hpp"
#include "test_helpers.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;
using Amp = ResponseFunction::Amp;

TEST(Srm0Reference, RejectsBadConfig)
{
    EXPECT_THROW(Srm0Neuron({}, 1), std::invalid_argument);
    EXPECT_THROW(Srm0Neuron({ResponseFunction::step(1)}, 0),
                 std::invalid_argument);
}

TEST(Srm0Reference, SingleStepSynapseFiresImmediately)
{
    Srm0Neuron n({ResponseFunction::step(2)}, 2);
    EXPECT_EQ(n.fire(V({5})), 5_t);
    EXPECT_EQ(n.fire(V({kNo})), INF);
}

TEST(Srm0Reference, ThresholdAboveReachableIsNeverCrossed)
{
    Srm0Neuron n({ResponseFunction::step(1), ResponseFunction::step(1)},
                 3);
    EXPECT_EQ(n.fire(V({0, 0})), INF);
}

TEST(Srm0Reference, NonLeakyIntegrationAccumulates)
{
    // Two unit steps: threshold 2 crossed when the second input lands.
    Srm0Neuron n({ResponseFunction::step(1), ResponseFunction::step(1)},
                 2);
    EXPECT_EQ(n.fire(V({1, 6})), 6_t);
    EXPECT_EQ(n.fire(V({6, 1})), 6_t);
    EXPECT_EQ(n.fire(V({3, 3})), 3_t);
}

TEST(Srm0Reference, LeakyResponseForgetsOldInputs)
{
    // Biexponential responses decay: two spikes far apart never push the
    // potential to 2 x peak; close together they do.
    ResponseFunction r = ResponseFunction::biexponential(3, 4.0, 1.0);
    Srm0Neuron n({r, r}, 4);
    EXPECT_TRUE(n.fire(V({0, 1})).isFinite());
    EXPECT_EQ(n.fire(V({0, 40})), INF);
}

TEST(Srm0Reference, InhibitionDelaysOrBlocksFiring)
{
    ResponseFunction exc = ResponseFunction::step(2);
    ResponseFunction inh = ResponseFunction::step(2).negated();
    Srm0Neuron n({exc, exc, inh}, 3);
    // Without inhibition the two excitatory steps (4 units) cross 3.
    EXPECT_EQ(n.fire(V({0, 0, kNo})), 0_t);
    // Inhibition arriving first keeps the potential at 2 < 3: no spike.
    EXPECT_EQ(n.fire(V({1, 1, 0})), INF);
    // Inhibition arriving after the crossing does not retract the spike.
    EXPECT_EQ(n.fire(V({0, 0, 2})), 0_t);
}

TEST(Srm0Reference, PotentialTrajectory)
{
    ResponseFunction r = ResponseFunction::piecewiseLinear(2, 1, 1);
    Srm0Neuron n({r}, 5);
    auto traj = n.trajectory(V({0}));
    ASSERT_EQ(traj.size(), 3u); // t = 0, 1, 2
    EXPECT_EQ(traj[0], 0);
    EXPECT_EQ(traj[1], 2);
    EXPECT_EQ(traj[2], 0);
    EXPECT_TRUE(n.trajectory(V({kNo})).empty());
}

TEST(Srm0Reference, PotentialAtSumsShiftedResponses)
{
    ResponseFunction r = ResponseFunction::step(1);
    Srm0Neuron n({r, r}, 2);
    EXPECT_EQ(n.potentialAt(V({1, 3}), 0), 0);
    EXPECT_EQ(n.potentialAt(V({1, 3}), 1), 1);
    EXPECT_EQ(n.potentialAt(V({1, 3}), 3), 2);
}

TEST(Srm0Network, MatchesReferenceOnStepSynapses)
{
    std::vector<ResponseFunction> syn{ResponseFunction::step(1),
                                      ResponseFunction::step(2),
                                      ResponseFunction::step(1)};
    Srm0Neuron ref(syn, 3);
    Network net = buildSrm0Network(syn, 3);
    testing::forAllVolleys(3, 4, [&](const std::vector<Time> &u) {
        EXPECT_EQ(net.evaluate(u)[0], ref.fire(u))
            << "at " << volleyStr(u);
    });
}

TEST(Srm0Network, MatchesReferenceOnBiexponential)
{
    ResponseFunction r = ResponseFunction::biexponential(3, 4.0, 1.0);
    std::vector<ResponseFunction> syn{r, r, r};
    Srm0Neuron ref(syn, 5);
    Network net = buildSrm0Network(syn, 5);
    testing::forAllVolleys(3, 5, [&](const std::vector<Time> &u) {
        EXPECT_EQ(net.evaluate(u)[0], ref.fire(u))
            << "at " << volleyStr(u);
    });
}

TEST(Srm0Network, MatchesReferenceWithInhibitorySynapse)
{
    ResponseFunction exc = ResponseFunction::biexponential(3, 4.0, 1.0);
    ResponseFunction inh = exc.negated();
    std::vector<ResponseFunction> syn{exc, exc, inh};
    Srm0Neuron ref(syn, 3);
    Network net = buildSrm0Network(syn, 3);
    testing::forAllVolleys(3, 5, [&](const std::vector<Time> &u) {
        EXPECT_EQ(net.evaluate(u)[0], ref.fire(u))
            << "at " << volleyStr(u);
    });
}

/** Random-neuron equivalence sweep, seed-parameterized. */
class Srm0Equivalence : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(Srm0Equivalence, NetworkEqualsReferenceOnRandomNeurons)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 8; ++trial) {
        size_t arity = 2 + rng.below(3);
        std::vector<ResponseFunction> syn;
        for (size_t i = 0; i < arity; ++i) {
            switch (rng.below(4)) {
              case 0:
                syn.push_back(ResponseFunction::step(
                    static_cast<Amp>(1 + rng.below(3))));
                break;
              case 1:
                syn.push_back(ResponseFunction::biexponential(
                    static_cast<Amp>(1 + rng.below(4)), 4.0, 1.0));
                break;
              case 2:
                syn.push_back(ResponseFunction::piecewiseLinear(
                    static_cast<Amp>(1 + rng.below(4)),
                    1 + rng.below(3), 1 + rng.below(4)));
                break;
              default:
                syn.push_back(
                    ResponseFunction::biexponential(
                        static_cast<Amp>(1 + rng.below(3)), 4.0, 1.0)
                        .negated());
                break;
            }
        }
        auto theta = static_cast<Amp>(1 + rng.below(5));
        Srm0Neuron ref(syn, theta);
        Network net = buildSrm0Network(syn, theta);
        for (int s = 0; s < 60; ++s) {
            auto x = testing::randomVolley(rng, arity, 12, 0.2);
            EXPECT_EQ(net.evaluate(x)[0], ref.fire(x))
                << "theta=" << theta << " at " << volleyStr(x);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Srm0Equivalence,
                         ::testing::Values(11, 22, 33, 44));

TEST(Srm0Network, UnreachableThresholdYieldsConstantInf)
{
    std::vector<ResponseFunction> syn{ResponseFunction::step(1)};
    Network net = buildSrm0Network(syn, 5);
    EXPECT_EQ(net.evaluate(V({0}))[0], INF);
    EXPECT_EQ(net.evaluate(V({kNo}))[0], INF);
}

TEST(Srm0Network, IsCausalAndInvariant)
{
    ResponseFunction r = ResponseFunction::biexponential(2, 4.0, 1.0);
    Network net = buildSrm0Network({r, r}, 2);
    StFn fn = fnOf(net);
    EXPECT_TRUE(checkCausality(2, 5, fn).holds);
    EXPECT_TRUE(checkInvariance(2, 5, fn).holds);
}

TEST(Srm0Network, ResponseFanoutEmitsTaps)
{
    Network net(1);
    std::vector<NodeId> ups, downs;
    ResponseFunction r({0, 2, 2, 1}); // +2 at t=1, -1 at t=3
    emitResponseFanout(net, net.input(0), r, ups, downs);
    ASSERT_EQ(ups.size(), 2u);
    ASSERT_EQ(downs.size(), 1u);
    for (NodeId id : ups)
        net.markOutput(id);
    for (NodeId id : downs)
        net.markOutput(id);
    EXPECT_EQ(net.evaluate(V({10})), V({11, 11, 13}));
}

TEST(Srm0Network, StatsAccountForConstruction)
{
    ResponseFunction r = ResponseFunction::biexponential(3, 4.0, 1.0);
    std::vector<ResponseFunction> syn{r, r};
    auto stats = srm0NetworkStats(syn, 2);
    EXPECT_EQ(stats.upTaps, 2 * r.upSteps().size());
    EXPECT_EQ(stats.downTaps, 2 * r.downSteps().size());
    EXPECT_GT(stats.comparators, 0u);
    EXPECT_EQ(stats.ltBlocks, stats.upTaps - 2 + 1);
    EXPECT_GT(stats.totalNodes, stats.upTaps + stats.downTaps);
    EXPECT_GT(stats.depth, 3u);
}

TEST(Srm0Network, RejectsBadConfig)
{
    EXPECT_THROW(buildSrm0Network({}, 1), std::invalid_argument);
    EXPECT_THROW(buildSrm0Network({ResponseFunction::step(1)}, 0),
                 std::invalid_argument);
}

} // namespace
} // namespace st
