/**
 * @file
 * Tests for the event-driven trace simulator (paper Sec. III.B): the
 * operational "wave of spikes" semantics must coincide with the
 * denotational evaluator on every node, traces must be time-ordered with
 * at most one spike per line, and lt ties must block exactly as in the
 * algebra.
 */

#include <gtest/gtest.h>

#include "core/properties.hpp"
#include "core/synthesis.hpp"
#include "core/trace_sim.hpp"
#include "test_helpers.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

TEST(TraceSim, SimpleChainFiresInOrder)
{
    Network net(1);
    NodeId a = net.inc(net.input(0), 2);
    NodeId b = net.inc(a, 3);
    net.markOutput(b);

    TraceSimulator sim(net);
    Trace trace = sim.run(V({1}));
    ASSERT_EQ(trace.events.size(), 3u);
    EXPECT_EQ(trace.events[0], (TraceEvent{1_t, net.input(0)}));
    EXPECT_EQ(trace.events[1], (TraceEvent{3_t, a}));
    EXPECT_EQ(trace.events[2], (TraceEvent{6_t, b}));
    EXPECT_EQ(trace.outputs, V({6}));
}

TEST(TraceSim, QuiescentBlocksNeverFire)
{
    // Paper Sec. III.B: each block is initially quiescent and only
    // computes once its first spike arrives.
    Network net(2);
    NodeId m = net.min(net.input(0), net.input(1));
    NodeId d = net.inc(m, 4);
    net.markOutput(d);

    TraceSimulator sim(net);
    Trace trace = sim.run(V({kNo, kNo}));
    EXPECT_TRUE(trace.events.empty());
    EXPECT_EQ(trace.outputs, V({kNo}));
    EXPECT_EQ(trace.spikeCount(), 0u);
}

TEST(TraceSim, EachLineCarriesAtMostOneSpike)
{
    Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        Network net = testing::randomNetwork(rng, 3, 15);
        TraceSimulator sim(net);
        Trace trace = sim.run(testing::randomVolley(rng, 3, 10));
        std::vector<bool> seen(net.size(), false);
        for (const TraceEvent &e : trace.events) {
            EXPECT_FALSE(seen[e.node]) << "node fired twice";
            seen[e.node] = true;
        }
    }
}

TEST(TraceSim, EventsAreTimeOrdered)
{
    Rng rng(6);
    for (int trial = 0; trial < 20; ++trial) {
        Network net = testing::randomNetwork(rng, 3, 15);
        TraceSimulator sim(net);
        Trace trace = sim.run(testing::randomVolley(rng, 3, 10));
        for (size_t i = 1; i < trace.events.size(); ++i)
            EXPECT_LE(trace.events[i - 1].time, trace.events[i].time);
    }
}

TEST(TraceSim, AgreesWithDenotationalEvaluatorOnRandomNetworks)
{
    // The central property: the operational (event-driven) and
    // denotational (single-pass) semantics are the same function on
    // every node, including lt ties and inf propagation.
    Rng rng(7);
    for (int trial = 0; trial < 40; ++trial) {
        Network net = testing::randomNetwork(rng, 3, 20);
        TraceSimulator sim(net);
        for (int s = 0; s < 25; ++s) {
            auto x = testing::randomVolley(rng, 3, 8);
            Trace trace = sim.run(x);
            EXPECT_EQ(trace.fireTime, net.evaluateAll(x))
                << "at " << volleyStr(x);
        }
    }
}

TEST(TraceSim, LtTieBlocksOperationally)
{
    // Both gate inputs arrive in the same wave (same time step):
    // the lt must stay quiet — the operational analogue of tlt(a,a)=inf.
    Network net(2);
    NodeId y = net.lt(net.input(0), net.input(1));
    net.markOutput(y);
    TraceSimulator sim(net);
    EXPECT_EQ(sim.run(V({3, 3})).outputs, V({kNo}));
    EXPECT_EQ(sim.run(V({2, 3})).outputs, V({2}));
    EXPECT_EQ(sim.run(V({3, 2})).outputs, V({kNo}));
}

TEST(TraceSim, SameTimestepCascadeResolvesLtTie)
{
    // b's spike is *produced* by a zero-depth cascade in the same time
    // step as a's; the tie must still block.
    Network net(2);
    NodeId m = net.min(net.input(0), net.input(1)); // fires with inputs
    NodeId y = net.lt(net.input(0), m);             // a == b always
    net.markOutput(y);
    TraceSimulator sim(net);
    EXPECT_EQ(sim.run(V({4, 9})).outputs, V({kNo}));
    EXPECT_EQ(sim.run(V({4, 2})).outputs, V({kNo}));
}

TEST(TraceSim, ConfigNodesEmitEvents)
{
    Network net(1);
    NodeId c = net.config(2_t);
    NodeId m = net.min(net.input(0), c);
    net.markOutput(m);
    TraceSimulator sim(net);
    EXPECT_EQ(sim.run(V({5})).outputs, V({2}));
    EXPECT_EQ(sim.run(V({1})).outputs, V({1}));
    // inf configs never fire.
    Network net2(1);
    NodeId c2 = net2.config(INF);
    net2.markOutput(net2.min(net2.input(0), c2));
    TraceSimulator sim2(net2);
    EXPECT_EQ(sim2.run(V({kNo})).spikeCount(), 0u);
}

TEST(TraceSim, MaxWaitsForAllInputs)
{
    Network net(3);
    std::vector<NodeId> all{net.input(0), net.input(1), net.input(2)};
    net.markOutput(net.max(std::span<const NodeId>(all)));
    TraceSimulator sim(net);
    EXPECT_EQ(sim.run(V({1, 5, 3})).outputs, V({5}));
    EXPECT_EQ(sim.run(V({1, kNo, 3})).outputs, V({kNo}));
}

TEST(TraceSim, SpikeCountMatchesFiniteNodeValues)
{
    Rng rng(8);
    Network net = testing::randomNetwork(rng, 3, 12);
    TraceSimulator sim(net);
    auto x = testing::randomVolley(rng, 3, 6, 0.0);
    Trace trace = sim.run(x);
    size_t finite = 0;
    for (Time t : net.evaluateAll(x)) {
        if (t.isFinite())
            ++finite;
    }
    EXPECT_EQ(trace.spikeCount(), finite);
}

TEST(TraceSim, MintermNetworkTraceMatchesTable)
{
    FunctionTable t(2);
    t.addRow(V({0, 1}), 2_t);
    t.addRow(V({1, 0}), 3_t);
    Network net = synthesizeMinterms(t);
    TraceSimulator sim(net);
    testing::forAllVolleys(2, 4, [&](const std::vector<Time> &u) {
        EXPECT_EQ(sim.run(u).outputs[0], t.evaluate(u))
            << "at " << volleyStr(u);
    });
}

TEST(TraceSim, RejectsArityMismatch)
{
    Network net(2);
    net.markOutput(net.input(0));
    TraceSimulator sim(net);
    EXPECT_THROW(sim.run(V({1})), std::invalid_argument);
}

} // namespace
} // namespace st
