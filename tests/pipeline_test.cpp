/**
 * @file
 * End-to-end pipeline stress tests: the full tool chain the repository
 * offers a user, exercised on random inputs in one pass —
 *
 *   random table -> Theorem-1 synthesis -> optimizer -> text round trip
 *   -> Lemma-2 lowering -> GRL compilation -> both circuit engines
 *
 * with every stage required to preserve the function defined by the
 * original table. Any representation bug, anywhere in the chain,
 * surfaces here.
 */

#include <gtest/gtest.h>

#include "core/network_io.hpp"
#include "core/optimize.hpp"
#include "core/properties.hpp"
#include "core/synthesis.hpp"
#include "core/trace_sim.hpp"
#include "grl/compile.hpp"
#include "grl/event_sim.hpp"
#include "neuron/microweight.hpp"
#include "neuron/srm0_network.hpp"
#include "test_helpers.hpp"
#include "tnn/tnn_io.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

/** All the function representations derived from one table. */
struct Pipeline
{
    FunctionTable table;
    Network synthesized;
    Network optimized;
    Network reparsed;
    Network lowered;
    grl::CompileResult circuit;

    explicit Pipeline(FunctionTable t)
        : table(std::move(t)),
          synthesized(synthesizeMinterms(table)),
          optimized(optimize(synthesized)),
          reparsed(networkFromText(networkToText(optimized))),
          lowered(lowerMax(reparsed)),
          circuit(grl::compileToGrl(lowered))
    {
    }
};

class PipelineSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(PipelineSweep, EveryStagePreservesTheTableFunction)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 6; ++trial) {
        Pipeline p(testing::randomTable(rng, 3, 4, 5));
        TraceSimulator tracer(p.lowered);
        for (int s = 0; s < 60; ++s) {
            auto x = testing::randomVolley(rng, 3, 10);
            Time want = p.table.evaluate(x);
            EXPECT_EQ(p.synthesized.evaluate(x)[0], want);
            EXPECT_EQ(p.optimized.evaluate(x)[0], want);
            EXPECT_EQ(p.reparsed.evaluate(x)[0], want);
            EXPECT_EQ(p.lowered.evaluate(x)[0], want);
            EXPECT_EQ(tracer.run(x).outputs[0], want);
            EXPECT_EQ(grl::simulate(p.circuit.circuit, x).outputs[0],
                      want)
                << "at " << volleyStr(x);
            EXPECT_EQ(
                grl::simulateEvents(p.circuit.circuit, x).outputs[0],
                want);
        }
    }
}

TEST_P(PipelineSweep, StagesShrinkOrPreserveSize)
{
    Rng rng(GetParam() ^ 0xbeef);
    for (int trial = 0; trial < 6; ++trial) {
        Pipeline p(testing::randomTable(rng, 3, 4, 6));
        EXPECT_LE(p.optimized.size(), p.synthesized.size());
        EXPECT_EQ(p.reparsed.size(), p.optimized.size());
        EXPECT_GE(p.lowered.size(), p.reparsed.size());
        EXPECT_EQ(p.circuit.circuit.size(), p.lowered.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSweep,
                         ::testing::Values(1001, 2002, 3003));

TEST(Pipeline, TrainedColumnToHardwareNeuron)
{
    // The full TNN workflow: train a column, persist it, reload it,
    // program the winner's quantized weights into a micro-weight SRM0,
    // compile that to CMOS, and check all four agree on fresh inputs.
    ColumnParams cp;
    cp.numInputs = 6;
    cp.numNeurons = 3;
    cp.threshold = 5;
    cp.maxWeight = 7;
    cp.seed = 31;
    Column col(cp);
    SimplifiedStdp rule(0.08, 0.05);
    Rng rng(32);
    for (int s = 0; s < 150; ++s) {
        auto x = testing::randomVolley(rng, 6, 7, 0.3);
        col.trainStep(x, rule);
    }

    Column reloaded = columnFromText(columnToText(col));
    ProgrammableSrm0 hw(cp.numInputs, reloaded.family(), cp.threshold);
    auto dw = reloaded.discreteWeights(0);
    for (size_t i = 0; i < dw.size(); ++i)
        hw.setWeight(i, dw[i]);
    auto compiled = grl::compileToGrl(hw.network());

    Srm0Neuron model = reloaded.neuronModel(0);
    for (int s = 0; s < 80; ++s) {
        auto x = testing::randomVolley(rng, 6, 7, 0.2);
        Time want = model.fire(x);
        EXPECT_EQ(col.neuronModel(0).fire(x), want);
        EXPECT_EQ(hw.fire(x), want);
        EXPECT_EQ(grl::simulate(compiled.circuit, x).outputs[0], want)
            << "at " << volleyStr(x);
    }
}

TEST(Pipeline, Srm0ThroughEveryEngine)
{
    // One neuron, five independent evaluations of the same volley.
    ResponseFunction r = ResponseFunction::biexponential(2, 4.0, 1.0);
    std::vector<ResponseFunction> syn{r, r, r.negated()};
    Srm0Neuron reference(syn, 2);
    Network net = buildSrm0Network(syn, 2);
    Network opt = optimize(net);
    TraceSimulator tracer(opt);
    auto compiled = grl::compileToGrl(opt);

    Rng rng(33);
    for (int s = 0; s < 120; ++s) {
        auto x = testing::randomVolley(rng, 3, 9, 0.25);
        Time want = reference.fire(x);
        EXPECT_EQ(net.evaluate(x)[0], want);
        EXPECT_EQ(opt.evaluate(x)[0], want);
        EXPECT_EQ(tracer.run(x).outputs[0], want);
        EXPECT_EQ(grl::simulate(compiled.circuit, x).outputs[0], want);
        EXPECT_EQ(grl::simulateEvents(compiled.circuit, x).outputs[0],
                  want);
    }
}

} // namespace
} // namespace st
