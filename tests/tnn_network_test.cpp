/**
 * @file
 * Integration tests across the TNN substrate (paper Secs. II.C, IV): a
 * multi-layer TnnNetwork, greedy layer training, and the headline
 * emergent behaviour — STDP + WTA training makes neurons selective for
 * recurring temporal patterns, yielding high clustering purity on the
 * synthetic pattern and freeway workloads.
 */

#include <gtest/gtest.h>

#include "tnn/datasets.hpp"
#include "tnn/metrics.hpp"
#include "tnn/tnn_network.hpp"

namespace st {
namespace {

ColumnParams
columnFor(size_t inputs, size_t neurons, uint64_t seed)
{
    ColumnParams p;
    p.numInputs = inputs;
    p.numNeurons = neurons;
    p.threshold = 6;
    p.maxWeight = 7;
    p.shape = ResponseShape::Step;
    p.wtaTau = 1;
    p.wtaK = 1;
    p.initWeight = 0.5;
    p.initJitter = 0.15;
    p.seed = seed;
    return p;
}

TEST(TnnNetwork, LayerWidthsMustChain)
{
    TnnNetwork net;
    net.addLayer(columnFor(8, 4, 1));
    EXPECT_THROW(net.addLayer(columnFor(5, 2, 2)),
                 std::invalid_argument);
    net.addLayer(columnFor(4, 2, 3));
    EXPECT_EQ(net.numLayers(), 2u);
}

TEST(TnnNetwork, ProcessChainsLayers)
{
    TnnNetwork net;
    net.addLayer(columnFor(4, 3, 1));
    net.addLayer(columnFor(3, 2, 2));
    Volley in(4, 0_t);
    Volley out = net.process(in);
    EXPECT_EQ(out.size(), 2u);
    // processUpTo(0) is the identity.
    EXPECT_EQ(net.processUpTo(in, 0), in);
    EXPECT_EQ(net.processUpTo(in, 2), out);
    EXPECT_THROW(net.processUpTo(in, 3), std::out_of_range);
}

TEST(TnnNetwork, TrainLayerValidatesIndex)
{
    TnnNetwork net;
    net.addLayer(columnFor(4, 3, 1));
    SimplifiedStdp rule(0.05, 0.04);
    std::vector<Volley> data{Volley(4, 0_t)};
    EXPECT_THROW(net.trainLayer(5, data, rule), std::out_of_range);
}

TEST(TnnNetwork, TrainLayerReportsFiringSteps)
{
    TnnNetwork net;
    net.addLayer(columnFor(4, 3, 1));
    SimplifiedStdp rule(0.05, 0.04);
    std::vector<Volley> data{Volley(4, 0_t), Volley(4, 1_t)};
    size_t fired = net.trainLayer(0, data, rule, 3);
    EXPECT_EQ(fired, 6u); // dense strong input always fires someone
}

/**
 * The emergence experiment (paper Sec. VI conjecture 2, refs [28][37]):
 * unsupervised STDP + WTA on jittered prototypes should produce neurons
 * selective for distinct classes — purity well above chance.
 */
TEST(TnnTraining, StdpClustersTemporalPatterns)
{
    PatternSetParams dp;
    dp.numClasses = 4;
    dp.numLines = 16;
    dp.timeSpan = 7;
    dp.jitter = 0.4;
    dp.dropProb = 0.03;
    dp.seed = 2718;
    PatternDataset data(dp);

    ColumnParams cp = columnFor(16, 8, 99);
    cp.threshold = 14;
    cp.fatigue = 8;
    Column col(cp);
    SimplifiedStdp rule(0.06, 0.045);

    auto train = data.sampleMany(900);
    for (const auto &s : train)
        col.trainStep(s.volley, rule);

    // Evaluate: winner (earliest raw spike) vs ground truth.
    ConfusionMatrix m(cp.numNeurons, dp.numClasses);
    auto test = data.sampleMany(200);
    for (const auto &s : test) {
        auto fired = col.rawFireTimes(s.volley);
        std::optional<size_t> winner;
        Time best = INF;
        for (size_t j = 0; j < fired.size(); ++j) {
            if (fired[j] < best) {
                best = fired[j];
                winner = j;
            }
        }
        m.add(winner, s.label);
    }

    EXPECT_GT(m.coverage(), 0.9);
    EXPECT_GT(m.purity(), 0.85) << m.str();
    EXPECT_GE(m.distinctLabelsCovered(), 3u) << m.str();
}

/** The Fig. 4 substitute: lane classification on synthetic AER data. */
TEST(TnnTraining, FreewayLanesBecomeSeparable)
{
    FreewayParams fp;
    fp.lanes = 3;
    fp.sensorsPerLane = 6;
    fp.jitter = 0.3;
    fp.missProb = 0.03;
    fp.seed = 42;
    FreewayGenerator gen(fp);

    ColumnParams cp = columnFor(gen.numAddresses(), 6, 7);
    cp.threshold = 14;
    cp.fatigue = 8;
    Column col(cp);
    SimplifiedStdp rule(0.07, 0.05);

    for (const auto &s : gen.generate(500))
        col.trainStep(s.volley, rule);

    ConfusionMatrix m(cp.numNeurons, fp.lanes);
    for (const auto &s : gen.generate(150)) {
        auto fired = col.rawFireTimes(s.volley);
        std::optional<size_t> winner;
        Time best = INF;
        for (size_t j = 0; j < fired.size(); ++j) {
            if (fired[j] < best) {
                best = fired[j];
                winner = j;
            }
        }
        m.add(winner, s.label);
    }
    EXPECT_GT(m.purity(), 0.9) << m.str();
    EXPECT_EQ(m.distinctLabelsCovered(), 3u) << m.str();
}

TEST(TnnNetwork, TwoLayerPipelineRuns)
{
    // A smoke test of the hierarchical arrangement: layer 1 clusters,
    // layer 2 consumes layer-1 volleys without blowing up.
    PatternSetParams dp;
    dp.numClasses = 3;
    dp.numLines = 12;
    dp.seed = 5;
    PatternDataset data(dp);

    TnnNetwork net;
    auto l0 = columnFor(12, 6, 11);
    l0.threshold = 8;
    net.addLayer(l0);
    auto l1 = columnFor(6, 3, 12);
    l1.threshold = 2;
    net.addLayer(l1);

    SimplifiedStdp rule(0.06, 0.045);
    std::vector<Volley> volleys;
    for (const auto &s : data.sampleMany(150))
        volleys.push_back(s.volley);

    size_t fired0 = net.trainLayer(0, volleys, rule, 2);
    EXPECT_GT(fired0, volleys.size()); // most steps had a winner
    size_t fired1 = net.trainLayer(1, volleys, rule, 2);
    EXPECT_GT(fired1, 0u);

    Volley out = net.process(volleys.front());
    EXPECT_EQ(out.size(), 3u);
}

} // namespace
} // namespace st
