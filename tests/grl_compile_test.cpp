/**
 * @file
 * Tests for the network -> GRL compiler (paper Sec. V): the structural
 * mapping of Fig. 16 and the paper's central implementation claim —
 * simulating the compiled CMOS circuit yields exactly the same event
 * times as evaluating the space-time network, for every primitive, for
 * whole TNN components, on every probed input.
 */

#include <gtest/gtest.h>

#include "core/properties.hpp"
#include "core/synthesis.hpp"
#include "grl/compile.hpp"
#include "grl/logic_sim.hpp"
#include "neuron/sorting.hpp"
#include "neuron/srm0_network.hpp"
#include "neuron/wta.hpp"
#include "test_helpers.hpp"

namespace st::grl {
namespace {

using testing::V;
using testing::kNo;

/** Check circuit-vs-network equality on a set of probes. */
void
expectEquivalent(const Network &net, Rng &rng, size_t probes,
                 Time::rep limit)
{
    CompileResult compiled = compileToGrl(net);
    for (size_t s = 0; s < probes; ++s) {
        auto x = testing::randomVolley(rng, net.numInputs(), limit, 0.2);
        SimResult sim = simulate(compiled.circuit, x);
        auto expected = net.evaluate(x);
        ASSERT_EQ(sim.outputs.size(), expected.size());
        EXPECT_EQ(sim.outputs, expected) << "at " << volleyStr(x);
    }
}

TEST(GrlCompile, MapsPrimitivesToFig16Gates)
{
    Network net(2);
    net.min(net.input(0), net.input(1));
    net.max(net.input(0), net.input(1));
    net.lt(net.input(0), net.input(1));
    net.inc(net.input(0), 5);
    net.config(INF);
    Circuit c = compileToGrl(net).circuit;
    EXPECT_EQ(c.countOf(GateKind::And), 1u);    // min
    EXPECT_EQ(c.countOf(GateKind::Or), 1u);     // max
    EXPECT_EQ(c.countOf(GateKind::LtCell), 1u); // lt
    EXPECT_EQ(c.countOf(GateKind::Delay), 1u);  // inc
    EXPECT_EQ(c.countOf(GateKind::Const), 1u);  // config
    EXPECT_EQ(c.totalStages(), 5u);
}

TEST(GrlCompile, PrimitiveEquivalenceExhaustive)
{
    Network net(2);
    net.markOutput(net.min(net.input(0), net.input(1)));
    net.markOutput(net.max(net.input(0), net.input(1)));
    net.markOutput(net.lt(net.input(0), net.input(1)));
    net.markOutput(net.inc(net.input(0), 3));
    CompileResult compiled = compileToGrl(net);
    testing::forAllVolleys(2, 6, [&](const std::vector<Time> &u) {
        EXPECT_EQ(simulate(compiled.circuit, u).outputs, net.evaluate(u))
            << "at " << volleyStr(u);
    });
}

TEST(GrlCompile, RandomNetworkEquivalence)
{
    Rng rng(808);
    for (int trial = 0; trial < 25; ++trial) {
        Network net = testing::randomNetwork(rng, 3, 15);
        expectEquivalent(net, rng, 30, 10);
    }
}

TEST(GrlCompile, MintermNetworkEquivalence)
{
    Rng rng(809);
    for (int trial = 0; trial < 5; ++trial) {
        FunctionTable table = testing::randomTable(rng, 3, 3, 4);
        Network net = synthesizeMinterms(table);
        expectEquivalent(net, rng, 40, 8);
    }
}

TEST(GrlCompile, BitonicSorterEquivalence)
{
    Rng rng(810);
    Network net = bitonicSortNetwork(6);
    expectEquivalent(net, rng, 60, 12);
}

TEST(GrlCompile, WtaEquivalence)
{
    Rng rng(811);
    Network net = wtaNetwork(5, 2);
    expectEquivalent(net, rng, 60, 9);
}

TEST(GrlCompile, Srm0NeuronEquivalence)
{
    // A complete spiking neuron running as an off-the-shelf CMOS
    // circuit — the paper's concluding implication.
    Rng rng(812);
    ResponseFunction r = ResponseFunction::biexponential(3, 4.0, 1.0);
    Network net = buildSrm0Network({r, r, r.negated()}, 3);
    expectEquivalent(net, rng, 40, 10);
}

TEST(GrlCompile, ConfigSnapshotsCurrentValues)
{
    Network net(1);
    NodeId mu = net.config(INF);
    net.markOutput(net.lt(net.input(0), mu));

    CompileResult enabled = compileToGrl(net);
    EXPECT_EQ(simulate(enabled.circuit, V({4})).outputs, V({4}));

    net.setConfig(mu, 0_t);
    CompileResult disabled = compileToGrl(net);
    EXPECT_EQ(simulate(disabled.circuit, V({4})).outputs, V({kNo}));
    // The earlier snapshot is unaffected.
    EXPECT_EQ(simulate(enabled.circuit, V({4})).outputs, V({4}));
}

TEST(GrlCompile, WireMapCoversEveryNode)
{
    Network net(2);
    NodeId m = net.min(net.input(0), net.input(1));
    NodeId d = net.inc(m, 2);
    net.markOutput(d);
    CompileResult compiled = compileToGrl(net);
    ASSERT_EQ(compiled.wireOf.size(), net.size());
    // Internal node values must match through the map as well.
    auto x = V({3, 8});
    SimResult sim = simulate(compiled.circuit, x);
    auto values = net.evaluateAll(x);
    for (size_t i = 0; i < net.size(); ++i)
        EXPECT_EQ(sim.fallTime[compiled.wireOf[i]], values[i]);
}

TEST(GrlCompile, DelayStagesMatchIncTotals)
{
    Network net(1);
    net.markOutput(net.inc(net.inc(net.input(0), 4), 7));
    Circuit c = compileToGrl(net).circuit;
    EXPECT_EQ(c.totalStages(), net.totalIncStages());
}

} // namespace
} // namespace st::grl
