/**
 * @file
 * Tests for TNN columns (paper Sec. II.C / IV): quantized-weight neuron
 * models, raw firing, WTA-inhibited processing, and WTA-learning
 * trainSteps — including the Guyonneau-style property that a trained
 * neuron tunes to the earliest spikes of a repeated pattern.
 */

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "tnn/layer.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

ColumnParams
smallParams()
{
    ColumnParams p;
    p.numInputs = 4;
    p.numNeurons = 3;
    p.threshold = 4;
    p.maxWeight = 7;
    p.shape = ResponseShape::Step;
    p.seed = 1234;
    return p;
}

TEST(Column, RejectsBadConfig)
{
    ColumnParams p = smallParams();
    p.numInputs = 0;
    EXPECT_THROW(Column{p}, std::invalid_argument);
    p = smallParams();
    p.numNeurons = 0;
    EXPECT_THROW(Column{p}, std::invalid_argument);
    p = smallParams();
    p.threshold = 0;
    EXPECT_THROW(Column{p}, std::invalid_argument);
}

TEST(Column, InitialWeightsWithinJitterBand)
{
    ColumnParams p = smallParams();
    p.initWeight = 0.5;
    p.initJitter = 0.2;
    Column col(p);
    for (size_t j = 0; j < p.numNeurons; ++j) {
        for (double w : col.weights(j)) {
            EXPECT_GE(w, 0.3 - 1e-9);
            EXPECT_LE(w, 0.7 + 1e-9);
        }
    }
}

TEST(Column, SameSeedSameWeights)
{
    Column a(smallParams()), b(smallParams());
    for (size_t j = 0; j < 3; ++j)
        EXPECT_EQ(a.weights(j), b.weights(j));
}

TEST(Column, NeuronModelUsesQuantizedWeights)
{
    ColumnParams p = smallParams();
    Column col(p);
    col.setWeights(0, {1.0, 0.0, 1.0, 0.0});
    auto dw = col.discreteWeights(0);
    EXPECT_EQ(dw, (std::vector<size_t>{7, 0, 7, 0}));
    Srm0Neuron model = col.neuronModel(0);
    // Weight-0 synapses contribute nothing: spikes on lines 1 and 3
    // alone never fire the neuron.
    EXPECT_EQ(model.fire(V({kNo, 0, kNo, 0})), INF);
    // A single weight-7 step crosses threshold 4 immediately.
    EXPECT_EQ(model.fire(V({2, kNo, kNo, kNo})), 2_t);
}

TEST(Column, RawFireTimesMatchPerNeuronModels)
{
    Column col(smallParams());
    Rng rng(9);
    for (int s = 0; s < 20; ++s) {
        auto x = testing::randomVolley(rng, 4, 6, 0.2);
        auto raw = col.rawFireTimes(x);
        ASSERT_EQ(raw.size(), 3u);
        for (size_t j = 0; j < 3; ++j)
            EXPECT_EQ(raw[j], col.neuronModel(j).fire(x));
    }
}

size_t
finiteCount(const Volley &v)
{
    size_t n = 0;
    for (Time t : v)
        n += t.isFinite();
    return n;
}

TEST(Column, ProcessAppliesInhibition)
{
    ColumnParams p = smallParams();
    p.wtaTau = 1;
    p.wtaK = 1;
    Column col(p);
    // Make neuron 1 much stronger so it fires strictly first on a
    // staggered volley (weak neurons need several spikes to reach
    // threshold, so they fire later).
    col.setWeights(0, {0.2, 0.2, 0.2, 0.2});
    col.setWeights(1, {1.0, 1.0, 1.0, 1.0});
    col.setWeights(2, {0.2, 0.2, 0.2, 0.2});
    auto out = col.process(V({0, 1, 2, 3}));
    EXPECT_TRUE(out[1].isFinite());
    EXPECT_EQ(out[0], INF);
    EXPECT_EQ(out[2], INF);
    EXPECT_EQ(finiteCount(out), 1u);
}

TEST(Column, ProcessWithoutInhibition)
{
    ColumnParams p = smallParams();
    p.wtaTau = 0;
    p.wtaK = 0;
    Column col(p);
    auto raw = col.rawFireTimes(V({0, 0, 0, 0}));
    auto out = col.process(V({0, 0, 0, 0}));
    EXPECT_EQ(out, raw);
}

TEST(Column, TrainStepPicksEarliestWinner)
{
    ColumnParams p = smallParams();
    Column col(p);
    col.setWeights(0, {0.3, 0.3, 0.3, 0.3});
    col.setWeights(1, {1.0, 1.0, 1.0, 1.0}); // fires earliest
    col.setWeights(2, {0.3, 0.3, 0.3, 0.3});
    SimplifiedStdp rule(0.05, 0.04);
    auto result = col.trainStep(V({0, 1, 2, 3}), rule);
    ASSERT_TRUE(result.winner.has_value());
    EXPECT_EQ(*result.winner, 1u);
    EXPECT_TRUE(result.spikeTime.isFinite());
}

TEST(Column, TrainStepWithNoFiringLeavesWeights)
{
    ColumnParams p = smallParams();
    p.threshold = 100; // unreachable
    Column col(p);
    auto before = col.weights(0);
    SimplifiedStdp rule(0.05, 0.04);
    auto result = col.trainStep(V({0, 0, 0, 0}), rule);
    EXPECT_FALSE(result.winner.has_value());
    EXPECT_EQ(col.weights(0), before);
}

TEST(Column, TrainStepOnlyUpdatesWinner)
{
    Column col(smallParams());
    // 0.9 (not 1.0) so the multiplicative rule still has headroom.
    col.setWeights(1, {0.9, 0.9, 0.9, 0.9});
    auto w0 = col.weights(0);
    auto w2 = col.weights(2);
    SimplifiedStdp rule(0.05, 0.04);
    auto result = col.trainStep(V({0, 1, 2, 3}), rule);
    ASSERT_TRUE(result.winner.has_value());
    EXPECT_EQ(*result.winner, 1u);
    EXPECT_EQ(col.weights(0), w0);
    EXPECT_EQ(col.weights(2), w2);
    EXPECT_NE(col.weights(1), (std::vector<double>(4, 0.9)));
}

TEST(Column, NeuronTunesToRepeatedPattern)
{
    // Guyonneau [21]: with repeated presentations, the winning neuron's
    // weights strengthen on the pattern's early lines and weaken on
    // silent lines.
    ColumnParams p;
    p.numInputs = 6;
    p.numNeurons = 1;
    p.threshold = 3;
    p.maxWeight = 7;
    p.seed = 5;
    Column col(p);
    SimplifiedStdp rule(0.08, 0.05);
    Volley pattern = V({0, 0, 1, kNo, kNo, kNo});
    for (int i = 0; i < 200; ++i)
        col.trainStep(pattern, rule);
    const auto &w = col.weights(0);
    EXPECT_GT(w[0], 0.9);
    EXPECT_GT(w[1], 0.9);
    EXPECT_LT(w[3], 0.1);
    EXPECT_LT(w[4], 0.1);
}

TEST(Column, BiexponentialShapeColumnsFire)
{
    ColumnParams p = smallParams();
    p.shape = ResponseShape::Biexponential;
    p.threshold = 3;
    Column col(p);
    // Weak synapses (discrete weight 2, peak 2 < theta): only
    // coincident spikes can cross the threshold.
    col.setWeights(0, {0.3, 0.3, 0.3, 0.3});
    auto raw = col.rawFireTimes(V({0, 0, 0, 0}));
    EXPECT_TRUE(raw[0].isFinite());
    // Leak: spikes spread far apart do not accumulate.
    EXPECT_EQ(col.neuronModel(0).fire(V({0, 50, 100, 150})), INF);
}

TEST(Column, PiecewiseLinearShapeColumnsFire)
{
    ColumnParams p = smallParams();
    p.shape = ResponseShape::PiecewiseLinear;
    p.threshold = 3;
    Column col(p);
    col.setWeights(0, {1.0, 1.0, 1.0, 1.0});
    EXPECT_TRUE(col.rawFireTimes(V({0, 0, 0, 0}))[0].isFinite());
}

TEST(Column, FamilyIndexedByDiscreteWeight)
{
    Column col(smallParams());
    const auto &family = col.family();
    ASSERT_EQ(family.size(), 8u); // weights 0..7
    EXPECT_TRUE(family[0].isZero());
    EXPECT_EQ(family[5].finalValue(), 5);
}

TEST(Column, FatigueExcludesRunawayWinners)
{
    ColumnParams p = smallParams();
    p.fatigue = 3;
    Column col(p);
    // Neuron 1 dominates; without fatigue it would win every round.
    col.setWeights(0, {0.6, 0.6, 0.6, 0.6});
    col.setWeights(1, {0.9, 0.9, 0.9, 0.9});
    col.setWeights(2, {0.6, 0.6, 0.6, 0.6});
    SimplifiedStdp rule(0.01, 0.01);
    for (int i = 0; i < 30; ++i)
        col.trainStep(V({0, 1, 2, 3}), rule);
    // The lead is capped: others got to win too.
    size_t min_wins = std::min({col.winCount(0), col.winCount(1),
                                col.winCount(2)});
    size_t max_wins = std::max({col.winCount(0), col.winCount(1),
                                col.winCount(2)});
    EXPECT_LE(max_wins - min_wins, p.fatigue + 1);
    EXPECT_GT(col.winCount(0) + col.winCount(2), 0u);
}

TEST(Column, FatigueDisabledAllowsMonopoly)
{
    ColumnParams p = smallParams();
    p.fatigue = 0;
    Column col(p);
    col.setWeights(0, {0.3, 0.3, 0.3, 0.3}); // fires late
    col.setWeights(1, {0.9, 0.9, 0.9, 0.9}); // fires first, always
    col.setWeights(2, {0.3, 0.3, 0.3, 0.3});
    SimplifiedStdp rule(0.0, 0.0); // freeze weights: pure competition
    for (int i = 0; i < 20; ++i)
        col.trainStep(V({0, 1, 2, 3}), rule);
    EXPECT_EQ(col.winCount(1), 20u);
    EXPECT_EQ(col.winCount(0), 0u);
}

TEST(Column, ResetFatigueClearsCounters)
{
    ColumnParams p = smallParams();
    Column col(p);
    SimplifiedStdp rule(0.01, 0.01);
    col.trainStep(V({0, 0, 0, 0}), rule);
    size_t total = col.winCount(0) + col.winCount(1) + col.winCount(2);
    EXPECT_EQ(total, 1u);
    col.resetFatigue();
    EXPECT_EQ(col.winCount(0), 0u);
    EXPECT_EQ(col.winCount(1), 0u);
    EXPECT_EQ(col.winCount(2), 0u);
}

TEST(Column, FatigueDoesNotAffectInference)
{
    ColumnParams p = smallParams();
    p.fatigue = 1;
    Column col(p);
    auto before = col.process(V({0, 1, 2, 3}));
    SimplifiedStdp rule(0.0, 0.0);
    for (int i = 0; i < 10; ++i)
        col.trainStep(V({0, 1, 2, 3}), rule);
    EXPECT_EQ(col.process(V({0, 1, 2, 3})), before);
}

TEST(Column, CopiesAreIndependent)
{
    Column a(smallParams());
    a.setWeights(0, {1.0, 1.0, 1.0, 1.0});
    (void)a.rawFireTimes(V({0, 0, 0, 0})); // populate the model cache
    Column b = a;
    EXPECT_EQ(b.weights(0), a.weights(0));
    EXPECT_EQ(b.rawFireTimes(V({0, 1, 2, 3})),
              a.rawFireTimes(V({0, 1, 2, 3})));
    b.setWeights(0, {0.0, 0.0, 0.0, 0.0});
    EXPECT_NE(b.weights(0), a.weights(0)); // no shared state
    EXPECT_EQ(a.neuronModel(0).fire(V({2, kNo, kNo, kNo})), 2_t);
}

TEST(Column, CachedModelsTrackWeightChanges)
{
    // The lazy model cache must never serve stale neurons.
    Column col(smallParams());
    col.setWeights(0, {1.0, 1.0, 1.0, 1.0});
    EXPECT_TRUE(col.rawFireTimes(V({0, 0, 0, 0}))[0].isFinite());
    col.setWeights(0, {0.0, 0.0, 0.0, 0.0});
    EXPECT_EQ(col.rawFireTimes(V({0, 0, 0, 0}))[0], INF);
    // Training updates invalidate too: repeated potentiation of the
    // early line moves the only live neuron's fire time from t=1
    // (needs two spikes) to t=0 (the strengthened first spike alone).
    col.setWeights(0, {0.0, 0.0, 0.0, 0.0});
    col.setWeights(1, {0.4, 0.4, 0.4, 0.4}); // discrete 3 < theta 4
    col.setWeights(2, {0.0, 0.0, 0.0, 0.0});
    Volley x = V({0, 1, 9, 9});
    EXPECT_EQ(col.rawFireTimes(x)[1], 1_t);
    SimplifiedStdp rule(0.9, 0.9);
    for (int i = 0; i < 6; ++i)
        col.trainStep(x, rule);
    EXPECT_EQ(col.rawFireTimes(x)[1], 0_t);
}

TEST(Column, SetWeightsValidatesArity)
{
    Column col(smallParams());
    EXPECT_THROW(col.setWeights(0, {0.5}), std::invalid_argument);
    EXPECT_THROW(col.weights(99), std::out_of_range);
}

} // namespace
} // namespace st
