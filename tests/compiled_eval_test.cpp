/**
 * @file
 * Differential tests: the compiled evaluation plan must be
 * bit-identical to the reference interpreter on every network and
 * every volley — including inf-heavy volleys, config mutations between
 * calls, structural mutations that invalidate the plan, and batched
 * evaluation across thread counts.
 */

#include <gtest/gtest.h>

#include "core/eval_plan.hpp"
#include "core/network.hpp"
#include "neuron/response.hpp"
#include "neuron/sorting.hpp"
#include "neuron/srm0_network.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace st {
namespace {

using testing::kNo;
using testing::randomVolley;
using testing::V;

/**
 * A random feedforward network over the full primitive set, richer
 * than testing::randomNetwork: it adds config nodes, n-ary min/max,
 * inc chains, and a random output set (so DCE has real work to do).
 */
Network
richRandomNetwork(Rng &rng, size_t num_inputs, size_t num_blocks)
{
    Network net(num_inputs);
    auto randomNode = [&]() {
        return static_cast<NodeId>(rng.below(net.size()));
    };
    for (size_t b = 0; b < num_blocks; ++b) {
        switch (rng.below(6)) {
          case 0:
            net.config(rng.chance(0.3) ? INF : Time(rng.below(8)));
            break;
          case 1: {
            // Inc chains of depth 1..3 exercise fusion.
            NodeId id = randomNode();
            size_t depth = 1 + rng.below(3);
            for (size_t d = 0; d < depth; ++d)
                id = net.inc(id, rng.below(5));
            break;
          }
          case 2:
          case 3: {
            std::vector<NodeId> srcs(2 + rng.below(3));
            for (NodeId &s : srcs)
                s = randomNode();
            if (rng.chance(0.5))
                net.min(srcs);
            else
                net.max(srcs);
            break;
          }
          default:
            net.lt(randomNode(), randomNode());
            break;
        }
    }
    // A random output set, biased to leave some of the graph dead.
    size_t num_outputs = 1 + rng.below(3);
    for (size_t k = 0; k < num_outputs; ++k)
        net.markOutput(static_cast<NodeId>(rng.below(net.size())));
    return net;
}

/** Compiled evaluate/evaluateAll must equal the interpreter exactly. */
void
expectCompiledMatches(const Network &net, const std::vector<Time> &volley)
{
    EXPECT_EQ(net.evaluate(volley), net.evaluateInterpreted(volley));
    EXPECT_EQ(net.evaluateAll(volley),
              net.evaluateAllInterpreted(volley));
}

TEST(CompiledEval, MatchesInterpreterExhaustivelyOnSmallNets)
{
    Rng rng(0xc0de);
    for (uint64_t seed = 0; seed < 8; ++seed) {
        Rng net_rng(seed);
        Network net = richRandomNetwork(net_rng, 3, 12);
        testing::forAllVolleys(3, 3, [&](const std::vector<Time> &u) {
            expectCompiledMatches(net, u);
        });
    }
}

TEST(CompiledEval, MatchesInterpreterOnRandomDags)
{
    for (uint64_t seed = 0; seed < 40; ++seed) {
        Rng rng(0x9000 + seed);
        Network net = richRandomNetwork(rng, 1 + rng.below(6),
                                        5 + rng.below(40));
        for (size_t v = 0; v < 16; ++v) {
            // Half the volleys are inf-heavy to stress "no event"
            // propagation through fused edges.
            double p_inf = v % 2 == 0 ? 0.2 : 0.7;
            expectCompiledMatches(
                net, randomVolley(rng, net.numInputs(), 20, p_inf));
        }
    }
}

TEST(CompiledEval, ConfigMutationNeverStalesThePlan)
{
    Network net(2);
    NodeId c = net.config(Time(3));
    NodeId gated = net.lt(net.min(net.input(0), net.input(1)), c);
    net.markOutput(gated);
    net.markOutput(c);

    Rng rng(0xfeed);
    for (size_t round = 0; round < 20; ++round) {
        net.setConfig(c, rng.chance(0.3) ? INF : Time(rng.below(10)));
        // setConfig must not recompile: config values are read live.
        if (round > 0) {
            EXPECT_TRUE(net.isCompiled());
        }
        expectCompiledMatches(net, randomVolley(rng, 2, 10));
    }
}

TEST(CompiledEval, StructuralMutationInvalidatesThePlan)
{
    Rng rng(0xabcd);
    Network net = richRandomNetwork(rng, 3, 10);
    net.evaluate(randomVolley(rng, 3, 10));
    EXPECT_TRUE(net.isCompiled());

    net.inc(net.input(0), 2);
    EXPECT_FALSE(net.isCompiled());
    net.markOutput(static_cast<NodeId>(net.size() - 1));
    EXPECT_FALSE(net.isCompiled());
    expectCompiledMatches(net, randomVolley(rng, 3, 10));

    // append() splices foreign nodes in; the plan must follow suit.
    Network sub(1);
    sub.markOutput(sub.inc(sub.input(0), 5));
    net.evaluate(randomVolley(rng, 3, 10));
    EXPECT_TRUE(net.isCompiled());
    NodeId in0 = net.input(0);
    net.markOutput(net.append(sub, {&in0, 1})[0]);
    EXPECT_FALSE(net.isCompiled());
    expectCompiledMatches(net, randomVolley(rng, 3, 10));
}

TEST(CompiledEval, BatchMatchesSerialAcrossThreadCounts)
{
    Rng rng(0xbead);
    Network net = richRandomNetwork(rng, 4, 30);

    std::vector<std::vector<Time>> batch;
    for (size_t i = 0; i < 64; ++i)
        batch.push_back(randomVolley(rng, 4, 15, i % 3 == 0 ? 0.6 : 0.2));

    std::vector<std::vector<Time>> expected;
    for (const auto &volley : batch)
        expected.push_back(net.evaluateInterpreted(volley));

    for (size_t nthreads : {1, 2, 4, 8})
        EXPECT_EQ(net.evaluateBatch(batch, nthreads), expected)
            << "nthreads=" << nthreads;
}

TEST(CompiledEval, DeadNodesAreEliminated)
{
    Network net(2);
    NodeId used = net.min(net.input(0), net.input(1));
    net.max(net.input(0), net.input(1)); // dead
    net.lt(net.input(0), net.input(1));  // dead
    net.markOutput(used);

    const EvalPlan &plan = net.compile();
    EXPECT_EQ(plan.numNodes, 5u);
    EXPECT_EQ(plan.deadNodes, 2u);
    EXPECT_EQ(plan.live.size(), 3u);
    EXPECT_EQ(plan.full.size(), 5u);
    expectCompiledMatches(net, V({4, 7}));
}

TEST(CompiledEval, IncChainsFuseIntoEdgeDelays)
{
    Network net(1);
    NodeId id = net.input(0);
    for (Time::rep d = 1; d <= 4; ++d)
        id = net.inc(id, d);
    NodeId out = net.min(id, net.input(0));
    net.markOutput(out);

    const EvalPlan &plan = net.compile();
    // All four inc nodes fold into one edge delay of 1+2+3+4.
    EXPECT_EQ(plan.fusedIncs, 4u);
    EXPECT_EQ(plan.deadNodes, 4u);
    EXPECT_EQ(plan.live.size(), 2u);
    EXPECT_EQ(net.evaluate(V({5}))[0], Time(5));
    expectCompiledMatches(net, V({0}));
    expectCompiledMatches(net, V({kNo}));
}

TEST(CompiledEval, IncFusionSaturatesExactlyLikeTheInterpreter)
{
    const Time::rep huge = ~uint64_t{0} - 3;
    Network net(1);
    NodeId id = net.inc(net.inc(net.input(0), huge), huge);
    net.markOutput(id);

    // Both the chained and the folded form must saturate to inf.
    std::vector<Time> big = {Time(huge)};
    expectCompiledMatches(net, big);
    EXPECT_EQ(net.evaluate(big)[0], INF);
    expectCompiledMatches(net, V({0}));
    expectCompiledMatches(net, V({3}));
    expectCompiledMatches(net, V({kNo}));
}

TEST(CompiledEval, OutputIncTapsStayLive)
{
    Network net(1);
    NodeId tap = net.inc(net.input(0), 7);
    net.markOutput(tap); // an inc that IS an output must survive DCE
    expectCompiledMatches(net, V({2}));
    expectCompiledMatches(net, V({kNo}));
    EXPECT_EQ(net.evaluate(V({2}))[0], Time(9));
}

TEST(CompiledEval, BuildersShipPrecompiledNetworks)
{
    Network sorter = bitonicSortNetwork(6);
    EXPECT_TRUE(sorter.isCompiled());

    std::vector<ResponseFunction> synapses(
        4, ResponseFunction::step(2));
    Network srm0 = buildSrm0Network(synapses, 3);
    EXPECT_TRUE(srm0.isCompiled());

    Rng rng(0x50f7);
    for (size_t v = 0; v < 8; ++v) {
        expectCompiledMatches(sorter, randomVolley(rng, 6, 12));
        expectCompiledMatches(srm0, randomVolley(rng, 4, 12));
    }
}

TEST(CompiledEval, CopiesAndMovesKeepPlansCoherent)
{
    Rng rng(0x7007);
    Network net = richRandomNetwork(rng, 3, 15);
    net.evaluate(randomVolley(rng, 3, 10));
    ASSERT_TRUE(net.isCompiled());

    Network copy = net; // copies start uncompiled
    EXPECT_FALSE(copy.isCompiled());
    expectCompiledMatches(copy, randomVolley(rng, 3, 10));

    Network moved = std::move(net); // moves steal the plan
    EXPECT_TRUE(moved.isCompiled());
    expectCompiledMatches(moved, randomVolley(rng, 3, 10));
}

} // namespace
} // namespace st
