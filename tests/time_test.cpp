/**
 * @file
 * Tests for the N0^inf value domain (paper Sec. III.C): ordering with inf
 * as the top element, saturating arithmetic (inf + n = inf), and the
 * value-type plumbing (hash, streams, literals).
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <unordered_set>

#include "core/time.hpp"

namespace st {
namespace {

TEST(Time, DefaultIsZero)
{
    Time t;
    EXPECT_TRUE(t.isFinite());
    EXPECT_EQ(t.value(), 0u);
    EXPECT_EQ(t, 0_t);
}

TEST(Time, LiteralConstruction)
{
    EXPECT_EQ((5_t).value(), 5u);
    EXPECT_EQ(Time(5), 5_t);
}

TEST(Time, InfinityIsNotFinite)
{
    EXPECT_TRUE(INF.isInf());
    EXPECT_FALSE(INF.isFinite());
    EXPECT_TRUE((3_t).isFinite());
    EXPECT_FALSE((3_t).isInf());
}

TEST(Time, InfGreaterThanEveryNatural)
{
    // The paper's defining law: inf > n for all n.
    EXPECT_GT(INF, 0_t);
    EXPECT_GT(INF, 1000000_t);
    EXPECT_GT(INF, Time(std::numeric_limits<Time::rep>::max() - 1));
}

TEST(Time, TotalOrderOnNaturals)
{
    EXPECT_LT(1_t, 2_t);
    EXPECT_LE(2_t, 2_t);
    EXPECT_GE(3_t, 2_t);
    EXPECT_EQ(2_t, 2_t);
    EXPECT_NE(2_t, 3_t);
}

TEST(Time, InfEqualsItself)
{
    EXPECT_EQ(INF, Time::infinity());
    EXPECT_LE(INF, INF);
    EXPECT_GE(INF, INF);
}

TEST(Time, AdditionOfConstant)
{
    EXPECT_EQ(3_t + 4, 7_t);
    EXPECT_EQ(0_t + 0, 0_t);
}

TEST(Time, InfPlusNIsInf)
{
    // The paper's second defining law: inf + n = inf.
    EXPECT_EQ(INF + 0, INF);
    EXPECT_EQ(INF + 1, INF);
    EXPECT_EQ(INF + 123456789, INF);
}

TEST(Time, AdditionSaturatesOnOverflow)
{
    Time near_max(std::numeric_limits<Time::rep>::max() - 1);
    EXPECT_EQ(near_max + 5, INF);
}

TEST(Time, TimePlusTime)
{
    EXPECT_EQ(2_t + 3_t, 5_t);
    EXPECT_EQ(2_t + INF, INF);
    EXPECT_EQ(INF + 2_t, INF);
}

TEST(Time, CompoundAddition)
{
    Time t = 1_t;
    t += 4;
    EXPECT_EQ(t, 5_t);
    t = INF;
    t += 10;
    EXPECT_EQ(t, INF);
}

TEST(Time, SubtractionOfShift)
{
    EXPECT_EQ(7_t - 3, 4_t);
    EXPECT_EQ(INF - 100, INF);
}

TEST(Time, SubtractionBelowZeroThrows)
{
    // Time never runs backwards; underflow is a logic error.
    EXPECT_THROW(3_t - 4, std::underflow_error);
    EXPECT_EQ(3_t - 3, 0_t);
}

TEST(Time, StrRendersInf)
{
    EXPECT_EQ((42_t).str(), "42");
    EXPECT_EQ(INF.str(), "inf");
}

TEST(Time, StreamOperator)
{
    std::ostringstream os;
    os << 3_t << "," << INF;
    EXPECT_EQ(os.str(), "3,inf");
}

TEST(Time, HashDistinguishesValues)
{
    std::unordered_set<Time> set;
    for (uint64_t i = 0; i < 100; ++i)
        set.insert(Time(i));
    set.insert(INF);
    EXPECT_EQ(set.size(), 101u);
    EXPECT_TRUE(set.contains(INF));
    EXPECT_TRUE(set.contains(42_t));
    EXPECT_FALSE(set.contains(100_t));
}

TEST(Time, SortsWithInfLast)
{
    std::vector<Time> v{INF, 3_t, 0_t, 7_t};
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, (std::vector<Time>{0_t, 3_t, 7_t, INF}));
}

} // namespace
} // namespace st
