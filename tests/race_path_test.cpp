/**
 * @file
 * Tests for race-logic shortest paths (paper Sec. V / Madhavan [31]):
 * the feedforward race network on DAGs, the temporal wavefront on
 * general graphs, both against Dijkstra, plus the GRL-compiled form —
 * "the time it takes to compute a value IS the value".
 */

#include <gtest/gtest.h>

#include "core/properties.hpp"
#include "grl/compile.hpp"
#include "grl/logic_sim.hpp"
#include "racelogic/dijkstra.hpp"
#include "racelogic/race_path.hpp"
#include "test_helpers.hpp"

namespace st::racelogic {
namespace {

using testing::V;
using testing::kNo;

Graph
diamond()
{
    // 0 -> 1 (2), 0 -> 2 (5), 1 -> 3 (4), 2 -> 3 (0), 1 -> 2 (1).
    Graph g(4);
    g.addEdge(0, 1, 2);
    g.addEdge(0, 2, 5);
    g.addEdge(1, 3, 4);
    g.addEdge(2, 3, 0);
    g.addEdge(1, 2, 1);
    return g;
}

TEST(Dijkstra, DiamondDistances)
{
    auto dist = dijkstra(diamond(), 0);
    EXPECT_EQ(dist, V({0, 2, 3, 3}));
}

TEST(Dijkstra, UnreachableIsInf)
{
    Graph g(3);
    g.addEdge(0, 1, 4);
    auto dist = dijkstra(g, 0);
    EXPECT_EQ(dist, V({0, 4, kNo}));
    EXPECT_THROW(dijkstra(g, 9), std::out_of_range);
}

TEST(RaceNetwork, DiamondMatchesDijkstra)
{
    Graph g = diamond();
    Network net = buildRaceNetwork(g, 0);
    auto arrival = net.evaluate(V({0}));
    EXPECT_EQ(arrival, dijkstra(g, 0));
}

TEST(RaceNetwork, StartTimeShiftsAllArrivals)
{
    // Invariance in action: launching the spike at t=7 shifts every
    // arrival by 7 — distance is the arrival minus the launch.
    Network net = buildRaceNetwork(diamond(), 0);
    auto arrival = net.evaluate(V({7}));
    EXPECT_EQ(arrival, V({7, 9, 10, 10}));
}

TEST(RaceNetwork, UnreachableVerticesStayQuiet)
{
    Graph g(4);
    g.addEdge(0, 1, 3);
    g.addEdge(2, 3, 1); // disconnected component
    Network net = buildRaceNetwork(g, 0);
    EXPECT_EQ(net.evaluate(V({0})), V({0, 3, kNo, kNo}));
}

TEST(RaceNetwork, RejectsCyclesAndBadSource)
{
    Graph cyclic(2);
    cyclic.addEdge(0, 1, 1);
    cyclic.addEdge(1, 0, 1);
    EXPECT_THROW(buildRaceNetwork(cyclic, 0), std::invalid_argument);
    EXPECT_THROW(buildRaceNetwork(diamond(), 9), std::out_of_range);
}

TEST(RaceNetwork, RandomDagsMatchDijkstra)
{
    Rng rng(314);
    for (int t = 0; t < 15; ++t) {
        Graph g = Graph::randomDag(rng, 24, 0.25, 8);
        uint32_t src = static_cast<uint32_t>(rng.below(8));
        Network net = buildRaceNetwork(g, src);
        EXPECT_EQ(net.evaluate(V({0})), dijkstra(g, src))
            << "trial " << t;
    }
}

TEST(RaceNetwork, GridsMatchDijkstra)
{
    Rng rng(315);
    Graph g = Graph::grid(rng, 6, 7, 9);
    Network net = buildRaceNetwork(g, 0);
    EXPECT_EQ(net.evaluate(V({0})), dijkstra(g, 0));
}

TEST(RaceNetwork, CompilesToGrlAndAgrees)
{
    // The full paper pipeline: graph -> s-t network -> CMOS circuit;
    // the circuit's fall times are the shortest-path distances.
    Rng rng(316);
    Graph g = Graph::grid(rng, 4, 5, 6);
    Network net = buildRaceNetwork(g, 0);
    auto compiled = grl::compileToGrl(net);
    grl::SimResult sim = grl::simulate(compiled.circuit, V({0}));
    EXPECT_EQ(sim.outputs, dijkstra(g, 0));
}

TEST(RaceWavefront, MatchesDijkstraOnDags)
{
    Rng rng(317);
    for (int t = 0; t < 10; ++t) {
        Graph g = Graph::randomDag(rng, 30, 0.2, 9);
        uint32_t src = static_cast<uint32_t>(rng.below(10));
        EXPECT_EQ(raceWavefront(g, src), dijkstra(g, src));
    }
}

TEST(RaceWavefront, HandlesCyclesUnlikeTheFeedforwardForm)
{
    // Physical race logic tolerates cycles: a spike re-entering a
    // latched vertex is ignored. The wavefront solver models that.
    Graph g(3);
    g.addEdge(0, 1, 2);
    g.addEdge(1, 2, 2);
    g.addEdge(2, 0, 1); // back edge
    g.addEdge(0, 2, 7);
    EXPECT_EQ(raceWavefront(g, 0), V({0, 2, 4}));
    EXPECT_THROW(buildRaceNetwork(g, 0), std::invalid_argument);
}

TEST(RaceWavefront, RandomGeneralGraphsMatchDijkstra)
{
    Rng rng(318);
    for (int t = 0; t < 10; ++t) {
        Graph g(16);
        for (int e = 0; e < 50; ++e) {
            auto u = static_cast<uint32_t>(rng.below(16));
            auto v = static_cast<uint32_t>(rng.below(16));
            g.addEdge(u, v, rng.below(10));
        }
        uint32_t src = static_cast<uint32_t>(rng.below(16));
        EXPECT_EQ(raceWavefront(g, src), dijkstra(g, src));
    }
}

TEST(RaceNetwork, NetworkUsesOnlyMinAndInc)
{
    Network net = buildRaceNetwork(diamond(), 0);
    EXPECT_EQ(net.countOf(Op::Lt), 0u);
    EXPECT_EQ(net.countOf(Op::Max), 0u);
    EXPECT_GT(net.countOf(Op::Min), 0u);
    EXPECT_GT(net.countOf(Op::Inc), 0u);
}

TEST(RaceNetwork, ArrivalTimesAreMonotoneInTheStart)
{
    // Race networks live in the lt-free (monotone) fragment: delaying
    // the start spike can only delay every arrival.
    Network net = buildRaceNetwork(diamond(), 0);
    for (size_t v = 0; v < 4; ++v) {
        auto fn = [&net, v](std::span<const Time> x) {
            return net.evaluate(x)[v];
        };
        EXPECT_TRUE(checkMonotonicity(1, 6, fn).holds) << "vertex " << v;
    }
}

} // namespace
} // namespace st::racelogic
