/**
 * @file
 * Unit tests for the work-stealing thread pool: every index of a
 * parallelFor runs exactly once, the chunk layout is deterministic,
 * exceptions propagate, nesting degrades to serial, and fire-and-forget
 * posts all execute.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

using namespace st;

namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(3);
    const size_t n = 10007;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(0, n, 1, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForHonorsSubrange)
{
    ThreadPool pool(2);
    std::atomic<size_t> sum{0};
    pool.parallelFor(100, 200, 8, [&](size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    size_t expect = 0;
    for (size_t i = 100; i < 200; ++i)
        expect += i;
    EXPECT_EQ(sum.load(), expect);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 0u);
    size_t count = 0; // no atomics needed: everything is inline
    pool.parallelFor(0, 64, 4, [&](size_t) { ++count; });
    EXPECT_EQ(count, 64u);
    bool ran = false;
    pool.post([&] { ran = true; });
    EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, MaxRunnersOneIsSerialInCallerThread)
{
    ThreadPool pool(4);
    std::vector<size_t> order;
    pool.parallelFor(
        0, 100, 1, [&](size_t i) { order.push_back(i); }, 1);
    std::vector<size_t> expect(100);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(order, expect); // strictly in-order => truly serial
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(0, 1000, 1,
                                  [&](size_t i) {
                                      if (i == 517)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForCompletes)
{
    ThreadPool pool(2);
    const size_t outer = 16, inner = 64;
    std::vector<std::atomic<int>> hits(outer * inner);
    pool.parallelFor(0, outer, 1, [&](size_t i) {
        // Runs on a worker (or the caller); the nested call must not
        // deadlock and must still cover its whole range.
        pool.parallelFor(0, inner, 1, [&](size_t j) {
            hits[i * inner + j].fetch_add(1,
                                          std::memory_order_relaxed);
        });
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, PostedTasksAllRun)
{
    const size_t n = 200;
    std::atomic<size_t> done{0};
    std::mutex m;
    std::condition_variable cv;
    {
        ThreadPool pool(3);
        for (size_t i = 0; i < n; ++i) {
            pool.post([&] {
                if (done.fetch_add(1) + 1 == n) {
                    std::lock_guard<std::mutex> g(m);
                    cv.notify_one();
                }
            });
        }
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return done.load() == n; });
    }
    EXPECT_EQ(done.load(), n);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
    EXPECT_GE(ThreadPool::shared().size(), 1u);
}

} // namespace
