/**
 * @file
 * Determinism tests for the parallel batched volley engine: the batch
 * APIs must reproduce the serial path bit-for-bit at every thread
 * count — including WTA tie-breaks and the algebra's lt(a, a) = inf
 * law — and batched STDP training must yield bit-identical weights.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/network.hpp"
#include "neuron/wta.hpp"
#include "obs/obs.hpp"
#include "test_helpers.hpp"
#include "tnn/datasets.hpp"
#include "tnn/stdp.hpp"
#include "tnn/tnn_network.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace st;
using st::testing::kNo;
using st::testing::V;

namespace {

/**
 * Thread counts every batch API is checked at: powers of two through
 * 16, plus a 2x-oversubscribed count (twice the larger of the hardware
 * concurrency and the shared pool's lane count) — determinism must
 * survive requesting far more lanes than the machine has.
 */
std::vector<size_t>
testLanes()
{
    const size_t hw =
        std::max<size_t>(1, std::thread::hardware_concurrency());
    const size_t pool_lanes = ThreadPool::shared().size() + 1;
    std::vector<size_t> lanes{1, 2, 4, 8, 16};
    lanes.push_back(2 * std::max({hw, pool_lanes, size_t{16}}));
    return lanes;
}

const std::vector<size_t> kLanes = testLanes();

TnnNetwork
makeNetwork(uint64_t seed)
{
    TnnNetwork net;
    ColumnParams l0;
    l0.numInputs = 24;
    l0.numNeurons = 80; // >= threshold: exercises intra-column fan-out
    l0.threshold = 8;
    l0.wtaTau = 3;
    l0.wtaK = 6;
    l0.seed = seed;
    net.addLayer(l0);
    ColumnParams l1;
    l1.numInputs = 80;
    l1.numNeurons = 16;
    l1.threshold = 3;
    l1.seed = seed + 1;
    net.addLayer(l1);
    return net;
}

std::vector<Volley>
makeBatch(size_t lines, size_t count, uint64_t seed)
{
    PatternSetParams dp;
    dp.numClasses = 6;
    dp.numLines = lines;
    dp.timeSpan = 6;
    dp.jitter = 0.5;
    dp.dropProb = 0.05;
    dp.seed = seed;
    PatternDataset data(dp);
    std::vector<Volley> batch;
    batch.reserve(count);
    for (const auto &s : data.sampleMany(count))
        batch.push_back(s.volley);
    return batch;
}

TEST(ParallelBatchTest, ProcessBatchMatchesSerialAtEveryThreadCount)
{
    TnnNetwork net = makeNetwork(0xabc);
    std::vector<Volley> batch = makeBatch(24, 96, 42);

    std::vector<Volley> serial;
    serial.reserve(batch.size());
    for (const Volley &v : batch)
        serial.push_back(net.process(v));

    for (size_t lanes : kLanes) {
        std::vector<Volley> out = net.processBatch(batch, lanes);
        ASSERT_EQ(out.size(), serial.size());
        for (size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], serial[i])
                << "volley " << i << " at " << lanes << " threads";
    }
}

TEST(ParallelBatchTest, ProcessBatchKeepsKWtaTieBreakDeterministic)
{
    // All-equal weights make every neuron fire simultaneously, so the
    // k-WTA tie-break (lowest line index wins) decides the output.
    ColumnParams cp;
    cp.numInputs = 8;
    cp.numNeurons = 72;
    cp.threshold = 2;
    cp.initJitter = 0.0; // identical neurons => guaranteed ties
    cp.wtaTau = 1;
    cp.wtaK = 3;
    cp.seed = 5;
    TnnNetwork net;
    net.addLayer(cp);

    std::vector<Volley> batch(64, V({0, 0, 1, 1, 2, 2, 3, kNo}));
    std::vector<Volley> serial;
    for (const Volley &v : batch)
        serial.push_back(net.process(v));
    for (size_t lanes : kLanes)
        EXPECT_EQ(net.processBatch(batch, lanes), serial)
            << lanes << " threads";
}

TEST(ParallelBatchTest, ProcessBatchEmptyAndSingle)
{
    TnnNetwork net = makeNetwork(0x1);
    EXPECT_TRUE(net.processBatch({}, 4).empty());
    std::vector<Volley> one = makeBatch(24, 1, 9);
    EXPECT_EQ(net.processBatch(one, 8).at(0), net.process(one[0]));
}

TEST(ParallelTrainTest, TrainBatchWeightsBitIdenticalAcrossThreads)
{
    std::vector<Volley> batch = makeBatch(24, 128, 77);
    SimplifiedStdp rule(0.06, 0.045);

    ColumnParams cp;
    cp.numInputs = 24;
    cp.numNeurons = 80;
    cp.threshold = 8;
    cp.fatigue = 4;
    cp.seed = 0xf00d;

    Column reference(cp);
    size_t fired_serial = reference.trainBatch(batch, rule, 1);

    for (size_t lanes : kLanes) {
        Column col(cp);
        size_t fired = col.trainBatch(batch, rule, lanes);
        EXPECT_EQ(fired, fired_serial) << lanes << " threads";
        for (size_t j = 0; j < cp.numNeurons; ++j) {
            EXPECT_EQ(col.weights(j), reference.weights(j))
                << "neuron " << j << " at " << lanes << " threads";
            EXPECT_EQ(col.winCount(j), reference.winCount(j))
                << "neuron " << j << " at " << lanes << " threads";
        }
    }
}

TEST(ParallelTrainTest, TrainLayerBatchedBitIdenticalAcrossThreads)
{
    std::vector<Volley> batch = makeBatch(24, 64, 123);
    SimplifiedStdp rule(0.05, 0.04);

    TnnNetwork reference = makeNetwork(0xbeef);
    size_t fired_serial =
        reference.trainLayerBatched(1, batch, rule, 3, 1);

    for (size_t lanes : kLanes) {
        TnnNetwork net = makeNetwork(0xbeef);
        size_t fired = net.trainLayerBatched(1, batch, rule, 3, lanes);
        EXPECT_EQ(fired, fired_serial) << lanes << " threads";
        for (size_t j = 0; j < net.layer(1).params().numNeurons; ++j)
            EXPECT_EQ(net.layer(1).weights(j),
                      reference.layer(1).weights(j))
                << "neuron " << j << " at " << lanes << " threads";
    }
}

TEST(ParallelTrainTest, TrainBatchOfOneMatchesTrainStep)
{
    // A 1-volley batch has no frozen-weight skew: it must agree with
    // the classic serial step exactly.
    std::vector<Volley> batch = makeBatch(24, 1, 5);
    SimplifiedStdp rule(0.06, 0.045);
    ColumnParams cp;
    cp.numInputs = 24;
    cp.numNeurons = 66;
    cp.threshold = 6;
    cp.seed = 21;

    Column stepwise(cp);
    TrainResult r = stepwise.trainStep(batch[0], rule);
    Column batched(cp);
    size_t fired = batched.trainBatch(batch, rule, 8);
    EXPECT_EQ(fired, r.winner ? 1u : 0u);
    for (size_t j = 0; j < cp.numNeurons; ++j)
        EXPECT_EQ(batched.weights(j), stepwise.weights(j));
}

TEST(EvaluateBatchTest, MatchesEvaluateIncludingLtTies)
{
    // The WTA network is built from lt gates, and identical spike
    // times hit the tie-blocking law lt(a, a) = inf. The batch path
    // must reproduce those inf outputs exactly at any thread count.
    Network net = wtaNetwork(6, 1);
    std::vector<std::vector<Time>> batch{
        V({0, 0, 0, 0, 0, 0}), // full tie: everything survives WTA
        V({3, 3, 3, 3, 3, 3}), // tie away from zero
        V({0, 1, 2, 3, 4, 5}),
        V({5, 4, 3, 2, 1, 0}),
        V({kNo, kNo, kNo, kNo, kNo, kNo}),
        V({2, 2, 9, kNo, 2, 7}),
    };
    Rng rng(99);
    for (int i = 0; i < 50; ++i) {
        std::vector<Time> v(6);
        for (auto &t : v) {
            uint64_t x = rng.below(8);
            t = x == 7 ? INF : Time(x);
        }
        batch.push_back(v);
    }

    std::vector<std::vector<Time>> serial;
    for (const auto &v : batch)
        serial.push_back(net.evaluate(v));

    for (size_t lanes : kLanes) {
        std::vector<std::vector<Time>> out =
            net.evaluateBatch(batch, lanes);
        ASSERT_EQ(out.size(), serial.size());
        for (size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], serial[i])
                << "volley " << i << " at " << lanes << " threads";
    }
}

#if ST_OBS_ENABLED
TEST(ParallelBatchTest, MultiThreadedBatchTakesThePipelinedPath)
{
    // A multi-lane batch large enough for several blocks must go
    // through the pipelined dataflow engine, not the serial fallback:
    // the tnn.pipeline counters advance by (at least) the expected
    // block and stage totals. Combined with the bit-identity tests
    // above, this pins "pipelined AND identical", not just one of the
    // two.
    auto counter = [](const char *name) -> uint64_t {
        for (const auto &c :
             obs::MetricsRegistry::instance().snapshot().counters) {
            if (c.name == name)
                return c.value;
        }
        return 0;
    };
    const uint64_t blocks_before = counter("tnn.pipeline.blocks");
    const uint64_t stages_before = counter("tnn.pipeline.stages");

    TnnNetwork net = makeNetwork(0xd00d);
    std::vector<Volley> batch = makeBatch(24, 96, 271);
    net.processBatch(batch, 4);

    const uint64_t blocks = counter("tnn.pipeline.blocks") - blocks_before;
    const uint64_t stages = counter("tnn.pipeline.stages") - stages_before;
    EXPECT_GE(blocks, 2u) << "batch ran on the serial fallback";
    // Two layers: every block contributes two stage tasks.
    EXPECT_GE(stages, 2 * blocks);
}
#endif

TEST(ParallelBatchTest, ConcurrentColdCacheProcessIsSafe)
{
    // Regression for the model-cache race: a freshly constructed
    // column has an empty cache, so a parallel batch makes many
    // threads build models concurrently. Under TSan this test fails
    // if the cache publication is not properly synchronized.
    TnnNetwork net = makeNetwork(0xcafe);
    std::vector<Volley> batch = makeBatch(24, 64, 31337);
    std::vector<Volley> parallel_first = net.processBatch(batch, 8);

    TnnNetwork fresh = makeNetwork(0xcafe);
    std::vector<Volley> serial;
    for (const Volley &v : batch)
        serial.push_back(fresh.process(v));
    EXPECT_EQ(parallel_first, serial);
}

} // namespace
