/**
 * @file
 * Tests for the tempotron (Guetig & Sompolinsky, paper Sec. II.C):
 * kernel shape, potential dynamics, the error-driven update rule, and
 * end-to-end learning of temporal discrimination tasks.
 */

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "tnn/datasets.hpp"
#include "tnn/tempotron.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

TempotronParams
smallParams(size_t inputs)
{
    TempotronParams p;
    p.numInputs = inputs;
    p.threshold = 1.0;
    p.learningRate = 0.05;
    p.seed = 11;
    return p;
}

TEST(Tempotron, RejectsBadConfig)
{
    TempotronParams p = smallParams(0);
    EXPECT_THROW(Tempotron{p}, std::invalid_argument);
    p = smallParams(2);
    p.tauFast = 5.0; // >= tauSlow
    EXPECT_THROW(Tempotron{p}, std::invalid_argument);
}

TEST(Tempotron, KernelIsNormalizedAndCausal)
{
    Tempotron n(smallParams(2));
    EXPECT_DOUBLE_EQ(n.kernel(-1.0), 0.0); // causal
    EXPECT_DOUBLE_EQ(n.kernel(0.0), 0.0);  // biexp starts at 0
    double peak = 0.0;
    for (double t = 0; t < 20; t += 0.25)
        peak = std::max(peak, n.kernel(t));
    EXPECT_NEAR(peak, 1.0, 0.01); // normalized peak
    EXPECT_LT(n.kernel(40.0), 1e-3); // decays
}

TEST(Tempotron, PotentialSumsWeightedKernels)
{
    TempotronParams p = smallParams(2);
    p.initJitter = 0.0;
    p.initWeight = 0.5;
    Tempotron n(p);
    auto v = V({0, kNo});
    double t_star = 2.0; // near the kernel peak for tau 4/1
    double single = n.potentialAt(v, t_star);
    EXPECT_NEAR(single, 0.5 * n.kernel(t_star), 1e-12);
    auto both = V({0, 0});
    EXPECT_NEAR(n.potentialAt(both, t_star), 2 * single, 1e-12);
}

TEST(Tempotron, TrainPotentiatesOnMissedPositive)
{
    TempotronParams p = smallParams(3);
    p.initWeight = 0.01; // too weak to fire
    p.initJitter = 0.0;
    Tempotron n(p);
    TempotronSample pos{V({0, 1, 2}), true};
    ASSERT_FALSE(n.fires(pos.volley));
    ASSERT_TRUE(n.train(pos)); // error -> update
    for (double w : n.weights())
        EXPECT_GT(w, 0.01);
}

TEST(Tempotron, TrainDepressesOnFalsePositive)
{
    TempotronParams p = smallParams(3);
    p.initWeight = 2.0; // fires on anything
    p.initJitter = 0.0;
    Tempotron n(p);
    TempotronSample neg{V({0, 1, 2}), false};
    ASSERT_TRUE(n.fires(neg.volley));
    ASSERT_TRUE(n.train(neg));
    for (double w : n.weights())
        EXPECT_LT(w, 2.0);
}

TEST(Tempotron, NoUpdateWhenCorrect)
{
    TempotronParams p = smallParams(2);
    p.initWeight = 2.0;
    p.initJitter = 0.0;
    Tempotron n(p);
    auto before = n.weights();
    EXPECT_FALSE(n.train({V({0, 0}), true})); // fires, should fire
    EXPECT_EQ(n.weights(), before);
}

TEST(Tempotron, SilentLinesNeverUpdate)
{
    TempotronParams p = smallParams(2);
    p.initWeight = 0.01;
    p.initJitter = 0.0;
    Tempotron n(p);
    n.train({V({0, kNo}), true});
    EXPECT_GT(n.weights()[0], 0.01);
    EXPECT_DOUBLE_EQ(n.weights()[1], 0.01);
}

TEST(Tempotron, LearnsCoincidenceDetection)
{
    // Task: fire iff the two halves of the volley spike together
    // (within 1 unit); stay quiet when they are 6+ units apart.
    TempotronParams p = smallParams(8);
    p.threshold = 1.2;
    p.seed = 21;
    Tempotron n(p);
    Rng rng(5);
    std::vector<TempotronSample> data;
    for (int s = 0; s < 60; ++s) {
        bool positive = s % 2 == 0;
        Volley v(8, INF);
        Time::rep base = rng.below(3);
        for (size_t i = 0; i < 8; ++i) {
            Time::rep offset = i < 4 ? 0 : (positive ? 0 : 6);
            v[i] = Time(base + offset + rng.below(2));
        }
        data.push_back({v, positive});
    }
    auto errors = n.trainEpochs(data, 60);
    EXPECT_LT(errors.back(), errors.front());
    EXPECT_GE(n.accuracy(data), 0.9);
}

TEST(Tempotron, LearnsPatternDiscrimination)
{
    // Classic tempotron task: one temporal pattern is the positive
    // class, another the negative, both jittered.
    PatternSetParams dp;
    dp.numClasses = 2;
    dp.numLines = 12;
    dp.timeSpan = 7;
    dp.jitter = 0.3;
    dp.dropProb = 0.0;
    dp.seed = 33;
    PatternDataset source(dp);

    TempotronParams p = smallParams(12);
    p.threshold = 1.5;
    p.seed = 34;
    Tempotron n(p);

    std::vector<TempotronSample> train, test;
    for (int s = 0; s < 120; ++s) {
        auto sample = source.sample(s % 2);
        (s < 80 ? train : test)
            .push_back({sample.volley, sample.label == 0});
    }
    n.trainEpochs(train, 80);
    EXPECT_GE(n.accuracy(test), 0.85);
}

TEST(Tempotron, NegativeWeightsActInhibitory)
{
    TempotronParams p = smallParams(2);
    p.initWeight = 0.2;
    p.initJitter = 0.0;
    p.learningRate = 0.1;
    Tempotron n(p);
    // Line 0 alone must fire (positive class); lines 0+1 together must
    // not (negative class) — only a negative w1 can satisfy both.
    for (int i = 0; i < 120; ++i) {
        n.train({V({0, kNo}), true});
        n.train({V({0, 0}), false});
    }
    EXPECT_GT(n.weights()[0], 0.0);
    EXPECT_LT(n.weights()[1], 0.0);
}

TEST(Tempotron, AccuracyOnEmptyDataIsZero)
{
    Tempotron n(smallParams(2));
    EXPECT_DOUBLE_EQ(n.accuracy({}), 0.0);
}

} // namespace
} // namespace st
