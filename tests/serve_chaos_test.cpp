/**
 * @file
 * Chaos soak for the serving layer (ctest label: chaos; the sanitizer
 * CI jobs run it at 1 and 8 batch threads).
 *
 * The contract under test is graceful degradation: at every chaos
 * severity the server may *degrade* — drop volleys via the accounted
 * deadline/shed/poisoned paths, quarantine malformed sessions — but
 * must never crash, deadlock, reorder a session's deliveries, or lose
 * a volley silently. A SIGTERM mid-flight must drain every session to
 * its end (or err) line within the drain deadline. Chaos is driven by
 * the PR 5 FaultInjector both server-side (enableChaos perturbs
 * batched volleys, keyed by (session, seq)) and client-side
 * (deterministic event drops/jitter on the wire).
 */

#include <gtest/gtest.h>

#include <csignal>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "serve/model.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "tnn/tnn_network.hpp"

namespace st::serve {
namespace {

constexpr size_t kInputs = 6;

TnnNetwork
makeNet()
{
    TnnNetwork net;
    ColumnParams p;
    p.numInputs = kInputs;
    p.numNeurons = kInputs;
    p.wtaK = 2;
    p.seed = 23;
    net.addLayer(p);
    return net;
}

fault::FaultSpec
specAt(double severity)
{
    fault::FaultSpec spec;
    spec.seed = 0xc4a05;
    spec.jitter = static_cast<Time::rep>(severity * 4.0);
    spec.dropProb = 0.2 * severity;
    spec.spuriousProb = 0.1 * severity;
    return spec;
}

uint64_t
mix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

struct Outcome
{
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    uint64_t endVolleys = 0;
    uint64_t endDrops = 0;
    bool sawEnd = false;
    bool sawDataLoss = false;
    bool orderOk = true;
    std::vector<std::string> volleyLines;
};

/**
 * Feed @p volleys windows with deterministic client-side chaos
 * (event drops + forward jitter, seeded) and collect the replies.
 * Stops feeding early if the server starts draining.
 */
Outcome
drive(StreamServer &server, Session &s, size_t volleys,
      double wire_chaos, uint64_t seed)
{
    const uint64_t window = 8;
    s.feedLine("stserve 1", steadyNowMs());
    s.feedLine("addresses " + std::to_string(kInputs) + " window " +
                   std::to_string(window),
               steadyNowMs());
    uint64_t rng = seed;
    for (size_t w = 0; w < volleys && !server.draining(); ++w) {
        const uint64_t base = w * window;
        uint64_t t = base;
        for (size_t k = 0; k < 3; ++k) {
            if (wire_chaos > 0.0 &&
                (mix64(rng) % 100) < uint64_t(20.0 * wire_chaos))
                continue; // event lost on the wire
            t += mix64(rng) % 3;
            if (t >= base + window)
                break;
            s.feedLine(std::to_string(t) + " " +
                           std::to_string(mix64(rng) % kInputs),
                       steadyNowMs());
        }
        s.feedLine("flush", steadyNowMs());
    }
    s.feedLine("end", steadyNowMs());

    Outcome out;
    uint64_t lastSeq = 0;
    bool sawSeq = false;
    while (true) {
        std::optional<std::string> line =
            s.nextOutput(std::chrono::milliseconds(50));
        if (!line) {
            if (s.finished())
                break;
            continue;
        }
        if (line->rfind("volley ", 0) == 0) {
            const uint64_t seq = std::stoull(line->substr(7));
            if (sawSeq && seq <= lastSeq)
                out.orderOk = false;
            lastSeq = seq;
            sawSeq = true;
            ++out.delivered;
            out.volleyLines.push_back(std::move(*line));
        } else if (line->rfind("drop ", 0) == 0) {
            ++out.dropped;
        } else if (line->rfind("end volleys ", 0) == 0) {
            out.sawEnd = true;
            std::istringstream is(line->substr(4));
            std::string kw;
            is >> kw >> out.endVolleys >> kw >> out.endDrops;
        } else if (line->find("data_loss") != std::string::npos) {
            out.sawDataLoss = true;
        }
    }
    return out;
}

class ServeChaos : public ::testing::TestWithParam<size_t>
{
};

/**
 * Severity sweep: at 0, 0.25 and 1.0, N concurrent chaotic sessions
 * must all run to completion with order preserved and every volley
 * accounted (delivered + dropped == the end line's totals — shed and
 * deadline losses go through the defined reject paths, never
 * silently).
 */
TEST_P(ServeChaos, SeveritySweepDegradesGracefully)
{
    const size_t nthreads = GetParam();
    for (const double severity : {0.0, 0.25, 1.0}) {
        ServeConfig config;
        config.window = 8;
        config.deadlineMs = 10000;
        config.nthreads = nthreads;
        StreamServer server(
            std::make_unique<TnnServeModel>(makeNet()), config);
        if (severity > 0.0)
            server.enableChaos(specAt(severity));
        server.start();

        constexpr size_t kSessions = 6;
        constexpr size_t kVolleys = 24;
        std::vector<std::shared_ptr<Session>> sessions;
        for (size_t i = 0; i < kSessions; ++i) {
            auto open = server.openSession("chaos");
            ASSERT_TRUE(open.session != nullptr);
            sessions.push_back(open.session);
        }
        std::vector<Outcome> outcomes(kSessions);
        std::vector<std::thread> drivers;
        for (size_t i = 0; i < kSessions; ++i)
            drivers.emplace_back([&, i] {
                outcomes[i] = drive(server, *sessions[i], kVolleys,
                                    severity, 1000 + i);
            });
        for (auto &d : drivers)
            d.join();

        for (size_t i = 0; i < kSessions; ++i) {
            const Outcome &o = outcomes[i];
            EXPECT_TRUE(o.sawEnd)
                << "severity " << severity << " session " << i;
            EXPECT_TRUE(o.orderOk)
                << "severity " << severity << " session " << i;
            EXPECT_EQ(o.delivered, o.endVolleys)
                << "severity " << severity << " session " << i;
            EXPECT_EQ(o.dropped, o.endDrops)
                << "severity " << severity << " session " << i;
            EXPECT_EQ(o.delivered + o.dropped, kVolleys)
                << "severity " << severity << " session " << i;
        }
        server.requestStop();
        EXPECT_TRUE(server.waitDrained());
    }
}

/**
 * Chaos is keyed by (session id, seq): the same stream served twice
 * (fresh server, same session id) must produce byte-identical volley
 * lines, at any batch thread count.
 */
TEST_P(ServeChaos, ChaosIsDeterministicPerSessionAndSeq)
{
    const size_t nthreads = GetParam();
    std::vector<std::string> first;
    for (int run = 0; run < 2; ++run) {
        ServeConfig config;
        config.window = 8;
        config.deadlineMs = 10000;
        config.nthreads = nthreads;
        StreamServer server(
            std::make_unique<TnnServeModel>(makeNet()), config);
        server.enableChaos(specAt(0.5));
        server.start();
        auto open = server.openSession("det");
        ASSERT_TRUE(open.session != nullptr);
        Outcome o = drive(server, *open.session, 20, 0.0, 42);
        EXPECT_TRUE(o.sawEnd);
        EXPECT_EQ(o.delivered, 20u);
        server.requestStop();
        EXPECT_TRUE(server.waitDrained());
        if (run == 0)
            first = o.volleyLines;
        else
            EXPECT_EQ(o.volleyLines, first);
    }
}

/**
 * SIGTERM mid-flight: sessions still streaming when the signal lands
 * must drain to a clean end (or an accounted err line) within the
 * drain deadline — no deadlock, no silent loss, readers released.
 */
TEST_P(ServeChaos, SigtermMidFlightDrainsWithinDeadline)
{
    const size_t nthreads = GetParam();
    ServeConfig config;
    config.window = 8;
    config.deadlineMs = 2000;
    config.drainDeadlineMs = 5000;
    config.nthreads = nthreads;
    StreamServer server(std::make_unique<TnnServeModel>(makeNet()),
                        config);
    server.enableChaos(specAt(0.5));
    StreamServer::installSignalHandlers(&server);
    server.start();

    constexpr size_t kSessions = 4;
    std::vector<std::shared_ptr<Session>> sessions;
    for (size_t i = 0; i < kSessions; ++i) {
        auto open = server.openSession("sig");
        ASSERT_TRUE(open.session != nullptr);
        sessions.push_back(open.session);
    }
    std::vector<Outcome> outcomes(kSessions);
    std::vector<std::thread> drivers;
    for (size_t i = 0; i < kSessions; ++i)
        drivers.emplace_back([&, i] {
            // Long streams: the signal lands mid-flight.
            outcomes[i] = drive(server, *sessions[i], 5000, 0.25,
                                7000 + i);
        });

    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_EQ(std::raise(SIGTERM), 0);

    const uint64_t t0 = steadyNowMs();
    EXPECT_TRUE(server.waitDrained());
    EXPECT_LE(steadyNowMs() - t0, config.drainDeadlineMs + 2000);
    for (auto &d : drivers)
        d.join();
    EXPECT_TRUE(server.draining());
    EXPECT_EQ(server.activeSessions(), 0u);
    for (size_t i = 0; i < kSessions; ++i) {
        const Outcome &o = outcomes[i];
        // Every session terminated through a defined path.
        EXPECT_TRUE(o.sawEnd || o.sawDataLoss) << "session " << i;
        EXPECT_TRUE(o.orderOk) << "session " << i;
        if (o.sawEnd) {
            EXPECT_EQ(o.delivered, o.endVolleys) << "session " << i;
            EXPECT_EQ(o.dropped, o.endDrops) << "session " << i;
        }
    }
    StreamServer::installSignalHandlers(nullptr);
}

INSTANTIATE_TEST_SUITE_P(Threads, ServeChaos,
                         ::testing::Values(size_t{1}, size_t{8}),
                         [](const auto &info) {
                             return "t" + std::to_string(info.param);
                         });

} // namespace
} // namespace st::serve
