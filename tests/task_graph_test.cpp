/**
 * @file
 * TaskGraph: the dependency-tracking primitive under the pipelined
 * batch engine. Beyond the basic contract (every task runs once, after
 * its dependencies, exceptions poison the rest), the two flagship
 * tests pin the *dataflow* property the engine buys over barriered
 * parallelFor stages: with a two-block two-stage graph wired like the
 * pipeline, a slow node in one block must not stall the other block's
 * independent nodes. Each direction is a latch that only the allegedly
 * stalled node can release — under barrier or block-serial scheduling
 * the graph deadlocks (surfaced as a timed-out latch, not a hang);
 * under true dataflow it completes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "util/task_graph.hpp"
#include "util/thread_pool.hpp"

using namespace st;

namespace {

/** A timed one-shot latch: waitFor() fails instead of hanging. */
struct Flag
{
    std::mutex m;
    std::condition_variable cv;
    bool set = false;

    void signal()
    {
        {
            std::lock_guard lock(m);
            set = true;
        }
        cv.notify_all();
    }

    bool waitFor(std::chrono::seconds timeout)
    {
        std::unique_lock lock(m);
        return cv.wait_for(lock, timeout, [&] { return set; });
    }
};

TEST(TaskGraph, RunsEveryTaskExactlyOnce)
{
    TaskGraph g;
    constexpr size_t n = 64;
    std::vector<std::atomic<int>> runs(n);
    for (size_t i = 0; i < n; ++i)
        g.submit([&runs, i] { runs[i].fetch_add(1); });
    EXPECT_EQ(g.size(), n);
    g.wait();
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(runs[i].load(), 1) << "task " << i;
}

TEST(TaskGraph, DependenciesOrderExecution)
{
    // A diamond: a -> {b, c} -> d. Start order within {b, c} is
    // unspecified, but every edge must be respected.
    TaskGraph g;
    std::atomic<int> a_done{0}, b_done{0}, c_done{0};
    auto a = g.submit([&] { a_done = 1; });
    auto b = g.submit(
        [&] {
            EXPECT_EQ(a_done.load(), 1);
            b_done = 1;
        },
        {a});
    auto c = g.submit(
        [&] {
            EXPECT_EQ(a_done.load(), 1);
            c_done = 1;
        },
        {a});
    g.submit(
        [&] {
            EXPECT_EQ(b_done.load(), 1);
            EXPECT_EQ(c_done.load(), 1);
        },
        {b, c});
    g.wait();
}

TEST(TaskGraph, LongChainRunsInOrder)
{
    TaskGraph g;
    constexpr size_t n = 200;
    std::vector<int> order;
    order.reserve(n);
    TaskGraph::Ticket prev = 0;
    for (size_t i = 0; i < n; ++i) {
        auto fn = [&order, i] { order.push_back(static_cast<int>(i)); };
        prev = i == 0 ? g.submit(fn) : g.submit(fn, {prev});
    }
    g.wait();
    ASSERT_EQ(order.size(), n);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(order[i], static_cast<int>(i));
}

TEST(TaskGraph, ZeroWorkerPoolRunsInlineOnWait)
{
    // Ready tasks drain FIFO, so the chained task (made ready only
    // when its dependency finishes) lands after the independent one.
    ThreadPool pool(0);
    TaskGraph g(pool);
    std::vector<int> order;
    auto a = g.submit([&] { order.push_back(0); });
    g.submit([&] { order.push_back(1); }, {a});
    g.submit([&] { order.push_back(2); });
    // Nothing runs before wait(): there are no workers to run it.
    EXPECT_TRUE(order.empty());
    g.wait();
    EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(TaskGraph, MaxRunnersOneNeverOverlapsTasks)
{
    TaskGraph g(ThreadPool::shared(), 1);
    std::atomic<int> live{0};
    std::atomic<int> peak{0};
    for (int i = 0; i < 32; ++i) {
        g.submit([&] {
            int now = live.fetch_add(1) + 1;
            int seen = peak.load();
            while (now > seen && !peak.compare_exchange_weak(seen, now)) {
            }
            live.fetch_sub(1);
        });
    }
    g.wait();
    EXPECT_EQ(peak.load(), 1);
}

TEST(TaskGraph, ExceptionPoisonsUnstartedTasks)
{
    // Inline mode makes the schedule deterministic: the throwing task
    // runs first, so everything behind it must be skipped — including
    // the dependency-free straggler.
    ThreadPool pool(0);
    TaskGraph g(pool);
    std::atomic<int> ran{0};
    auto bad = g.submit([] { throw std::runtime_error("poison"); });
    g.submit([&] { ran.fetch_add(1); }, {bad});
    g.submit([&] { ran.fetch_add(1); });
    EXPECT_THROW(g.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 0);
}

TEST(TaskGraph, SubmitAfterWaitThrows)
{
    TaskGraph g;
    g.submit([] {});
    g.wait();
    EXPECT_THROW(g.submit([] {}), std::logic_error);
}

TEST(TaskGraph, UnknownDependencyTicketThrows)
{
    TaskGraph g;
    auto a = g.submit([] {});
    EXPECT_THROW(g.submit([] {}, {static_cast<TaskGraph::Ticket>(a + 7)}),
                 std::out_of_range);
}

TEST(TaskGraph, DestructorWithoutWaitCompletesInFlightTasks)
{
    std::atomic<int> ran{0};
    {
        TaskGraph g;
        for (int i = 0; i < 16; ++i)
            g.submit([&] { ran.fetch_add(1); });
        // No wait(): the destructor must still not let task lambdas
        // outlive `ran`.
    }
    // Started tasks have finished; unstarted ones were dropped. Either
    // way nothing touches freed memory (ASan/TSan enforce that part).
    EXPECT_LE(ran.load(), 16);
}

/**
 * Pipelining, direction 1: a slow *later* stage of block 0 must not
 * stall block 1's *earlier* stage. The graph is the batch engine's
 * exact shape — per-block chains (B,s) -> (B,s+1) and no cross-block
 * edges. Node (0,1) blocks until (1,0) has run; a scheduler that
 * serializes whole blocks (block 1 only after block 0) deadlocks here,
 * dataflow completes.
 */
TEST(TaskGraphPipeline, SlowLateStageDoesNotStallNextBlock)
{
    ThreadPool pool(2); // two lanes: one may be parked in the latch
    TaskGraph g(pool);
    Flag b1s0_ran;
    bool released = false;

    auto b0s0 = g.submit([] {});
    g.submit(
        [&] { released = b1s0_ran.waitFor(std::chrono::seconds(10)); },
        {b0s0});
    auto b1s0 = g.submit([&] { b1s0_ran.signal(); });
    g.submit([] {}, {b1s0});

    g.wait();
    EXPECT_TRUE(released)
        << "block 1 stage 0 never ran while block 0 stage 1 was in "
           "flight: the graph serialized blocks instead of pipelining";
}

/**
 * Pipelining, direction 2: a slow *early* stage of block 1 must not
 * stall block 0's *later* stage. Node (1,0) blocks until (0,1) has
 * run; a scheduler with a barrier between stages (stage 1 only after
 * every block's stage 0 — the old parallelFor-per-layer shape)
 * deadlocks here, dataflow completes.
 */
TEST(TaskGraphPipeline, SlowEarlyStageDoesNotStallPreviousBlock)
{
    ThreadPool pool(2);
    TaskGraph g(pool);
    Flag b0s1_ran;
    bool released = false;

    auto b0s0 = g.submit([] {});
    g.submit([&] { b0s1_ran.signal(); }, {b0s0});
    auto b1s0 = g.submit(
        [&] { released = b0s1_ran.waitFor(std::chrono::seconds(10)); });
    g.submit([] {}, {b1s0});

    g.wait();
    EXPECT_TRUE(released)
        << "block 0 stage 1 never ran while block 1 stage 0 was in "
           "flight: the graph barriers between stages instead of "
           "pipelining";
}

} // namespace
