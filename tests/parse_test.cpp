/**
 * @file
 * Strict scalar parsing + hardened env-var access (util/parse.hpp):
 * whole-token conversion only, and every malformed environment value
 * falls back loudly — stderr warning plus an env.parse_rejected tick —
 * never silently.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"
#include "util/parse.hpp"

namespace st {
namespace {

// Counter ticks vanish when the obs layer is compiled out; expected
// reject deltas scale by this so the suite stays green under
// -DST_OBS_ENABLED=OFF (the warning + fallback behavior is still
// asserted either way).
#if ST_OBS_ENABLED
constexpr uint64_t kTick = 1;
#else
constexpr uint64_t kTick = 0;
#endif

uint64_t
parseRejects()
{
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::instance().snapshot();
    for (const auto &c : snap.counters)
        if (c.name == "env.parse_rejected")
            return c.value;
    return 0;
}

/** RAII setenv/unsetenv so tests cannot leak into each other. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv() { unsetenv(name_); }

  private:
    const char *name_;
};

TEST(ParseUint64Strict, AcceptsWholeDecimalTokens)
{
    EXPECT_EQ(parseUint64Strict("0"), 0u);
    EXPECT_EQ(parseUint64Strict("42"), 42u);
    EXPECT_EQ(parseUint64Strict("18446744073709551615"),
              UINT64_MAX);
}

TEST(ParseUint64Strict, RejectsPartialAndOverflow)
{
    EXPECT_FALSE(parseUint64Strict(""));
    EXPECT_FALSE(parseUint64Strict("8x"));
    EXPECT_FALSE(parseUint64Strict("-1"));
    EXPECT_FALSE(parseUint64Strict("+1"));
    EXPECT_FALSE(parseUint64Strict("0x10"));
    EXPECT_FALSE(parseUint64Strict(" 7"));
    EXPECT_FALSE(parseUint64Strict("18446744073709551616"));
}

TEST(ParseDoubleStrict, WholeTokenFiniteOnly)
{
    EXPECT_DOUBLE_EQ(parseDoubleStrict("0.25").value(), 0.25);
    EXPECT_DOUBLE_EQ(parseDoubleStrict("-3").value(), -3.0);
    EXPECT_FALSE(parseDoubleStrict(""));
    EXPECT_FALSE(parseDoubleStrict("1.5garbage"));
    EXPECT_FALSE(parseDoubleStrict("inf"));
    EXPECT_FALSE(parseDoubleStrict("nan"));
    EXPECT_FALSE(parseDoubleStrict("1e999"));
}

TEST(EnvUint, UnsetFallsBackSilently)
{
    ScopedEnv env("ST_TEST_PARSE_U", nullptr);
    const uint64_t before = parseRejects();
    EXPECT_EQ(envUint("ST_TEST_PARSE_U", 7), 7u);
    EXPECT_EQ(parseRejects(), before);
}

TEST(EnvUint, ValidValueApplies)
{
    ScopedEnv env("ST_TEST_PARSE_U", "12");
    EXPECT_EQ(envUint("ST_TEST_PARSE_U", 7), 12u);
}

TEST(EnvUint, GarbageWarnsTicksMetricAndFallsBack)
{
    ScopedEnv env("ST_TEST_PARSE_U", "twelve");
    const uint64_t before = parseRejects();
    EXPECT_EQ(envUint("ST_TEST_PARSE_U", 7), 7u);
    EXPECT_EQ(parseRejects(), before + kTick);
}

TEST(EnvUint, OutOfRangeIsARejectNotAClamp)
{
    ScopedEnv env("ST_TEST_PARSE_U", "99");
    const uint64_t before = parseRejects();
    EXPECT_EQ(envUint("ST_TEST_PARSE_U", 7, 1, 64), 7u);
    EXPECT_EQ(parseRejects(), before + kTick);
}

TEST(EnvDouble, GarbageAndRangeRejects)
{
    const uint64_t before = parseRejects();
    {
        ScopedEnv env("ST_TEST_PARSE_D", "0.5x");
        EXPECT_DOUBLE_EQ(envDouble("ST_TEST_PARSE_D", 0.1, 0, 1),
                         0.1);
    }
    {
        ScopedEnv env("ST_TEST_PARSE_D", "7.0");
        EXPECT_DOUBLE_EQ(envDouble("ST_TEST_PARSE_D", 0.1, 0, 1),
                         0.1);
    }
    EXPECT_EQ(parseRejects(), before + 2 * kTick);
}

TEST(EnvString, SetButEmptyIsAReject)
{
    const uint64_t before = parseRejects();
    ScopedEnv env("ST_TEST_PARSE_S", "");
    EXPECT_EQ(envString("ST_TEST_PARSE_S", "dflt"), "dflt");
    EXPECT_EQ(parseRejects(), before + kTick);
}

} // namespace
} // namespace st
