/**
 * @file
 * Tests for the STDP rules (paper Sec. II.A): potentiation of inputs
 * preceding the output spike, depression of later/absent inputs, soft
 * and hard bounds, convergence direction, and weight quantization onto
 * the low-resolution hardware range.
 */

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "tnn/stdp.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

TEST(SimplifiedStdp, PotentiatesEarlyDepressesLate)
{
    SimplifiedStdp rule(0.1, 0.1);
    std::vector<double> w{0.5, 0.5, 0.5};
    // Inputs: before output (potentiate), after output (depress),
    // absent (depress).
    rule.update(w, V({2, 7, kNo}), 5_t);
    EXPECT_GT(w[0], 0.5);
    EXPECT_LT(w[1], 0.5);
    EXPECT_LT(w[2], 0.5);
}

TEST(SimplifiedStdp, InputAtOutputTimeCounts)
{
    // t_in == t_out contributed to the firing (paper: "precedes or
    // coincides" in the Kheradpisheh rule).
    SimplifiedStdp rule(0.1, 0.1);
    std::vector<double> w{0.5};
    rule.update(w, V({5}), 5_t);
    EXPECT_GT(w[0], 0.5);
}

TEST(SimplifiedStdp, MultiplicativeSoftBounds)
{
    // dw ~ w(1-w): saturated weights stop moving.
    SimplifiedStdp rule(0.5, 0.5);
    std::vector<double> w{0.0, 1.0};
    rule.update(w, V({0, 0}), 0_t);
    EXPECT_DOUBLE_EQ(w[0], 0.0);
    EXPECT_DOUBLE_EQ(w[1], 1.0);
}

TEST(SimplifiedStdp, RepeatedPotentiationConvergesUp)
{
    SimplifiedStdp rule(0.2, 0.1);
    std::vector<double> w{0.3};
    for (int i = 0; i < 300; ++i)
        rule.update(w, V({0}), 1_t);
    EXPECT_GT(w[0], 0.95);
}

TEST(SimplifiedStdp, RepeatedDepressionConvergesDown)
{
    SimplifiedStdp rule(0.2, 0.1);
    std::vector<double> w{0.7};
    for (int i = 0; i < 400; ++i)
        rule.update(w, V({kNo}), 1_t);
    EXPECT_LT(w[0], 0.05);
}

TEST(SimplifiedStdp, WeightsStayInUnitInterval)
{
    SimplifiedStdp rule(2.0, 2.0); // absurdly large rates
    Rng rng(3);
    std::vector<double> w{0.5, 0.5};
    for (int i = 0; i < 200; ++i) {
        auto x = testing::randomVolley(rng, 2, 6, 0.3);
        rule.update(w, x, Time(rng.below(7)));
        for (double v : w) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
        }
    }
}

TEST(SimplifiedStdp, RejectsBadArguments)
{
    EXPECT_THROW(SimplifiedStdp(-0.1, 0.1), std::invalid_argument);
    SimplifiedStdp rule(0.1, 0.1);
    std::vector<double> w{0.5};
    EXPECT_THROW(rule.update(w, V({0, 1}), 0_t), std::invalid_argument);
}

TEST(ClassicStdp, ExponentialWindowWeightsNearPairsMore)
{
    ClassicStdp rule(0.1, 0.1, 3.0, 3.0);
    std::vector<double> w{0.5, 0.5};
    // Both inputs precede the output, one much earlier.
    rule.update(w, V({9, 0}), 10_t);
    EXPECT_GT(w[0], w[1]); // dt=1 potentiates more than dt=10
    EXPECT_GT(w[1], 0.5);  // but both potentiate
}

TEST(ClassicStdp, LateInputsDepressedByProximity)
{
    ClassicStdp rule(0.1, 0.1, 3.0, 3.0);
    std::vector<double> w{0.5, 0.5};
    // Both inputs after the output, one just after.
    rule.update(w, V({3, 20}), 2_t);
    EXPECT_LT(w[0], w[1]); // dt=1 depresses more than dt=18
    EXPECT_LT(w[0], 0.5);
}

TEST(ClassicStdp, AbsentInputMildlyDepressed)
{
    ClassicStdp rule(0.1, 0.1, 3.0, 3.0);
    std::vector<double> w{0.5};
    rule.update(w, V({kNo}), 2_t);
    EXPECT_LT(w[0], 0.5);
}

TEST(ClassicStdp, NoOutputSpikeNoUpdate)
{
    ClassicStdp rule(0.1, 0.1, 3.0, 3.0);
    std::vector<double> w{0.4};
    rule.update(w, V({1}), INF);
    EXPECT_DOUBLE_EQ(w[0], 0.4);
}

TEST(ClassicStdp, ClampsToUnitInterval)
{
    ClassicStdp rule(5.0, 5.0, 3.0, 3.0);
    std::vector<double> w{0.9, 0.1};
    rule.update(w, V({0, 5}), 1_t);
    EXPECT_DOUBLE_EQ(w[0], 1.0);
    EXPECT_DOUBLE_EQ(w[1], 0.0);
}

TEST(ClassicStdp, RejectsBadTaus)
{
    EXPECT_THROW(ClassicStdp(0.1, 0.1, 0.0, 3.0), std::invalid_argument);
    EXPECT_THROW(ClassicStdp(0.1, 0.1, 3.0, -1.0), std::invalid_argument);
}

TEST(QuantizeWeight, MapsUnitIntervalToDiscreteLevels)
{
    // The 3-bit weight argument (Pfeil et al. [43]): 8 levels suffice.
    EXPECT_EQ(quantizeWeight(0.0, 7), 0u);
    EXPECT_EQ(quantizeWeight(1.0, 7), 7u);
    EXPECT_EQ(quantizeWeight(0.5, 7), 4u); // round half up
    EXPECT_EQ(quantizeWeight(0.07, 7), 0u);
    EXPECT_EQ(quantizeWeight(0.08, 7), 1u);
}

TEST(QuantizeWeight, ClampsOutOfRangeInputs)
{
    EXPECT_EQ(quantizeWeight(-0.5, 7), 0u);
    EXPECT_EQ(quantizeWeight(1.5, 7), 7u);
}

TEST(QuantizeWeights, VectorVersion)
{
    std::vector<double> w{0.0, 0.49, 1.0};
    EXPECT_EQ(quantizeWeights(w, 4), (std::vector<size_t>{0, 2, 4}));
}

TEST(Stdp, RulesAreUsableThroughBaseInterface)
{
    SimplifiedStdp simple(0.1, 0.1);
    ClassicStdp classic(0.1, 0.1, 3.0, 3.0);
    std::vector<const StdpRule *> rules{&simple, &classic};
    for (const StdpRule *rule : rules) {
        std::vector<double> w{0.5};
        rule->update(w, V({0}), 1_t);
        EXPECT_GT(w[0], 0.5);
    }
}

} // namespace
} // namespace st
