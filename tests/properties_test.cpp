/**
 * @file
 * Tests for the property checkers and — more importantly — for the
 * properties themselves (paper Sec. III.C/III.E): which primitives are
 * causal, invariant, and (raw-definition) bounded. The outcomes encode
 * real subtleties of the algebra: min/inc/max/lt are all causal and
 * invariant, but only trivially-windowed functions satisfy the literal
 * bounded-history text; max is the one primitive with no finite
 * normalized table.
 */

#include <gtest/gtest.h>

#include "core/properties.hpp"
#include "core/synthesis.hpp"
#include "test_helpers.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

StFn
minFn()
{
    return [](std::span<const Time> x) { return tmin(x[0], x[1]); };
}

StFn
maxFn()
{
    return [](std::span<const Time> x) { return tmax(x[0], x[1]); };
}

StFn
ltFn()
{
    return [](std::span<const Time> x) { return tlt(x[0], x[1]); };
}

StFn
incFn()
{
    return [](std::span<const Time> x) { return tinc(x[0], 3); };
}

TEST(Properties, PrimitivesAreCausal)
{
    EXPECT_TRUE(checkCausality(2, 5, minFn()));
    EXPECT_TRUE(checkCausality(2, 5, maxFn()));
    EXPECT_TRUE(checkCausality(2, 5, ltFn()));
    EXPECT_TRUE(checkCausality(1, 5, incFn()));
}

TEST(Properties, PrimitivesAreInvariant)
{
    EXPECT_TRUE(checkInvariance(2, 5, minFn()));
    EXPECT_TRUE(checkInvariance(2, 5, maxFn()));
    EXPECT_TRUE(checkInvariance(2, 5, ltFn()));
    EXPECT_TRUE(checkInvariance(1, 5, incFn()));
}

TEST(Properties, SpontaneousSpikeViolatesCausality)
{
    // A block that fires at 0 regardless of inputs breaks z >= x_min.
    StFn bad = [](std::span<const Time>) { return 0_t; };
    auto report = checkCausality(2, 3, bad);
    EXPECT_FALSE(report.holds);
    EXPECT_NE(report.counterexample.find("precedes earliest input"),
              std::string::npos);
}

TEST(Properties, PeekingAtLateInputsViolatesCausality)
{
    // Output at x_min, but only if the LATER input is even — the later
    // input affects an earlier output: not causal.
    StFn bad = [](std::span<const Time> x) {
        Time lo = tmin(x[0], x[1]);
        Time hi = tmax(x[0], x[1]);
        if (hi.isFinite() && hi.value() % 2 == 0)
            return lo;
        return INF;
    };
    EXPECT_FALSE(checkCausality(2, 6, bad));
}

TEST(Properties, AdditionOfInputsViolatesInvariance)
{
    // The paper's Sec. VI point 2: a + b is not invariant because
    // (a+1) + (b+1) != (a+b) + 1.
    StFn add = [](std::span<const Time> x) {
        if (x[0].isInf() || x[1].isInf())
            return INF;
        return Time(x[0].value() + x[1].value());
    };
    auto report = checkInvariance(2, 4, add);
    EXPECT_FALSE(report.holds);
}

TEST(Properties, ConstantOutputViolatesInvariance)
{
    StFn constant = [](std::span<const Time>) { return 5_t; };
    EXPECT_FALSE(checkInvariance(1, 4, constant));
}

TEST(Properties, IncIsRawBounded)
{
    // Unary functions are vacuously bounded: there is never an input
    // older than x_max.
    EXPECT_TRUE(checkBoundedHistory(1, 8, incFn(), 2));
}

TEST(Properties, MinIsNotRawBounded)
{
    // Subtle but true: min(0, M) = 0 yet min(inf, M) = M, so the stale
    // input IS the output and can never be dropped. The literal
    // bounded-history definition rejects min.
    auto report = checkBoundedHistory(2, 8, minFn(), 2);
    EXPECT_FALSE(report.holds);
}

TEST(Properties, LtIsNotRawBounded)
{
    EXPECT_FALSE(checkBoundedHistory(2, 8, ltFn(), 2));
}

TEST(Properties, MaxIsNotRawBounded)
{
    EXPECT_FALSE(checkBoundedHistory(2, 8, maxFn(), 2));
}

TEST(Properties, TrulyWindowedFunctionIsBounded)
{
    // A coincidence detector: fires at the later input iff the two
    // spikes fall within 2 time units — genuinely bounded history.
    StFn coincidence = [](std::span<const Time> x) {
        if (x[0].isInf() || x[1].isInf())
            return INF;
        Time lo = tmin(x[0], x[1]), hi = tmax(x[0], x[1]);
        if (hi.value() - lo.value() <= 2)
            return hi;
        return INF;
    };
    EXPECT_TRUE(checkCausality(2, 8, coincidence));
    EXPECT_TRUE(checkInvariance(2, 8, coincidence));
    EXPECT_TRUE(checkBoundedHistory(2, 8, coincidence, 2));
    EXPECT_FALSE(checkBoundedHistory(2, 8, coincidence, 1));
}

TEST(Properties, NetworkAdapterWorks)
{
    Network net(2);
    net.markOutput(net.min(net.input(0), net.input(1)));
    StFn fn = fnOf(net);
    EXPECT_EQ(fn(V({3, 7})), 3_t);
    EXPECT_TRUE(checkCausality(2, 4, fn));
}

TEST(Properties, NetworkAdapterRequiresSingleOutput)
{
    Network net(1);
    net.markOutput(net.input(0));
    net.markOutput(net.input(0));
    EXPECT_THROW(fnOf(net), std::invalid_argument);
}

TEST(Properties, Lemma1CompositionsAreCausalAndInvariant)
{
    // Lemma 1: every feedforward composition of s-t blocks is an s-t
    // function. Random networks must all pass causality + invariance.
    Rng rng(4242);
    for (int trial = 0; trial < 25; ++trial) {
        Network net = testing::randomNetwork(rng, 2, 10);
        StFn fn = fnOf(net);
        EXPECT_TRUE(checkCausality(2, 5, fn).holds) << "trial " << trial;
        EXPECT_TRUE(checkInvariance(2, 5, fn).holds) << "trial " << trial;
    }
}

TEST(Properties, RandomizedCheckersAgreeOnPrimitives)
{
    Rng rng(9);
    EXPECT_TRUE(checkCausalityRandom(2, 50, minFn(), rng, 500));
    EXPECT_TRUE(checkInvarianceRandom(2, 50, maxFn(), rng, 500));
    StFn bad = [](std::span<const Time>) { return 1_t; };
    EXPECT_FALSE(checkCausalityRandom(2, 50, bad, rng, 500));
    EXPECT_FALSE(checkInvarianceRandom(2, 50, bad, rng, 500));
}

TEST(Properties, MinMaxIncAreMonotone)
{
    EXPECT_TRUE(checkMonotonicity(2, 5, minFn()));
    EXPECT_TRUE(checkMonotonicity(2, 5, maxFn()));
    EXPECT_TRUE(checkMonotonicity(1, 5, incFn()));
}

TEST(Properties, LtBreaksMonotonicity)
{
    // Delaying b past a revives a's passage: lt(2,2)=inf but
    // lt(2,3)=2 — the output got EARLIER as an input got later.
    auto report = checkMonotonicity(2, 5, ltFn());
    EXPECT_FALSE(report.holds);
    EXPECT_NE(report.counterexample.find("earlier"), std::string::npos);
}

TEST(Properties, LtFreeNetworksAreMonotone)
{
    // The "pure racing" fragment: any composition of min/max/inc only.
    Rng rng(606);
    for (int trial = 0; trial < 20; ++trial) {
        Network net(2);
        for (int b = 0; b < 10; ++b) {
            auto pick = [&]() {
                return static_cast<NodeId>(rng.below(net.size()));
            };
            switch (rng.below(3)) {
              case 0:
                net.inc(pick(), rng.below(4));
                break;
              case 1:
                net.min(pick(), pick());
                break;
              default:
                net.max(pick(), pick());
                break;
            }
        }
        net.markOutput(static_cast<NodeId>(net.size() - 1));
        EXPECT_TRUE(checkMonotonicity(2, 4, fnOf(net)).holds)
            << "trial " << trial;
    }
}

TEST(Properties, VolleyStrFormatsLikeThePaper)
{
    EXPECT_EQ(volleyStr(V({0, 3, kNo, 1})), "[0, 3, inf, 1]");
    EXPECT_EQ(volleyStr(V({})), "[]");
}

TEST(Properties, SynthesizedTablesAreCausalInvariant)
{
    Rng rng(31337);
    for (int trial = 0; trial < 10; ++trial) {
        FunctionTable table = testing::randomTable(rng, 2, 3, 4);
        Network net = synthesizeMinterms(table);
        StFn fn = fnOf(net);
        EXPECT_TRUE(checkCausality(2, 5, fn).holds);
        EXPECT_TRUE(checkInvariance(2, 5, fn).holds);
    }
}

} // namespace
} // namespace st
