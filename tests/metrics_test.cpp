/**
 * @file
 * Tests for the unsupervised-evaluation metrics (confusion matrix,
 * purity, majority assignment, coverage).
 */

#include <gtest/gtest.h>

#include "tnn/metrics.hpp"

namespace st {
namespace {

TEST(ConfusionMatrix, RejectsEmptyDimensions)
{
    EXPECT_THROW(ConfusionMatrix(0, 2), std::invalid_argument);
    EXPECT_THROW(ConfusionMatrix(2, 0), std::invalid_argument);
}

TEST(ConfusionMatrix, AccumulatesCells)
{
    ConfusionMatrix m(2, 2);
    m.add(0, 0);
    m.add(0, 0);
    m.add(1, 1);
    m.add(0, 1);
    EXPECT_EQ(m.at(0, 0), 2u);
    EXPECT_EQ(m.at(0, 1), 1u);
    EXPECT_EQ(m.at(1, 1), 1u);
    EXPECT_EQ(m.at(1, 0), 0u);
    EXPECT_EQ(m.total(), 4u);
}

TEST(ConfusionMatrix, TracksUnassigned)
{
    ConfusionMatrix m(2, 2);
    m.add(std::nullopt, 0);
    m.add(0, 0);
    EXPECT_EQ(m.unassigned(), 1u);
    EXPECT_DOUBLE_EQ(m.coverage(), 0.5);
}

TEST(ConfusionMatrix, PerfectClusteringHasPurityOne)
{
    ConfusionMatrix m(3, 3);
    for (int i = 0; i < 10; ++i) {
        m.add(0, 0);
        m.add(1, 1);
        m.add(2, 2);
    }
    EXPECT_DOUBLE_EQ(m.purity(), 1.0);
    EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
    EXPECT_EQ(m.distinctLabelsCovered(), 3u);
}

TEST(ConfusionMatrix, MixedClusterLowersPurity)
{
    ConfusionMatrix m(1, 2);
    m.add(0, 0);
    m.add(0, 0);
    m.add(0, 0);
    m.add(0, 1);
    EXPECT_DOUBLE_EQ(m.purity(), 0.75);
}

TEST(ConfusionMatrix, UnassignedCountAgainstPurity)
{
    ConfusionMatrix m(1, 1);
    m.add(0, 0);
    m.add(std::nullopt, 0);
    EXPECT_DOUBLE_EQ(m.purity(), 0.5);
}

TEST(ConfusionMatrix, MajorityAssignment)
{
    ConfusionMatrix m(3, 2);
    m.add(0, 1);
    m.add(0, 1);
    m.add(0, 0);
    m.add(1, 0);
    // Cluster 2 never fires.
    auto assignment = m.majorityAssignment();
    ASSERT_EQ(assignment.size(), 3u);
    EXPECT_EQ(assignment[0], 1u);
    EXPECT_EQ(assignment[1], 0u);
    EXPECT_FALSE(assignment[2].has_value());
    EXPECT_EQ(m.distinctLabelsCovered(), 2u);
}

TEST(ConfusionMatrix, AccuracyUsesMajorityMapping)
{
    ConfusionMatrix m(2, 2);
    m.add(0, 0); // cluster 0 -> label 0
    m.add(0, 0);
    m.add(0, 1); // miss
    m.add(1, 1); // cluster 1 -> label 1
    EXPECT_DOUBLE_EQ(m.accuracy(), 0.75);
}

TEST(ConfusionMatrix, RejectsOutOfRange)
{
    ConfusionMatrix m(2, 2);
    EXPECT_THROW(m.add(5, 0), std::out_of_range);
    EXPECT_THROW(m.add(0, 5), std::out_of_range);
    EXPECT_THROW(m.at(2, 0), std::out_of_range);
}

TEST(ConfusionMatrix, EmptyMatrixMetrics)
{
    ConfusionMatrix m(2, 2);
    EXPECT_DOUBLE_EQ(m.purity(), 0.0);
    EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
    EXPECT_DOUBLE_EQ(m.coverage(), 0.0);
}

TEST(ConfusionMatrix, RendersAsciiTable)
{
    ConfusionMatrix m(2, 2);
    m.add(0, 1);
    std::string s = m.str();
    EXPECT_NE(s.find("N0"), std::string::npos);
    EXPECT_NE(s.find("L1"), std::string::npos);
}

} // namespace
} // namespace st
