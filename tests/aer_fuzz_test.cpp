/**
 * @file
 * Round-trip fuzz / property tests for the staer text format and the
 * windowing path behind it. The serving layer quarantines sessions
 * based on this parser's verdicts, so its contract is absolute:
 * parse-or-Status (with the offending line number), never crash,
 * never silently reorder — and toText -> fromText is the identity for
 * every representable stream, including empty ones, max-u64
 * timestamps, and every newline convention.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "tnn/aer.hpp"

namespace st {
namespace {

constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();

uint64_t
mix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

AerStream
randomStream(uint64_t seed, size_t events, uint32_t addresses,
             bool huge_times)
{
    AerStream stream(addresses);
    uint64_t rng = seed;
    uint64_t t = huge_times ? kMax - events * 4 : 0;
    for (size_t i = 0; i < events; ++i) {
        const uint64_t step = mix64(rng) % 4;
        t = t > kMax - step ? kMax : t + step;
        stream.push(t, static_cast<uint32_t>(mix64(rng) % addresses));
    }
    return stream;
}

TEST(AerRoundTrip, RandomStreamsAreIdentity)
{
    for (uint64_t seed = 1; seed <= 50; ++seed) {
        const bool huge = seed % 5 == 0;
        const AerStream stream = randomStream(
            seed, 1 + seed % 37, 1 + uint32_t(seed % 9), huge);
        AerStream parsed(1);
        const Status status = aerFromText(aerToText(stream), &parsed);
        ASSERT_TRUE(status.isOk()) << "seed " << seed << ": "
                                   << status.str();
        EXPECT_EQ(parsed.numAddresses(), stream.numAddresses());
        EXPECT_EQ(parsed.events(), stream.events()) << "seed " << seed;
    }
}

TEST(AerRoundTrip, EmptyStreamRoundTrips)
{
    const AerStream empty(5);
    AerStream parsed(1);
    ASSERT_TRUE(aerFromText(aerToText(empty), &parsed).isOk());
    EXPECT_EQ(parsed.numAddresses(), 5u);
    EXPECT_EQ(parsed.size(), 0u);
}

TEST(AerRoundTrip, NewlineConventionsAllParse)
{
    AerStream stream(3);
    stream.push(1, 0);
    stream.push(4, 2);
    const std::string canonical = aerToText(stream);

    std::string no_final = canonical;
    no_final.pop_back();
    std::string crlf;
    for (char c : canonical) {
        if (c == '\n')
            crlf += '\r';
        crlf += c;
    }
    const std::string trailing_junk =
        canonical + "\n# comment\n   \n\n";
    for (const std::string &text :
         {canonical, no_final, crlf, trailing_junk}) {
        AerStream parsed(1);
        const Status status = aerFromText(text, &parsed);
        ASSERT_TRUE(status.isOk()) << status.str();
        EXPECT_EQ(parsed.events(), stream.events());
    }
}

TEST(AerRoundTrip, MaxTimestampSurvives)
{
    AerStream stream(2);
    stream.push(kMax, 1);
    AerStream parsed(1);
    ASSERT_TRUE(aerFromText(aerToText(stream), &parsed).isOk());
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed.events()[0].time, kMax);
}

TEST(AerNegative, ErrorsCarryLineNumbersAndNeverThrow)
{
    const struct
    {
        const char *text;
        const char *line;
    } cases[] = {
        {"", "line 0"},
        {"staer 2\naddresses 1\n", "line 1"},
        {"staer 1\n", "line 1"},
        {"staer 1\naddresses zero\n", "line 2"},
        {"staer 1\naddresses 2\n5 9\n", "line 3"},        // addr range
        {"staer 1\naddresses 2\n5 1\n3 0\n", "line 4"},   // reorder
        {"staer 1\naddresses 2\nfive 0\n", "line 3"},     // bad time
        {"staer 1\naddresses 2\n5\n", "line 3"},          // arity
        {"staer 1\naddresses 2\n5 0 7\n", "line 3"},      // arity
        {"staer 1\naddresses 2\n99999999999999999999 0\n",
         "line 3"}, // overflow
    };
    for (const auto &c : cases) {
        AerStream out(9);
        const Status status = aerFromText(std::string(c.text), &out);
        EXPECT_FALSE(status.isOk()) << c.text;
        EXPECT_EQ(status.context(), c.line) << c.text;
        // A failed parse must leave *out untouched.
        EXPECT_EQ(out.numAddresses(), 9u) << c.text;
    }
}

TEST(AerNegative, ThrowingWrapperCarriesLineNumber)
{
    try {
        aerFromText("staer 1\naddresses 2\n5 1\n3 0\n");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("line 4"),
                  std::string::npos)
            << e.what();
    }
}

TEST(AerSliceWindows, NearMaxTimestampsTerminate)
{
    // A naive `start += window` walk wraps past a near-2^64 end time
    // and never terminates; the saturated final window must cover the
    // tail in finitely many steps and keep every spike finite (no
    // aliasing with Time's all-ones inf pattern).
    AerStream stream(2);
    stream.push(kMax - 3, 0);
    stream.push(kMax, 1);
    const uint64_t window = uint64_t(1) << 63;
    const std::vector<Volley> out = stream.sliceWindows(window);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[0][0].isInf());
    EXPECT_TRUE(out[1][0].isFinite());
    EXPECT_TRUE(out[1][1].isFinite());
    EXPECT_EQ(out[1][0], Time(kMax - 3 - window));
    EXPECT_EQ(out[1][1], Time(kMax - window));
}

TEST(AerSliceWindows, FuzzMatchesReferenceModel)
{
    for (uint64_t seed = 1; seed <= 30; ++seed) {
        const AerStream stream = randomStream(
            seed, 1 + seed % 23, 1 + uint32_t(seed % 5), false);
        uint64_t wseed = seed * 977;
        const uint64_t window = 1 + mix64(wseed) % 32;
        const std::vector<Volley> out = stream.sliceWindows(window);

        // Reference model: one volley per window up to the last
        // event, first event per (window, address) wins, times are
        // window-relative.
        std::vector<Volley> ref(
            stream.endTime() / window + 1,
            Volley(stream.numAddresses(), INF));
        for (const AerEvent &e : stream.events()) {
            Time &slot = ref[e.time / window][e.address];
            if (slot.isInf())
                slot = Time(e.time % window);
        }
        EXPECT_EQ(out, ref) << "seed " << seed << " window "
                            << window;
        for (const Volley &v : out) {
            for (const Time &t : v) {
                if (t.isFinite()) {
                    EXPECT_LT(t.value(), window);
                }
            }
        }
    }
}

} // namespace
} // namespace st
