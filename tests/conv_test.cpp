/**
 * @file
 * Tests for convolutional TNN layers with temporal pooling
 * (Kheradpisheh-style hierarchy, paper Sec. II.C): window slicing,
 * spatial weight sharing, pooling semantics, shared-weight training,
 * and the headline behaviour — translation-invariant motif detection
 * that a position-bound detector cannot deliver.
 */

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "tnn/conv.hpp"
#include "tnn/datasets.hpp"
#include "tnn/metrics.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

Conv1dParams
smallConv()
{
    Conv1dParams p;
    p.inputWidth = 10;
    p.kernelSize = 4;
    p.stride = 1;
    p.numFeatures = 3;
    p.threshold = 4;
    p.maxWeight = 7;
    p.seed = 77;
    return p;
}

TEST(Conv1d, RejectsBadConfig)
{
    Conv1dParams p = smallConv();
    p.kernelSize = 0;
    EXPECT_THROW(Conv1dLayer{p}, std::invalid_argument);
    p = smallConv();
    p.kernelSize = 20; // wider than the input
    EXPECT_THROW(Conv1dLayer{p}, std::invalid_argument);
    p = smallConv();
    p.stride = 0;
    EXPECT_THROW(Conv1dLayer{p}, std::invalid_argument);
}

TEST(Conv1d, PositionCount)
{
    Conv1dParams p = smallConv();
    EXPECT_EQ(Conv1dLayer(p).numPositions(), 7u); // (10-4)/1+1
    p.stride = 2;
    EXPECT_EQ(Conv1dLayer(p).numPositions(), 4u); // (10-4)/2+1
    p.kernelSize = 10;
    p.stride = 1;
    EXPECT_EQ(Conv1dLayer(p).numPositions(), 1u);
}

TEST(Conv1d, WindowSlices)
{
    Conv1dLayer conv(smallConv());
    auto in = V({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
    EXPECT_EQ(conv.window(in, 0), V({0, 1, 2, 3}));
    EXPECT_EQ(conv.window(in, 6), V({6, 7, 8, 9}));
    EXPECT_THROW(conv.window(in, 7), std::out_of_range);
    EXPECT_THROW(conv.window(V({0, 1}), 0), std::invalid_argument);
}

TEST(Conv1d, FeatureMapUsesSharedWeights)
{
    Conv1dLayer conv(smallConv());
    // Feature 0 tuned to spikes on the first two kernel lines.
    conv.setWeights(0, {1.0, 1.0, 0.0, 0.0});
    // A motif placed at offset 3 must trigger feature 0 at position 3.
    Volley in(10, INF);
    in[3] = 0_t;
    in[4] = 0_t;
    Volley map = conv.featureMap(in);
    size_t pos = conv.numPositions();
    EXPECT_EQ(map[0 * pos + 3], 0_t);
    EXPECT_EQ(map[0 * pos + 0], INF); // empty window
    // Offset the same motif: the response moves with it.
    Volley in2(10, INF);
    in2[5] = 0_t;
    in2[6] = 0_t;
    Volley map2 = conv.featureMap(in2);
    EXPECT_EQ(map2[0 * pos + 5], 0_t);
    EXPECT_EQ(map2[0 * pos + 3], INF);
}

TEST(Conv1d, PooledTakesEarliestAcrossPositions)
{
    Conv1dLayer conv(smallConv());
    conv.setWeights(0, {1.0, 1.0, 0.0, 0.0});
    conv.setWeights(1, {0.0, 0.0, 0.0, 0.0});
    conv.setWeights(2, {1.0, 1.0, 1.0, 1.0});
    Volley in(10, INF);
    in[2] = 1_t;
    in[3] = 1_t;
    Volley pooled = conv.pooled(in);
    ASSERT_EQ(pooled.size(), 3u);
    EXPECT_EQ(pooled[0], 1_t); // fires at the motif position
    EXPECT_EQ(pooled[1], INF); // zero weights never fire
}

TEST(Conv1d, TrainStepUpdatesOnlyWinningFeature)
{
    Conv1dLayer conv(smallConv());
    // Discrete weight 3 per line: a single spike (potential 3) stays
    // under theta = 4; two coincident spikes cross it.
    conv.setWeights(0, {0.45, 0.45, 0.45, 0.45});
    conv.setWeights(1, {0.1, 0.1, 0.1, 0.1});
    conv.setWeights(2, {0.1, 0.1, 0.1, 0.1});
    auto w1 = conv.weights(1);
    auto w2 = conv.weights(2);
    SimplifiedStdp rule(0.05, 0.04);
    Volley in(10, INF);
    in[4] = 0_t;
    in[5] = 0_t;
    auto result = conv.trainStep(in, rule);
    ASSERT_TRUE(result.feature.has_value());
    EXPECT_EQ(*result.feature, 0u);
    // Windows containing both spikes are p = 2..4; ties resolve to the
    // first in scan order.
    EXPECT_EQ(result.position, 2u);
    EXPECT_EQ(conv.weights(1), w1);
    EXPECT_EQ(conv.weights(2), w2);
    EXPECT_EQ(conv.winCount(0), 1u);
}

TEST(Conv1d, TrainStepNoSpikesNoUpdate)
{
    Conv1dLayer conv(smallConv());
    SimplifiedStdp rule(0.05, 0.04);
    Volley quiet(10, INF);
    auto result = conv.trainStep(quiet, rule);
    EXPECT_FALSE(result.feature.has_value());
}

TEST(ShiftedPatterns, PlacementRespectsBounds)
{
    ShiftedPatternParams p;
    p.seed = 3;
    ShiftedPatternDataset data(p);
    EXPECT_EQ(data.maxOffset(), p.inputWidth - p.motifWidth);
    for (int s = 0; s < 50; ++s) {
        PlacedVolley v = data.sample();
        EXPECT_LE(v.offset, data.maxOffset());
        EXPECT_LT(v.label, p.numClasses);
        EXPECT_EQ(v.volley.size(), p.inputWidth);
        // All spikes live inside the motif's placement (no noise).
        for (size_t i = 0; i < v.volley.size(); ++i) {
            if (v.volley[i].isFinite()) {
                EXPECT_GE(i, v.offset);
                EXPECT_LT(i, v.offset + p.motifWidth);
            }
        }
    }
    EXPECT_THROW(data.sample(99, 0), std::out_of_range);
    EXPECT_THROW(data.sample(0, 99), std::out_of_range);
}

TEST(ShiftedPatterns, ZeroJitterReproducesMotif)
{
    ShiftedPatternParams p;
    p.jitter = 0.0;
    p.dropProb = 0.0;
    ShiftedPatternDataset data(p);
    PlacedVolley v = data.sample(1, 4);
    const Volley &motif = data.motifs()[1];
    for (size_t i = 0; i < motif.size(); ++i)
        EXPECT_EQ(v.volley[4 + i], motif[i]);
}

TEST(ShiftedPatterns, NoiseAddsBackgroundSpikes)
{
    ShiftedPatternParams p;
    p.noiseProb = 0.5;
    p.seed = 5;
    ShiftedPatternDataset data(p);
    size_t outside = 0;
    for (int s = 0; s < 20; ++s) {
        PlacedVolley v = data.sample();
        for (size_t i = 0; i < v.volley.size(); ++i) {
            bool in_motif =
                i >= v.offset && i < v.offset + p.motifWidth;
            outside += !in_motif && v.volley[i].isFinite();
        }
    }
    EXPECT_GT(outside, 20u);
}

/**
 * The headline experiment: motifs at random positions. The conv layer
 * with pooling classifies them position-invariantly.
 */
TEST(ConvTraining, LearnsTranslationInvariantMotifs)
{
    ShiftedPatternParams dp;
    dp.numClasses = 3;
    dp.motifWidth = 6;
    dp.inputWidth = 24;
    dp.timeSpan = 7;
    dp.jitter = 0.3;
    // This seed draws motifs with distinct onset signatures. First-
    // spike codes discriminate by *onsets*; motif sets whose early
    // spikes collide under translation are inherently confusable for
    // any first-spike detector (see EXPERIMENTS.md E3d).
    dp.seed = 12;
    ShiftedPatternDataset data(dp);

    Conv1dParams cp;
    cp.inputWidth = dp.inputWidth;
    cp.kernelSize = dp.motifWidth;
    cp.stride = 1;
    cp.numFeatures = 6;
    cp.threshold = 10;
    cp.fatigue = 8;
    cp.seed = 12;
    Conv1dLayer conv(cp);
    SimplifiedStdp rule(0.12, 0.09);

    for (int s = 0; s < 1500; ++s) {
        PlacedVolley v = data.sample();
        conv.trainStep(v.volley, rule);
    }

    // Classify by the earliest pooled feature.
    ConfusionMatrix m(cp.numFeatures, dp.numClasses);
    for (int s = 0; s < 300; ++s) {
        PlacedVolley v = data.sample();
        Volley pooled = conv.pooled(v.volley);
        std::optional<size_t> winner;
        Time best = INF;
        for (size_t f = 0; f < pooled.size(); ++f) {
            if (pooled[f] < best) {
                best = pooled[f];
                winner = f;
            }
        }
        m.add(winner, v.label);
    }
    EXPECT_GT(m.coverage(), 0.9);
    EXPECT_GT(m.purity(), 0.85) << m.str();
    EXPECT_GE(m.distinctLabelsCovered(), 3u) << m.str();
}

TEST(ConvTraining, SharedFeatureFiresAtEveryOffset)
{
    // After training, the winning feature for a class must respond to
    // that class's motif wherever it is placed.
    ShiftedPatternParams dp;
    dp.numClasses = 1;
    dp.motifWidth = 5;
    dp.inputWidth = 20;
    dp.jitter = 0.0;
    dp.dropProb = 0.0;
    dp.seed = 21;
    ShiftedPatternDataset data(dp);

    Conv1dParams cp;
    cp.inputWidth = 20;
    cp.kernelSize = 5;
    cp.numFeatures = 2;
    cp.threshold = 8;
    cp.seed = 22;
    Conv1dLayer conv(cp);
    SimplifiedStdp rule(0.08, 0.05);
    for (int s = 0; s < 300; ++s)
        conv.trainStep(data.sample().volley, rule);

    size_t responsive_offsets = 0;
    for (size_t offset = 0; offset <= data.maxOffset(); ++offset) {
        Volley pooled = conv.pooled(data.sample(0, offset).volley);
        responsive_offsets += minOf(pooled).isFinite();
    }
    EXPECT_EQ(responsive_offsets, data.maxOffset() + 1);
}

} // namespace
} // namespace st
