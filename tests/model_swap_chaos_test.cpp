/**
 * @file
 * Hot-swap-under-live-traffic soak (ctest label: chaos; the TSan CI
 * job runs it to prove the registry's publication protocol racefree).
 *
 * Eight chaotic sessions stream volleys through a StreamServer while
 * a swapper thread performs N model swaps — good candidates
 * interleaved with canary-failing ones (wrong width, throwing). The
 * contract:
 *
 *   - every offered volley is accounted: delivered + dropped equals
 *     the session's end-line totals, across every swap boundary;
 *   - per-session delivery order is preserved through swaps;
 *   - failed canaries roll back: the epoch never moves on one, and
 *     the incumbent keeps serving (sessions never observe a width
 *     change);
 *   - the server survives the whole campaign and drains cleanly.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "serve/model.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "tnn/tnn_network.hpp"

namespace st::serve {
namespace {

constexpr size_t kInputs = 6;
constexpr size_t kSessions = 8;
constexpr size_t kVolleys = 30;
constexpr size_t kSwaps = 20;

TnnNetwork
makeNet(uint64_t seed)
{
    TnnNetwork net;
    ColumnParams p;
    p.numInputs = kInputs;
    p.numNeurons = kInputs;
    p.wtaK = 2;
    p.seed = seed;
    net.addLayer(p);
    return net;
}

model::ModelInfo
infoAt(uint64_t version)
{
    model::ModelInfo info;
    info.kind = "tnn";
    info.id = "chaos-swap";
    info.version = version;
    info.inputWidth = kInputs;
    return info;
}

/** Canary-failing candidate: throws on its probe volley. */
class ExplodingModel : public ServeModel
{
  public:
    size_t numInputs() const override { return kInputs; }
    std::string name() const override { return "exploding"; }
    std::vector<std::string>
    processBatch(std::span<const BatchItem>, size_t) override
    {
        throw std::runtime_error("canary must catch this");
    }
};

uint64_t
mix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

struct Outcome
{
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    uint64_t endVolleys = 0;
    uint64_t endDrops = 0;
    bool sawEnd = false;
    bool orderOk = true;
};

Outcome
drive(StreamServer &server, Session &s, uint64_t seed)
{
    const uint64_t window = 8;
    s.feedLine("stserve 1", steadyNowMs());
    s.feedLine("addresses " + std::to_string(kInputs) + " window " +
                   std::to_string(window),
               steadyNowMs());
    uint64_t rng = seed;
    for (size_t w = 0; w < kVolleys && !server.draining(); ++w) {
        const uint64_t base = w * window;
        uint64_t t = base;
        for (size_t k = 0; k < 3; ++k) {
            t += mix64(rng) % 3;
            if (t >= base + window)
                break;
            s.feedLine(std::to_string(t) + " " +
                           std::to_string(mix64(rng) % kInputs),
                       steadyNowMs());
        }
        s.feedLine("flush", steadyNowMs());
    }
    s.feedLine("end", steadyNowMs());

    Outcome out;
    uint64_t lastSeq = 0;
    bool sawSeq = false;
    while (true) {
        std::optional<std::string> line =
            s.nextOutput(std::chrono::milliseconds(50));
        if (!line) {
            if (s.finished())
                break;
            continue;
        }
        if (line->rfind("volley ", 0) == 0) {
            const uint64_t seq = std::stoull(line->substr(7));
            if (sawSeq && seq <= lastSeq)
                out.orderOk = false;
            lastSeq = seq;
            sawSeq = true;
            ++out.delivered;
        } else if (line->rfind("drop ", 0) == 0) {
            ++out.dropped;
        } else if (line->rfind("end volleys ", 0) == 0) {
            out.sawEnd = true;
            std::istringstream is(line->substr(4));
            std::string kw;
            is >> kw >> out.endVolleys >> kw >> out.endDrops;
        }
    }
    return out;
}

TEST(ModelSwapChaos, SwapsUnderLiveChaoticTrafficAccountEveryVolley)
{
    ServeConfig config;
    config.window = 8;
    config.deadlineMs = 10000;
    config.nthreads = 2;
    StreamServer server(
        std::make_unique<TnnServeModel>(makeNet(1)), config);

    fault::FaultSpec spec;
    spec.seed = 0x5a7b;
    spec.jitter = 2;
    spec.dropProb = 0.05;
    spec.spuriousProb = 0.05;
    server.enableChaos(spec);
    server.start();

    std::vector<std::shared_ptr<Session>> sessions;
    for (size_t i = 0; i < kSessions; ++i) {
        auto open = server.openSession("swap-chaos");
        ASSERT_TRUE(open.session != nullptr);
        sessions.push_back(open.session);
    }
    std::vector<Outcome> outcomes(kSessions);
    std::vector<std::thread> drivers;
    for (size_t i = 0; i < kSessions; ++i)
        drivers.emplace_back([&, i] {
            outcomes[i] = drive(server, *sessions[i], 9000 + i);
        });

    // The swapper: good swaps interleaved with canary-failing ones.
    uint64_t goodSwaps = 0;
    uint64_t badSwaps = 0;
    std::thread swapper([&] {
        for (size_t k = 0; k < kSwaps; ++k) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
            if (k % 4 == 3) {
                // Wrong width or a throwing canary: must roll back.
                const uint64_t before = server.registry().epoch();
                Status status;
                if (k % 8 == 3)
                    status = server.swapModel(
                        std::make_unique<ExplodingModel>(),
                        infoAt(100 + k));
                else
                    status = server.swapModel(
                        std::make_unique<TnnServeModel>(
                            []() {
                                TnnNetwork net;
                                ColumnParams p;
                                p.numInputs = kInputs + 3;
                                p.numNeurons = 4;
                                net.addLayer(p);
                                return net;
                            }()),
                        infoAt(100 + k));
                EXPECT_FALSE(status.isOk());
                EXPECT_EQ(server.registry().epoch(), before)
                    << "failed canary must not move the epoch";
                ++badSwaps;
            } else {
                const Status status = server.swapModel(
                    std::make_unique<TnnServeModel>(makeNet(k + 2)),
                    infoAt(2 + k));
                EXPECT_TRUE(status.isOk()) << status.str();
                ++goodSwaps;
            }
        }
    });

    for (auto &d : drivers)
        d.join();
    swapper.join();

    EXPECT_EQ(server.registry().swapCount(), goodSwaps);
    EXPECT_EQ(server.registry().failedSwapCount(), badSwaps);
    EXPECT_EQ(server.registry().epoch(), 1 + goodSwaps);

    for (size_t i = 0; i < kSessions; ++i) {
        const Outcome &o = outcomes[i];
        EXPECT_TRUE(o.sawEnd) << "session " << i;
        EXPECT_TRUE(o.orderOk) << "session " << i;
        EXPECT_EQ(o.delivered, o.endVolleys) << "session " << i;
        EXPECT_EQ(o.dropped, o.endDrops) << "session " << i;
        EXPECT_EQ(o.delivered + o.dropped, kVolleys)
            << "session " << i
            << ": a swap boundary lost or duplicated a volley";
    }

    server.requestStop();
    EXPECT_TRUE(server.waitDrained());
}

/**
 * Rollback pinning under traffic: while sessions stream, every swap
 * offered is canary-failing. The server must end the campaign on the
 * boot model (epoch 1) with every volley accounted.
 */
TEST(ModelSwapChaos, AllFailedSwapsLeaveBootModelServing)
{
    ServeConfig config;
    config.window = 8;
    config.deadlineMs = 10000;
    config.nthreads = 1;
    StreamServer server(
        std::make_unique<TnnServeModel>(makeNet(1)), config);
    server.start();

    constexpr size_t kFew = 4;
    std::vector<std::shared_ptr<Session>> sessions;
    for (size_t i = 0; i < kFew; ++i) {
        auto open = server.openSession("rollback");
        ASSERT_TRUE(open.session != nullptr);
        sessions.push_back(open.session);
    }
    std::vector<Outcome> outcomes(kFew);
    std::vector<std::thread> drivers;
    for (size_t i = 0; i < kFew; ++i)
        drivers.emplace_back([&, i] {
            outcomes[i] = drive(server, *sessions[i], 400 + i);
        });

    const std::shared_ptr<const ModelVersion> boot =
        server.registry().current();
    for (size_t k = 0; k < 10; ++k) {
        EXPECT_FALSE(server
                         .swapModel(
                             std::make_unique<ExplodingModel>(),
                             infoAt(50 + k))
                         .isOk());
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    for (auto &d : drivers)
        d.join();

    EXPECT_EQ(server.registry().current().get(), boot.get());
    EXPECT_EQ(server.registry().epoch(), 1u);
    EXPECT_EQ(server.registry().failedSwapCount(), 10u);
    for (size_t i = 0; i < kFew; ++i) {
        EXPECT_EQ(outcomes[i].delivered + outcomes[i].dropped,
                  kVolleys)
            << "session " << i;
    }

    server.requestStop();
    EXPECT_TRUE(server.waitDrained());
}

} // namespace
} // namespace st::serve
