/**
 * @file
 * Tests for the request-observability additions (DESIGN.md Sec. 13):
 * histogram percentile estimation, the Prometheus text exposition
 * renderer, the background snapshot exporter's atomic file contract,
 * the rate-limited structured logger, and the flight recorder's dump
 * shape and retention.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace st::obs {
namespace {

// --- percentile estimation -----------------------------------------

TEST(BucketQuantile, UniformDistribution)
{
    // 1024 samples 0..1023: exact mass in every bucket up to 10, so
    // the log-linear interpolation is checkable in closed form.
    MetricsRegistry reg;
    Histogram &h = reg.histogram("u");
    for (uint64_t v = 0; v < 1024; ++v)
        h.record(v);
    const MetricsSnapshot full = reg.snapshot();
    const MetricsSnapshot::Hist &snap = full.histograms[0];
    ASSERT_EQ(snap.count, 1024u);
    // rank(0.5) = 512 = cumulative mass through buckets 0..9 exactly,
    // so p50 sits at the top of bucket 9: 256 + 1*(512-256) = 512.
    EXPECT_DOUBLE_EQ(snap.percentile(0.50), 512.0);
    // rank(0.9) = 921.6 -> bucket 10 ([512,1024), 512 samples),
    // fraction (921.6-512)/512 -> 512 + 0.8*512 = 921.6.
    EXPECT_NEAR(snap.percentile(0.90), 921.6, 1e-9);
    EXPECT_NEAR(snap.percentile(0.99), 1013.76, 1e-9);
    // Monotone in q.
    EXPECT_LE(snap.percentile(0.50), snap.percentile(0.90));
    EXPECT_LE(snap.percentile(0.90), snap.percentile(0.99));
    EXPECT_LE(snap.percentile(0.99), snap.percentile(0.999));
}

TEST(BucketQuantile, ExponentialishMassAcrossBuckets)
{
    // Heavily skewed mass: 900 fast, 90 medium, 10 slow — the shape
    // of a latency distribution. The tail quantiles must land in the
    // (sparse) slow buckets, not be dragged down by the median mass.
    MetricsRegistry reg;
    Histogram &h = reg.histogram("lat");
    for (int i = 0; i < 900; ++i)
        h.record(10); // bucket 4: [8,16)
    for (int i = 0; i < 90; ++i)
        h.record(100); // bucket 7: [64,128)
    for (int i = 0; i < 10; ++i)
        h.record(1000); // bucket 10: [512,1024)
    const MetricsSnapshot full = reg.snapshot();
    const MetricsSnapshot::Hist &snap = full.histograms[0];
    ASSERT_EQ(snap.count, 1000u);
    // rank(0.5) = 500 inside bucket 4: 8 + (500/900)*8.
    EXPECT_NEAR(snap.percentile(0.50), 8.0 + 8.0 * 500.0 / 900.0,
                1e-9);
    // rank(0.9) = 900: exactly the last sample of bucket 4.
    EXPECT_DOUBLE_EQ(snap.percentile(0.90), 16.0);
    // rank(0.99) = 990: exactly the last sample of bucket 7.
    EXPECT_DOUBLE_EQ(snap.percentile(0.99), 128.0);
    // rank(0.999) = 999 inside bucket 10: 512 + (9/10)*512.
    EXPECT_NEAR(snap.percentile(0.999), 972.8, 1e-9);
}

TEST(BucketQuantile, EdgeCases)
{
    const std::vector<uint64_t> empty;
    EXPECT_DOUBLE_EQ(bucketQuantile(empty, 0.5), 0.0);

    // All mass on v == 0 (bucket 0): every quantile is 0.
    const std::vector<uint64_t> zeros = {42};
    EXPECT_DOUBLE_EQ(bucketQuantile(zeros, 0.99), 0.0);

    // Single sample: every quantile interpolates inside its bucket.
    MetricsRegistry reg;
    Histogram &h = reg.histogram("one");
    h.record(5); // bucket 3: [4,8)
    const MetricsSnapshot full = reg.snapshot();
    const MetricsSnapshot::Hist &snap = full.histograms[0];
    const double p50 = snap.percentile(0.50);
    EXPECT_GE(p50, 4.0);
    EXPECT_LE(p50, 8.0);
    EXPECT_DOUBLE_EQ(snap.percentile(0.0), snap.percentile(0.01));

    // q outside [0,1] clamps instead of misbehaving.
    const std::vector<uint64_t> some = {0, 3};
    EXPECT_GE(bucketQuantile(some, 2.0), bucketQuantile(some, 1.0));
    EXPECT_DOUBLE_EQ(bucketQuantile(some, -1.0),
                     bucketQuantile(some, 0.0));
}

TEST(MetricsSnapshot, JsonCarriesPercentiles)
{
    MetricsRegistry reg;
    reg.histogram("h").record(100);
    const std::string json = reg.snapshot().toJson();
    EXPECT_NE(json.find("\"p50\": "), std::string::npos);
    EXPECT_NE(json.find("\"p999\": "), std::string::npos);
}

// --- Prometheus exposition -----------------------------------------

/** Parse "name{labels} value" / "name value" prom sample lines. */
std::map<std::string, std::vector<std::pair<std::string, double>>>
parseProm(const std::string &text)
{
    std::map<std::string, std::vector<std::pair<std::string, double>>>
        series;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const size_t sp = line.rfind(' ');
        EXPECT_NE(sp, std::string::npos) << line;
        std::string key = line.substr(0, sp);
        const double value = std::stod(line.substr(sp + 1));
        std::string labels;
        const size_t brace = key.find('{');
        if (brace != std::string::npos) {
            labels = key.substr(brace);
            key = key.substr(0, brace);
        }
        series[key].emplace_back(labels, value);
    }
    return series;
}

TEST(PromExposition, GoldenSmallRegistry)
{
    MetricsRegistry reg;
    reg.counter("serve.volleys.in").add(5);
    reg.gauge("serve.sessions.active").set(2);
    Histogram &h = reg.histogram("serve.latency.total_us");
    h.record(0);
    h.record(3); // bucket 2
    h.record(3);
    h.record(9); // bucket 4

    const std::string prom = reg.snapshot().toProm();

    // Name mangling: dots become underscores, counters get _total.
    EXPECT_NE(prom.find("st_serve_volleys_in_total 5\n"),
              std::string::npos);
    EXPECT_NE(prom.find("st_serve_sessions_active 2\n"),
              std::string::npos);

    // HELP/TYPE lines precede each family and name the original.
    EXPECT_NE(prom.find("# HELP st_serve_volleys_in_total counter "
                        "serve.volleys.in\n"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE st_serve_volleys_in_total counter\n"),
              std::string::npos);
    EXPECT_NE(
        prom.find("# TYPE st_serve_latency_total_us histogram\n"),
        std::string::npos);

    // Histogram buckets are cumulative with an exact +Inf == count.
    EXPECT_NE(
        prom.find("st_serve_latency_total_us_bucket{le=\"0\"} 1\n"),
        std::string::npos);
    EXPECT_NE(
        prom.find("st_serve_latency_total_us_bucket{le=\"3\"} 3\n"),
        std::string::npos);
    EXPECT_NE(
        prom.find("st_serve_latency_total_us_bucket{le=\"15\"} 4\n"),
        std::string::npos);
    EXPECT_NE(prom.find(
                  "st_serve_latency_total_us_bucket{le=\"+Inf\"} 4\n"),
              std::string::npos);
    EXPECT_NE(prom.find("st_serve_latency_total_us_sum 15\n"),
              std::string::npos);
    EXPECT_NE(prom.find("st_serve_latency_total_us_count 4\n"),
              std::string::npos);
    // Percentile companion gauges ride along.
    EXPECT_NE(prom.find("st_serve_latency_total_us_p50 "),
              std::string::npos);
    EXPECT_NE(prom.find("st_serve_latency_total_us_p999 "),
              std::string::npos);
}

TEST(PromExposition, BucketsAreCumulativeNondecreasing)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("spread");
    for (uint64_t v = 1; v < 4096; v *= 2)
        h.record(v);
    const auto series = parseProm(reg.snapshot().toProm());
    const auto it = series.find("st_spread_bucket");
    ASSERT_NE(it, series.end());
    double prev = -1.0;
    double last = 0.0;
    for (const auto &[labels, value] : it->second) {
        EXPECT_GE(value, prev) << labels;
        prev = value;
        last = value;
    }
    const auto count = series.find("st_spread_count");
    ASSERT_NE(count, series.end());
    EXPECT_DOUBLE_EQ(last, count->second[0].second);
}

TEST(PromExposition, MangleIsPromLegal)
{
    EXPECT_EQ(detail::promMangle("serve.latency.total_us"),
              "st_serve_latency_total_us");
    EXPECT_EQ(detail::promMangle("weird-name+x"), "st_weird_name_x");
    EXPECT_EQ(detail::promMangle("0starts.with.digit"),
              "st_0starts_with_digit");
}

// --- exporter ------------------------------------------------------

TEST(MetricsExporter, WriteOnceIsAtomicAndParseable)
{
    const std::string path =
        ::testing::TempDir() + "obs_export_test.prom";
    std::remove(path.c_str());
    MetricsRegistry::instance().counter("export_test.ticks").add(3);
    MetricsExporter exporter(path, 1000);
    ASSERT_TRUE(exporter.writeOnce());
    // The tmp staging file must not survive the rename.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_NE(os.str().find("st_export_test_ticks_total"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(MetricsExporter, BackgroundLoopPublishesAndStops)
{
    const std::string path =
        ::testing::TempDir() + "obs_export_loop.prom";
    std::remove(path.c_str());
    {
        MetricsExporter exporter(path, 10);
        exporter.start();
        exporter.stop(); // stop() publishes a final snapshot
    }
    std::ifstream in(path);
    EXPECT_TRUE(in.good());
    std::remove(path.c_str());
}

TEST(MetricsExporter, FromEnvParsesPathAndInterval)
{
    setenv("ST_METRICS_EXPORT", "/tmp/m.prom,250", 1);
    auto e = MetricsExporter::fromEnv();
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->path(), "/tmp/m.prom");
    EXPECT_EQ(e->intervalMs(), 250u);

    // No interval suffix: the default rides.
    setenv("ST_METRICS_EXPORT", "/tmp/m.prom", 1);
    e = MetricsExporter::fromEnv();
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->path(), "/tmp/m.prom");
    EXPECT_EQ(e->intervalMs(), MetricsExporter::kDefaultIntervalMs);

    // A non-numeric suffix is part of the path, not an interval.
    setenv("ST_METRICS_EXPORT", "/tmp/weird,name.prom", 1);
    e = MetricsExporter::fromEnv();
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->path(), "/tmp/weird,name.prom");

    // Sub-floor intervals clamp instead of spinning.
    setenv("ST_METRICS_EXPORT", "/tmp/m.prom,1", 1);
    e = MetricsExporter::fromEnv();
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->intervalMs(), MetricsExporter::kMinIntervalMs);

    setenv("ST_METRICS_EXPORT", "", 1);
    EXPECT_EQ(MetricsExporter::fromEnv(), nullptr);
    unsetenv("ST_METRICS_EXPORT");
    EXPECT_EQ(MetricsExporter::fromEnv(), nullptr);
}

// --- structured logging --------------------------------------------

/** Capture everything logged during the test body into a string. */
class LogCapture
{
  public:
    LogCapture()
    {
        [[maybe_unused]] int rc = pipe(fds_);
        setLogFd(fds_[1]);
        savedThreshold_ = logThreshold();
    }

    ~LogCapture()
    {
        setLogFd(STDERR_FILENO);
        setLogThreshold(savedThreshold_);
        close(fds_[0]);
        close(fds_[1]);
    }

    std::string
    drain()
    {
        close(fds_[1]); // EOF so the read loop terminates
        fds_[1] = open("/dev/null", O_WRONLY);
        setLogFd(STDERR_FILENO);
        std::string out;
        char buf[4096];
        ssize_t n;
        while ((n = read(fds_[0], buf, sizeof(buf))) > 0)
            out.append(buf, static_cast<size_t>(n));
        return out;
    }

  private:
    int fds_[2] = {-1, -1};
    LogLevel savedThreshold_ = LogLevel::Info;
};

TEST(StructuredLog, LineShapeAndEscaping)
{
    LogCapture cap;
    setLogThreshold(LogLevel::Debug);
    logWrite(LogLevel::Warn, "test.site", "hello \"quoted\"\nline");
    const std::string out = cap.drain();
    EXPECT_NE(out.find("ts_ms="), std::string::npos);
    EXPECT_NE(out.find(" level=warn "), std::string::npos);
    EXPECT_NE(out.find(" site=test.site "), std::string::npos);
    // Inner quotes escaped, newline flattened: still one line.
    EXPECT_NE(out.find("msg=\"hello \\\"quoted\\\" line\""),
              std::string::npos);
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
}

TEST(StructuredLog, ThresholdFilters)
{
    LogCapture cap;
    setLogThreshold(LogLevel::Error);
    ST_LOG_WARN("test.threshold", "below threshold");
    ST_LOG_ERROR("test.threshold", "at threshold");
    const std::string out = cap.drain();
    EXPECT_EQ(out.find("below threshold"), std::string::npos);
    EXPECT_NE(out.find("at threshold"), std::string::npos);
}

TEST(StructuredLog, RateLimiterAdmitsBurstThenRefills)
{
    LogRateLimiter limiter(3.0, 1.0);
    uint64_t now = 1000;
    EXPECT_TRUE(limiter.admit(now));
    EXPECT_TRUE(limiter.admit(now));
    EXPECT_TRUE(limiter.admit(now));
    EXPECT_FALSE(limiter.admit(now)); // burst spent
    EXPECT_EQ(limiter.dropped(), 1u);
    // 1 token/sec: after 2s two more pass, a third does not.
    now += 2000;
    EXPECT_TRUE(limiter.admit(now));
    EXPECT_TRUE(limiter.admit(now));
    EXPECT_FALSE(limiter.admit(now));
    EXPECT_EQ(limiter.dropped(), 2u);
}

TEST(StructuredLog, SiteRateLimitTicksDroppedCounter)
{
    const auto dropsNow = [] {
        for (const auto &c :
             MetricsRegistry::instance().snapshot().counters) {
            if (c.name == "logged.dropped")
                return c.value;
        }
        return uint64_t{0};
    };
    LogCapture cap;
    setLogThreshold(LogLevel::Debug);
    const uint64_t before = dropsNow();
    for (int i = 0; i < 32; ++i)
        ST_LOG_WARN("test.flood", "line " + std::to_string(i));
    const std::string out = cap.drain();
    // The burst budget (8) passes; the flood is clipped and counted.
    EXPECT_NE(out.find("line 0"), std::string::npos);
    EXPECT_EQ(out.find("line 31"), std::string::npos);
    EXPECT_GT(dropsNow(), before);
}

// --- flight recorder -----------------------------------------------

TEST(FlightRecorder, DumpShape)
{
    FlightRecorder rec;
    rec.record("session.open", 7, 0, "pipe");
    rec.record("volley.drop", 7, 3, "deadline");
    rec.record("drain.request");
    const std::string json = rec.toJson();
    EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"session.open\""),
              std::string::npos);
    EXPECT_NE(json.find("\"a\": 7, \"b\": 3, \"detail\": "
                        "\"deadline\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ts_ms\": "), std::string::npos);
    // Events serialize oldest-first.
    EXPECT_LT(json.find("session.open"), json.find("drain.request"));
    EXPECT_EQ(rec.eventCount(), 3u);
}

TEST(FlightRecorder, RingEvictsOldestAndCounts)
{
    FlightRecorder rec;
    for (size_t i = 0; i < FlightRecorder::kRingCap + 10; ++i)
        rec.record("tick", i);
    EXPECT_EQ(rec.eventCount(), FlightRecorder::kRingCap);
    EXPECT_EQ(rec.droppedEvents(), 10u);
    const std::string json = rec.toJson();
    // The oldest surviving event is #10; #0..#9 were evicted.
    EXPECT_EQ(json.find("\"a\": 9,"), std::string::npos);
    EXPECT_NE(json.find("\"a\": 10,"), std::string::npos);
    rec.clear();
    EXPECT_EQ(rec.eventCount(), 0u);
    EXPECT_EQ(rec.droppedEvents(), 0u);
}

TEST(FlightRecorder, DumpWritesArtifactAtomically)
{
    const std::string path =
        ::testing::TempDir() + "obs_flight_test.json";
    std::remove(path.c_str());
    FlightRecorder rec;
    EXPECT_FALSE(rec.dump()); // no path armed: refuses, no artifact
    rec.setDumpPath(path);
    rec.record("watchdog.trip", 1234, 0);
    ASSERT_TRUE(rec.dump());
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_NE(os.str().find("watchdog.trip"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace st::obs
