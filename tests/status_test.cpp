/**
 * @file
 * st::Status ergonomics added for the serving layer: stream insertion,
 * the toString() alias, and the ST_RETURN_IF_ERROR early-return macro
 * used by the text loaders and the session protocol.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "fault/status.hpp"

namespace st {
namespace {

TEST(Status, StreamInsertionMatchesStr)
{
    const Status ok = Status::ok();
    const Status bad(StatusCode::InvalidArgument, "bad token",
                     "line 3");
    std::ostringstream os;
    os << ok << " | " << bad;
    EXPECT_EQ(os.str(), ok.str() + " | " + bad.str());
    EXPECT_EQ(bad.toString(), bad.str());
    EXPECT_NE(bad.toString().find("invalid_argument"),
              std::string::npos);
    EXPECT_NE(bad.toString().find("[line 3]"), std::string::npos);
}

Status
stepThatFails()
{
    return Status(StatusCode::ResourceExhausted, "budget spent");
}

Status
stepThatSucceeds()
{
    return Status::ok();
}

Status
pipelineShortCircuits(int *reached)
{
    ST_RETURN_IF_ERROR(stepThatSucceeds());
    *reached = 1;
    ST_RETURN_IF_ERROR(stepThatFails());
    *reached = 2; // must not execute
    return Status::ok();
}

TEST(Status, ReturnIfErrorShortCircuits)
{
    int reached = 0;
    const Status status = pipelineShortCircuits(&reached);
    EXPECT_EQ(status.code(), StatusCode::ResourceExhausted);
    EXPECT_EQ(reached, 1);
}

TEST(Status, ReturnIfErrorPassesThroughOkPipelines)
{
    const auto all_ok = [] {
        ST_RETURN_IF_ERROR(stepThatSucceeds());
        ST_RETURN_IF_ERROR(stepThatSucceeds());
        return Status::ok();
    };
    EXPECT_TRUE(all_ok().isOk());
}

} // namespace
} // namespace st
