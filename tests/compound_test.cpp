/**
 * @file
 * Tests for compound synapses / RBF detectors (Hopfield's multipath
 * delay coding, paper Sec. II.C): alignment delays, exact and tolerant
 * matching, radius behaviour, shift invariance, and the network form's
 * equivalence to the reference model.
 */

#include <gtest/gtest.h>

#include "core/properties.hpp"
#include "neuron/compound.hpp"
#include "test_helpers.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

TEST(Compound, AlignmentDelaysComplementThePattern)
{
    auto d = alignmentDelays(V({0, 3, 1, kNo}));
    EXPECT_EQ(d, (std::vector<Time::rep>{3, 0, 2, 0}));
    EXPECT_THROW(alignmentDelays(V({kNo, kNo})), std::invalid_argument);
}

TEST(Compound, DetectorFiresOnStoredPattern)
{
    auto pattern = V({0, 3, 1, 2});
    Srm0Neuron model = rbfDetectorModel(pattern, {.width = 0});
    Time fired = model.fire(pattern);
    ASSERT_TRUE(fired.isFinite());
    // Coincidence happens when the latest (delayed) spike arrives.
    EXPECT_EQ(fired, 3_t);
}

TEST(Compound, DetectorIsShiftInvariant)
{
    auto pattern = V({0, 3, 1, 2});
    Srm0Neuron model = rbfDetectorModel(pattern, {.width = 0});
    auto moved = shifted(pattern, 5);
    EXPECT_EQ(model.fire(moved), 8_t);
}

TEST(Compound, ExactDetectorRejectsPerturbations)
{
    auto pattern = V({0, 3, 1, 2});
    Srm0Neuron model = rbfDetectorModel(pattern, {.width = 0});
    // Move one spike by one unit: alignment broken, no spike.
    EXPECT_EQ(model.fire(V({0, 3, 2, 2})), INF);
    EXPECT_EQ(model.fire(V({1, 3, 1, 2})), INF);
}

TEST(Compound, WidthSetsTheAcceptanceRadius)
{
    auto pattern = V({0, 3, 1, 2});
    Srm0Neuron tolerant = rbfDetectorModel(pattern, {.width = 1});
    // One-unit perturbations are inside the radius...
    EXPECT_TRUE(tolerant.fire(V({0, 3, 2, 2})).isFinite());
    EXPECT_TRUE(tolerant.fire(V({1, 3, 1, 2})).isFinite());
    // ...two-unit perturbations are not.
    EXPECT_EQ(tolerant.fire(V({2, 3, 1, 4})), INF);
}

TEST(Compound, RequiredLinesRelaxesMissingSpikes)
{
    auto pattern = V({0, 3, 1, 2});
    // Demand only 3 of 4 coincidences: one dropped spike is tolerated.
    Srm0Neuron partial =
        rbfDetectorModel(pattern, {.width = 0, .required = 3});
    EXPECT_TRUE(partial.fire(V({0, kNo, 1, 2})).isFinite());
    // But two dropped spikes are not.
    EXPECT_EQ(partial.fire(V({0, kNo, kNo, 2})), INF);
}

TEST(Compound, RequiredCannotExceedPatternLines)
{
    auto pattern = V({0, 1});
    EXPECT_THROW(rbfDetectorModel(pattern, {.width = 0, .required = 3}),
                 std::invalid_argument);
}

TEST(Compound, SilentPatternLinesAreIgnored)
{
    auto pattern = V({0, kNo, 2});
    Srm0Neuron model = rbfDetectorModel(pattern, {.width = 0});
    // A spike on the silent line neither helps nor blocks.
    EXPECT_TRUE(model.fire(V({0, kNo, 2})).isFinite());
    EXPECT_TRUE(model.fire(V({0, 7, 2})).isFinite());
}

TEST(Compound, NetworkFormMatchesModel)
{
    auto pattern = V({0, 3, 1, 2});
    for (Time::rep width : {0, 1, 2}) {
        RbfParams params{.width = width, .required = 0};
        Srm0Neuron model = rbfDetectorModel(pattern, params);
        Network net = buildRbfDetector(pattern, params);
        Rng rng(width + 1);
        for (int s = 0; s < 300; ++s) {
            auto x = testing::randomVolley(rng, 4, 8, 0.15);
            EXPECT_EQ(net.evaluate(x)[0], model.fire(x))
                << "width " << width << " at " << volleyStr(x);
        }
    }
}

TEST(Compound, NetworkFormIsCausalAndInvariant)
{
    auto pattern = V({0, 2, 1});
    Network net = buildRbfDetector(pattern, {.width = 1});
    StFn fn = fnOf(net);
    EXPECT_TRUE(checkCausality(3, 5, fn).holds);
    EXPECT_TRUE(checkInvariance(3, 5, fn).holds);
}

TEST(Compound, DetectorSeparatesStoredFromOtherPatterns)
{
    // A small codebook of patterns; each detector fires on its own
    // pattern and stays quiet on the others.
    std::vector<std::vector<Time>> codebook{
        V({0, 4, 2, 6}), V({6, 0, 4, 2}), V({2, 6, 0, 4})};
    for (size_t d = 0; d < codebook.size(); ++d) {
        Srm0Neuron det = rbfDetectorModel(codebook[d], {.width = 1});
        for (size_t p = 0; p < codebook.size(); ++p) {
            Time fired = det.fire(codebook[p]);
            if (p == d) {
                EXPECT_TRUE(fired.isFinite()) << d << " on " << p;
            } else {
                EXPECT_EQ(fired, INF) << d << " on " << p;
            }
        }
    }
}

} // namespace
} // namespace st
