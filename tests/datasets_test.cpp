/**
 * @file
 * Tests for the synthetic workload generators (DESIGN.md Sec. 5
 * substitutions): jittered temporal prototypes and the freeway AER
 * scene standing in for Bichler et al.'s DVS recordings (Fig. 4).
 */

#include <gtest/gtest.h>

#include "core/algebra.hpp"
#include "tnn/datasets.hpp"
#include "tnn/volley.hpp"

namespace st {
namespace {

TEST(PatternDataset, PrototypesAreNormalizedAndNonEmpty)
{
    PatternSetParams p;
    p.numClasses = 5;
    p.numLines = 12;
    PatternDataset data(p);
    ASSERT_EQ(data.prototypes().size(), 5u);
    for (const Volley &proto : data.prototypes()) {
        EXPECT_EQ(proto.size(), 12u);
        EXPECT_TRUE(isNormalizedVolley(proto));
        EXPECT_TRUE(minOf(proto).isFinite());
    }
}

TEST(PatternDataset, SamplesCarryRequestedLabel)
{
    PatternDataset data(PatternSetParams{});
    for (size_t c = 0; c < 4; ++c)
        EXPECT_EQ(data.sample(c).label, c);
    EXPECT_THROW(data.sample(99), std::out_of_range);
}

TEST(PatternDataset, ZeroJitterReproducesPrototype)
{
    PatternSetParams p;
    p.jitter = 0.0;
    p.dropProb = 0.0;
    PatternDataset data(p);
    for (size_t c = 0; c < p.numClasses; ++c)
        EXPECT_EQ(data.sample(c).volley, data.prototypes()[c]);
}

TEST(PatternDataset, JitterPerturbsButPreservesShape)
{
    PatternSetParams p;
    p.jitter = 0.5;
    p.dropProb = 0.0;
    p.seed = 11;
    PatternDataset data(p);
    const Volley &proto = data.prototypes()[0];
    auto sample = data.sample(0);
    ASSERT_EQ(sample.volley.size(), proto.size());
    // Silent prototype lines stay silent under pure jitter.
    for (size_t i = 0; i < proto.size(); ++i) {
        if (proto[i].isInf()) {
            EXPECT_EQ(sample.volley[i], INF);
        }
    }
}

TEST(PatternDataset, DropProbabilityDeletesSpikes)
{
    PatternSetParams p;
    p.jitter = 0.0;
    p.dropProb = 1.0;
    PatternDataset data(p);
    auto s = data.sample(0);
    for (Time t : s.volley)
        EXPECT_EQ(t, INF);
}

TEST(PatternDataset, SampleManyMixesLabels)
{
    PatternSetParams p;
    p.numClasses = 3;
    PatternDataset data(p);
    auto samples = data.sampleMany(300);
    EXPECT_EQ(samples.size(), 300u);
    std::vector<size_t> counts(3, 0);
    for (const auto &s : samples)
        ++counts.at(s.label);
    for (size_t c = 0; c < 3; ++c)
        EXPECT_GT(counts[c], 50u);
}

TEST(PatternDataset, DeterministicAcrossInstances)
{
    PatternSetParams p;
    p.seed = 77;
    PatternDataset a(p), b(p);
    EXPECT_EQ(a.prototypes(), b.prototypes());
    EXPECT_EQ(a.sample(1).volley, b.sample(1).volley);
}

TEST(Freeway, GeneratesOneWindowPerPass)
{
    FreewayParams p;
    p.seed = 3;
    FreewayGenerator gen(p);
    auto samples = gen.generate(40);
    EXPECT_EQ(samples.size(), 40u);
    for (const auto &s : samples) {
        EXPECT_LT(s.label, p.lanes);
        EXPECT_EQ(s.volley.size(), gen.numAddresses());
    }
}

TEST(Freeway, EventsLandOnTheLabeledLane)
{
    FreewayParams p;
    p.missProb = 0.0;
    p.jitter = 0.0;
    FreewayGenerator gen(p);
    auto samples = gen.generate(25);
    for (const auto &s : samples) {
        for (size_t lane = 0; lane < p.lanes; ++lane) {
            for (size_t pos = 0; pos < p.sensorsPerLane; ++pos) {
                Time t = s.volley[lane * p.sensorsPerLane + pos];
                if (lane == s.label) {
                    EXPECT_TRUE(t.isFinite());
                } else {
                    EXPECT_EQ(t, INF);
                }
            }
        }
    }
}

TEST(Freeway, LaneSpeedSetsSensorSpacing)
{
    FreewayParams p;
    p.missProb = 0.0;
    p.jitter = 0.0;
    p.sensorSpacing = {2, 3, 4};
    FreewayGenerator gen(p);
    auto samples = gen.generate(30);
    for (const auto &s : samples) {
        size_t base = s.label * p.sensorsPerLane;
        uint64_t spacing = p.sensorSpacing[s.label];
        Time first = s.volley[base];
        ASSERT_TRUE(first.isFinite());
        for (size_t pos = 1; pos < p.sensorsPerLane; ++pos) {
            EXPECT_EQ(s.volley[base + pos],
                      Time(first.value() + pos * spacing));
        }
    }
}

TEST(Freeway, StreamFormIsSliceable)
{
    FreewayParams p;
    p.seed = 8;
    FreewayGenerator gen(p);
    std::vector<size_t> labels;
    AerStream stream = gen.generateStream(10, labels);
    EXPECT_EQ(labels.size(), 10u);
    EXPECT_EQ(stream.numAddresses(), gen.numAddresses());
    auto windows = stream.sliceWindows(gen.windowSize());
    EXPECT_LE(windows.size(), 10u);
    EXPECT_GE(windows.size(), 9u);
}

TEST(Freeway, RejectsBadConfig)
{
    FreewayParams p;
    p.lanes = 0;
    EXPECT_THROW(FreewayGenerator{p}, std::invalid_argument);
    p = FreewayParams{};
    p.sensorSpacing.clear();
    EXPECT_THROW(FreewayGenerator{p}, std::invalid_argument);
}

} // namespace
} // namespace st
