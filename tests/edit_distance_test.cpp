/**
 * @file
 * Tests for race-logic edit distance (Madhavan et al.'s original
 * application): the DP baseline, the lattice network, their agreement
 * on random strings, and the GRL-compiled form.
 */

#include <gtest/gtest.h>

#include <string>

#include "grl/compile.hpp"
#include "grl/logic_sim.hpp"
#include "racelogic/edit_distance.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace st::racelogic {
namespace {

using testing::V;

TEST(EditDp, ClassicCases)
{
    EXPECT_EQ(editDistanceDp("kitten", "sitting"), 3u);
    EXPECT_EQ(editDistanceDp("flaw", "lawn"), 2u);
    EXPECT_EQ(editDistanceDp("", ""), 0u);
    EXPECT_EQ(editDistanceDp("abc", ""), 3u);
    EXPECT_EQ(editDistanceDp("", "abcd"), 4u);
    EXPECT_EQ(editDistanceDp("same", "same"), 0u);
}

TEST(EditDp, CustomCosts)
{
    EditCosts costs;
    costs.substitute = 3;
    costs.insert = 1;
    costs.erase = 1;
    // Substitution too expensive: delete + insert (cost 2) wins.
    EXPECT_EQ(editDistanceDp("a", "b", costs), 2u);
    costs.substitute = 1;
    EXPECT_EQ(editDistanceDp("a", "b", costs), 1u);
}

TEST(EditDp, NonzeroMatchCost)
{
    EditCosts costs;
    costs.match = 2;
    costs.substitute = 3;
    EXPECT_EQ(editDistanceDp("ab", "ab", costs), 4u);
}

TEST(EditNetwork, MatchesDpOnClassicCases)
{
    for (auto [a, b] : std::vector<std::pair<std::string, std::string>>{
             {"kitten", "sitting"},
             {"flaw", "lawn"},
             {"", "abc"},
             {"abc", ""},
             {"same", "same"},
             {"gattaca", "tacgacg"}}) {
        Network net = buildEditDistanceNetwork(a, b);
        EXPECT_EQ(net.evaluate(V({0}))[0], Time(editDistanceDp(a, b)))
            << a << " vs " << b;
    }
}

TEST(EditNetwork, StartSpikeShiftInvariance)
{
    Network net = buildEditDistanceNetwork("race", "logic");
    uint64_t d = editDistanceDp("race", "logic");
    EXPECT_EQ(net.evaluate(V({5}))[0], Time(d + 5));
}

TEST(EditNetwork, RandomDnaStringsMatchDp)
{
    // The Madhavan use case: DNA fragments.
    Rng rng(999);
    const std::string alphabet = "ACGT";
    for (int t = 0; t < 20; ++t) {
        std::string a, b;
        size_t la = 1 + rng.below(8), lb = 1 + rng.below(8);
        for (size_t i = 0; i < la; ++i)
            a += alphabet[rng.below(4)];
        for (size_t i = 0; i < lb; ++i)
            b += alphabet[rng.below(4)];
        Network net = buildEditDistanceNetwork(a, b);
        EXPECT_EQ(net.evaluate(V({0}))[0], Time(editDistanceDp(a, b)))
            << a << " vs " << b;
    }
}

TEST(EditNetwork, CustomCostsAgreeWithDp)
{
    EditCosts costs;
    costs.match = 0;
    costs.substitute = 2;
    costs.insert = 3;
    costs.erase = 1;
    Rng rng(1000);
    for (int t = 0; t < 10; ++t) {
        std::string a, b;
        for (size_t i = 0; i < 5; ++i) {
            a += static_cast<char>('a' + rng.below(3));
            b += static_cast<char>('a' + rng.below(3));
        }
        Network net = buildEditDistanceNetwork(a, b, costs);
        EXPECT_EQ(net.evaluate(V({0}))[0],
                  Time(editDistanceDp(a, b, costs)));
    }
}

TEST(EditNetwork, CompilesToGrlAndAgrees)
{
    Network net = buildEditDistanceNetwork("CAT", "CUT");
    auto compiled = grl::compileToGrl(net);
    grl::SimResult sim = grl::simulate(compiled.circuit, V({0}));
    EXPECT_EQ(sim.outputs[0], Time(editDistanceDp("CAT", "CUT")));
}

TEST(EditNetwork, LatticeSizeScalesWithProduct)
{
    Network small = buildEditDistanceNetwork("ab", "cd");
    Network large = buildEditDistanceNetwork("abcdefgh", "ijklmnop");
    EXPECT_GT(large.size(), small.size());
    EXPECT_GT(large.countOf(Op::Min), 60u); // ~one per inner cell
}

} // namespace
} // namespace st::racelogic
