/**
 * @file
 * Tests for spike-volley coding (paper Sec. III.A, Fig. 5): value
 * encode/decode, latency quantization, and the coding-efficiency
 * figures behind the paper's low-resolution argument.
 */

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "tnn/volley.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

TEST(Volley, EncodesFig5Example)
{
    // The paper's example vector [0, 3, inf, 1].
    std::vector<std::optional<uint64_t>> values{0, 3, std::nullopt, 1};
    EXPECT_EQ(encodeValues(values), V({0, 3, kNo, 1}));
}

TEST(Volley, EncodeNormalizesOffsets)
{
    // The first spike always encodes value 0 (Fig. 5's convention).
    std::vector<uint64_t> values{5, 8, 6};
    EXPECT_EQ(encodeValues(values), V({0, 3, 1}));
}

TEST(Volley, EncodeAllMissing)
{
    std::vector<std::optional<uint64_t>> values{std::nullopt,
                                                std::nullopt};
    EXPECT_EQ(encodeValues(values), V({kNo, kNo}));
}

TEST(Volley, DecodeInvertsEncode)
{
    std::vector<std::optional<uint64_t>> values{0, 3, std::nullopt, 1};
    auto decoded = decodeValues(encodeValues(values));
    EXPECT_EQ(decoded, values);
}

TEST(Volley, DecodeIsRelativeToFirstSpike)
{
    auto decoded = decodeValues(V({4, 6, kNo}));
    ASSERT_EQ(decoded.size(), 3u);
    EXPECT_EQ(decoded[0], 0u);
    EXPECT_EQ(decoded[1], 2u);
    EXPECT_FALSE(decoded[2].has_value());
}

TEST(Volley, QuantizeStrongInputsSpikeEarly)
{
    std::vector<double> intensities{1.0, 0.5, 0.0, 0.75};
    Volley v = quantizeIntensities(intensities, 3);
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], 0_t);           // strongest: earliest
    EXPECT_EQ(v[2], 7_t);           // weakest: latest (2^3 - 1)
    EXPECT_LT(v[3], v[1]);          // stronger spikes earlier
}

TEST(Volley, QuantizeCutoffCreatesSparseCodes)
{
    std::vector<double> intensities{0.9, 0.1, 0.05, 0.8};
    Volley v = quantizeIntensities(intensities, 3, 0.2);
    EXPECT_TRUE(v[0].isFinite());
    EXPECT_EQ(v[1], INF);
    EXPECT_EQ(v[2], INF);
    EXPECT_TRUE(v[3].isFinite());
}

TEST(Volley, QuantizeClampsOutOfRange)
{
    std::vector<double> intensities{2.0, -1.0};
    Volley v = quantizeIntensities(intensities, 2);
    EXPECT_EQ(v[0], 0_t);
    EXPECT_EQ(v[1], 3_t);
}

TEST(CodingStats, BitsPerSpikeMatchesSecIIIA)
{
    // n-bit resolution over q lines: just under n bits per spike when
    // every line spikes.
    auto v = V({0, 3, 2, 1});
    CodingStats s = codingStats(v, 3);
    EXPECT_EQ(s.lines, 4u);
    EXPECT_EQ(s.spikes, 4u);
    EXPECT_EQ(s.messageTime, 8u);       // 2^3 time units per volley
    EXPECT_DOUBLE_EQ(s.bitsConveyed, 12.0);
    EXPECT_DOUBLE_EQ(s.bitsPerSpike, 3.0);
}

TEST(CodingStats, SparsityImprovesBitsPerSpike)
{
    // The paper: sparse codings further improve energy efficiency.
    auto dense = V({0, 1, 2, 3, 4, 5, 6, 7});
    auto sparse = V({0, kNo, kNo, kNo, 4, kNo, kNo, kNo});
    CodingStats d = codingStats(dense, 3);
    CodingStats s = codingStats(sparse, 3);
    EXPECT_GT(s.bitsPerSpike, d.bitsPerSpike);
    EXPECT_EQ(s.spikes, 2u);
}

TEST(CodingStats, MessageTimeGrowsExponentially)
{
    auto v = V({0});
    EXPECT_EQ(codingStats(v, 3).messageTime, 8u);
    EXPECT_EQ(codingStats(v, 4).messageTime, 16u);
    EXPECT_EQ(codingStats(v, 10).messageTime, 1024u);
}

TEST(CodingStats, NoSpikesMeansZeroRate)
{
    CodingStats s = codingStats(V({kNo, kNo}), 4);
    EXPECT_EQ(s.spikes, 0u);
    EXPECT_DOUBLE_EQ(s.bitsPerSpike, 0.0);
}

TEST(Volley, IsNormalizedPredicate)
{
    EXPECT_TRUE(isNormalizedVolley(V({0, 3, kNo})));
    EXPECT_FALSE(isNormalizedVolley(V({1, 3})));
    EXPECT_TRUE(isNormalizedVolley(V({kNo, kNo}))); // vacuously
    EXPECT_TRUE(isNormalizedVolley(V({})));
}

} // namespace
} // namespace st
