/**
 * @file
 * Tier-1 tests for the serving layer: bounded rings, admission
 * control, the session protocol state machine (including quarantine
 * with line-numbered errors), window framing equivalence with the
 * offline AerStream::sliceWindows, the end-to-end StreamServer path
 * (multi-session ordering, deadline drops, poisoned-batch isolation,
 * graceful drain), and the health JSON shape.
 *
 * Everything here is in-process and socket-free; the TCP/pipe
 * transports are exercised by the CI serve-smoke job and the chaos
 * soak (serve_chaos_test.cpp).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/eval_plan.hpp"
#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/config.hpp"
#include "serve/latency.hpp"
#include "serve/model.hpp"
#include "serve/ring.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "tnn/aer.hpp"
#include "tnn/tnn_network.hpp"

namespace st::serve {
namespace {

// Counter ticks vanish when the obs layer is compiled out; expected
// deltas scale by this so the suite stays green under obs-off.
#if ST_OBS_ENABLED
constexpr uint64_t kTick = 1;
#else
constexpr uint64_t kTick = 0;
#endif

uint64_t
counterValue(const std::string &name)
{
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::instance().snapshot();
    for (const auto &c : snap.counters)
        if (c.name == name)
            return c.value;
    return 0;
}

TnnNetwork
makeNet(size_t inputs)
{
    TnnNetwork net;
    ColumnParams p;
    p.numInputs = inputs;
    p.numNeurons = inputs;
    p.wtaK = 1;
    p.seed = 5;
    net.addLayer(p);
    return net;
}

/** Drain a session's egress into a vector of lines. */
std::vector<std::string>
drainAll(Session &s)
{
    std::vector<std::string> lines;
    while (true) {
        std::optional<std::string> line =
            s.nextOutput(std::chrono::milliseconds(50));
        if (line)
            lines.push_back(std::move(*line));
        else if (s.finished())
            return lines;
    }
}

size_t
countPrefix(const std::vector<std::string> &lines,
            const std::string &prefix)
{
    size_t n = 0;
    for (const auto &l : lines)
        if (l.rfind(prefix, 0) == 0)
            ++n;
    return n;
}

// --- ServeConfig ---------------------------------------------------

TEST(ServeConfigEnv, AppliesValidValuesAndRejectsGarbage)
{
    setenv("ST_SERVE_WINDOW", "32", 1);
    setenv("ST_SERVE_DEADLINE_MS", "soon", 1); // typo'd: fallback
    const uint64_t before = counterValue("env.parse_rejected");
    const ServeConfig config = ServeConfig::fromEnv();
    unsetenv("ST_SERVE_WINDOW");
    unsetenv("ST_SERVE_DEADLINE_MS");
    EXPECT_EQ(config.window, 32u);
    EXPECT_EQ(config.deadlineMs, ServeConfig().deadlineMs);
    EXPECT_EQ(counterValue("env.parse_rejected"), before + kTick);
}

// --- BoundedRing ---------------------------------------------------

TEST(BoundedRing, BoundsAndFifo)
{
    BoundedRing<int> ring(2);
    EXPECT_TRUE(ring.tryPush(1));
    EXPECT_TRUE(ring.tryPush(2));
    EXPECT_FALSE(ring.tryPush(3)); // full: refused, not resized
    EXPECT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring.highWater(), 2u);
    EXPECT_EQ(ring.tryPop().value(), 1);
    EXPECT_EQ(ring.tryPop().value(), 2);
    EXPECT_FALSE(ring.tryPop().has_value());
}

TEST(BoundedRing, PushWaitTimesOutWhenFull)
{
    BoundedRing<int> ring(1);
    ASSERT_TRUE(ring.tryPush(1));
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(ring.pushWait(2, std::chrono::milliseconds(30)));
    EXPECT_GE(std::chrono::steady_clock::now() - t0,
              std::chrono::milliseconds(25));
}

TEST(BoundedRing, PushWaitSucceedsWhenConsumerDrains)
{
    BoundedRing<int> ring(1);
    ASSERT_TRUE(ring.tryPush(1));
    std::thread consumer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ring.tryPop();
    });
    EXPECT_TRUE(ring.pushWait(2, std::chrono::milliseconds(500)));
    consumer.join();
    EXPECT_EQ(ring.tryPop().value(), 2);
}

TEST(BoundedRing, CloseDrainsButRefusesPushes)
{
    BoundedRing<int> ring(4);
    ring.tryPush(7);
    ring.close();
    EXPECT_TRUE(ring.closed());
    EXPECT_FALSE(ring.tryPush(8));
    EXPECT_EQ(ring.tryPop().value(), 7); // drain-only semantics
    EXPECT_FALSE(ring.popWait(std::chrono::milliseconds(10)));
}

TEST(BoundedRing, CloseWakesBlockedWaiters)
{
    // One full ring (pusher blocks on space) and one empty ring
    // (popper blocks on data): close() must release both without a
    // producer/consumer on the other end.
    BoundedRing<int> full(1);
    ASSERT_TRUE(full.tryPush(1));
    BoundedRing<int> empty(1);
    std::thread pusher([&] {
        EXPECT_FALSE(full.pushWait(2, std::chrono::seconds(10)));
    });
    std::thread popper([&] {
        EXPECT_FALSE(empty.popWait(std::chrono::seconds(10)));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    full.close();
    empty.close();
    pusher.join();
    popper.join();
    // Closed rings still drain what they hold.
    EXPECT_EQ(full.tryPop().value(), 1);
}

// --- Admission -----------------------------------------------------

TEST(Admission, RejectsAtCapacityWithBackoff)
{
    ServeConfig config;
    config.maxSessions = 2;
    config.retryAfterMs = 100;
    config.retryAfterMaxMs = 400;
    AdmissionController adm(config);

    EXPECT_TRUE(adm.tryAdmit("a", 0, 0, false).admit);
    EXPECT_TRUE(adm.tryAdmit("a", 0, 1, false).admit);
    auto d1 = adm.tryAdmit("a", 0, 2, false);
    EXPECT_FALSE(d1.admit);
    EXPECT_STREQ(d1.reason, "capacity");
    EXPECT_EQ(d1.retryAfterMs, 100u);
    // Repeat offender: penalty doubles, capped.
    EXPECT_EQ(adm.tryAdmit("a", 1, 2, false).retryAfterMs, 200u);
    EXPECT_EQ(adm.tryAdmit("a", 2, 2, false).retryAfterMs, 400u);
    EXPECT_EQ(adm.tryAdmit("a", 3, 2, false).retryAfterMs, 400u);
    // A different client starts at the base hint.
    EXPECT_EQ(adm.tryAdmit("b", 3, 2, false).retryAfterMs, 100u);
    EXPECT_EQ(adm.offenderCount(), 2u);
}

TEST(Admission, RejectsWhileDrainingRegardlessOfCapacity)
{
    ServeConfig config;
    config.maxSessions = 8;
    AdmissionController adm(config);
    auto d = adm.tryAdmit("x", 0, 0, true);
    EXPECT_FALSE(d.admit);
    EXPECT_STREQ(d.reason, "draining");
}

TEST(Admission, DecayHealsOffenders)
{
    ServeConfig config;
    config.maxSessions = 0; // everything rejected
    config.retryAfterMs = 100;
    config.retryAfterMaxMs = 1600;
    config.offenderDecayMs = 50;
    AdmissionController adm(config);
    adm.tryAdmit("a", 0, 0, false);
    adm.tryAdmit("a", 1, 0, false);
    adm.tryAdmit("a", 2, 0, false); // penalty now 400
    ASSERT_EQ(adm.offenderCount(), 1u);
    adm.decay(2 + 500); // many decay periods later
    EXPECT_EQ(adm.offenderCount(), 0u);
}

// --- Session protocol ----------------------------------------------

ServeConfig
sessionConfig()
{
    ServeConfig config;
    config.window = 8;
    config.ingressCapacity = 64;
    config.egressCapacity = 256;
    config.deadlineMs = 5000;
    return config;
}

TEST(Session, HelloThenConfigThenStreaming)
{
    Session s(1, sessionConfig(), 4, nullptr);
    EXPECT_EQ(s.state(), SessionState::AwaitHello);
    s.feedLine("stserve 1", 0);
    EXPECT_EQ(s.state(), SessionState::AwaitConfig);
    s.feedLine("addresses 4 window 8", 0);
    EXPECT_EQ(s.state(), SessionState::Streaming);
    auto hello = s.nextOutput(std::chrono::milliseconds(100));
    ASSERT_TRUE(hello.has_value());
    EXPECT_EQ(*hello, "stserve-ok session 1 inputs 4");
}

TEST(Session, ClientDeadlineIsClampedToServerCeiling)
{
    ServeConfig config = sessionConfig();
    config.deadlineMaxMs = 2000;
    Session s(1, config, 4, nullptr);
    s.feedLine("stserve 1", 0);
    // 2^64-1 would overflow the signed chrono conversion (and stall
    // the egress grace wait forever) if honoured verbatim.
    s.feedLine("addresses 4 deadline_ms 18446744073709551615", 0);
    EXPECT_EQ(s.state(), SessionState::Streaming);
    EXPECT_EQ(s.deadlineMs(), 2000u);
    bool sawClampNote = false;
    std::optional<std::string> line;
    while ((line = s.nextOutput(std::chrono::milliseconds(10))))
        if (line->rfind("note deadline_ms clamped", 0) == 0)
            sawClampNote = true;
    EXPECT_TRUE(sawClampNote);

    // The ceiling also bounds a server config with a huge default.
    ServeConfig big = sessionConfig();
    big.deadlineMs = 10000000;
    big.deadlineMaxMs = 3000;
    Session t(2, big, 4, nullptr);
    EXPECT_EQ(t.deadlineMs(), 3000u);
}

TEST(Session, BadHelloQuarantinesWithLineNumber)
{
    Session s(1, sessionConfig(), 4, nullptr);
    s.feedLine("GET / HTTP/1.1", 0);
    EXPECT_EQ(s.state(), SessionState::Quarantined);
    auto err = s.nextOutput(std::chrono::milliseconds(100));
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("err "), std::string::npos);
    EXPECT_NE(err->find("[line 1]"), std::string::npos);
}

TEST(Session, WrongAddressCountQuarantines)
{
    Session s(1, sessionConfig(), 4, nullptr);
    s.feedLine("stserve 1", 0);
    s.feedLine("addresses 9", 0);
    EXPECT_EQ(s.state(), SessionState::Quarantined);
}

TEST(Session, OutOfOrderEventQuarantinesOnlyThisSession)
{
    Session a(1, sessionConfig(), 4, nullptr);
    Session b(2, sessionConfig(), 4, nullptr);
    for (Session *s : {&a, &b}) {
        s->feedLine("stserve 1", 0);
        s->feedLine("addresses 4", 0);
    }
    a.feedLine("10 0", 0);
    a.feedLine("3 1", 0); // time went backwards
    EXPECT_EQ(a.state(), SessionState::Quarantined);
    b.feedLine("10 0", 0);
    EXPECT_EQ(b.state(), SessionState::Streaming);

    // Quarantined sessions ignore further input but honour `end`.
    a.feedLine("11 0", 0);
    a.feedLine("end", 0);
    EXPECT_TRUE(a.inputDone());
}

TEST(Session, GarbageEventLineReportsLineNumber)
{
    Session s(1, sessionConfig(), 4, nullptr);
    s.feedLine("stserve 1", 0);
    s.feedLine("addresses 4", 0);
    s.feedLine("", 0); // blank lines still count for numbering
    s.feedLine("5 bananas", 0);
    EXPECT_EQ(s.state(), SessionState::Quarantined);
    std::optional<std::string> line;
    std::string err;
    while ((line = s.nextOutput(std::chrono::milliseconds(50)))) {
        if (line->rfind("err ", 0) == 0) {
            err = *line;
            break;
        }
    }
    EXPECT_NE(err.find("[line 4]"), std::string::npos) << err;
}

TEST(Session, FramingMatchesSliceWindows)
{
    // The serving grid must agree with the offline slicer so a model
    // trained on sliceWindows sees identical volleys when served.
    AerStream stream(4);
    stream.push(0, 0);
    stream.push(3, 1);
    stream.push(9, 2);  // second window
    stream.push(9, 2);  // duplicate: first event per address wins
    stream.push(26, 3); // skips window [16,24)
    const uint64_t window = 8;
    const std::vector<Volley> expected = stream.sliceWindows(window);

    ServeConfig config = sessionConfig();
    config.window = window;
    Session s(1, config, 4, nullptr);
    s.feedLine("stserve 1", 0);
    s.feedLine("addresses 4", 0);
    for (const AerEvent &e : stream.events())
        s.feedLine(std::to_string(e.time) + " " +
                       std::to_string(e.address),
                   0);
    s.endInput(0);

    std::vector<Volley> framed;
    while (auto p = s.popPending())
        framed.push_back(std::move(p->volley));
    EXPECT_EQ(framed, expected);
}

TEST(Session, GapElisionEmitsNote)
{
    ServeConfig config = sessionConfig();
    config.window = 8;
    config.maxGapWindows = 2;
    Session s(1, config, 4, nullptr);
    s.feedLine("stserve 1", 0);
    s.feedLine("addresses 4", 0);
    s.feedLine("0 0", 0);
    s.feedLine("800 1", 0); // ~100 windows later
    s.endInput(0);

    size_t pending = 0;
    while (s.popPending())
        ++pending;
    // Sealed first window + at most maxGapWindows empties + final.
    EXPECT_EQ(pending, 1u + 2u + 1u);
    EXPECT_GT(s.stats().gapsElided, 0u);

    bool sawGapNote = false;
    std::optional<std::string> line;
    while ((line = s.nextOutput(std::chrono::milliseconds(10))))
        if (line->rfind("note gap ", 0) == 0)
            sawGapNote = true;
    EXPECT_TRUE(sawGapNote);
}

TEST(Session, BackpressureThenShedWithAccounting)
{
    ServeConfig config = sessionConfig();
    config.window = 8;
    config.ingressCapacity = 2;
    config.deadlineMs = 10; // short: shed instead of blocking long
    Session s(1, config, 4, nullptr);
    s.feedLine("stserve 1", 0);
    s.feedLine("addresses 4", 0);
    const uint64_t before = counterValue("serve.shed.volleys");
    for (uint64_t w = 0; w < 6; ++w) {
        s.feedLine(std::to_string(w * 8) + " 0", 0);
        s.feedLine("flush", 0);
    }
    const SessionStats st = s.stats();
    EXPECT_EQ(st.volleysIn, 2u); // ring capacity
    EXPECT_EQ(st.dropsShed, 4u); // everything else shed, accounted
    EXPECT_EQ(counterValue("serve.shed.volleys"), before + 4 * kTick);

    std::vector<std::string> lines;
    std::optional<std::string> line;
    while ((line = s.nextOutput(std::chrono::milliseconds(10))))
        lines.push_back(std::move(*line));
    EXPECT_EQ(countPrefix(lines, "drop "), 4u);
    EXPECT_EQ(countPrefix(lines, "note backpressure on"), 1u);
}

// --- StreamServer end-to-end ---------------------------------------

struct ClientRun
{
    std::vector<std::string> lines;
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    bool orderOk = true;
};

ClientRun
driveSession(Session &s, size_t volleys, uint64_t window,
             uint64_t stride)
{
    s.feedLine("stserve 1", steadyNowMs());
    s.feedLine("addresses 4 window " + std::to_string(window),
               steadyNowMs());
    for (size_t w = 0; w < volleys; ++w) {
        const uint64_t base = w * window;
        s.feedLine(std::to_string(base + (w % window)) + " " +
                       std::to_string((w * stride) % 4),
                   steadyNowMs());
        s.feedLine("flush", steadyNowMs());
    }
    s.feedLine("end", steadyNowMs());

    ClientRun run;
    run.lines = drainAll(s);
    uint64_t lastSeq = 0;
    bool sawSeq = false;
    for (const auto &l : run.lines) {
        if (l.rfind("volley ", 0) == 0) {
            const uint64_t seq = std::stoull(l.substr(7));
            if (sawSeq && seq <= lastSeq)
                run.orderOk = false;
            lastSeq = seq;
            sawSeq = true;
            ++run.delivered;
        } else if (l.rfind("drop ", 0) == 0) {
            ++run.dropped;
        }
    }
    return run;
}

TEST(StreamServer, MultiSessionOrderAndPayloadCorrectness)
{
    TnnNetwork net = makeNet(4);
    ServeConfig config;
    config.window = 8;
    config.deadlineMs = 10000;
    StreamServer server(std::make_unique<TnnServeModel>(net), config);
    server.start();

    constexpr size_t kSessions = 3;
    constexpr size_t kVolleys = 20;
    std::vector<std::shared_ptr<Session>> sessions;
    for (size_t i = 0; i < kSessions; ++i) {
        auto open = server.openSession("t" + std::to_string(i));
        ASSERT_TRUE(open.session != nullptr);
        sessions.push_back(open.session);
    }
    std::vector<ClientRun> runs(kSessions);
    std::vector<std::thread> drivers;
    for (size_t i = 0; i < kSessions; ++i)
        drivers.emplace_back([&, i] {
            runs[i] = driveSession(*sessions[i], kVolleys, 8, i + 1);
        });
    for (auto &d : drivers)
        d.join();

    for (size_t i = 0; i < kSessions; ++i) {
        EXPECT_TRUE(runs[i].orderOk) << "session " << i;
        EXPECT_EQ(runs[i].delivered, kVolleys) << "session " << i;
        EXPECT_EQ(runs[i].dropped, 0u) << "session " << i;
    }

    // Payload correctness: the served output must equal the offline
    // reference computation volley-for-volley.
    for (size_t i = 0; i < kSessions; ++i) {
        size_t w = 0;
        for (const auto &l : runs[i].lines) {
            if (l.rfind("volley ", 0) != 0)
                continue;
            Volley input(4, INF);
            input[(w * (i + 1)) % 4] = Time(w % 8);
            const std::string expected =
                wireVolley(net.process(input));
            const size_t payloadAt = l.find(' ', 7) + 1;
            EXPECT_EQ(l.substr(payloadAt), expected)
                << "session " << i << " volley " << w;
            ++w;
        }
    }

    server.requestStop();
    EXPECT_TRUE(server.waitDrained());
    EXPECT_EQ(server.activeSessions(), 0u);
}

TEST(StreamServer, ExpiredVolleysDropAsDeadline)
{
    ServeConfig config;
    config.window = 8;
    config.deadlineMs = 1;
    StreamServer server(std::make_unique<TnnServeModel>(makeNet(4)),
                        config);
    // Deliberately NOT started: everything queued expires first.
    auto open = server.openSession("d");
    ASSERT_TRUE(open.session != nullptr);
    Session &s = *open.session;
    s.feedLine("stserve 1", steadyNowMs());
    s.feedLine("addresses 4", steadyNowMs());
    for (uint64_t w = 0; w < 4; ++w) {
        s.feedLine(std::to_string(w * 8) + " 0", steadyNowMs());
        s.feedLine("flush", steadyNowMs());
    }
    s.feedLine("end", steadyNowMs());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server.start();

    const std::vector<std::string> lines = drainAll(s);
    EXPECT_EQ(countPrefix(lines, "volley "), 0u);
    EXPECT_EQ(countPrefix(lines, "drop "), 4u);
    for (const auto &l : lines) {
        if (l.rfind("drop ", 0) == 0) {
            EXPECT_NE(l.find(" deadline"), std::string::npos) << l;
        }
    }
    EXPECT_EQ(s.stats().dropsDeadline, 4u);
    server.requestStop();
    server.waitDrained();
}

/** Throws on a marked volley: exercises panic isolation. */
class PoisonModel : public ServeModel
{
  public:
    size_t numInputs() const override { return 2; }
    std::string name() const override { return "poison"; }

    std::vector<std::string>
    processBatch(std::span<const BatchItem> items, size_t) override
    {
        std::vector<std::string> out;
        for (const BatchItem &item : items) {
            if (item.volley[0] == Time(7))
                throw std::runtime_error("poison volley");
            out.push_back(wireVolley(item.volley));
        }
        return out;
    }
};

TEST(StreamServer, PoisonedVolleyIsIsolatedNotFatal)
{
    ServeConfig config;
    config.window = 8;
    config.deadlineMs = 10000;
    config.batchMax = 16;
    StreamServer server(std::make_unique<PoisonModel>(), config);
    auto open = server.openSession("p");
    ASSERT_TRUE(open.session != nullptr);
    Session &s = *open.session;
    s.feedLine("stserve 1", steadyNowMs());
    s.feedLine("addresses 2", steadyNowMs());
    // Volley 1 carries the poison marker (time 7 on address 0).
    s.feedLine("0 0", steadyNowMs());
    s.feedLine("flush", steadyNowMs());
    s.feedLine("15 0", steadyNowMs()); // rel 7 in window [8,16)
    s.feedLine("flush", steadyNowMs());
    s.feedLine("16 1", steadyNowMs());
    s.feedLine("end", steadyNowMs());
    server.start();

    const std::vector<std::string> lines = drainAll(s);
    EXPECT_EQ(countPrefix(lines, "volley "), 2u);
    EXPECT_EQ(countPrefix(lines, "drop 1 poisoned"), 1u);
    EXPECT_EQ(s.stats().dropsPoisoned, 1u);
    server.requestStop();
    EXPECT_TRUE(server.waitDrained());
}

/**
 * Stateful model that commits per-seq state as it iterates (like the
 * LSM reservoir) and throws on a marked volley. transactional() stays
 * false (the default), so the server must feed one item per call —
 * a whole-batch retry after the throw would re-apply committed items.
 */
class StatefulPoisonModel : public ServeModel
{
  public:
    size_t numInputs() const override { return 2; }
    std::string name() const override { return "stateful-poison"; }

    std::vector<std::string>
    processBatch(std::span<const BatchItem> items, size_t) override
    {
        std::vector<std::string> out;
        for (const BatchItem &item : items) {
            if (item.volley[0] == Time(7))
                throw std::runtime_error("poison volley");
            ++applied[item.seq]; // committed before any later throw
            out.push_back(wireVolley(item.volley));
        }
        return out;
    }

    std::unordered_map<uint64_t, int> applied;
};

TEST(StreamServer, StatefulModelCommitsEachVolleyExactlyOnce)
{
    ServeConfig config;
    config.window = 8;
    config.deadlineMs = 10000;
    config.batchMax = 16;
    auto model = std::make_unique<StatefulPoisonModel>();
    StatefulPoisonModel *stateful = model.get();
    StreamServer server(std::move(model), config);
    auto open = server.openSession("sp");
    ASSERT_TRUE(open.session != nullptr);
    Session &s = *open.session;
    s.feedLine("stserve 1", steadyNowMs());
    s.feedLine("addresses 2", steadyNowMs());
    s.feedLine("0 0", steadyNowMs());
    s.feedLine("flush", steadyNowMs());
    s.feedLine("15 0", steadyNowMs()); // poison: rel 7 in [8,16)
    s.feedLine("flush", steadyNowMs());
    s.feedLine("16 1", steadyNowMs());
    s.feedLine("end", steadyNowMs());
    server.start();

    const std::vector<std::string> lines = drainAll(s);
    EXPECT_EQ(countPrefix(lines, "volley "), 2u);
    EXPECT_EQ(countPrefix(lines, "drop 1 poisoned"), 1u);
    server.requestStop();
    EXPECT_TRUE(server.waitDrained());
    // The regression this pins: seqs 0 and 2 applied exactly once
    // (a batch-then-retry path would apply seq 0 twice), the poisoned
    // seq 1 never.
    EXPECT_EQ(stateful->applied.size(), 2u);
    EXPECT_EQ(stateful->applied[0], 1);
    EXPECT_EQ(stateful->applied[2], 1);
    EXPECT_EQ(stateful->applied.count(1), 0u);
}

TEST(StreamServer, ConcurrentOpensNeverOvershootMaxSessions)
{
    ServeConfig config;
    config.maxSessions = 4;
    StreamServer server(std::make_unique<TnnServeModel>(makeNet(4)),
                        config);
    server.start();
    std::mutex mu;
    std::vector<std::shared_ptr<Session>> admitted;
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            auto open = server.openSession("c" + std::to_string(t));
            if (open.session) {
                std::lock_guard<std::mutex> lock(mu);
                admitted.push_back(open.session);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    // Admission and insertion are atomic: the bound holds even when
    // every open races at maxSessions-1.
    EXPECT_LE(admitted.size(), 4u);
    EXPECT_LE(server.activeSessions(), 4u);
    for (auto &s : admitted)
        s->endInput(steadyNowMs());
    server.requestStop();
    EXPECT_TRUE(server.waitDrained());
}

TEST(StreamServer, DrainRejectsNewSessions)
{
    ServeConfig config;
    StreamServer server(std::make_unique<TnnServeModel>(makeNet(4)),
                        config);
    server.start();
    server.requestStop();
    auto open = server.openSession("late");
    EXPECT_TRUE(open.session == nullptr);
    EXPECT_STREQ(open.reason, "draining");
    EXPECT_GT(open.retryAfterMs, 0u);
    EXPECT_TRUE(server.waitDrained());
}

TEST(StreamServer, ShedsSessionsPastCapacityWithRetryHints)
{
    ServeConfig config;
    config.maxSessions = 1;
    config.retryAfterMs = 50;
    StreamServer server(std::make_unique<TnnServeModel>(makeNet(4)),
                        config);
    server.start();
    const uint64_t before = counterValue("serve.shed.sessions");
    auto first = server.openSession("k");
    ASSERT_TRUE(first.session != nullptr);
    auto second = server.openSession("k");
    EXPECT_TRUE(second.session == nullptr);
    EXPECT_STREQ(second.reason, "capacity");
    EXPECT_EQ(second.retryAfterMs, 50u);
    auto third = server.openSession("k");
    EXPECT_EQ(third.retryAfterMs, 100u); // backoff doubles
    EXPECT_EQ(counterValue("serve.shed.sessions"), before + 2 * kTick);
    first.session->endInput(steadyNowMs());
    server.requestStop();
    EXPECT_TRUE(server.waitDrained());
}

TEST(StreamServer, HealthJsonShape)
{
    ServeConfig config;
    StreamServer server(std::make_unique<TnnServeModel>(makeNet(4)),
                        config);
    server.start();
    EXPECT_TRUE(server.ready());
    const std::string json = server.healthJson();
    EXPECT_NE(json.find("\"server\":{"), std::string::npos);
    EXPECT_NE(json.find("\"state\":\"running\""), std::string::npos);
    EXPECT_NE(json.find("\"ready\":true"), std::string::npos);
    EXPECT_NE(json.find("\"model\":\"tnn\""), std::string::npos);
    EXPECT_NE(json.find("\"sessions_active\":0"), std::string::npos);
    EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    server.requestStop();
    server.waitDrained();
    EXPECT_FALSE(server.ready());
    EXPECT_NE(server.healthJson().find("\"state\":\"stopped\""),
              std::string::npos);
}

TEST(StreamServer, LsmModelKeepsPerSessionStateAndDropsItOnEnd)
{
    ReservoirParams params;
    params.numInputs = 4;
    params.numNeurons = 24;
    auto model = std::make_unique<LsmAnomalyModel>(params, 4);
    LsmAnomalyModel *lsm = model.get();
    ServeConfig config;
    config.window = 8;
    config.deadlineMs = 10000;
    StreamServer server(std::move(model), config);
    server.start();

    auto a = server.openSession("a");
    auto b = server.openSession("b");
    ASSERT_TRUE(a.session && b.session);
    std::thread ta([&] { driveSession(*a.session, 6, 8, 1); });
    std::thread tb([&] { driveSession(*b.session, 6, 8, 2); });
    ta.join();
    tb.join();
    server.requestStop();
    EXPECT_TRUE(server.waitDrained());
    // Reservoir state existed per session and was reclaimed on end.
    EXPECT_EQ(lsm->statefulSessions(), 0u);
}

// --- observability: ring high-water + latency decomposition --------

TEST(BoundedRing, HighWaterTracksPeakDepthNotCurrent)
{
    BoundedRing<int> ring(4);
    EXPECT_EQ(ring.highWater(), 0u);
    ring.tryPush(1);
    ring.tryPush(2);
    ring.tryPush(3);
    EXPECT_EQ(ring.highWater(), 3u);
    ring.tryPop();
    ring.tryPop();
    // Draining must not lower the mark...
    EXPECT_EQ(ring.highWater(), 3u);
    ring.tryPush(4);
    // ...and a shallower refill must not raise it.
    EXPECT_EQ(ring.highWater(), 3u);
}

TEST(BoundedRing, HighWaterReadsAreRaceFreeAgainstPushers)
{
    // A health poll reads highWater() lock-free while producers and
    // the consumer run; TSan (the CI sanitizer job) is the real
    // assertion here, the bound check just keeps the test honest.
    BoundedRing<int> ring(8);
    std::atomic<bool> stop{false};
    std::thread reader([&] {
        size_t last = 0;
        while (!stop.load(std::memory_order_acquire)) {
            const size_t hw = ring.highWater();
            EXPECT_GE(hw, last); // monotone under observation
            EXPECT_LE(hw, 8u);
            last = hw;
        }
    });
    std::thread popper([&] {
        while (!stop.load(std::memory_order_acquire))
            ring.tryPop();
    });
    for (int i = 0; i < 20000; ++i)
        ring.tryPush(i);
    stop.store(true, std::memory_order_release);
    reader.join();
    popper.join();
    EXPECT_GE(ring.highWater(), 1u);
}

TEST(StreamServer, HealthReportsBuildInfo)
{
    ServeConfig config;
    StreamServer server(std::make_unique<TnnServeModel>(makeNet(4)),
                        config);
    server.start();
    const std::string json = server.healthJson();
    EXPECT_NE(json.find("\"version\":\""), std::string::npos);
    const char *simd = evalSimdBodyName();
    const bool known = std::string(simd) == "avx512" ||
                       std::string(simd) == "avx2" ||
                       std::string(simd) == "neon" ||
                       std::string(simd) == "scalar";
    EXPECT_TRUE(known) << simd;
    EXPECT_NE(json.find("\"simd\":\"" + std::string(simd) + "\""),
              std::string::npos);
    EXPECT_NE(json.find("\"rings\":{\"ingress_highwater\":"),
              std::string::npos);
    EXPECT_NE(json.find("\"uptime_ms\":"), std::string::npos);
    server.requestStop();
    server.waitDrained();
}

/**
 * Feed @p volleys windows and drain until all results arrived, but do
 * NOT end the session: the health tests below need it still resident
 * (a finished session is swept from the server's table).
 */
uint64_t
driveWithoutEnd(Session &s, size_t volleys, uint64_t window)
{
    s.feedLine("stserve 1", steadyNowMs());
    s.feedLine("addresses 4 window " + std::to_string(window),
               steadyNowMs());
    for (size_t w = 0; w < volleys; ++w) {
        s.feedLine(std::to_string(w * window) + " " +
                       std::to_string(w % 4),
                   steadyNowMs());
        s.feedLine("flush", steadyNowMs());
    }
    uint64_t delivered = 0;
    while (delivered < volleys) {
        std::optional<std::string> line =
            s.nextOutput(std::chrono::milliseconds(1000));
        if (!line)
            break; // a full second idle: give up, let asserts report
        if (line->rfind("volley ", 0) == 0)
            ++delivered;
    }
    return delivered;
}

TEST(StreamServer, HealthReportsLatencyBlock)
{
    ServeConfig config;
    config.window = 8;
    config.deadlineMs = 60000; // nothing may expire into a drop
    StreamServer server(std::make_unique<TnnServeModel>(makeNet(4)),
                        config);
    server.start();
    auto open = server.openSession("lat");
    ASSERT_TRUE(open.session != nullptr);
    const uint64_t delivered = driveWithoutEnd(*open.session, 100, 8);
    EXPECT_EQ(delivered, 100u);

    // The latency block is part of the health schema in BOTH build
    // flavors; ST_OBS_ENABLED only decides whether counts are live.
    const std::string json = server.healthJson();
    EXPECT_NE(json.find("\"latency\":{\"unit\":\"us\",\"stages\":"),
              std::string::npos);
    for (size_t stage = 0; stage < kStageCount; ++stage) {
        EXPECT_NE(json.find("\"" + std::string(stageName(stage)) +
                            "\":{\"count\":"),
                  std::string::npos);
    }
    EXPECT_NE(json.find("\"sessions\":{"), std::string::npos);

    const LatencySnapshot snap = server.latencySnapshot();
#if ST_OBS_ENABLED
    // Every delivered volley is decomposed exactly once, and the
    // estimator must be monotone in q for every stage.
    for (size_t stage = 0; stage < kStageCount; ++stage) {
        EXPECT_EQ(snap.stages[stage].count, delivered)
            << stageName(stage);
        EXPECT_LE(snap.stages[stage].percentile(0.50),
                  snap.stages[stage].percentile(0.99))
            << stageName(stage);
    }
    // Per-session detail rides in the health JSON for the top-K.
    EXPECT_NE(json.find("\"volleys\":100"), std::string::npos);
#else
    for (size_t stage = 0; stage < kStageCount; ++stage)
        EXPECT_EQ(snap.stages[stage].count, 0u) << stageName(stage);
#endif
    open.session->endInput(steadyNowMs());
    server.requestStop();
    EXPECT_TRUE(server.waitDrained());
}

TEST(StreamServer, HealthTopKBoundsPerSessionDetail)
{
    ServeConfig config;
    config.window = 8;
    config.deadlineMs = 60000;
    config.healthTopK = 1; // keep only the busiest session's detail
    config.maxSessions = 4;
    StreamServer server(std::make_unique<TnnServeModel>(makeNet(4)),
                        config);
    server.start();
    auto busy = server.openSession("busy");
    auto idle = server.openSession("idle");
    ASSERT_TRUE(busy.session && idle.session);
    const uint64_t busyId = busy.session->id();
    const uint64_t idleId = idle.session->id();
    EXPECT_EQ(driveWithoutEnd(*busy.session, 8, 8), 8u);
    const std::string json = server.healthJson();
    const size_t latPos = json.find("\"latency\":");
    const size_t metricsPos = json.find("\"metrics\":");
    ASSERT_NE(latPos, std::string::npos);
    ASSERT_NE(metricsPos, std::string::npos);
    const std::string lat = json.substr(latPos, metricsPos - latPos);
    EXPECT_NE(lat.find("\"" + std::to_string(busyId) + "\":{"),
              std::string::npos);
    EXPECT_EQ(lat.find("\"" + std::to_string(idleId) + "\":{"),
              std::string::npos);
    busy.session->endInput(steadyNowMs());
    idle.session->endInput(steadyNowMs());
    server.requestStop();
    server.waitDrained();
}

TEST(WireVolley, EncodesInfAndFiniteTimes)
{
    Volley v = {Time(0), INF, Time(3)};
    EXPECT_EQ(wireVolley(v), "0 inf 3");
    EXPECT_EQ(wireVolley(Volley{}), "");
}

} // namespace
} // namespace st::serve
