/**
 * @file
 * Chaos campaign (ctest label: chaos): a seeds x specs sweep of the
 * fault injector with every guard enabled, run under the sanitizer CI
 * job. Control runs (all-zero spec) must be bit-identical to the
 * unfaulted engines with zero guard violations; faulted runs must be
 * bit-identical across thread counts and still guard-clean (injection
 * perturbs inputs and parameters, never the algebra itself).
 *
 * Kept intentionally small per case — the sweep's value is breadth
 * (seeds x specs x engines), not volume.
 */

#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "grl/compile.hpp"
#include "grl/event_sim.hpp"
#include "test_helpers.hpp"
#include "tnn/datasets.hpp"
#include "tnn/tnn_network.hpp"

namespace st {
namespace {

TnnNetwork
campaignTnn()
{
    TnnNetwork net;
    ColumnParams l0;
    l0.numInputs = 16;
    l0.numNeurons = 8;
    l0.threshold = 6;
    l0.maxWeight = 7;
    l0.seed = 40;
    net.addLayer(l0);
    ColumnParams l1;
    l1.numInputs = 8;
    l1.numNeurons = 4;
    l1.threshold = 3;
    l1.maxWeight = 7;
    l1.seed = 41;
    net.addLayer(l1);
    return net;
}

std::vector<Volley>
campaignBatch(size_t n, uint64_t seed)
{
    PatternSetParams dp;
    dp.numLines = 16;
    dp.seed = seed;
    PatternDataset data(dp);
    std::vector<Volley> batch;
    for (const auto &s : data.sampleMany(n))
        batch.push_back(s.volley);
    return batch;
}

std::vector<fault::FaultSpec>
campaignSpecs(uint64_t seed)
{
    fault::FaultSpec jitter;
    jitter.seed = seed;
    jitter.jitter = 2;

    fault::FaultSpec drop;
    drop.seed = seed;
    drop.dropProb = 0.25;

    fault::FaultSpec mixed;
    mixed.seed = seed;
    mixed.jitter = 1;
    mixed.dropProb = 0.1;
    mixed.spuriousProb = 0.05;
    mixed.stuckProb = 0.05;
    mixed.synDelayJitter = 1;

    return {jitter, drop, mixed};
}

TEST(FaultCampaign, ControlRunsAreBitIdenticalAndClean)
{
    TnnNetwork net = campaignTnn();
    for (uint64_t seed : {1u, 2u, 3u}) {
        auto batch = campaignBatch(32, 100 + seed);
        auto baseline = net.processBatch(batch);

        fault::FaultSpec zero; // all-zero: the control arm
        zero.seed = seed;
        fault::FaultInjector inj(zero);
        fault::InjectionScope inj_scope(inj);
        fault::FaultReport report;
        fault::GuardOptions opts;
        opts.invarianceSampleEvery = 4;
        fault::GuardScope guard(opts, &report);
        EXPECT_EQ(net.processBatch(batch), baseline) << "seed " << seed;
        EXPECT_TRUE(report.clean())
            << "seed " << seed << "\n"
            << report.str();
    }
}

TEST(FaultCampaign, FaultedRunsAreThreadInvariantAndGuardClean)
{
    TnnNetwork net = campaignTnn();
    for (uint64_t seed : {11u, 12u, 13u}) {
        auto batch = campaignBatch(32, seed);
        for (const fault::FaultSpec &spec : campaignSpecs(seed)) {
            fault::FaultInjector inj(spec);
            fault::InjectionScope inj_scope(inj);
            fault::FaultReport report;
            fault::GuardScope guard(fault::GuardOptions{}, &report);
            auto serial = net.processBatch(batch, 1);
            auto threaded = net.processBatch(batch, 8);
            EXPECT_EQ(serial, threaded) << "seed " << seed;
            EXPECT_TRUE(report.clean())
                << "seed " << seed << "\n"
                << report.str();
        }
    }
}

TEST(FaultCampaign, GrlEventEngineUnderInjection)
{
    Rng rng(55);
    for (uint64_t seed : {21u, 22u}) {
        Network alg = testing::randomNetwork(rng, 4, 12);
        grl::Circuit circuit = grl::compileToGrl(alg).circuit;
        fault::FaultSpec spec;
        spec.seed = seed;
        spec.gateDelayJitter = 1;
        spec.stuckProb = 0.05;
        fault::FaultInjector inj(spec);
        fault::InjectionScope inj_scope(inj);
        fault::FaultReport report;
        fault::GuardScope guard(fault::GuardOptions{}, &report);
        for (int s = 0; s < 40; ++s) {
            auto x = testing::randomVolley(rng, 4, 9);
            grl::SimResult a = grl::simulateEvents(circuit, x);
            grl::SimResult b = grl::simulateEvents(circuit, x);
            EXPECT_EQ(a.outputs, b.outputs) << "seed " << seed;
        }
        EXPECT_TRUE(report.clean())
            << "seed " << seed << "\n"
            << report.str();
    }
}

TEST(FaultCampaign, CompiledEvaluatorControlIsClean)
{
    Rng rng(77);
    fault::FaultReport report;
    fault::GuardScope guard(fault::GuardOptions{}, &report);
    for (int trial = 0; trial < 6; ++trial) {
        Network net = testing::randomNetwork(rng, 4, 14);
        std::vector<Volley> batch;
        for (int s = 0; s < 32; ++s)
            batch.push_back(testing::randomVolley(rng, 4, 9));
        auto a = net.evaluateBatch(batch, 1);
        auto b = net.evaluateBatch(batch, 8);
        EXPECT_EQ(a, b);
    }
    EXPECT_TRUE(report.clean()) << report.str();
}

} // namespace
} // namespace st
