/**
 * @file
 * Tests for the liquid-state-machine extension (paper Sec. II.C's
 * deferred recurrent case): reservoir dynamics (determinism, bounded
 * activity, fading memory), the separation property (different inputs
 * -> different states), and end-to-end classification through a simple
 * linear readout.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"
#include "tnn/datasets.hpp"
#include "tnn/lsm.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

ReservoirParams
smallReservoir()
{
    ReservoirParams p;
    p.numInputs = 8;
    p.numNeurons = 48;
    p.seed = 5150;
    return p;
}

TEST(Reservoir, RejectsBadConfig)
{
    ReservoirParams p = smallReservoir();
    p.numInputs = 0;
    EXPECT_THROW(Reservoir{p}, std::invalid_argument);
    p = smallReservoir();
    p.leak = 1.0;
    EXPECT_THROW(Reservoir{p}, std::invalid_argument);
}

TEST(Reservoir, DeterministicConstructionAndRuns)
{
    Reservoir a(smallReservoir()), b(smallReservoir());
    EXPECT_EQ(a.numConnections(), b.numConnections());
    auto v = V({0, 1, 2, 3, kNo, kNo, 1, 0});
    a.runVolley(v, 20);
    b.runVolley(v, 20);
    EXPECT_EQ(a.traces(), b.traces());
    EXPECT_EQ(a.spikeCount(), b.spikeCount());
}

TEST(Reservoir, QuietInputQuietReservoir)
{
    Reservoir r(smallReservoir());
    size_t spikes = r.runVolley(Volley(8, INF), 30);
    EXPECT_EQ(spikes, 0u);
    for (double t : r.traces())
        EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(Reservoir, InputDrivesActivity)
{
    Reservoir r(smallReservoir());
    size_t spikes = r.runVolley(V({0, 0, 1, 1, 2, 2, 3, 3}), 20);
    EXPECT_GT(spikes, 0u);
    double total = 0;
    for (double t : r.traces())
        total += t;
    EXPECT_GT(total, 0.0);
}

TEST(Reservoir, ActivityIsBounded)
{
    // Refractoriness bounds the rate: no neuron can spike more often
    // than every (refractory + 1) steps.
    ReservoirParams p = smallReservoir();
    p.inputScale = 50.0; // hammer it
    p.weightScale = 5.0;
    Reservoir r(p);
    const size_t steps = 40;
    size_t spikes = r.runVolley(V({0, 0, 0, 0, 0, 0, 0, 0}), steps);
    EXPECT_LE(spikes,
              p.numNeurons * (steps / (p.refractory + 1) + 1));
}

TEST(Reservoir, ResetClearsState)
{
    Reservoir r(smallReservoir());
    r.runVolley(V({0, 1, 0, 1, 0, 1, 0, 1}), 15);
    ASSERT_GT(r.spikeCount(), 0u);
    r.reset();
    EXPECT_EQ(r.spikeCount(), 0u);
    for (double t : r.traces())
        EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(Reservoir, ActivityFadesAfterInputStops)
{
    // Fading memory: traces decay once the stimulus is gone.
    Reservoir r(smallReservoir());
    r.runVolley(V({0, 0, 1, 1, 2, 2, 3, 3}), 8);
    double right_after = 0;
    for (double t : r.traces())
        right_after += t;
    for (int t = 0; t < 60; ++t)
        r.step({});
    double much_later = 0;
    for (double t : r.traces())
        much_later += t;
    EXPECT_LT(much_later, right_after * 0.5);
}

TEST(Reservoir, SeparationProperty)
{
    // Different inputs must leave measurably different states.
    Reservoir r(smallReservoir());
    r.runVolley(V({0, 1, 2, 3, kNo, kNo, kNo, kNo}), 16);
    auto state_a = r.traces();
    r.reset();
    r.runVolley(V({kNo, kNo, kNo, kNo, 3, 2, 1, 0}), 16);
    auto state_b = r.traces();
    double dist = 0;
    for (size_t j = 0; j < state_a.size(); ++j)
        dist += std::abs(state_a[j] - state_b[j]);
    EXPECT_GT(dist, 1.0);
}

TEST(Reservoir, RejectsBadChannel)
{
    Reservoir r(smallReservoir());
    std::vector<uint32_t> bad{99};
    EXPECT_THROW(r.step(bad), std::out_of_range);
    EXPECT_THROW(r.runVolley(Volley(3, INF), 5), std::invalid_argument);
}

TEST(LinearReadout, LearnsLinearlySeparableFeatures)
{
    LinearReadout readout(2, 2, 9);
    Rng rng(10);
    for (int i = 0; i < 4000; ++i) {
        double x = rng.uniform(), y = rng.uniform();
        std::vector<double> f{x, y};
        readout.train(f, x > y ? 0u : 1u, 0.1);
    }
    size_t right = 0;
    for (int i = 0; i < 200; ++i) {
        double x = rng.uniform(), y = rng.uniform();
        std::vector<double> f{x, y};
        right += readout.classify(f) == (x > y ? 0u : 1u);
    }
    EXPECT_GE(right, 180u);
}

TEST(LinearReadout, RejectsBadArguments)
{
    EXPECT_THROW(LinearReadout(0, 2), std::invalid_argument);
    LinearReadout r(2, 2);
    std::vector<double> f{1.0};
    EXPECT_THROW(r.train(f, 0), std::invalid_argument);
    std::vector<double> ok{1.0, 2.0};
    EXPECT_THROW(r.train(ok, 5), std::out_of_range);
}

/**
 * The end-to-end LSM experiment: classify which temporal pattern was
 * injected, reading the reservoir AFTER a silent delay — information
 * the feedforward single-wave model cannot hold, demonstrated via the
 * recurrent extension.
 */
TEST(LsmTraining, ClassifiesPatternsThroughFadingMemory)
{
    PatternSetParams dp;
    dp.numClasses = 3;
    dp.numLines = 8;
    dp.timeSpan = 7;
    dp.jitter = 0.25;
    dp.seed = 777;
    PatternDataset data(dp);

    ReservoirParams rp = smallReservoir();
    rp.numNeurons = 64;
    Reservoir reservoir(rp);
    LinearReadout readout(rp.numNeurons, dp.numClasses, 11);

    const size_t delay = 4; // silent steps before reading the state
    auto featurize = [&](const Volley &v) {
        reservoir.reset();
        reservoir.runVolley(v, 8 + delay);
        return reservoir.traces();
    };

    for (int epoch = 0; epoch < 12; ++epoch) {
        for (const auto &s : data.sampleMany(60))
            readout.train(featurize(s.volley), s.label, 0.05);
    }
    size_t right = 0;
    const size_t tests = 150;
    for (const auto &s : data.sampleMany(tests))
        right += readout.classify(featurize(s.volley)) == s.label;
    EXPECT_GT(static_cast<double>(right) / tests, 0.8)
        << right << "/" << tests;
}

TEST(LsmTraining, AccuracyDegradesWithDelay)
{
    // Fading memory, quantified: longer silent delays before reading
    // the state erase more information.
    PatternSetParams dp;
    dp.numClasses = 3;
    dp.numLines = 8;
    dp.timeSpan = 7;
    dp.jitter = 0.25;
    dp.seed = 778;
    PatternDataset data(dp);
    ReservoirParams rp = smallReservoir();
    rp.numNeurons = 64;

    auto accuracy_at = [&](size_t delay) {
        Reservoir reservoir(rp);
        LinearReadout readout(rp.numNeurons, dp.numClasses, 12);
        auto featurize = [&](const Volley &v) {
            reservoir.reset();
            reservoir.runVolley(v, 8 + delay);
            return reservoir.traces();
        };
        for (int epoch = 0; epoch < 10; ++epoch) {
            for (const auto &s : data.sampleMany(50))
                readout.train(featurize(s.volley), s.label, 0.05);
        }
        size_t right = 0;
        for (const auto &s : data.sampleMany(120))
            right += readout.classify(featurize(s.volley)) == s.label;
        return static_cast<double>(right) / 120.0;
    };

    double near = accuracy_at(2);
    double far = accuracy_at(40);
    EXPECT_GT(near, 0.7);
    EXPECT_LT(far, near);
}

} // namespace
} // namespace st
