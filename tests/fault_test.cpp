/**
 * @file
 * Tests for the fault-injection subsystem: Status plumbing, the
 * deterministic injector (hash-based draws, severity nesting, thread
 * independence), the runtime invariant guards (clean runs stay clean,
 * forced violations are caught), graceful degradation on all-inf
 * volleys, and the GRL structural validator / event-budget bail.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/network.hpp"
#include "core/properties.hpp"
#include "fault/fault.hpp"
#include "fault/status.hpp"
#include "grl/compile.hpp"
#include "grl/event_sim.hpp"
#include "grl/logic_sim.hpp"
#include "test_helpers.hpp"
#include "tnn/datasets.hpp"
#include "tnn/tnn_network.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

// ---------------------------------------------------------------- Status

TEST(Status, CarriesCodeMessageAndContext)
{
    Status ok = Status::ok();
    EXPECT_TRUE(ok.isOk());
    EXPECT_TRUE(static_cast<bool>(ok));
    EXPECT_EQ(ok.str(), "ok");

    Status bad(StatusCode::FailedPrecondition, "arity mismatch",
               "wire 7");
    EXPECT_FALSE(bad.isOk());
    EXPECT_EQ(bad.code(), StatusCode::FailedPrecondition);
    EXPECT_NE(bad.str().find("failed_precondition"), std::string::npos);
    EXPECT_NE(bad.str().find("arity mismatch"), std::string::npos);
    EXPECT_NE(bad.str().find("wire 7"), std::string::npos);
}

TEST(Status, ErrorRoundTripsStatus)
{
    Status s(StatusCode::ResourceExhausted, "budget", "wire 3");
    try {
        throw StatusError(s);
    } catch (const StatusError &e) {
        EXPECT_EQ(e.status().code(), StatusCode::ResourceExhausted);
        EXPECT_NE(std::string(e.what()).find("budget"),
                  std::string::npos);
    }
}

// ----------------------------------------------------------- FaultReport

TEST(FaultReport, CountsAndCaps)
{
    fault::FaultReport report;
    EXPECT_TRUE(report.clean());
    for (int i = 0; i < 100; ++i)
        report.add("causality", "tnn.layer0", "out before in");
    report.add("agenda_order", "grl.agenda", "t went backwards");
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.totalViolations(), 101u);
    EXPECT_EQ(report.countOf("causality"), 100u);
    EXPECT_EQ(report.countOf("agenda_order"), 1u);
    EXPECT_EQ(report.countOf("nothing"), 0u);
    // Detailed records are capped; counts stay exact.
    EXPECT_LE(report.violations().size(), fault::FaultReport::kMaxDetailed);
    EXPECT_NE(report.str().find("causality"), std::string::npos);
}

// -------------------------------------------------------------- Injector

TEST(FaultInjector, ZeroSpecIsIdentity)
{
    fault::FaultInjector inj(fault::FaultSpec{});
    Rng rng(11);
    for (int s = 0; s < 20; ++s) {
        auto v = testing::randomVolley(rng, 16, 9);
        auto orig = v;
        inj.perturbVolley(v, s);
        EXPECT_EQ(v, orig);
    }
    EXPECT_EQ(inj.synapseDelay(1, 2, 3), 0);
    EXPECT_EQ(inj.perturbGateDelay(5, 9), 5);
    EXPECT_FALSE(inj.stuckAtInf(4));
}

TEST(FaultInjector, DrawsAreDeterministicAndRepeatable)
{
    fault::FaultSpec spec;
    spec.seed = 77;
    spec.jitter = 2;
    spec.dropProb = 0.2;
    spec.spuriousProb = 0.1;
    fault::FaultInjector a(spec), b(spec);
    Rng rng(3);
    for (int s = 0; s < 20; ++s) {
        const auto orig = testing::randomVolley(rng, 32, 9);
        auto v1 = orig, v2 = orig;
        a.perturbVolley(v1, s);
        b.perturbVolley(v2, s);
        EXPECT_EQ(v1, v2);
        // Re-running over the original input reproduces the result
        // exactly: counter-based draws carry no stream state.
        auto v3 = orig;
        a.perturbVolley(v3, s);
        EXPECT_EQ(v3, v1);
    }
}

TEST(FaultInjector, SeedAndStreamDecorrelate)
{
    fault::FaultSpec spec;
    spec.seed = 1;
    spec.dropProb = 0.5;
    fault::FaultSpec other = spec;
    other.seed = 2;
    fault::FaultInjector a(spec), b(other);
    Volley base(64, Time(3));
    Volley va = base, vb = base, vc = base;
    a.perturbVolley(va, 0);
    b.perturbVolley(vb, 0);
    a.perturbVolley(vc, 1);
    EXPECT_NE(va, vb); // different seed, different faults
    EXPECT_NE(va, vc); // different stream, different faults
}

TEST(FaultInjector, DropSeveritiesNest)
{
    // The spikes dropped at p=0.1 must be a subset of those dropped at
    // p=0.4 (same seed): the draw is thresholded, not re-sampled.
    fault::FaultSpec lo;
    lo.seed = 5;
    lo.dropProb = 0.1;
    fault::FaultSpec hi = lo;
    hi.dropProb = 0.4;
    fault::FaultInjector a(lo), b(hi);
    Volley vlo(256, Time(4)), vhi(256, Time(4));
    a.perturbVolley(vlo, 7);
    b.perturbVolley(vhi, 7);
    size_t dropped_lo = 0, dropped_hi = 0;
    for (size_t i = 0; i < vlo.size(); ++i) {
        if (vlo[i].isInf()) {
            ++dropped_lo;
            EXPECT_TRUE(vhi[i].isInf()) << "line " << i;
        }
        if (vhi[i].isInf())
            ++dropped_hi;
    }
    EXPECT_GT(dropped_lo, 0u);
    EXPECT_GT(dropped_hi, dropped_lo);
}

TEST(FaultInjector, JitterStaysNonNegativeAndBounded)
{
    fault::FaultSpec spec;
    spec.seed = 9;
    spec.jitter = 3;
    fault::FaultInjector inj(spec);
    size_t moved = 0;
    for (uint64_t line = 0; line < 200; ++line) {
        Time t = inj.perturbSpike(Time(5), 0, line);
        ASSERT_TRUE(t.isFinite());
        EXPECT_GE(t.value(), 2u);
        EXPECT_LE(t.value(), 8u);
        moved += t != Time(5);
        // Early spikes clamp at 0 instead of going negative.
        Time e = inj.perturbSpike(Time(1), 0, line);
        ASSERT_TRUE(e.isFinite());
        EXPECT_LE(e.value(), 4u);
    }
    EXPECT_GT(moved, 0u);
}

TEST(FaultInjector, StuckLinesAreStuckForever)
{
    fault::FaultSpec spec;
    spec.seed = 21;
    spec.stuckProb = 0.3;
    fault::FaultInjector inj(spec);
    size_t stuck = 0;
    for (uint64_t line = 0; line < 100; ++line) {
        const bool s = inj.stuckAtInf(line);
        stuck += s;
        EXPECT_EQ(inj.stuckAtInf(line), s); // time-invariant
        if (s) {
            // Every volley sees the line dead, whatever the stream.
            EXPECT_EQ(inj.perturbSpike(Time(3), 0, line), INF);
            EXPECT_EQ(inj.perturbSpike(Time(3), 99, line), INF);
        }
    }
    EXPECT_GT(stuck, 10u);
    EXPECT_LT(stuck, 60u);
}

// --------------------------------------------------- Hooks + determinism

TnnNetwork
smallTnn()
{
    TnnNetwork net;
    ColumnParams l0;
    l0.numInputs = 16;
    l0.numNeurons = 8;
    l0.threshold = 6;
    l0.maxWeight = 7;
    l0.fatigue = 0;
    l0.seed = 12;
    net.addLayer(l0);
    ColumnParams l1;
    l1.numInputs = 8;
    l1.numNeurons = 4;
    l1.threshold = 3;
    l1.maxWeight = 7;
    l1.seed = 13;
    net.addLayer(l1);
    return net;
}

std::vector<Volley>
sampleBatch(size_t n)
{
    PatternSetParams dp;
    dp.numLines = 16;
    dp.seed = 31;
    PatternDataset data(dp);
    std::vector<Volley> batch;
    for (const auto &s : data.sampleMany(n))
        batch.push_back(s.volley);
    return batch;
}

TEST(FaultHooks, ZeroSpecScopeLeavesOutputsIdentical)
{
    TnnNetwork net = smallTnn();
    auto batch = sampleBatch(40);
    auto clean = net.processBatch(batch);
    fault::FaultInjector inj(fault::FaultSpec{});
    fault::InjectionScope scope(inj);
    EXPECT_EQ(net.processBatch(batch), clean);
}

TEST(FaultHooks, FaultedBatchIsThreadCountInvariant)
{
    TnnNetwork net = smallTnn();
    auto batch = sampleBatch(64);
    fault::FaultSpec spec;
    spec.seed = 404;
    spec.jitter = 1;
    spec.dropProb = 0.15;
    spec.spuriousProb = 0.05;
    spec.synDelayJitter = 1;
    fault::FaultInjector inj(spec);
    fault::InjectionScope scope(inj);
    auto serial = net.processBatch(batch, 1);
    auto parallel = net.processBatch(batch, 8);
    EXPECT_EQ(serial, parallel);
    // And the injection actually changed something.
    std::vector<Volley> clean;
    {
        fault::FaultInjector none{fault::FaultSpec{}};
        fault::InjectionScope inner(none);
        clean = net.processBatch(batch, 1);
    }
    EXPECT_NE(serial, clean);
}

TEST(FaultHooks, SerialProcessMatchesStreamZero)
{
    TnnNetwork net = smallTnn();
    auto batch = sampleBatch(8);
    fault::FaultSpec spec;
    spec.seed = 5;
    spec.jitter = 2;
    spec.dropProb = 0.2;
    fault::FaultInjector inj(spec);
    fault::InjectionScope scope(inj);
    auto out = net.processBatch(batch, 4);
    // Volley 0 of a batch and a serial process() both run as stream 0.
    EXPECT_EQ(net.process(batch[0]), out[0]);
}

TEST(FaultHooks, ScopesNestAndRestore)
{
    EXPECT_EQ(fault::activeInjector(), nullptr);
    fault::FaultSpec spec;
    spec.seed = 1;
    fault::FaultInjector outer_inj(spec), inner_inj(spec);
    {
        fault::InjectionScope outer(outer_inj);
        EXPECT_EQ(fault::activeInjector(), &outer_inj);
        {
            fault::InjectionScope inner(inner_inj);
            EXPECT_EQ(fault::activeInjector(), &inner_inj);
        }
        EXPECT_EQ(fault::activeInjector(), &outer_inj);
    }
    EXPECT_EQ(fault::activeInjector(), nullptr);
}

// ----------------------------------------------------------------- Guards

TEST(Guards, OffByDefault)
{
    EXPECT_EQ(fault::activeGuardFlags(), 0u);
    EXPECT_FALSE(fault::guardActive(fault::kGuardCausality));
}

TEST(Guards, CleanRunReportsNoViolations)
{
    TnnNetwork net = smallTnn();
    auto batch = sampleBatch(48);
    auto clean = net.processBatch(batch);

    fault::FaultReport report;
    fault::GuardOptions opts;
    opts.invarianceSampleEvery = 1; // check every volley
    fault::GuardScope scope(opts, &report);
    auto guarded = net.processBatch(batch);
    EXPECT_EQ(guarded, clean); // guards observe, never alter
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST(Guards, CleanRunStaysCleanUnderInjection)
{
    // Injection perturbs *inputs and parameters*, not the algebra: a
    // faulted network is still a causal, invariant s-t computation, so
    // guards must not fire on injected runs either.
    TnnNetwork net = smallTnn();
    auto batch = sampleBatch(48);
    fault::FaultSpec spec;
    spec.seed = 8;
    spec.jitter = 2;
    spec.dropProb = 0.2;
    spec.spuriousProb = 0.1;
    spec.synDelayJitter = 2;
    fault::FaultInjector inj(spec);
    fault::InjectionScope inj_scope(inj);
    fault::FaultReport report;
    fault::GuardOptions opts;
    opts.invarianceSampleEvery = 4;
    fault::GuardScope scope(opts, &report);
    net.processBatch(batch);
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST(Guards, ReportViolationFeedsActiveScope)
{
    fault::FaultReport report;
    {
        fault::GuardScope scope(fault::GuardOptions{}, &report);
        fault::reportViolation("causality", "test.site", "forced");
    }
    EXPECT_EQ(report.totalViolations(), 1u);
    EXPECT_EQ(report.violations()[0].where, "test.site");
    // After the scope closes, reports go nowhere (but never crash).
    fault::reportViolation("causality", "test.site", "ignored");
    EXPECT_EQ(report.totalViolations(), 1u);
}

TEST(Guards, ObservedCheckersCatchViolations)
{
    // causality: output earlier than the earliest input.
    EXPECT_FALSE(checkCausalityObserved(V({3, 4}), V({2})));
    EXPECT_TRUE(checkCausalityObserved(V({3, 4}), V({3})));
    // spikes from silence are a causality violation.
    EXPECT_FALSE(checkCausalityObserved(V({kNo, kNo}), V({5})));
    EXPECT_TRUE(checkCausalityObserved(V({kNo, kNo}), V({kNo})));
    // bounded history: output beyond latest input + window.
    EXPECT_FALSE(checkBoundedObserved(V({1, 2}), V({300}), 100));
    EXPECT_TRUE(checkBoundedObserved(V({1, 2}), V({50}), 100));
    // shift consistency: f(x+1) must equal f(x)+1.
    EXPECT_TRUE(checkShiftConsistency(V({4, kNo}), V({5, kNo}), 1));
    EXPECT_FALSE(checkShiftConsistency(V({4, kNo}), V({4, kNo}), 1));
    EXPECT_FALSE(checkShiftConsistency(V({4}), V({5, 6}), 1));
}

TEST(Guards, CompiledEvaluatorCleanRun)
{
    Rng rng(70);
    fault::FaultReport report;
    fault::GuardScope scope(fault::GuardOptions{}, &report);
    for (int trial = 0; trial < 10; ++trial) {
        Network net = testing::randomNetwork(rng, 4, 12);
        for (int s = 0; s < 20; ++s)
            net.evaluate(testing::randomVolley(rng, 4, 9));
    }
    EXPECT_TRUE(report.clean()) << report.str();
}

// ---------------------------------------------- All-inf graceful output

TEST(Degradation, AllInfVolleysAreWellDefined)
{
    TnnNetwork net = smallTnn();
    Volley dead(16, INF);
    fault::FaultReport report;
    fault::GuardScope scope(fault::GuardOptions{}, &report);
    Volley out = net.process(dead);
    ASSERT_EQ(out.size(), 4u);
    for (Time t : out)
        EXPECT_TRUE(t.isInf()); // silence in, silence out
    EXPECT_TRUE(report.clean()) << report.str();

    Network alg(3);
    alg.markOutput(alg.min(alg.input(0), alg.input(1)));
    alg.markOutput(alg.lt(alg.input(2), alg.input(0)));
    auto y = alg.evaluate(Volley(3, INF));
    EXPECT_TRUE(y[0].isInf());
    EXPECT_TRUE(y[1].isInf());
}

TEST(Degradation, TotalDropYieldsAllInfOutput)
{
    TnnNetwork net = smallTnn();
    auto batch = sampleBatch(8);
    fault::FaultSpec spec;
    spec.seed = 3;
    spec.dropProb = 1.0;
    fault::FaultInjector inj(spec);
    fault::InjectionScope scope(inj);
    for (const auto &out : net.processBatch(batch))
        for (Time t : out)
            EXPECT_TRUE(t.isInf());
}

// -------------------------------------------------------- GRL validation

TEST(GrlValidate, BuilderCircuitsPass)
{
    grl::Circuit c(2);
    grl::WireId m = c.andGate(c.input(0), c.input(1));
    grl::WireId d = c.delay(m, 2);
    c.markOutput(c.ltCell(d, c.input(0)));
    EXPECT_TRUE(c.validate().isOk());
}

TEST(GrlValidate, DetectsZeroDelayCycle)
{
    grl::Circuit c(1);
    // or(x, and(or...)) loop with no Delay breaker, via the unchecked
    // escape hatch (the builders would reject the forward reference).
    grl::Gate a;
    a.kind = grl::GateKind::Or;
    a.fanin = {0, 2}; // forward edge into the AND below
    c.addGateUnchecked(a);
    grl::Gate b;
    b.kind = grl::GateKind::And;
    b.fanin = {1};
    c.addGateUnchecked(b);
    Status s = c.validate();
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::FailedPrecondition);
    EXPECT_NE(s.str().find("zero-delay"), std::string::npos);
    // The engines bail with the same diagnostic instead of hanging.
    std::vector<Time> x{Time(0)};
    EXPECT_THROW(grl::simulateEvents(c, x), StatusError);
    EXPECT_THROW(grl::simulate(c, x), StatusError);
}

TEST(GrlValidate, DelayBreaksCycles)
{
    // Feedback is representable when the loop's forward edge enters a
    // Delay with stages >= 1: the flipflops carry the value across
    // cycles, so the settle-order invariant still holds.
    grl::Circuit c(1);
    grl::Gate d;
    d.kind = grl::GateKind::Delay;
    d.fanin = {2}; // forward edge into the flipflops: allowed
    d.stages = 3;
    c.addGateUnchecked(d);
    grl::Gate a;
    a.kind = grl::GateKind::Or;
    a.fanin = {0, 1}; // reads the delay output back: the loop closes
    c.addGateUnchecked(a);
    EXPECT_TRUE(c.validate().isOk()) << c.validate().str();
}

TEST(GrlValidate, DetectsBadFaninAndArity)
{
    grl::Circuit c(1);
    grl::Gate g;
    g.kind = grl::GateKind::And;
    g.fanin = {42}; // out of range
    c.addGateUnchecked(g);
    Status s = c.validate();
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::OutOfRange);

    grl::Circuit c2(1);
    grl::Gate lt;
    lt.kind = grl::GateKind::LtCell;
    lt.fanin = {0}; // needs exactly 2
    c2.addGateUnchecked(lt);
    EXPECT_FALSE(c2.validate().isOk());

    grl::Circuit c3(1);
    grl::Gate z;
    z.kind = grl::GateKind::Delay;
    z.fanin = {1}; // self-loop through a ZERO-stage delay: no breaker
    z.stages = 0;
    c3.addGateUnchecked(z);
    EXPECT_FALSE(c3.validate().isOk());
}

TEST(GrlValidate, CompileStillProducesValidCircuits)
{
    Rng rng(17);
    for (int trial = 0; trial < 10; ++trial) {
        Network net = testing::randomNetwork(rng, 3, 10);
        grl::Circuit c = grl::compileToGrl(net).circuit;
        EXPECT_TRUE(c.validate().isOk());
    }
}

// ----------------------------------------------------- GRL fault hooks

grl::Circuit
sampleCircuit()
{
    grl::Circuit c(3);
    grl::WireId m = c.andGate(c.input(0), c.input(1));
    grl::WireId x = c.orGate(m, c.input(2));
    grl::WireId d = c.delay(x, 2);
    c.markOutput(c.ltCell(d, c.input(2)));
    c.markOutput(d);
    return c;
}

TEST(GrlFaults, GateDelayInjectionIsDeterministic)
{
    grl::Circuit c = sampleCircuit();
    std::vector<Time> x{Time(1), Time(3), Time(2)};
    fault::FaultSpec spec;
    spec.seed = 66;
    spec.gateDelayJitter = 1;
    fault::FaultInjector inj(spec);
    fault::InjectionScope scope(inj);
    grl::SimResult a = grl::simulateEvents(c, x);
    grl::SimResult b = grl::simulateEvents(c, x);
    EXPECT_EQ(a.outputs, b.outputs);
}

TEST(GrlFaults, StuckWiresSilenceOutputs)
{
    grl::Circuit c = sampleCircuit();
    std::vector<Time> x{Time(1), Time(3), Time(2)};
    fault::FaultSpec spec;
    spec.seed = 2;
    spec.stuckProb = 1.0; // every wire dead
    fault::FaultInjector inj(spec);
    fault::InjectionScope scope(inj);
    grl::SimResult r = grl::simulateEvents(c, x);
    for (Time t : r.outputs)
        EXPECT_TRUE(t.isInf());
}

TEST(GrlFaults, AgendaGuardCleanOnValidCircuits)
{
    grl::Circuit c = sampleCircuit();
    fault::FaultReport report;
    fault::GuardScope scope(fault::GuardOptions{}, &report);
    testing::forAllVolleys(3, 3, [&](const std::vector<Time> &x) {
        grl::simulateEvents(c, x);
    });
    EXPECT_TRUE(report.clean()) << report.str();
}

} // namespace
} // namespace st
