/**
 * @file
 * Tests for micro-weights and programmable synapses (paper Sec. IV.B,
 * Figs. 13-14): the enable/disable gate semantics, thermometer weight
 * selection, and the headline property that a ProgrammableSrm0 at weight
 * vector w behaves exactly like a fixed SRM0 whose synapses use
 * family[w_i].
 */

#include <gtest/gtest.h>

#include "core/properties.hpp"
#include "neuron/microweight.hpp"
#include "neuron/srm0_reference.hpp"
#include "test_helpers.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

TEST(MicroWeight, GatePassesWhenInf)
{
    // Fig. 13: mu = inf enables the tap, mu = 0 silences it.
    Network net(1);
    NodeId mu = net.config(INF);
    net.markOutput(emitMicroWeightGate(net, net.input(0), mu));
    EXPECT_EQ(net.evaluate(V({7}))[0], 7_t);
    net.setConfig(mu, 0_t);
    EXPECT_EQ(net.evaluate(V({7}))[0], INF);
    EXPECT_EQ(net.evaluate(V({0}))[0], INF); // even a t=0 spike
}

TEST(ProgrammableSynapse, RejectsEmptyFamily)
{
    Network net(1);
    EXPECT_THROW(ProgrammableSynapse(net, net.input(0), {}),
                 std::invalid_argument);
}

TEST(ProgrammableSynapse, TapCountsCoverFamilyDeltas)
{
    Network net(1);
    auto family = scaledStepFamily(4); // weight w jumps by w at t=0
    ProgrammableSynapse syn(net, net.input(0), family);
    EXPECT_EQ(syn.maxWeight(), 4u);
    EXPECT_EQ(syn.numMicroWeights(), 4u);
    // Each level adds exactly one unit up-step (amplitude grows by 1).
    EXPECT_EQ(syn.upTaps().size(), 4u);
    EXPECT_TRUE(syn.downTaps().empty());
}

TEST(ProgrammableSynapse, WeightSelectionIsThermometer)
{
    Network net(1);
    auto family = scaledStepFamily(3);
    ProgrammableSynapse syn(net, net.input(0), family);
    for (NodeId tap : syn.upTaps())
        net.markOutput(tap);

    syn.setWeight(net, 2);
    EXPECT_EQ(syn.weight(), 2u);
    auto out = net.evaluate(V({5}));
    size_t active = 0;
    for (Time t : out)
        active += t.isFinite();
    EXPECT_EQ(active, 2u); // exactly w taps enabled

    syn.setWeight(net, 0);
    out = net.evaluate(V({5}));
    for (Time t : out)
        EXPECT_EQ(t, INF);
}

TEST(ProgrammableSynapse, RejectsOutOfRangeWeight)
{
    Network net(1);
    ProgrammableSynapse syn(net, net.input(0), scaledStepFamily(2));
    EXPECT_THROW(syn.setWeight(net, 3), std::out_of_range);
}

TEST(ProgrammableSynapse, AlwaysActiveLevelZeroResponse)
{
    // family[0] may itself be nonzero (an unconditional baseline tap).
    Network net(1);
    std::vector<ResponseFunction> family{ResponseFunction::step(1),
                                         ResponseFunction::step(2)};
    ProgrammableSynapse syn(net, net.input(0), family);
    for (NodeId tap : syn.upTaps())
        net.markOutput(tap);
    // Weight 0: only the baseline tap is live.
    auto out = net.evaluate(V({3}));
    size_t active = 0;
    for (Time t : out)
        active += t.isFinite();
    EXPECT_EQ(active, 1u);
}

TEST(ScaledFamilies, ShapesAndSizes)
{
    auto biexp = scaledBiexpFamily(4);
    ASSERT_EQ(biexp.size(), 5u);
    EXPECT_TRUE(biexp[0].isZero());
    for (size_t w = 1; w <= 4; ++w)
        EXPECT_EQ(biexp[w].peak(), static_cast<int>(w));

    auto steps = scaledStepFamily(3);
    ASSERT_EQ(steps.size(), 4u);
    EXPECT_EQ(steps[3].finalValue(), 3);
}

/**
 * The Fig. 14 headline property: a programmable neuron at weights
 * (w1..wq) equals the fixed neuron with responses family[w_i].
 */
class ProgrammableVsFixed : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ProgrammableVsFixed, BiexpFamilyMatchesFixedNeuron)
{
    Rng rng(GetParam());
    auto family = scaledBiexpFamily(3);
    const size_t arity = 3;
    ProgrammableSrm0 prog(arity, family, 3);

    for (int config = 0; config < 4; ++config) {
        std::vector<size_t> w(arity);
        std::vector<ResponseFunction> fixed_syn;
        for (size_t i = 0; i < arity; ++i) {
            w[i] = rng.below(family.size());
            prog.setWeight(i, w[i]);
            fixed_syn.push_back(family[w[i]]);
        }
        Srm0Neuron fixed(fixed_syn, 3);
        for (int s = 0; s < 40; ++s) {
            auto x = testing::randomVolley(rng, arity, 10, 0.2);
            EXPECT_EQ(prog.fire(x), fixed.fire(x))
                << "weights [" << w[0] << "," << w[1] << "," << w[2]
                << "] at " << volleyStr(x);
        }
    }
}

TEST_P(ProgrammableVsFixed, StepFamilyMatchesFixedNeuron)
{
    Rng rng(GetParam() ^ 0xf00d);
    auto family = scaledStepFamily(4);
    const size_t arity = 4;
    ProgrammableSrm0 prog(arity, family, 4);

    for (int config = 0; config < 4; ++config) {
        std::vector<ResponseFunction> fixed_syn;
        for (size_t i = 0; i < arity; ++i) {
            size_t w = rng.below(family.size());
            prog.setWeight(i, w);
            fixed_syn.push_back(family[w]);
        }
        Srm0Neuron fixed(fixed_syn, 4);
        for (int s = 0; s < 40; ++s) {
            auto x = testing::randomVolley(rng, arity, 8, 0.25);
            EXPECT_EQ(prog.fire(x), fixed.fire(x)) << volleyStr(x);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgrammableVsFixed,
                         ::testing::Values(101, 202, 303));

TEST(ProgrammableSrm0, Fig14WeightThreeExample)
{
    // The paper's example: to set synaptic weight 3 in a 0..4 range,
    // mu1..mu3 = inf and mu4 = 0. Observable: the neuron behaves as the
    // weight-3 response.
    auto family = scaledStepFamily(4);
    ProgrammableSrm0 prog(1, family, 3);
    prog.setWeight(0, 3);
    EXPECT_EQ(prog.fire(V({2})), 2_t); // 3 units >= theta=3 at t=2
    prog.setWeight(0, 2);
    EXPECT_EQ(prog.fire(V({2})), INF); // 2 units < theta
}

TEST(ProgrammableSrm0, AllWeightsZeroNeverFires)
{
    ProgrammableSrm0 prog(2, scaledStepFamily(3), 1);
    EXPECT_EQ(prog.fire(V({0, 0})), INF);
    prog.setWeight(0, 1);
    EXPECT_EQ(prog.fire(V({0, 0})), 0_t);
}

TEST(ProgrammableSrm0, WeightAccessors)
{
    ProgrammableSrm0 prog(2, scaledStepFamily(3), 1);
    EXPECT_EQ(prog.maxWeight(), 3u);
    EXPECT_EQ(prog.weight(0), 0u);
    prog.setWeight(0, 2);
    EXPECT_EQ(prog.weight(0), 2u);
    EXPECT_THROW(prog.setWeight(9, 1), std::out_of_range);
}

TEST(ProgrammableSrm0, RejectsBadConfig)
{
    EXPECT_THROW(ProgrammableSrm0(0, scaledStepFamily(2), 1),
                 std::invalid_argument);
    EXPECT_THROW(ProgrammableSrm0(2, scaledStepFamily(2), 0),
                 std::invalid_argument);
}

TEST(ProgrammableSrm0, NetworkIsInspectable)
{
    ProgrammableSrm0 prog(2, scaledStepFamily(2), 1);
    const Network &net = prog.network();
    EXPECT_EQ(net.numInputs(), 2u);
    EXPECT_EQ(net.outputs().size(), 1u);
    EXPECT_GT(net.countOf(Op::Config), 0u); // the micro-weights
}

} // namespace
} // namespace st
