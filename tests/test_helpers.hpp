/**
 * @file
 * Shared helpers for the test suites: volley literals, exhaustive
 * enumeration, and random generators for volleys, tables and networks.
 */

#ifndef ST_TESTS_TEST_HELPERS_HPP
#define ST_TESTS_TEST_HELPERS_HPP

#include <functional>
#include <initializer_list>
#include <vector>

#include "core/function_table.hpp"
#include "core/network.hpp"
#include "core/time.hpp"
#include "util/rng.hpp"

namespace st::testing {

/** Shorthand volley literal: V({1, 2}) with kNo for "no spike". */
inline constexpr uint64_t kNo = ~uint64_t{0};

inline std::vector<Time>
V(std::initializer_list<uint64_t> values)
{
    std::vector<Time> v;
    v.reserve(values.size());
    for (uint64_t x : values)
        v.push_back(x == kNo ? INF : Time(x));
    return v;
}

/** Enumerate every volley over {0..k, inf}^arity. */
inline void
forAllVolleys(size_t arity, Time::rep k,
              const std::function<void(const std::vector<Time> &)> &visit)
{
    std::vector<Time::rep> digits(arity, 0);
    std::vector<Time> u(arity);
    for (;;) {
        for (size_t i = 0; i < arity; ++i)
            u[i] = digits[i] == k + 1 ? INF : Time(digits[i]);
        visit(u);
        size_t pos = 0;
        while (pos < arity && digits[pos] == k + 1)
            digits[pos++] = 0;
        if (pos == arity)
            return;
        ++digits[pos];
    }
}

/** Random volley with entries in [0, limit] and inf probability p_inf. */
inline std::vector<Time>
randomVolley(Rng &rng, size_t arity, Time::rep limit, double p_inf = 0.2)
{
    std::vector<Time> v(arity);
    for (Time &x : v)
        x = rng.chance(p_inf) ? INF : Time(rng.below(limit + 1));
    return v;
}

/**
 * Random normalized function table: up to max_rows random rows over
 * values {0..k, inf}; rows that violate normal form or conflict with
 * earlier rows are skipped.
 */
inline FunctionTable
randomTable(Rng &rng, size_t arity, Time::rep k, size_t max_rows)
{
    FunctionTable table(arity);
    for (size_t r = 0; r < max_rows; ++r) {
        std::vector<Time> inputs(arity);
        for (Time &x : inputs)
            x = rng.chance(0.2) ? INF : Time(rng.below(k + 1));
        // Force normal form: one entry becomes 0.
        inputs[rng.below(arity)] = 0_t;
        Time output = Time(rng.below(k + 1));
        try {
            table.addRow(inputs, output);
        } catch (const std::invalid_argument &) {
            // duplicate or conflicting row: skip
        }
    }
    return table;
}

/**
 * Random feedforward network over the full primitive set (including
 * native max), with num_inputs inputs and one output.
 */
inline Network
randomNetwork(Rng &rng, size_t num_inputs, size_t num_blocks,
              Time::rep max_inc = 4)
{
    Network net(num_inputs);
    auto randomNode = [&]() {
        return static_cast<NodeId>(rng.below(net.size()));
    };
    for (size_t b = 0; b < num_blocks; ++b) {
        switch (rng.below(4)) {
          case 0:
            net.inc(randomNode(), rng.below(max_inc + 1));
            break;
          case 1:
            net.min(randomNode(), randomNode());
            break;
          case 2:
            net.max(randomNode(), randomNode());
            break;
          default:
            net.lt(randomNode(), randomNode());
            break;
        }
    }
    net.markOutput(static_cast<NodeId>(net.size() - 1));
    return net;
}

} // namespace st::testing

#endif // ST_TESTS_TEST_HELPERS_HPP
