/**
 * @file
 * Tests for response functions (paper Fig. 2 / Fig. 11): discretization
 * of the biexponential and piecewise-linear shapes, the step (non-leaky)
 * synapse, and the decomposition into unit up/down steps that drives the
 * Fig. 11 fanout construction.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "neuron/response.hpp"

namespace st {
namespace {

using Amp = ResponseFunction::Amp;

/** Reconstruct A(t) from up/down steps; must reproduce at(t). */
Amp
amplitudeFromSteps(const ResponseFunction &r, Time::rep t)
{
    Amp a = 0;
    for (Time::rep u : r.upSteps()) {
        if (u <= t)
            ++a;
    }
    for (Time::rep d : r.downSteps()) {
        if (d <= t)
            --a;
    }
    return a;
}

TEST(Response, EmptyResponseIsZero)
{
    ResponseFunction r;
    EXPECT_TRUE(r.isZero());
    EXPECT_EQ(r.at(0), 0);
    EXPECT_EQ(r.at(100), 0);
    EXPECT_EQ(r.peak(), 0);
    EXPECT_EQ(r.tMax(), 0u);
    EXPECT_TRUE(r.upSteps().empty());
    EXPECT_TRUE(r.downSteps().empty());
}

TEST(Response, TrimsFlatTailToCanonicalForm)
{
    ResponseFunction r({0, 2, 2, 2, 2});
    EXPECT_EQ(r.samples(), (std::vector<Amp>{0, 2}));
    EXPECT_EQ(r.at(1), 2);
    EXPECT_EQ(r.at(50), 2); // flat tail continues
    EXPECT_EQ(r.finalValue(), 2);
}

TEST(Response, AllZeroSamplesBecomeEmpty)
{
    ResponseFunction r({0, 0, 0});
    EXPECT_TRUE(r.isZero());
}

TEST(Response, StepResponse)
{
    ResponseFunction r = ResponseFunction::step(3);
    EXPECT_EQ(r.at(0), 3);
    EXPECT_EQ(r.at(10), 3);
    EXPECT_EQ(r.finalValue(), 3);
    EXPECT_EQ(r.upSteps(), (std::vector<Time::rep>{0, 0, 0}));
    EXPECT_TRUE(r.downSteps().empty());
}

TEST(Response, DelayedStepResponse)
{
    ResponseFunction r = ResponseFunction::step(2, 4);
    EXPECT_EQ(r.at(3), 0);
    EXPECT_EQ(r.at(4), 2);
    EXPECT_EQ(r.upSteps(), (std::vector<Time::rep>{4, 4}));
}

TEST(Response, ZeroWeightStepIsEmpty)
{
    EXPECT_TRUE(ResponseFunction::step(0).isZero());
}

TEST(Response, BiexponentialShape)
{
    ResponseFunction r = ResponseFunction::biexponential(5, 4.0, 1.0);
    // Rises from 0, peaks at the requested amplitude, decays to 0.
    EXPECT_EQ(r.at(0), 0);
    EXPECT_EQ(r.peak(), 5);
    EXPECT_EQ(r.finalValue(), 0);
    EXPECT_EQ(r.trough(), 0); // purely excitatory
    EXPECT_GT(r.tMax(), 2u);  // takes a while to settle
    // Unimodal-ish: rises before the peak time, decays after.
    Amp peak_val = 0;
    for (Time::rep t = 0; t <= r.tMax(); ++t)
        peak_val = std::max(peak_val, r.at(t));
    EXPECT_EQ(peak_val, 5);
}

TEST(Response, BiexponentialStepsBalanceToZero)
{
    ResponseFunction r = ResponseFunction::biexponential(5, 4.0, 1.0);
    // Decays back to 0 => equal numbers of up and down steps.
    EXPECT_EQ(r.upSteps().size(), r.downSteps().size());
    EXPECT_GE(r.upSteps().size(), 5u); // reached amplitude 5
}

TEST(Response, BiexponentialRejectsBadTaus)
{
    EXPECT_THROW(ResponseFunction::biexponential(3, 1.0, 4.0),
                 std::invalid_argument);
    EXPECT_THROW(ResponseFunction::biexponential(3, 2.0, 2.0),
                 std::invalid_argument);
}

TEST(Response, PiecewiseLinearShape)
{
    // Maass's Fig. 2b approximation: up over 2 steps, down over 4.
    ResponseFunction r = ResponseFunction::piecewiseLinear(4, 2, 4);
    EXPECT_EQ(r.at(0), 0);
    EXPECT_EQ(r.at(2), 4); // peak at end of rise
    EXPECT_EQ(r.at(6), 0); // back to zero after the fall
    EXPECT_EQ(r.peak(), 4);
    EXPECT_EQ(r.finalValue(), 0);
}

TEST(Response, PiecewiseLinearRejectsZeroLengths)
{
    EXPECT_THROW(ResponseFunction::piecewiseLinear(4, 0, 3),
                 std::invalid_argument);
    EXPECT_THROW(ResponseFunction::piecewiseLinear(4, 3, 0),
                 std::invalid_argument);
}

TEST(Response, UpDownStepsReconstructAmplitude)
{
    // The core Fig. 11 property: the fanout taps (unit steps) carry the
    // complete response information.
    for (const ResponseFunction &r :
         {ResponseFunction::biexponential(5, 4.0, 1.0),
          ResponseFunction::piecewiseLinear(3, 2, 5),
          ResponseFunction::step(4, 2),
          ResponseFunction({0, 2, 1, 3, 0, -1, 0})}) {
        for (Time::rep t = 0; t <= r.tMax() + 2; ++t)
            EXPECT_EQ(amplitudeFromSteps(r, t), r.at(t)) << "t=" << t;
    }
}

TEST(Response, StepsAreSortedWithMultiplicity)
{
    ResponseFunction r({0, 2, 2, 5});
    // +2 at t=1, +3 at t=3.
    EXPECT_EQ(r.upSteps(), (std::vector<Time::rep>{1, 1, 3, 3, 3}));
    EXPECT_TRUE(r.downSteps().empty());
}

TEST(Response, NegatedModelsInhibition)
{
    ResponseFunction r = ResponseFunction::biexponential(4, 4.0, 1.0);
    ResponseFunction inhib = r.negated();
    EXPECT_EQ(inhib.trough(), -4);
    EXPECT_EQ(inhib.peak(), 0);
    EXPECT_EQ(inhib.upSteps().size(), r.downSteps().size());
    EXPECT_EQ(inhib.downSteps().size(), r.upSteps().size());
    for (Time::rep t = 0; t <= r.tMax(); ++t)
        EXPECT_EQ(inhib.at(t), -r.at(t));
}

TEST(Response, PlusComposesAmplitudes)
{
    ResponseFunction a = ResponseFunction::step(2);
    ResponseFunction b = ResponseFunction::piecewiseLinear(3, 1, 2);
    ResponseFunction sum = a.plus(b);
    for (Time::rep t = 0; t <= 5; ++t)
        EXPECT_EQ(sum.at(t), a.at(t) + b.at(t));
}

TEST(Response, PlusWithNegationCancels)
{
    ResponseFunction r = ResponseFunction::biexponential(3, 4.0, 1.0);
    EXPECT_TRUE(r.plus(r.negated()).isZero());
}

TEST(Response, NegativeFinalValueResponse)
{
    // A response settling below zero (sustained inhibition).
    ResponseFunction r({0, -1, -2});
    EXPECT_EQ(r.finalValue(), -2);
    EXPECT_EQ(r.at(100), -2);
    EXPECT_EQ(r.downSteps().size(), 2u);
    EXPECT_TRUE(r.upSteps().empty());
}

TEST(Response, EqualityIsCanonical)
{
    EXPECT_EQ(ResponseFunction({0, 2, 2, 2}), ResponseFunction({0, 2}));
    EXPECT_NE(ResponseFunction({0, 2}), ResponseFunction({0, 3}));
}

} // namespace
} // namespace st
