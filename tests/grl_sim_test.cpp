/**
 * @file
 * Tests for the GRL logic simulator (paper Sec. V, Fig. 16): each gate's
 * edge-time semantics (OR = min, AND = max, latched LT, shift-register
 * delay), tie handling, horizon behaviour, and transition accounting —
 * the "single switch or none at all" property of Sec. VI.
 */

#include <gtest/gtest.h>

#include "grl/energy.hpp"
#include "grl/logic_sim.hpp"
#include "test_helpers.hpp"

namespace st::grl {
namespace {

using testing::V;
using testing::kNo;

TEST(GrlSim, AndGateIsMin)
{
    // Fig. 16: with 1->0 edges, the FIRST falling input pulls AND low.
    Circuit c(2);
    c.markOutput(c.andGate(c.input(0), c.input(1)));
    EXPECT_EQ(simulate(c, V({3, 7})).outputs, V({3}));
    EXPECT_EQ(simulate(c, V({7, 3})).outputs, V({3}));
    EXPECT_EQ(simulate(c, V({kNo, 3})).outputs, V({3}));
    EXPECT_EQ(simulate(c, V({kNo, kNo})).outputs, V({kNo}));
}

TEST(GrlSim, OrGateIsMax)
{
    // OR stays high until the LAST input falls.
    Circuit c(2);
    c.markOutput(c.orGate(c.input(0), c.input(1)));
    EXPECT_EQ(simulate(c, V({3, 7})).outputs, V({7}));
    EXPECT_EQ(simulate(c, V({kNo, 3})).outputs, V({kNo}));
}

TEST(GrlSim, LtCellPassesStrictlyEarlierA)
{
    Circuit c(2);
    c.markOutput(c.ltCell(c.input(0), c.input(1)));
    EXPECT_EQ(simulate(c, V({2, 5})).outputs, V({2}));
    EXPECT_EQ(simulate(c, V({5, 2})).outputs, V({kNo}));
    EXPECT_EQ(simulate(c, V({2, kNo})).outputs, V({2}));
    EXPECT_EQ(simulate(c, V({kNo, 2})).outputs, V({kNo}));
}

TEST(GrlSim, LtCellTieBlocks)
{
    // The latch captures b's simultaneous fall before a can pass: the
    // paper's "once the output transitions to 0 it never returns"
    // discipline resolves ties against passing.
    Circuit c(2);
    c.markOutput(c.ltCell(c.input(0), c.input(1)));
    EXPECT_EQ(simulate(c, V({4, 4})).outputs, V({kNo}));
}

TEST(GrlSim, LtLatchStaysClosedForever)
{
    // b falls first, a much later: output must remain high.
    Circuit c(2);
    c.markOutput(c.ltCell(c.input(0), c.input(1)));
    SimResult r = simulate(c, V({50, 1}));
    EXPECT_EQ(r.outputs, V({kNo}));
    EXPECT_EQ(r.ltOutputTransitions, 0u);
    EXPECT_EQ(r.ltLatchTransitions, 1u); // the capture event
}

TEST(GrlSim, DelayIsShiftRegister)
{
    Circuit c(1);
    c.markOutput(c.delay(c.input(0), 4));
    EXPECT_EQ(simulate(c, V({3})).outputs, V({7}));
    EXPECT_EQ(simulate(c, V({kNo})).outputs, V({kNo}));
}

TEST(GrlSim, ZeroStageDelayIsAWire)
{
    Circuit c(1);
    c.markOutput(c.delay(c.input(0), 0));
    EXPECT_EQ(simulate(c, V({5})).outputs, V({5}));
}

TEST(GrlSim, ChainedDelaysAccumulate)
{
    Circuit c(1);
    WireId d1 = c.delay(c.input(0), 2);
    c.markOutput(c.delay(d1, 3));
    EXPECT_EQ(simulate(c, V({1})).outputs, V({6}));
}

TEST(GrlSim, ConstLinesFallOnSchedule)
{
    Circuit c(1);
    WireId k = c.constant(2_t);
    c.markOutput(c.andGate(c.input(0), k)); // min with the constant
    EXPECT_EQ(simulate(c, V({5})).outputs, V({2}));
    EXPECT_EQ(simulate(c, V({1})).outputs, V({1}));

    Circuit c2(1);
    WireId never = c2.constant(INF);
    c2.markOutput(c2.orGate(c2.input(0), never)); // max with "never"
    EXPECT_EQ(simulate(c2, V({1})).outputs, V({kNo}));
}

TEST(GrlSim, HorizonTruncatesLateFalls)
{
    Circuit c(1);
    c.markOutput(c.delay(c.input(0), 10));
    // Explicit short horizon: the fall at t=12 is not observed.
    SimResult r = simulate(c, V({2}), 5);
    EXPECT_EQ(r.outputs, V({kNo}));
    // The default (safe) horizon sees it.
    EXPECT_EQ(simulate(c, V({2})).outputs, V({12}));
}

TEST(GrlSim, SafeHorizonCoversDelaysAndConsts)
{
    Circuit c(1);
    c.constant(9_t);
    c.delay(c.input(0), 6);
    EXPECT_EQ(safeHorizon(c, V({4})), 9 + 6 + 1u);
    EXPECT_EQ(safeHorizon(c, V({kNo})), 9 + 6 + 1u);
}

TEST(GrlSim, CombinationalGatesSwitchAtMostOnce)
{
    // Sec. VI conjecture 1: per computation, each line switches once or
    // not at all.
    Rng rng(5);
    Circuit c(3);
    WireId m1 = c.orGate(c.input(0), c.input(1));
    WireId m2 = c.andGate(m1, c.input(2));
    WireId lt = c.ltCell(m2, c.input(0));
    c.markOutput(lt);
    for (int s = 0; s < 50; ++s) {
        auto x = testing::randomVolley(rng, 3, 10, 0.3);
        SimResult r = simulate(c, x);
        // 2 combinational gates + 1 lt output can switch at most once
        // each.
        EXPECT_LE(r.gateTransitions, 2u);
        EXPECT_LE(r.ltOutputTransitions, 1u);
        EXPECT_LE(r.ltLatchTransitions, 1u);
    }
}

TEST(GrlSim, QuietLinesZeroTransitions)
{
    // Sparse coding: lines with no event consume nothing.
    Circuit c(2);
    c.markOutput(c.andGate(c.input(0), c.input(1)));
    SimResult r = simulate(c, V({kNo, kNo}), 20);
    EXPECT_EQ(r.gateTransitions, 0u);
    EXPECT_EQ(r.inputTransitions, 0u);
    EXPECT_EQ(r.flopDataTransitions, 0u);
}

TEST(GrlSim, FlopTransitionsCountStages)
{
    // One event through a c-stage shift register toggles c flipflops.
    Circuit c(1);
    c.markOutput(c.delay(c.input(0), 5));
    SimResult r = simulate(c, V({0}));
    EXPECT_EQ(r.flopDataTransitions, 5u);
    EXPECT_EQ(r.inputTransitions, 1u);
}

TEST(GrlSim, FallTimesCoverAllGates)
{
    Circuit c(2);
    WireId m = c.andGate(c.input(0), c.input(1)); // min
    WireId d = c.delay(m, 2);
    c.markOutput(d);
    SimResult r = simulate(c, V({4, 6}));
    ASSERT_EQ(r.fallTime.size(), c.size());
    EXPECT_EQ(r.fallTime[c.input(0)], 4_t);
    EXPECT_EQ(r.fallTime[c.input(1)], 6_t);
    EXPECT_EQ(r.fallTime[m], 4_t);
    EXPECT_EQ(r.fallTime[d], 6_t);
}

TEST(GrlSim, RejectsArityMismatch)
{
    Circuit c(2);
    c.markOutput(c.input(0));
    EXPECT_THROW(simulate(c, V({1})), std::invalid_argument);
}

TEST(GrlSim, ResetAccountingCountsEndState)
{
    // a AND-min with one fall, one delay fully drained, one latch shut.
    Circuit c(2);
    WireId m = c.andGate(c.input(0), c.input(1));
    c.delay(m, 3);
    c.markOutput(c.ltCell(c.input(0), c.input(1)));
    SimResult r = simulate(c, V({5, 2}));
    // Fallen: both inputs, the AND, the delay, not the blocked lt.
    EXPECT_EQ(r.fallenLines, 4u);
    EXPECT_EQ(r.flopZeroBits, 3u);   // the 0 drained into all stages
    EXPECT_EQ(r.latchesCaptured, 1u); // b fell before a
    EXPECT_EQ(r.resetTransitions(), 4u + 3u + 1u);
}

TEST(GrlSim, QuietComputationNeedsNoReset)
{
    Circuit c(2);
    c.markOutput(c.andGate(c.input(0), c.input(1)));
    SimResult r = simulate(c, V({kNo, kNo}), 10);
    EXPECT_EQ(r.resetTransitions(), 0u);
}

TEST(GrlSim, StreamAccumulatesForwardAndReset)
{
    Circuit c(2);
    c.markOutput(c.andGate(c.input(0), c.input(1)));
    std::vector<std::vector<Time>> volleys{
        V({1, 3}), V({kNo, kNo}), V({0, 0})};
    StreamResult stream = simulateStream(c, volleys, 8);
    ASSERT_EQ(stream.computations.size(), 3u);
    // Computation 0: 2 input falls + 1 gate fall forward; 3 lines reset.
    // Computation 1: nothing. Computation 2: same as 0.
    EXPECT_EQ(stream.forwardTransitions, 6u);
    EXPECT_EQ(stream.resetTransitions, 6u);
    EXPECT_EQ(stream.totalTransitions(), 12u);
    EXPECT_EQ(stream.totalCycles, 3u * 9u);
    EXPECT_EQ(stream.computations[2].outputs, V({0}));
}

TEST(GrlSim, StreamComputationsAreIndependent)
{
    // The reset between computations must fully erase latch state.
    Circuit c(2);
    c.markOutput(c.ltCell(c.input(0), c.input(1)));
    std::vector<std::vector<Time>> volleys{
        V({5, 1}), // blocks the latch
        V({1, 5}), // must pass despite the earlier capture
    };
    StreamResult stream = simulateStream(c, volleys);
    EXPECT_EQ(stream.computations[0].outputs, V({kNo}));
    EXPECT_EQ(stream.computations[1].outputs, V({1}));
}

TEST(GrlEnergy, StreamEnergyIncludesReset)
{
    Circuit c(2);
    c.markOutput(c.andGate(c.input(0), c.input(1)));
    std::vector<std::vector<Time>> volleys{V({1, 2}), V({2, 1})};
    StreamResult stream = simulateStream(c, volleys, 6);
    EnergyParams p;
    EnergyReport r = estimateStreamEnergy(c, stream, p);
    EXPECT_GT(r.reset, 0.0);
    EXPECT_DOUBLE_EQ(r.reset, p.resetSwitch *
                                  static_cast<double>(
                                      stream.resetTransitions));
    EXPECT_GT(r.total, r.reset);
}

TEST(GrlSim, SameCycleCascadeTieBlocks)
{
    // b's fall is produced combinationally in the same cycle as a's:
    // the topological settle still blocks the lt (matches tlt).
    Circuit c(2);
    WireId m = c.andGate(c.input(0), c.input(1)); // min
    c.markOutput(c.ltCell(c.input(0), m)); // a == min: tie when a wins
    EXPECT_EQ(simulate(c, V({3, 9})).outputs, V({kNo}));
    EXPECT_EQ(simulate(c, V({9, 3})).outputs, V({kNo}));
}

} // namespace
} // namespace st::grl
