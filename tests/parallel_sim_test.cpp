/**
 * @file
 * Tests for the conservative time-window parallel GRL engine: the
 * zero-delay component cache, the sharpened validate() diagnostics,
 * serial-fallback behavior, and the differential contract — at every
 * tested thread and partition count, simulateEventsParallel() must be
 * bit-identical to simulateEvents() (which the event-engine suite in
 * turn pins to the clocked engine), with per-partition counter slices
 * summing exactly to the serial totals.
 */

#include <gtest/gtest.h>

#include "core/properties.hpp"
#include "fault/fault.hpp"
#include "grl/event_sim.hpp"
#include "grl/parallel_sim.hpp"
#include "grl/sheet.hpp"
#include "obs/metrics.hpp"
#include "test_helpers.hpp"

namespace st::grl {
namespace {

using testing::V;
using testing::kNo;

void
expectSameResult(const SimResult &a, const SimResult &b,
                 const std::string &context)
{
    EXPECT_EQ(a.fallTime, b.fallTime) << context;
    EXPECT_EQ(a.outputs, b.outputs) << context;
    EXPECT_EQ(a.gateTransitions, b.gateTransitions) << context;
    EXPECT_EQ(a.ltOutputTransitions, b.ltOutputTransitions) << context;
    EXPECT_EQ(a.ltLatchTransitions, b.ltLatchTransitions) << context;
    EXPECT_EQ(a.flopDataTransitions, b.flopDataTransitions) << context;
    EXPECT_EQ(a.inputTransitions, b.inputTransitions) << context;
    EXPECT_EQ(a.fallenLines, b.fallenLines) << context;
    EXPECT_EQ(a.flopZeroBits, b.flopZeroBits) << context;
    EXPECT_EQ(a.latchesCaptured, b.latchesCaptured) << context;
    EXPECT_EQ(a.cyclesSimulated, b.cyclesSimulated) << context;
}

/**
 * A circuit with a known parallel shape: @p clusters zero-delay blobs
 * of random And/Or/Lt gates, chained by Delay links of >= @p min_link
 * stages. Every cross-cluster edge crosses a link register, so the
 * component count (and hence the usable partition count) is at least
 * the cluster count and the engine's lookahead is >= min_link.
 */
Circuit
clusteredCircuit(Rng &rng, size_t num_inputs, size_t clusters,
                 size_t gates_per_cluster, uint32_t min_link)
{
    Circuit c(num_inputs);
    std::vector<WireId> pool; // wires the current cluster may tap
    for (size_t i = 0; i < num_inputs; ++i)
        pool.push_back(c.input(i));
    for (size_t k = 0; k < clusters; ++k) {
        if (k > 0) {
            // Fresh feed lines: link registers from the previous
            // cluster's wires. Their consumers below pull them into
            // this cluster's zero-delay component.
            std::vector<WireId> feed;
            for (size_t f = 0; f < 3; ++f) {
                feed.push_back(c.delay(
                    pool[rng.below(pool.size())],
                    min_link + static_cast<uint32_t>(rng.below(4))));
            }
            pool = std::move(feed);
        }
        auto local = [&]() { return pool[rng.below(pool.size())]; };
        for (size_t g = 0; g < gates_per_cluster; ++g) {
            switch (rng.below(5)) {
              case 0:
                pool.push_back(
                    c.constant(rng.chance(0.3) ? INF
                                               : Time(rng.below(8))));
                break;
              case 1:
                pool.push_back(c.andGate(local(), local()));
                break;
              case 2:
                pool.push_back(c.orGate(local(), local()));
                break;
              case 3:
                pool.push_back(c.ltCell(local(), local()));
                break;
              default:
                // Intra-cluster register: joins this cluster through
                // its consumers, or stays a harmless singleton.
                pool.push_back(c.delay(
                    local(), 1 + static_cast<uint32_t>(rng.below(3))));
                break;
            }
        }
        c.markOutput(pool.back());
    }
    return c;
}

#if ST_OBS_ENABLED
uint64_t
counterValue(const char *name)
{
    for (const auto &c :
         obs::MetricsRegistry::instance().snapshot().counters) {
        if (c.name == name)
            return c.value;
    }
    return 0;
}
#endif

// ------------------------------------------------- zero-delay components

TEST(CircuitComponents, DelayJoinsItsConsumersComponent)
{
    // in0 -> delay(2) -> and(d, in1): the register joins the component
    // of its consumer, and its fanin edge is the only cut.
    Circuit c(2);
    WireId d = c.delay(c.input(0), 2);
    WireId a = c.andGate(d, c.input(1));
    c.markOutput(a);
    const CircuitComponents &comps = c.components();
    ASSERT_EQ(comps.count(), 2u);
    EXPECT_EQ(comps.componentOf[c.input(0)], 0u);
    EXPECT_EQ(comps.componentOf[d], comps.componentOf[a]);
    EXPECT_EQ(comps.componentOf[c.input(1)], comps.componentOf[a]);
    EXPECT_NE(comps.componentOf[c.input(0)], comps.componentOf[a]);
    EXPECT_EQ(comps.sizeOf[0] + comps.sizeOf[1], c.size());
}

TEST(CircuitComponents, ZeroStageDelayIsZeroDelayGlue)
{
    // A stages == 0 register is a wire: it must NOT split components.
    Circuit c(1);
    WireId w = c.delay(c.input(0), 0);
    c.markOutput(c.andGate(w, c.input(0)));
    EXPECT_EQ(c.components().count(), 1u);
}

TEST(CircuitComponents, LabelingIsDeterministicAndDense)
{
    Rng rng(0xc0117);
    Circuit c = clusteredCircuit(rng, 3, 5, 10, 2);
    const CircuitComponents &comps = c.components();
    EXPECT_GE(comps.count(), 5u);
    uint64_t total = 0;
    for (uint32_t s : comps.sizeOf)
        total += s;
    EXPECT_EQ(total, c.size());
    // Dense ids in first-appearance order: component k's first gate
    // precedes component k+1's first gate.
    uint32_t seen = 0;
    for (size_t g = 0; g < c.size(); ++g) {
        EXPECT_LE(comps.componentOf[g], seen);
        seen = std::max(seen, comps.componentOf[g] + 1);
    }
    Circuit copy = c; // cold caches must rebuild identically
    EXPECT_EQ(copy.components().componentOf, comps.componentOf);
}

// ------------------------------------------------ validate() diagnostics

TEST(CircuitValidate, ZeroStageDelayOnFeedbackEdgeNamesTheFix)
{
    // A zero-stage register closing a feedback loop has nonpositive
    // delay — it cannot break the loop, and it could never carry a
    // cross-partition edge. The diagnostic must say so specifically.
    Circuit c(1);
    c.addGateUnchecked(
        Gate{GateKind::Delay, {2}, 0, INF}); // forward ref, stages 0
    c.addGateUnchecked(Gate{GateKind::And, {0, 1}, 0, INF});
    Status status = c.validate();
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("nonpositive"), std::string::npos)
        << status.message();
    EXPECT_NE(status.message().find("stages must be >= 1"),
              std::string::npos)
        << status.message();
}

TEST(CircuitValidate, ZeroStageDelayForwardReferenceNamesTheFix)
{
    Circuit c(1);
    c.addGateUnchecked(Gate{GateKind::Delay, {2}, 0, INF});
    c.addGateUnchecked(Gate{GateKind::Or, {0}, 0, INF});
    Status status = c.validate();
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("nonpositive"), std::string::npos)
        << status.message();
}

TEST(CircuitValidate, PositiveStageFeedbackStillAllowed)
{
    // The sharpened message must not outlaw legal feedback through a
    // register with stages >= 1.
    Circuit c(1);
    WireId d = c.addGateUnchecked(Gate{GateKind::Delay, {2}, 3, INF});
    c.addGateUnchecked(Gate{GateKind::And, {0, d}, 0, INF});
    EXPECT_TRUE(c.validate().isOk());
}

// --------------------------------------------------------- serial fallback

TEST(ParallelSim, SinglePartitionFallsBackToSerial)
{
    Circuit c(2);
    c.markOutput(c.andGate(c.input(0), c.input(1)));
#if ST_OBS_ENABLED
    const uint64_t before = counterValue("grl.par.fallback");
#endif
    ParallelSimReport report;
    ParallelSimOptions opts;
    opts.partitions = 4; // clamped to 1 component
    SimResult par = simulateEventsParallel(c, V({3, 5}), 0, opts,
                                           &report);
    expectSameResult(par, simulateEvents(c, V({3, 5})), "fallback");
    EXPECT_TRUE(report.fellBack);
    EXPECT_EQ(report.partitions, 1u);
    ASSERT_EQ(report.perPartition.size(), 1u);
    EXPECT_EQ(report.perPartition[0].gates, c.size());
#if ST_OBS_ENABLED
    EXPECT_EQ(counterValue("grl.par.fallback"), before + 1);
#endif
}

TEST(ParallelSim, HeavyDelayJitterErasesLookaheadAndFallsBack)
{
    // gateDelayJitter as large as the narrowest cut register can pull
    // the effective cut delay to zero: the conservative window
    // invariant dies, so the engine must fall back — and still match
    // the serial engine under the same injector.
    Rng rng(0xfa11);
    Circuit c = clusteredCircuit(rng, 3, 4, 8, 2);
    auto x = testing::randomVolley(rng, 3, 9);
    fault::FaultSpec spec;
    spec.seed = 7;
    spec.gateDelayJitter = 6; // >= every link register's stages
    fault::FaultInjector inj(spec);
    fault::InjectionScope scope(inj);
    ParallelSimReport report;
    ParallelSimOptions opts;
    opts.partitions = 4;
    SimResult par = simulateEventsParallel(c, x, 0, opts, &report);
    expectSameResult(par, simulateEvents(c, x), "jitter-fallback");
    EXPECT_TRUE(report.fellBack);
}

TEST(ParallelSim, RejectsArityMismatch)
{
    Circuit c(2);
    c.markOutput(c.input(0));
    EXPECT_THROW(simulateEventsParallel(c, V({1})),
                 std::invalid_argument);
}

// ------------------------------------------------- differential contract

TEST(ParallelSim, ClusteredCircuitsMatchSerialAtEveryShape)
{
    for (uint64_t seed = 0; seed < 8; ++seed) {
        Rng rng(0xd1ff + seed);
        Circuit c = clusteredCircuit(rng, 2 + rng.below(3),
                                     3 + rng.below(4),
                                     8 + rng.below(8), 2);
        for (int s = 0; s < 6; ++s) {
            auto x = testing::randomVolley(rng, c.numInputs(), 10,
                                           s % 3 == 0 ? 0.4 : 0.15);
            SimResult serial = simulateEvents(c, x);
            for (size_t parts : {1, 2, 4, 8}) {
                for (size_t threads : {1, 2, 4, 8}) {
                    ParallelSimOptions opts;
                    opts.partitions = parts;
                    opts.threads = threads;
                    expectSameResult(
                        simulateEventsParallel(c, x, 0, opts), serial,
                        "seed=" + std::to_string(seed) +
                            " p=" + std::to_string(parts) +
                            " t=" + std::to_string(threads) + " " +
                            volleyStr(x));
                }
            }
        }
    }
}

TEST(ParallelSim, ExplicitHorizonClipsIdentically)
{
    Rng rng(0xc11f);
    Circuit c = clusteredCircuit(rng, 2, 4, 8, 2);
    auto x = testing::randomVolley(rng, 2, 8);
    for (Time::rep h : {1, 3, 7, 15, 40}) {
        ParallelSimOptions opts;
        opts.partitions = 4;
        expectSameResult(simulateEventsParallel(c, x, h, opts),
                         simulateEvents(c, x, h),
                         "h=" + std::to_string(h));
    }
}

TEST(ParallelSim, FaultInjectionAndGuardsStayBitIdentical)
{
    // Same injector, same draws: the parallel engine must reproduce
    // the serial engine's perturbed run exactly, and the per-partition
    // agenda-monotonicity guard must stay clean (time never moves
    // backwards inside any partition).
    Rng rng(0xfa57);
    Circuit c = clusteredCircuit(rng, 3, 4, 10, 3);
    fault::FaultSpec spec;
    spec.seed = 21;
    spec.gateDelayJitter = 1; // < min_link: lookahead survives
    spec.stuckProb = 0.05;
    fault::FaultInjector inj(spec);
    for (int s = 0; s < 8; ++s) {
        auto x = testing::randomVolley(rng, 3, 9, 0.2);
        fault::InjectionScope scope(inj);
        fault::FaultReport fr;
        fault::GuardOptions gopts;
        gopts.flags = fault::kGuardAgendaOrder;
        fault::GuardScope guard(gopts, &fr);
        SimResult serial = simulateEvents(c, x);
        for (size_t parts : {2, 4}) {
            ParallelSimOptions opts;
            opts.partitions = parts;
            opts.threads = 4;
            ParallelSimReport report;
            SimResult par =
                simulateEventsParallel(c, x, 0, opts, &report);
            expectSameResult(par, serial,
                             "p=" + std::to_string(parts) + " " +
                                 volleyStr(x));
            EXPECT_FALSE(report.fellBack);
        }
        EXPECT_TRUE(fr.clean()) << fr.str();
    }
}

// ------------------------------------------------------- cortical sheet

TEST(CorticalSheet, EveryColumnIsOneComponent)
{
    SheetParams p;
    p.rows = 2;
    p.cols = 3;
    p.neurons = 3;
    p.synapses = 2;
    p.vertDelay = 2;
    Sheet sheet = buildCorticalSheet(p);
    EXPECT_TRUE(sheet.circuit.validate().isOk());
    // The structural guarantee the partitioner leans on: link
    // registers fuse into the consuming column, so components ==
    // columns and every cut edge crosses a link register.
    EXPECT_EQ(sheet.circuit.components().count(), p.rows * p.cols);
    EXPECT_EQ(sheet.circuit.numInputs(), p.rows * p.neurons);
    EXPECT_EQ(sheet.columnOutputs.size(),
              p.rows * p.cols * p.neurons);
}

TEST(CorticalSheet, RejectsDegenerateParams)
{
    SheetParams p;
    p.interDelay = 0;
    EXPECT_THROW(buildCorticalSheet(p), std::invalid_argument);
    SheetParams q;
    q.synapses = 9;
    q.neurons = 4;
    EXPECT_THROW(buildCorticalSheet(q), std::invalid_argument);
}

TEST(ParallelSim, SheetMatchesSerialAndClockedEngines)
{
    SheetParams p;
    p.rows = 2;
    p.cols = 3;
    p.neurons = 3;
    p.synapses = 2;
    p.vertDelay = 3;
    Sheet sheet = buildCorticalSheet(p);
    for (uint64_t salt = 0; salt < 4; ++salt) {
        auto x = sheetInputVolley(sheet, salt);
        SimResult serial = simulateEvents(sheet.circuit, x);
        // Three-way: the clocked engine is the ground truth oracle.
        expectSameResult(serial, simulate(sheet.circuit, x),
                         "clocked salt=" + std::to_string(salt));
        for (size_t parts : {2, 3, 6}) {
            ParallelSimOptions opts;
            opts.partitions = parts;
            opts.threads = 4;
            ParallelSimReport report;
            SimResult par = simulateEventsParallel(sheet.circuit, x, 0,
                                                   opts, &report);
            expectSameResult(par, serial,
                             "salt=" + std::to_string(salt) +
                                 " p=" + std::to_string(parts));
            EXPECT_FALSE(report.fellBack);
            EXPECT_EQ(report.lookahead,
                      std::min<Time::rep>(p.interDelay, p.vertDelay));
        }
    }
}

// ------------------------------------------- chip-scale energy accounting

TEST(ParallelSim, PartitionSlicesSumExactlyToSerialTotals)
{
    SheetParams p;
    p.rows = 1;
    p.cols = 4;
    p.neurons = 3;
    p.synapses = 3;
    Sheet sheet = buildCorticalSheet(p);
    auto x = sheetInputVolley(sheet, 99);
    SimResult serial = simulateEvents(sheet.circuit, x);
    ParallelSimOptions opts;
    opts.partitions = 4;
    opts.threads = 4;
    ParallelSimReport report;
    SimResult par =
        simulateEventsParallel(sheet.circuit, x, 0, opts, &report);
    expectSameResult(par, serial, "sum-check");
    ASSERT_EQ(report.perPartition.size(), 4u);

    uint64_t gates = 0, stages = 0;
    SimResult sum;
    for (const PartitionStats &ps : report.perPartition) {
        gates += ps.gates;
        stages += ps.stages;
        sum.gateTransitions += ps.counts.gateTransitions;
        sum.ltOutputTransitions += ps.counts.ltOutputTransitions;
        sum.ltLatchTransitions += ps.counts.ltLatchTransitions;
        sum.flopDataTransitions += ps.counts.flopDataTransitions;
        sum.inputTransitions += ps.counts.inputTransitions;
        sum.fallenLines += ps.counts.fallenLines;
        sum.flopZeroBits += ps.counts.flopZeroBits;
        sum.latchesCaptured += ps.counts.latchesCaptured;
        EXPECT_EQ(ps.counts.cyclesSimulated, serial.cyclesSimulated);
    }
    EXPECT_EQ(gates, sheet.circuit.size());
    EXPECT_EQ(stages, sheet.circuit.totalStages());
    EXPECT_EQ(sum.gateTransitions, serial.gateTransitions);
    EXPECT_EQ(sum.ltOutputTransitions, serial.ltOutputTransitions);
    EXPECT_EQ(sum.ltLatchTransitions, serial.ltLatchTransitions);
    EXPECT_EQ(sum.flopDataTransitions, serial.flopDataTransitions);
    EXPECT_EQ(sum.inputTransitions, serial.inputTransitions);
    EXPECT_EQ(sum.fallenLines, serial.fallenLines);
    EXPECT_EQ(sum.flopZeroBits, serial.flopZeroBits);
    EXPECT_EQ(sum.latchesCaptured, serial.latchesCaptured);
}

TEST(ParallelSim, ChipEnergyMatchesWholeCircuitEstimate)
{
    SheetParams p;
    p.rows = 1;
    p.cols = 3;
    p.neurons = 3;
    p.synapses = 2;
    Sheet sheet = buildCorticalSheet(p);
    auto x = sheetInputVolley(sheet, 3);
    ParallelSimOptions opts;
    opts.partitions = 3;
    ParallelSimReport report;
    SimResult par =
        simulateEventsParallel(sheet.circuit, x, 0, opts, &report);
    EnergyReport whole = estimateEnergy(sheet.circuit, par);
    ChipEnergyReport chip = chipEnergy(report);
    ASSERT_EQ(chip.perPartition.size(), 3u);
    EXPECT_DOUBLE_EQ(chip.total.combinational, whole.combinational);
    EXPECT_DOUBLE_EQ(chip.total.ltCells, whole.ltCells);
    EXPECT_DOUBLE_EQ(chip.total.flopData, whole.flopData);
    EXPECT_DOUBLE_EQ(chip.total.clock, whole.clock);
    EXPECT_DOUBLE_EQ(chip.total.inputs, whole.inputs);
    EXPECT_DOUBLE_EQ(chip.total.total, whole.total);
    double part_total = 0;
    for (const EnergyReport &e : chip.perPartition)
        part_total += e.total;
    EXPECT_DOUBLE_EQ(part_total, chip.total.total);
}

} // namespace
} // namespace st::grl
