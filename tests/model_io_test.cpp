/**
 * @file
 * STMF container round-trips (model/stmf.hpp + model/serialize.hpp).
 *
 * The contract: pack -> load (through BOTH paths — mmap with pointer
 * fixup, and the copying fallback) must reproduce the original model
 * bit-for-bit under evaluation. "Bit-for-bit" is checked on Time reps
 * and raw double bit patterns, not printed approximations, because a
 * serving fleet mixing load paths must never disagree on an output.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "model/crc32c.hpp"
#include "model/serialize.hpp"
#include "model/stmf.hpp"
#include "tnn/lsm.hpp"
#include "tnn/tnn_network.hpp"
#include "tnn/volley.hpp"

namespace st::model {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "stmf_io_" + name;
}

/** Deterministic probe volleys with a mix of finite and inf lines. */
std::vector<Volley>
probes(size_t width, size_t count)
{
    std::vector<Volley> volleys;
    for (size_t j = 0; j < count; ++j) {
        Volley v(width, INF);
        for (size_t i = 0; i < width; ++i)
            if ((i + 3 * j) % 7 != 0)
                v[i] = Time((i * 37 + j * 101) % 64);
        volleys.push_back(std::move(v));
    }
    return volleys;
}

TnnNetwork
makeTnn(size_t inputs)
{
    TnnNetwork net;
    ColumnParams l1;
    l1.numInputs = inputs;
    l1.numNeurons = inputs * 2;
    l1.wtaK = 3;
    l1.seed = 7;
    net.addLayer(l1);
    ColumnParams l2;
    l2.numInputs = inputs * 2;
    l2.numNeurons = inputs;
    l2.wtaK = 1;
    l2.seed = 8;
    net.addLayer(l2);
    return net;
}

Network
makeNetwork(size_t inputs)
{
    Network net(inputs);
    std::vector<NodeId> ins;
    for (size_t i = 0; i < inputs; ++i)
        ins.push_back(net.input(i));
    const NodeId first = net.min(ins);
    const NodeId last = net.max(ins);
    const NodeId race = net.lt(first, last);
    const NodeId delayed = net.inc(first, 3);
    const NodeId gate = net.config(Time(2));
    net.markOutput(net.max(race, gate));
    net.markOutput(net.min(delayed, last));
    return net;
}

void
expectSameTimes(std::span<const Time> a, std::span<const Time> b,
                const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].value(), b[i].value())
            << what << " line " << i;
}

TEST(ModelIoTnn, RoundTripsBitIdenticalOnBothPaths)
{
    const TnnNetwork original = makeTnn(8);
    const std::string path = tempPath("tnn.stmf");
    PackOptions options;
    options.id = "rt-tnn";
    options.version = 3;
    ASSERT_TRUE(packTnn(original, path, options).isOk());

    for (const LoadMode mode : {LoadMode::Mmap, LoadMode::Copy}) {
        LoadedModel loaded;
        const Status status = loadModel(path, mode, loaded);
        ASSERT_TRUE(status.isOk()) << status.str();
        ASSERT_TRUE(loaded.tnn != nullptr);
        EXPECT_EQ(loaded.info.kind, "tnn");
        EXPECT_EQ(loaded.info.id, "rt-tnn");
        EXPECT_EQ(loaded.info.version, 3u);
        EXPECT_EQ(loaded.info.inputWidth, 8u);
        EXPECT_EQ(loaded.info.mode, mode);
        EXPECT_GT(loaded.info.fileBytes, 0u);

        ASSERT_EQ(loaded.tnn->numLayers(), original.numLayers());
        for (const Volley &v : probes(8, 8))
            expectSameTimes(original.process(v),
                            loaded.tnn->process(v), "tnn volley");
    }
}

TEST(ModelIoTnn, WeightsSurviveExactly)
{
    TnnNetwork original = makeTnn(4);
    const std::string path = tempPath("tnn_w.stmf");
    ASSERT_TRUE(packTnn(original, path, PackOptions{}).isOk());

    LoadedModel loaded;
    ASSERT_TRUE(loadModel(path, LoadMode::Copy, loaded).isOk());
    for (size_t l = 0; l < original.numLayers(); ++l) {
        const Column &a = original.layer(l);
        const Column &b = loaded.tnn->layer(l);
        ASSERT_EQ(a.params().numNeurons, b.params().numNeurons);
        for (size_t n = 0; n < a.params().numNeurons; ++n) {
            const std::vector<double> &wa = a.weights(n);
            const std::vector<double> &wb = b.weights(n);
            ASSERT_EQ(wa.size(), wb.size());
            // memcmp, not ==: the contract is the bit pattern.
            EXPECT_EQ(0, std::memcmp(wa.data(), wb.data(),
                                     wa.size() * sizeof(double)))
                << "layer " << l << " neuron " << n;
        }
    }
}

TEST(ModelIoPlan, MatchesCompiledNetworkOnBothPaths)
{
    const Network net = makeNetwork(6);
    const std::string path = tempPath("plan.stmf");
    PackOptions options;
    options.id = "rt-plan";
    ASSERT_TRUE(
        packNetwork(net, path, options, /*with_grl=*/true).isOk());

    for (const LoadMode mode : {LoadMode::Mmap, LoadMode::Copy}) {
        LoadedModel loaded;
        const Status status = loadModel(path, mode, loaded);
        ASSERT_TRUE(status.isOk()) << status.str();
        ASSERT_TRUE(loaded.plan != nullptr);
        EXPECT_EQ(loaded.info.kind, "plan");
        EXPECT_EQ(loaded.plan->numInputs(), net.numInputs());
        EXPECT_EQ(loaded.plan->numOutputs(), net.outputs().size());

        EvalScratch scratch;
        std::vector<Time> out;
        for (const Volley &v : probes(6, 8)) {
            loaded.plan->evaluate(v, scratch, out);
            expectSameTimes(net.evaluate(v), out, "plan volley");
        }
    }
}

TEST(ModelIoPlan, GrlSectionRoundTripsAndValidates)
{
    const Network net = makeNetwork(4);
    const std::string path = tempPath("plan_grl.stmf");
    ASSERT_TRUE(
        packNetwork(net, path, PackOptions{}, /*with_grl=*/true)
            .isOk());

    StmfFile file;
    ASSERT_TRUE(
        StmfFile::open(path, LoadMode::Mmap, file).isOk());
    ASSERT_TRUE(file.hasSection(SectionType::Grl));

    grl::Circuit circuit(0);
    const Status status = decodeGrl(file, circuit);
    ASSERT_TRUE(status.isOk()) << status.str();
    EXPECT_GT(circuit.gates().size(), net.numInputs());
    EXPECT_FALSE(circuit.outputs().empty());
    EXPECT_TRUE(circuit.validate().isOk());
}

TEST(ModelIoLsm, ConfigRoundTripsExactly)
{
    LsmModelConfig config;
    config.params.numInputs = 16;
    config.params.numNeurons = 48;
    config.params.connectProb = 0.2;
    config.params.leak = 0.75;
    config.params.seed = 0xfeed;
    config.stepsPerVolley = 12;
    config.emaAlpha = 0.35;

    const std::string path = tempPath("lsm.stmf");
    ASSERT_TRUE(packLsm(config, path, PackOptions{}).isOk());

    for (const LoadMode mode : {LoadMode::Mmap, LoadMode::Copy}) {
        LoadedModel loaded;
        const Status status = loadModel(path, mode, loaded);
        ASSERT_TRUE(status.isOk()) << status.str();
        ASSERT_TRUE(loaded.lsm != nullptr);
        EXPECT_EQ(loaded.lsm->params.numInputs, 16u);
        EXPECT_EQ(loaded.lsm->params.numNeurons, 48u);
        EXPECT_EQ(loaded.lsm->params.connectProb, 0.2);
        EXPECT_EQ(loaded.lsm->params.leak, 0.75);
        EXPECT_EQ(loaded.lsm->params.seed, 0xfeedu);
        EXPECT_EQ(loaded.lsm->stepsPerVolley, 12u);
        EXPECT_EQ(loaded.lsm->emaAlpha, 0.35);

        // Same params + seed => the same reservoir dynamics.
        Reservoir a(config.params);
        Reservoir b(loaded.lsm->params);
        const Volley v = probes(16, 1)[0];
        EXPECT_EQ(a.runVolley(v, 12), b.runVolley(v, 12));
        EXPECT_EQ(0, std::memcmp(a.traces().data(),
                                 b.traces().data(),
                                 a.traces().size() * sizeof(double)));
    }
}

TEST(ModelIoWriter, PublishIsAtomicAndRepacksOverwrite)
{
    const Network net = makeNetwork(4);
    const std::string path = tempPath("atomic.stmf");
    PackOptions v1;
    v1.version = 1;
    ASSERT_TRUE(packNetwork(net, path, v1).isOk());

    // No tmp residue next to the published file.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());

    LoadedModel first;
    ASSERT_TRUE(loadModel(path, LoadMode::Copy, first).isOk());
    EXPECT_EQ(first.info.version, 1u);

    // Republish over the same path with a new version: the reader
    // must see the new identity (rename replaced, not appended).
    PackOptions v2;
    v2.version = 2;
    ASSERT_TRUE(packNetwork(net, path, v2).isOk());
    LoadedModel second;
    ASSERT_TRUE(loadModel(path, LoadMode::Copy, second).isOk());
    EXPECT_EQ(second.info.version, 2u);
    EXPECT_EQ(second.info.fileBytes, first.info.fileBytes);
}

TEST(ModelIoWidth, SmokeProbeRejectsUnrunnableMeta)
{
    // A META input width that disagrees with the payload must be
    // caught at load (the canary's width leg), not at first volley.
    const TnnNetwork net = makeTnn(4);
    const std::string path = tempPath("width.stmf");

    StmfBuilder builder;
    ModelInfo info;
    info.kind = "tnn";
    info.id = "liar";
    info.version = 1;
    info.inputWidth = 9; // payload says 4
    builder.addSection(SectionType::Meta, encodeMeta(info));
    builder.addSection(SectionType::Tnn, encodeTnn(net));
    ASSERT_TRUE(builder.writeFile(path).isOk());

    LoadedModel loaded;
    const Status status = loadModel(path, LoadMode::Copy, loaded);
    EXPECT_FALSE(status.isOk());
    EXPECT_EQ(loaded.tnn, nullptr); // out untouched on failure
}

/**
 * CRC32C known-answer + incremental-extend checks: the slicing-by-8
 * fast path must agree with the published Castagnoli vectors and
 * with any chunking of the same message (the format relies on
 * crc32cExtend being chunk-invariant to seal sections).
 */
TEST(Crc32c, KnownVectorsAndChunkInvariance)
{
    // RFC 3720 appendix B.4 test vector.
    EXPECT_EQ(crc32c("123456789", 9), 0xe3069283u);
    const std::vector<uint8_t> zeros(32, 0);
    EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8a9136aau);

    std::vector<uint8_t> msg(1037);
    for (size_t i = 0; i < msg.size(); ++i)
        msg[i] = static_cast<uint8_t>((i * 131 + 17) & 0xff);
    const uint32_t whole = crc32c(msg.data(), msg.size());
    for (size_t cut : {0ul, 1ul, 7ul, 8ul, 9ul, 512ul, 1036ul}) {
        uint32_t c = crc32cExtend(0, msg.data(), cut);
        c = crc32cExtend(c, msg.data() + cut, msg.size() - cut);
        EXPECT_EQ(c, whole) << "split at " << cut;
    }
}

} // namespace
} // namespace st::model
