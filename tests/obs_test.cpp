/**
 * @file
 * Tests for the observability layer: the lock-free metrics registry
 * (counters, gauges, power-of-two histograms, snapshot aggregation)
 * and the scoped-span trace session's Chrome trace-event export.
 *
 * Thread-count sweeps use fresh std::threads rather than the shared
 * pool: a local test registry must outlive every thread that recorded
 * into it, and joining the recorders before the registry dies is the
 * contract under test.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace st::obs {
namespace {

TEST(MetricsCounter, AccumulatesSingleThread)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("events");
    c.add();
    c.add(7);
    c += 2;
    MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].name, "events");
    EXPECT_EQ(snap.counters[0].value, 10u);
}

TEST(MetricsCounter, SameNameSameHandle)
{
    MetricsRegistry reg;
    EXPECT_EQ(&reg.counter("x"), &reg.counter("x"));
    EXPECT_NE(&reg.counter("x"), &reg.counter("y"));
    EXPECT_EQ(&reg.gauge("g"), &reg.gauge("g"));
    EXPECT_EQ(&reg.histogram("h"), &reg.histogram("h"));
    EXPECT_EQ(reg.metricCount(), 4u);
}

TEST(MetricsCounter, KindMismatchThrows)
{
    MetricsRegistry reg;
    reg.counter("m");
    EXPECT_THROW(reg.gauge("m"), std::invalid_argument);
    EXPECT_THROW(reg.histogram("m"), std::invalid_argument);
    reg.histogram("h");
    EXPECT_THROW(reg.counter("h"), std::invalid_argument);
}

TEST(MetricsCounter, ExactUnderConcurrency)
{
    // TSan-relevant: concurrent add() from N threads plus a snapshot
    // reader must be race-free and lose no counts once joined.
    for (size_t nthreads : {1u, 2u, 4u, 8u}) {
        MetricsRegistry reg;
        Counter &c = reg.counter("hits");
        constexpr uint64_t kAdds = 20000;
        std::vector<std::thread> workers;
        for (size_t t = 0; t < nthreads; ++t) {
            workers.emplace_back([&c] {
                for (uint64_t i = 0; i < kAdds; ++i)
                    c.add();
            });
        }
        // Reader racing the writers: totals must only grow.
        uint64_t mid = reg.snapshot().counters[0].value;
        EXPECT_LE(mid, nthreads * kAdds);
        for (std::thread &w : workers)
            w.join();
        EXPECT_EQ(reg.snapshot().counters[0].value, nthreads * kAdds);
    }
}

TEST(MetricsGauge, SetAndSetMax)
{
    MetricsRegistry reg;
    Gauge &g = reg.gauge("depth");
    g.set(5);
    EXPECT_EQ(g.value(), 5u);
    g.setMax(3); // lower: no change
    EXPECT_EQ(g.value(), 5u);
    g.setMax(9);
    EXPECT_EQ(g.value(), 9u);
    g.set(2); // set overwrites unconditionally
    MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].value, 2u);
}

TEST(MetricsHistogram, PowerOfTwoBuckets)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(uint64_t{1} << 20), 21u);
    EXPECT_EQ(Histogram::bucketOf(~uint64_t{0}), 64u);

    MetricsRegistry reg;
    Histogram &h = reg.histogram("sizes");
    for (uint64_t v : {0u, 1u, 2u, 3u, 8u})
        h.record(v);
    MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    const MetricsSnapshot::Hist &hist = snap.histograms[0];
    EXPECT_EQ(hist.count, 5u);
    EXPECT_EQ(hist.sum, 14u);
    // Trailing zero buckets trimmed: last hit bucket is 4 (value 8).
    ASSERT_EQ(hist.buckets.size(), 5u);
    EXPECT_EQ(hist.buckets[0], 1u); // v = 0
    EXPECT_EQ(hist.buckets[1], 1u); // v = 1
    EXPECT_EQ(hist.buckets[2], 2u); // v = 2, 3
    EXPECT_EQ(hist.buckets[3], 0u);
    EXPECT_EQ(hist.buckets[4], 1u); // v = 8
}

TEST(MetricsHistogram, ExactUnderConcurrency)
{
    for (size_t nthreads : {2u, 4u, 8u}) {
        MetricsRegistry reg;
        Histogram &h = reg.histogram("volley");
        constexpr uint64_t kEach = 1000;
        std::vector<std::thread> workers;
        for (size_t t = 0; t < nthreads; ++t) {
            workers.emplace_back([&h] {
                for (uint64_t v = 0; v < kEach; ++v)
                    h.record(v);
            });
        }
        for (std::thread &w : workers)
            w.join();
        MetricsSnapshot snap = reg.snapshot();
        ASSERT_EQ(snap.histograms.size(), 1u);
        EXPECT_EQ(snap.histograms[0].count, nthreads * kEach);
        EXPECT_EQ(snap.histograms[0].sum,
                  nthreads * (kEach * (kEach - 1) / 2));
    }
}

TEST(MetricsSnapshot, DeterministicAndOrdered)
{
    MetricsRegistry reg;
    reg.counter("b").add(2);
    reg.counter("a").add(1);
    reg.gauge("g").set(3);
    reg.histogram("h").record(4);
    MetricsSnapshot one = reg.snapshot();
    MetricsSnapshot two = reg.snapshot();
    // Registration order, not name order.
    ASSERT_EQ(one.counters.size(), 2u);
    EXPECT_EQ(one.counters[0].name, "b");
    EXPECT_EQ(one.counters[1].name, "a");
    // Quiesced writers: snapshots are identical.
    EXPECT_EQ(one.toJson(), two.toJson());
}

TEST(MetricsSnapshot, JsonShape)
{
    MetricsRegistry reg;
    reg.counter("runs").add(3);
    reg.gauge("depth").set(7);
    reg.histogram("ring").record(2);
    std::string json = reg.snapshot().toJson();
    // Counters and gauges live in their own sub-objects, not flat
    // next to "histograms".
    EXPECT_NE(json.find("\"counters\": {\"runs\": 3}"),
              std::string::npos);
    EXPECT_NE(json.find("\"gauges\": {\"depth\": 7}"),
              std::string::npos);
    EXPECT_NE(json.find("\"histograms\": {\"ring\""), std::string::npos);
    EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(MetricsSnapshot, ReservedNamesCannotShadowStructuralKeys)
{
    // A metric named like a structural key serializes inside its own
    // sub-object, so the top-level object never has duplicate keys.
    MetricsRegistry reg;
    reg.counter("histograms").add(1);
    reg.gauge("counters").set(2);
    reg.histogram("gauges").record(3);
    std::string json = reg.snapshot().toJson();
    EXPECT_NE(json.find("\"counters\": {\"histograms\": 1}"),
              std::string::npos);
    EXPECT_NE(json.find("\"gauges\": {\"counters\": 2}"),
              std::string::npos);
    EXPECT_NE(json.find("\"histograms\": {\"gauges\""),
              std::string::npos);
}

TEST(MetricsRegistry, ConcurrentRegistrationIsRaceFree)
{
    // Regression for the handle-resolution race: counter() must
    // resolve its object pointer while the registry mutex is held,
    // because a concurrent registration reallocates the metric table
    // and mutates the handle deques. This mirrors pool startup, where
    // every worker registers its own "pool.workerN.busy_ns" counter
    // at the same moment.
    for (size_t nthreads : {2u, 4u, 8u}) {
        MetricsRegistry reg;
        constexpr uint64_t kAdds = 1000;
        std::vector<std::thread> workers;
        for (size_t t = 0; t < nthreads; ++t) {
            workers.emplace_back([&reg, t] {
                Counter &own = reg.counter(
                    "worker" + std::to_string(t) + ".busy");
                Counter &shared = reg.counter("shared.hits");
                for (uint64_t i = 0; i < kAdds; ++i) {
                    own.add();
                    shared.add();
                }
            });
        }
        for (std::thread &w : workers)
            w.join();
        MetricsSnapshot snap = reg.snapshot();
        ASSERT_EQ(snap.counters.size(), nthreads + 1);
        uint64_t shared_total = 0, own_total = 0;
        for (const auto &c : snap.counters) {
            if (c.name == "shared.hits")
                shared_total = c.value;
            else
                own_total += c.value;
        }
        EXPECT_EQ(shared_total, nthreads * kAdds);
        EXPECT_EQ(own_total, nthreads * kAdds);
    }
}

TEST(MetricsRegistry, SlotBudgetExhaustionThrows)
{
    MetricsRegistry reg;
    // Histograms burn 66 slots each; 1024 / 66 = 15 fit.
    for (int i = 0; i < 15; ++i)
        reg.histogram("h" + std::to_string(i));
    EXPECT_THROW(reg.histogram("one-too-many"), std::length_error);
    // The budget error must not corrupt the registry: existing
    // metrics still work and re-registration still resolves.
    reg.histogram("h0").record(1);
    EXPECT_EQ(reg.snapshot().histograms[0].count, 1u);
}

#if ST_OBS_ENABLED
TEST(ObsMacros, RecordIntoGlobalRegistry)
{
    ST_OBS_ADD("test.obs.macro_counter", 2);
    ST_OBS_HIST("test.obs.macro_hist", 5);
    ST_OBS_GAUGE_MAX("test.obs.macro_gauge", 11);
    MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
    uint64_t counter = 0, gauge = 0, hist_count = 0;
    for (const auto &c : snap.counters) {
        if (c.name == "test.obs.macro_counter")
            counter = c.value;
    }
    for (const auto &g : snap.gauges) {
        if (g.name == "test.obs.macro_gauge")
            gauge = g.value;
    }
    for (const auto &h : snap.histograms) {
        if (h.name == "test.obs.macro_hist")
            hist_count = h.count;
    }
    EXPECT_GE(counter, 2u);
    EXPECT_GE(gauge, 11u);
    EXPECT_GE(hist_count, 1u);
}
#endif

/** Structural JSON scan: brace/bracket balance outside strings. */
bool
balancedJson(const std::string &s)
{
    int depth = 0;
    bool in_string = false;
    for (size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_string;
}

/** Extract the integer following @p key in one serialized event. */
int64_t
fieldOf(const std::string &line, const std::string &key)
{
    size_t at = line.find(key);
    EXPECT_NE(at, std::string::npos) << key << " in " << line;
    if (at == std::string::npos)
        return -1;
    at += key.size();
    int64_t v = 0;
    while (at < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[at]))) {
        v = v * 10 + (line[at] - '0');
        ++at;
    }
    return v;
}

TEST(TraceSession, GoldenChromeTraceExport)
{
    TraceSession &session = TraceSession::instance();
    const bool was_enabled = session.enabled();
    session.clear();
    session.enable();

    // Spans on the main thread and on two workers (distinct tracks).
    for (int i = 0; i < 8; ++i) {
        ScopedSpan span("unit.main");
    }
    std::vector<std::thread> workers;
    for (int t = 0; t < 2; ++t) {
        workers.emplace_back([] {
            for (int i = 0; i < 4; ++i) {
                ScopedSpan span("unit.worker");
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    session.disable();
    EXPECT_GE(session.eventCount(), 16u);
    EXPECT_EQ(session.droppedEvents(), 0u);

    std::ostringstream out;
    session.writeJson(out);
    const std::string json = out.str();
    EXPECT_TRUE(balancedJson(json));
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"unit.main\""), std::string::npos);
    EXPECT_NE(json.find("\"unit.worker\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);

    // Per-tid monotone "ts" and positive "dur" on every "X" event.
    std::map<int64_t, int64_t> last_ts;
    std::map<int64_t, size_t> per_tid;
    std::istringstream lines(json);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.find("\"ph\": \"X\"") == std::string::npos)
            continue;
        int64_t tid = fieldOf(line, "\"tid\": ");
        int64_t ts = fieldOf(line, "\"ts\": ");
        int64_t dur = fieldOf(line, "\"dur\": ");
        EXPECT_GE(dur, 1);
        auto prev = last_ts.find(tid);
        if (prev != last_ts.end()) {
            EXPECT_GE(ts, prev->second)
                << "ts not monotone on tid " << tid;
        }
        last_ts[tid] = ts;
        ++per_tid[tid];
    }
    // Main track + two worker tracks (other tests may add more).
    EXPECT_GE(per_tid.size(), 3u);

    session.clear();
    if (was_enabled)
        session.enable();
}

TEST(TraceSession, RingDropsOldestPastCapacity)
{
    TraceSession &session = TraceSession::instance();
    const bool was_enabled = session.enabled();
    session.clear();
    session.enable();
    const size_t extra = 10;
    std::thread filler([&] {
        for (size_t i = 0; i < TraceSession::kRingCap + extra; ++i) {
            ScopedSpan span("unit.fill");
        }
    });
    filler.join();
    session.disable();
    EXPECT_EQ(session.droppedEvents(), extra);
    session.clear();
    if (was_enabled)
        session.enable();
}

TEST(TraceSession, DisabledSpansCostNothing)
{
    TraceSession &session = TraceSession::instance();
    const bool was_enabled = session.enabled();
    session.disable();
    session.clear();
    {
        ScopedSpan span("unit.off");
    }
    EXPECT_EQ(session.eventCount(), 0u);
    if (was_enabled)
        session.enable();
}

} // namespace
} // namespace st::obs
