/**
 * @file
 * Hostile-input suite for the STMF container (model/stmf.hpp,
 * model/serialize.hpp).
 *
 * The reader's contract on malformed input is absolute: every
 * rejection is a contextual st::Status (code + message + byte offset,
 * and the section name once the table is parsed) — never a crash,
 * never a partial decode into the out-parameter. This suite earns
 * that claim the hard way: a truncation sweep over EVERY prefix
 * length of a valid container, single-bit flips across the file,
 * header/table field tampering with recomputed checksums (so the
 * tamper — not the checksum — is what the validator must catch), and
 * a seeded mutation fuzz loop. The CI sanitizer jobs run all of it
 * under ASan/UBSan.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "model/crc32c.hpp"
#include "model/serialize.hpp"
#include "model/stmf.hpp"
#include "tnn/tnn_network.hpp"

namespace st::model {
namespace {

constexpr size_t kHeaderBytes = 64;
constexpr size_t kEntryBytes = 32;
constexpr size_t kOffVersion = 8;
constexpr size_t kOffSectionCount = 12;
constexpr size_t kOffFileSize = 16;
constexpr size_t kOffFileCrc = 24;
constexpr size_t kOffHeaderCrc = 28;

void
storeU32(std::vector<uint8_t> &b, size_t off, uint32_t v)
{
    std::memcpy(b.data() + off, &v, sizeof(v));
}

void
storeU64(std::vector<uint8_t> &b, size_t off, uint64_t v)
{
    std::memcpy(b.data() + off, &v, sizeof(v));
}

/**
 * Recompute the file CRC and header CRC after deliberate tampering,
 * so the *semantic* validator — not the checksum — has to reject the
 * image. This is exactly what a capable attacker (or a buggy writer)
 * would produce.
 */
void
fixCrcs(std::vector<uint8_t> &b)
{
    storeU32(b, kOffFileCrc,
             crc32c(b.data() + kHeaderBytes,
                    b.size() - kHeaderBytes));
    storeU32(b, kOffHeaderCrc, 0);
    storeU32(b, kOffHeaderCrc, crc32c(b.data(), kHeaderBytes));
}

/** A small valid multi-section container (meta + plan + grl). */
std::vector<uint8_t>
validImage()
{
    Network net(4);
    std::vector<NodeId> ins;
    for (size_t i = 0; i < 4; ++i)
        ins.push_back(net.input(i));
    net.markOutput(net.lt(net.min(ins), net.inc(net.max(ins), 2)));

    ModelInfo info;
    info.kind = "plan";
    info.id = "hostile";
    info.version = 1;
    info.inputWidth = 4;

    StmfBuilder builder;
    builder.addSection(SectionType::Meta, encodeMeta(info));
    builder.addSection(SectionType::Plan, encodePlan(net));
    return builder.serialize();
}

Status
parseImage(std::vector<uint8_t> bytes)
{
    StmfFile file;
    return StmfFile::parse(std::move(bytes), file);
}

/** Parse + decode end to end; any stage may reject, none may crash. */
void
parseAndDecode(std::vector<uint8_t> bytes)
{
    StmfFile file;
    if (!StmfFile::parse(std::move(bytes), file).isOk())
        return;
    ModelInfo info;
    if (!decodeMeta(file, info).isOk())
        return;
    if (file.hasSection(SectionType::Plan)) {
        PlanModel plan;
        (void)decodePlan(file, plan);
    }
    if (file.hasSection(SectionType::Tnn)) {
        TnnNetwork tnn;
        (void)decodeTnn(file, tnn);
    }
    if (file.hasSection(SectionType::Grl)) {
        grl::Circuit circuit(0);
        (void)decodeGrl(file, circuit);
    }
    if (file.hasSection(SectionType::Lsm)) {
        LsmModelConfig lsm;
        (void)decodeLsm(file, lsm);
    }
}

uint64_t
mix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

TEST(StmfNegative, TruncationAtEveryLengthRejectsWithContext)
{
    const std::vector<uint8_t> image = validImage();
    ASSERT_TRUE(parseImage(image).isOk());
    for (size_t len = 0; len < image.size(); ++len) {
        const std::vector<uint8_t> prefix(image.begin(),
                                          image.begin() + len);
        const Status status = parseImage(prefix);
        ASSERT_FALSE(status.isOk()) << "length " << len;
        EXPECT_NE(status.context().find("offset"), std::string::npos)
            << "length " << len << ": " << status.str();
    }
}

TEST(StmfNegative, EverySingleBitFlipIsDetected)
{
    const std::vector<uint8_t> image = validImage();
    // CRC32C detects all 1-bit errors, the header checksum covers the
    // header, the file checksum covers the rest: no flip may pass.
    for (size_t byte = 0; byte < image.size(); ++byte) {
        std::vector<uint8_t> mutated = image;
        mutated[byte] ^= uint8_t{1} << (byte % 8);
        EXPECT_FALSE(parseImage(std::move(mutated)).isOk())
            << "flip at byte " << byte;
    }
}

TEST(StmfNegative, BadMagicRejected)
{
    std::vector<uint8_t> image = validImage();
    image[0] = 'X';
    const Status status = parseImage(image);
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("magic"), std::string::npos)
        << status.str();
}

TEST(StmfNegative, FutureFormatVersionRejectedExplicitly)
{
    std::vector<uint8_t> image = validImage();
    storeU32(image, kOffVersion, 999);
    fixCrcs(image); // a well-formed file from a future writer
    const Status status = parseImage(image);
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::InvalidArgument);
    EXPECT_NE(status.message().find("version"), std::string::npos)
        << status.str();
}

TEST(StmfNegative, HeaderSizeLieRejected)
{
    std::vector<uint8_t> image = validImage();
    storeU64(image, kOffFileSize, image.size() + 8);
    fixCrcs(image);
    EXPECT_FALSE(parseImage(image).isOk());
}

TEST(StmfNegative, SectionTablePastEndRejected)
{
    std::vector<uint8_t> image = validImage();
    storeU32(image, kOffSectionCount, 1u << 20);
    fixCrcs(image);
    const Status status = parseImage(image);
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::OutOfRange);
}

TEST(StmfNegative, MisalignedSectionOffsetRejected)
{
    std::vector<uint8_t> image = validImage();
    const size_t entry = kHeaderBytes; // first table entry
    uint64_t off = 0;
    std::memcpy(&off, image.data() + entry + 8, sizeof(off));
    storeU64(image, entry + 8, off + 1);
    fixCrcs(image);
    const Status status = parseImage(image);
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("misaligned"), std::string::npos)
        << status.str();
    EXPECT_NE(status.context().find("section"), std::string::npos)
        << status.str();
}

TEST(StmfNegative, SectionBeyondEofRejected)
{
    std::vector<uint8_t> image = validImage();
    const size_t entry = kHeaderBytes;
    storeU64(image, entry + 16, image.size()); // length > remaining
    fixCrcs(image);
    const Status status = parseImage(image);
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::OutOfRange);
}

TEST(StmfNegative, SectionOverHeaderRejected)
{
    std::vector<uint8_t> image = validImage();
    const size_t entry = kHeaderBytes;
    storeU64(image, entry + 8, 0); // payload claims the header bytes
    fixCrcs(image);
    const Status status = parseImage(image);
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("overlap"), std::string::npos)
        << status.str();
}

TEST(StmfNegative, OverlappingSectionsRejected)
{
    std::vector<uint8_t> image = validImage();
    // Point section 1 into section 0's extent (keeping its own CRC
    // consistent with the bytes it now claims is impossible without
    // also fixing the per-section CRC — fix it too, so the overlap
    // scan itself must fire).
    const size_t e0 = kHeaderBytes;
    const size_t e1 = kHeaderBytes + kEntryBytes;
    uint64_t off0 = 0;
    uint64_t len1 = 0;
    std::memcpy(&off0, image.data() + e0 + 8, sizeof(off0));
    std::memcpy(&len1, image.data() + e1 + 16, sizeof(len1));
    storeU64(image, e1 + 8, off0);
    if (len1 > image.size() - off0)
        storeU64(image, e1 + 16, image.size() - off0);
    uint64_t len1b = 0;
    std::memcpy(&len1b, image.data() + e1 + 16, sizeof(len1b));
    storeU32(image, e1 + 24,
             crc32c(image.data() + off0, len1b));
    fixCrcs(image);
    const Status status = parseImage(image);
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("overlap"), std::string::npos)
        << status.str();
}

TEST(StmfNegative, SectionCrcMismatchNamesTheSection)
{
    std::vector<uint8_t> image = validImage();
    const size_t entry = kHeaderBytes + kEntryBytes; // plan section
    uint64_t off = 0;
    std::memcpy(&off, image.data() + entry + 8, sizeof(off));
    image[off] ^= 0xff;
    fixCrcs(image); // file CRC now matches; section CRC must not
    const Status status = parseImage(image);
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::DataLoss);
    EXPECT_NE(status.context().find("plan"), std::string::npos)
        << status.str();
}

TEST(PlanNegative, TopologicalViolationRejected)
{
    // Rewrite a plan operand to reference a *later* slot: the decoder
    // must reject it — the executors assume operands are resolved.
    Network net(2);
    net.markOutput(net.min(net.input(0), net.input(1)));
    StmfBuilder builder;
    ModelInfo info;
    info.kind = "plan";
    info.id = "topo";
    info.version = 1;
    info.inputWidth = 2;
    builder.addSection(SectionType::Meta, encodeMeta(info));

    std::vector<uint8_t> plan = encodePlan(net);
    // Layout: 7 u64 counts, op[numInstrs] (u8, padded), extra[...],
    // argBeg[...], argSlot[numEdges]... Corrupt every u32 in the body
    // one at a time to a huge slot index; at least one lands on
    // argSlot, and every variant must be rejected or decode cleanly
    // (when it misses a validated field) — never crash.
    size_t rejected = 0;
    for (size_t off = 7 * 8; off + 4 <= plan.size(); off += 4) {
        std::vector<uint8_t> mutated = plan;
        storeU32(mutated, off, 0x7fffffff);
        StmfBuilder b2;
        b2.addSection(SectionType::Meta, encodeMeta(info));
        b2.addSection(SectionType::Plan, mutated);
        StmfFile file;
        ASSERT_TRUE(
            StmfFile::parse(b2.serialize(), file).isOk());
        PlanModel model;
        if (!decodePlan(file, model).isOk())
            ++rejected;
    }
    EXPECT_GT(rejected, 0u);
}

TEST(TnnNegative, NonFiniteWeightRejected)
{
    TnnNetwork net;
    ColumnParams p;
    p.numInputs = 3;
    p.numNeurons = 2;
    net.addLayer(p);
    std::vector<uint8_t> payload = encodeTnn(net);

    // The weight matrix is the trailing 6 doubles; inject a NaN.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::memcpy(payload.data() + payload.size() - sizeof(double),
                &nan, sizeof(nan));

    ModelInfo info;
    info.kind = "tnn";
    info.id = "nan";
    info.version = 1;
    info.inputWidth = 3;
    StmfBuilder builder;
    builder.addSection(SectionType::Meta, encodeMeta(info));
    builder.addSection(SectionType::Tnn, payload);
    StmfFile file;
    ASSERT_TRUE(StmfFile::parse(builder.serialize(), file).isOk());
    TnnNetwork out;
    const Status status = decodeTnn(file, out);
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.context().find("tnn"), std::string::npos)
        << status.str();
}

TEST(MetaNegative, MissingSectionAndAbsurdWidthRejected)
{
    StmfBuilder builder;
    builder.addSection(SectionType::Lsm,
                       encodeLsm(LsmModelConfig{}));
    StmfFile file;
    ASSERT_TRUE(StmfFile::parse(builder.serialize(), file).isOk());
    ModelInfo info;
    EXPECT_FALSE(decodeMeta(file, info).isOk()); // no META section

    ModelInfo absurd;
    absurd.kind = "tnn";
    absurd.id = "wide";
    absurd.version = 1;
    absurd.inputWidth = uint64_t{1} << 40;
    StmfBuilder b2;
    b2.addSection(SectionType::Meta, encodeMeta(absurd));
    StmfFile f2;
    ASSERT_TRUE(StmfFile::parse(b2.serialize(), f2).isOk());
    ModelInfo out;
    EXPECT_FALSE(decodeMeta(f2, out).isOk());
}

/**
 * Seeded mutation fuzz: random byte writes, truncations and block
 * swaps over a valid image, parsed and decoded end to end. The
 * assertion is survival with clean rejection — the sanitizer jobs
 * (ASan/UBSan via CMAKE_CXX_FLAGS, and the chaos CI job) turn any
 * out-of-bounds read into a hard failure.
 */
TEST(StmfFuzz, SeededMutationsNeverCrashTheDecoder)
{
    const std::vector<uint8_t> image = validImage();
    uint64_t rng = 0x57f7u;
    for (size_t iter = 0; iter < 500; ++iter) {
        std::vector<uint8_t> mutated = image;
        const size_t nmut = 1 + mix64(rng) % 8;
        for (size_t m = 0; m < nmut; ++m) {
            switch (mix64(rng) % 4) {
            case 0: // random byte write
                mutated[mix64(rng) % mutated.size()] =
                    static_cast<uint8_t>(mix64(rng));
                break;
            case 1: // truncate
                mutated.resize(mix64(rng) % (mutated.size() + 1));
                break;
            case 2: { // swap two 8-byte blocks
                if (mutated.size() < 16)
                    break;
                const size_t a =
                    (mix64(rng) % (mutated.size() - 8)) & ~size_t{7};
                const size_t b =
                    (mix64(rng) % (mutated.size() - 8)) & ~size_t{7};
                for (size_t k = 0; k < 8; ++k)
                    std::swap(mutated[a + k], mutated[b + k]);
                break;
            }
            default: // bit flip
                if (!mutated.empty())
                    mutated[mix64(rng) % mutated.size()] ^=
                        uint8_t{1} << (mix64(rng) % 8);
                break;
            }
            if (mutated.empty())
                break;
        }
        parseAndDecode(std::move(mutated));
    }
    SUCCEED();
}

/** The same fuzz loop with CRCs *repaired* after each mutation, so
 *  the mutations reach the semantic validators instead of being
 *  swallowed by the checksum wall. */
TEST(StmfFuzz, CrcRepairedMutationsNeverCrashTheDecoder)
{
    const std::vector<uint8_t> image = validImage();
    uint64_t rng = 0xdecafu;
    for (size_t iter = 0; iter < 500; ++iter) {
        std::vector<uint8_t> mutated = image;
        const size_t nmut = 1 + mix64(rng) % 4;
        for (size_t m = 0; m < nmut; ++m)
            mutated[kHeaderBytes +
                    mix64(rng) % (mutated.size() - kHeaderBytes)] =
                static_cast<uint8_t>(mix64(rng));
        // Re-seal section CRCs against whatever bytes their (possibly
        // tampered) table entries now claim, when still in bounds.
        for (size_t entry = kHeaderBytes;
             entry + kEntryBytes <= mutated.size() &&
             entry < kHeaderBytes + 4 * kEntryBytes;
             entry += kEntryBytes) {
            uint64_t off = 0;
            uint64_t len = 0;
            std::memcpy(&off, mutated.data() + entry + 8,
                        sizeof(off));
            std::memcpy(&len, mutated.data() + entry + 16,
                        sizeof(len));
            if (off <= mutated.size() &&
                len <= mutated.size() - off)
                storeU32(mutated, entry + 24,
                         crc32c(mutated.data() + off, len));
        }
        fixCrcs(mutated);
        parseAndDecode(std::move(mutated));
    }
    SUCCEED();
}

} // namespace
} // namespace st::model
