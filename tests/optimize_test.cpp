/**
 * @file
 * Tests for the network optimization passes: CSE merges structurally
 * identical blocks (but never config nodes), DCE drops unreachable
 * blocks, and both provably preserve the computed function on the
 * paper's constructions.
 */

#include <gtest/gtest.h>

#include "core/optimize.hpp"
#include "core/properties.hpp"
#include "core/synthesis.hpp"
#include "neuron/sorting.hpp"
#include "neuron/srm0_network.hpp"
#include "test_helpers.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

TEST(Cse, MergesIdenticalIncs)
{
    Network net(1);
    NodeId a = net.inc(net.input(0), 3);
    NodeId b = net.inc(net.input(0), 3);
    NodeId c = net.inc(net.input(0), 4); // different constant: kept
    net.markOutput(net.min(a, b));
    net.markOutput(c);
    Network opt = shareCommonSubexpressions(net);
    EXPECT_EQ(opt.countOf(Op::Inc), 2u);
    // min(a, a) collapses to a unary identity.
    EXPECT_EQ(opt.evaluate(V({5})), net.evaluate(V({5})));
}

TEST(Cse, CanonicalizesCommutativeOperands)
{
    Network net(2);
    NodeId m1 = net.min(net.input(0), net.input(1));
    NodeId m2 = net.min(net.input(1), net.input(0)); // same value
    net.markOutput(net.max(m1, m2));
    Network opt = shareCommonSubexpressions(net);
    EXPECT_EQ(opt.countOf(Op::Min), 1u);
    EXPECT_EQ(opt.evaluate(V({3, 7})), net.evaluate(V({3, 7})));
}

TEST(Cse, LtIsOrderSensitive)
{
    Network net(2);
    net.markOutput(net.lt(net.input(0), net.input(1)));
    net.markOutput(net.lt(net.input(1), net.input(0)));
    Network opt = shareCommonSubexpressions(net);
    EXPECT_EQ(opt.countOf(Op::Lt), 2u); // NOT merged
    EXPECT_EQ(opt.evaluate(V({2, 9})), net.evaluate(V({2, 9})));
}

TEST(Cse, NeverMergesConfigNodes)
{
    Network net(1);
    NodeId mu1 = net.config(INF);
    NodeId mu2 = net.config(INF); // same value, but independent state
    net.markOutput(net.lt(net.input(0), mu1));
    net.markOutput(net.lt(net.input(0), mu2));
    Network opt = shareCommonSubexpressions(net);
    EXPECT_EQ(opt.countOf(Op::Config), 2u);
    // They must remain independently programmable.
    NodeId cfg2 = opt.nodes()[opt.outputs()[1]].fanin[1];
    opt.setConfig(cfg2, 0_t);
    auto out = opt.evaluate(V({4}));
    EXPECT_EQ(out[0], 4_t);
    EXPECT_EQ(out[1], INF);
}

TEST(Cse, DedupesIdempotentOperandLists)
{
    Network net(1);
    NodeId a = net.inc(net.input(0), 1);
    std::vector<NodeId> ops{a, a, a};
    net.markOutput(net.min(std::span<const NodeId>(ops)));
    Network opt = shareCommonSubexpressions(net);
    EXPECT_EQ(opt.evaluate(V({2}))[0], 3_t);
}

TEST(Dce, DropsUnreachableBlocks)
{
    Network net(2);
    NodeId used = net.min(net.input(0), net.input(1));
    net.inc(net.input(0), 5); // dead
    net.max(net.input(0), net.input(1)); // dead
    net.markOutput(used);
    Network opt = eliminateDeadNodes(net);
    EXPECT_EQ(opt.size(), 3u); // 2 inputs + 1 min
    EXPECT_EQ(opt.evaluate(V({4, 6})), net.evaluate(V({4, 6})));
}

TEST(Dce, KeepsAllInputs)
{
    Network net(3);
    net.markOutput(net.input(2)); // inputs 0 and 1 unused
    Network opt = eliminateDeadNodes(net);
    EXPECT_EQ(opt.numInputs(), 3u);
    EXPECT_EQ(opt.evaluate(V({1, 2, 3}))[0], 3_t);
}

TEST(Dce, KeepsTransitiveDependencies)
{
    Network net(1);
    NodeId a = net.inc(net.input(0), 1);
    NodeId b = net.inc(a, 1);
    NodeId c = net.inc(b, 1);
    net.inc(a, 9); // dead branch off a live node
    net.markOutput(c);
    Network opt = eliminateDeadNodes(net);
    EXPECT_EQ(opt.countOf(Op::Inc), 3u);
    EXPECT_EQ(opt.evaluate(V({0}))[0], 3_t);
}

TEST(Optimize, ShrinksMintermNetworks)
{
    // Minterm synthesis duplicates inc taps across rows; CSE folds them.
    FunctionTable t(3);
    t.addRow(V({0, 1, 2}), 3_t);
    t.addRow(V({0, 1, kNo}), 2_t);
    t.addRow(V({0, 2, 2}), 2_t);
    SynthesisOptions opt_flags;
    opt_flags.skipZeroIncs = false; // leave redundancy on the table
    Network raw = synthesizeMinterms(t, opt_flags);
    Network opt = optimize(raw);
    EXPECT_LT(opt.size(), raw.size());
    testing::forAllVolleys(3, 5, [&](const std::vector<Time> &u) {
        EXPECT_EQ(opt.evaluate(u)[0], raw.evaluate(u)[0])
            << "at " << volleyStr(u);
    });
}

TEST(Optimize, ShrinksSrm0Networks)
{
    ResponseFunction r = ResponseFunction::biexponential(3, 4.0, 1.0);
    Network raw = buildSrm0Network({r, r, r}, 3);
    Network opt = optimize(raw);
    EXPECT_LT(opt.size(), raw.size());
    Rng rng(17);
    for (int s = 0; s < 200; ++s) {
        auto x = testing::randomVolley(rng, 3, 10);
        EXPECT_EQ(opt.evaluate(x), raw.evaluate(x));
    }
}

TEST(FactorDelays, SharesChainPrefixes)
{
    // Taps +1, +2, +5 from one source: 8 naive stages, 5 factored.
    Network net(1);
    NodeId a = net.inc(net.input(0), 1);
    NodeId b = net.inc(net.input(0), 2);
    NodeId c = net.inc(net.input(0), 5);
    net.markOutput(a);
    net.markOutput(b);
    net.markOutput(c);
    EXPECT_EQ(net.totalIncStages(), 8u);
    Network factored = factorDelays(net);
    EXPECT_EQ(factored.totalIncStages(), 5u);
    EXPECT_EQ(factored.evaluate(V({3})), V({4, 5, 8}));
    EXPECT_EQ(factored.evaluate(V({kNo})), V({kNo, kNo, kNo}));
}

TEST(FactorDelays, MergesDuplicateTaps)
{
    Network net(1);
    net.markOutput(net.inc(net.input(0), 3));
    net.markOutput(net.inc(net.input(0), 3));
    Network factored = factorDelays(net);
    EXPECT_EQ(factored.totalIncStages(), 3u);
    EXPECT_EQ(factored.evaluate(V({1})), V({4, 4}));
}

TEST(FactorDelays, IndependentSourcesKeepIndependentChains)
{
    Network net(2);
    net.markOutput(net.inc(net.input(0), 4));
    net.markOutput(net.inc(net.input(1), 4));
    Network factored = factorDelays(net);
    EXPECT_EQ(factored.totalIncStages(), 8u); // no cross-source sharing
    EXPECT_EQ(factored.evaluate(V({1, 2})), V({5, 6}));
}

TEST(FactorDelays, ChainedIncsStayCorrect)
{
    // incs whose sources are themselves incs.
    Network net(1);
    NodeId a = net.inc(net.input(0), 2);
    NodeId b = net.inc(a, 3);
    net.markOutput(net.inc(a, 1));
    net.markOutput(b);
    Network factored = factorDelays(net);
    EXPECT_EQ(factored.evaluate(V({0})), V({3, 5}));
}

TEST(FactorDelays, ShrinksSrm0DelayLines)
{
    // The Fig. 11 fanout is the motivating case: one source, many taps.
    ResponseFunction r = ResponseFunction::biexponential(4, 4.0, 1.0);
    Network raw = buildSrm0Network({r, r, r}, 4);
    Network factored = factorDelays(raw);
    EXPECT_LT(factored.totalIncStages(), raw.totalIncStages());
    // The floor: one chain of max-delay length per input.
    Rng rng(21);
    for (int s = 0; s < 150; ++s) {
        auto x = testing::randomVolley(rng, 3, 10);
        EXPECT_EQ(factored.evaluate(x), raw.evaluate(x))
            << "at " << volleyStr(x);
    }
}

TEST(FactorDelays, PreservesRandomNetworkSemantics)
{
    Rng rng(2026);
    for (int trial = 0; trial < 25; ++trial) {
        Network net = testing::randomNetwork(rng, 3, 16);
        Network factored = factorDelays(net);
        EXPECT_LE(factored.totalIncStages(), net.totalIncStages());
        for (int s = 0; s < 40; ++s) {
            auto x = testing::randomVolley(rng, 3, 9);
            EXPECT_EQ(factored.evaluate(x), net.evaluate(x))
                << "at " << volleyStr(x);
        }
    }
}

TEST(Optimize, IncludesDelayFactoring)
{
    ResponseFunction r = ResponseFunction::biexponential(3, 4.0, 1.0);
    Network raw = buildSrm0Network({r, r}, 3);
    Network opt = optimize(raw);
    EXPECT_LT(opt.totalIncStages(), raw.totalIncStages());
}

TEST(Optimize, PreservesRandomNetworkSemantics)
{
    Rng rng(2025);
    for (int trial = 0; trial < 30; ++trial) {
        Network net = testing::randomNetwork(rng, 3, 18);
        Network opt = optimize(net);
        EXPECT_LE(opt.size(), net.size());
        for (int s = 0; s < 40; ++s) {
            auto x = testing::randomVolley(rng, 3, 9);
            EXPECT_EQ(opt.evaluate(x), net.evaluate(x))
                << "at " << volleyStr(x);
        }
    }
}

TEST(Optimize, PreservesOutputArityAndOrder)
{
    Network net(2);
    NodeId a = net.inc(net.input(0), 1);
    NodeId b = net.inc(net.input(0), 1); // dup of a
    net.markOutput(b);
    net.markOutput(a);
    net.markOutput(net.input(1));
    Network opt = optimize(net);
    ASSERT_EQ(opt.outputs().size(), 3u);
    auto out = opt.evaluate(V({4, 9}));
    EXPECT_EQ(out, V({5, 5, 9}));
}

TEST(Optimize, PreservesLabelsOnSurvivors)
{
    Network net(1);
    NodeId a = net.inc(net.input(0), 2);
    net.setLabel(a, "tap");
    net.markOutput(a);
    Network opt = optimize(net);
    EXPECT_EQ(opt.label(opt.outputs()[0]), "tap");
}

} // namespace
} // namespace st
