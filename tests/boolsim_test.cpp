/**
 * @file
 * Tests for the binary-baseline Boolean simulator (paper Sec. V.C's
 * "indirect implementation"): gate evaluation, the ripple min and adder
 * datapaths, and switching-activity accounting.
 */

#include <gtest/gtest.h>

#include "grl/boolsim.hpp"
#include "util/rng.hpp"

namespace st::grl {
namespace {

TEST(BoolCircuit, GateEvaluation)
{
    BoolCircuit c(2);
    c.markOutput(c.notGate(c.input(0)));
    c.markOutput(c.andGate(c.input(0), c.input(1)));
    c.markOutput(c.orGate(c.input(0), c.input(1)));
    c.markOutput(c.xorGate(c.input(0), c.input(1)));
    c.markOutput(c.constGate(true));
    c.markOutput(c.constGate(false));

    std::vector<uint8_t> in{1, 0};
    auto out = c.evaluate(in);
    EXPECT_EQ(out, (std::vector<uint8_t>{0, 0, 1, 1, 1, 0}));
}

TEST(BoolCircuit, ValidatesOperandsAndArity)
{
    BoolCircuit c(1);
    EXPECT_THROW(c.notGate(9), std::out_of_range);
    EXPECT_THROW(c.andGate(0, 9), std::out_of_range);
    EXPECT_THROW(c.markOutput(9), std::out_of_range);
    EXPECT_THROW(c.input(1), std::out_of_range);
    std::vector<uint8_t> wrong{1, 0};
    EXPECT_THROW(c.evaluate(wrong), std::invalid_argument);
}

TEST(BoolBits, PackUnpackRoundTrip)
{
    for (uint64_t v : {0ULL, 1ULL, 5ULL, 255ULL, 1000ULL}) {
        auto bits = toBits(v, 12);
        EXPECT_EQ(fromBits(bits), v);
    }
    EXPECT_EQ(toBits(5, 4), (std::vector<uint8_t>{1, 0, 1, 0}));
}

TEST(BinaryMin, ComputesMinExhaustively4Bit)
{
    BoolCircuit c = buildBinaryMin(4);
    for (uint64_t a = 0; a < 16; ++a) {
        for (uint64_t b = 0; b < 16; ++b) {
            auto bits = toBits(a, 4);
            auto bbits = toBits(b, 4);
            bits.insert(bits.end(), bbits.begin(), bbits.end());
            EXPECT_EQ(fromBits(c.evaluate(bits)), std::min(a, b))
                << a << " vs " << b;
        }
    }
}

TEST(BinaryMin, WiderWidths)
{
    BoolCircuit c = buildBinaryMin(8);
    Rng rng(1);
    for (int s = 0; s < 200; ++s) {
        uint64_t a = rng.below(256), b = rng.below(256);
        auto bits = toBits(a, 8);
        auto bbits = toBits(b, 8);
        bits.insert(bits.end(), bbits.begin(), bbits.end());
        EXPECT_EQ(fromBits(c.evaluate(bits)), std::min(a, b));
    }
}

TEST(BinaryAdder, ComputesSumsExhaustively4Bit)
{
    BoolCircuit c = buildBinaryAdder(4);
    for (uint64_t a = 0; a < 16; ++a) {
        for (uint64_t b = 0; b < 16; ++b) {
            auto bits = toBits(a, 4);
            auto bbits = toBits(b, 4);
            bits.insert(bits.end(), bbits.begin(), bbits.end());
            // 5 output bits: 4 sum + carry.
            EXPECT_EQ(fromBits(c.evaluate(bits)), a + b);
        }
    }
}

TEST(BoolActivity, CountsTogglesBetweenVectors)
{
    BoolCircuit c(1);
    c.markOutput(c.notGate(c.input(0)));
    BoolActivity act(c);
    std::vector<uint8_t> zero{0}, one{1};
    act.apply(zero); // first vector: no toggles counted
    EXPECT_EQ(act.gateToggles(), 0u);
    act.apply(one);
    EXPECT_EQ(act.gateToggles(), 1u);
    EXPECT_EQ(act.inputToggles(), 1u);
    act.apply(one); // no change, no toggles
    EXPECT_EQ(act.gateToggles(), 1u);
    EXPECT_EQ(act.evaluations(), 3u);
}

TEST(BoolActivity, ReturnsOutputs)
{
    BoolCircuit c = buildBinaryAdder(3);
    BoolActivity act(c);
    auto bits = toBits(3, 3);
    auto bbits = toBits(2, 3);
    bits.insert(bits.end(), bbits.begin(), bbits.end());
    EXPECT_EQ(fromBits(act.apply(bits)), 5u);
}

TEST(BoolActivity, BinaryDatapathSwitchesMoreThanOncePerValue)
{
    // The contrast with GRL: streaming random values through a binary
    // min datapath toggles many internal nodes per computation, while a
    // GRL line switches at most once.
    BoolCircuit c = buildBinaryMin(8);
    BoolActivity act(c);
    Rng rng(7);
    const int steps = 200;
    for (int s = 0; s < steps; ++s) {
        auto bits = toBits(rng.below(256), 8);
        auto bbits = toBits(rng.below(256), 8);
        bits.insert(bits.end(), bbits.begin(), bbits.end());
        act.apply(bits);
    }
    double toggles_per_eval =
        static_cast<double>(act.gateToggles()) / (steps - 1);
    EXPECT_GT(toggles_per_eval, 8.0); // well above one-per-output-line
}

} // namespace
} // namespace st::grl
