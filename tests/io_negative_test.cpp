/**
 * @file
 * Negative-path tests of every text loader: malformed input must raise
 * std::invalid_argument whose message carries the offending line
 * number — never crash, never silently accept garbage.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/network_io.hpp"
#include "tnn/aer.hpp"
#include "tnn/tnn_io.hpp"

namespace st {
namespace {

/** Run @p fn, require std::invalid_argument mentioning "line <no>". */
template <typename Fn>
void
expectLineError(Fn &&fn, size_t line_no, const std::string &fragment = "")
{
    try {
        fn();
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("line " + std::to_string(line_no)),
                  std::string::npos)
            << "message lacks line " << line_no << ": " << msg;
        if (!fragment.empty()) {
            EXPECT_NE(msg.find(fragment), std::string::npos)
                << "message lacks '" << fragment << "': " << msg;
        }
    }
}

// ---------------------------------------------------------------- stnet

TEST(IoNegative, NetworkBadInputCount)
{
    expectLineError(
        [] { networkFromText("stnet 1\ninputs many\n"); }, 2,
        "input count");
    expectLineError(
        [] { networkFromText("stnet 1\ninputs -3\n"); }, 2);
    expectLineError(
        [] { networkFromText("stnet 1\ninputs 99999999999999999999\n"); },
        2, "out of range");
}

TEST(IoNegative, NetworkBadNodeReference)
{
    // "n12x" must not silently parse as n12.
    expectLineError(
        [] {
            networkFromText("stnet 1\ninputs 2\nn2 = min n0 n1x\n");
        },
        3, "node id");
    expectLineError(
        [] { networkFromText("stnet 1\ninputs 2\nn2 = min x0 n1\n"); },
        3, "node reference");
}

TEST(IoNegative, NetworkBadConstants)
{
    expectLineError(
        [] {
            networkFromText("stnet 1\ninputs 1\nn1 = config fast\n");
        },
        3, "config value");
    expectLineError(
        [] { networkFromText("stnet 1\ninputs 1\nn1 = inc n0 -2\n"); },
        3, "inc constant");
}

TEST(IoNegative, NetworkBuilderErrorsCarryLineContext)
{
    // Dangling reference: the builder throws std::out_of_range, which
    // is a logic_error — the loader rewraps it with the line number.
    expectLineError(
        [] {
            networkFromText("stnet 1\ninputs 1\n# hi\nn1 = inc n9 1\n");
        },
        4);
    expectLineError(
        [] { networkFromText("stnet 1\ninputs 1\noutput n7\n"); }, 3);
    expectLineError(
        [] { networkFromText("stnet 1\ninputs 1\nlabel n7 x\n"); }, 3);
}

// ------------------------------------------------------------- stcolumn

std::string
columnHeader()
{
    return "stcolumn 1\n"
           "inputs 2 neurons 1 threshold 4 maxweight 7 shape step\n"
           "response 4 1 2 12\n"
           "wta 8 1 fatigue 0 init 0.5 0 seed 1\n";
}

TEST(IoNegative, ColumnBadNumericFields)
{
    expectLineError(
        [] {
            columnFromText("stcolumn 1\ninputs two neurons 1 threshold "
                           "4 maxweight 7 shape step\n");
        },
        2, "input count");
    expectLineError(
        [] {
            columnFromText("stcolumn 1\ninputs 2 neurons 1 threshold "
                           "4 maxweight 7 shape step\n"
                           "response 4 oops 2 12\n");
        },
        3, "tauFast");
    expectLineError(
        [] {
            columnFromText("stcolumn 1\ninputs 2 neurons 1 threshold "
                           "4 maxweight 7 shape step\n"
                           "response 4 1 2 12\n"
                           "wta 8 1 fatigue 0 init 0.5 0 seed x\n");
        },
        4, "seed");
}

TEST(IoNegative, ColumnBadWeights)
{
    expectLineError(
        [] { columnFromText(columnHeader() + "weights 0 0.5 beta\n"); },
        5, "weight");
    expectLineError(
        [] { columnFromText(columnHeader() + "weights zero 0.5 1\n"); },
        5, "weights index");
}

TEST(IoNegative, TnnBadLayerCount)
{
    expectLineError(
        [] { tnnFromText("sttnn 1\nlayers few\n"); }, 2,
        "layer count");
}

// --------------------------------------------------------------- stconv

TEST(IoNegative, ConvBadGeometry)
{
    expectLineError(
        [] { convFromText("stconv 1\ngeometry 12 4 2 x\n"); }, 2,
        "feature count");
    expectLineError(
        [] {
            convFromText("stconv 1\ngeometry 12 4 2 1\n"
                         "neuron 5 7 step fatigue 0 init 0.5 0 seed "
                         "nope\n");
        },
        3, "seed");
}

// ---------------------------------------------------------------- staer

TEST(IoNegative, AerBadHeader)
{
    expectLineError([] { aerFromText(""); }, 0);
    expectLineError([] { aerFromText("staer 2\n"); }, 1);
    expectLineError([] { aerFromText("staer 1\n"); }, 1);
    expectLineError(
        [] { aerFromText("staer 1\naddresses 0\n"); }, 2);
    expectLineError(
        [] { aerFromText("staer 1\naddresses lots\n"); }, 2,
        "address count");
}

TEST(IoNegative, AerBadEvents)
{
    expectLineError(
        [] { aerFromText("staer 1\naddresses 4\n3\n"); }, 3);
    expectLineError(
        [] { aerFromText("staer 1\naddresses 4\n3 x\n"); }, 3,
        "address");
    expectLineError(
        [] { aerFromText("staer 1\naddresses 4\n3 9\n"); }, 3,
        "out of range");
    expectLineError(
        [] { aerFromText("staer 1\naddresses 4\n5 0\n3 1\n"); }, 4,
        "time order");
}

TEST(IoNegative, AerRoundTrip)
{
    AerStream stream(3);
    stream.push(0, 2);
    stream.push(4, 0);
    stream.push(4, 1);
    AerStream back = aerFromText(aerToText(stream));
    EXPECT_EQ(back.numAddresses(), stream.numAddresses());
    EXPECT_EQ(back.events(), stream.events());
    EXPECT_EQ(aerToText(back), aerToText(stream));
}

TEST(IoNegative, AerParsesCommentsAndBlanks)
{
    AerStream stream = aerFromText("# sensor dump\nstaer 1\n\n"
                                   "addresses 2\n"
                                   "1 0  # first event\n"
                                   "2 1\n");
    EXPECT_EQ(stream.size(), 2u);
    EXPECT_EQ(stream.events()[1], (AerEvent{2, 1}));
}

} // namespace
} // namespace st
