/**
 * @file
 * Differential guard: instrumentation must be observationally inert.
 * Every engine output — compiled evaluation, event-driven GRL
 * simulation, STDP training — must be bit-identical whether tracing
 * is enabled or disabled while counters accumulate underneath. This
 * is the invariant that lets the obs layer default to ON.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/network.hpp"
#include "grl/compile.hpp"
#include "grl/event_sim.hpp"
#include "neuron/srm0_network.hpp"
#include "neuron/wta.hpp"
#include "obs/trace.hpp"
#include "tnn/layer.hpp"
#include "util/rng.hpp"

namespace st {
namespace {

/** Run @p body twice — tracing off, then on — and return both. */
template <typename Fn>
auto
withTracingOffThenOn(Fn body)
{
    obs::TraceSession &session = obs::TraceSession::instance();
    const bool was_enabled = session.enabled();
    session.disable();
    auto off = body();
    session.enable();
    auto on = body();
    session.disable();
    session.clear();
    if (was_enabled)
        session.enable();
    return std::pair{std::move(off), std::move(on)};
}

std::vector<std::vector<Time>>
randomVolleys(size_t count, size_t width, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<Time>> volleys(count);
    for (auto &x : volleys) {
        x.resize(width);
        for (Time &v : x)
            v = rng.chance(0.2) ? INF : Time(rng.below(10));
    }
    return volleys;
}

TEST(ObsGuard, CompiledEvalIdenticalUnderTracing)
{
    std::vector<ResponseFunction> syn(
        6, ResponseFunction::biexponential(3, 4.0, 1.0));
    Network net = buildSrm0Network(syn, 6);
    auto volleys = randomVolleys(200, 6, 77);

    auto [off, on] = withTracingOffThenOn([&] {
        std::vector<std::vector<Time>> out;
        for (const auto &x : volleys)
            out.push_back(net.evaluate(x));
        return out;
    });
    EXPECT_EQ(off, on);

    // The batch engine too (it carries the eval.batch span).
    auto [boff, bon] = withTracingOffThenOn(
        [&] { return net.evaluateBatch(volleys, 4); });
    EXPECT_EQ(boff, bon);
    EXPECT_EQ(boff, off);
}

TEST(ObsGuard, EventSimIdenticalUnderTracing)
{
    Network net = wtaNetwork(16, 1);
    grl::CompileResult compiled = grl::compileToGrl(net);
    auto volleys = randomVolleys(50, 16, 78);

    auto [off, on] = withTracingOffThenOn([&] {
        std::vector<std::vector<Time>> outs;
        uint64_t transitions = 0;
        for (const auto &x : volleys) {
            grl::SimResult sim =
                grl::simulateEvents(compiled.circuit, x);
            outs.push_back(sim.outputs);
            transitions += sim.totalInternalTransitions();
        }
        return std::pair{outs, transitions};
    });
    EXPECT_EQ(off.first, on.first);
    EXPECT_EQ(off.second, on.second);
}

TEST(ObsGuard, StdpTrainingIdenticalUnderTracing)
{
    ColumnParams cp;
    cp.numInputs = 16;
    cp.numNeurons = 8;
    cp.threshold = 12;
    cp.fatigue = 8;
    cp.seed = 99;
    SimplifiedStdp rule(0.06, 0.045);
    auto raw = randomVolleys(64, 16, 79);
    std::vector<Volley> data;
    for (auto &x : raw)
        data.emplace_back(x.begin(), x.end());

    auto [off, on] = withTracingOffThenOn([&] {
        Column col(cp);
        col.trainBatch(data, rule, 4);
        std::vector<std::vector<double>> weights;
        for (size_t j = 0; j < cp.numNeurons; ++j)
            weights.push_back(col.weights(j));
        return weights;
    });
    EXPECT_EQ(off, on);
}

} // namespace
} // namespace st
