/**
 * @file
 * ModelRegistry unit suite (serve/registry.hpp): canary gating,
 * rollback-by-absence, epoch pinning, and the model-directory scan.
 *
 * The live-traffic soak (8 chaotic sessions through N swaps) lives in
 * model_swap_chaos_test.cpp under the "chaos" ctest label; this file
 * is the tier-1 fast path.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "model/serialize.hpp"
#include "serve/registry.hpp"
#include "tnn/tnn_network.hpp"

namespace st::serve {
namespace {

TnnNetwork
makeNet(size_t inputs)
{
    TnnNetwork net;
    ColumnParams p;
    p.numInputs = inputs;
    p.numNeurons = inputs;
    p.wtaK = 2;
    p.seed = 17;
    net.addLayer(p);
    return net;
}

std::unique_ptr<ServeModel>
makeModel(size_t inputs)
{
    return std::make_unique<TnnServeModel>(makeNet(inputs));
}

model::ModelInfo
infoAt(uint64_t version)
{
    model::ModelInfo info;
    info.kind = "tnn";
    info.id = "unit";
    info.version = version;
    info.inputWidth = 4;
    return info;
}

/** A candidate whose canary volley always throws. */
class ExplodingModel : public ServeModel
{
  public:
    explicit ExplodingModel(size_t inputs) : inputs_(inputs) {}
    size_t numInputs() const override { return inputs_; }
    std::string name() const override { return "exploding"; }
    std::vector<std::string>
    processBatch(std::span<const BatchItem>, size_t) override
    {
        throw std::runtime_error("kaboom at first volley");
    }

  private:
    size_t inputs_;
};

TEST(ModelRegistry, BootsAtEpochOneAndPublishesOnSwap)
{
    ModelRegistry registry(makeModel(4), infoAt(1));
    EXPECT_EQ(registry.epoch(), 1u);
    EXPECT_EQ(registry.current()->info.version, 1u);

    const Status status = registry.swap(makeModel(4), infoAt(2));
    ASSERT_TRUE(status.isOk()) << status.str();
    EXPECT_EQ(registry.epoch(), 2u);
    EXPECT_EQ(registry.current()->info.version, 2u);
    EXPECT_EQ(registry.swapCount(), 1u);
    EXPECT_EQ(registry.failedSwapCount(), 0u);
}

TEST(ModelRegistry, WidthMismatchRollsBackToIncumbent)
{
    ModelRegistry registry(makeModel(4), infoAt(1));
    const std::shared_ptr<const ModelVersion> before =
        registry.current();

    const Status status = registry.swap(makeModel(6), infoAt(2));
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::FailedPrecondition);
    EXPECT_EQ(registry.current().get(), before.get())
        << "incumbent must keep serving after a failed canary";
    EXPECT_EQ(registry.epoch(), 1u);
    EXPECT_EQ(registry.failedSwapCount(), 1u);
    EXPECT_EQ(registry.swapCount(), 0u);
}

TEST(ModelRegistry, ThrowingCanaryRollsBack)
{
    ModelRegistry registry(makeModel(4), infoAt(1));
    const Status status = registry.swap(
        std::make_unique<ExplodingModel>(4), infoAt(2));
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("kaboom"), std::string::npos)
        << status.str();
    EXPECT_EQ(registry.epoch(), 1u);
    EXPECT_EQ(registry.failedSwapCount(), 1u);
}

TEST(ModelRegistry, NullCandidateRejected)
{
    ModelRegistry registry(makeModel(4), infoAt(1));
    EXPECT_FALSE(registry.swap(nullptr, infoAt(2)).isOk());
    EXPECT_EQ(registry.epoch(), 1u);
}

TEST(ModelRegistry, PinnedVersionOutlivesSwap)
{
    ModelRegistry registry(makeModel(4), infoAt(1));
    const std::shared_ptr<const ModelVersion> pinned =
        registry.current();

    ASSERT_TRUE(registry.swap(makeModel(4), infoAt(2)).isOk());
    ASSERT_TRUE(registry.swap(makeModel(4), infoAt(3)).isOk());

    // The retired version still evaluates: an in-flight batch that
    // pinned it mid-swap finishes on its own engine.
    BatchItem item;
    item.session = 42;
    item.seq = 0;
    item.volley = Volley(4, Time(0));
    const std::vector<std::string> payloads =
        pinned->model->processBatch(
            std::span<const BatchItem>(&item, 1), 1);
    EXPECT_EQ(payloads.size(), 1u);
    EXPECT_EQ(pinned->epoch, 1u);
    EXPECT_EQ(registry.epoch(), 3u);
}

TEST(MakeServeModel, DispatchesEveryKind)
{
    const std::string dir = ::testing::TempDir();
    {
        const std::string path = dir + "swap_make_tnn.stmf";
        ASSERT_TRUE(model::packTnn(makeNet(4), path,
                                   model::PackOptions{})
                        .isOk());
        model::LoadedModel loaded;
        ASSERT_TRUE(
            model::loadModel(path, model::LoadMode::Mmap, loaded)
                .isOk());
        const std::unique_ptr<ServeModel> m = makeServeModel(loaded);
        ASSERT_TRUE(m != nullptr);
        EXPECT_EQ(m->name(), "tnn");
        EXPECT_EQ(m->numInputs(), 4u);
    }
    {
        Network net(3);
        std::vector<NodeId> ins;
        for (size_t i = 0; i < 3; ++i)
            ins.push_back(net.input(i));
        net.markOutput(net.min(ins));
        const std::string path = dir + "swap_make_plan.stmf";
        ASSERT_TRUE(model::packNetwork(net, path,
                                       model::PackOptions{})
                        .isOk());
        model::LoadedModel loaded;
        ASSERT_TRUE(
            model::loadModel(path, model::LoadMode::Mmap, loaded)
                .isOk());
        const std::unique_ptr<ServeModel> m = makeServeModel(loaded);
        ASSERT_TRUE(m != nullptr);
        EXPECT_EQ(m->name(), "plan");
        EXPECT_TRUE(m->transactional());
    }
    {
        model::LsmModelConfig config;
        config.params.numInputs = 5;
        const std::string path = dir + "swap_make_lsm.stmf";
        ASSERT_TRUE(model::packLsm(config, path,
                                   model::PackOptions{})
                        .isOk());
        model::LoadedModel loaded;
        ASSERT_TRUE(
            model::loadModel(path, model::LoadMode::Mmap, loaded)
                .isOk());
        const std::unique_ptr<ServeModel> m = makeServeModel(loaded);
        ASSERT_TRUE(m != nullptr);
        EXPECT_EQ(m->numInputs(), 5u);
    }
}

TEST(PickLatestModel, PrefersHighestVersionAndReportsCorruptSiblings)
{
    const std::string dir =
        ::testing::TempDir() + "swap_pick_dir";
    ASSERT_EQ(0, ::system(("rm -rf " + dir + " && mkdir -p " + dir)
                              .c_str()));

    model::PackOptions v1;
    v1.version = 1;
    ASSERT_TRUE(
        model::packTnn(makeNet(4), dir + "/a_v1.stmf", v1).isOk());
    model::PackOptions v7;
    v7.version = 7;
    ASSERT_TRUE(
        model::packTnn(makeNet(4), dir + "/b_v7.stmf", v7).isOk());
    {
        std::ofstream junk(dir + "/junk.stmf", std::ios::binary);
        junk << "definitely not a container";
    }

    std::string best;
    Status skipped;
    const Status status = pickLatestModel(dir, best, &skipped);
    ASSERT_TRUE(status.isOk()) << status.str();
    EXPECT_NE(best.find("b_v7.stmf"), std::string::npos) << best;
    EXPECT_FALSE(skipped.isOk())
        << "the corrupt sibling must be reported";
    EXPECT_NE(skipped.message().find("junk.stmf"), std::string::npos)
        << skipped.str();
}

TEST(PickLatestModel, EmptyOrMissingDirIsNotFound)
{
    const std::string dir =
        ::testing::TempDir() + "swap_empty_dir";
    ASSERT_EQ(0, ::system(("rm -rf " + dir + " && mkdir -p " + dir)
                              .c_str()));
    std::string best;
    EXPECT_EQ(pickLatestModel(dir, best).code(),
              StatusCode::NotFound);
    EXPECT_EQ(pickLatestModel(dir + "/nope", best).code(),
              StatusCode::NotFound);
}

} // namespace
} // namespace st::serve
