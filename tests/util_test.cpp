/**
 * @file
 * Tests for the utility substrate: deterministic RNG, CSV writer, and
 * ASCII table rendering.
 */

#include <gtest/gtest.h>

#include <set>

#include "util/csv.hpp"
#include "util/raster.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace st {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    bool differs = false;
    for (int i = 0; i < 10 && !differs; ++i)
        differs = a.next() != b.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, BelowRejectsZeroBound)
{
    Rng rng(7);
    EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(19);
    double sum = 0, sq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(23);
    double sum = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(Rng, ShuffleIsAPermutation)
{
    Rng rng(29);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(31);
    Rng child = a.split();
    // The child stream should not simply mirror the parent.
    bool differs = false;
    for (int i = 0; i < 8 && !differs; ++i)
        differs = a.next() != child.next();
    EXPECT_TRUE(differs);
}

TEST(Csv, HeaderAndRows)
{
    CsvWriter csv({"a", "b"});
    csv.row(1, "x");
    csv.row(2, "y");
    EXPECT_EQ(csv.str(), "a,b\n1,x\n2,y\n");
    EXPECT_EQ(csv.rowCount(), 2u);
}

TEST(Csv, EscapesSpecialCharacters)
{
    CsvWriter csv({"v"});
    csv.row("has,comma");
    csv.row("has\"quote");
    EXPECT_EQ(csv.str(), "v\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(Csv, RejectsArityMismatch)
{
    CsvWriter csv({"a", "b"});
    EXPECT_THROW(csv.addRow({"only-one"}), std::invalid_argument);
}

TEST(Csv, RejectsEmptyHeader)
{
    EXPECT_THROW(CsvWriter({}), std::invalid_argument);
}

TEST(AsciiTable, RendersAlignedCells)
{
    AsciiTable t({"name", "n"});
    t.row("alpha", 1);
    t.row("b", 12345);
    std::string s = t.str();
    EXPECT_NE(s.find("| alpha |     1 |"), std::string::npos);
    EXPECT_NE(s.find("| b     | 12345 |"), std::string::npos);
}

TEST(AsciiTable, RejectsArityMismatch)
{
    AsciiTable t({"a"});
    EXPECT_THROW(t.addRow({"x", "y"}), std::invalid_argument);
}

TEST(Raster, MarksSpikesAtTheirTimes)
{
    std::vector<Time> v{0_t, 3_t, INF, 1_t};
    std::string plot = rasterPlot(v);
    EXPECT_NE(plot.find("0 ||.."), std::string::npos);
    EXPECT_NE(plot.find("1 |...|"), std::string::npos);
    EXPECT_NE(plot.find("(no spike)"), std::string::npos);
    EXPECT_NE(plot.find("t ->"), std::string::npos);
}

TEST(Raster, HonorsHorizonAndNames)
{
    RasterOptions opt;
    opt.horizon = 6;
    opt.names = {"alpha", "b"};
    opt.mark = '*';
    std::vector<Time> v{2_t, 5_t};
    std::string plot = rasterPlot(v, opt);
    EXPECT_NE(plot.find("alpha |..*...."), std::string::npos);
    EXPECT_NE(plot.find("b     |.....*."), std::string::npos);
}

TEST(Raster, StacksMultipleVolleysWithSharedHorizon)
{
    std::vector<std::vector<Time>> vs{{1_t}, {4_t}};
    std::string plot = rasterPlot(vs);
    // Both rasters span to t=4 (shared horizon).
    EXPECT_NE(plot.find("0 |.|..."), std::string::npos);
    EXPECT_NE(plot.find("0 |....|"), std::string::npos);
}

TEST(Raster, EmptyVolleyStillRendersAxis)
{
    std::vector<Time> v{INF, INF};
    std::string plot = rasterPlot(v);
    EXPECT_NE(plot.find("t ->"), std::string::npos);
}

TEST(Stopwatch, MeasuresNonNegativeTime)
{
    Stopwatch sw;
    EXPECT_GE(sw.seconds(), 0.0);
    sw.reset();
    EXPECT_GE(sw.millis(), 0.0);
}

} // namespace
} // namespace st
