/**
 * @file
 * Tests for the s-t algebra operations (paper Sec. III.D): the bounded
 * distributive lattice laws of S = (N0^inf, min, max, 0, inf), the lt
 * gate's strict semantics, inc's invariance, and the volley helpers.
 */

#include <gtest/gtest.h>

#include "core/algebra.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

TEST(Algebra, MinBasics)
{
    EXPECT_EQ(tmin(2_t, 5_t), 2_t);
    EXPECT_EQ(tmin(5_t, 2_t), 2_t);
    EXPECT_EQ(tmin(3_t, 3_t), 3_t);
}

TEST(Algebra, MinWithInf)
{
    EXPECT_EQ(tmin(INF, 4_t), 4_t);
    EXPECT_EQ(tmin(4_t, INF), 4_t);
    EXPECT_EQ(tmin(INF, INF), INF);
}

TEST(Algebra, MaxBasics)
{
    EXPECT_EQ(tmax(2_t, 5_t), 5_t);
    EXPECT_EQ(tmax(5_t, 2_t), 5_t);
    EXPECT_EQ(tmax(3_t, 3_t), 3_t);
}

TEST(Algebra, MaxWithInfAbsorbs)
{
    EXPECT_EQ(tmax(INF, 4_t), INF);
    EXPECT_EQ(tmax(4_t, INF), INF);
}

TEST(Algebra, LtPassesStrictlyEarlier)
{
    EXPECT_EQ(tlt(2_t, 5_t), 2_t);
    EXPECT_EQ(tlt(5_t, 2_t), INF);
}

TEST(Algebra, LtBlocksTies)
{
    // Ties block: this is what the GRL latch implements (Fig. 16).
    EXPECT_EQ(tlt(3_t, 3_t), INF);
    EXPECT_EQ(tlt(INF, INF), INF);
}

TEST(Algebra, LtWithInf)
{
    EXPECT_EQ(tlt(2_t, INF), 2_t); // any finite spike beats "never"
    EXPECT_EQ(tlt(INF, 2_t), INF);
}

TEST(Algebra, IncDelays)
{
    EXPECT_EQ(tinc(3_t), 4_t);
    EXPECT_EQ(tinc(3_t, 5), 8_t);
    EXPECT_EQ(tinc(INF, 5), INF);
    EXPECT_EQ(tinc(3_t, 0), 3_t);
}

TEST(Algebra, ZeroIsBottomInfIsTop)
{
    // Bounded lattice: 0 is the bottom element, inf the top.
    for (Time x : {0_t, 1_t, 17_t, INF}) {
        EXPECT_EQ(tmin(x, 0_t), 0_t);
        EXPECT_EQ(tmax(x, 0_t), x);
        EXPECT_EQ(tmin(x, INF), x);
        EXPECT_EQ(tmax(x, INF), INF);
    }
}

/** Lattice-law sweep over random triples (seed-parameterized). */
class LatticeLaws : public ::testing::TestWithParam<uint64_t>
{
  protected:
    Time
    draw(Rng &rng)
    {
        return rng.chance(0.2) ? INF : Time(rng.below(50));
    }
};

TEST_P(LatticeLaws, CommutativeAssociativeIdempotent)
{
    Rng rng(GetParam());
    for (int i = 0; i < 200; ++i) {
        Time a = draw(rng), b = draw(rng), c = draw(rng);
        EXPECT_EQ(tmin(a, b), tmin(b, a));
        EXPECT_EQ(tmax(a, b), tmax(b, a));
        EXPECT_EQ(tmin(a, tmin(b, c)), tmin(tmin(a, b), c));
        EXPECT_EQ(tmax(a, tmax(b, c)), tmax(tmax(a, b), c));
        EXPECT_EQ(tmin(a, a), a);
        EXPECT_EQ(tmax(a, a), a);
    }
}

TEST_P(LatticeLaws, AbsorptionLaws)
{
    Rng rng(GetParam() ^ 0xabcd);
    for (int i = 0; i < 200; ++i) {
        Time a = draw(rng), b = draw(rng);
        EXPECT_EQ(tmin(a, tmax(a, b)), a);
        EXPECT_EQ(tmax(a, tmin(a, b)), a);
    }
}

TEST_P(LatticeLaws, Distributivity)
{
    Rng rng(GetParam() ^ 0x1234);
    for (int i = 0; i < 200; ++i) {
        Time a = draw(rng), b = draw(rng), c = draw(rng);
        EXPECT_EQ(tmin(a, tmax(b, c)), tmax(tmin(a, b), tmin(a, c)));
        EXPECT_EQ(tmax(a, tmin(b, c)), tmin(tmax(a, b), tmax(a, c)));
    }
}

TEST_P(LatticeLaws, ClosedUnderAdditionAndShiftDistribution)
{
    // S is closed under addition, and shifting distributes over the
    // lattice operations — the root of the invariance property.
    Rng rng(GetParam() ^ 0x9999);
    for (int i = 0; i < 200; ++i) {
        Time a = draw(rng), b = draw(rng);
        Time::rep c = rng.below(10);
        EXPECT_EQ(tmin(a, b) + c, tmin(a + c, b + c));
        EXPECT_EQ(tmax(a, b) + c, tmax(a + c, b + c));
        EXPECT_EQ(tlt(a, b) + c, tlt(a + c, b + c));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeLaws,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Algebra, MinOfSpan)
{
    EXPECT_EQ(minOf(V({5, 2, 9})), 2_t);
    EXPECT_EQ(minOf(V({kNo, 7, kNo})), 7_t);
    EXPECT_EQ(minOf(V({kNo, kNo})), INF);
    EXPECT_EQ(minOf(V({})), INF);
}

TEST(Algebra, MaxOfSpan)
{
    EXPECT_EQ(maxOf(V({5, 2, 9})), 9_t);
    EXPECT_EQ(maxOf(V({kNo, 7})), INF); // join absorbs inf
    EXPECT_EQ(maxOf(V({})), 0_t);       // join of nothing = bottom
}

TEST(Algebra, MaxFiniteOfSpan)
{
    EXPECT_EQ(maxFiniteOf(V({5, 2, 9})), 9_t);
    EXPECT_EQ(maxFiniteOf(V({kNo, 7})), 7_t);
    EXPECT_EQ(maxFiniteOf(V({kNo, kNo})), INF);
}

TEST(Algebra, ShiftedMovesFiniteSpikesOnly)
{
    auto s = shifted(V({0, 3, kNo}), 2);
    EXPECT_EQ(s, V({2, 5, kNo}));
}

TEST(Algebra, NormalizeSubtractsFirstSpike)
{
    auto [values, shift] = normalize(V({3, 4, kNo, 5}));
    EXPECT_EQ(shift, 3_t);
    EXPECT_EQ(values, V({0, 1, kNo, 2}));
}

TEST(Algebra, NormalizeAllInfIsIdentity)
{
    auto [values, shift] = normalize(V({kNo, kNo}));
    EXPECT_EQ(shift, INF);
    EXPECT_EQ(values, V({kNo, kNo}));
}

TEST(Algebra, NormalizeAlreadyNormalized)
{
    auto [values, shift] = normalize(V({0, 3, kNo, 1}));
    EXPECT_EQ(shift, 0_t);
    EXPECT_EQ(values, V({0, 3, kNo, 1})); // the paper's Fig. 5 volley
}

} // namespace
} // namespace st
