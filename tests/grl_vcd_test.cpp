/**
 * @file
 * Tests for VCD waveform export of GRL simulations.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "grl/vcd.hpp"
#include "test_helpers.hpp"

namespace st::grl {
namespace {

using testing::V;
using testing::kNo;

Circuit
smallCircuit()
{
    Circuit c(2);
    WireId m = c.andGate(c.input(0), c.input(1)); // min
    c.markOutput(c.delay(m, 2));
    return c;
}

TEST(Vcd, ContainsHeaderAndDefinitions)
{
    Circuit c = smallCircuit();
    SimResult sim = simulate(c, V({1, 3}));
    std::string vcd = toVcd(c, sim);
    EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
    EXPECT_NE(vcd.find("$scope module grl $end"), std::string::npos);
    EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
    // One $var per gate with kind-based default names.
    EXPECT_NE(vcd.find("input0"), std::string::npos);
    EXPECT_NE(vcd.find("and2"), std::string::npos);
    EXPECT_NE(vcd.find("delay3"), std::string::npos);
}

TEST(Vcd, InitialStateIsAllHigh)
{
    Circuit c = smallCircuit();
    SimResult sim = simulate(c, V({1, 3}));
    std::string vcd = toVcd(c, sim);
    auto dump = vcd.find("$dumpvars");
    auto end = vcd.find("$end", dump);
    std::string init = vcd.substr(dump, end - dump);
    // Nothing falls at t=0 here: all initial values are 1.
    EXPECT_EQ(std::count(init.begin(), init.end(), '0'), 0);
    EXPECT_EQ(std::count(init.begin(), init.end(), '1'),
              static_cast<long>(c.size()));
}

TEST(Vcd, FallsAppearAtTheirTimes)
{
    Circuit c = smallCircuit();
    SimResult sim = simulate(c, V({1, 3}));
    std::string vcd = toVcd(c, sim);
    // input0 falls at 1, the AND falls at 1, the delay output at 3,
    // input1 at 3.
    EXPECT_NE(vcd.find("#1\n"), std::string::npos);
    EXPECT_NE(vcd.find("#3\n"), std::string::npos);
    // Change lines use '0' + identifier.
    auto at1 = vcd.find("#1\n");
    auto at3 = vcd.find("#3\n");
    std::string between = vcd.substr(at1, at3 - at1);
    EXPECT_EQ(std::count(between.begin(), between.end(), '\n'), 3);
}

TEST(Vcd, SpikeAtZeroDumpsAsInitialZero)
{
    Circuit c(1);
    c.markOutput(c.input(0));
    SimResult sim = simulate(c, V({0}), 4);
    std::string vcd = toVcd(c, sim);
    auto dump = vcd.find("$dumpvars");
    auto end = vcd.find("$end", dump);
    std::string init = vcd.substr(dump, end - dump);
    EXPECT_NE(init.find('0'), std::string::npos);
}

TEST(Vcd, CustomNamesAndModule)
{
    Circuit c = smallCircuit();
    SimResult sim = simulate(c, V({1, 3}));
    VcdOptions opt;
    opt.module = "srm0";
    opt.names = {"x a", "x b"};
    std::string vcd = toVcd(c, sim, opt);
    EXPECT_NE(vcd.find("$scope module srm0 $end"), std::string::npos);
    // Spaces in names are sanitized.
    EXPECT_NE(vcd.find("x_a"), std::string::npos);
    EXPECT_EQ(vcd.find("x a $end"), std::string::npos);
}

TEST(Vcd, QuietLinesNeverChange)
{
    Circuit c = smallCircuit();
    SimResult sim = simulate(c, V({kNo, kNo}), 6);
    std::string vcd = toVcd(c, sim);
    // After the initial dump there are no value changes, only the
    // closing timestamp.
    auto dump_end = vcd.find("$end", vcd.find("$dumpvars"));
    std::string tail = vcd.substr(dump_end + 4);
    EXPECT_EQ(std::count(tail.begin(), tail.end(), '0'), 0);
}

TEST(Vcd, IdentifiersAreUniqueAndCompact)
{
    Circuit big(100);
    for (size_t i = 0; i + 1 < 100; i += 2)
        big.andGate(big.input(i), big.input(i + 1));
    std::vector<Time> x(100, 2_t);
    SimResult sim = simulate(big, x, 4);
    std::string vcd = toVcd(big, sim);
    // All 150 variables must be declared.
    size_t vars = 0, pos = 0;
    while ((pos = vcd.find("$var wire 1 ", pos)) != std::string::npos) {
        ++vars;
        pos += 1;
    }
    EXPECT_EQ(vars, big.size());
}

} // namespace
} // namespace st::grl
