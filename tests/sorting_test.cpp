/**
 * @file
 * Tests for bitonic sorting networks over the s-t algebra (paper
 * Sec. IV.A.1, Fig. 10): correctness against std::sort with inf values
 * sinking to the top, causality/invariance of the whole network
 * (Lemma 1), and the expected comparator-count growth.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/properties.hpp"
#include "neuron/sorting.hpp"
#include "test_helpers.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

std::vector<Time>
sortedCopy(std::vector<Time> v)
{
    std::sort(v.begin(), v.end());
    return v;
}

TEST(Bitonic, SortsPowerOfTwoWidth)
{
    Network net = bitonicSortNetwork(8);
    auto in = V({7, 3, 9, 1, 4, 4, 0, 6});
    EXPECT_EQ(net.evaluate(in), sortedCopy(in));
}

TEST(Bitonic, SortsNonPowerOfTwoWidthViaPadding)
{
    for (size_t n : {1, 3, 5, 6, 7, 9, 12}) {
        Network net = bitonicSortNetwork(n);
        Rng rng(n);
        auto in = testing::randomVolley(rng, n, 20, 0.0);
        EXPECT_EQ(net.evaluate(in), sortedCopy(in)) << "n=" << n;
    }
}

TEST(Bitonic, InfSinksToTheTop)
{
    Network net = bitonicSortNetwork(4);
    EXPECT_EQ(net.evaluate(V({kNo, 2, kNo, 1})), V({1, 2, kNo, kNo}));
    EXPECT_EQ(net.evaluate(V({kNo, kNo, kNo, kNo})),
              V({kNo, kNo, kNo, kNo}));
}

/** Sorting property over random volleys, parameterized by width. */
class BitonicWidths : public ::testing::TestWithParam<size_t>
{
};

TEST_P(BitonicWidths, MatchesStdSortOnRandomVolleys)
{
    const size_t n = GetParam();
    Network net = bitonicSortNetwork(n);
    Rng rng(1000 + n);
    for (int trial = 0; trial < 50; ++trial) {
        auto in = testing::randomVolley(rng, n, 15, 0.25);
        EXPECT_EQ(net.evaluate(in), sortedCopy(in))
            << "at " << volleyStr(in);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitonicWidths,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 13, 16, 20));

TEST(Bitonic, DuplicatesSurviveSorting)
{
    Network net = bitonicSortNetwork(6);
    EXPECT_EQ(net.evaluate(V({5, 5, 2, 2, 2, 9})), V({2, 2, 2, 5, 5, 9}));
}

TEST(Bitonic, UsesOnlyMinMaxComparators)
{
    Network net = bitonicSortNetwork(8);
    EXPECT_EQ(net.countOf(Op::Lt), 0u);
    EXPECT_EQ(net.countOf(Op::Inc), 0u);
    // One min + one max per comparator.
    EXPECT_EQ(net.countOf(Op::Min), bitonicComparatorCount(8));
    EXPECT_EQ(net.countOf(Op::Max), bitonicComparatorCount(8));
}

TEST(Bitonic, ComparatorCountFormula)
{
    // For n = 2^k: comparators = n/2 * k(k+1)/2 (Batcher).
    EXPECT_EQ(bitonicComparatorCount(2), 1u);
    EXPECT_EQ(bitonicComparatorCount(4), 6u);
    EXPECT_EQ(bitonicComparatorCount(8), 24u);
    EXPECT_EQ(bitonicComparatorCount(16), 80u);
    EXPECT_EQ(bitonicComparatorCount(32), 240u);
}

TEST(Bitonic, StageDepthFormula)
{
    // For n = 2^k: depth = k(k+1)/2 compare-exchange stages.
    EXPECT_EQ(bitonicStageDepth(2), 1u);
    EXPECT_EQ(bitonicStageDepth(4), 3u);
    EXPECT_EQ(bitonicStageDepth(8), 6u);
    EXPECT_EQ(bitonicStageDepth(16), 10u);
}

TEST(Bitonic, SortIsCausalAndInvariant)
{
    // The paper's argument for using sort inside a neuron: position in
    // the sorted list only depends on earlier-or-equal values.
    Network net = bitonicSortNetwork(3);
    // Check each output lane as an s-t function.
    for (size_t lane = 0; lane < 3; ++lane) {
        auto fn = [&net, lane](std::span<const Time> x) {
            return net.evaluate(x)[lane];
        };
        EXPECT_TRUE(checkCausality(3, 4, fn).holds) << "lane " << lane;
        EXPECT_TRUE(checkInvariance(3, 4, fn).holds) << "lane " << lane;
    }
}

TEST(Bitonic, EmitIntoExistingNetwork)
{
    // Sort the delayed copies of one input together with another input.
    Network net(2);
    std::vector<NodeId> taps{net.inc(net.input(0), 3), net.input(1),
                             net.inc(net.input(0), 1)};
    auto sorted = emitBitonicSort(net, taps);
    for (NodeId id : sorted)
        net.markOutput(id);
    EXPECT_EQ(net.evaluate(V({0, 2})), V({1, 2, 3}));
}

TEST(Bitonic, EmitRejectsEmptyTaps)
{
    Network net(1);
    EXPECT_THROW(emitBitonicSort(net, {}), std::invalid_argument);
}

} // namespace
} // namespace st
