/**
 * @file
 * Tests for winner-take-all inhibition (paper Sec. IV.C, Fig. 15): the
 * primitive-built network, its pure functional counterpart, the tau
 * window parameterization, and the behavioral k-WTA.
 */

#include <gtest/gtest.h>

#include "core/properties.hpp"
#include "neuron/wta.hpp"
#include "test_helpers.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

TEST(Wta, OnlyFirstSpikesPass)
{
    // Fig. 15 with tau = 1: only relative-time-0 spikes survive.
    Network net = wtaNetwork(4, 1);
    EXPECT_EQ(net.evaluate(V({3, 5, 3, 9})), V({3, kNo, 3, kNo}));
}

TEST(Wta, SingleSpikeSurvivesAlone)
{
    Network net = wtaNetwork(3, 1);
    EXPECT_EQ(net.evaluate(V({kNo, 7, kNo})), V({kNo, 7, kNo}));
}

TEST(Wta, AllQuietStaysQuiet)
{
    Network net = wtaNetwork(3, 1);
    EXPECT_EQ(net.evaluate(V({kNo, kNo, kNo})), V({kNo, kNo, kNo}));
}

TEST(Wta, TauWidensTheWindow)
{
    // tau-WTA passes spikes in [t_min, t_min + tau).
    Network net = wtaNetwork(4, 3);
    EXPECT_EQ(net.evaluate(V({2, 3, 4, 5})), V({2, 3, 4, kNo}));
}

TEST(Wta, NetworkUsesOnlyPrimitives)
{
    Network net = wtaNetwork(5, 2);
    EXPECT_EQ(net.countOf(Op::Min), 1u); // the t_min finder
    EXPECT_EQ(net.countOf(Op::Inc), 1u); // the tau delay
    EXPECT_EQ(net.countOf(Op::Lt), 5u);  // one gate per line
    EXPECT_EQ(net.countOf(Op::Max), 0u);
}

TEST(Wta, NetworkMatchesPureFunction)
{
    for (Time::rep tau : {1, 2, 4}) {
        Network net = wtaNetwork(3, tau);
        Rng rng(tau);
        for (int s = 0; s < 100; ++s) {
            auto x = testing::randomVolley(rng, 3, 8, 0.25);
            EXPECT_EQ(net.evaluate(x), applyWta(x, tau))
                << "tau=" << tau << " at " << volleyStr(x);
        }
    }
}

TEST(Wta, EachLaneIsCausalAndInvariant)
{
    Network net = wtaNetwork(3, 1);
    for (size_t lane = 0; lane < 3; ++lane) {
        auto fn = [&net, lane](std::span<const Time> x) {
            return net.evaluate(x)[lane];
        };
        EXPECT_TRUE(checkCausality(3, 4, fn).holds);
        EXPECT_TRUE(checkInvariance(3, 4, fn).holds);
    }
}

TEST(Wta, EmitRejectsBadParameters)
{
    Network net(2);
    std::vector<NodeId> taps{net.input(0), net.input(1)};
    EXPECT_THROW(emitWta(net, taps, 0), std::invalid_argument);
    EXPECT_THROW(emitWta(net, {}, 1), std::invalid_argument);
}

TEST(Wta, ApplyWtaPure)
{
    EXPECT_EQ(applyWta(V({0, 1, 0}), 1), V({0, kNo, 0}));
    EXPECT_EQ(applyWta(V({5, 6, 7}), 2), V({5, 6, kNo}));
    EXPECT_EQ(applyWta(V({kNo, kNo}), 1), V({kNo, kNo}));
}

TEST(KWta, KeepsKEarliest)
{
    EXPECT_EQ(applyKWta(V({4, 1, 3, 2}), 2), V({kNo, 1, kNo, 2}));
    EXPECT_EQ(applyKWta(V({4, 1, 3, 2}), 1), V({kNo, 1, kNo, kNo}));
}

TEST(KWta, KLargerThanSpikeCountKeepsAll)
{
    auto v = V({4, kNo, 2});
    EXPECT_EQ(applyKWta(v, 5), v);
    EXPECT_EQ(applyKWta(v, 2), v);
}

TEST(KWta, ZeroKeepsNothing)
{
    EXPECT_EQ(applyKWta(V({4, 1}), 0), V({kNo, kNo}));
}

TEST(KWta, TiesBreakByLowestIndex)
{
    // Fixed-priority interneuron: index order breaks ties.
    EXPECT_EQ(applyKWta(V({3, 3, 3}), 2), V({3, 3, kNo}));
    EXPECT_EQ(applyKWta(V({3, 1, 3}), 2), V({3, 1, kNo}));
}

TEST(KWta, InfLinesNeverWin)
{
    EXPECT_EQ(applyKWta(V({kNo, 5, kNo, 4}), 1), V({kNo, kNo, kNo, 4}));
}

TEST(SpikeCount, CountsFiniteLines)
{
    EXPECT_EQ(spikeCount(V({1, kNo, 3})), 2u);
    EXPECT_EQ(spikeCount(V({kNo, kNo})), 0u);
    EXPECT_EQ(spikeCount(V({})), 0u);
}

TEST(Wta, ComposesWithKWta)
{
    // tau-WTA then k-WTA: the paper's "first k spikes within a window".
    auto v = V({0, 1, 1, 2, 5});
    auto windowed = applyWta(v, 2);     // keeps 0, 1, 1
    auto top2 = applyKWta(windowed, 2); // keeps 0 and first 1
    EXPECT_EQ(top2, V({0, 1, kNo, kNo, kNo}));
}

} // namespace
} // namespace st
