/**
 * @file
 * Tests for the race-logic graph substrate: edge bookkeeping,
 * topological ordering / cycle detection, and the DAG/grid generators.
 */

#include <gtest/gtest.h>

#include "racelogic/graph.hpp"

namespace st::racelogic {
namespace {

TEST(Graph, EdgeBookkeeping)
{
    Graph g(4);
    g.addEdge(0, 1, 5);
    g.addEdge(0, 2, 3);
    g.addEdge(1, 3, 1);
    EXPECT_EQ(g.numVertices(), 4u);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.outEdges(0).size(), 2u);
    EXPECT_EQ(g.inEdges(3).size(), 1u);
    EXPECT_EQ(g.edges()[g.inEdges(3)[0]].from, 1u);
    EXPECT_EQ(g.edges()[g.inEdges(3)[0]].weight, 1u);
}

TEST(Graph, RejectsBadVertices)
{
    Graph g(2);
    EXPECT_THROW(g.addEdge(0, 5, 1), std::out_of_range);
    EXPECT_THROW(g.addEdge(5, 0, 1), std::out_of_range);
    EXPECT_THROW(Graph(0), std::invalid_argument);
}

TEST(Graph, TopologicalOrderOnDag)
{
    Graph g(4);
    g.addEdge(2, 1, 1);
    g.addEdge(1, 0, 1);
    g.addEdge(2, 3, 1);
    auto order = g.topologicalOrder();
    ASSERT_TRUE(order.has_value());
    ASSERT_EQ(order->size(), 4u);
    std::vector<size_t> pos(4);
    for (size_t i = 0; i < 4; ++i)
        pos[(*order)[i]] = i;
    EXPECT_LT(pos[2], pos[1]);
    EXPECT_LT(pos[1], pos[0]);
    EXPECT_LT(pos[2], pos[3]);
    EXPECT_TRUE(g.isDag());
}

TEST(Graph, DetectsCycles)
{
    Graph g(3);
    g.addEdge(0, 1, 1);
    g.addEdge(1, 2, 1);
    g.addEdge(2, 0, 1);
    EXPECT_FALSE(g.topologicalOrder().has_value());
    EXPECT_FALSE(g.isDag());
}

TEST(Graph, SelfLoopIsACycle)
{
    Graph g(2);
    g.addEdge(0, 0, 1);
    EXPECT_FALSE(g.isDag());
}

TEST(Graph, RandomDagIsAcyclic)
{
    Rng rng(3);
    for (int t = 0; t < 10; ++t) {
        Graph g = Graph::randomDag(rng, 20, 0.3, 9);
        EXPECT_TRUE(g.isDag());
        for (const Edge &e : g.edges()) {
            EXPECT_LT(e.from, e.to); // forward edges only
            EXPECT_LE(e.weight, 9u);
        }
    }
}

TEST(Graph, GridShape)
{
    Rng rng(4);
    Graph g = Graph::grid(rng, 3, 4, 5);
    EXPECT_EQ(g.numVertices(), 12u);
    // Edges: right: 3*3, down: 2*4 -> 17.
    EXPECT_EQ(g.numEdges(), 17u);
    EXPECT_TRUE(g.isDag());
    EXPECT_THROW(Graph::grid(rng, 0, 3, 5), std::invalid_argument);
}

} // namespace
} // namespace st::racelogic
