/**
 * @file
 * Tests for normalized function tables (paper Sec. III.F, Fig. 7):
 * normal-form enforcement, the normalize/lookup/shift evaluation rule,
 * causality closure, conflict rejection, inference, and text I/O.
 */

#include <gtest/gtest.h>

#include "core/function_table.hpp"
#include "test_helpers.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

/** The exact table of paper Fig. 7. */
FunctionTable
fig7Table()
{
    FunctionTable t(3);
    t.addRow(V({0, 1, 2}), 3_t);
    t.addRow(V({1, 0, kNo}), 2_t);
    t.addRow(V({2, 2, 0}), 2_t);
    return t;
}

TEST(FunctionTable, Fig7NormalizedLookup)
{
    FunctionTable t = fig7Table();
    EXPECT_EQ(t.evaluate(V({0, 1, 2})), 3_t);
    EXPECT_EQ(t.evaluate(V({1, 0, kNo})), 2_t);
    EXPECT_EQ(t.evaluate(V({2, 2, 0})), 2_t);
}

TEST(FunctionTable, Fig7PaperWorkedExample)
{
    // The paper's worked example: input [3, 4, 5] normalizes to
    // [0, 1, 2] (entry 3), so the output is 3 + 3 = 6.
    FunctionTable t = fig7Table();
    EXPECT_EQ(t.evaluate(V({3, 4, 5})), 6_t);
}

TEST(FunctionTable, MissingEntryIsInf)
{
    FunctionTable t = fig7Table();
    EXPECT_EQ(t.evaluate(V({0, 0, 0})), INF);
    EXPECT_EQ(t.evaluate(V({5, 5, 5})), INF);
}

TEST(FunctionTable, AllInfInputYieldsInf)
{
    FunctionTable t = fig7Table();
    EXPECT_EQ(t.evaluate(V({kNo, kNo, kNo})), INF);
}

TEST(FunctionTable, InvarianceViaShift)
{
    FunctionTable t = fig7Table();
    for (Time::rep c = 0; c < 5; ++c) {
        EXPECT_EQ(t.evaluate(V({1 + c, 0 + c, kNo})), Time(2 + c));
        EXPECT_EQ(t.evaluate(V({2 + c, 2 + c, 0 + c})), Time(2 + c));
    }
}

TEST(FunctionTable, CausalityClosureMatchesLateInputs)
{
    // Row [1, 0, inf] -> 2: causality forces any x3 > 2 to behave like
    // inf (the input arrives after the output has already fired).
    FunctionTable t = fig7Table();
    EXPECT_EQ(t.evaluate(V({1, 0, 3})), 2_t);
    EXPECT_EQ(t.evaluate(V({1, 0, 100})), 2_t);
    // ...but x3 <= 2 must NOT match (it could have mattered).
    EXPECT_EQ(t.evaluate(V({1, 0, 2})), INF);
    EXPECT_EQ(t.evaluate(V({1, 0, 1})), INF);
}

TEST(FunctionTable, CanonicalizesEntriesAboveOutput)
{
    // An entry strictly greater than the row output is indistinguishable
    // from inf under causality; the table canonicalizes it.
    FunctionTable t(2);
    t.addRow(V({0, 7}), 2_t);
    ASSERT_EQ(t.rowCount(), 1u);
    EXPECT_EQ(t.rows()[0].inputs, V({0, kNo}));
    EXPECT_EQ(t.evaluate(V({0, 7})), 2_t);
    EXPECT_EQ(t.evaluate(V({0, kNo})), 2_t);
    EXPECT_EQ(t.evaluate(V({0, 2})), INF);
}

TEST(FunctionTable, EntryEqualToOutputStaysFinite)
{
    FunctionTable t(2);
    t.addRow(V({0, 2}), 2_t);
    EXPECT_EQ(t.rows()[0].inputs, V({0, 2}));
    EXPECT_EQ(t.evaluate(V({0, 2})), 2_t);
    EXPECT_EQ(t.evaluate(V({0, kNo})), INF);
}

TEST(FunctionTable, RejectsZeroArity)
{
    EXPECT_THROW(FunctionTable(0), std::invalid_argument);
}

TEST(FunctionTable, RejectsArityMismatch)
{
    FunctionTable t(2);
    EXPECT_THROW(t.addRow(V({0, 1, 2}), 1_t), std::invalid_argument);
    EXPECT_THROW(t.evaluate(V({0})), std::invalid_argument);
}

TEST(FunctionTable, RejectsInfOutput)
{
    FunctionTable t(2);
    EXPECT_THROW(t.addRow(V({0, 1}), INF), std::invalid_argument);
}

TEST(FunctionTable, RejectsRowWithoutZero)
{
    FunctionTable t(2);
    EXPECT_THROW(t.addRow(V({1, 2}), 3_t), std::invalid_argument);
    // A zero destroyed by canonicalization does not exist; a row whose
    // only sub-output entries lack a zero is equally invalid.
    EXPECT_THROW(t.addRow(V({kNo, 1}), 0_t), std::invalid_argument);
}

TEST(FunctionTable, RejectsExactDuplicates)
{
    FunctionTable t(2);
    t.addRow(V({0, 1}), 2_t);
    EXPECT_THROW(t.addRow(V({0, 1}), 2_t), std::invalid_argument);
    // Same row via canonicalization (7 > 2 folds to inf = inf).
    t.addRow(V({0, kNo}), 1_t);
    EXPECT_THROW(t.addRow(V({0, 7}), 1_t), std::invalid_argument);
}

TEST(FunctionTable, RejectsConflictingRows)
{
    // [0, 1] matches both rows but the outputs differ -> ambiguous.
    FunctionTable t(2);
    t.addRow(V({0, 1}), 2_t);
    EXPECT_THROW(t.addRow(V({0, 1}), 3_t), std::invalid_argument);
}

TEST(FunctionTable, RejectsClosureConflicts)
{
    // Row [0, inf] -> 1 matches any [0, x] with x > 1; row [0, 3] -> 5
    // would match [0, 3] too, with a different output.
    FunctionTable t(2);
    t.addRow(V({0, kNo}), 1_t);
    EXPECT_THROW(t.addRow(V({0, 3}), 5_t), std::invalid_argument);
}

TEST(FunctionTable, AllowsConsistentOverlap)
{
    // Overlapping match sets with equal outputs are consistent.
    FunctionTable t(2);
    t.addRow(V({0, kNo}), 1_t);
    EXPECT_NO_THROW(t.addRow(V({0, 1}), 1_t));
}

TEST(FunctionTable, DisjointInfRowsCoexist)
{
    FunctionTable t(2);
    t.addRow(V({0, kNo}), 0_t);
    t.addRow(V({kNo, 0}), 0_t);
    EXPECT_EQ(t.evaluate(V({0, 5})), 0_t);
    EXPECT_EQ(t.evaluate(V({5, 0})), 0_t);
    EXPECT_EQ(t.evaluate(V({0, 0})), INF);
}

TEST(FunctionTable, HistoryBound)
{
    EXPECT_EQ(fig7Table().historyBound(), 3u);
    FunctionTable t(1);
    EXPECT_EQ(t.historyBound(), 0u);
}

TEST(FunctionTable, InferRecoversLtPrimitive)
{
    // lt has the finite canonical table {[0, inf] -> 0} — every
    // normalized pattern [0, j], j >= 1 folds into it by closure.
    auto fn = [](std::span<const Time> x) { return tlt(x[0], x[1]); };
    FunctionTable t = FunctionTable::infer(2, 4, fn);
    ASSERT_EQ(t.rowCount(), 1u);
    EXPECT_EQ(t.rows()[0].inputs, V({0, kNo}));
    EXPECT_EQ(t.rows()[0].output, 0_t);
}

TEST(FunctionTable, InferRecoversMinPrimitive)
{
    auto fn = [](std::span<const Time> x) { return tmin(x[0], x[1]); };
    FunctionTable t = FunctionTable::infer(2, 4, fn);
    // min: [0,0]->0, [0,inf]->0, [inf,0]->0 after closure.
    EXPECT_EQ(t.rowCount(), 3u);
    EXPECT_EQ(t.evaluate(V({7, 9})), 7_t);
    EXPECT_EQ(t.evaluate(V({9, 7})), 7_t);
    EXPECT_EQ(t.evaluate(V({kNo, 7})), 7_t);
}

TEST(FunctionTable, InferOfMaxGrowsWithWindow)
{
    // max has NO finite normalized table: rows [0, j] -> j never fold
    // (the entry equals the output), so the table grows with the window
    // — the concrete reason max is not a bounded s-t function.
    auto fn = [](std::span<const Time> x) { return tmax(x[0], x[1]); };
    FunctionTable t3 = FunctionTable::infer(2, 3, fn);
    FunctionTable t5 = FunctionTable::infer(2, 5, fn);
    EXPECT_GT(t5.rowCount(), t3.rowCount());
}

TEST(FunctionTable, InferredTableMatchesFunctionInsideWindow)
{
    auto fn = [](std::span<const Time> x) {
        return tmin(tinc(x[0], 2), x[1]);
    };
    FunctionTable t = FunctionTable::infer(2, 5, fn);
    testing::forAllVolleys(2, 5, [&](const std::vector<Time> &u) {
        EXPECT_EQ(t.evaluate(u), fn(u));
    });
}

TEST(FunctionTable, ParseAndStrRoundTrip)
{
    const std::string text = "# paper Fig. 7\n"
                             "0 1 2 3\n"
                             "1 0 inf 2\n"
                             "\n"
                             "2 2 0 2\n";
    FunctionTable t = FunctionTable::parse(3, text);
    EXPECT_EQ(t, fig7Table());
    FunctionTable round = FunctionTable::parse(3, t.str());
    EXPECT_EQ(round, t);
}

TEST(FunctionTable, ParseRejectsBadTokens)
{
    EXPECT_THROW(FunctionTable::parse(2, "0 x 1\n"),
                 std::invalid_argument);
    EXPECT_THROW(FunctionTable::parse(2, "0 1\n"), std::invalid_argument);
}

TEST(FunctionTable, RandomTablesEvaluateConsistently)
{
    // Determinism property: whatever matching row wins, evaluation must
    // be a function (same input -> same output) and invariant.
    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        FunctionTable t = testing::randomTable(rng, 3, 4, 6);
        testing::forAllVolleys(3, 5, [&](const std::vector<Time> &u) {
            Time z1 = t.evaluate(u);
            Time z2 = t.evaluate(u);
            EXPECT_EQ(z1, z2);
            auto su = shifted(u, 3);
            EXPECT_EQ(t.evaluate(su), z1 + 3);
        });
    }
}

} // namespace
} // namespace st
