/**
 * @file
 * Tests for the switching-energy model (paper Sec. VI conjecture 1 and
 * the Sec. V.B shift-register caveat): weighted transition accounting,
 * sparsity effects, and the delay-line clock overhead the paper flags.
 */

#include <gtest/gtest.h>

#include "grl/compile.hpp"
#include "grl/energy.hpp"
#include "neuron/wta.hpp"
#include "test_helpers.hpp"

namespace st::grl {
namespace {

using testing::V;
using testing::kNo;

TEST(Energy, WeightsTransitionCounts)
{
    Circuit c(2);
    c.markOutput(c.orGate(c.input(0), c.input(1)));
    SimResult sim = simulate(c, V({1, 3}));
    EnergyParams p;
    EnergyReport r = estimateEnergy(c, sim, p);
    // 1 OR transition, 2 input falls, no flops -> no clock term.
    EXPECT_DOUBLE_EQ(r.combinational, p.gateSwitch * 1);
    EXPECT_DOUBLE_EQ(r.inputs, p.inputDrive * 2);
    EXPECT_DOUBLE_EQ(r.clock, 0.0);
    EXPECT_DOUBLE_EQ(r.flopData, 0.0);
    EXPECT_DOUBLE_EQ(r.total, r.combinational + r.inputs + r.ltCells);
}

TEST(Energy, QuietComputationCostsOnlyClock)
{
    Circuit c(1);
    c.markOutput(c.delay(c.input(0), 4));
    SimResult sim = simulate(c, V({kNo}), 10);
    EnergyReport r = estimateEnergy(c, sim);
    EXPECT_DOUBLE_EQ(r.combinational, 0.0);
    EXPECT_DOUBLE_EQ(r.flopData, 0.0);
    EXPECT_GT(r.clock, 0.0); // the clock tree never sleeps
    EXPECT_DOUBLE_EQ(r.total, r.clock);
}

TEST(Energy, SparserVolleysCostLess)
{
    // Sec. VI: with sparse spike codings many signals undergo ZERO
    // transitions — energy scales down with activity.
    Network net = st::wtaNetwork(8, 1);
    CompileResult compiled = compileToGrl(net);

    auto cost = [&](const std::vector<Time> &x) {
        SimResult sim = simulate(compiled.circuit, x, 16);
        return estimateEnergy(compiled.circuit, sim).total;
    };
    double dense = cost(V({0, 1, 2, 3, 0, 1, 2, 3}));
    double sparse = cost(V({0, kNo, kNo, kNo, kNo, kNo, kNo, kNo}));
    double quiet = cost(V({kNo, kNo, kNo, kNo, kNo, kNo, kNo, kNo}));
    EXPECT_LT(sparse, dense);
    EXPECT_LT(quiet, sparse);
}

TEST(Energy, DelayFractionIsolatesShiftRegisterCost)
{
    // The paper: "energy consumption may increase significantly due to
    // the clocked shift registers". A delay-heavy circuit must show a
    // dominant delay fraction; a combinational one, zero.
    Circuit delays(1);
    delays.markOutput(delays.delay(delays.input(0), 20));
    SimResult sim1 = simulate(delays, V({0}));
    EnergyReport r1 = estimateEnergy(delays, sim1);
    EXPECT_GT(r1.delayFraction(), 0.8);

    Circuit comb(2);
    comb.markOutput(comb.andGate(comb.input(0), comb.input(1)));
    SimResult sim2 = simulate(comb, V({1, 2}));
    EnergyReport r2 = estimateEnergy(comb, sim2);
    EXPECT_DOUBLE_EQ(r2.delayFraction(), 0.0);
}

TEST(Energy, CustomParamsScaleLinearly)
{
    Circuit c(2);
    c.markOutput(c.andGate(c.input(0), c.input(1)));
    SimResult sim = simulate(c, V({1, 2}));
    EnergyParams unit;
    EnergyParams doubled = unit;
    doubled.gateSwitch *= 2;
    doubled.inputDrive *= 2;
    EnergyReport a = estimateEnergy(c, sim, unit);
    EnergyReport b = estimateEnergy(c, sim, doubled);
    EXPECT_DOUBLE_EQ(b.total, 2 * a.total);
}

TEST(Energy, ZeroTotalHasZeroDelayFraction)
{
    EnergyReport r;
    EXPECT_DOUBLE_EQ(r.delayFraction(), 0.0);
}

TEST(Energy, LtCellsChargedForLatchAndOutput)
{
    Circuit c(2);
    c.markOutput(c.ltCell(c.input(0), c.input(1)));
    EnergyParams p;
    // Pass case: output switches, latch does not.
    EnergyReport pass =
        estimateEnergy(c, simulate(c, V({1, 5})), p);
    EXPECT_DOUBLE_EQ(pass.ltCells, p.ltSwitch);
    // Block case: latch captures, output stays.
    EnergyReport block =
        estimateEnergy(c, simulate(c, V({5, 1})), p);
    EXPECT_DOUBLE_EQ(block.ltCells, p.latchCapture);
}

} // namespace
} // namespace st::grl
