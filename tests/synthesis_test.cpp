/**
 * @file
 * Tests for the paper's two constructive results:
 *
 *  - Lemma 2 (Fig. 8): max is implementable from min and lt alone —
 *    checked exhaustively over the case grid including inf.
 *  - Theorem 1 (Fig. 9): the minterm canonical form implements exactly
 *    the function of any normalized table — checked exhaustively for the
 *    paper's Fig. 7 table and for random tables, in both the native-max
 *    and fully-lowered {min, inc, lt} bases.
 */

#include <gtest/gtest.h>

#include "core/optimize.hpp"
#include "core/properties.hpp"
#include "core/synthesis.hpp"
#include "test_helpers.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

TEST(Lemma2, MaxFromMinLtExhaustive)
{
    Network net = maxFromMinLtNetwork();
    testing::forAllVolleys(2, 8, [&](const std::vector<Time> &u) {
        EXPECT_EQ(net.evaluate(u)[0], tmax(u[0], u[1]))
            << "at " << volleyStr(u);
    });
}

TEST(Lemma2, CaseAnalysisOfFig8)
{
    // The three cases called out in Fig. 8: a < b, a = b, a > b.
    Network net = maxFromMinLtNetwork();
    EXPECT_EQ(net.evaluate(V({2, 5}))[0], 5_t); // case 1: c = b
    EXPECT_EQ(net.evaluate(V({4, 4}))[0], 4_t); // case 2: c = a = b
    EXPECT_EQ(net.evaluate(V({7, 3}))[0], 7_t); // case 3: c = a
}

TEST(Lemma2, InfAbsorbs)
{
    Network net = maxFromMinLtNetwork();
    EXPECT_EQ(net.evaluate(V({3, kNo}))[0], INF);
    EXPECT_EQ(net.evaluate(V({kNo, 3}))[0], INF);
    EXPECT_EQ(net.evaluate(V({kNo, kNo}))[0], INF);
}

TEST(Lemma2, UsesOnlyMinAndLt)
{
    Network net = maxFromMinLtNetwork();
    EXPECT_EQ(net.countOf(Op::Max), 0u);
    EXPECT_EQ(net.countOf(Op::Inc), 0u);
    EXPECT_EQ(net.countOf(Op::Lt), 4u);
    EXPECT_EQ(net.countOf(Op::Min), 1u);
}

TEST(LowerMax, PreservesRandomNetworkSemantics)
{
    Rng rng(2024);
    for (int trial = 0; trial < 30; ++trial) {
        Network net = testing::randomNetwork(rng, 3, 12);
        Network lowered = lowerMax(net);
        EXPECT_EQ(lowered.countOf(Op::Max), 0u);
        for (int s = 0; s < 50; ++s) {
            auto x = testing::randomVolley(rng, 3, 9);
            EXPECT_EQ(lowered.evaluate(x), net.evaluate(x))
                << "at " << volleyStr(x);
        }
    }
}

TEST(LowerMax, HandlesNaryMax)
{
    Network net(4);
    std::vector<NodeId> all{net.input(0), net.input(1), net.input(2),
                            net.input(3)};
    net.markOutput(net.max(std::span<const NodeId>(all)));
    Network lowered = lowerMax(net);
    EXPECT_EQ(lowered.countOf(Op::Max), 0u);
    EXPECT_EQ(lowered.evaluate(V({3, 9, 1, 4}))[0], 9_t);
    EXPECT_EQ(lowered.evaluate(V({3, kNo, 1, 4}))[0], INF);
}

TEST(LowerMax, PreservesConfigNodes)
{
    Network net(1);
    NodeId mu = net.config(INF);
    net.markOutput(net.max(net.lt(net.input(0), mu), net.input(0)));
    Network lowered = lowerMax(net);
    EXPECT_EQ(lowered.evaluate(V({3}))[0], 3_t);
    // The lowered network must still carry a programmable config node.
    EXPECT_EQ(lowered.countOf(Op::Config), 1u);
}

/** The exact table of paper Fig. 7 (reused as Fig. 9's source). */
FunctionTable
fig7Table()
{
    FunctionTable t(3);
    t.addRow(V({0, 1, 2}), 3_t);
    t.addRow(V({1, 0, kNo}), 2_t);
    t.addRow(V({2, 2, 0}), 2_t);
    return t;
}

class MintermSynthesis : public ::testing::TestWithParam<bool>
{
  protected:
    SynthesisOptions
    options() const
    {
        SynthesisOptions opt;
        opt.useNativeMax = GetParam();
        return opt;
    }
};

TEST_P(MintermSynthesis, ImplementsFig7TableExhaustively)
{
    FunctionTable table = fig7Table();
    Network net = synthesizeMinterms(table, options());
    // Sweep one unit past the history bound so closure cases appear.
    testing::forAllVolleys(3, table.historyBound() + 2,
                           [&](const std::vector<Time> &u) {
        EXPECT_EQ(net.evaluate(u)[0], table.evaluate(u))
            << "at " << volleyStr(u);
    });
}

TEST_P(MintermSynthesis, Fig9WorkedExample)
{
    // The paper applies [0, 1, 2] and reads 3 out of minterm_1.
    Network net = synthesizeMinterms(fig7Table(), options());
    EXPECT_EQ(net.evaluate(V({0, 1, 2}))[0], 3_t);
    // And the shifted version from the Fig. 7 discussion.
    EXPECT_EQ(net.evaluate(V({3, 4, 5}))[0], 6_t);
}

TEST_P(MintermSynthesis, ImplementsRandomTables)
{
    Rng rng(77);
    for (int trial = 0; trial < 15; ++trial) {
        FunctionTable table = testing::randomTable(rng, 3, 4, 5);
        Network net = synthesizeMinterms(table, options());
        testing::forAllVolleys(3, 6, [&](const std::vector<Time> &u) {
            EXPECT_EQ(net.evaluate(u)[0], table.evaluate(u))
                << "table:\n" << table.str() << "at " << volleyStr(u);
        });
        // Unnormalized random probes.
        for (int s = 0; s < 100; ++s) {
            auto x = testing::randomVolley(rng, 3, 30);
            EXPECT_EQ(net.evaluate(x)[0], table.evaluate(x));
        }
    }
}

TEST_P(MintermSynthesis, SingleRowTable)
{
    FunctionTable t(2);
    t.addRow(V({0, 1}), 4_t);
    Network net = synthesizeMinterms(t, options());
    EXPECT_EQ(net.evaluate(V({0, 1}))[0], 4_t);
    EXPECT_EQ(net.evaluate(V({5, 6}))[0], 9_t);
    EXPECT_EQ(net.evaluate(V({0, 2}))[0], INF);
}

TEST_P(MintermSynthesis, SingleInputTable)
{
    FunctionTable t(1);
    t.addRow(V({0}), 2_t);
    Network net = synthesizeMinterms(t, options());
    EXPECT_EQ(net.evaluate(V({0}))[0], 2_t);
    EXPECT_EQ(net.evaluate(V({9}))[0], 11_t);
    EXPECT_EQ(net.evaluate(V({kNo}))[0], INF);
}

TEST_P(MintermSynthesis, AllInfEntriesRow)
{
    // Row [0, inf]: the inf tap joins the min side after the +1, so an
    // input at exactly the row output ties the lt shut.
    FunctionTable t(2);
    t.addRow(V({0, kNo}), 2_t);
    Network net = synthesizeMinterms(t, options());
    EXPECT_EQ(net.evaluate(V({0, kNo}))[0], 2_t);
    EXPECT_EQ(net.evaluate(V({0, 3}))[0], 2_t);  // 3 > 2: closure match
    EXPECT_EQ(net.evaluate(V({0, 2}))[0], INF);  // tie: no match
    EXPECT_EQ(net.evaluate(V({0, 1}))[0], INF);
}

INSTANTIATE_TEST_SUITE_P(Bases, MintermSynthesis,
                         ::testing::Values(true, false),
                         [](const auto &info) {
                             return info.param ? "NativeMax"
                                               : "MinIncLtOnly";
                         });

TEST(MintermSynthesis, EmptyTableIsConstantInf)
{
    FunctionTable t(2);
    Network net = synthesizeMinterms(t);
    testing::forAllVolleys(2, 3, [&](const std::vector<Time> &u) {
        EXPECT_EQ(net.evaluate(u)[0], INF);
    });
}

TEST(MintermSynthesis, LoweredBaseHasNoMaxBlocks)
{
    SynthesisOptions opt;
    opt.useNativeMax = false;
    Network net = synthesizeMinterms(fig7Table(), opt);
    EXPECT_EQ(net.countOf(Op::Max), 0u);
    EXPECT_GT(net.countOf(Op::Lt), 0u);
    EXPECT_GT(net.countOf(Op::Min), 0u);
}

TEST(MintermSynthesis, SkipZeroIncsReducesSize)
{
    SynthesisOptions keep, skip;
    keep.skipZeroIncs = false;
    skip.skipZeroIncs = true;
    FunctionTable t = fig7Table();
    Network with = synthesizeMinterms(t, keep);
    Network without = synthesizeMinterms(t, skip);
    EXPECT_GT(with.countOf(Op::Inc), without.countOf(Op::Inc));
    testing::forAllVolleys(3, 4, [&](const std::vector<Time> &u) {
        EXPECT_EQ(with.evaluate(u)[0], without.evaluate(u)[0]);
    });
}

TEST(MultiOutputSynthesis, EachOutputComputesItsTable)
{
    FunctionTable f = fig7Table();
    FunctionTable g(3);
    g.addRow(V({0, 1, 2}), 4_t); // overlaps f's row pattern
    g.addRow(V({0, 0, 0}), 1_t);
    std::vector<FunctionTable> tables{f, g};
    Network net = synthesizeMultiOutput(tables);
    ASSERT_EQ(net.outputs().size(), 2u);
    testing::forAllVolleys(3, 5, [&](const std::vector<Time> &u) {
        auto out = net.evaluate(u);
        EXPECT_EQ(out[0], f.evaluate(u)) << volleyStr(u);
        EXPECT_EQ(out[1], g.evaluate(u)) << volleyStr(u);
    });
}

TEST(MultiOutputSynthesis, SharedStructureIsMerged)
{
    // Identical tables: the merged network must be barely larger than
    // one copy (shared minterms collapse; only the outputs differ).
    FunctionTable f = fig7Table();
    std::vector<FunctionTable> twice{f, f};
    Network two = synthesizeMultiOutput(twice);
    Network one = optimize(synthesizeMinterms(f));
    EXPECT_LT(two.size(), 2 * one.size());
    EXPECT_LE(two.size(), one.size() + 1);
}

TEST(MultiOutputSynthesis, RejectsBadInputs)
{
    EXPECT_THROW(synthesizeMultiOutput({}), std::invalid_argument);
    FunctionTable a(2), b(3);
    std::vector<FunctionTable> mixed{a, b};
    EXPECT_THROW(synthesizeMultiOutput(mixed), std::invalid_argument);
}

TEST(MultiOutputSynthesis, RandomTablePairs)
{
    Rng rng(515);
    for (int trial = 0; trial < 8; ++trial) {
        std::vector<FunctionTable> tables{
            testing::randomTable(rng, 3, 4, 4),
            testing::randomTable(rng, 3, 4, 4),
            testing::randomTable(rng, 3, 4, 4)};
        Network net = synthesizeMultiOutput(tables);
        for (int s = 0; s < 80; ++s) {
            auto x = testing::randomVolley(rng, 3, 9);
            auto out = net.evaluate(x);
            for (size_t k = 0; k < tables.size(); ++k)
                EXPECT_EQ(out[k], tables[k].evaluate(x));
        }
    }
}

TEST(MintermSynthesis, SynthesizedNetworksRoundTripThroughInfer)
{
    // infer(synthesize(T)) == T canonically, closing the loop between
    // the table and network representations.
    FunctionTable t = fig7Table();
    Network net = synthesizeMinterms(t);
    auto fn = [&net](std::span<const Time> x) {
        return net.evaluate(x)[0];
    };
    FunctionTable inferred =
        FunctionTable::infer(3, t.historyBound() + 1, fn);
    testing::forAllVolleys(3, t.historyBound() + 2,
                           [&](const std::vector<Time> &u) {
        EXPECT_EQ(inferred.evaluate(u), t.evaluate(u));
    });
}

} // namespace
} // namespace st
