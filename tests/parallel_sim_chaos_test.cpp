/**
 * @file
 * Long-running differential fuzz for the parallel GRL engine (ctest
 * label `chaos`, excluded from the tier-1 lane): randomized clustered
 * netlists and cortical sheets, swept across thread counts, partition
 * counts and fault specs — gate-delay variation, stuck-at wires —
 * with the agenda-monotonicity guard armed. Every configuration must
 * be bit-identical to the serial engine and leave the guard clean.
 */

#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "grl/event_sim.hpp"
#include "grl/parallel_sim.hpp"
#include "grl/sheet.hpp"
#include "test_helpers.hpp"

namespace st::grl {
namespace {

void
expectSameResult(const SimResult &a, const SimResult &b,
                 const std::string &context)
{
    ASSERT_EQ(a.fallTime, b.fallTime) << context;
    ASSERT_EQ(a.outputs, b.outputs) << context;
    ASSERT_EQ(a.gateTransitions, b.gateTransitions) << context;
    ASSERT_EQ(a.ltOutputTransitions, b.ltOutputTransitions) << context;
    ASSERT_EQ(a.ltLatchTransitions, b.ltLatchTransitions) << context;
    ASSERT_EQ(a.flopDataTransitions, b.flopDataTransitions) << context;
    ASSERT_EQ(a.inputTransitions, b.inputTransitions) << context;
    ASSERT_EQ(a.fallenLines, b.fallenLines) << context;
    ASSERT_EQ(a.flopZeroBits, b.flopZeroBits) << context;
    ASSERT_EQ(a.latchesCaptured, b.latchesCaptured) << context;
    ASSERT_EQ(a.cyclesSimulated, b.cyclesSimulated) << context;
}

/** Same construction as the tier-1 suite's clusteredCircuit (kept
 *  local: chaos builds bigger shapes). */
Circuit
clusteredCircuit(Rng &rng, size_t num_inputs, size_t clusters,
                 size_t gates_per_cluster, uint32_t min_link)
{
    Circuit c(num_inputs);
    std::vector<WireId> pool;
    for (size_t i = 0; i < num_inputs; ++i)
        pool.push_back(c.input(i));
    for (size_t k = 0; k < clusters; ++k) {
        if (k > 0) {
            std::vector<WireId> feed;
            for (size_t f = 0; f < 3; ++f) {
                feed.push_back(c.delay(
                    pool[rng.below(pool.size())],
                    min_link + static_cast<uint32_t>(rng.below(4))));
            }
            pool = std::move(feed);
        }
        auto local = [&]() { return pool[rng.below(pool.size())]; };
        for (size_t g = 0; g < gates_per_cluster; ++g) {
            switch (rng.below(5)) {
              case 0:
                pool.push_back(
                    c.constant(rng.chance(0.3) ? INF
                                               : Time(rng.below(8))));
                break;
              case 1:
                pool.push_back(c.andGate(local(), local()));
                break;
              case 2:
                pool.push_back(c.orGate(local(), local()));
                break;
              case 3:
                pool.push_back(c.ltCell(local(), local()));
                break;
              default:
                pool.push_back(c.delay(
                    local(), 1 + static_cast<uint32_t>(rng.below(3))));
                break;
            }
        }
        c.markOutput(pool.back());
    }
    return c;
}

TEST(ParallelSimChaos, ClusteredSweepAcrossThreadsPartitionsAndFaults)
{
    const fault::FaultSpec kSpecs[] = {
        {},                                         // clean
        {.seed = 11, .gateDelayJitter = 1},         // mild jitter
        {.seed = 12, .stuckProb = 0.08},            // broken wires
        {.seed = 13, .stuckProb = 0.04,
         .gateDelayJitter = 2},                     // both
        {.seed = 14, .gateDelayJitter = 9},         // forces fallback
    };
    for (uint64_t seed = 0; seed < 12; ++seed) {
        Rng rng(0xc4a05 + seed);
        Circuit c = clusteredCircuit(rng, 2 + rng.below(4),
                                     4 + rng.below(5),
                                     10 + rng.below(20), 3);
        for (const fault::FaultSpec &spec : kSpecs) {
            fault::FaultInjector inj(spec);
            for (int s = 0; s < 4; ++s) {
                auto x = testing::randomVolley(rng, c.numInputs(), 12,
                                               s % 2 == 0 ? 0.3 : 0.1);
                fault::InjectionScope scope(inj);
                fault::FaultReport fr;
                fault::GuardOptions gopts;
                gopts.flags = fault::kGuardAgendaOrder;
                fault::GuardScope guard(gopts, &fr);
                SimResult serial = simulateEvents(c, x);
                for (size_t parts : {1, 2, 4, 8}) {
                    for (size_t threads : {1, 2, 4, 8}) {
                        ParallelSimOptions opts;
                        opts.partitions = parts;
                        opts.threads = threads;
                        expectSameResult(
                            simulateEventsParallel(c, x, 0, opts),
                            serial,
                            "seed=" + std::to_string(seed) +
                                " jitter=" +
                                std::to_string(spec.gateDelayJitter) +
                                " stuck=" +
                                std::to_string(spec.stuckProb) +
                                " p=" + std::to_string(parts) +
                                " t=" + std::to_string(threads));
                    }
                }
                EXPECT_TRUE(fr.clean()) << fr.str();
            }
        }
    }
}

TEST(ParallelSimChaos, SheetSweepStaysBitIdentical)
{
    for (uint64_t variant = 0; variant < 4; ++variant) {
        SheetParams p;
        p.rows = 1 + variant % 2;
        p.cols = 3 + variant;
        p.neurons = 3 + variant % 3;
        p.synapses = 2;
        p.interDelay = 3 + static_cast<uint32_t>(variant);
        p.vertDelay = variant % 2 == 0 ? 0 : 2;
        p.seed = 0x5ee7 + variant;
        Sheet sheet = buildCorticalSheet(p);
        fault::FaultSpec spec;
        spec.seed = 31 + variant;
        spec.gateDelayJitter = 1;
        fault::FaultInjector inj(spec);
        for (uint64_t salt = 0; salt < 6; ++salt) {
            auto x = sheetInputVolley(sheet, salt);
            fault::InjectionScope scope(inj);
            fault::FaultReport fr;
            fault::GuardOptions gopts;
            gopts.flags = fault::kGuardAgendaOrder;
            fault::GuardScope guard(gopts, &fr);
            SimResult serial = simulateEvents(sheet.circuit, x);
            for (size_t parts : {2, 4, 8}) {
                for (size_t threads : {2, 8}) {
                    ParallelSimOptions opts;
                    opts.partitions = parts;
                    opts.threads = threads;
                    ParallelSimReport report;
                    SimResult par = simulateEventsParallel(
                        sheet.circuit, x, 0, opts, &report);
                    expectSameResult(
                        par, serial,
                        "variant=" + std::to_string(variant) +
                            " salt=" + std::to_string(salt) +
                            " p=" + std::to_string(parts) +
                            " t=" + std::to_string(threads));
                    EXPECT_FALSE(report.fellBack);
                }
            }
            EXPECT_TRUE(fr.clean()) << fr.str();
        }
    }
}

} // namespace
} // namespace st::grl
