/**
 * @file
 * Tests for the event-driven GRL engine: unit semantics, and the
 * four-way differential sweep — algebraic evaluation, event-driven
 * trace simulation, cycle-accurate logic simulation and event-driven
 * logic simulation must all agree on every node, including every
 * transition counter the energy model consumes.
 */

#include <gtest/gtest.h>

#include "core/properties.hpp"
#include "core/synthesis.hpp"
#include "core/trace_sim.hpp"
#include "grl/compile.hpp"
#include "grl/event_sim.hpp"
#include "neuron/srm0_network.hpp"
#include "neuron/wta.hpp"
#include "test_helpers.hpp"

namespace st::grl {
namespace {

using testing::V;
using testing::kNo;

void
expectSameResult(const SimResult &a, const SimResult &b,
                 const std::string &context)
{
    EXPECT_EQ(a.fallTime, b.fallTime) << context;
    EXPECT_EQ(a.outputs, b.outputs) << context;
    EXPECT_EQ(a.gateTransitions, b.gateTransitions) << context;
    EXPECT_EQ(a.ltOutputTransitions, b.ltOutputTransitions) << context;
    EXPECT_EQ(a.ltLatchTransitions, b.ltLatchTransitions) << context;
    EXPECT_EQ(a.flopDataTransitions, b.flopDataTransitions) << context;
    EXPECT_EQ(a.inputTransitions, b.inputTransitions) << context;
    EXPECT_EQ(a.fallenLines, b.fallenLines) << context;
    EXPECT_EQ(a.flopZeroBits, b.flopZeroBits) << context;
    EXPECT_EQ(a.latchesCaptured, b.latchesCaptured) << context;
    EXPECT_EQ(a.cyclesSimulated, b.cyclesSimulated) << context;
}

TEST(GrlEventSim, PrimitiveGates)
{
    Circuit c(2);
    c.markOutput(c.andGate(c.input(0), c.input(1)));
    c.markOutput(c.orGate(c.input(0), c.input(1)));
    c.markOutput(c.ltCell(c.input(0), c.input(1)));
    c.markOutput(c.delay(c.input(0), 3));
    testing::forAllVolleys(2, 5, [&](const std::vector<Time> &u) {
        expectSameResult(simulate(c, u), simulateEvents(c, u),
                         volleyStr(u));
    });
}

TEST(GrlEventSim, HorizonClipsIdentically)
{
    Circuit c(1);
    c.markOutput(c.delay(c.input(0), 10));
    for (Time::rep h : {1, 5, 11, 12, 20}) {
        expectSameResult(simulate(c, V({2}), h),
                         simulateEvents(c, V({2}), h),
                         "h=" + std::to_string(h));
    }
}

TEST(GrlEventSim, LatchCaptureBeyondOutputHorizon)
{
    // a falls past the horizon, b inside it: the cycle engine captures
    // the latch; the event engine must account the same.
    Circuit c(2);
    c.markOutput(c.ltCell(c.input(0), c.input(1)));
    expectSameResult(simulate(c, V({9, 2}), 5),
                     simulateEvents(c, V({9, 2}), 5), "clip");
}

TEST(GrlEventSim, RandomNetworksFourWayDifferential)
{
    Rng rng(4242);
    for (int trial = 0; trial < 30; ++trial) {
        Network net = testing::randomNetwork(rng, 3, 16);
        CompileResult compiled = compileToGrl(net);
        TraceSimulator tracer(net);
        for (int s = 0; s < 25; ++s) {
            auto x = testing::randomVolley(rng, 3, 9);
            auto values = net.evaluateAll(x);       // engine 1
            Trace trace = tracer.run(x);            // engine 2
            SimResult cyc = simulate(compiled.circuit, x);       // 3
            SimResult evt = simulateEvents(compiled.circuit, x); // 4
            EXPECT_EQ(trace.fireTime, values);
            expectSameResult(cyc, evt, volleyStr(x));
            for (size_t i = 0; i < net.size(); ++i)
                EXPECT_EQ(cyc.fallTime[compiled.wireOf[i]], values[i]);
        }
    }
}

TEST(GrlEventSim, Srm0CircuitAgreement)
{
    ResponseFunction r = ResponseFunction::biexponential(3, 4.0, 1.0);
    Network net = buildSrm0Network({r, r, r.negated()}, 3);
    CompileResult compiled = compileToGrl(net);
    Rng rng(5);
    for (int s = 0; s < 40; ++s) {
        auto x = testing::randomVolley(rng, 3, 10);
        expectSameResult(simulate(compiled.circuit, x),
                         simulateEvents(compiled.circuit, x),
                         volleyStr(x));
    }
}

TEST(GrlEventSim, WtaCircuitAgreement)
{
    Network net = wtaNetwork(6, 2);
    CompileResult compiled = compileToGrl(net);
    Rng rng(6);
    for (int s = 0; s < 60; ++s) {
        auto x = testing::randomVolley(rng, 6, 9, 0.3);
        expectSameResult(simulate(compiled.circuit, x),
                         simulateEvents(compiled.circuit, x),
                         volleyStr(x));
    }
}

TEST(GrlEventSim, QuietInputProducesNoEvents)
{
    Circuit c(2);
    c.markOutput(c.andGate(c.input(0), c.input(1)));
    SimResult r = simulateEvents(c, V({kNo, kNo}), 10);
    EXPECT_EQ(r.totalInternalTransitions(), 0u);
    EXPECT_EQ(r.resetTransitions(), 0u);
    EXPECT_EQ(r.outputs, V({kNo}));
}

TEST(GrlEventSim, RejectsArityMismatch)
{
    Circuit c(2);
    c.markOutput(c.input(0));
    EXPECT_THROW(simulateEvents(c, V({1})), std::invalid_argument);
}

} // namespace
} // namespace st::grl
