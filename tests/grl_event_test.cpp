/**
 * @file
 * Tests for the event-driven GRL engine: unit semantics, and the
 * four-way differential sweep — algebraic evaluation, event-driven
 * trace simulation, cycle-accurate logic simulation and event-driven
 * logic simulation must all agree on every node, including every
 * transition counter the energy model consumes.
 */

#include <gtest/gtest.h>

#include "core/properties.hpp"
#include "core/synthesis.hpp"
#include "core/trace_sim.hpp"
#include "grl/compile.hpp"
#include "grl/event_sim.hpp"
#include "neuron/srm0_network.hpp"
#include "neuron/wta.hpp"
#include "test_helpers.hpp"
#include "util/thread_pool.hpp"

namespace st::grl {
namespace {

using testing::V;
using testing::kNo;

void
expectSameResult(const SimResult &a, const SimResult &b,
                 const std::string &context)
{
    EXPECT_EQ(a.fallTime, b.fallTime) << context;
    EXPECT_EQ(a.outputs, b.outputs) << context;
    EXPECT_EQ(a.gateTransitions, b.gateTransitions) << context;
    EXPECT_EQ(a.ltOutputTransitions, b.ltOutputTransitions) << context;
    EXPECT_EQ(a.ltLatchTransitions, b.ltLatchTransitions) << context;
    EXPECT_EQ(a.flopDataTransitions, b.flopDataTransitions) << context;
    EXPECT_EQ(a.inputTransitions, b.inputTransitions) << context;
    EXPECT_EQ(a.fallenLines, b.fallenLines) << context;
    EXPECT_EQ(a.flopZeroBits, b.flopZeroBits) << context;
    EXPECT_EQ(a.latchesCaptured, b.latchesCaptured) << context;
    EXPECT_EQ(a.cyclesSimulated, b.cyclesSimulated) << context;
}

TEST(GrlEventSim, PrimitiveGates)
{
    Circuit c(2);
    c.markOutput(c.andGate(c.input(0), c.input(1)));
    c.markOutput(c.orGate(c.input(0), c.input(1)));
    c.markOutput(c.ltCell(c.input(0), c.input(1)));
    c.markOutput(c.delay(c.input(0), 3));
    testing::forAllVolleys(2, 5, [&](const std::vector<Time> &u) {
        expectSameResult(simulate(c, u), simulateEvents(c, u),
                         volleyStr(u));
    });
}

TEST(GrlEventSim, HorizonClipsIdentically)
{
    Circuit c(1);
    c.markOutput(c.delay(c.input(0), 10));
    for (Time::rep h : {1, 5, 11, 12, 20}) {
        expectSameResult(simulate(c, V({2}), h),
                         simulateEvents(c, V({2}), h),
                         "h=" + std::to_string(h));
    }
}

TEST(GrlEventSim, LatchCaptureBeyondOutputHorizon)
{
    // a falls past the horizon, b inside it: the cycle engine captures
    // the latch; the event engine must account the same.
    Circuit c(2);
    c.markOutput(c.ltCell(c.input(0), c.input(1)));
    expectSameResult(simulate(c, V({9, 2}), 5),
                     simulateEvents(c, V({9, 2}), 5), "clip");
}

TEST(GrlEventSim, RandomNetworksFourWayDifferential)
{
    Rng rng(4242);
    for (int trial = 0; trial < 30; ++trial) {
        Network net = testing::randomNetwork(rng, 3, 16);
        CompileResult compiled = compileToGrl(net);
        TraceSimulator tracer(net);
        for (int s = 0; s < 25; ++s) {
            auto x = testing::randomVolley(rng, 3, 9);
            auto values = net.evaluateAll(x);       // engine 1
            Trace trace = tracer.run(x);            // engine 2
            SimResult cyc = simulate(compiled.circuit, x);       // 3
            SimResult evt = simulateEvents(compiled.circuit, x); // 4
            EXPECT_EQ(trace.fireTime, values);
            expectSameResult(cyc, evt, volleyStr(x));
            for (size_t i = 0; i < net.size(); ++i)
                EXPECT_EQ(cyc.fallTime[compiled.wireOf[i]], values[i]);
        }
    }
}

TEST(GrlEventSim, Srm0CircuitAgreement)
{
    ResponseFunction r = ResponseFunction::biexponential(3, 4.0, 1.0);
    Network net = buildSrm0Network({r, r, r.negated()}, 3);
    CompileResult compiled = compileToGrl(net);
    Rng rng(5);
    for (int s = 0; s < 40; ++s) {
        auto x = testing::randomVolley(rng, 3, 10);
        expectSameResult(simulate(compiled.circuit, x),
                         simulateEvents(compiled.circuit, x),
                         volleyStr(x));
    }
}

TEST(GrlEventSim, WtaCircuitAgreement)
{
    Network net = wtaNetwork(6, 2);
    CompileResult compiled = compileToGrl(net);
    Rng rng(6);
    for (int s = 0; s < 60; ++s) {
        auto x = testing::randomVolley(rng, 6, 9, 0.3);
        expectSameResult(simulate(compiled.circuit, x),
                         simulateEvents(compiled.circuit, x),
                         volleyStr(x));
    }
}

/**
 * A random raw netlist (not routed through compileToGrl): random
 * fanin shapes, delay lines of varying depth, consts and a random
 * output set — stressing the calendar queue's ring directly.
 */
Circuit
randomCircuit(Rng &rng, size_t num_inputs, size_t num_gates,
              uint32_t max_stages)
{
    Circuit c(num_inputs);
    auto randomWire = [&]() {
        return static_cast<WireId>(rng.below(c.size()));
    };
    for (size_t g = 0; g < num_gates; ++g) {
        switch (rng.below(5)) {
          case 0:
            c.constant(rng.chance(0.3) ? INF : Time(rng.below(8)));
            break;
          case 1: {
            std::vector<WireId> ins(2 + rng.below(2));
            for (WireId &w : ins)
                w = randomWire();
            c.andGate(ins);
            break;
          }
          case 2: {
            std::vector<WireId> ins(2 + rng.below(2));
            for (WireId &w : ins)
                w = randomWire();
            c.orGate(ins);
            break;
          }
          case 3:
            c.ltCell(randomWire(), randomWire());
            break;
          default:
            c.delay(randomWire(),
                    1 + static_cast<uint32_t>(rng.below(max_stages)));
            break;
        }
    }
    size_t num_outputs = 1 + rng.below(4);
    for (size_t k = 0; k < num_outputs; ++k)
        c.markOutput(randomWire());
    return c;
}

TEST(GrlEventSim, RandomCircuitsCalendarQueueMatchesClocked)
{
    for (uint64_t seed = 0; seed < 25; ++seed) {
        Rng rng(0xca1 + seed);
        Circuit c = randomCircuit(rng, 2 + rng.below(4),
                                  6 + rng.below(30), 6);
        for (int s = 0; s < 12; ++s) {
            auto x = testing::randomVolley(rng, c.numInputs(), 12,
                                           s % 3 == 0 ? 0.5 : 0.2);
            expectSameResult(simulate(c, x), simulateEvents(c, x),
                             "seed=" + std::to_string(seed) + " " +
                                 volleyStr(x));
        }
    }
}

TEST(GrlEventSim, DeepDelayLinesSpillToTheFarLane)
{
    // A delay line deeper than the calendar ring's size cap forces the
    // event engine through its far-heap overflow lane.
    Circuit c(2);
    WireId deep = c.delay(c.input(0), 20000);
    c.markOutput(c.andGate(deep, c.input(1)));
    c.markOutput(c.ltCell(c.input(1), deep));
    expectSameResult(simulate(c, V({1, 30})),
                     simulateEvents(c, V({1, 30})), "deep");
    expectSameResult(simulate(c, V({1, kNo})),
                     simulateEvents(c, V({1, kNo})), "deep-quiet");
}

TEST(GrlEventSim, ParallelSimulationsShareTheFanoutCache)
{
    // Concurrent simulateEvents() calls on one shared Circuit race to
    // build the fanout cache; every lane must still agree with the
    // clocked engine for every thread count.
    Rng rng(0xfa4);
    Circuit c = randomCircuit(rng, 4, 24, 5);
    std::vector<std::vector<Time>> volleys;
    for (int s = 0; s < 32; ++s)
        volleys.push_back(testing::randomVolley(rng, 4, 10, 0.25));
    std::vector<SimResult> expected;
    for (const auto &x : volleys)
        expected.push_back(simulate(c, x));

    for (size_t nthreads : {1, 2, 4, 8}) {
        Circuit fresh = c; // copies start with a cold fanout cache
        std::vector<SimResult> got(volleys.size());
        ThreadPool::shared().parallelFor(
            0, volleys.size(), 1,
            [&](size_t i) { got[i] = simulateEvents(fresh, volleys[i]); },
            nthreads);
        for (size_t i = 0; i < volleys.size(); ++i) {
            expectSameResult(got[i], expected[i],
                             "nthreads=" + std::to_string(nthreads) +
                                 " " + volleyStr(volleys[i]));
        }
    }
}

TEST(GrlEventSim, QuietInputProducesNoEvents)
{
    Circuit c(2);
    c.markOutput(c.andGate(c.input(0), c.input(1)));
    SimResult r = simulateEvents(c, V({kNo, kNo}), 10);
    EXPECT_EQ(r.totalInternalTransitions(), 0u);
    EXPECT_EQ(r.resetTransitions(), 0u);
    EXPECT_EQ(r.outputs, V({kNo}));
}

TEST(GrlEventSim, RejectsArityMismatch)
{
    Circuit c(2);
    c.markOutput(c.input(0));
    EXPECT_THROW(simulateEvents(c, V({1})), std::invalid_argument);
}

} // namespace
} // namespace st::grl
