/**
 * @file
 * Tests for trained-model serialization: bit-exact round trips of
 * columns, multi-layer networks and conv layers, plus malformed-input
 * rejection.
 */

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "tnn/datasets.hpp"
#include "tnn/tnn_io.hpp"

namespace st {
namespace {

Column
trainedColumn()
{
    ColumnParams p;
    p.numInputs = 8;
    p.numNeurons = 4;
    p.threshold = 6;
    p.maxWeight = 7;
    p.shape = ResponseShape::Biexponential;
    p.fatigue = 3;
    p.seed = 321;
    Column col(p);
    PatternSetParams dp;
    dp.numLines = 8;
    dp.numClasses = 2;
    dp.seed = 4;
    PatternDataset data(dp);
    SimplifiedStdp rule(0.07, 0.05);
    for (const auto &s : data.sampleMany(100))
        col.trainStep(s.volley, rule);
    return col;
}

TEST(TnnIo, ColumnRoundTripIsBitExact)
{
    Column col = trainedColumn();
    Column back = columnFromText(columnToText(col));
    EXPECT_EQ(back.params().numInputs, col.params().numInputs);
    EXPECT_EQ(back.params().threshold, col.params().threshold);
    EXPECT_EQ(back.params().shape, col.params().shape);
    EXPECT_EQ(back.params().fatigue, col.params().fatigue);
    for (size_t j = 0; j < col.params().numNeurons; ++j)
        EXPECT_EQ(back.weights(j), col.weights(j)) << "neuron " << j;
    // Behaviour round-trips too.
    Rng rng(5);
    for (int s = 0; s < 40; ++s) {
        auto x = testing::randomVolley(rng, 8, 7, 0.2);
        EXPECT_EQ(back.process(x), col.process(x));
    }
    // Serialization is idempotent.
    EXPECT_EQ(columnToText(back), columnToText(col));
}

TEST(TnnIo, ColumnFatigueCountersResetOnLoad)
{
    Column col = trainedColumn();
    Column back = columnFromText(columnToText(col));
    for (size_t j = 0; j < col.params().numNeurons; ++j)
        EXPECT_EQ(back.winCount(j), 0u);
}

TEST(TnnIo, NetworkRoundTrip)
{
    TnnNetwork net;
    ColumnParams l0;
    l0.numInputs = 6;
    l0.numNeurons = 4;
    l0.threshold = 4;
    l0.seed = 9;
    net.addLayer(l0);
    ColumnParams l1;
    l1.numInputs = 4;
    l1.numNeurons = 2;
    l1.threshold = 2;
    l1.seed = 10;
    net.addLayer(l1);
    net.layer(0).setWeights(1, {0.1, 0.9, 0.25, 0.5, 0.0, 1.0});

    TnnNetwork back = tnnFromText(tnnToText(net));
    ASSERT_EQ(back.numLayers(), 2u);
    EXPECT_EQ(back.layer(0).weights(1), net.layer(0).weights(1));
    Rng rng(6);
    for (int s = 0; s < 30; ++s) {
        auto x = testing::randomVolley(rng, 6, 7, 0.2);
        EXPECT_EQ(back.process(x), net.process(x));
    }
}

TEST(TnnIo, ConvRoundTrip)
{
    Conv1dParams p;
    p.inputWidth = 12;
    p.kernelSize = 4;
    p.stride = 2;
    p.numFeatures = 3;
    p.threshold = 5;
    p.fatigue = 2;
    p.seed = 77;
    Conv1dLayer conv(p);
    conv.setWeights(1, {0.125, 0.75, 1.0, 0.0});

    Conv1dLayer back = convFromText(convToText(conv));
    EXPECT_EQ(back.params().stride, 2u);
    EXPECT_EQ(back.numPositions(), conv.numPositions());
    for (size_t f = 0; f < 3; ++f)
        EXPECT_EQ(back.weights(f), conv.weights(f));
    Rng rng(7);
    for (int s = 0; s < 30; ++s) {
        auto x = testing::randomVolley(rng, 12, 7, 0.3);
        EXPECT_EQ(back.pooled(x), conv.pooled(x));
        EXPECT_EQ(back.featureMap(x), conv.featureMap(x));
    }
}

TEST(TnnIo, CommentsAndBlanksAreIgnored)
{
    std::string text = columnToText(trainedColumn());
    text = "# trained on synthetic patterns\n\n" + text + "\n# end\n";
    EXPECT_NO_THROW(columnFromText(text));
}

TEST(TnnIo, RejectsMalformedInput)
{
    EXPECT_THROW(columnFromText(""), std::invalid_argument);
    EXPECT_THROW(columnFromText("stcolumn 2\n"), std::invalid_argument);
    EXPECT_THROW(columnFromText("stcolumn 1\nbogus\n"),
                 std::invalid_argument);
    EXPECT_THROW(tnnFromText("stcolumn 1\n"), std::invalid_argument);
    EXPECT_THROW(convFromText("stconv 1\ngeometry 4 2 1\n"),
                 std::invalid_argument);

    // Truncated weights section.
    Column col = trainedColumn();
    std::string text = columnToText(col);
    text.resize(text.rfind("weights"));
    EXPECT_THROW(columnFromText(text), std::invalid_argument);

    // Out-of-order weights rows.
    std::string swapped = columnToText(col);
    auto w0 = swapped.find("weights 0");
    swapped.replace(w0, 9, "weights 1");
    EXPECT_THROW(columnFromText(swapped), std::invalid_argument);
}

TEST(TnnIo, UnknownShapeRejected)
{
    std::string text = columnToText(trainedColumn());
    auto pos = text.find("shape biexp");
    text.replace(pos, 11, "shape magic");
    EXPECT_THROW(columnFromText(text), std::invalid_argument);
}

} // namespace
} // namespace st
