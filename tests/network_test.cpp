/**
 * @file
 * Tests for the feedforward network IR (paper Sec. III.C): builder
 * validation, primitive evaluation, the Fig. 6 example blocks, config
 * (micro-weight) nodes, composition via append, and statistics.
 */

#include <gtest/gtest.h>

#include "core/network.hpp"
#include "core/network_dot.hpp"
#include "test_helpers.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

TEST(Network, InputsAreIdentity)
{
    Network net(3);
    net.markOutput(net.input(0));
    net.markOutput(net.input(2));
    auto out = net.evaluate(V({4, 5, kNo}));
    EXPECT_EQ(out, V({4, kNo}));
}

TEST(Network, IncBlock)
{
    // Fig. 6a: the inc block emits one unit after its input; chaining c
    // of them adds a constant c.
    Network net(1);
    net.markOutput(net.inc(net.input(0)));
    net.markOutput(net.inc(net.input(0), 5));
    EXPECT_EQ(net.evaluate(V({3})), V({4, 8}));
    EXPECT_EQ(net.evaluate(V({kNo})), V({kNo, kNo}));
}

TEST(Network, MinBlock)
{
    // Fig. 6a: min emits at the time of the first-arriving input spike.
    Network net(2);
    net.markOutput(net.min(net.input(0), net.input(1)));
    EXPECT_EQ(net.evaluate(V({4, 2}))[0], 2_t);
    EXPECT_EQ(net.evaluate(V({kNo, 2}))[0], 2_t);
    EXPECT_EQ(net.evaluate(V({kNo, kNo}))[0], INF);
}

TEST(Network, LtBlock)
{
    // Fig. 6a: lt emits input a iff a arrives strictly earlier than b.
    Network net(2);
    net.markOutput(net.lt(net.input(0), net.input(1)));
    EXPECT_EQ(net.evaluate(V({2, 4}))[0], 2_t);
    EXPECT_EQ(net.evaluate(V({4, 2}))[0], INF);
    EXPECT_EQ(net.evaluate(V({3, 3}))[0], INF);
    EXPECT_EQ(net.evaluate(V({3, kNo}))[0], 3_t);
}

TEST(Network, MaxBlock)
{
    Network net(2);
    net.markOutput(net.max(net.input(0), net.input(1)));
    EXPECT_EQ(net.evaluate(V({2, 4}))[0], 4_t);
    EXPECT_EQ(net.evaluate(V({2, kNo}))[0], INF);
}

TEST(Network, NaryMinMax)
{
    Network net(4);
    std::vector<NodeId> all{net.input(0), net.input(1), net.input(2),
                            net.input(3)};
    net.markOutput(net.min(std::span<const NodeId>(all)));
    net.markOutput(net.max(std::span<const NodeId>(all)));
    auto out = net.evaluate(V({7, 3, 9, 5}));
    EXPECT_EQ(out, V({3, 9}));
}

TEST(Network, Fig6bStyleComposition)
{
    // A small composed network in the spirit of Fig. 6b: y = lt(min(a,
    // b) + 1, c). Hand-derived values below.
    Network net(3);
    NodeId m = net.min(net.input(0), net.input(1));
    NodeId d = net.inc(m, 1);
    NodeId y = net.lt(d, net.input(2));
    net.markOutput(y);
    // min(2,5)=2, +1=3, 3 < 4 -> 3.
    EXPECT_EQ(net.evaluate(V({2, 5, 4}))[0], 3_t);
    // min(2,5)=2, +1=3, 3 < 3 fails -> inf.
    EXPECT_EQ(net.evaluate(V({2, 5, 3}))[0], INF);
    // c absent -> 3 < inf -> 3.
    EXPECT_EQ(net.evaluate(V({2, 5, kNo}))[0], 3_t);
}

TEST(Network, ConfigNodesProgramBehavior)
{
    Network net(1);
    NodeId mu = net.config(INF);
    net.markOutput(net.lt(net.input(0), mu));
    EXPECT_EQ(net.evaluate(V({5}))[0], 5_t); // enabled
    net.setConfig(mu, 0_t);
    EXPECT_EQ(net.evaluate(V({5}))[0], INF); // disabled
    EXPECT_EQ(net.getConfig(mu), 0_t);
}

TEST(Network, ConfigAccessorsRejectNonConfig)
{
    Network net(1);
    NodeId inc = net.inc(net.input(0));
    EXPECT_THROW(net.setConfig(inc, INF), std::invalid_argument);
    EXPECT_THROW(net.getConfig(inc), std::invalid_argument);
    EXPECT_THROW(net.setConfig(net.input(0), INF), std::invalid_argument);
}

TEST(Network, BuilderRejectsBadIds)
{
    Network net(2);
    EXPECT_THROW(net.input(2), std::out_of_range);
    EXPECT_THROW(net.inc(99), std::out_of_range);
    EXPECT_THROW(net.min(0, 99), std::out_of_range);
    EXPECT_THROW(net.markOutput(99), std::out_of_range);
    EXPECT_THROW(net.min(std::span<const NodeId>{}),
                 std::invalid_argument);
}

TEST(Network, EvaluateRejectsArityMismatch)
{
    Network net(2);
    net.markOutput(net.input(0));
    EXPECT_THROW(net.evaluate(V({1})), std::invalid_argument);
}

TEST(Network, EvaluateAllExposesInternalValues)
{
    Network net(2);
    NodeId m = net.min(net.input(0), net.input(1));
    NodeId d = net.inc(m, 2);
    auto all = net.evaluateAll(V({4, 6}));
    EXPECT_EQ(all[m], 4_t);
    EXPECT_EQ(all[d], 6_t);
}

TEST(Network, CountsAndSize)
{
    Network net(2);
    net.inc(net.input(0), 3);
    net.min(net.input(0), net.input(1));
    net.lt(net.input(0), net.input(1));
    net.config(INF);
    EXPECT_EQ(net.size(), 6u);
    EXPECT_EQ(net.countOf(Op::Input), 2u);
    EXPECT_EQ(net.countOf(Op::Inc), 1u);
    EXPECT_EQ(net.countOf(Op::Min), 1u);
    EXPECT_EQ(net.countOf(Op::Lt), 1u);
    EXPECT_EQ(net.countOf(Op::Config), 1u);
    EXPECT_EQ(net.countOf(Op::Max), 0u);
}

TEST(Network, DepthIsLongestBlockPath)
{
    Network net(1);
    EXPECT_EQ(net.depth(), 0u);
    NodeId a = net.inc(net.input(0));
    NodeId b = net.inc(a);
    net.min(net.input(0), b);
    EXPECT_EQ(net.depth(), 3u); // inc -> inc -> min
}

TEST(Network, TotalIncStages)
{
    Network net(1);
    net.inc(net.input(0), 3);
    net.inc(net.input(0), 0);
    net.inc(net.input(0), 7);
    EXPECT_EQ(net.totalIncStages(), 10u);
}

TEST(Network, AppendEmbedsSubnetwork)
{
    // sub computes lt(x0 + 2, x1).
    Network sub(2);
    sub.markOutput(sub.lt(sub.inc(sub.input(0), 2), sub.input(1)));

    Network net(2);
    NodeId m = net.min(net.input(0), net.input(1));
    std::vector<NodeId> actuals{m, net.input(1)};
    auto outs = net.append(sub, actuals);
    ASSERT_EQ(outs.size(), 1u);
    net.markOutput(outs[0]);

    // min(1,5)=1, +2=3, 3<5 -> 3.
    EXPECT_EQ(net.evaluate(V({1, 5}))[0], 3_t);
    // min(4,5)=4, +2=6, 6<5 fails -> inf.
    EXPECT_EQ(net.evaluate(V({4, 5}))[0], INF);
}

TEST(Network, AppendCopiesConfigIndependently)
{
    Network sub(1);
    NodeId mu = sub.config(INF);
    sub.markOutput(sub.lt(sub.input(0), mu));

    Network net(1);
    std::vector<NodeId> actuals{net.input(0)};
    auto outs1 = net.append(sub, actuals);
    auto outs2 = net.append(sub, actuals);
    net.markOutput(outs1[0]);
    net.markOutput(outs2[0]);

    // Disable only the second copy's micro-weight.
    NodeId mu2 = net.nodes()[outs2[0]].fanin[1];
    net.setConfig(mu2, 0_t);
    auto out = net.evaluate(V({4}));
    EXPECT_EQ(out[0], 4_t);
    EXPECT_EQ(out[1], INF);
}

TEST(Network, AppendRejectsWrongActualCount)
{
    Network sub(2);
    sub.markOutput(sub.min(sub.input(0), sub.input(1)));
    Network net(1);
    std::vector<NodeId> actuals{net.input(0)};
    EXPECT_THROW(net.append(sub, actuals), std::invalid_argument);
}

TEST(Network, LabelsRoundTrip)
{
    Network net(1);
    NodeId a = net.inc(net.input(0));
    net.setLabel(a, "delay");
    EXPECT_EQ(net.label(a), "delay");
    EXPECT_EQ(net.label(net.input(0)), "");
}

TEST(Network, DotExportContainsStructure)
{
    Network net(2);
    NodeId m = net.min(net.input(0), net.input(1));
    net.setLabel(m, "first");
    net.markOutput(m);
    std::string dot = toDot(net, "demo");
    EXPECT_NE(dot.find("digraph demo"), std::string::npos);
    EXPECT_NE(dot.find("min"), std::string::npos);
    EXPECT_NE(dot.find("(first)"), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n2"), std::string::npos);
    EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
}

TEST(Network, DotExportLabelsLtPorts)
{
    Network net(2);
    net.markOutput(net.lt(net.input(0), net.input(1)));
    std::string dot = toDot(net);
    EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
    EXPECT_NE(dot.find("label=\"b\""), std::string::npos);
}

TEST(Network, OpNames)
{
    EXPECT_STREQ(opName(Op::Input), "input");
    EXPECT_STREQ(opName(Op::Config), "config");
    EXPECT_STREQ(opName(Op::Inc), "inc");
    EXPECT_STREQ(opName(Op::Min), "min");
    EXPECT_STREQ(opName(Op::Max), "max");
    EXPECT_STREQ(opName(Op::Lt), "lt");
}

} // namespace
} // namespace st
