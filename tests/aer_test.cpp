/**
 * @file
 * Tests for Address-Event Representation streams (paper Sec. II.C):
 * event ordering, window slicing into volleys, and first-event-per-
 * address semantics.
 */

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "tnn/aer.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

TEST(Aer, PushKeepsTimeOrder)
{
    AerStream s(4);
    s.push(0, 1);
    s.push(3, 0);
    s.push(3, 2);
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s.endTime(), 3u);
    EXPECT_THROW(s.push(2, 1), std::invalid_argument); // time regression
}

TEST(Aer, RejectsBadAddress)
{
    AerStream s(2);
    EXPECT_THROW(s.push(0, 2), std::out_of_range);
    EXPECT_THROW(AerStream(0), std::invalid_argument);
}

TEST(Aer, EmptyStream)
{
    AerStream s(3);
    EXPECT_EQ(s.endTime(), 0u);
    EXPECT_TRUE(s.sliceWindows(10).empty());
}

TEST(Aer, SliceSingleWindow)
{
    AerStream s(3);
    s.push(1, 0);
    s.push(4, 2);
    auto windows = s.sliceWindows(10);
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_EQ(windows[0], V({1, kNo, 4}));
}

TEST(Aer, SliceUsesWindowRelativeTimes)
{
    AerStream s(2);
    s.push(12, 0);
    s.push(15, 1);
    auto windows = s.sliceWindows(10);
    ASSERT_EQ(windows.size(), 2u);
    EXPECT_EQ(windows[0], V({kNo, kNo}));
    EXPECT_EQ(windows[1], V({2, 5}));
}

TEST(Aer, FirstEventPerAddressWins)
{
    // Temporal coding: only the first spike per line carries the value.
    AerStream s(2);
    s.push(1, 0);
    s.push(3, 0);
    s.push(7, 0);
    auto windows = s.sliceWindows(10);
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_EQ(windows[0], V({1, kNo}));
}

TEST(Aer, WindowBoundaryIsHalfOpen)
{
    AerStream s(1);
    s.push(9, 0);
    s.push(10, 0);
    auto windows = s.sliceWindows(10);
    ASSERT_EQ(windows.size(), 2u);
    EXPECT_EQ(windows[0], V({9}));
    EXPECT_EQ(windows[1], V({0})); // t=10 lands in the second window
}

TEST(Aer, MultipleWindowsCoverWholeStream)
{
    AerStream s(2);
    for (uint64_t w = 0; w < 5; ++w)
        s.push(w * 8 + 2, static_cast<uint32_t>(w % 2));
    auto windows = s.sliceWindows(8);
    ASSERT_EQ(windows.size(), 5u);
    for (size_t w = 0; w < 5; ++w) {
        EXPECT_EQ(windows[w][w % 2], 2_t);
        EXPECT_EQ(windows[w][1 - (w % 2)], INF);
    }
}

TEST(Aer, RejectsZeroWindow)
{
    AerStream s(1);
    s.push(0, 0);
    EXPECT_THROW(s.sliceWindows(0), std::invalid_argument);
}

TEST(Aer, EventsAccessor)
{
    AerStream s(3);
    s.push(2, 1);
    ASSERT_EQ(s.events().size(), 1u);
    EXPECT_EQ(s.events()[0], (AerEvent{2, 1}));
    EXPECT_EQ(s.numAddresses(), 3u);
}

} // namespace
} // namespace st
