/**
 * @file
 * Tests for GRL netlist construction (paper Sec. V, Fig. 16): builder
 * validation, gate accounting, and stage totals.
 */

#include <gtest/gtest.h>

#include "grl/netlist.hpp"

namespace st::grl {
namespace {

TEST(Circuit, InputsAreWires)
{
    Circuit c(3);
    EXPECT_EQ(c.numInputs(), 3u);
    EXPECT_EQ(c.input(0), 0u);
    EXPECT_EQ(c.input(2), 2u);
    EXPECT_THROW(c.input(3), std::out_of_range);
}

TEST(Circuit, BuilderValidatesOperands)
{
    Circuit c(1);
    EXPECT_THROW(c.andGate(0, 9), std::out_of_range);
    EXPECT_THROW(c.orGate(9, 0), std::out_of_range);
    EXPECT_THROW(c.ltCell(0, 9), std::out_of_range);
    EXPECT_THROW(c.delay(9, 1), std::out_of_range);
    EXPECT_THROW(c.markOutput(9), std::out_of_range);
    EXPECT_THROW(c.andGate(std::span<const WireId>{}),
                 std::invalid_argument);
    EXPECT_THROW(c.orGate(std::span<const WireId>{}),
                 std::invalid_argument);
}

TEST(Circuit, GateCounting)
{
    Circuit c(2);
    c.andGate(c.input(0), c.input(1));
    c.orGate(c.input(0), c.input(1));
    c.ltCell(c.input(0), c.input(1));
    c.delay(c.input(0), 3);
    c.constant(INF);
    EXPECT_EQ(c.size(), 7u);
    EXPECT_EQ(c.countOf(GateKind::Input), 2u);
    EXPECT_EQ(c.countOf(GateKind::And), 1u);
    EXPECT_EQ(c.countOf(GateKind::Or), 1u);
    EXPECT_EQ(c.countOf(GateKind::LtCell), 1u);
    EXPECT_EQ(c.countOf(GateKind::Delay), 1u);
    EXPECT_EQ(c.countOf(GateKind::Const), 1u);
}

TEST(Circuit, TotalStagesSumsDelays)
{
    Circuit c(1);
    c.delay(c.input(0), 3);
    c.delay(c.input(0), 0);
    c.delay(c.input(0), 7);
    EXPECT_EQ(c.totalStages(), 10u);
}

TEST(Circuit, OutputsAreOrdered)
{
    Circuit c(2);
    WireId a = c.andGate(c.input(0), c.input(1));
    WireId o = c.orGate(c.input(0), c.input(1));
    c.markOutput(o);
    c.markOutput(a);
    EXPECT_EQ(c.outputs(), (std::vector<WireId>{o, a}));
}

TEST(Circuit, NaryGates)
{
    Circuit c(3);
    std::vector<WireId> ins{c.input(0), c.input(1), c.input(2)};
    WireId a = c.andGate(std::span<const WireId>(ins));
    EXPECT_EQ(c.gates()[a].fanin.size(), 3u);
}

TEST(Circuit, GateKindNames)
{
    EXPECT_STREQ(gateKindName(GateKind::Input), "input");
    EXPECT_STREQ(gateKindName(GateKind::Const), "const");
    EXPECT_STREQ(gateKindName(GateKind::And), "and");
    EXPECT_STREQ(gateKindName(GateKind::Or), "or");
    EXPECT_STREQ(gateKindName(GateKind::LtCell), "ltcell");
    EXPECT_STREQ(gateKindName(GateKind::Delay), "delay");
}

} // namespace
} // namespace st::grl
