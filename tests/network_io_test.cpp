/**
 * @file
 * Tests for network text serialization: round-trips, format details,
 * and malformed-input rejection.
 */

#include <gtest/gtest.h>

#include "core/network_io.hpp"
#include "core/synthesis.hpp"
#include "neuron/srm0_network.hpp"
#include "test_helpers.hpp"

namespace st {
namespace {

using testing::V;
using testing::kNo;

Network
sampleNetwork()
{
    Network net(3);
    NodeId m = net.min(net.input(0), net.input(1));
    NodeId d = net.inc(m, 2);
    NodeId y = net.lt(d, net.input(2));
    NodeId mu = net.config(INF);
    NodeId g = net.lt(y, mu);
    net.setLabel(g, "gated out");
    net.markOutput(g);
    return net;
}

TEST(NetworkIo, TextContainsStructure)
{
    std::string text = networkToText(sampleNetwork());
    EXPECT_NE(text.find("stnet 1"), std::string::npos);
    EXPECT_NE(text.find("inputs 3"), std::string::npos);
    EXPECT_NE(text.find("n3 = min n0 n1"), std::string::npos);
    EXPECT_NE(text.find("n4 = inc n3 2"), std::string::npos);
    EXPECT_NE(text.find("n6 = config inf"), std::string::npos);
    EXPECT_NE(text.find("label n7 gated out"), std::string::npos);
    EXPECT_NE(text.find("output n7"), std::string::npos);
}

TEST(NetworkIo, RoundTripPreservesSemantics)
{
    Network net = sampleNetwork();
    Network back = networkFromText(networkToText(net));
    EXPECT_EQ(back.size(), net.size());
    EXPECT_EQ(back.numInputs(), net.numInputs());
    EXPECT_EQ(back.outputs(), net.outputs());
    testing::forAllVolleys(3, 4, [&](const std::vector<Time> &u) {
        EXPECT_EQ(back.evaluate(u), net.evaluate(u));
    });
}

TEST(NetworkIo, RoundTripPreservesLabels)
{
    Network back = networkFromText(networkToText(sampleNetwork()));
    EXPECT_EQ(back.label(back.outputs()[0]), "gated out");
}

TEST(NetworkIo, RoundTripsRandomNetworks)
{
    Rng rng(808);
    for (int trial = 0; trial < 20; ++trial) {
        Network net = testing::randomNetwork(rng, 3, 14);
        Network back = networkFromText(networkToText(net));
        for (int s = 0; s < 30; ++s) {
            auto x = testing::randomVolley(rng, 3, 9);
            EXPECT_EQ(back.evaluate(x), net.evaluate(x));
        }
        // Idempotent serialization.
        EXPECT_EQ(networkToText(back), networkToText(net));
    }
}

TEST(NetworkIo, RoundTripsSrm0Construction)
{
    ResponseFunction r = ResponseFunction::biexponential(2, 4.0, 1.0);
    Network net = buildSrm0Network({r, r}, 2);
    Network back = networkFromText(networkToText(net));
    Rng rng(9);
    for (int s = 0; s < 50; ++s) {
        auto x = testing::randomVolley(rng, 2, 8);
        EXPECT_EQ(back.evaluate(x), net.evaluate(x));
    }
}

TEST(NetworkIo, ParsesCommentsAndBlankLines)
{
    const std::string text = "# a comment\n"
                             "stnet 1\n"
                             "\n"
                             "inputs 2\n"
                             "n2 = min n0 n1  # trailing comment\n"
                             "output n2\n";
    Network net = networkFromText(text);
    EXPECT_EQ(net.evaluate(V({4, 2}))[0], 2_t);
}

TEST(NetworkIo, ParsesFiniteConfig)
{
    const std::string text = "stnet 1\ninputs 1\n"
                             "n1 = config 0\n"
                             "n2 = lt n0 n1\n"
                             "output n2\n";
    Network net = networkFromText(text);
    EXPECT_EQ(net.evaluate(V({3}))[0], INF); // gated off
}

TEST(NetworkIo, RejectsMalformedInput)
{
    EXPECT_THROW(networkFromText(""), std::invalid_argument);
    EXPECT_THROW(networkFromText("stnet 2\ninputs 1\n"),
                 std::invalid_argument);
    EXPECT_THROW(networkFromText("stnet 1\n"), std::invalid_argument);
    EXPECT_THROW(networkFromText("stnet 1\ninputs 1\nn1 = bogus n0\n"),
                 std::invalid_argument);
    EXPECT_THROW(networkFromText("stnet 1\ninputs 1\nn1 = lt n0\n"),
                 std::invalid_argument);
    EXPECT_THROW(
        networkFromText("stnet 1\ninputs 1\nn5 = inc n0 1\n"),
        std::invalid_argument); // id out of sequence
    // A dangling reference is rewrapped with the loader's line context
    // (the builder's bare std::out_of_range would lose the line number).
    EXPECT_THROW(
        networkFromText("stnet 1\ninputs 1\nn1 = inc n9 1\n"),
        std::invalid_argument);
}

} // namespace
} // namespace st
