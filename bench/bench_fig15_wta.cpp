/**
 * @file
 * Experiment F15 — paper Fig. 15: winner-take-all lateral inhibition.
 *
 * Regenerates the tau-WTA survivor curve (how many spikes pass as the
 * inhibition window widens, for volleys of varying temporal spread) and
 * the construction's gate cost per width. Times the primitive network
 * against the pure functional form.
 */

#include "bench_common.hpp"

#include "neuron/wta.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

void
printFigure()
{
    std::cout << "F15 | Fig. 15: survivors vs inhibition window tau "
                 "(32-line volleys, spikes uniform in [0, spread))\n";
    AsciiTable t({"spread", "tau=1", "tau=2", "tau=4", "tau=8"});
    Rng rng(15);
    const size_t lines = 32, trials = 200;
    for (Time::rep spread : {2, 4, 8, 16}) {
        std::vector<double> avg;
        for (Time::rep tau : {1, 2, 4, 8}) {
            size_t survivors = 0;
            Rng local(spread * 100 + tau);
            for (size_t s = 0; s < trials; ++s) {
                std::vector<Time> x(lines);
                for (Time &v : x)
                    v = Time(local.below(spread));
                survivors += spikeCount(applyWta(x, tau));
            }
            avg.push_back(static_cast<double>(survivors) / trials);
            bench::recordValue("fig15_wta",
                               "spread=" + std::to_string(spread) +
                                   ",tau=" + std::to_string(tau),
                               "avg_survivors", avg.back());
        }
        t.row(spread, avg[0], avg[1], avg[2], avg[3]);
    }
    t.writeTo(std::cout);
    std::cout << "shape check: survivors rise with tau and fall with "
                 "spread; tau=1 passes only the relative-time-0 spikes "
                 "(the paper's 1-WTA).\n\n";

    std::cout << "Construction cost (gates) vs width:\n";
    AsciiTable cost({"width n", "min", "inc", "lt", "total nodes"});
    for (size_t n : {8, 32, 128}) {
        Network net = wtaNetwork(n, 1);
        cost.row(n, net.countOf(Op::Min), net.countOf(Op::Inc),
                 net.countOf(Op::Lt), net.size());
    }
    cost.writeTo(std::cout);
    std::cout << "shape check: one lt per line + one shared min/inc "
                 "pair (linear cost).\n";
}

void
BM_WtaNetwork(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    Network net = wtaNetwork(n, 2);
    Rng rng(16);
    std::vector<Time> x(n);
    for (Time &v : x)
        v = Time(rng.below(8));
    for (auto _ : state) {
        auto out = net.evaluate(x);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n));
}
BENCHMARK(BM_WtaNetwork)->Arg(32)->Arg(256)->Arg(2048);

void
BM_WtaPureFunction(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    Rng rng(17);
    std::vector<Time> x(n);
    for (Time &v : x)
        v = Time(rng.below(8));
    for (auto _ : state) {
        auto out = applyWta(x, 2);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n));
}
BENCHMARK(BM_WtaPureFunction)->Arg(32)->Arg(256)->Arg(2048);

void
BM_KWta(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    Rng rng(18);
    std::vector<Time> x(n);
    for (Time &v : x)
        v = Time(rng.below(64));
    for (auto _ : state) {
        auto out = applyKWta(x, 4);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n));
}
BENCHMARK(BM_KWta)->Arg(32)->Arg(2048);

} // namespace

ST_BENCH_MAIN(printFigure)
