/**
 * @file
 * Experiment E4 — paper Sec. II.A and Sec. VI point 4: low-resolution
 * data suffices (and is the only practical regime).
 *
 * Three series reproduce the resolution arguments:
 *  - purity vs synaptic weight resolution (Pfeil et al. [43]: ~3-4 bits
 *    of weight are enough; 1 bit is not);
 *  - purity vs temporal resolution of the input code (Hopfield-style
 *    2-4 bit spike timing windows), with the exponential message-time
 *    cost alongside;
 *  - the weight/time resolution coupling the paper describes ("there is
 *    little to be gained by weights much more precise than the spike
 *    times").
 */

#include "bench_common.hpp"

#include <cmath>
#include <sstream>

#include "tnn/datasets.hpp"
#include "tnn/metrics.hpp"
#include "tnn/tnn_network.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

std::optional<size_t>
winnerOf(const std::vector<Time> &fired)
{
    std::optional<size_t> winner;
    Time best = INF;
    for (size_t j = 0; j < fired.size(); ++j) {
        if (fired[j] < best) {
            best = fired[j];
            winner = j;
        }
    }
    return winner;
}

double
purityFor(size_t max_weight, Time::rep time_span,
          ResponseFunction::Amp threshold)
{
    PatternSetParams dp;
    dp.numClasses = 4;
    dp.numLines = 16;
    dp.timeSpan = time_span;
    dp.jitter = 0.4;
    dp.dropProb = 0.03;
    dp.seed = 2718;
    PatternDataset data(dp);

    ColumnParams cp;
    cp.numInputs = 16;
    cp.numNeurons = 8;
    cp.threshold = threshold;
    cp.maxWeight = max_weight;
    cp.fatigue = 8;
    cp.seed = 99;
    Column col(cp);
    SimplifiedStdp rule(0.06, 0.045);
    for (const auto &s : data.sampleMany(800))
        col.trainStep(s.volley, rule);

    ConfusionMatrix m(cp.numNeurons, dp.numClasses);
    for (const auto &s : data.sampleMany(300))
        m.add(winnerOf(col.rawFireTimes(s.volley)), s.label);
    return m.purity();
}

void
printFigure()
{
    std::cout << "E4a | clustering purity vs synaptic weight "
                 "resolution (3-bit input times)\n";
    AsciiTable w({"weight levels", "weight bits", "purity"});
    for (size_t levels : {1, 3, 7, 15, 31}) {
        // Scale the threshold with the weight range so selectivity is
        // comparable: theta = 2 * levels.
        auto theta = static_cast<ResponseFunction::Amp>(2 * levels);
        double bits = std::log2(static_cast<double>(levels + 1));
        double purity = purityFor(levels, 7, theta);
        w.row(levels, bits, purity);
        bench::recordValue("resolution",
                           "weight_levels=" + std::to_string(levels),
                           "purity", purity);
    }
    w.writeTo(std::cout);
    std::cout << "shape check: 3-bit weights already saturate; 1-bit "
                 "weights lose accuracy (Pfeil et al.'s 4-bit-is-enough "
                 "claim).\n\n";

    std::cout << "E4b | purity vs temporal resolution (3-bit weights), "
                 "with the volley transmission cost\n";
    AsciiTable t({"time span", "time bits", "message time 2^n",
                  "purity"});
    for (Time::rep span : {1, 3, 7, 15, 31}) {
        double bits = std::log2(static_cast<double>(span + 1));
        double purity = purityFor(7, span, 14);
        t.row(span, bits, span + 1, purity);
        bench::recordValue("resolution",
                           "time_span=" + std::to_string(span),
                           "purity", purity);
    }
    t.writeTo(std::cout);
    std::cout << "shape check: 2-3 bits of spike timing already "
                 "separate the classes while message time doubles per "
                 "extra bit — the paper's case for 3-4 bit operation.\n\n";

    std::cout << "E4c | weight/time resolution coupling\n";
    AsciiTable c({"time bits \\ weight bits", "1", "2", "3", "4"});
    for (Time::rep span : {1, 3, 7, 15}) {
        std::vector<std::string> row{std::to_string(
            static_cast<int>(std::log2(span + 1.0)))};
        for (size_t levels : {1, 3, 7, 15}) {
            auto theta =
                static_cast<ResponseFunction::Amp>(2 * levels);
            std::ostringstream cell;
            cell.precision(2);
            cell << std::fixed << purityFor(levels, span, theta);
            row.push_back(cell.str());
        }
        c.addRow(row);
    }
    c.writeTo(std::cout);
    std::cout << "shape check: the diagonal matters — weights much "
                 "finer than the time code buy nothing (the paper's "
                 "coupling observation).\n";
}

void
BM_TrainAtResolution(benchmark::State &state)
{
    const auto levels = static_cast<size_t>(state.range(0));
    PatternSetParams dp;
    dp.numClasses = 4;
    dp.numLines = 16;
    dp.seed = 5;
    PatternDataset data(dp);
    ColumnParams cp;
    cp.numInputs = 16;
    cp.numNeurons = 8;
    cp.threshold = static_cast<ResponseFunction::Amp>(2 * levels);
    cp.maxWeight = levels;
    cp.seed = 9;
    Column col(cp);
    SimplifiedStdp rule(0.06, 0.045);
    auto samples = data.sampleMany(64);
    size_t i = 0;
    for (auto _ : state) {
        auto r = col.trainStep(samples[i++ & 63].volley, rule);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_TrainAtResolution)->Arg(1)->Arg(7)->Arg(31);

} // namespace

ST_BENCH_MAIN(printFigure)
