/**
 * @file
 * Experiment F8 — paper Fig. 8 / Lemma 2: max from min and lt.
 *
 * Regenerates the three-case analysis of Fig. 8, verifies the
 * construction exhaustively, reports its cost (which the paper calls
 * "non-obvious"), and measures the cost of lowering max-heavy networks
 * to the strict {min, inc, lt} basis.
 */

#include "bench_common.hpp"

#include "core/synthesis.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

void
printFigure()
{
    Network net = maxFromMinLtNetwork();
    std::cout << "F8 | Fig. 8 / Lemma 2: max(a,b) = "
                 "min(lt(b, lt(b,a)), lt(a, lt(a,b)))\n";
    AsciiTable cases({"case", "a", "b", "network output", "expected"});
    cases.row("a < b", 2, 5, net.evaluate(std::vector<Time>{2_t, 5_t})[0],
              5);
    cases.row("a = b", 4, 4, net.evaluate(std::vector<Time>{4_t, 4_t})[0],
              4);
    cases.row("a > b", 7, 3, net.evaluate(std::vector<Time>{7_t, 3_t})[0],
              7);
    cases.row("b = inf", 3, INF,
              net.evaluate(std::vector<Time>{3_t, INF})[0], INF);
    cases.writeTo(std::cout);

    size_t mismatches = 0, total = 0;
    for (Time::rep a = 0; a <= 20; ++a) {
        for (Time::rep b = 0; b <= 20; ++b) {
            std::vector<Time> x{Time(a), Time(b)};
            mismatches += net.evaluate(x)[0] != tmax(x[0], x[1]);
            ++total;
        }
    }
    AsciiTable cost({"metric", "value"});
    cost.row("lt blocks", net.countOf(Op::Lt));
    cost.row("min blocks", net.countOf(Op::Min));
    cost.row("inc blocks", net.countOf(Op::Inc));
    cost.row("logic depth", net.depth());
    cost.row("exhaustive mismatches (0..20)^2", mismatches);
    cost.row("cases checked", total);
    cost.writeTo(std::cout);
    bench::recordValue("fig08_max", "lemma2", "lt_blocks",
                       static_cast<double>(net.countOf(Op::Lt)));
    bench::recordValue("fig08_max", "lemma2", "logic_depth",
                       static_cast<double>(net.depth()));
    bench::recordValue("fig08_max", "lemma2", "mismatches",
                       static_cast<double>(mismatches));
    std::cout << "shape check: 0 mismatches; the construction costs "
                 "4 lt + 1 min per max (vs 1 native block).\n";
}

void
BM_NativeMax(benchmark::State &state)
{
    Network net(2);
    net.markOutput(net.max(net.input(0), net.input(1)));
    std::vector<Time> x{3_t, 8_t};
    for (auto _ : state) {
        auto out = net.evaluate(x);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_NativeMax);

void
BM_Lemma2Max(benchmark::State &state)
{
    Network net = maxFromMinLtNetwork();
    std::vector<Time> x{3_t, 8_t};
    for (auto _ : state) {
        auto out = net.evaluate(x);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_Lemma2Max);

void
BM_LowerMaxTransform(benchmark::State &state)
{
    // Lower a max-reduction tree of the given width.
    const size_t width = static_cast<size_t>(state.range(0));
    Network net(width);
    std::vector<NodeId> all;
    for (size_t i = 0; i < width; ++i)
        all.push_back(net.input(i));
    net.markOutput(net.max(std::span<const NodeId>(all)));
    for (auto _ : state) {
        Network lowered = lowerMax(net);
        benchmark::DoNotOptimize(lowered);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(width));
}
BENCHMARK(BM_LowerMaxTransform)->Arg(8)->Arg(64)->Arg(512);

} // namespace

ST_BENCH_MAIN(printFigure)
