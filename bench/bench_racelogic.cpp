/**
 * @file
 * Experiment E2 — paper Sec. V / Madhavan [31]: race-logic shortest
 * paths and edit distance.
 *
 * Regenerates the agreement-and-cost series: race network vs Dijkstra
 * on random DAGs and grids (agreement must be total), circuit size and
 * computation latency (which IS the answer), and edit-distance lattices
 * vs the DP baseline. Times all three evaluators.
 */

#include "bench_common.hpp"

#include "grl/compile.hpp"
#include "grl/logic_sim.hpp"
#include "racelogic/dijkstra.hpp"
#include "racelogic/edit_distance.hpp"
#include "racelogic/race_path.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace st;
using namespace st::racelogic;

namespace {

void
printFigure()
{
    std::cout << "E2a | race network vs Dijkstra on grid DAGs "
                 "(weights 0..7)\n";
    AsciiTable t({"grid", "vertices", "network nodes", "delay stages",
                  "agreement", "max distance (=latency)"});
    Rng rng(40);
    for (size_t side : {4, 8, 12, 16}) {
        Graph g = Graph::grid(rng, side, side, 7);
        Network net = buildRaceNetwork(g, 0);
        std::vector<Time> start{0_t};
        auto race = net.evaluate(start);
        auto base = dijkstra(g, 0);
        size_t agree = 0;
        Time::rep worst = 0;
        for (size_t v = 0; v < g.numVertices(); ++v) {
            agree += race[v] == base[v];
            if (race[v].isFinite())
                worst = std::max(worst, race[v].value());
        }
        t.row(std::to_string(side) + "x" + std::to_string(side),
              g.numVertices(), net.size(), net.totalIncStages(),
              std::to_string(agree) + "/" +
                  std::to_string(g.numVertices()),
              worst);
        std::string cfg = "grid=" + std::to_string(side) + "x" +
                          std::to_string(side);
        bench::recordValue("racelogic", cfg, "agreements",
                           static_cast<double>(agree));
        bench::recordValue("racelogic", cfg, "vertices",
                           static_cast<double>(g.numVertices()));
        bench::recordValue("racelogic", cfg, "latency",
                           static_cast<double>(worst));
    }
    t.writeTo(std::cout);
    std::cout << "shape check: total agreement; latency equals the "
                 "longest shortest-path (the value IS the time).\n\n";

    std::cout << "E2b | temporal wavefront on general graphs vs "
                 "Dijkstra\n";
    AsciiTable w({"vertices", "edges", "agreement"});
    for (size_t n : {32, 128, 512}) {
        Graph g(n);
        Rng lr(n);
        for (size_t e = 0; e < n * 4; ++e) {
            g.addEdge(static_cast<uint32_t>(lr.below(n)),
                      static_cast<uint32_t>(lr.below(n)), lr.below(10));
        }
        auto race = raceWavefront(g, 0);
        auto base = dijkstra(g, 0);
        size_t agree = 0;
        for (size_t v = 0; v < n; ++v)
            agree += race[v] == base[v];
        w.row(n, g.numEdges(),
              std::to_string(agree) + "/" + std::to_string(n));
    }
    w.writeTo(std::cout);

    std::cout << "\nE2c | edit distance: race lattice vs DP "
                 "(random DNA strings)\n";
    AsciiTable ed({"|a|", "|b|", "lattice nodes", "mismatches (50 "
                                                  "pairs)"});
    Rng dna(41);
    const std::string alphabet = "ACGT";
    for (size_t len : {4, 8, 16}) {
        size_t mismatches = 0, nodes = 0;
        for (int pair = 0; pair < 50; ++pair) {
            std::string a, b;
            for (size_t i = 0; i < len; ++i) {
                a += alphabet[dna.below(4)];
                b += alphabet[dna.below(4)];
            }
            Network net = buildEditDistanceNetwork(a, b);
            nodes = net.size();
            std::vector<Time> start{0_t};
            mismatches +=
                net.evaluate(start)[0] != Time(editDistanceDp(a, b));
        }
        ed.row(len, len, nodes, mismatches);
    }
    ed.writeTo(std::cout);
    std::cout << "shape check: 0 mismatches; lattice nodes ~ |a|x|b| "
                 "(one min per cell).\n";
}

void
BM_RaceNetworkGrid(benchmark::State &state)
{
    const size_t side = static_cast<size_t>(state.range(0));
    Rng rng(42);
    Graph g = Graph::grid(rng, side, side, 7);
    Network net = buildRaceNetwork(g, 0);
    std::vector<Time> start{0_t};
    for (auto _ : state) {
        auto out = net.evaluate(start);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(g.numVertices()));
}
BENCHMARK(BM_RaceNetworkGrid)->Arg(8)->Arg(16)->Arg(32);

void
BM_DijkstraGrid(benchmark::State &state)
{
    const size_t side = static_cast<size_t>(state.range(0));
    Rng rng(43);
    Graph g = Graph::grid(rng, side, side, 7);
    for (auto _ : state) {
        auto out = dijkstra(g, 0);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(g.numVertices()));
}
BENCHMARK(BM_DijkstraGrid)->Arg(8)->Arg(16)->Arg(32);

void
BM_RaceWavefront(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    Graph g(n);
    Rng rng(44);
    for (size_t e = 0; e < n * 4; ++e) {
        g.addEdge(static_cast<uint32_t>(rng.below(n)),
                  static_cast<uint32_t>(rng.below(n)), rng.below(10));
    }
    for (auto _ : state) {
        auto out = raceWavefront(g, 0);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_RaceWavefront)->Arg(128)->Arg(1024);

void
BM_EditDistanceRace(benchmark::State &state)
{
    const size_t len = static_cast<size_t>(state.range(0));
    std::string a(len, 'A'), b(len, 'C');
    Rng rng(45);
    for (size_t i = 0; i < len; ++i) {
        a[i] = "ACGT"[rng.below(4)];
        b[i] = "ACGT"[rng.below(4)];
    }
    Network net = buildEditDistanceNetwork(a, b);
    std::vector<Time> start{0_t};
    for (auto _ : state) {
        auto out = net.evaluate(start);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_EditDistanceRace)->Arg(8)->Arg(32);

void
BM_EditDistanceDp(benchmark::State &state)
{
    const size_t len = static_cast<size_t>(state.range(0));
    std::string a(len, 'A'), b(len, 'C');
    Rng rng(46);
    for (size_t i = 0; i < len; ++i) {
        a[i] = "ACGT"[rng.below(4)];
        b[i] = "ACGT"[rng.below(4)];
    }
    for (auto _ : state) {
        uint64_t d = editDistanceDp(a, b);
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_EditDistanceDp)->Arg(8)->Arg(32);

} // namespace

ST_BENCH_MAIN(printFigure)
