/**
 * @file
 * Experiment F12 — paper Fig. 12: the SRM0 neuron from s-t primitives.
 *
 * Regenerates the construction-cost series (taps, comparators, lt rank
 * blocks, total nodes, depth) as synapse count grows, and runs the
 * reproduction's central agreement check: the Fig. 12 network vs the
 * numerical Fig. 1 reference on thousands of random volleys. Times both
 * implementations.
 */

#include "bench_common.hpp"

#include "neuron/srm0_network.hpp"
#include "neuron/srm0_reference.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

std::vector<ResponseFunction>
synapses(size_t q)
{
    std::vector<ResponseFunction> syn;
    for (size_t i = 0; i < q; ++i) {
        if (i % 4 == 3)
            syn.push_back(
                ResponseFunction::biexponential(2, 4.0, 1.0).negated());
        else
            syn.push_back(ResponseFunction::biexponential(3, 4.0, 1.0));
    }
    return syn;
}

void
printFigure()
{
    std::cout << "F12 | Fig. 12: SRM0 construction cost vs synapse "
                 "count (biexp responses, 1-in-4 inhibitory, theta = "
                 "synapses)\n";
    AsciiTable t({"synapses", "up taps", "down taps", "comparators",
                  "lt blocks", "total nodes", "depth"});
    for (size_t q : {2, 4, 8, 16, 32}) {
        auto stats = srm0NetworkStats(
            synapses(q), static_cast<ResponseFunction::Amp>(q));
        t.row(q, stats.upTaps, stats.downTaps, stats.comparators,
              stats.ltBlocks, stats.totalNodes, stats.depth);
    }
    t.writeTo(std::cout);
    std::cout << "shape check: the two sorters dominate "
                 "(O(T log^2 T) comparators for T taps).\n\n";

    std::cout << "Agreement: Fig. 12 network vs numerical reference "
                 "(Fig. 1):\n";
    AsciiTable agree({"synapses", "theta", "random volleys",
                      "agreements", "spikes produced"});
    Rng rng(12);
    for (size_t q : {3, 6, 10}) {
        auto syn = synapses(q);
        auto theta = static_cast<ResponseFunction::Amp>(q);
        Srm0Neuron ref(syn, theta);
        Network net = buildSrm0Network(syn, theta);
        size_t match = 0, fired = 0;
        const size_t probes = 2000;
        for (size_t s = 0; s < probes; ++s) {
            std::vector<Time> x(q);
            for (Time &v : x)
                v = rng.chance(0.2) ? INF : Time(rng.below(10));
            Time a = net.evaluate(x)[0];
            Time b = ref.fire(x);
            match += a == b;
            fired += b.isFinite();
        }
        agree.row(q, theta, probes, match, fired);
    }
    agree.writeTo(std::cout);
    std::cout << "shape check: agreements == volleys (exact cross-"
                 "domain equivalence).\n\n";

    std::cout << "Compiled lane-blocked plan vs graph interpreter "
                 "(both single-thread, identical outputs):\n";
    AsciiTable perf({"synapses", "volleys", "interp v/s",
                     "compiled v/s", "speedup"});
    Rng perf_rng(15);
    for (size_t q : {4, 16, 32}) {
        Network net = buildSrm0Network(
            synapses(q), static_cast<ResponseFunction::Amp>(q));
        const size_t probes = bench::scaled(4000, 25);
        std::vector<std::vector<Time>> volleys(probes);
        for (auto &x : volleys) {
            x.resize(q);
            for (Time &v : x)
                v = perf_rng.chance(0.2) ? INF
                                         : Time(perf_rng.below(10));
        }
        Stopwatch sw;
        for (const auto &x : volleys)
            benchmark::DoNotOptimize(net.evaluateInterpreted(x));
        double interp_secs = sw.seconds();
        sw.reset();
        // Same thread, same outputs: the compiled plan streams the
        // volleys through the lane-blocked batch engine.
        auto batched = net.evaluateBatch(volleys, 1);
        double compiled_secs = sw.seconds();
        benchmark::DoNotOptimize(batched);
        double vps = static_cast<double>(probes) / compiled_secs;
        double speedup = interp_secs / compiled_secs;
        perf.row(q, probes,
                 static_cast<double>(probes) / interp_secs, vps,
                 speedup);
        bench::record("fig12_srm0", "synapses=" + std::to_string(q),
                      vps, speedup);
    }
    perf.writeTo(std::cout);
    std::cout << "shape check: the compiled plan (DCE + inc fusion + "
                 "flat CSR operands) wins more as the network grows.\n";
}

void
BM_Srm0NetworkEvaluate(benchmark::State &state)
{
    const size_t q = static_cast<size_t>(state.range(0));
    Network net = buildSrm0Network(
        synapses(q), static_cast<ResponseFunction::Amp>(q));
    Rng rng(13);
    std::vector<Time> x(q);
    for (Time &v : x)
        v = Time(rng.below(8));
    for (auto _ : state) {
        auto out = net.evaluate(x);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_Srm0NetworkEvaluate)->Arg(4)->Arg(16)->Arg(32);

void
BM_Srm0NetworkEvaluateInterpreted(benchmark::State &state)
{
    // The pre-compile baseline: walks the node graph as built.
    const size_t q = static_cast<size_t>(state.range(0));
    Network net = buildSrm0Network(
        synapses(q), static_cast<ResponseFunction::Amp>(q));
    Rng rng(13);
    std::vector<Time> x(q);
    for (Time &v : x)
        v = Time(rng.below(8));
    for (auto _ : state) {
        auto out = net.evaluateInterpreted(x);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_Srm0NetworkEvaluateInterpreted)->Arg(4)->Arg(16)->Arg(32);

void
BM_Srm0ReferenceFire(benchmark::State &state)
{
    const size_t q = static_cast<size_t>(state.range(0));
    Srm0Neuron ref(synapses(q), static_cast<ResponseFunction::Amp>(q));
    Rng rng(14);
    std::vector<Time> x(q);
    for (Time &v : x)
        v = Time(rng.below(8));
    for (auto _ : state) {
        Time y = ref.fire(x);
        benchmark::DoNotOptimize(y);
    }
}
BENCHMARK(BM_Srm0ReferenceFire)->Arg(4)->Arg(16)->Arg(32);

void
BM_Srm0Build(benchmark::State &state)
{
    const size_t q = static_cast<size_t>(state.range(0));
    auto syn = synapses(q);
    for (auto _ : state) {
        Network net = buildSrm0Network(
            syn, static_cast<ResponseFunction::Amp>(q));
        benchmark::DoNotOptimize(net);
    }
}
BENCHMARK(BM_Srm0Build)->Arg(4)->Arg(16)->Arg(32);

} // namespace

ST_BENCH_MAIN(printFigure)
