/**
 * @file
 * Experiment F12 — paper Fig. 12: the SRM0 neuron from s-t primitives.
 *
 * Regenerates the construction-cost series (taps, comparators, lt rank
 * blocks, total nodes, depth) as synapse count grows, and runs the
 * reproduction's central agreement check: the Fig. 12 network vs the
 * numerical Fig. 1 reference on thousands of random volleys. Times both
 * implementations.
 */

#include "bench_common.hpp"

#include "neuron/srm0_network.hpp"
#include "neuron/srm0_reference.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

std::vector<ResponseFunction>
synapses(size_t q)
{
    std::vector<ResponseFunction> syn;
    for (size_t i = 0; i < q; ++i) {
        if (i % 4 == 3)
            syn.push_back(
                ResponseFunction::biexponential(2, 4.0, 1.0).negated());
        else
            syn.push_back(ResponseFunction::biexponential(3, 4.0, 1.0));
    }
    return syn;
}

void
printFigure()
{
    std::cout << "F12 | Fig. 12: SRM0 construction cost vs synapse "
                 "count (biexp responses, 1-in-4 inhibitory, theta = "
                 "synapses)\n";
    AsciiTable t({"synapses", "up taps", "down taps", "comparators",
                  "lt blocks", "total nodes", "depth"});
    for (size_t q : {2, 4, 8, 16, 32}) {
        auto stats = srm0NetworkStats(
            synapses(q), static_cast<ResponseFunction::Amp>(q));
        t.row(q, stats.upTaps, stats.downTaps, stats.comparators,
              stats.ltBlocks, stats.totalNodes, stats.depth);
    }
    t.writeTo(std::cout);
    std::cout << "shape check: the two sorters dominate "
                 "(O(T log^2 T) comparators for T taps).\n\n";

    std::cout << "Agreement: Fig. 12 network vs numerical reference "
                 "(Fig. 1):\n";
    AsciiTable agree({"synapses", "theta", "random volleys",
                      "agreements", "spikes produced"});
    Rng rng(12);
    for (size_t q : {3, 6, 10}) {
        auto syn = synapses(q);
        auto theta = static_cast<ResponseFunction::Amp>(q);
        Srm0Neuron ref(syn, theta);
        Network net = buildSrm0Network(syn, theta);
        size_t match = 0, fired = 0;
        const size_t probes = 2000;
        for (size_t s = 0; s < probes; ++s) {
            std::vector<Time> x(q);
            for (Time &v : x)
                v = rng.chance(0.2) ? INF : Time(rng.below(10));
            Time a = net.evaluate(x)[0];
            Time b = ref.fire(x);
            match += a == b;
            fired += b.isFinite();
        }
        agree.row(q, theta, probes, match, fired);
    }
    agree.writeTo(std::cout);
    std::cout << "shape check: agreements == volleys (exact cross-"
                 "domain equivalence).\n";
}

void
BM_Srm0NetworkEvaluate(benchmark::State &state)
{
    const size_t q = static_cast<size_t>(state.range(0));
    Network net = buildSrm0Network(
        synapses(q), static_cast<ResponseFunction::Amp>(q));
    Rng rng(13);
    std::vector<Time> x(q);
    for (Time &v : x)
        v = Time(rng.below(8));
    for (auto _ : state) {
        auto out = net.evaluate(x);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_Srm0NetworkEvaluate)->Arg(4)->Arg(16)->Arg(32);

void
BM_Srm0ReferenceFire(benchmark::State &state)
{
    const size_t q = static_cast<size_t>(state.range(0));
    Srm0Neuron ref(synapses(q), static_cast<ResponseFunction::Amp>(q));
    Rng rng(14);
    std::vector<Time> x(q);
    for (Time &v : x)
        v = Time(rng.below(8));
    for (auto _ : state) {
        Time y = ref.fire(x);
        benchmark::DoNotOptimize(y);
    }
}
BENCHMARK(BM_Srm0ReferenceFire)->Arg(4)->Arg(16)->Arg(32);

void
BM_Srm0Build(benchmark::State &state)
{
    const size_t q = static_cast<size_t>(state.range(0));
    auto syn = synapses(q);
    for (auto _ : state) {
        Network net = buildSrm0Network(
            syn, static_cast<ResponseFunction::Amp>(q));
        benchmark::DoNotOptimize(net);
    }
}
BENCHMARK(BM_Srm0Build)->Arg(4)->Arg(16)->Arg(32);

} // namespace

ST_BENCH_MAIN(printFigure)
