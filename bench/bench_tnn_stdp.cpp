/**
 * @file
 * Experiment E3 — paper Sec. II/IV + Sec. VI conjecture 2: STDP
 * training and emergent selectivity.
 *
 * Regenerates the emergence curves the TNN literature reports
 * (Guyonneau [21], Masquelier [37]): clustering purity vs training
 * samples on jittered temporal prototypes, robustness vs jitter, and
 * lane purity on the Fig. 4 freeway substitute. Times training and
 * inference steps.
 */

#include "bench_common.hpp"

#include "tnn/conv.hpp"
#include "tnn/datasets.hpp"
#include "tnn/metrics.hpp"
#include "tnn/tempotron.hpp"
#include "tnn/tnn_network.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

std::optional<size_t>
winnerOf(const std::vector<Time> &fired)
{
    std::optional<size_t> winner;
    Time best = INF;
    for (size_t j = 0; j < fired.size(); ++j) {
        if (fired[j] < best) {
            best = fired[j];
            winner = j;
        }
    }
    return winner;
}

ColumnParams
columnParams(size_t inputs, size_t neurons)
{
    ColumnParams cp;
    cp.numInputs = inputs;
    cp.numNeurons = neurons;
    cp.threshold = 14;
    cp.fatigue = 8;
    cp.maxWeight = 7;
    cp.shape = ResponseShape::Step;
    cp.seed = 99;
    return cp;
}

double
purityAfter(PatternDataset &data, size_t train_samples, double jitter)
{
    PatternSetParams dp = data.params();
    dp.jitter = jitter;
    PatternDataset local(dp);
    Column col(columnParams(dp.numLines, 2 * dp.numClasses));
    SimplifiedStdp rule(0.06, 0.045);
    for (const auto &s : local.sampleMany(train_samples))
        col.trainStep(s.volley, rule);
    ConfusionMatrix m(2 * dp.numClasses, dp.numClasses);
    for (const auto &s : local.sampleMany(bench::scaled(300, 40)))
        m.add(winnerOf(col.rawFireTimes(s.volley)), s.label);
    return m.purity();
}

void
printFigure()
{
    PatternSetParams dp;
    dp.numClasses = 4;
    dp.numLines = 16;
    dp.timeSpan = 7;
    dp.jitter = 0.4;
    dp.dropProb = 0.03;
    dp.seed = 2718;
    PatternDataset data(dp);

    std::cout << "E3a | clustering purity vs training samples "
                 "(4 classes, 16 lines, 3-bit times, jitter 0.4)\n";
    AsciiTable t({"train samples", "purity"});
    std::vector<size_t> sizes{0, 50, 100, 200, 400, 800, 1600};
    if (bench::smokeMode())
        sizes = {0, 40};
    for (size_t n : sizes) {
        double purity = purityAfter(data, n, dp.jitter);
        t.row(n, purity);
        bench::recordValue("tnn_stdp", "samples=" + std::to_string(n),
                           "purity", purity);
    }
    t.writeTo(std::cout);
    std::cout << "shape check: purity climbs from chance (~0.25) and "
                 "saturates — neurons tune to the earliest spikes of "
                 "recurring patterns.\n\n";

    std::cout << "E3b | robustness: purity vs input jitter "
                 "(800 training samples)\n";
    AsciiTable j({"jitter (std dev, time units)", "purity"});
    for (double jit : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0})
        j.row(jit, purityAfter(data, bench::scaled(800, 40), jit));
    j.writeTo(std::cout);
    std::cout << "shape check: graceful degradation; collapse only "
                 "when jitter ~ the whole coding window.\n\n";

    std::cout << "E3c | Fig. 4 substitute: freeway lane selectivity\n";
    FreewayParams fp;
    fp.lanes = 3;
    fp.sensorsPerLane = 8;
    fp.jitter = 0.3;
    fp.missProb = 0.05;
    fp.seed = 42;
    FreewayGenerator gen(fp);
    ColumnParams cp = columnParams(gen.numAddresses(), 6);
    Column col(cp);
    SimplifiedStdp rule(0.07, 0.05);
    AsciiTable f({"passes trained", "lane purity", "lanes covered"});
    size_t trained = 0;
    std::vector<size_t> passes{0, 100, 300, 900};
    if (bench::smokeMode())
        passes = {0, 40};
    for (size_t target : passes) {
        for (; trained < target; ++trained) {
            auto s = gen.generate(1);
            col.trainStep(s[0].volley, rule);
        }
        ConfusionMatrix m(cp.numNeurons, fp.lanes);
        for (const auto &s : gen.generate(bench::scaled(200, 40)))
            m.add(winnerOf(col.rawFireTimes(s.volley)), s.label);
        f.row(target, m.purity(), m.distinctLabelsCovered());
        bench::recordValue("tnn_stdp",
                           "freeway_passes=" + std::to_string(target),
                           "lane_purity", m.purity());
    }
    f.writeTo(std::cout);
    std::cout << "shape check: selectivity emerges from strictly local "
                 "learning (Sec. VI conjecture 2).\n\n";

    std::cout << "E3d | hierarchy ablation: flat column vs conv + "
                 "temporal pooling on randomly placed motifs "
                 "(Kheradpisheh-style weight sharing)\n";
    ShiftedPatternParams sp;
    sp.numClasses = 3;
    sp.motifWidth = 6;
    sp.inputWidth = 24;
    sp.jitter = 0.3;
    sp.seed = 12;
    ShiftedPatternDataset shifted(sp);

    ColumnParams flat = columnParams(sp.inputWidth, 6);
    flat.threshold = 10;
    Column column(flat);
    Conv1dParams cvp;
    cvp.inputWidth = sp.inputWidth;
    cvp.kernelSize = sp.motifWidth;
    cvp.numFeatures = 6;
    cvp.threshold = 10;
    cvp.fatigue = 8;
    cvp.seed = 12;
    Conv1dLayer conv(cvp);
    SimplifiedStdp shared_rule(0.12, 0.09);
    for (size_t s = 0; s < bench::scaled(1200, 60); ++s) {
        PlacedVolley v = shifted.sample();
        column.trainStep(v.volley, shared_rule);
        conv.trainStep(v.volley, shared_rule);
    }
    ConfusionMatrix fm(6, 3), cm(6, 3);
    for (size_t s = 0; s < bench::scaled(300, 40); ++s) {
        PlacedVolley v = shifted.sample();
        fm.add(winnerOf(column.rawFireTimes(v.volley)), v.label);
        cm.add(winnerOf(conv.pooled(v.volley)), v.label);
    }
    AsciiTable h({"detector", "purity", "coverage"});
    h.row("flat column", fm.purity(), fm.coverage());
    h.row("conv + pooling", cm.purity(), cm.coverage());
    h.writeTo(std::cout);
    std::cout << "shape check: weight sharing + pooling wins when the "
                 "motif moves — the reason the surveyed TNNs go "
                 "hierarchical.\n\n";

    std::cout << "E3e | supervised vs unsupervised: tempotron "
                 "(Guetig-Sompolinsky) one-vs-rest on the same "
                 "patterns\n";
    PatternSetParams tp;
    tp.numClasses = 4;
    tp.numLines = 16;
    tp.timeSpan = 7;
    tp.jitter = 0.4;
    tp.seed = 2718;
    PatternDataset tdata(tp);
    std::vector<Tempotron> readout;
    for (size_t c = 0; c < 4; ++c) {
        TempotronParams params;
        params.numInputs = 16;
        params.threshold = 1.5;
        params.learningRate = 0.05;
        params.seed = 600 + c;
        readout.emplace_back(params);
    }
    auto train = tdata.sampleMany(bench::scaled(200, 30));
    AsciiTable e({"epochs", "one-vs-rest accuracy"});
    size_t epochs_done = 0;
    auto accuracy = [&]() {
        auto test = tdata.sampleMany(bench::scaled(200, 30));
        size_t right = 0;
        for (const auto &s : test) {
            double best = -1e300;
            size_t pick = 0;
            for (size_t c = 0; c < 4; ++c) {
                double p = readout[c].potentialAt(
                    s.volley, readout[c].peakTime(s.volley));
                if (readout[c].fires(s.volley))
                    p += 1e6;
                if (p > best) {
                    best = p;
                    pick = c;
                }
            }
            right += pick == s.label;
        }
        return static_cast<double>(right) /
               static_cast<double>(test.size());
    };
    std::vector<size_t> epoch_marks{0, 5, 20, 60};
    if (bench::smokeMode())
        epoch_marks = {0, 2};
    for (size_t target : epoch_marks) {
        for (; epochs_done < target; ++epochs_done) {
            for (const auto &s : train) {
                for (size_t c = 0; c < 4; ++c)
                    readout[c].train({s.volley, c == s.label});
            }
        }
        e.row(target, accuracy());
    }
    e.writeTo(std::cout);
    std::cout << "shape check: the supervised, still spike-timing-"
                 "local rule converges to near-perfect accuracy — the "
                 "label-driven end of the TNN training spectrum the "
                 "paper surveys (tempotron, Sec. II.C).\n";
}

void
BM_TrainStep(benchmark::State &state)
{
    PatternSetParams dp;
    dp.numLines = static_cast<size_t>(state.range(0));
    dp.numClasses = 4;
    PatternDataset data(dp);
    Column col(columnParams(dp.numLines, 8));
    SimplifiedStdp rule(0.06, 0.045);
    auto samples = data.sampleMany(64);
    size_t i = 0;
    for (auto _ : state) {
        auto r = col.trainStep(samples[i++ & 63].volley, rule);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrainStep)->Arg(16)->Arg(64);

void
BM_InferenceStep(benchmark::State &state)
{
    PatternSetParams dp;
    dp.numLines = static_cast<size_t>(state.range(0));
    dp.numClasses = 4;
    PatternDataset data(dp);
    Column col(columnParams(dp.numLines, 8));
    auto samples = data.sampleMany(64);
    size_t i = 0;
    for (auto _ : state) {
        auto out = col.process(samples[i++ & 63].volley);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InferenceStep)->Arg(16)->Arg(64);

} // namespace

ST_BENCH_MAIN(printFigure)
