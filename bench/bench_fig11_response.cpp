/**
 * @file
 * Experiment F2/F11 — paper Figs. 2 and 11: response functions and
 * their s-t fanout networks.
 *
 * Regenerates the discretized biexponential of Fig. 11 (with its up/down
 * step schedule) and the Fig. 2b piecewise-linear approximation, and
 * charts fanout-network size vs response amplitude — the per-synapse
 * hardware cost of the Fig. 12 neuron. Times discretization and step
 * extraction.
 */

#include "bench_common.hpp"

#include "core/network.hpp"
#include "neuron/response.hpp"
#include "neuron/srm0_network.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

std::string
stepsStr(const std::vector<Time::rep> &steps)
{
    std::string s;
    for (Time::rep t : steps)
        s += std::to_string(t) + ' ';
    return s.empty() ? "-" : s;
}

void
printFigure()
{
    std::cout << "F11 | Fig. 11: discretized biexponential response "
                 "(peak 5, tau_slow 4, tau_fast 1)\n";
    ResponseFunction r = ResponseFunction::biexponential(5, 4.0, 1.0);
    AsciiTable amp({"t", "A(t)"});
    for (Time::rep t = 0; t <= r.tMax(); ++t)
        amp.row(t, r.at(t));
    amp.writeTo(std::cout);
    std::cout << "up steps:   " << stepsStr(r.upSteps()) << "\n";
    std::cout << "down steps: " << stepsStr(r.downSteps()) << "\n";
    std::cout << "(the paper's example takes up steps early and a tail "
                 "of down steps — same shape)\n\n";

    std::cout << "F2b | piecewise-linear approximation (peak 4, rise 2, "
                 "fall 6):\n";
    ResponseFunction pw = ResponseFunction::piecewiseLinear(4, 2, 6);
    std::cout << "A(t): ";
    for (auto a : pw.samples())
        std::cout << a << ' ';
    std::cout << "\n\nFanout-network cost vs response amplitude "
                 "(one synapse):\n";
    AsciiTable cost({"peak amplitude", "up taps", "down taps",
                     "inc blocks emitted"});
    for (ResponseFunction::Amp w = 1; w <= 8; ++w) {
        ResponseFunction rw = ResponseFunction::biexponential(w, 4.0,
                                                              1.0);
        Network net(1);
        std::vector<NodeId> ups, downs;
        emitResponseFanout(net, net.input(0), rw, ups, downs);
        cost.row(w, ups.size(), downs.size(), net.countOf(Op::Inc));
        std::string cfg = "amp=" + std::to_string(w);
        bench::recordValue("fig11_response", cfg, "up_taps",
                           static_cast<double>(ups.size()));
        bench::recordValue("fig11_response", cfg, "down_taps",
                           static_cast<double>(downs.size()));
    }
    cost.writeTo(std::cout);
    std::cout << "shape check: taps grow ~linearly with amplitude "
                 "(each unit of weight adds one up/down step pair).\n";
}

void
BM_Biexponential(benchmark::State &state)
{
    const auto peak = static_cast<ResponseFunction::Amp>(state.range(0));
    for (auto _ : state) {
        ResponseFunction r =
            ResponseFunction::biexponential(peak, 4.0, 1.0);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_Biexponential)->Arg(4)->Arg(16)->Arg(64);

void
BM_StepExtraction(benchmark::State &state)
{
    ResponseFunction r = ResponseFunction::biexponential(
        static_cast<ResponseFunction::Amp>(state.range(0)), 6.0, 1.5);
    for (auto _ : state) {
        auto ups = r.upSteps();
        auto downs = r.downSteps();
        benchmark::DoNotOptimize(ups);
        benchmark::DoNotOptimize(downs);
    }
}
BENCHMARK(BM_StepExtraction)->Arg(4)->Arg(64);

void
BM_EmitFanout(benchmark::State &state)
{
    ResponseFunction r = ResponseFunction::biexponential(
        static_cast<ResponseFunction::Amp>(state.range(0)), 4.0, 1.0);
    for (auto _ : state) {
        Network net(1);
        std::vector<NodeId> ups, downs;
        emitResponseFanout(net, net.input(0), r, ups, downs);
        benchmark::DoNotOptimize(net);
    }
}
BENCHMARK(BM_EmitFanout)->Arg(4)->Arg(16);

} // namespace

ST_BENCH_MAIN(printFigure)
