/**
 * @file
 * Experiment E1 — paper Sec. VI conjecture 1: energy efficiency of
 * direct s-t implementations.
 *
 * Three series:
 *  1. transitions per computation in GRL vs the equivalent binary
 *     (indirect) datapath — the one-switch-per-line property;
 *  2. transitions vs volley sparsity — quiet lines switch zero times;
 *  3. the delay-element (shift register + clock) share of total energy
 *     vs temporal resolution — quantifying the Sec. V.B caveat.
 */

#include "bench_common.hpp"

#include "core/optimize.hpp"
#include "grl/boolsim.hpp"
#include "grl/compile.hpp"
#include "grl/energy.hpp"
#include "neuron/sorting.hpp"
#include "neuron/srm0_network.hpp"
#include "neuron/wta.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

void
printGrlVsBinary()
{
    std::cout << "E1a | min(a, b) at n-bit resolution: switching per "
                 "computation, GRL vs binary ripple datapath\n";
    AsciiTable t({"bits n", "GRL transitions/op", "binary toggles/op",
                  "ratio (binary/GRL)"});
    Rng rng(30);
    for (size_t bits : {3, 4, 6, 8}) {
        const uint64_t limit = (uint64_t{1} << bits) - 1;
        // GRL: one AND gate; count internal + input transitions.
        Network net(2);
        net.markOutput(net.min(net.input(0), net.input(1)));
        grl::CompileResult compiled = grl::compileToGrl(net);
        uint64_t grl_total = 0;
        const size_t ops = 500;
        for (size_t s = 0; s < ops; ++s) {
            std::vector<Time> x{Time(rng.below(limit + 1)),
                                Time(rng.below(limit + 1))};
            grl::SimResult sim =
                grl::simulate(compiled.circuit, x, limit + 1);
            grl_total +=
                sim.totalInternalTransitions() + sim.inputTransitions;
        }
        // Binary: stream the same value pairs through a ripple min.
        grl::BoolCircuit bin = grl::buildBinaryMin(bits);
        grl::BoolActivity act(bin);
        Rng rng2(30); // same stream
        for (size_t s = 0; s < ops; ++s) {
            auto a = grl::toBits(rng2.below(limit + 1), bits);
            auto b = grl::toBits(rng2.below(limit + 1), bits);
            a.insert(a.end(), b.begin(), b.end());
            act.apply(a);
        }
        double grl_per = static_cast<double>(grl_total) / ops;
        double bin_per = static_cast<double>(act.gateToggles() +
                                             act.inputToggles()) /
                         (ops - 1);
        t.row(bits, grl_per, bin_per, bin_per / grl_per);
        std::string cfg = "bits=" + std::to_string(bits);
        bench::recordValue("energy", cfg, "grl_transitions_per_op",
                           grl_per);
        bench::recordValue("energy", cfg, "binary_toggles_per_op",
                           bin_per);
        bench::recordValue("energy", cfg, "binary_over_grl",
                           bin_per / grl_per);
    }
    t.writeTo(std::cout);
    std::cout << "shape check: GRL stays ~3 transitions/op regardless "
                 "of n; binary grows with n -> GRL wins at low "
                 "resolution, consistent with Sec. VI.\n\n";
}

void
printSparsity()
{
    std::cout << "E1b | transitions vs volley sparsity (32 lines): a "
                 "min-reduction tree vs a WTA stage\n";
    // Excitatory convergence: a balanced min tree (a neuron's
    // first-arrival front) — only paths touched by spikes switch.
    Network tree(32);
    std::vector<NodeId> level;
    for (size_t i = 0; i < 32; ++i)
        level.push_back(tree.input(i));
    while (level.size() > 1) {
        std::vector<NodeId> next;
        for (size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(tree.min(level[i], level[i + 1]));
        if (level.size() % 2)
            next.push_back(level.back());
        level = std::move(next);
    }
    tree.markOutput(level[0]);
    grl::CompileResult tree_c = grl::compileToGrl(tree);
    // Inhibitory broadcast: the Fig. 15 WTA — its inhibition gate
    // reaches every line, quiet or not.
    Network wta = wtaNetwork(32, 1);
    grl::CompileResult wta_c = grl::compileToGrl(wta);

    AsciiTable t({"active lines", "min-tree transitions",
                  "WTA transitions"});
    Rng rng(31);
    for (size_t active : {32, 16, 8, 4, 1, 0}) {
        uint64_t tree_total = 0, wta_total = 0;
        const size_t trials = 200;
        for (size_t s = 0; s < trials; ++s) {
            std::vector<Time> x(32, INF);
            for (size_t i = 0; i < active; ++i)
                x[i] = Time(rng.below(8));
            tree_total += grl::simulate(tree_c.circuit, x, 16)
                              .totalInternalTransitions();
            wta_total += grl::simulate(wta_c.circuit, x, 16)
                             .totalInternalTransitions();
        }
        t.row(active, static_cast<double>(tree_total) / trials,
              static_cast<double>(wta_total) / trials);
    }
    t.writeTo(std::cout);
    std::cout << "shape check: excitatory convergence scales with "
                 "activity (quiet volley = ZERO transitions, the "
                 "paper's sparse-coding win); the WTA's blanket "
                 "inhibition is a broadcast and pays O(n) latch "
                 "captures whenever anything fires — inhibition is the "
                 "exception to the sparsity argument.\n\n";
}

void
printDelayShare()
{
    std::cout << "E1c | delay-element share of energy vs temporal "
                 "resolution (8-tap delay-line + min tree)\n";
    AsciiTable t({"resolution bits", "total energy", "delay fraction"});
    for (unsigned bits : {2, 3, 4, 6}) {
        const Time::rep span = (Time::rep{1} << bits) - 1;
        // A compound synapse: 8 taps spread over the full time span.
        Network net(1);
        std::vector<NodeId> taps;
        for (size_t i = 0; i < 8; ++i)
            taps.push_back(net.inc(net.input(0), 1 + (i * span) / 8));
        net.markOutput(net.min(std::span<const NodeId>(taps)));
        grl::CompileResult compiled = grl::compileToGrl(net);
        std::vector<Time> x{0_t};
        grl::SimResult sim = grl::simulate(compiled.circuit, x);
        grl::EnergyReport e =
            grl::estimateEnergy(compiled.circuit, sim);
        t.row(bits, e.total, e.delayFraction());
    }
    t.writeTo(std::cout);
    std::cout << "shape check: the shift registers dominate and their "
                 "share grows with resolution — the paper's Sec. V.B "
                 "energy caveat, quantified.\n";
}

void
printResetOverhead()
{
    std::cout << "E1d | per-computation reset overhead in a streamed "
                 "pipeline (Sec. VI: lines \"must be reset prior to the "
                 "next computation\")\n";
    Network net = wtaNetwork(16, 1);
    grl::CompileResult compiled = grl::compileToGrl(net);
    Rng rng(33);
    AsciiTable t({"active lines", "forward transitions",
                  "reset transitions", "reset share %"});
    for (size_t active : {16, 8, 2}) {
        std::vector<std::vector<Time>> volleys;
        for (int s = 0; s < 100; ++s) {
            std::vector<Time> x(16, INF);
            for (size_t i = 0; i < active; ++i)
                x[i] = Time(rng.below(8));
            volleys.push_back(std::move(x));
        }
        grl::StreamResult stream =
            grl::simulateStream(compiled.circuit, volleys, 12);
        double share = 100.0 *
                       static_cast<double>(stream.resetTransitions) /
                       static_cast<double>(stream.totalTransitions());
        t.row(active, stream.forwardTransitions,
              stream.resetTransitions, share);
    }
    t.writeTo(std::cout);
    std::cout << "shape check: reset mirrors the forward activity "
                 "(~every fallen line rises once), roughly doubling the "
                 "switching — but still sparse-coding proportional.\n";
}

void
printDelayFactoring()
{
    std::cout << "E1e | minimizing the shift-register cost (the paper's "
                 "Sec. V.B future work): SRM0 circuits before/after "
                 "delay factoring\n";
    AsciiTable t({"synapses", "FF stages raw", "FF stages opt",
                  "energy raw", "energy opt", "agree"});
    Rng rng(34);
    for (size_t q : {2, 4, 8}) {
        ResponseFunction r =
            ResponseFunction::biexponential(3, 4.0, 1.0);
        std::vector<ResponseFunction> syn(q, r);
        Network raw = buildSrm0Network(
            syn, static_cast<ResponseFunction::Amp>(q));
        Network opt = optimize(raw);
        grl::CompileResult raw_c = grl::compileToGrl(raw);
        grl::CompileResult opt_c = grl::compileToGrl(opt);
        double raw_e = 0, opt_e = 0;
        size_t agree = 0;
        const size_t trials = 100;
        for (size_t s = 0; s < trials; ++s) {
            std::vector<Time> x(q);
            for (Time &v : x)
                v = rng.chance(0.2) ? INF : Time(rng.below(8));
            grl::SimResult a = grl::simulate(raw_c.circuit, x);
            grl::SimResult b = grl::simulate(opt_c.circuit, x);
            raw_e += grl::estimateEnergy(raw_c.circuit, a).total;
            opt_e += grl::estimateEnergy(opt_c.circuit, b).total;
            agree += a.outputs == b.outputs;
        }
        t.row(q, raw.totalIncStages(), opt.totalIncStages(),
              raw_e / trials, opt_e / trials,
              std::to_string(agree) + "/" + std::to_string(trials));
    }
    t.writeTo(std::cout);
    std::cout << "shape check: factoring parallel taps into chains "
                 "(sum -> max delay per source) cuts the dominant "
                 "flipflop-and-clock energy at identical behaviour.\n";
}

void
printFigure()
{
    printGrlVsBinary();
    printSparsity();
    printDelayShare();
    std::cout << "\n";
    printResetOverhead();
    std::cout << "\n";
    printDelayFactoring();
}

void
BM_GrlMinOp(benchmark::State &state)
{
    Network net(2);
    net.markOutput(net.min(net.input(0), net.input(1)));
    grl::CompileResult compiled = grl::compileToGrl(net);
    std::vector<Time> x{3_t, 5_t};
    for (auto _ : state) {
        auto sim = grl::simulate(compiled.circuit, x, 8);
        benchmark::DoNotOptimize(sim);
    }
}
BENCHMARK(BM_GrlMinOp);

void
BM_BinaryMinOp(benchmark::State &state)
{
    grl::BoolCircuit bin = grl::buildBinaryMin(4);
    grl::BoolActivity act(bin);
    Rng rng(32);
    for (auto _ : state) {
        auto a = grl::toBits(rng.below(16), 4);
        auto b = grl::toBits(rng.below(16), 4);
        a.insert(a.end(), b.begin(), b.end());
        auto out = act.apply(a);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_BinaryMinOp);

} // namespace

ST_BENCH_MAIN(printFigure)
