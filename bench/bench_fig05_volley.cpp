/**
 * @file
 * Experiment F5 — paper Fig. 5 and Sec. III.A: spike-volley coding
 * efficiency.
 *
 * Regenerates the paper's communication-cost argument: with n-bit
 * temporal resolution a volley conveys just under n bits per spike, but
 * message time grows as 2^n — hence the case for 3-4 bit data. Also
 * shows the sparse-coding multiplier the paper highlights.
 */

#include "bench_common.hpp"

#include "tnn/volley.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

void
printFigure()
{
    std::cout << "F5 | Fig. 5 / Sec. III.A: volley coding efficiency "
                 "vs temporal resolution\n";
    std::cout << "    (16-line volleys; sparse = 25% of lines spike)\n";
    AsciiTable t({"resolution n (bits)", "message time (2^n)",
                  "dense bits/spike", "sparse bits/spike",
                  "spikes (dense)", "spikes (sparse)"});
    Rng rng(5);
    const size_t lines = 16;
    for (unsigned n = 1; n <= 10; ++n) {
        std::vector<double> dense(lines), sparse(lines);
        for (size_t i = 0; i < lines; ++i) {
            dense[i] = 0.05 + 0.95 * rng.uniform();
            sparse[i] = rng.chance(0.25) ? 0.5 + 0.5 * rng.uniform()
                                         : 0.0;
        }
        Volley dv = quantizeIntensities(dense, n, 0.01);
        Volley sv = quantizeIntensities(sparse, n, 0.01);
        CodingStats ds = codingStats(dv, n);
        CodingStats ss = codingStats(sv, n);
        t.row(n, ds.messageTime, ds.bitsPerSpike, ss.bitsPerSpike,
              ds.spikes, ss.spikes);
        bench::recordValue("fig05_volley", "n=" + std::to_string(n),
                           "dense_bits_per_spike", ds.bitsPerSpike);
        bench::recordValue("fig05_volley", "n=" + std::to_string(n),
                           "sparse_bits_per_spike", ss.bitsPerSpike);
    }
    t.writeTo(std::cout);
    std::cout << "shape check: bits/spike grows ~n while message time "
                 "doubles per bit -> only low resolution is practical "
                 "(paper Sec. III.A).\n";
}

void
BM_EncodeValues(benchmark::State &state)
{
    const size_t lines = static_cast<size_t>(state.range(0));
    Rng rng(7);
    std::vector<std::optional<uint64_t>> values(lines);
    for (auto &v : values) {
        if (!rng.chance(0.2))
            v = rng.below(16);
    }
    for (auto _ : state) {
        Volley v = encodeValues(values);
        benchmark::DoNotOptimize(v);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(lines));
}
BENCHMARK(BM_EncodeValues)->Arg(16)->Arg(256)->Arg(4096);

void
BM_QuantizeIntensities(benchmark::State &state)
{
    const size_t lines = static_cast<size_t>(state.range(0));
    Rng rng(8);
    std::vector<double> intensities(lines);
    for (double &x : intensities)
        x = rng.uniform();
    for (auto _ : state) {
        Volley v = quantizeIntensities(intensities, 3, 0.1);
        benchmark::DoNotOptimize(v);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(lines));
}
BENCHMARK(BM_QuantizeIntensities)->Arg(256)->Arg(4096);

} // namespace

ST_BENCH_MAIN(printFigure)
