/**
 * @file
 * Experiment F10 — paper Fig. 10: bitonic sorting networks from min/max
 * comparators.
 *
 * Regenerates the construction-cost series: comparator count
 * (n/2 * log n (log n + 1)/2, Batcher) and stage depth, validates
 * sortedness, and times network construction and evaluation across
 * widths.
 */

#include "bench_common.hpp"

#include <algorithm>

#include "neuron/sorting.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

void
printFigure()
{
    std::cout << "F10 | Fig. 10: bitonic sorter cost vs width\n";
    AsciiTable t({"width n", "comparators", "stage depth",
                  "network nodes", "sorted? (200 random volleys)"});
    Rng rng(10);
    for (size_t n : {2, 4, 8, 16, 32, 64}) {
        Network net = bitonicSortNetwork(n);
        bool ok = true;
        for (int s = 0; s < 200 && ok; ++s) {
            std::vector<Time> x(n);
            for (Time &v : x)
                v = rng.chance(0.2) ? INF : Time(rng.below(50));
            auto out = net.evaluate(x);
            std::sort(x.begin(), x.end());
            ok = out == x;
        }
        t.row(n, bitonicComparatorCount(n), bitonicStageDepth(n),
              net.size(), ok ? "yes" : "NO");
        std::string cfg = "width=" + std::to_string(n);
        bench::recordValue("fig10_bitonic", cfg, "comparators",
                           static_cast<double>(bitonicComparatorCount(n)));
        bench::recordValue("fig10_bitonic", cfg, "stage_depth",
                           static_cast<double>(bitonicStageDepth(n)));
        bench::recordValue("fig10_bitonic", cfg, "sorted",
                           ok ? 1.0 : 0.0);
    }
    t.writeTo(std::cout);
    std::cout << "shape check: comparators ~ (n/2) * k(k+1)/2 for "
                 "n = 2^k (O(n log^2 n)); depth ~ k(k+1)/2.\n";
}

void
BM_BuildSorter(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    for (auto _ : state) {
        Network net = bitonicSortNetwork(n);
        benchmark::DoNotOptimize(net);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n));
}
BENCHMARK(BM_BuildSorter)->Arg(8)->Arg(64)->Arg(256);

void
BM_SortEvaluate(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    Network net = bitonicSortNetwork(n);
    Rng rng(11);
    std::vector<Time> x(n);
    for (Time &v : x)
        v = Time(rng.below(100));
    for (auto _ : state) {
        auto out = net.evaluate(x);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n));
}
BENCHMARK(BM_SortEvaluate)->Arg(8)->Arg(64)->Arg(256);

void
BM_StdSortBaseline(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    Rng rng(12);
    std::vector<Time> x(n);
    for (Time &v : x)
        v = Time(rng.below(100));
    for (auto _ : state) {
        auto copy = x;
        std::sort(copy.begin(), copy.end());
        benchmark::DoNotOptimize(copy);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n));
}
BENCHMARK(BM_StdSortBaseline)->Arg(8)->Arg(64)->Arg(256);

} // namespace

ST_BENCH_MAIN(printFigure)
