/**
 * @file
 * Experiment F6 — paper Fig. 6: the primitive functional blocks.
 *
 * Regenerates the Fig. 6a primitive semantics as a truth-table excerpt
 * and a Fig. 6b-style composed network, then times primitive evaluation
 * through the three execution engines (denotational evaluator, event-
 * driven trace simulator, and evaluation throughput scaling).
 */

#include "bench_common.hpp"

#include "core/algebra.hpp"
#include "core/network.hpp"
#include "core/trace_sim.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

Network chainNetwork(size_t blocks);

void
printFigure()
{
    std::cout << "F6 | Fig. 6a: primitive block semantics\n";
    AsciiTable t({"a", "b", "inc(a)", "min(a,b)", "lt(a,b)"});
    for (auto [a, b] : std::vector<std::pair<Time, Time>>{
             {2_t, 5_t}, {5_t, 2_t}, {3_t, 3_t}, {4_t, INF},
             {INF, 4_t}}) {
        t.row(a, b, tinc(a), tmin(a, b), tlt(a, b));
    }
    t.writeTo(std::cout);

    std::cout << "\nF6 | Fig. 6b: a composed example network "
                 "y = lt(min(x0, x1) + 1, x2)\n";
    Network net(3);
    NodeId y = net.lt(net.inc(net.min(net.input(0), net.input(1)), 1),
                      net.input(2));
    net.markOutput(y);
    AsciiTable n({"x0", "x1", "x2", "y"});
    for (auto x : {std::vector<Time>{2_t, 5_t, 4_t},
                   {2_t, 5_t, 3_t},
                   {0_t, 0_t, 2_t},
                   {1_t, INF, INF}}) {
        n.row(x[0], x[1], x[2], net.evaluate(x)[0]);
    }
    n.writeTo(std::cout);
    std::cout << "shape check: outputs match hand evaluation; spikes "
                 "only move forward in time (causality).\n";

    // Machine-readable headline: compiled evaluation throughput of a
    // 300-block primitive chain (the Fig. 6b composition at scale).
    Network chain = chainNetwork(300);
    Rng rng(6);
    const size_t probes = bench::scaled(20000, 50);
    std::vector<Time> x(2);
    Stopwatch sw;
    for (size_t i = 0; i < probes; ++i) {
        x[0] = Time(rng.below(8));
        x[1] = Time(rng.below(8));
        benchmark::DoNotOptimize(chain.evaluate(x));
    }
    bench::record("fig06_primitives", "blocks=300",
                  static_cast<double>(probes) / sw.seconds(), 1.0);
}

Network
chainNetwork(size_t blocks)
{
    Network net(2);
    NodeId cur = net.input(0);
    for (size_t i = 0; i < blocks; i += 3) {
        cur = net.inc(cur, 1);
        cur = net.min(cur, net.input(1));
        cur = net.lt(cur, net.inc(net.input(1), 5));
    }
    net.markOutput(cur);
    return net;
}

void
BM_NetworkEvaluate(benchmark::State &state)
{
    Network net = chainNetwork(static_cast<size_t>(state.range(0)));
    std::vector<Time> x{1_t, 3_t};
    for (auto _ : state) {
        auto out = net.evaluate(x);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(net.size()));
}
BENCHMARK(BM_NetworkEvaluate)->Arg(30)->Arg(300)->Arg(3000);

void
BM_TraceSimulate(benchmark::State &state)
{
    Network net = chainNetwork(static_cast<size_t>(state.range(0)));
    TraceSimulator sim(net);
    std::vector<Time> x{1_t, 3_t};
    for (auto _ : state) {
        Trace trace = sim.run(x);
        benchmark::DoNotOptimize(trace);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(net.size()));
}
BENCHMARK(BM_TraceSimulate)->Arg(30)->Arg(300)->Arg(3000);

void
BM_PrimitiveOps(benchmark::State &state)
{
    Rng rng(1);
    std::vector<Time> xs(1024);
    for (Time &t : xs)
        t = rng.chance(0.2) ? INF : Time(rng.below(1000));
    for (auto _ : state) {
        Time acc = 0_t;
        for (size_t i = 1; i < xs.size(); ++i) {
            acc = tmin(tmax(acc, xs[i - 1]), tlt(xs[i - 1], xs[i]) + 1);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_PrimitiveOps);

} // namespace

ST_BENCH_MAIN(printFigure)
