/**
 * @file
 * Model startup latency: text parse (+ compile) vs the STMF binary
 * container (E11 in EXPERIMENTS.md).
 *
 * The operational claim behind the STMF format is that a serving
 * daemon restarts — and a hot reload canaries — from a packed model
 * an order of magnitude faster than from the text formats, because
 * the binary path skips 17-significant-digit decimal round-trips
 * ("tnn") and re-running the plan compiler ("plan"); the mmap path
 * additionally views the big arrays in place instead of copying.
 *
 * The committed floor lives in BENCH_startup.json: mmap load must be
 * >= 10x faster than text parse+compile on both the demo TNN and the
 * generated plan network. The perf-smoke CI job runs this bench with
 * --json and archives the report.
 *
 * Outputs also cross-check: the text-loaded and STMF-loaded models
 * must agree bit-for-bit on probe volleys before any timing is
 * reported — a fast loader that loads the wrong weights is worthless.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/network.hpp"
#include "core/network_io.hpp"
#include "model/serialize.hpp"
#include "tnn/tnn_io.hpp"
#include "tnn/tnn_network.hpp"
#include "tnn/volley.hpp"

namespace {

using namespace st;

/** Median wall-clock milliseconds of @p reps runs of @p fn. */
template <typename Fn>
double
medianMs(size_t reps, Fn &&fn)
{
    std::vector<double> samples;
    samples.reserve(reps);
    for (size_t r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        samples.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

TnnNetwork
bigTnn(size_t inputs)
{
    TnnNetwork net;
    ColumnParams l1;
    l1.numInputs = inputs;
    l1.numNeurons = inputs * 2;
    l1.wtaK = 4;
    l1.seed = 11;
    net.addLayer(l1);
    ColumnParams l2;
    l2.numInputs = inputs * 2;
    l2.numNeurons = inputs;
    l2.wtaK = 1;
    l2.seed = 12;
    net.addLayer(l2);
    return net;
}

/** A deep s-t network: @p levels rotating min/max/lt/inc layers. */
Network
bigNetwork(size_t inputs, size_t levels)
{
    Network net(inputs);
    std::vector<NodeId> layer;
    for (size_t i = 0; i < inputs; ++i)
        layer.push_back(net.input(i));
    for (size_t l = 0; l < levels; ++l) {
        std::vector<NodeId> next;
        next.reserve(layer.size());
        for (size_t i = 0; i < layer.size(); ++i) {
            const NodeId a = layer[i];
            const NodeId b = layer[(i + 1) % layer.size()];
            switch ((l + i) % 4) {
            case 0:
                next.push_back(net.min(a, b));
                break;
            case 1:
                next.push_back(net.max(a, b));
                break;
            case 2:
                next.push_back(net.lt(a, b));
                break;
            default:
                next.push_back(net.inc(a, 1 + (i % 3)));
                break;
            }
        }
        layer = std::move(next);
    }
    net.markOutput(net.min(layer));
    net.markOutput(net.max(layer));
    return net;
}

std::vector<Volley>
probes(size_t width, size_t count)
{
    std::vector<Volley> volleys;
    for (size_t j = 0; j < count; ++j) {
        Volley v(width, INF);
        for (size_t i = 0; i < width; ++i)
            if ((i + 3 * j) % 7 != 0)
                v[i] = Time((i * 37 + j * 101) % 64);
        volleys.push_back(std::move(v));
    }
    return volleys;
}

struct Row
{
    std::string model;
    size_t textBytes = 0;
    size_t stmfBytes = 0;
    double textMs = 0;
    double mmapMs = 0;
    double copyMs = 0;
};

void
printRow(const Row &r)
{
    std::printf("  %-8s %9zu %9zu %10.3f %9.3f %9.3f %8.1fx\n",
                r.model.c_str(), r.textBytes, r.stmfBytes, r.textMs,
                r.mmapMs, r.copyMs,
                r.mmapMs > 0 ? r.textMs / r.mmapMs : 0.0);
}

void
recordRow(const Row &r)
{
    using st::bench::recordValue;
    recordValue("startup", r.model, "text_parse_ms", r.textMs);
    recordValue("startup", r.model, "stmf_mmap_ms", r.mmapMs);
    recordValue("startup", r.model, "stmf_copy_ms", r.copyMs);
    recordValue("startup", r.model, "mmap_speedup",
                r.mmapMs > 0 ? r.textMs / r.mmapMs : 0.0);
}

void
dieIf(bool bad, const char *what)
{
    if (bad) {
        std::fprintf(stderr, "bench_startup: FAILED: %s\n", what);
        std::exit(1);
    }
}

void
printTables()
{
    using st::bench::scaled;
    const size_t reps = scaled(9, 3);
    const std::string dir = "/tmp/";

    std::printf("E11: model startup — text parse(+compile) vs STMF "
                "load (median of %zu, ms)\n",
                reps);
    std::printf("  %-8s %9s %9s %10s %9s %9s %8s\n", "model",
                "text_B", "stmf_B", "text_ms", "mmap_ms", "copy_ms",
                "speedup");

    // --- "tnn": the demo-scale WTA stack --------------------------
    {
        const size_t inputs = scaled(64, 8);
        const TnnNetwork original = bigTnn(inputs);
        const std::string text = tnnToText(original);
        const std::string path = dir + "bench_startup_tnn.stmf";
        model::PackOptions options;
        options.id = "bench-tnn";
        dieIf(!model::packTnn(original, path, options).isOk(),
              "packTnn");

        // Correctness first: all three loads must agree bitwise.
        const TnnNetwork fromText = tnnFromText(text);
        model::LoadedModel viaMmap;
        model::LoadedModel viaCopy;
        dieIf(!model::loadModel(path, model::LoadMode::Mmap, viaMmap)
                   .isOk(),
              "tnn mmap load");
        dieIf(!model::loadModel(path, model::LoadMode::Copy, viaCopy)
                   .isOk(),
              "tnn copy load");
        for (const Volley &v : probes(inputs, 4)) {
            const Volley a = fromText.process(v);
            dieIf(a != viaMmap.tnn->process(v),
                  "tnn text vs mmap outputs differ");
            dieIf(a != viaCopy.tnn->process(v),
                  "tnn text vs copy outputs differ");
        }

        Row row;
        row.model = "tnn";
        row.textBytes = text.size();
        row.stmfBytes = viaMmap.info.fileBytes;
        row.textMs = medianMs(reps, [&] {
            benchmark::DoNotOptimize(tnnFromText(text));
        });
        row.mmapMs = medianMs(reps, [&] {
            model::LoadedModel loaded;
            (void)model::loadModel(path, model::LoadMode::Mmap,
                                   loaded);
            benchmark::DoNotOptimize(loaded.tnn.get());
        });
        row.copyMs = medianMs(reps, [&] {
            model::LoadedModel loaded;
            (void)model::loadModel(path, model::LoadMode::Copy,
                                   loaded);
            benchmark::DoNotOptimize(loaded.tnn.get());
        });
        printRow(row);
        recordRow(row);
    }

    // --- "plan": a deep generated s-t network ---------------------
    {
        const size_t inputs = scaled(96, 8);
        const size_t levels = scaled(80, 4);
        const Network original = bigNetwork(inputs, levels);
        const std::string text = networkToText(original);
        const std::string path = dir + "bench_startup_plan.stmf";
        model::PackOptions options;
        options.id = "bench-plan";
        dieIf(!model::packNetwork(original, path, options).isOk(),
              "packNetwork");

        model::LoadedModel viaMmap;
        dieIf(!model::loadModel(path, model::LoadMode::Mmap, viaMmap)
                   .isOk(),
              "plan mmap load");
        EvalScratch scratch;
        std::vector<Time> out;
        for (const Volley &v : probes(inputs, 4)) {
            viaMmap.plan->evaluate(v, scratch, out);
            const std::vector<Time> expect = original.evaluate(v);
            dieIf(out != expect, "plan text vs mmap outputs differ");
        }

        Row row;
        row.model = "plan";
        row.textBytes = text.size();
        row.stmfBytes = viaMmap.info.fileBytes;
        // The text path a daemon actually pays: parse + compile.
        row.textMs = medianMs(reps, [&] {
            Network net = networkFromText(text);
            benchmark::DoNotOptimize(&net.compile());
        });
        row.mmapMs = medianMs(reps, [&] {
            model::LoadedModel loaded;
            (void)model::loadModel(path, model::LoadMode::Mmap,
                                   loaded);
            benchmark::DoNotOptimize(loaded.plan.get());
        });
        row.copyMs = medianMs(reps, [&] {
            model::LoadedModel loaded;
            (void)model::loadModel(path, model::LoadMode::Copy,
                                   loaded);
            benchmark::DoNotOptimize(loaded.plan.get());
        });
        printRow(row);
        recordRow(row);
    }

    // --- "lsm": params-only container (no text counterpart) -------
    {
        model::LsmModelConfig config;
        config.params.numInputs = scaled(64, 8);
        config.params.numNeurons = scaled(256, 32);
        const std::string path = dir + "bench_startup_lsm.stmf";
        dieIf(!model::packLsm(config, path, model::PackOptions{})
                   .isOk(),
              "packLsm");
        const double loadMs = medianMs(reps, [&] {
            model::LoadedModel loaded;
            (void)model::loadModel(path, model::LoadMode::Mmap,
                                   loaded);
            benchmark::DoNotOptimize(loaded.lsm.get());
        });
        std::printf("  %-8s %9s %9s %10s %9.3f %9s %8s\n", "lsm",
                    "-", "-", "-", loadMs, "-", "-");
        st::bench::recordValue("startup", "lsm", "stmf_mmap_ms",
                               loadMs);
    }
}

void
BM_TnnTextParse(benchmark::State &state)
{
    const std::string text = tnnToText(bigTnn(64));
    for (auto _ : state)
        benchmark::DoNotOptimize(tnnFromText(text));
}
BENCHMARK(BM_TnnTextParse);

void
BM_TnnStmfLoad(benchmark::State &state)
{
    const std::string path = "/tmp/bench_startup_bm_tnn.stmf";
    (void)model::packTnn(bigTnn(64), path, model::PackOptions{});
    for (auto _ : state) {
        model::LoadedModel loaded;
        (void)model::loadModel(path, model::LoadMode::Mmap, loaded);
        benchmark::DoNotOptimize(loaded.tnn.get());
    }
}
BENCHMARK(BM_TnnStmfLoad);

void
BM_PlanStmfLoad(benchmark::State &state)
{
    const std::string path = "/tmp/bench_startup_bm_plan.stmf";
    (void)model::packNetwork(bigNetwork(64, 48), path,
                             model::PackOptions{});
    for (auto _ : state) {
        model::LoadedModel loaded;
        (void)model::loadModel(path, model::LoadMode::Mmap, loaded);
        benchmark::DoNotOptimize(loaded.plan.get());
    }
}
BENCHMARK(BM_PlanStmfLoad);

} // namespace

ST_BENCH_MAIN(printTables)
