/**
 * @file
 * Experiment E7 — the streaming serving layer (ROADMAP item 2).
 *
 * Two questions, answered in-process (no sockets, so the numbers are
 * the engine's, not the kernel's):
 *
 *  1. *Throughput*: volleys/sec end-to-end through StreamServer —
 *     session framing, bounded rings, cross-session batching on the
 *     shared pool, per-session demux — as the concurrent-session
 *     count grows.
 *  2. *Overload*: with a deliberately tiny ingress ring and a short
 *     deadline, a burst larger than the server can hold must degrade
 *     only through the defined paths: every offered volley comes back
 *     as exactly one of delivered / drop-shed / drop-deadline, with
 *     the serve.shed.* metrics accounting the losses. The table shows
 *     delivered+dropped == offered at every burst size.
 */

#include "bench_common.hpp"

#include <chrono>
#include <thread>

#include "serve/latency.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "tnn/tnn_network.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace st;
using namespace st::serve;

namespace {

constexpr size_t kLines = 16;

TnnNetwork
buildNetwork()
{
    TnnNetwork net;
    ColumnParams l0;
    l0.numInputs = kLines;
    l0.numNeurons = 48;
    l0.wtaK = 4;
    l0.seed = 7;
    net.addLayer(l0);
    ColumnParams l1;
    l1.numInputs = 48;
    l1.numNeurons = kLines;
    l1.wtaK = 1;
    l1.seed = 11;
    net.addLayer(l1);
    return net;
}

/**
 * Decorator that stalls every batch call: the overload arm needs a
 * model slower than the feeder or the tiny ingress ring never fills
 * and nothing is ever shed.
 */
class SlowModel : public ServeModel
{
  public:
    SlowModel(std::unique_ptr<ServeModel> inner,
              std::chrono::milliseconds stall)
        : inner_(std::move(inner)), stall_(stall)
    {
    }

    size_t numInputs() const override { return inner_->numInputs(); }
    std::string name() const override { return inner_->name(); }

    std::vector<std::string>
    processBatch(std::span<const BatchItem> items,
                 size_t nthreads) override
    {
        std::this_thread::sleep_for(stall_);
        return inner_->processBatch(items, nthreads);
    }

    void endSession(uint64_t session) override
    {
        inner_->endSession(session);
    }

  private:
    std::unique_ptr<ServeModel> inner_;
    std::chrono::milliseconds stall_;
};

/** Feed @p volleys windows of synthetic events into @p s. */
void
feedStream(Session &s, size_t volleys, uint64_t window, uint64_t seed)
{
    s.feedLine("stserve 1", steadyNowMs());
    s.feedLine("addresses " + std::to_string(kLines) + " window " +
                   std::to_string(window),
               steadyNowMs());
    uint64_t rng = seed;
    for (size_t w = 0; w < volleys; ++w) {
        const uint64_t base = w * window;
        uint64_t t = base; // times must be nondecreasing on the wire
        for (size_t k = 0; k < 3; ++k) {
            rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
            t += (rng >> 33) % (window / 4 + 1);
            if (t >= base + window)
                break;
            const uint64_t a = (rng >> 20) % kLines;
            s.feedLine(std::to_string(t) + " " + std::to_string(a),
                       steadyNowMs());
        }
        s.feedLine("flush", steadyNowMs());
    }
    s.feedLine("end", steadyNowMs());
}

/** Drain a session's egress, counting volley/drop lines. */
void
drainStream(Session &s, uint64_t &volleys, uint64_t &drops)
{
    while (true) {
        std::optional<std::string> line =
            s.nextOutput(std::chrono::milliseconds(50));
        if (line) {
            if (line->rfind("volley ", 0) == 0)
                ++volleys;
            else if (line->rfind("drop ", 0) == 0)
                ++drops;
        } else if (s.finished()) {
            return;
        }
    }
}

void
printTables()
{
    const size_t volleysPer = bench::scaled(512, 16);
    const uint64_t window = 16;

    std::cout << "E7a | streaming throughput, end-to-end "
                 "(sessions x " << volleysPer << " volleys)\n";
    std::vector<size_t> sessionCounts = {1, 4, 8};
    if (bench::smokeMode())
        sessionCounts = {1, 2};
    AsciiTable t({"sessions", "seconds", "volleys/sec", "delivered"});
    double base_secs = 0;
    LatencySnapshot lt;
    bool haveLat = false;
    for (size_t nsessions : sessionCounts) {
        ServeConfig config;
        config.window = window;
        config.maxSessions = nsessions;
        config.ingressCapacity = 64;
        config.deadlineMs = 60000; // throughput run: nothing expires
        StreamServer server(
            std::make_unique<TnnServeModel>(buildNetwork()), config);
        server.start();

        std::vector<std::shared_ptr<Session>> sessions;
        for (size_t i = 0; i < nsessions; ++i)
            sessions.push_back(server.openSession("bench").session);

        Stopwatch sw;
        std::vector<std::thread> drivers;
        std::vector<uint64_t> delivered(nsessions, 0);
        std::vector<uint64_t> dropped(nsessions, 0);
        for (size_t i = 0; i < nsessions; ++i) {
            drivers.emplace_back([&, i] {
                // Feed and drain concurrently, as a real client does:
                // a stream longer than the egress ring would otherwise
                // stall the batcher and measure the deadline, not the
                // engine.
                std::thread feeder([&, i] {
                    feedStream(*sessions[i], volleysPer, window,
                               17 + i);
                });
                drainStream(*sessions[i], delivered[i], dropped[i]);
                feeder.join();
            });
        }
        for (auto &d : drivers)
            d.join();
        const double secs = sw.seconds();
        // Latency decomposition of every delivered volley (the same
        // block healthJson() serves), captured before the drain so
        // the numbers are the run's, then recorded into the JSON
        // report.
        const LatencySnapshot lat = server.latencySnapshot();
        server.requestStop();
        server.waitDrained();

        uint64_t total = 0;
        for (uint64_t d : delivered)
            total += d;
        const double vps = static_cast<double>(total) / secs;
        if (nsessions == sessionCounts.front())
            base_secs = secs;
        t.row(nsessions, secs, vps, total);
        bench::record("serve",
                      "sessions=" + std::to_string(nsessions), vps,
                      base_secs / secs);
        if (nsessions == sessionCounts.back()) {
            lt = lat;
            haveLat = true;
        }
        for (size_t stage = 0; stage < kStageCount; ++stage) {
            const std::string cfg =
                "sessions=" + std::to_string(nsessions);
            const std::string name = stageName(stage);
            bench::recordValue("serve_latency", cfg,
                               name + "_p50_us",
                               lat.stages[stage].percentile(0.50));
            bench::recordValue("serve_latency", cfg,
                               name + "_p99_us",
                               lat.stages[stage].percentile(0.99));
        }
    }
    t.writeTo(std::cout);
    std::cout << "shape check: volleys/sec grows with sessions until "
                 "the pool saturates; delivered must equal "
                 "sessions x " << volleysPer << " (no silent loss).\n\n";

    if (haveLat) {
        std::cout << "E7a' | per-stage latency (us, "
                  << sessionCounts.back() << " sessions)\n";
        AsciiTable lt_table(
            {"stage", "count", "p50", "p90", "p99", "p99.9"});
        bool monotone = true;
        for (size_t stage = 0; stage < kStageCount; ++stage) {
            const StageHist &h = lt.stages[stage];
            lt_table.row(stageName(stage), h.count,
                         h.percentile(0.50), h.percentile(0.90),
                         h.percentile(0.99), h.percentile(0.999));
            monotone = monotone &&
                       h.percentile(0.50) <= h.percentile(0.99);
        }
        lt_table.writeTo(std::cout);
        std::cout << "shape check: p50 <= p99 per stage ("
                  << (monotone ? "ok" : "VIOLATED")
                  << "); counts are 0 when ST_OBS_ENABLED=OFF.\n\n";
    }

    std::cout << "E7b | overload degradation accounting "
                 "(5ms/batch model, ingress=4, deadline=1ms)\n";
    std::vector<size_t> bursts = {32, 128};
    if (bench::smokeMode())
        bursts = {16};
    AsciiTable ot({"offered", "delivered", "dropped", "accounted"});
    for (size_t burst : bursts) {
        ServeConfig config;
        config.window = window;
        config.ingressCapacity = 4;
        config.deadlineMs = 1;
        config.batchMax = 4;
        StreamServer server(
            std::make_unique<SlowModel>(
                std::make_unique<TnnServeModel>(buildNetwork()),
                std::chrono::milliseconds(5)),
            config);
        server.start();
        std::shared_ptr<Session> s =
            server.openSession("burst").session;
        uint64_t delivered = 0, dropped = 0;
        std::thread drain(
            [&] { drainStream(*s, delivered, dropped); });
        feedStream(*s, burst, window, 99);
        drain.join();
        server.requestStop();
        server.waitDrained();
        const bool accounted = delivered + dropped == burst;
        ot.row(burst, delivered, dropped, accounted ? "yes" : "NO");
        bench::recordValue("serve",
                           "burst=" + std::to_string(burst),
                           "shed_fraction",
                           static_cast<double>(dropped) /
                               static_cast<double>(burst));
    }
    ot.writeTo(std::cout);
    std::cout << "shape check: the accounted column must read yes "
                 "everywhere — overload may drop volleys but only "
                 "through the deadline/shed paths, never silently.\n";
}

void
BM_ServeEndToEnd(benchmark::State &state)
{
    const auto nsessions = static_cast<size_t>(state.range(0));
    const size_t volleysPer = 64;
    for (auto _ : state) {
        ServeConfig config;
        config.window = 16;
        config.maxSessions = nsessions;
        config.deadlineMs = 60000;
        StreamServer server(
            std::make_unique<TnnServeModel>(buildNetwork()), config);
        server.start();
        std::vector<std::thread> drivers;
        for (size_t i = 0; i < nsessions; ++i) {
            drivers.emplace_back([&server, i, volleysPer] {
                std::shared_ptr<Session> s =
                    server.openSession("bm").session;
                std::thread feeder(
                    [&s, volleysPer, i] {
                        feedStream(*s, volleysPer, 16, i + 1);
                    });
                uint64_t v = 0, d = 0;
                drainStream(*s, v, d);
                feeder.join();
            });
        }
        for (auto &d : drivers)
            d.join();
        server.requestStop();
        server.waitDrained();
    }
    state.SetItemsProcessed(static_cast<int64_t>(
        state.iterations() * nsessions * volleysPer));
}
BENCHMARK(BM_ServeEndToEnd)->Arg(1)->Arg(4);

} // namespace

ST_BENCH_MAIN(printTables)
