/**
 * @file
 * Experiment E-F — robustness: accuracy degradation under deterministic
 * fault injection, and the cost of the runtime invariant guards.
 *
 * Three figures:
 *  F1: classification degradation vs spike-time jitter. A column is
 *      STDP-trained clean; inference then runs under an InjectionScope
 *      of growing jitter. Because injector draws are severity-nested
 *      (fault.hpp), the curves are monotone by construction, the
 *      graceful-degradation signature the TNN literature reports.
 *  F2: the same sweep over drop probability (spikes deleted to inf).
 *  F3: GRL event-engine output corruption vs delay-gate stage jitter.
 *
 * Plus the guard-overhead table: batch inference throughput with no
 * scope, with guards compiled in but off (the null-check hot path —
 * must be free), and with every guard on.
 */

#include "bench_common.hpp"

#include <algorithm>
#include <optional>

#include "fault/fault.hpp"
#include "grl/compile.hpp"
#include "grl/event_sim.hpp"
#include "tnn/datasets.hpp"
#include "tnn/metrics.hpp"
#include "tnn/tnn_network.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

std::optional<size_t>
winnerOf(const Volley &fired)
{
    std::optional<size_t> winner;
    Time best = INF;
    for (size_t j = 0; j < fired.size(); ++j) {
        if (fired[j] < best) {
            best = fired[j];
            winner = j;
        }
    }
    return winner;
}

/** A clean-trained one-layer TNN over the jittered-prototype dataset. */
struct TrainedSetup
{
    TnnNetwork net;
    std::vector<LabeledVolley> test;
    size_t numNeurons = 0;
    size_t numClasses = 0;
};

TrainedSetup
trainSetup()
{
    PatternSetParams dp;
    dp.numClasses = 4;
    dp.numLines = 16;
    dp.timeSpan = 7;
    dp.jitter = 0.3;
    dp.dropProb = 0.02;
    dp.seed = 606;
    PatternDataset data(dp);

    ColumnParams cp;
    cp.numInputs = dp.numLines;
    cp.numNeurons = 2 * dp.numClasses;
    cp.threshold = 14;
    cp.fatigue = 8;
    cp.maxWeight = 7;
    cp.shape = ResponseShape::Step;
    cp.seed = 99;
    Column col(cp);
    SimplifiedStdp rule(0.06, 0.045);
    for (const auto &s : data.sampleMany(bench::scaled(800, 60)))
        col.trainStep(s.volley, rule);

    TrainedSetup setup;
    setup.net.addLayer(cp);
    for (size_t j = 0; j < cp.numNeurons; ++j)
        setup.net.layer(0).setWeights(j, col.weights(j));
    setup.test = data.sampleMany(bench::scaled(400, 60));
    setup.numNeurons = cp.numNeurons;
    setup.numClasses = dp.numClasses;
    return setup;
}

/** Accuracy + clean-winner match fraction under the active injector. */
struct DegradationPoint
{
    double accuracy = 0;
    double cleanMatch = 0;
};

DegradationPoint
measure(const TrainedSetup &setup,
        const std::vector<std::optional<size_t>> &clean_winners)
{
    std::vector<Volley> inputs;
    inputs.reserve(setup.test.size());
    for (const auto &s : setup.test)
        inputs.push_back(s.volley);
    auto outs = setup.net.processBatch(inputs);

    ConfusionMatrix m(setup.numNeurons, setup.numClasses);
    size_t matches = 0;
    for (size_t i = 0; i < outs.size(); ++i) {
        auto w = winnerOf(outs[i]);
        m.add(w, setup.test[i].label);
        matches += w == clean_winners[i];
    }
    return {m.accuracy(),
            static_cast<double>(matches) / outs.size()};
}

void
degradationSweep(const TrainedSetup &setup, const char *figure,
                 const char *knob,
                 const std::vector<double> &levels,
                 fault::FaultSpec (*specOf)(double))
{
    // The clean reference winners (no scope active).
    std::vector<std::optional<size_t>> clean;
    for (const auto &s : setup.test)
        clean.push_back(winnerOf(setup.net.process(s.volley)));

    AsciiTable t({knob, "accuracy", "clean-match"});
    double prev_match = 2.0;
    bool monotone = true;
    for (double level : levels) {
        fault::FaultInjector inj(specOf(level));
        fault::InjectionScope scope(inj);
        DegradationPoint p = measure(setup, clean);
        t.row(level, p.accuracy, p.cleanMatch);
        bench::recordValue(figure,
                           std::string(knob) + "=" +
                               std::to_string(level),
                           "accuracy", p.accuracy);
        bench::recordValue(figure,
                           std::string(knob) + "=" +
                               std::to_string(level),
                           "clean_match", p.cleanMatch);
        monotone = monotone && p.cleanMatch <= prev_match + 1e-9;
        prev_match = p.cleanMatch;
    }
    t.writeTo(std::cout);
    std::cout << "shape check: "
              << (monotone ? "monotone non-increasing"
                           : "NOT MONOTONE (unexpected)")
              << " — severity-nested draws degrade gracefully.\n\n";
}

fault::FaultSpec
jitterSpec(double level)
{
    fault::FaultSpec spec;
    spec.seed = 4242;
    spec.jitter = static_cast<Time::rep>(level);
    return spec;
}

fault::FaultSpec
dropSpec(double level)
{
    fault::FaultSpec spec;
    spec.seed = 4242;
    spec.dropProb = level;
    return spec;
}

void
grlSweep()
{
    std::cout << "F3 | GRL event engine: output corruption vs "
                 "delay-gate stage jitter\n";
    Network alg(4);
    NodeId a = alg.min(alg.input(0), alg.input(1));
    NodeId b = alg.max(alg.input(2), alg.input(3));
    NodeId c = alg.inc(a, 3);
    NodeId d = alg.inc(b, 2);
    alg.markOutput(alg.lt(c, d));
    alg.markOutput(alg.min(c, d));
    grl::Circuit circuit = grl::compileToGrl(alg).circuit;

    Rng rng(31);
    const size_t trials = bench::scaled(400, 40);
    std::vector<std::vector<Time>> inputs;
    for (size_t s = 0; s < trials; ++s) {
        std::vector<Time> x(4);
        for (Time &v : x)
            v = rng.chance(0.15) ? INF : Time(rng.below(10));
        inputs.push_back(std::move(x));
    }
    std::vector<std::vector<Time>> clean;
    for (const auto &x : inputs)
        clean.push_back(grl::simulateEvents(circuit, x).outputs);

    AsciiTable t({"stage jitter", "output match fraction"});
    for (Time::rep g : {0, 1, 2, 4}) {
        fault::FaultSpec spec;
        spec.seed = 7;
        spec.gateDelayJitter = g;
        fault::FaultInjector inj(spec);
        fault::InjectionScope scope(inj);
        size_t match = 0;
        for (size_t s = 0; s < inputs.size(); ++s)
            match += grl::simulateEvents(circuit, inputs[s]).outputs ==
                     clean[s];
        double frac = static_cast<double>(match) / inputs.size();
        t.row(g, frac);
        bench::recordValue("fault_grl", "gate_jitter=" + std::to_string(g),
                           "clean_match", frac);
    }
    t.writeTo(std::cout);
    std::cout << "shape check: match fraction 1.0 at zero jitter, "
                 "decaying as mis-sized delay lines skew race "
                 "outcomes.\n\n";
}

void
guardOverhead(const TrainedSetup &setup)
{
    std::cout << "F4 | guard overhead: batch inference throughput\n";
    std::vector<Volley> inputs;
    for (const auto &s : setup.test)
        inputs.push_back(s.volley);
    const size_t reps = bench::scaled(30, 2);

    auto timeIt = [&]() {
        // One warmup, then best-of-3 to de-noise.
        setup.net.processBatch(inputs);
        double best = 1e100;
        for (int r = 0; r < 3; ++r) {
            Stopwatch w;
            for (size_t k = 0; k < reps; ++k)
                setup.net.processBatch(inputs);
            best = std::min(best, w.seconds());
        }
        return static_cast<double>(reps * inputs.size()) / best;
    };

    const double off = timeIt(); // no scope: the shipping hot path
    double on;
    {
        fault::GuardScope scope(fault::GuardOptions{});
        on = timeIt();
    }
    double invariance_heavy;
    {
        fault::GuardOptions opts;
        opts.invarianceSampleEvery = 1;
        fault::GuardScope scope(opts);
        invariance_heavy = timeIt();
    }

    AsciiTable t({"mode", "volleys/sec", "relative"});
    t.row("guards off (no scope)", off, 1.0);
    t.row("guards on (sampled invariance)", on, on / off);
    t.row("guards on (invariance every volley)", invariance_heavy,
          invariance_heavy / off);
    t.writeTo(std::cout);
    bench::record("fault_guard", "guards=off", off, 1.0);
    bench::record("fault_guard", "guards=on", on, on / off);
    bench::record("fault_guard", "guards=on_invariance_all",
                  invariance_heavy, invariance_heavy / off);
    bench::recordValue("fault_guard", "guards=on", "overhead_pct",
                       100.0 * (off / on - 1.0));
    std::cout << "shape check: the sampled-guard column stays within "
                 "noise of off; per-volley invariance pays one extra "
                 "layer evaluation.\n\n";
}

void
printFigure()
{
    TrainedSetup setup = trainSetup();

    std::cout << "F1 | accuracy degradation vs spike-time jitter "
                 "(clean-trained column, faulted inference)\n";
    degradationSweep(setup, "fault_jitter", "jitter",
                     {0, 1, 2, 4, 8}, jitterSpec);

    std::cout << "F2 | accuracy degradation vs drop probability\n";
    degradationSweep(setup, "fault_drop", "drop",
                     {0, 0.05, 0.1, 0.2, 0.4, 0.8}, dropSpec);

    grlSweep();
    guardOverhead(setup);
}

void
BM_ProcessBatchGuardsOff(benchmark::State &state)
{
    TrainedSetup setup = trainSetup();
    std::vector<Volley> inputs;
    for (const auto &s : setup.test)
        inputs.push_back(s.volley);
    for (auto _ : state)
        benchmark::DoNotOptimize(setup.net.processBatch(inputs));
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * inputs.size()));
}
BENCHMARK(BM_ProcessBatchGuardsOff)->Unit(benchmark::kMillisecond);

void
BM_ProcessBatchGuardsOn(benchmark::State &state)
{
    TrainedSetup setup = trainSetup();
    std::vector<Volley> inputs;
    for (const auto &s : setup.test)
        inputs.push_back(s.volley);
    fault::GuardScope scope(fault::GuardOptions{});
    for (auto _ : state)
        benchmark::DoNotOptimize(setup.net.processBatch(inputs));
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * inputs.size()));
}
BENCHMARK(BM_ProcessBatchGuardsOn)->Unit(benchmark::kMillisecond);

void
BM_ProcessBatchInjected(benchmark::State &state)
{
    TrainedSetup setup = trainSetup();
    std::vector<Volley> inputs;
    for (const auto &s : setup.test)
        inputs.push_back(s.volley);
    fault::FaultSpec spec;
    spec.seed = 1;
    spec.jitter = 2;
    spec.dropProb = 0.1;
    fault::FaultInjector inj(spec);
    fault::InjectionScope scope(inj);
    for (auto _ : state)
        benchmark::DoNotOptimize(setup.net.processBatch(inputs));
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * inputs.size()));
}
BENCHMARK(BM_ProcessBatchInjected)->Unit(benchmark::kMillisecond);

} // namespace

ST_BENCH_MAIN(printFigure)
