/**
 * @file
 * Ablation experiments for the reproduction's own design choices
 * (DESIGN.md Sec. 3): what each mechanism buys.
 *
 *  A1. Optimizer passes (CSE + DCE) on every paper construction:
 *      node/gate savings at equal semantics.
 *  A2. Native-max vs Lemma-2-lowered minterm synthesis: the price of
 *      the strict {min, inc, lt} basis.
 *  A3. WTA training with and without the fatigue ("conscience")
 *      mechanism: clustering purity impact.
 *  A4. Causality closure in function tables: how many inputs would be
 *      misclassified without it (counting closure-matched lookups).
 */

#include "bench_common.hpp"

#include "core/function_table.hpp"
#include "core/optimize.hpp"
#include "core/synthesis.hpp"
#include "neuron/srm0_network.hpp"
#include "neuron/wta.hpp"
#include "racelogic/race_path.hpp"
#include "tnn/datasets.hpp"
#include "tnn/metrics.hpp"
#include "tnn/tnn_network.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

void
printOptimizerAblation()
{
    std::cout << "A1 | optimizer (CSE + delay factoring + DCE) on the "
                 "paper constructions\n";
    std::cout << "    (FF stages = shift-register flipflops in GRL — "
                 "the paper's Sec. V.B energy concern; delay factoring "
                 "is the 'perhaps minimize' future work, done)\n";
    AsciiTable t({"construction", "raw nodes", "opt nodes", "raw FF",
                  "opt FF", "FF saved %", "equiv probes"});
    Rng rng(50);
    auto add = [&](const char *name, const Network &raw,
                   Time::rep limit) {
        Network opt = optimize(raw);
        size_t probes = 300, ok = 0;
        for (size_t s = 0; s < probes; ++s) {
            std::vector<Time> x(raw.numInputs());
            for (Time &v : x)
                v = rng.chance(0.2) ? INF : Time(rng.below(limit + 1));
            ok += opt.evaluate(x) == raw.evaluate(x);
        }
        double ff_saved =
            raw.totalIncStages() == 0
                ? 0.0
                : 100.0 * (1.0 - static_cast<double>(
                                     opt.totalIncStages()) /
                                     static_cast<double>(
                                         raw.totalIncStages()));
        t.row(name, raw.size(), opt.size(), raw.totalIncStages(),
              opt.totalIncStages(), ff_saved,
              std::to_string(ok) + "/" + std::to_string(probes));
        bench::recordValue("ablation", name, "ff_saved_pct", ff_saved);
        bench::recordValue("ablation", name, "equiv_probes_ok",
                           static_cast<double>(ok));
    };

    FunctionTable fig7 =
        FunctionTable::parse(3, "0 1 2 3\n1 0 inf 2\n2 2 0 2\n");
    SynthesisOptions keep_incs;
    keep_incs.skipZeroIncs = false;
    add("Fig. 9 minterms (raw incs)",
        synthesizeMinterms(fig7, keep_incs), 8);
    ResponseFunction r = ResponseFunction::biexponential(3, 4.0, 1.0);
    add("Fig. 12 SRM0 (3 syn)", buildSrm0Network({r, r, r}, 3), 8);
    add("Fig. 15 WTA (16)", wtaNetwork(16, 1), 8);
    Rng grng(51);
    racelogic::Graph g = racelogic::Graph::grid(grng, 5, 5, 6);
    add("race grid 5x5", racelogic::buildRaceNetwork(g, 0), 0);
    t.writeTo(std::cout);
    std::cout << "shape check: node savings come from shared taps and "
                 "sorter symmetry; flipflop savings come from factoring "
                 "parallel delay taps into chains (sum -> max per "
                 "source). Equivalence is total.\n\n";
}

void
printBasisAblation()
{
    std::cout << "A2 | native max vs Lemma-2 lowering in minterm "
                 "synthesis\n";
    AsciiTable t({"rows", "native nodes", "lowered nodes",
                  "native depth", "lowered depth"});
    Rng rng(52);
    for (size_t rows : {2, 8, 24}) {
        FunctionTable table(3);
        size_t attempts = 0;
        while (table.rowCount() < rows && attempts++ < rows * 60) {
            std::vector<Time> in(3);
            for (Time &x : in)
                x = rng.chance(0.15) ? INF : Time(rng.below(6));
            in[rng.below(3)] = 0_t;
            try {
                table.addRow(in, Time(rng.below(6)));
            } catch (const std::invalid_argument &) {
            }
        }
        SynthesisOptions native, lowered;
        lowered.useNativeMax = false;
        Network a = optimize(synthesizeMinterms(table, native));
        Network b = optimize(synthesizeMinterms(table, lowered));
        t.row(table.rowCount(), a.size(), b.size(), a.depth(),
              b.depth());
    }
    t.writeTo(std::cout);
    std::cout << "shape check: the strict basis costs ~4 lt + 1 min "
                 "per eliminated max and deepens the network — native "
                 "max (an OR gate in GRL) is the cheaper choice.\n\n";
}

std::optional<size_t>
earliestOf(const std::vector<Time> &fired)
{
    std::optional<size_t> winner;
    Time best = INF;
    for (size_t j = 0; j < fired.size(); ++j) {
        if (fired[j] < best) {
            best = fired[j];
            winner = j;
        }
    }
    return winner;
}

void
printFatigueAblation()
{
    std::cout << "A3 | WTA training with/without fatigue (conscience), "
                 "on a permissive and a selective regime\n";
    AsciiTable t({"workload", "theta", "fatigue", "purity",
                  "busiest/laziest wins"});

    // Permissive thresholds: without fatigue one neuron monopolizes.
    for (size_t fatigue : {size_t{0}, size_t{8}}) {
        FreewayParams fp;
        fp.lanes = 3;
        fp.sensorsPerLane = 8;
        fp.jitter = 0.3;
        fp.missProb = 0.05;
        fp.seed = 42;
        FreewayGenerator gen(fp);
        ColumnParams cp;
        cp.numInputs = gen.numAddresses();
        cp.numNeurons = 6;
        cp.threshold = 6; // permissive: everything fires early
        cp.seed = 7;
        cp.fatigue = fatigue;
        Column col(cp);
        SimplifiedStdp rule(0.07, 0.05);
        for (const auto &s : gen.generate(600))
            col.trainStep(s.volley, rule);
        ConfusionMatrix m(6, 3);
        for (const auto &s : gen.generate(200))
            m.add(earliestOf(col.rawFireTimes(s.volley)), s.label);
        size_t busiest = 0, laziest = ~size_t{0};
        for (size_t j = 0; j < 6; ++j) {
            busiest = std::max(busiest, col.winCount(j));
            laziest = std::min(laziest, col.winCount(j));
        }
        t.row("freeway", 6, fatigue, m.purity(),
              std::to_string(busiest) + "/" + std::to_string(laziest));
    }

    // Selective thresholds: fatigue is unnecessary (and can cost a
    // little by forcing rotations).
    for (size_t fatigue : {size_t{0}, size_t{8}}) {
        PatternSetParams dp;
        dp.numClasses = 4;
        dp.numLines = 16;
        dp.jitter = 0.4;
        dp.seed = 2718;
        PatternDataset data(dp);
        ColumnParams cp;
        cp.numInputs = 16;
        cp.numNeurons = 8;
        cp.threshold = 14; // selective
        cp.seed = 99;
        cp.fatigue = fatigue;
        Column col(cp);
        SimplifiedStdp rule(0.06, 0.045);
        for (const auto &s : data.sampleMany(800))
            col.trainStep(s.volley, rule);
        ConfusionMatrix m(8, 4);
        for (const auto &s : data.sampleMany(300))
            m.add(earliestOf(col.rawFireTimes(s.volley)), s.label);
        size_t busiest = 0, laziest = ~size_t{0};
        for (size_t j = 0; j < 8; ++j) {
            busiest = std::max(busiest, col.winCount(j));
            laziest = std::min(laziest, col.winCount(j));
        }
        t.row("patterns", 14, fatigue, m.purity(),
              std::to_string(busiest) + "/" + std::to_string(laziest));
    }
    t.writeTo(std::cout);
    std::cout << "shape check: fatigue turns winner monopolies "
                 "(busiest/laziest = N/0) into balanced competitions "
                 "and lifts purity, dramatically so in permissive "
                 "regimes.\n\n";
}

void
printClosureAblation()
{
    std::cout << "A4 | causality closure in table lookup\n";
    // Count how many random probes only match via the closure rule.
    Rng rng(53);
    size_t closure_hits = 0, exact_hits = 0, misses = 0;
    FunctionTable fig7 =
        FunctionTable::parse(3, "0 1 2 3\n1 0 inf 2\n2 2 0 2\n");
    const size_t probes = 20000;
    for (size_t s = 0; s < probes; ++s) {
        std::vector<Time> x(3);
        for (Time &v : x)
            v = rng.chance(0.2) ? INF : Time(rng.below(8));
        Time y = fig7.evaluate(x);
        if (y.isInf()) {
            ++misses;
            continue;
        }
        // Re-evaluate with closure disabled: exact match only.
        Normalized norm = normalize(x);
        bool exact = false;
        for (const TableRow &row : fig7.rows())
            exact |= row.inputs == norm.values;
        if (exact)
            ++exact_hits;
        else
            ++closure_hits;
    }
    AsciiTable t({"outcome", "count", "share %"});
    auto pct = [&](size_t n) {
        return 100.0 * static_cast<double>(n) /
               static_cast<double>(probes);
    };
    t.row("exact-row match", exact_hits, pct(exact_hits));
    t.row("closure-only match", closure_hits, pct(closure_hits));
    t.row("no match (inf)", misses, pct(misses));
    t.writeTo(std::cout);
    std::cout << "shape check: a sizable share of matching inputs rely "
                 "on closure — without it the table would disagree "
                 "with every causal implementation of itself.\n";
}

void
printFigure()
{
    printOptimizerAblation();
    printBasisAblation();
    printFatigueAblation();
    printClosureAblation();
}

void
BM_OptimizePass(benchmark::State &state)
{
    ResponseFunction r = ResponseFunction::biexponential(3, 4.0, 1.0);
    std::vector<ResponseFunction> syn(
        static_cast<size_t>(state.range(0)), r);
    Network raw = buildSrm0Network(
        syn, static_cast<ResponseFunction::Amp>(syn.size()));
    for (auto _ : state) {
        Network opt = optimize(raw);
        benchmark::DoNotOptimize(opt);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(raw.size()));
}
BENCHMARK(BM_OptimizePass)->Arg(4)->Arg(8);

} // namespace

ST_BENCH_MAIN(printFigure)
