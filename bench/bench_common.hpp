/**
 * @file
 * Shared scaffolding for the per-figure benchmark binaries.
 *
 * Every bench binary does two things (DESIGN.md Sec. 4):
 *  1. regenerate its paper figure's quantitative series and print it as
 *     an ASCII table (captured into bench_output.txt / EXPERIMENTS.md);
 *  2. run google-benchmark timings for the involved hot paths.
 *
 * ST_BENCH_MAIN(printer) emits a main() that prints first, then hands
 * argv to google-benchmark.
 *
 * Passing --smoke runs the table printer at tiny problem sizes (via
 * st::bench::scaled) and skips the timing loops entirely — the CI
 * smoke step uses this to execute every figure path quickly while
 * still propagating crashes and sanitizer reports (no more
 * "--benchmark_filter=NOTHING || true" masking).
 *
 * Passing --json <path> additionally writes every record() call the
 * printer makes — bench name, configuration, volleys/sec, speedup —
 * as a machine-readable JSON array, plus a "metrics" object holding
 * the aggregated engine counters/gauges/histograms of the run
 * (obs/metrics.hpp), so CI archives what the engines *did* (spikes,
 * events, steals, SIMD blocks) next to how fast they did it.
 *
 * Tracing rides along for free: ST_TRACE=out.json <bench> writes a
 * Chrome-trace JSON of the run's spans at exit (open in Perfetto).
 * Smoke mode additionally exercises one metrics snapshot and one
 * trace flush so the sanitizer CI jobs cover the obs layer.
 */

#ifndef ST_BENCH_BENCH_COMMON_HPP
#define ST_BENCH_BENCH_COMMON_HPP

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace st::bench {

/** True when the binary was invoked with --smoke. */
inline bool &
smokeMode()
{
    static bool mode = false;
    return mode;
}

/** Pick @p full normally, @p tiny under --smoke. */
inline size_t
scaled(size_t full, size_t tiny)
{
    return smokeMode() ? tiny : full;
}

/** One machine-readable measurement emitted by a figure printer. */
struct JsonRecord
{
    std::string bench;  //!< bench binary / experiment name
    std::string config; //!< e.g. "synapses=16" or "threads=4"
    double volleysPerSec = 0;
    /** Throughput ratio vs the experiment's baseline engine (1.0 when
     *  the row *is* the baseline). */
    double speedup = 1.0;
};

/** Destination of --json <path>; empty = no JSON output. */
inline std::string &
jsonPath()
{
    static std::string path;
    return path;
}

/** Records accumulated by the current run's printer. */
inline std::vector<JsonRecord> &
jsonRecords()
{
    static std::vector<JsonRecord> records;
    return records;
}

/** Append one measurement (no-op unless --json was given). */
inline void
record(std::string bench, std::string config, double volleys_per_sec,
       double speedup)
{
    if (jsonPath().empty())
        return;
    jsonRecords().push_back({std::move(bench), std::move(config),
                             volleys_per_sec, speedup});
}

/**
 * One machine-readable figure-series point: benches whose tables are
 * counts or ratios rather than timed throughput record their headline
 * series through this, so every bench binary emits usable JSON.
 */
struct SeriesPoint
{
    std::string bench;
    std::string config;
    std::string metric;
    double value = 0;
};

/** Series points accumulated by the current run's printer. */
inline std::vector<SeriesPoint> &
seriesPoints()
{
    static std::vector<SeriesPoint> points;
    return points;
}

/** Append one figure-series point (no-op unless --json was given). */
inline void
recordValue(std::string bench, std::string config, std::string metric,
            double value)
{
    if (jsonPath().empty())
        return;
    seriesPoints().push_back({std::move(bench), std::move(config),
                              std::move(metric), value});
}

/** Minimal JSON string escape (quotes, backslashes, control chars). */
inline std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            c = ' ';
        out += c;
    }
    return out;
}

/**
 * Write the accumulated records + engine metrics to jsonPath().
 *
 * The write is atomic: the report goes to <path>.tmp and is renamed
 * over <path> only after a successful close, so an interrupted or
 * crashed bench never leaves a truncated JSON for the CI perf-smoke
 * parser — the old report (or no file) survives instead.
 */
inline void
writeJsonReport()
{
    if (jsonPath().empty())
        return;
    const std::string tmp = jsonPath() + ".tmp";
    std::ofstream out(tmp);
    if (!out) {
        std::cerr << "bench: cannot write --json file " << tmp << "\n";
        return;
    }
    out << "{\n  \"smoke\": " << (smokeMode() ? "true" : "false")
        << ",\n  \"results\": [";
    const auto &records = jsonRecords();
    for (size_t i = 0; i < records.size(); ++i) {
        const JsonRecord &r = records[i];
        out << (i ? "," : "") << "\n    {\"bench\": \""
            << jsonEscape(r.bench) << "\", \"config\": \""
            << jsonEscape(r.config) << "\", \"volleys_per_sec\": "
            << r.volleysPerSec << ", \"speedup\": " << r.speedup << "}";
    }
    out << "\n  ],\n  \"series\": [";
    const auto &points = seriesPoints();
    for (size_t i = 0; i < points.size(); ++i) {
        const SeriesPoint &p = points[i];
        out << (i ? "," : "") << "\n    {\"bench\": \""
            << jsonEscape(p.bench) << "\", \"config\": \""
            << jsonEscape(p.config) << "\", \"metric\": \""
            << jsonEscape(p.metric) << "\", \"value\": " << p.value
            << "}";
    }
    out << "\n  ],\n  \"metrics\": ";
    obs::MetricsRegistry::instance().snapshot().writeJson(out);
    out << "\n}\n";
    out.close();
    if (!out) {
        std::cerr << "bench: error writing --json file " << tmp << "\n";
        std::remove(tmp.c_str());
        return;
    }
    if (std::rename(tmp.c_str(), jsonPath().c_str()) != 0) {
        std::cerr << "bench: cannot rename " << tmp << " to "
                  << jsonPath() << "\n";
        std::remove(tmp.c_str());
    }
}

/**
 * Smoke-mode obs exercise: force one registry snapshot and one trace
 * flush through their full serialization paths (into memory; the
 * ST_TRACE file, if any, is still written at exit), so every CI
 * sanitizer job executes the obs layer alongside the figure paths.
 */
inline void
smokeObsLayer()
{
    obs::MetricsSnapshot snap =
        obs::MetricsRegistry::instance().snapshot();
    std::ostringstream sink;
    snap.writeJson(sink);
    size_t metrics_bytes = sink.str().size();

    obs::TraceSession &session = obs::TraceSession::instance();
    const bool was_enabled = session.enabled();
    session.enable(); // keeps any ST_TRACE path; just turns capture on
    {
        ST_TRACE_SPAN("bench.smoke");
    }
    std::ostringstream trace_sink;
    session.writeJson(trace_sink);
    if (!was_enabled)
        session.disable();
    std::cout << "obs smoke: " << snap.counters.size()
              << " counters, " << snap.gauges.size() << " gauges, "
              << snap.histograms.size() << " histograms ("
              << metrics_bytes << " json bytes), trace flush "
              << trace_sink.str().size() << " bytes\n";
}

/**
 * Shared main(): strip --smoke and --json <path>, print the figure
 * tables, write the JSON report, then either stop (smoke mode) or run
 * google-benchmark on the remaining argv.
 */
inline int
runBenchMain(int argc, char **argv, void (*printer)())
{
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--smoke") {
            smokeMode() = true;
        } else if (std::string_view(argv[i]) == "--json" &&
                   i + 1 < argc) {
            jsonPath() = argv[++i];
        } else {
            argv[kept++] = argv[i];
        }
    }
    argc = kept;
    argv[argc] = nullptr;

    printer();
    std::cout << std::endl;
    writeJsonReport();
    if (smokeMode()) {
        smokeObsLayer();
        return 0;
    }

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace st::bench

#define ST_BENCH_MAIN(printer)                                          \
    int main(int argc, char **argv)                                     \
    {                                                                   \
        return st::bench::runBenchMain(argc, argv, printer);            \
    }

#endif // ST_BENCH_BENCH_COMMON_HPP
