/**
 * @file
 * Shared scaffolding for the per-figure benchmark binaries.
 *
 * Every bench binary does two things (DESIGN.md Sec. 4):
 *  1. regenerate its paper figure's quantitative series and print it as
 *     an ASCII table (captured into bench_output.txt / EXPERIMENTS.md);
 *  2. run google-benchmark timings for the involved hot paths.
 *
 * ST_BENCH_MAIN(printer) emits a main() that prints first, then hands
 * argv to google-benchmark.
 *
 * Passing --smoke runs the table printer at tiny problem sizes (via
 * st::bench::scaled) and skips the timing loops entirely — the CI
 * smoke step uses this to execute every figure path quickly while
 * still propagating crashes and sanitizer reports (no more
 * "--benchmark_filter=NOTHING || true" masking).
 *
 * Passing --json <path> additionally writes every record() call the
 * printer makes — bench name, configuration, volleys/sec, speedup —
 * as a machine-readable JSON array, so CI can archive throughput
 * numbers next to the human-readable tables.
 */

#ifndef ST_BENCH_BENCH_COMMON_HPP
#define ST_BENCH_BENCH_COMMON_HPP

#include <benchmark/benchmark.h>

#include <cstddef>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

namespace st::bench {

/** True when the binary was invoked with --smoke. */
inline bool &
smokeMode()
{
    static bool mode = false;
    return mode;
}

/** Pick @p full normally, @p tiny under --smoke. */
inline size_t
scaled(size_t full, size_t tiny)
{
    return smokeMode() ? tiny : full;
}

/** One machine-readable measurement emitted by a figure printer. */
struct JsonRecord
{
    std::string bench;  //!< bench binary / experiment name
    std::string config; //!< e.g. "synapses=16" or "threads=4"
    double volleysPerSec = 0;
    /** Throughput ratio vs the experiment's baseline engine (1.0 when
     *  the row *is* the baseline). */
    double speedup = 1.0;
};

/** Destination of --json <path>; empty = no JSON output. */
inline std::string &
jsonPath()
{
    static std::string path;
    return path;
}

/** Records accumulated by the current run's printer. */
inline std::vector<JsonRecord> &
jsonRecords()
{
    static std::vector<JsonRecord> records;
    return records;
}

/** Append one measurement (no-op unless --json was given). */
inline void
record(std::string bench, std::string config, double volleys_per_sec,
       double speedup)
{
    if (jsonPath().empty())
        return;
    jsonRecords().push_back({std::move(bench), std::move(config),
                             volleys_per_sec, speedup});
}

/** Minimal JSON string escape (quotes, backslashes, control chars). */
inline std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            c = ' ';
        out += c;
    }
    return out;
}

/** Write the accumulated records to jsonPath(). */
inline void
writeJsonReport()
{
    if (jsonPath().empty())
        return;
    std::ofstream out(jsonPath());
    if (!out) {
        std::cerr << "bench: cannot write --json file " << jsonPath()
                  << "\n";
        return;
    }
    out << "{\n  \"smoke\": " << (smokeMode() ? "true" : "false")
        << ",\n  \"results\": [";
    const auto &records = jsonRecords();
    for (size_t i = 0; i < records.size(); ++i) {
        const JsonRecord &r = records[i];
        out << (i ? "," : "") << "\n    {\"bench\": \""
            << jsonEscape(r.bench) << "\", \"config\": \""
            << jsonEscape(r.config) << "\", \"volleys_per_sec\": "
            << r.volleysPerSec << ", \"speedup\": " << r.speedup << "}";
    }
    out << "\n  ]\n}\n";
}

/**
 * Shared main(): strip --smoke and --json <path>, print the figure
 * tables, write the JSON report, then either stop (smoke mode) or run
 * google-benchmark on the remaining argv.
 */
inline int
runBenchMain(int argc, char **argv, void (*printer)())
{
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--smoke") {
            smokeMode() = true;
        } else if (std::string_view(argv[i]) == "--json" &&
                   i + 1 < argc) {
            jsonPath() = argv[++i];
        } else {
            argv[kept++] = argv[i];
        }
    }
    argc = kept;
    argv[argc] = nullptr;

    printer();
    std::cout << std::endl;
    writeJsonReport();
    if (smokeMode())
        return 0;

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace st::bench

#define ST_BENCH_MAIN(printer)                                          \
    int main(int argc, char **argv)                                     \
    {                                                                   \
        return st::bench::runBenchMain(argc, argv, printer);            \
    }

#endif // ST_BENCH_BENCH_COMMON_HPP
