/**
 * @file
 * Shared scaffolding for the per-figure benchmark binaries.
 *
 * Every bench binary does two things (DESIGN.md Sec. 4):
 *  1. regenerate its paper figure's quantitative series and print it as
 *     an ASCII table (captured into bench_output.txt / EXPERIMENTS.md);
 *  2. run google-benchmark timings for the involved hot paths.
 *
 * ST_BENCH_MAIN(printer) emits a main() that prints first, then hands
 * argv to google-benchmark.
 */

#ifndef ST_BENCH_BENCH_COMMON_HPP
#define ST_BENCH_BENCH_COMMON_HPP

#include <benchmark/benchmark.h>

#include <iostream>

#define ST_BENCH_MAIN(printer)                                          \
    int main(int argc, char **argv)                                     \
    {                                                                   \
        printer();                                                      \
        std::cout << std::endl;                                         \
        benchmark::Initialize(&argc, argv);                             \
        if (benchmark::ReportUnrecognizedArguments(argc, argv))         \
            return 1;                                                   \
        benchmark::RunSpecifiedBenchmarks();                            \
        benchmark::Shutdown();                                          \
        return 0;                                                       \
    }

#endif // ST_BENCH_BENCH_COMMON_HPP
