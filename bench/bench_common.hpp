/**
 * @file
 * Shared scaffolding for the per-figure benchmark binaries.
 *
 * Every bench binary does two things (DESIGN.md Sec. 4):
 *  1. regenerate its paper figure's quantitative series and print it as
 *     an ASCII table (captured into bench_output.txt / EXPERIMENTS.md);
 *  2. run google-benchmark timings for the involved hot paths.
 *
 * ST_BENCH_MAIN(printer) emits a main() that prints first, then hands
 * argv to google-benchmark.
 *
 * Passing --smoke runs the table printer at tiny problem sizes (via
 * st::bench::scaled) and skips the timing loops entirely — the CI
 * smoke step uses this to execute every figure path quickly while
 * still propagating crashes and sanitizer reports (no more
 * "--benchmark_filter=NOTHING || true" masking).
 */

#ifndef ST_BENCH_BENCH_COMMON_HPP
#define ST_BENCH_BENCH_COMMON_HPP

#include <benchmark/benchmark.h>

#include <cstddef>
#include <iostream>
#include <string_view>

namespace st::bench {

/** True when the binary was invoked with --smoke. */
inline bool &
smokeMode()
{
    static bool mode = false;
    return mode;
}

/** Pick @p full normally, @p tiny under --smoke. */
inline size_t
scaled(size_t full, size_t tiny)
{
    return smokeMode() ? tiny : full;
}

/**
 * Shared main(): strip --smoke, print the figure tables, then either
 * stop (smoke mode) or run google-benchmark on the remaining argv.
 */
inline int
runBenchMain(int argc, char **argv, void (*printer)())
{
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--smoke")
            smokeMode() = true;
        else
            argv[kept++] = argv[i];
    }
    argc = kept;
    argv[argc] = nullptr;

    printer();
    std::cout << std::endl;
    if (smokeMode())
        return 0;

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace st::bench

#define ST_BENCH_MAIN(printer)                                          \
    int main(int argc, char **argv)                                     \
    {                                                                   \
        return st::bench::runBenchMain(argc, argv, printer);            \
    }

#endif // ST_BENCH_BENCH_COMMON_HPP
