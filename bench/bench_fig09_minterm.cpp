/**
 * @file
 * Experiment F9 — paper Fig. 9 / Theorem 1: minterm canonical form.
 *
 * Regenerates the exact Fig. 9 example, then sweeps random tables to
 * chart how the synthesized network's size and depth scale with row
 * count and arity — and verifies equivalence (must be exact) along the
 * way. Times synthesis itself and synthesized-network evaluation.
 */

#include "bench_common.hpp"

#include "core/synthesis.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

FunctionTable
randomTable(Rng &rng, size_t arity, Time::rep k, size_t rows)
{
    FunctionTable table(arity);
    size_t attempts = 0;
    while (table.rowCount() < rows && attempts < rows * 50) {
        ++attempts;
        std::vector<Time> inputs(arity);
        for (Time &x : inputs)
            x = rng.chance(0.15) ? INF : Time(rng.below(k + 1));
        inputs[rng.below(arity)] = 0_t;
        try {
            table.addRow(inputs, Time(rng.below(k + 1)));
        } catch (const std::invalid_argument &) {
        }
    }
    return table;
}

void
printFigure()
{
    std::cout << "F9 | Fig. 9: minterm canonical form of the Fig. 7 "
                 "table\n";
    FunctionTable fig7 =
        FunctionTable::parse(3, "0 1 2 3\n1 0 inf 2\n2 2 0 2\n");
    Network net = synthesizeMinterms(fig7);
    std::cout << "worked example: network([0,1,2]) = "
              << net.evaluate(std::vector<Time>{0_t, 1_t, 2_t})[0]
              << " (paper: minterm_1 passes 3)\n\n";

    std::cout << "Construction cost vs table size (arity 3, window 5; "
                 "native-max basis vs strict {min,inc,lt}):\n";
    AsciiTable t({"rows", "nodes (max)", "depth (max)",
                  "nodes (lowered)", "depth (lowered)",
                  "equiv mismatches"});
    Rng rng(99);
    for (size_t rows : {1, 2, 4, 8, 16, 32}) {
        FunctionTable table = randomTable(rng, 3, 5, rows);
        SynthesisOptions native, strict;
        strict.useNativeMax = false;
        Network a = synthesizeMinterms(table, native);
        Network b = synthesizeMinterms(table, strict);
        size_t mismatches = 0;
        for (int probe = 0; probe < 500; ++probe) {
            std::vector<Time> x(3);
            for (Time &v : x)
                v = rng.chance(0.2) ? INF : Time(rng.below(12));
            Time want = table.evaluate(x);
            mismatches += a.evaluate(x)[0] != want;
            mismatches += b.evaluate(x)[0] != want;
        }
        t.row(table.rowCount(), a.size(), a.depth(), b.size(), b.depth(),
              mismatches);
        std::string cfg = "rows=" + std::to_string(table.rowCount());
        bench::recordValue("fig09_minterm", cfg, "nodes_native_max",
                           static_cast<double>(a.size()));
        bench::recordValue("fig09_minterm", cfg, "nodes_lowered",
                           static_cast<double>(b.size()));
        bench::recordValue("fig09_minterm", cfg, "mismatches",
                           static_cast<double>(mismatches));
    }
    t.writeTo(std::cout);
    std::cout << "shape check: nodes grow linearly in rows x arity; "
                 "mismatches stay 0 (Theorem 1 is exact).\n";
}

void
BM_Synthesize(benchmark::State &state)
{
    Rng rng(5);
    FunctionTable table =
        randomTable(rng, 4, 6, static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        Network net = synthesizeMinterms(table);
        benchmark::DoNotOptimize(net);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(table.rowCount()));
}
BENCHMARK(BM_Synthesize)->Arg(4)->Arg(16)->Arg(64);

void
BM_SynthesizedEvaluate(benchmark::State &state)
{
    Rng rng(6);
    FunctionTable table =
        randomTable(rng, 4, 6, static_cast<size_t>(state.range(0)));
    Network net = synthesizeMinterms(table);
    std::vector<Time> x{1_t, 0_t, 3_t, INF};
    for (auto _ : state) {
        auto out = net.evaluate(x);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_SynthesizedEvaluate)->Arg(4)->Arg(16)->Arg(64);

void
BM_TableLookupVsNetwork(benchmark::State &state)
{
    // The indirect (table) representation of the same function.
    Rng rng(7);
    FunctionTable table = randomTable(rng, 4, 6, 64);
    std::vector<Time> x{1_t, 0_t, 3_t, INF};
    for (auto _ : state) {
        Time y = table.evaluate(x);
        benchmark::DoNotOptimize(y);
    }
}
BENCHMARK(BM_TableLookupVsNetwork);

} // namespace

ST_BENCH_MAIN(printFigure)
