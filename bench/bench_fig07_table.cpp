/**
 * @file
 * Experiment F7 — paper Fig. 7: normalized function tables.
 *
 * Regenerates the exact Fig. 7 table, its worked normalize/lookup/shift
 * example, and the causality-closure cases, then times table evaluation
 * and black-box inference as the window grows.
 */

#include "bench_common.hpp"

#include "core/function_table.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

FunctionTable
fig7()
{
    return FunctionTable::parse(3, "0 1 2 3\n1 0 inf 2\n2 2 0 2\n");
}

void
printFigure()
{
    FunctionTable table = fig7();
    std::cout << "F7 | Fig. 7: the paper's normalized function table\n";
    std::cout << table.str();
    std::cout << "\nEvaluation semantics "
                 "(normalize -> lookup -> shift):\n";
    AsciiTable t({"input", "output", "note"});
    auto ev = [&table](std::vector<Time> x) {
        return table.evaluate(x);
    };
    t.row("[0, 1, 2]", ev({0_t, 1_t, 2_t}).str(), "row 1 direct");
    t.row("[3, 4, 5]", ev({3_t, 4_t, 5_t}).str(),
          "paper's worked example: +3 shift");
    t.row("[1, 0, inf]", ev({1_t, 0_t, INF}).str(), "row 2 direct");
    t.row("[1, 0, 9]", ev({1_t, 0_t, 9_t}).str(),
          "causality closure: 9 > 2 acts as inf");
    t.row("[1, 0, 2]", ev({1_t, 0_t, 2_t}).str(),
          "x3 = output: could matter, no match");
    t.row("[0, 0, 0]", ev({0_t, 0_t, 0_t}).str(), "no entry -> inf");
    t.writeTo(std::cout);
    std::cout << "history bound k = " << table.historyBound() << "\n";
    bench::recordValue("fig07_table", "fig7", "history_bound",
                       static_cast<double>(table.historyBound()));

    // Machine-readable headline: table evaluation throughput over
    // random probes in the normalized window.
    Rng rng(7);
    const size_t probes = bench::scaled(200000, 200);
    Stopwatch sw;
    for (size_t i = 0; i < probes; ++i) {
        std::vector<Time> x(3);
        for (Time &v : x)
            v = rng.chance(0.2) ? INF : Time(rng.below(8));
        benchmark::DoNotOptimize(table.evaluate(x));
    }
    bench::recordValue("fig07_table", "fig7", "evals_per_sec",
                       static_cast<double>(probes) / sw.seconds());
}

void
BM_TableEvaluate(benchmark::State &state)
{
    FunctionTable table = fig7();
    Rng rng(2);
    std::vector<std::vector<Time>> probes;
    for (int i = 0; i < 256; ++i) {
        std::vector<Time> x(3);
        for (Time &v : x)
            v = rng.chance(0.2) ? INF : Time(rng.below(8));
        probes.push_back(x);
    }
    size_t i = 0;
    for (auto _ : state) {
        Time y = table.evaluate(probes[i++ & 255]);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableEvaluate);

void
BM_TableInference(benchmark::State &state)
{
    // Infer min's table over growing windows: (k+2)^2 probes.
    const Time::rep k = static_cast<Time::rep>(state.range(0));
    auto fn = [](std::span<const Time> x) { return tmin(x[0], x[1]); };
    for (auto _ : state) {
        FunctionTable t = FunctionTable::infer(2, k, fn);
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>((k + 2) * (k + 2)));
}
BENCHMARK(BM_TableInference)->Arg(4)->Arg(8)->Arg(16);

} // namespace

ST_BENCH_MAIN(printFigure)
