/**
 * @file
 * Experiment F13/F14 — paper Figs. 13-14: micro-weights and
 * programmable synapses.
 *
 * Regenerates the Fig. 14 weight-to-behaviour mapping (including the
 * paper's "weight 3 => mu1..mu3 = inf, mu4 = 0" example), charts the
 * gate cost of programmability vs weight range, and verifies the
 * programmable neuron against fixed neurons for every weight setting.
 */

#include "bench_common.hpp"

#include "neuron/microweight.hpp"
#include "neuron/srm0_reference.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

void
printFigure()
{
    std::cout << "F14 | Fig. 14: one synapse, step-response family "
                 "0..4, theta = 3 — behaviour per programmed weight\n";
    auto family = scaledStepFamily(4);
    ProgrammableSrm0 prog(1, family, 3);
    AsciiTable t({"weight w", "micro-weights (mu1..mu4)",
                  "fire time on x=2", "fixed-neuron reference"});
    for (size_t w = 0; w <= 4; ++w) {
        prog.setWeight(0, w);
        std::string mus;
        for (size_t k = 1; k <= 4; ++k)
            mus += (k <= w ? "inf " : "0 ");
        std::vector<Time> x{2_t};
        Time hw = prog.fire(x);
        Time ref = family[w].isZero()
                       ? INF
                       : Srm0Neuron({family[w]}, 3).fire(x);
        t.row(w, mus, hw, ref);
    }
    t.writeTo(std::cout);
    std::cout << "(matches the paper: weight 3 -> mu1..mu3 = inf, "
                 "mu4 = 0; only weights >= theta fire)\n\n";

    std::cout << "Programmability cost vs weight range (4-synapse "
                 "biexp neuron):\n";
    AsciiTable cost({"max weight W", "micro-weight configs",
                     "lt gates", "total nodes"});
    for (size_t W : {1, 3, 7, 15}) {
        ProgrammableSrm0 neuron(4, scaledBiexpFamily(W), 4);
        const Network &net = neuron.network();
        cost.row(W, net.countOf(Op::Config), net.countOf(Op::Lt),
                 net.size());
        bench::recordValue("fig14_weights", "W=" + std::to_string(W),
                           "total_nodes",
                           static_cast<double>(net.size()));
    }
    cost.writeTo(std::cout);
    std::cout << "shape check: cost grows ~linearly in W (one gated "
                 "delta-tap set per level) — 3-4 bits stays cheap, as "
                 "the paper's resolution argument wants.\n\n";

    std::cout << "Exhaustive agreement, biexp family W=3, 2 synapses, "
                 "theta=3:\n";
    auto fam = scaledBiexpFamily(3);
    ProgrammableSrm0 p2(2, fam, 3);
    Rng rng(14);
    size_t match = 0, total = 0;
    for (size_t w0 = 0; w0 <= 3; ++w0) {
        for (size_t w1 = 0; w1 <= 3; ++w1) {
            p2.setWeight(0, w0);
            p2.setWeight(1, w1);
            Srm0Neuron fixed({fam[w0], fam[w1]}, 3);
            for (int s = 0; s < 200; ++s) {
                std::vector<Time> x(2);
                for (Time &v : x)
                    v = rng.chance(0.2) ? INF : Time(rng.below(8));
                match += p2.fire(x) == fixed.fire(x);
                ++total;
            }
        }
    }
    std::cout << "agreements: " << match << "/" << total
              << " across all 16 weight settings\n";
    bench::recordValue("fig14_weights", "W=3,synapses=2", "agreements",
                       static_cast<double>(match));
    bench::recordValue("fig14_weights", "W=3,synapses=2", "trials",
                       static_cast<double>(total));
}

void
BM_Reprogram(benchmark::State &state)
{
    ProgrammableSrm0 neuron(8, scaledBiexpFamily(7), 6);
    size_t w = 0;
    for (auto _ : state) {
        neuron.setWeight(w % 8, w % 8);
        ++w;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Reprogram);

void
BM_ProgrammableFire(benchmark::State &state)
{
    const size_t q = static_cast<size_t>(state.range(0));
    ProgrammableSrm0 neuron(q, scaledBiexpFamily(7), 6);
    for (size_t i = 0; i < q; ++i)
        neuron.setWeight(i, 4 + (i % 4));
    Rng rng(15);
    std::vector<Time> x(q);
    for (Time &v : x)
        v = Time(rng.below(8));
    for (auto _ : state) {
        Time y = neuron.fire(x);
        benchmark::DoNotOptimize(y);
    }
}
BENCHMARK(BM_ProgrammableFire)->Arg(4)->Arg(8)->Arg(16);

} // namespace

ST_BENCH_MAIN(printFigure)
