/**
 * @file
 * Experiment F16 — paper Fig. 16 / Sec. V: generalized race logic.
 *
 * Regenerates the per-primitive CMOS mapping table, the compiled gate
 * inventory for each paper construction (Lemma 2 max, Fig. 9 minterms,
 * Fig. 10 sorter, Fig. 12 SRM0, Fig. 15 WTA), and a large equivalence
 * sweep between network evaluation and cycle-accurate circuit
 * simulation. Times the logic simulator.
 */

#include "bench_common.hpp"

#include "core/synthesis.hpp"
#include "grl/compile.hpp"
#include "grl/event_sim.hpp"
#include "grl/logic_sim.hpp"
#include "neuron/sorting.hpp"
#include "neuron/srm0_network.hpp"
#include "neuron/wta.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

size_t
equivalenceSweep(const Network &net, size_t probes, Time::rep limit,
                 uint64_t seed)
{
    grl::CompileResult compiled = grl::compileToGrl(net);
    Rng rng(seed);
    size_t match = 0;
    for (size_t s = 0; s < probes; ++s) {
        std::vector<Time> x(net.numInputs());
        for (Time &v : x)
            v = rng.chance(0.2) ? INF : Time(rng.below(limit + 1));
        match +=
            grl::simulate(compiled.circuit, x).outputs == net.evaluate(x);
    }
    return match;
}

void
printFigure()
{
    std::cout << "F16 | Fig. 16: s-t primitive -> CMOS gate mapping "
                 "(falling-edge domain)\n";
    AsciiTable map({"s-t primitive", "CMOS implementation"});
    map.row("min", "AND gate (first fall wins)");
    map.row("max", "OR gate (last fall wins)");
    map.row("lt", "OR(a, NOT b) + output latch, reset high");
    map.row("inc(c)", "c-stage clocked shift register");
    map.row("config 0/inf", "externally driven line");
    map.writeTo(std::cout);

    std::cout << "\nCompiled gate inventory per paper construction:\n";
    AsciiTable inv({"construction", "AND", "OR", "LT cells",
                    "FF stages", "equiv sweep"});
    auto add = [&inv](const char *name, const Network &net,
                      Time::rep limit, uint64_t seed) {
        grl::Circuit c = grl::compileToGrl(net).circuit;
        size_t probes = 500;
        size_t ok = equivalenceSweep(net, probes, limit, seed);
        inv.row(name, c.countOf(grl::GateKind::And),
                c.countOf(grl::GateKind::Or),
                c.countOf(grl::GateKind::LtCell), c.totalStages(),
                std::to_string(ok) + "/" + std::to_string(probes));
    };
    add("Lemma 2 max", maxFromMinLtNetwork(), 9, 1);
    FunctionTable fig7 =
        FunctionTable::parse(3, "0 1 2 3\n1 0 inf 2\n2 2 0 2\n");
    add("Fig. 9 minterms", synthesizeMinterms(fig7), 9, 2);
    add("Fig. 10 sorter (8)", bitonicSortNetwork(8), 12, 3);
    ResponseFunction r = ResponseFunction::biexponential(3, 4.0, 1.0);
    add("Fig. 12 SRM0 (3 syn)", buildSrm0Network({r, r, r.negated()}, 3),
        9, 4);
    add("Fig. 15 WTA (8)", wtaNetwork(8, 1), 9, 5);
    inv.writeTo(std::cout);
    std::cout << "shape check: every sweep is exact — TNN components "
                 "run unchanged on off-the-shelf digital logic.\n\n";

    std::cout << "Event-driven calendar queue vs clocked simulation "
                 "(single thread, identical results):\n";
    AsciiTable perf({"sorter width", "volleys", "clocked v/s",
                     "event v/s", "speedup"});
    Rng perf_rng(23);
    for (size_t n : {8, 16, 32}) {
        grl::Circuit circuit =
            grl::compileToGrl(bitonicSortNetwork(n)).circuit;
        const size_t probes = bench::scaled(400, 10);
        std::vector<std::vector<Time>> volleys(probes);
        for (auto &x : volleys) {
            x.resize(n);
            for (Time &v : x)
                v = perf_rng.chance(0.2) ? INF
                                         : Time(perf_rng.below(16));
        }
        Stopwatch sw;
        for (const auto &x : volleys)
            benchmark::DoNotOptimize(grl::simulate(circuit, x));
        double clocked_secs = sw.seconds();
        sw.reset();
        for (const auto &x : volleys)
            benchmark::DoNotOptimize(grl::simulateEvents(circuit, x));
        double event_secs = sw.seconds();
        double vps = static_cast<double>(probes) / event_secs;
        double speedup = clocked_secs / event_secs;
        perf.row(n, probes,
                 static_cast<double>(probes) / clocked_secs, vps,
                 speedup);
        bench::record("fig16_grl", "sorter=" + std::to_string(n), vps,
                      speedup);
    }
    perf.writeTo(std::cout);
    std::cout << "shape check: the event engine's advantage grows "
                 "with circuit size (events << horizon x gates).\n";
}

void
BM_SimulateSorter(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    grl::CompileResult compiled =
        grl::compileToGrl(bitonicSortNetwork(n));
    Rng rng(20);
    std::vector<Time> x(n);
    for (Time &v : x)
        v = Time(rng.below(16));
    for (auto _ : state) {
        auto sim = grl::simulate(compiled.circuit, x);
        benchmark::DoNotOptimize(sim);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(compiled.circuit.size()));
}
BENCHMARK(BM_SimulateSorter)->Arg(8)->Arg(16)->Arg(32);

void
BM_SimulateSrm0(benchmark::State &state)
{
    ResponseFunction r = ResponseFunction::biexponential(3, 4.0, 1.0);
    std::vector<ResponseFunction> syn(
        static_cast<size_t>(state.range(0)), r);
    grl::CompileResult compiled = grl::compileToGrl(buildSrm0Network(
        syn, static_cast<ResponseFunction::Amp>(syn.size())));
    Rng rng(21);
    std::vector<Time> x(syn.size());
    for (Time &v : x)
        v = Time(rng.below(8));
    for (auto _ : state) {
        auto sim = grl::simulate(compiled.circuit, x);
        benchmark::DoNotOptimize(sim);
    }
}
BENCHMARK(BM_SimulateSrm0)->Arg(4)->Arg(8);

void
BM_EventDrivenSorter(benchmark::State &state)
{
    // The event-driven engine vs the clocked one (same semantics,
    // different cost model: events vs horizon x gates).
    const size_t n = static_cast<size_t>(state.range(0));
    grl::CompileResult compiled =
        grl::compileToGrl(bitonicSortNetwork(n));
    Rng rng(22);
    std::vector<Time> x(n);
    for (Time &v : x)
        v = Time(rng.below(16));
    for (auto _ : state) {
        auto sim = grl::simulateEvents(compiled.circuit, x);
        benchmark::DoNotOptimize(sim);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(compiled.circuit.size()));
}
BENCHMARK(BM_EventDrivenSorter)->Arg(8)->Arg(16)->Arg(32);

void
BM_CompileNetwork(benchmark::State &state)
{
    Network net = bitonicSortNetwork(static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        auto compiled = grl::compileToGrl(net);
        benchmark::DoNotOptimize(compiled);
    }
}
BENCHMARK(BM_CompileNetwork)->Arg(16)->Arg(64);

} // namespace

ST_BENCH_MAIN(printFigure)
