/**
 * @file
 * Experiment F16 — paper Fig. 16 / Sec. V: generalized race logic.
 *
 * Regenerates the per-primitive CMOS mapping table, the compiled gate
 * inventory for each paper construction (Lemma 2 max, Fig. 9 minterms,
 * Fig. 10 sorter, Fig. 12 SRM0, Fig. 15 WTA), and a large equivalence
 * sweep between network evaluation and cycle-accurate circuit
 * simulation. Times the logic simulator.
 */

#include "bench_common.hpp"

#include <algorithm>
#include <thread>

#include "core/synthesis.hpp"
#include "grl/compile.hpp"
#include "grl/event_sim.hpp"
#include "grl/logic_sim.hpp"
#include "grl/parallel_sim.hpp"
#include "grl/sheet.hpp"
#include "neuron/sorting.hpp"
#include "neuron/srm0_network.hpp"
#include "neuron/wta.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace st;

namespace {

void sheetScaling();

size_t
equivalenceSweep(const Network &net, size_t probes, Time::rep limit,
                 uint64_t seed)
{
    grl::CompileResult compiled = grl::compileToGrl(net);
    Rng rng(seed);
    size_t match = 0;
    for (size_t s = 0; s < probes; ++s) {
        std::vector<Time> x(net.numInputs());
        for (Time &v : x)
            v = rng.chance(0.2) ? INF : Time(rng.below(limit + 1));
        match +=
            grl::simulate(compiled.circuit, x).outputs == net.evaluate(x);
    }
    return match;
}

void
printFigure()
{
    std::cout << "F16 | Fig. 16: s-t primitive -> CMOS gate mapping "
                 "(falling-edge domain)\n";
    AsciiTable map({"s-t primitive", "CMOS implementation"});
    map.row("min", "AND gate (first fall wins)");
    map.row("max", "OR gate (last fall wins)");
    map.row("lt", "OR(a, NOT b) + output latch, reset high");
    map.row("inc(c)", "c-stage clocked shift register");
    map.row("config 0/inf", "externally driven line");
    map.writeTo(std::cout);

    std::cout << "\nCompiled gate inventory per paper construction:\n";
    AsciiTable inv({"construction", "AND", "OR", "LT cells",
                    "FF stages", "equiv sweep"});
    auto add = [&inv](const char *name, const Network &net,
                      Time::rep limit, uint64_t seed) {
        grl::Circuit c = grl::compileToGrl(net).circuit;
        size_t probes = 500;
        size_t ok = equivalenceSweep(net, probes, limit, seed);
        inv.row(name, c.countOf(grl::GateKind::And),
                c.countOf(grl::GateKind::Or),
                c.countOf(grl::GateKind::LtCell), c.totalStages(),
                std::to_string(ok) + "/" + std::to_string(probes));
    };
    add("Lemma 2 max", maxFromMinLtNetwork(), 9, 1);
    FunctionTable fig7 =
        FunctionTable::parse(3, "0 1 2 3\n1 0 inf 2\n2 2 0 2\n");
    add("Fig. 9 minterms", synthesizeMinterms(fig7), 9, 2);
    add("Fig. 10 sorter (8)", bitonicSortNetwork(8), 12, 3);
    ResponseFunction r = ResponseFunction::biexponential(3, 4.0, 1.0);
    add("Fig. 12 SRM0 (3 syn)", buildSrm0Network({r, r, r.negated()}, 3),
        9, 4);
    add("Fig. 15 WTA (8)", wtaNetwork(8, 1), 9, 5);
    inv.writeTo(std::cout);
    std::cout << "shape check: every sweep is exact — TNN components "
                 "run unchanged on off-the-shelf digital logic.\n\n";

    std::cout << "Event-driven calendar queue vs clocked simulation "
                 "(single thread, identical results):\n";
    AsciiTable perf({"sorter width", "volleys", "clocked v/s",
                     "event v/s", "speedup"});
    Rng perf_rng(23);
    for (size_t n : {8, 16, 32}) {
        grl::Circuit circuit =
            grl::compileToGrl(bitonicSortNetwork(n)).circuit;
        const size_t probes = bench::scaled(400, 10);
        std::vector<std::vector<Time>> volleys(probes);
        for (auto &x : volleys) {
            x.resize(n);
            for (Time &v : x)
                v = perf_rng.chance(0.2) ? INF
                                         : Time(perf_rng.below(16));
        }
        Stopwatch sw;
        for (const auto &x : volleys)
            benchmark::DoNotOptimize(grl::simulate(circuit, x));
        double clocked_secs = sw.seconds();
        sw.reset();
        for (const auto &x : volleys)
            benchmark::DoNotOptimize(grl::simulateEvents(circuit, x));
        double event_secs = sw.seconds();
        double vps = static_cast<double>(probes) / event_secs;
        double speedup = clocked_secs / event_secs;
        perf.row(n, probes,
                 static_cast<double>(probes) / clocked_secs, vps,
                 speedup);
        bench::record("fig16_grl", "sorter=" + std::to_string(n), vps,
                      speedup);
    }
    perf.writeTo(std::cout);
    std::cout << "shape check: the event engine's advantage grows "
                 "with circuit size (events << horizon x gates).\n\n";
    sheetScaling();
}

/** Sum of a named obs counter (0 when obs is compiled out). */
uint64_t
counterValue(const char *name)
{
    uint64_t total = 0;
    for (const auto &c :
         obs::MetricsRegistry::instance().snapshot().counters) {
        if (c.name == name)
            total += c.value;
    }
    return total;
}

void
sheetScaling()
{
    // Chip-scale workload: a cortical sheet in the 100k-gate regime
    // (smoke: a toy sheet so the CI lane just proves the path runs).
    grl::SheetParams p;
    p.rows = bench::smokeMode() ? 1 : 4;
    p.cols = bench::smokeMode() ? 3 : 50;
    p.neurons = bench::smokeMode() ? 3 : 4;
    p.synapses = 3;
    p.interDelay = 4;
    p.seed = 99;
    grl::Sheet sheet = grl::buildCorticalSheet(p);
    const grl::Circuit &c = sheet.circuit;
    const size_t volleys = bench::scaled(8, 2);
    std::vector<std::vector<Time>> xs;
    for (size_t s = 0; s < volleys; ++s)
        xs.push_back(grl::sheetInputVolley(sheet, s));

    const auto cores = std::thread::hardware_concurrency();
    bench::recordValue("grl_par", "machine", "hardware_concurrency",
                       static_cast<double>(cores));

    std::cout << "Conservative-parallel event engine on a cortical "
                 "sheet (" << p.rows << " x " << p.cols
              << " columns, " << c.size() << " gates, "
              << c.components().count() << " zero-delay components; "
              << volleys << " volleys; host has " << cores
              << " hardware threads):\n";

    std::vector<grl::SimResult> serial;
    Stopwatch sw;
    for (const auto &x : xs)
        serial.push_back(grl::simulateEvents(c, x));
    const double serial_secs = sw.seconds();
    uint64_t events = 0;
    for (const auto &r : serial)
        events += r.fallenLines;

    AsciiTable t({"threads", "seconds", "events/sec", "speedup",
                  "stall frac", "identical"});
    t.row("serial", serial_secs,
          static_cast<double>(events) / serial_secs, 1.0, "-", "-");
    bool all_identical = true;
    std::vector<size_t> lanes{1, 2, 4, 8};
    if (bench::smokeMode())
        lanes = {1, 2};
    for (size_t n : lanes) {
        grl::ParallelSimOptions opts;
        opts.partitions = n;
        opts.threads = n;
        const uint64_t busy0 = counterValue("grl.par.busy_ns");
        const uint64_t wall0 = counterValue("grl.par.wall_ns");
        sw.reset();
        bool identical = true;
        for (size_t s = 0; s < xs.size(); ++s) {
            grl::SimResult out =
                grl::simulateEventsParallel(c, xs[s], 0, opts);
            identical = identical && out.outputs == serial[s].outputs &&
                        out.fallTime == serial[s].fallTime &&
                        out.gateTransitions == serial[s].gateTransitions;
        }
        const double secs = sw.seconds();
        const double busy = static_cast<double>(
            counterValue("grl.par.busy_ns") - busy0);
        const double wall = static_cast<double>(
            counterValue("grl.par.wall_ns") - wall0);
        // Window-barrier stall: lane-time not spent draining agendas.
        // 0 when obs is compiled out (both counters read 0).
        double stall = 0;
        if (wall > 0)
            stall = std::max(0.0, 1.0 - busy / (wall *
                                                static_cast<double>(n)));
        const double vps = static_cast<double>(events) / secs;
        const double speedup = serial_secs / secs;
        all_identical = all_identical && identical;
        t.row(n, secs, vps, speedup, stall, identical ? "yes" : "NO");
        const std::string cfg = "threads=" + std::to_string(n);
        bench::record("grl_par", cfg, vps, speedup);
        bench::recordValue("grl_par", cfg, "stall_fraction", stall);
    }
    bench::recordValue("grl_par", "machine", "identical",
                       all_identical ? 1.0 : 0.0);
    t.writeTo(std::cout);
    std::cout << "shape check: events/sec scales with cores while the "
                 "identical column reads yes everywhere — the windows "
                 "are conservative, so parallelism never buys a "
                 "different answer.\n";
}

void
BM_SimulateSorter(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    grl::CompileResult compiled =
        grl::compileToGrl(bitonicSortNetwork(n));
    Rng rng(20);
    std::vector<Time> x(n);
    for (Time &v : x)
        v = Time(rng.below(16));
    for (auto _ : state) {
        auto sim = grl::simulate(compiled.circuit, x);
        benchmark::DoNotOptimize(sim);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(compiled.circuit.size()));
}
BENCHMARK(BM_SimulateSorter)->Arg(8)->Arg(16)->Arg(32);

void
BM_SimulateSrm0(benchmark::State &state)
{
    ResponseFunction r = ResponseFunction::biexponential(3, 4.0, 1.0);
    std::vector<ResponseFunction> syn(
        static_cast<size_t>(state.range(0)), r);
    grl::CompileResult compiled = grl::compileToGrl(buildSrm0Network(
        syn, static_cast<ResponseFunction::Amp>(syn.size())));
    Rng rng(21);
    std::vector<Time> x(syn.size());
    for (Time &v : x)
        v = Time(rng.below(8));
    for (auto _ : state) {
        auto sim = grl::simulate(compiled.circuit, x);
        benchmark::DoNotOptimize(sim);
    }
}
BENCHMARK(BM_SimulateSrm0)->Arg(4)->Arg(8);

void
BM_EventDrivenSorter(benchmark::State &state)
{
    // The event-driven engine vs the clocked one (same semantics,
    // different cost model: events vs horizon x gates).
    const size_t n = static_cast<size_t>(state.range(0));
    grl::CompileResult compiled =
        grl::compileToGrl(bitonicSortNetwork(n));
    Rng rng(22);
    std::vector<Time> x(n);
    for (Time &v : x)
        v = Time(rng.below(16));
    for (auto _ : state) {
        auto sim = grl::simulateEvents(compiled.circuit, x);
        benchmark::DoNotOptimize(sim);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(compiled.circuit.size()));
}
BENCHMARK(BM_EventDrivenSorter)->Arg(8)->Arg(16)->Arg(32);

void
BM_CompileNetwork(benchmark::State &state)
{
    Network net = bitonicSortNetwork(static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        auto compiled = grl::compileToGrl(net);
        benchmark::DoNotOptimize(compiled);
    }
}
BENCHMARK(BM_CompileNetwork)->Arg(16)->Arg(64);

} // namespace

ST_BENCH_MAIN(printFigure)
