/**
 * @file
 * Experiment E5 — the parallel batched volley engine.
 *
 * The paper's execution model is embarrassingly parallel at the volley
 * level (independent inputs) and at the neuron level within a column
 * (Sec. IV's SRM0 bank). This bench measures what the work-stealing
 * pool buys on real hardware: volleys/sec for TnnNetwork::processBatch
 * on a 1k-volley batch at 1..8 threads, the speedup over the serial
 * path, and the batched-STDP training throughput — while asserting
 * that every thread count reproduces the serial results bit-for-bit.
 */

#include "bench_common.hpp"

#include <thread>

#include "tnn/datasets.hpp"
#include "tnn/stdp.hpp"
#include "tnn/tnn_network.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace st;

namespace {

TnnNetwork
buildNetwork(size_t lines)
{
    TnnNetwork net;
    ColumnParams l0;
    l0.numInputs = lines;
    l0.numNeurons = 96; // wide: exercises the intra-column parallel-for
    l0.threshold = 16;
    l0.wtaTau = 3;
    l0.wtaK = 8;
    l0.seed = 7;
    net.addLayer(l0);
    ColumnParams l1;
    l1.numInputs = 96;
    l1.numNeurons = 64;
    l1.threshold = 4;
    l1.seed = 11;
    net.addLayer(l1);
    return net;
}

std::vector<Volley>
makeBatch(size_t lines, size_t count)
{
    PatternSetParams dp;
    dp.numClasses = 8;
    dp.numLines = lines;
    dp.timeSpan = 7;
    dp.jitter = 0.4;
    dp.seed = 313;
    PatternDataset data(dp);
    std::vector<Volley> batch;
    batch.reserve(count);
    for (const auto &s : data.sampleMany(count))
        batch.push_back(s.volley);
    return batch;
}

void
printFigure()
{
    const size_t lines = 48;
    const size_t count = bench::scaled(1024, 16);
    TnnNetwork net = buildNetwork(lines);
    std::vector<Volley> batch = makeBatch(lines, count);

    // The perf-gate checker (tools/check_perf_gate.py) reads the
    // machine core count and per-thread-count efficiency out of the
    // JSON to decide how much scaling this host can legitimately show.
    const auto cores = std::thread::hardware_concurrency();
    bench::recordValue("parallel", "machine", "hardware_concurrency",
                       static_cast<double>(cores));

    std::cout << "E5a | processBatch throughput vs thread count ("
              << count << " volleys, 48->96->64 network; host has "
              << cores << " hardware threads, "
              << ThreadPool::defaultThreads() << " default lanes)\n";
    std::vector<size_t> lanes{1, 2, 4, 8, 16};
    if (bench::smokeMode())
        lanes = {1, 2};
    std::vector<Volley> serial = net.processBatch(batch, 1);
    double serial_secs = 0;
    bool all_identical = true;
    AsciiTable t({"threads", "seconds", "volleys/sec", "speedup",
                  "efficiency", "identical"});
    for (size_t n : lanes) {
        Stopwatch sw;
        std::vector<Volley> out = net.processBatch(batch, n);
        double secs = sw.seconds();
        if (n == 1)
            serial_secs = secs;
        double vps = static_cast<double>(count) / secs;
        const double speedup = serial_secs / secs;
        const double efficiency = speedup / static_cast<double>(n);
        const bool identical = out == serial;
        all_identical = all_identical && identical;
        t.row(n, secs, vps, speedup, efficiency,
              identical ? "yes" : "NO");
        const std::string cfg = "threads=" + std::to_string(n);
        bench::record("parallel", cfg, vps, speedup);
        bench::recordValue("parallel", cfg, "efficiency", efficiency);
    }
    bench::recordValue("parallel", "machine", "identical",
                       all_identical ? 1.0 : 0.0);
    t.writeTo(std::cout);
    std::cout << "shape check: volleys/sec scales with cores until "
                 "memory bandwidth; the identical column must read "
                 "yes everywhere (determinism guarantee).\n\n";

    std::cout << "E5b | batched STDP training throughput "
                 "(trainLayerBatched, layer 0)\n";
    SimplifiedStdp rule(0.06, 0.045);
    AsciiTable tr({"threads", "seconds", "samples/sec"});
    for (size_t n : lanes) {
        TnnNetwork fresh = buildNetwork(lines);
        Stopwatch sw;
        fresh.trainLayerBatched(0, batch, rule, 1, n);
        double secs = sw.seconds();
        tr.row(n, secs, static_cast<double>(count) / secs);
    }
    tr.writeTo(std::cout);
    std::cout << "shape check: training scales like inference — the "
                 "winner-selection phase dominates and parallelizes; "
                 "the serial merge is O(winners).\n";
}

void
BM_ProcessBatch(benchmark::State &state)
{
    const size_t lines = 48;
    TnnNetwork net = buildNetwork(lines);
    std::vector<Volley> batch = makeBatch(lines, 256);
    auto nthreads = static_cast<size_t>(state.range(0));
    for (auto _ : state) {
        auto out = net.processBatch(batch, nthreads);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * batch.size()));
}
BENCHMARK(BM_ProcessBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_TrainBatch(benchmark::State &state)
{
    const size_t lines = 48;
    TnnNetwork net = buildNetwork(lines);
    std::vector<Volley> batch = makeBatch(lines, 256);
    SimplifiedStdp rule(0.06, 0.045);
    auto nthreads = static_cast<size_t>(state.range(0));
    for (auto _ : state) {
        size_t fired = net.trainLayerBatched(0, batch, rule, 1,
                                             nthreads);
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * batch.size()));
}
BENCHMARK(BM_TrainBatch)->Arg(1)->Arg(8);

} // namespace

ST_BENCH_MAIN(printFigure)
