/**
 * @file
 * Umbrella header for the space-time algebra library.
 *
 * Reproduction of J. E. Smith, "Space-Time Algebra: A Model for
 * Neocortical Computation", ISCA 2018. Include this to get the whole
 * public API; fine-grained headers are grouped by subsystem:
 *
 *   core/       the s-t algebra, function tables, networks, synthesis
 *   neuron/     response functions, sorters, SRM0, micro-weights, WTA
 *   tnn/        volleys, AER, STDP, columns, datasets, metrics
 *   grl/        generalized race logic: netlists, simulation, energy
 *   racelogic/  shortest-path and edit-distance applications
 */

#ifndef ST_SPACETIME_HPP
#define ST_SPACETIME_HPP

#include "core/algebra.hpp"
#include "core/function_table.hpp"
#include "core/network.hpp"
#include "core/network_dot.hpp"
#include "core/network_io.hpp"
#include "core/optimize.hpp"
#include "core/properties.hpp"
#include "core/synthesis.hpp"
#include "core/time.hpp"
#include "core/trace_sim.hpp"

#include "neuron/compound.hpp"
#include "neuron/microweight.hpp"
#include "neuron/response.hpp"
#include "neuron/sorting.hpp"
#include "neuron/srm0_network.hpp"
#include "neuron/srm0_reference.hpp"
#include "neuron/wta.hpp"

#include "tnn/aer.hpp"
#include "tnn/conv.hpp"
#include "tnn/datasets.hpp"
#include "tnn/layer.hpp"
#include "tnn/lsm.hpp"
#include "tnn/metrics.hpp"
#include "tnn/stdp.hpp"
#include "tnn/tempotron.hpp"
#include "tnn/tnn_io.hpp"
#include "tnn/tnn_network.hpp"
#include "tnn/volley.hpp"

#include "grl/boolsim.hpp"
#include "grl/compile.hpp"
#include "grl/energy.hpp"
#include "grl/event_sim.hpp"
#include "grl/logic_sim.hpp"
#include "grl/netlist.hpp"
#include "grl/parallel_sim.hpp"
#include "grl/sheet.hpp"
#include "grl/vcd.hpp"

#include "racelogic/dijkstra.hpp"
#include "racelogic/edit_distance.hpp"
#include "racelogic/graph.hpp"
#include "racelogic/race_path.hpp"

#endif // ST_SPACETIME_HPP
