#include "grl/logic_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace st::grl {

Time::rep
safeHorizon(const Circuit &circuit, std::span<const Time> inputs)
{
    Time::rep latest = 0;
    for (Time t : inputs) {
        if (t.isFinite())
            latest = std::max(latest, t.value());
    }
    for (const Gate &g : circuit.gates()) {
        if (g.kind == GateKind::Const && g.constTime.isFinite())
            latest = std::max(latest, g.constTime.value());
    }
    return latest + circuit.totalStages() + 1;
}

SimResult
simulate(const Circuit &circuit, std::span<const Time> inputs,
         Time::rep horizon)
{
    if (inputs.size() != circuit.numInputs())
        throw std::invalid_argument("grl::simulate: input count mismatch");
    // Shares the event engine's validation gate: fanout() runs
    // Circuit::validate() on first build (then caches), so a malformed
    // netlist raises the same StatusError from both engines instead of
    // settling garbage here.
    (void)circuit.fanout();
    if (horizon == 0)
        horizon = safeHorizon(circuit, inputs);

    const auto &gates = circuit.gates();
    const size_t n = gates.size();

    SimResult result;
    result.fallTime.assign(n, INF);
    result.cyclesSimulated = horizon + 1;

    // Logic levels: level[g] is gate g's settled output this cycle;
    // prev[g] is last cycle's settled level (what flipflops sample).
    std::vector<uint8_t> level(n, 1), prev(n, 1);
    // Shift-register contents, one bit vector per Delay gate (idle 1s).
    std::vector<std::vector<uint8_t>> stages(n);
    for (size_t g = 0; g < n; ++g) {
        if (gates[g].kind == GateKind::Delay)
            stages[g].assign(gates[g].stages, 1);
    }
    // LT latch state: set permanently once b falls at-or-before a.
    std::vector<uint8_t> blocked(n, 0);

    for (Time::rep t = 0; t <= horizon; ++t) {
        // Phase 1 — clock edge: shift registers advance, sampling their
        // driver's level from the end of the previous cycle.
        for (size_t g = 0; g < n; ++g) {
            const Gate &gate = gates[g];
            if (gate.kind != GateKind::Delay || gate.stages == 0)
                continue;
            auto &pipe = stages[g];
            for (size_t j = pipe.size(); j-- > 1;) {
                if (pipe[j] != pipe[j - 1]) {
                    pipe[j] = pipe[j - 1];
                    ++result.flopDataTransitions;
                }
            }
            uint8_t sampled = prev[gate.fanin[0]];
            if (pipe[0] != sampled) {
                pipe[0] = sampled;
                ++result.flopDataTransitions;
            }
        }

        // Phase 2 — zero-delay combinational settle in topological order.
        for (size_t g = 0; g < n; ++g) {
            const Gate &gate = gates[g];
            uint8_t out = level[g];
            switch (gate.kind) {
              case GateKind::Input:
                out = inputs[g].isFinite() && inputs[g].value() <= t ? 0
                                                                     : 1;
                if (out == 0 && level[g] == 1)
                    ++result.inputTransitions;
                break;
              case GateKind::Const:
                out = gate.constTime.isFinite() &&
                              gate.constTime.value() <= t
                          ? 0
                          : 1;
                if (out == 0 && level[g] == 1)
                    ++result.inputTransitions;
                break;
              case GateKind::And: {
                // The FIRST falling input pulls the conjunction low: min.
                uint8_t v = 1;
                for (WireId src : gate.fanin)
                    v &= level[src];
                out = v;
                if (out == 0 && level[g] == 1)
                    ++result.gateTransitions;
                break;
              }
              case GateKind::Or: {
                // Stays high until the LAST input falls: max.
                uint8_t v = 0;
                for (WireId src : gate.fanin)
                    v |= level[src];
                out = v;
                if (out == 0 && level[g] == 1)
                    ++result.gateTransitions;
                break;
              }
              case GateKind::LtCell: {
                if (level[g] == 0)
                    break; // output already fell; latched low
                uint8_t a = level[gate.fanin[0]];
                uint8_t b = level[gate.fanin[1]];
                if (!blocked[g] && b == 0) {
                    // b fell at-or-before a: capture the latch. Ties in
                    // this same cycle block because the latch is
                    // examined before a's level can open the gate.
                    blocked[g] = 1;
                    ++result.ltLatchTransitions;
                }
                if (!blocked[g] && a == 0) {
                    out = 0;
                    ++result.ltOutputTransitions;
                }
                break;
              }
              case GateKind::Delay:
                if (gate.stages == 0) {
                    out = level[gate.fanin[0]]; // zero-stage wire
                } else {
                    out = stages[g].back();
                }
                break;
            }
            if (out == 0 && result.fallTime[g].isInf())
                result.fallTime[g] = Time(t);
            level[g] = out;
        }

        prev = level;
    }

    // End-of-computation state, for reset accounting.
    for (size_t g = 0; g < n; ++g) {
        if (result.fallTime[g].isFinite())
            ++result.fallenLines;
        for (uint8_t bit : stages[g])
            result.flopZeroBits += bit == 0;
        result.latchesCaptured += blocked[g];
    }

    result.outputs.reserve(circuit.outputs().size());
    for (WireId id : circuit.outputs())
        result.outputs.push_back(result.fallTime[id]);
    return result;
}

StreamResult
simulateStream(const Circuit &circuit,
               std::span<const std::vector<Time>> volleys,
               Time::rep horizon)
{
    StreamResult stream;
    stream.computations.reserve(volleys.size());
    for (const std::vector<Time> &x : volleys) {
        SimResult sim = simulate(circuit, x, horizon);
        stream.forwardTransitions +=
            sim.totalInternalTransitions() + sim.inputTransitions;
        stream.resetTransitions += sim.resetTransitions();
        stream.totalCycles += sim.cyclesSimulated;
        stream.computations.push_back(std::move(sim));
    }
    return stream;
}

} // namespace st::grl
