#include "grl/energy.hpp"

namespace st::grl {

double
EnergyReport::delayFraction() const
{
    if (total <= 0)
        return 0.0;
    return (flopData + clock) / total;
}

EnergyReport
estimatePartEnergy(uint64_t stages, const SimResult &counts,
                   const EnergyParams &params)
{
    EnergyReport report;
    report.combinational =
        params.gateSwitch * static_cast<double>(counts.gateTransitions);
    report.ltCells =
        params.ltSwitch *
            static_cast<double>(counts.ltOutputTransitions) +
        params.latchCapture *
            static_cast<double>(counts.ltLatchTransitions);
    report.flopData = params.flopDataSwitch *
                      static_cast<double>(counts.flopDataTransitions);
    report.clock = params.clockPerStagePerCycle *
                   static_cast<double>(stages) *
                   static_cast<double>(counts.cyclesSimulated);
    report.inputs =
        params.inputDrive * static_cast<double>(counts.inputTransitions);
    report.total = report.combinational + report.ltCells +
                   report.flopData + report.clock + report.inputs;
    return report;
}

EnergyReport
estimateEnergy(const Circuit &circuit, const SimResult &sim,
               const EnergyParams &params)
{
    return estimatePartEnergy(circuit.totalStages(), sim, params);
}

EnergyReport
estimateStreamEnergy(const Circuit &circuit, const StreamResult &stream,
                     const EnergyParams &params)
{
    EnergyReport report;
    for (const SimResult &sim : stream.computations) {
        EnergyReport one = estimateEnergy(circuit, sim, params);
        report.combinational += one.combinational;
        report.ltCells += one.ltCells;
        report.flopData += one.flopData;
        report.clock += one.clock;
        report.inputs += one.inputs;
    }
    report.reset = params.resetSwitch *
                   static_cast<double>(stream.resetTransitions);
    report.total = report.combinational + report.ltCells +
                   report.flopData + report.clock + report.inputs +
                   report.reset;
    return report;
}

} // namespace st::grl
