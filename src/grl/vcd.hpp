/**
 * @file
 * VCD (Value Change Dump) export of GRL simulations.
 *
 * Race-logic computations are, physically, digital waveforms; this
 * module renders a SimResult as an IEEE-1364 VCD file so circuit folks
 * can inspect a space-time computation in GTKWave like any other
 * digital trace: every wire idles high, and each fall is the event time
 * computed by the algebra.
 */

#ifndef ST_GRL_VCD_HPP
#define ST_GRL_VCD_HPP

#include <string>
#include <vector>

#include "grl/logic_sim.hpp"

namespace st::grl {

/** Options for VCD rendering. */
struct VcdOptions
{
    /** Module name in the VCD scope. */
    std::string module = "grl";
    /** Optional per-wire names (defaults to kind + index). */
    std::vector<std::string> names;
    /** Timescale string (unit time = one clock). */
    std::string timescale = "1ns";
};

/** Render a simulated computation as a VCD document. */
std::string toVcd(const Circuit &circuit, const SimResult &sim,
                  const VcdOptions &options = {});

} // namespace st::grl

#endif // ST_GRL_VCD_HPP
