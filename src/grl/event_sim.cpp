#include "grl/event_sim.hpp"

#include <algorithm>
#include <bit>
#include <functional>
#include <limits>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace st::grl {

namespace {

/**
 * The event agenda: an indexed calendar queue tuned to GRL's event
 * pattern, replacing the allocation-heavy std::map<Time,
 * std::set<WireId>> of the original engine.
 *
 * Three lanes, cheapest first:
 *
 *   - ready: wires to examine at the *current* time, kept as a bitmap
 *     over wire ids and drained by an ascending bit scan. Fanins
 *     precede consumers in id order, so draining ascending ids
 *     reproduces the clocked engine's settle order exactly (the
 *     documented LT tie-resolution order), and the scan cursor never
 *     backs up: a newly scheduled same-time consumer always carries a
 *     larger id than the wire being processed. The bitmap also dedups
 *     for free — a gate whose fanins fall together is examined once.
 *
 *   - ring: a power-of-two array of time buckets for near-future
 *     events (delay-gate outputs). Every scheduling offset is bounded
 *     by the largest delay-line stage count, so with ringSize >
 *     maxDelayStages + 1 a bucket can only ever hold events for one
 *     absolute time — draining bucket (t & mask) at time t never
 *     touches foreign events.
 *
 *   - far: a std::priority_queue fallback for offsets beyond the ring
 *     window (only reachable when a single delay line exceeds
 *     kMaxRingSize stages — never in the paper's constructions).
 *
 * External events (input/const falls at arbitrary times) are kept in
 * one sorted array walked by a cursor, so a wide input spread does not
 * force a huge ring.
 */
class CalendarQueue
{
  public:
    CalendarQueue(uint32_t max_delay_stages, size_t num_wires,
                  std::vector<std::pair<Time::rep, WireId>> external)
        : external_(std::move(external)),
          readyBits_((num_wires + 63) / 64, 0)
    {
        std::sort(external_.begin(), external_.end());
        const uint64_t span =
            std::min<uint64_t>(uint64_t{max_delay_stages} + 2,
                               kMaxRingSize);
        ringMask_ = std::bit_ceil(span) - 1;
        ring_.resize(ringMask_ + 1);
    }

    /** True while any lane still holds an event. */
    bool
    pending() const
    {
        return cursor_ < external_.size() || ringCount_ > 0 ||
               !far_.empty();
    }

    /**
     * Advance to the earliest pending time and move every event at
     * that time into the ready heap.
     *
     * @return The new current time.
     */
    Time::rep
    advance()
    {
        Time::rep next = kInfRep; // nothing schedules later than inf
        bool have = false;
        if (cursor_ < external_.size()) {
            next = external_[cursor_].first;
            have = true;
        }
        if (!far_.empty() && (!have || far_.top().first < next)) {
            next = far_.top().first;
            have = true;
        }
        if (ringCount_ > 0) {
            // All ring events lie in (now, now + ringSize), so a
            // bounded scan finds the earliest occupied bucket.
            for (Time::rep t = now_ + 1; !have || t < next; ++t) {
                if (!ring_[t & ringMask_].empty()) {
                    next = t;
                    have = true;
                    break;
                }
            }
        }
        now_ = next;
        while (cursor_ < external_.size() &&
               external_[cursor_].first == now_) {
            pushReady(external_[cursor_++].second);
        }
        while (!far_.empty() && far_.top().first == now_) {
            pushReady(far_.top().second);
            far_.pop();
        }
        std::vector<WireId> &bucket = ring_[now_ & ringMask_];
        for (WireId id : bucket)
            pushReady(id);
        ringCount_ -= bucket.size();
        bucket.clear();
        // A new time step may make any wire ready; restart the scan
        // (skipping zero words is a handful of cycles per step).
        scanWord_ = 0;
        // Agenda-shape tallies, flushed to the registry once per
        // simulateEvents() call. The per-step histogram record is two
        // relaxed atomics; everything else is a plain local add.
        ST_OBS_ONLY(++statAdvances;
                    statMaxDepth = std::max<uint64_t>(
                        statMaxDepth,
                        ringCount_ + far_.size() + readyCount_);
                    ST_OBS_HIST("grl.agenda.ring_occupancy",
                                ringCount_);)
        return now_;
    }

    /** Schedule @p id for examination at now + @p offset. */
    void
    schedule(WireId id, Time::rep offset)
    {
        // Saturate like the old Time-keyed agenda (inf + c = inf):
        // an overflowing schedule lands at inf, not at a wrapped time.
        const Time target = Time(now_) + offset;
        const Time::rep at = target.isInf() ? kInfRep : target.value();
        const Time::rep delta = at - now_;
        if (delta == 0) {
            ST_OBS_ONLY(++statReadyPushes;)
            pushReady(id);
        } else if (delta <= ringMask_) {
            ST_OBS_ONLY(++statRingPushes;)
            ring_[at & ringMask_].push_back(id);
            ++ringCount_;
        } else {
            ST_OBS_ONLY(++statFarPushes;)
            far_.emplace(at, id);
        }
    }

    /** True while the current time step still has wires to examine. */
    bool
    readyPending() const
    {
        return readyCount_ > 0;
    }

    /** Pop the lowest-id wire of the current time step. */
    WireId
    popReady()
    {
        while (readyBits_[scanWord_] == 0)
            ++scanWord_;
        const uint64_t word = readyBits_[scanWord_];
        readyBits_[scanWord_] = word & (word - 1); // clear lowest bit
        --readyCount_;
        return static_cast<WireId>(
            scanWord_ * 64 +
            static_cast<size_t>(std::countr_zero(word)));
    }

    // Local observation tallies (see advance()/schedule()); public so
    // simulateEvents() can flush them into the metrics registry.
    ST_OBS_ONLY(uint64_t statAdvances = 0; uint64_t statMaxDepth = 0;
                uint64_t statReadyPushes = 0;
                uint64_t statRingPushes = 0;
                uint64_t statFarPushes = 0;)

  private:
    /** Ring sizes beyond this spill to the far heap instead. */
    static constexpr uint64_t kMaxRingSize = uint64_t{1} << 14;

    /** Raw inf pattern; no event can be scheduled later. */
    static constexpr Time::rep kInfRep =
        std::numeric_limits<Time::rep>::max();

    void
    pushReady(WireId id)
    {
        uint64_t &word = readyBits_[id >> 6];
        const uint64_t bit = uint64_t{1} << (id & 63);
        readyCount_ += (word & bit) == 0;
        word |= bit;
    }

    std::vector<std::pair<Time::rep, WireId>> external_;
    size_t cursor_ = 0;

    std::vector<std::vector<WireId>> ring_;
    uint64_t ringMask_ = 0;
    size_t ringCount_ = 0;

    std::priority_queue<std::pair<Time::rep, WireId>,
                        std::vector<std::pair<Time::rep, WireId>>,
                        std::greater<>>
        far_;

    std::vector<uint64_t> readyBits_;
    size_t readyCount_ = 0;
    size_t scanWord_ = 0;
    Time::rep now_ = 0;
};

} // namespace

SimResult
simulateEvents(const Circuit &circuit, std::span<const Time> inputs,
               Time::rep horizon)
{
    if (inputs.size() != circuit.numInputs())
        throw std::invalid_argument("grl::simulateEvents: input count "
                                    "mismatch");
    if (horizon == 0)
        horizon = safeHorizon(circuit, inputs);
    ST_TRACE_SPAN("grl.event_sim");

    const auto &gates = circuit.gates();
    const size_t n = gates.size();
    const CircuitFanout &fanout = circuit.fanout();

    // Unclipped fall times (clipped to the horizon at the end).
    std::vector<Time> fall(n, INF);
    // Count of fallen fanins, for OR (max) gates.
    std::vector<uint32_t> fallenIns(n, 0);

    // Seed the agenda with the externally driven falls.
    std::vector<std::pair<Time::rep, WireId>> external;
    for (size_t g = 0; g < n; ++g) {
        const Gate &gate = gates[g];
        if (gate.kind == GateKind::Input && inputs[g].isFinite()) {
            external.emplace_back(inputs[g].value(),
                                  static_cast<WireId>(g));
        } else if (gate.kind == GateKind::Const &&
                   gate.constTime.isFinite()) {
            external.emplace_back(gate.constTime.value(),
                                  static_cast<WireId>(g));
        }
    }
    CalendarQueue agenda(fanout.maxDelayStages, n, std::move(external));

    auto fallen = [&](WireId g) { return fall[g].isFinite(); };

    // Fault hooks, resolved once per run. Gate-delay perturbation is
    // keyed by the consumer wire alone (a physically mis-sized shift
    // register, identical on every fall); stuck wires never fall.
    const fault::FaultInjector *inj = fault::activeInjector();
    const fault::FaultInjector *delay_inj =
        inj != nullptr && inj->spec().gateDelayJitter > 0 ? inj
                                                          : nullptr;
    const bool stuck_on = inj != nullptr && inj->spec().stuckProb > 0;
    obs::Counter *stuck_counter =
        stuck_on ? &obs::MetricsRegistry::instance().counter(
                       "fault.injected.stuck")
                 : nullptr;
    const bool guard_order =
        fault::guardActive(fault::kGuardAgendaOrder);

    // Belt-and-braces against a malformed agenda (validate() should
    // make this unreachable): every wire is examined at most once per
    // incoming edge plus once per external/initial event, so a run
    // that pops past this budget is cycling, and we bail with a
    // diagnostic instead of spinning or scanning out of bounds.
    const uint64_t popBudget =
        4 * (static_cast<uint64_t>(n) + fanout.consumer.size()) + 64;
    uint64_t popped = 0;
    Time::rep prevNow = 0;

    ST_OBS_ONLY(uint64_t fell = 0;)
    while (agenda.pending()) {
        const Time now = Time(agenda.advance());
        if (guard_order && now.isFinite() && now.value() < prevNow) {
            fault::reportViolation(
                "agenda_order", "grl.agenda",
                "advance moved time backwards: " +
                    std::to_string(prevNow) + " -> " + now.str());
        }
        if (now.isFinite())
            prevNow = now.value();

        while (agenda.readyPending()) {
            WireId id = agenda.popReady();
            if (++popped > popBudget) {
                throw StatusError(Status(
                    StatusCode::ResourceExhausted,
                    "event budget exceeded (" +
                        std::to_string(popBudget) +
                        " pops) — zero-delay cycle in the agenda",
                    "wire " + std::to_string(id)));
            }
            if (fallen(id))
                continue;
            if (stuck_on && inj->stuckAtInf(id)) {
                stuck_counter->add(1);
                continue;
            }

            const Gate &gate = gates[id];
            bool falls = false;
            switch (gate.kind) {
              case GateKind::Input:
                falls = inputs[id] == now;
                break;
              case GateKind::Const:
                falls = gate.constTime == now;
                break;
              case GateKind::And:
                // min: falls with the first fanin fall.
                for (WireId src : gate.fanin)
                    falls |= fall[src] == now;
                break;
              case GateKind::Or:
                // max: falls once every fanin has fallen.
                falls = fallenIns[id] == gate.fanin.size();
                break;
              case GateKind::LtCell: {
                WireId a = gate.fanin[0], b = gate.fanin[1];
                // a's fall passes unless b fell at-or-before it; b's
                // id precedes ours, so its status at `now` is final.
                falls = fall[a] == now && !(fallen(b) && fall[b] <= now);
                break;
              }
              case GateKind::Delay:
                // Scheduled exactly at source fall + stages.
                falls = true;
                break;
            }
            if (!falls)
                continue;

            ST_OBS_ONLY(++fell;)
            fall[id] = now;
            // The cached per-edge schedule offsets (stage count for
            // Delay consumers, 0 otherwise) keep this walk off the
            // Gate table entirely.
            const auto consumers = fanout.of(id);
            const auto delays = fanout.delaysOf(id);
            for (size_t k = 0; k < consumers.size(); ++k) {
                const WireId consumer = consumers[k];
                ++fallenIns[consumer];
                if (!fallen(consumer)) {
                    Time::rep offset = delays[k];
                    if (delay_inj != nullptr && offset > 0) {
                        offset = delay_inj->perturbGateDelay(offset,
                                                             consumer);
                    }
                    agenda.schedule(consumer, offset);
                }
            }
        }
    }

    // Flush the run's tallies in one batch of registry records —
    // nothing above this line touches an atomic for them.
    ST_OBS_ONLY({
        ST_OBS_ADD("grl.events.popped", popped);
        ST_OBS_ADD("grl.events.fired", fell);
        ST_OBS_ADD("grl.agenda.advances", agenda.statAdvances);
        ST_OBS_ADD("grl.agenda.ready_pushes", agenda.statReadyPushes);
        ST_OBS_ADD("grl.agenda.ring_pushes", agenda.statRingPushes);
        ST_OBS_ADD("grl.agenda.far_pushes", agenda.statFarPushes);
        ST_OBS_GAUGE_MAX("grl.agenda.max_depth", agenda.statMaxDepth);
    })

    // Assemble the SimResult with the same accounting as the clocked
    // engine, derived arithmetically from the fall times.
    SimResult result;
    result.cyclesSimulated = horizon + 1;
    result.fallTime.assign(n, INF);
    for (size_t g = 0; g < n; ++g) {
        const Gate &gate = gates[g];
        bool visible = fall[g].isFinite() && fall[g].value() <= horizon;
        if (visible)
            result.fallTime[g] = fall[g];

        switch (gate.kind) {
          case GateKind::Input:
          case GateKind::Const:
            result.inputTransitions += visible;
            break;
          case GateKind::And:
          case GateKind::Or:
            result.gateTransitions += visible;
            break;
          case GateKind::LtCell: {
            result.ltOutputTransitions += visible;
            // Latch capture: b fell within the horizon while the
            // output had not already fallen (i.e., NOT a strictly
            // before b).
            Time fa = fall[gate.fanin[0]], fb = fall[gate.fanin[1]];
            bool b_visible = fb.isFinite() && fb.value() <= horizon;
            bool a_first = fa.isFinite() && fa < fb;
            result.ltLatchTransitions += b_visible && !a_first;
            break;
          }
          case GateKind::Delay: {
            Time fin = fall[gate.fanin[0]];
            if (fin.isFinite() && fin.value() < horizon) {
                Time::rep drained = std::min<Time::rep>(
                    gate.stages, horizon - fin.value());
                result.flopDataTransitions += drained;
                result.flopZeroBits += drained;
            }
            break;
          }
        }
        if (result.fallTime[g].isFinite())
            ++result.fallenLines;
    }
    // Latch state for reset accounting = captures (each sets once).
    result.latchesCaptured = result.ltLatchTransitions;

    result.outputs.reserve(circuit.outputs().size());
    for (WireId id : circuit.outputs())
        result.outputs.push_back(result.fallTime[id]);
    return result;
}

} // namespace st::grl
