#include "grl/event_sim.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace st::grl {

SimResult
simulateEvents(const Circuit &circuit, std::span<const Time> inputs,
               Time::rep horizon)
{
    if (inputs.size() != circuit.numInputs())
        throw std::invalid_argument("grl::simulateEvents: input count "
                                    "mismatch");
    if (horizon == 0)
        horizon = safeHorizon(circuit, inputs);

    const auto &gates = circuit.gates();
    const size_t n = gates.size();

    // Fanout adjacency.
    std::vector<std::vector<WireId>> fanout(n);
    for (size_t g = 0; g < n; ++g) {
        for (WireId src : gates[g].fanin)
            fanout[src].push_back(static_cast<WireId>(g));
    }

    // Unclipped fall times (clipped to the horizon at the end).
    std::vector<Time> fall(n, INF);
    // Count of fallen fanins, for OR (max) gates.
    std::vector<uint32_t> fallenIns(n, 0);

    // Agenda: nodes to examine per time, in topological (id) order
    // within a time step — resolving LT ties exactly like the clocked
    // engine's settle order.
    std::map<Time, std::set<WireId>> agenda;
    for (size_t g = 0; g < n; ++g) {
        const Gate &gate = gates[g];
        if (gate.kind == GateKind::Input &&
            inputs[g].isFinite()) {
            agenda[inputs[g]].insert(static_cast<WireId>(g));
        } else if (gate.kind == GateKind::Const &&
                   gate.constTime.isFinite()) {
            agenda[gate.constTime].insert(static_cast<WireId>(g));
        }
    }

    auto fallen = [&](WireId g) { return fall[g].isFinite(); };

    while (!agenda.empty()) {
        auto it = agenda.begin();
        const Time now = it->first;
        std::set<WireId> &ready = it->second;

        while (!ready.empty()) {
            WireId id = *ready.begin();
            ready.erase(ready.begin());
            if (fallen(id))
                continue;

            const Gate &gate = gates[id];
            bool falls = false;
            switch (gate.kind) {
              case GateKind::Input:
                falls = inputs[id] == now;
                break;
              case GateKind::Const:
                falls = gate.constTime == now;
                break;
              case GateKind::And:
                // min: falls with the first fanin fall.
                for (WireId src : gate.fanin)
                    falls |= fall[src] == now;
                break;
              case GateKind::Or:
                // max: falls once every fanin has fallen.
                falls = fallenIns[id] == gate.fanin.size();
                break;
              case GateKind::LtCell: {
                WireId a = gate.fanin[0], b = gate.fanin[1];
                // a's fall passes unless b fell at-or-before it; b's
                // id precedes ours, so its status at `now` is final.
                falls = fall[a] == now &&
                        !(fallen(b) && fall[b] <= now);
                break;
              }
              case GateKind::Delay:
                // Scheduled exactly at source fall + stages.
                falls = true;
                break;
            }
            if (!falls)
                continue;

            fall[id] = now;
            for (WireId consumer : fanout[id]) {
                ++fallenIns[consumer];
                if (fallen(consumer))
                    continue;
                if (gates[consumer].kind == GateKind::Delay)
                    agenda[now + gates[consumer].stages].insert(consumer);
                else
                    agenda[now].insert(consumer);
            }
        }
        agenda.erase(agenda.begin());
    }

    // Assemble the SimResult with the same accounting as the clocked
    // engine, derived arithmetically from the fall times.
    SimResult result;
    result.cyclesSimulated = horizon + 1;
    result.fallTime.assign(n, INF);
    for (size_t g = 0; g < n; ++g) {
        const Gate &gate = gates[g];
        bool visible = fall[g].isFinite() && fall[g].value() <= horizon;
        if (visible)
            result.fallTime[g] = fall[g];

        switch (gate.kind) {
          case GateKind::Input:
          case GateKind::Const:
            result.inputTransitions += visible;
            break;
          case GateKind::And:
          case GateKind::Or:
            result.gateTransitions += visible;
            break;
          case GateKind::LtCell: {
            result.ltOutputTransitions += visible;
            // Latch capture: b fell within the horizon while the
            // output had not already fallen (i.e., NOT a strictly
            // before b).
            Time fa = fall[gate.fanin[0]], fb = fall[gate.fanin[1]];
            bool b_visible = fb.isFinite() && fb.value() <= horizon;
            bool a_first = fa.isFinite() && fa < fb;
            result.ltLatchTransitions += b_visible && !a_first;
            break;
          }
          case GateKind::Delay: {
            Time fin = fall[gate.fanin[0]];
            if (fin.isFinite() && fin.value() < horizon) {
                Time::rep drained = std::min<Time::rep>(
                    gate.stages, horizon - fin.value());
                result.flopDataTransitions += drained;
                result.flopZeroBits += drained;
            }
            break;
          }
        }
        if (result.fallTime[g].isFinite())
            ++result.fallenLines;
    }
    // Latch state for reset accounting = captures (each sets once).
    result.latchesCaptured = result.ltLatchTransitions;

    result.outputs.reserve(circuit.outputs().size());
    for (WireId id : circuit.outputs())
        result.outputs.push_back(result.fallTime[id]);
    return result;
}

} // namespace st::grl
