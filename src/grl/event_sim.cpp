#include "grl/event_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "fault/fault.hpp"
#include "grl/calendar_queue.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace st::grl {

using detail::CalendarQueue;

SimResult
simulateEvents(const Circuit &circuit, std::span<const Time> inputs,
               Time::rep horizon)
{
    if (inputs.size() != circuit.numInputs())
        throw std::invalid_argument("grl::simulateEvents: input count "
                                    "mismatch");
    if (horizon == 0)
        horizon = safeHorizon(circuit, inputs);
    ST_TRACE_SPAN("grl.event_sim");

    const auto &gates = circuit.gates();
    const size_t n = gates.size();
    const CircuitFanout &fanout = circuit.fanout();

    // Unclipped fall times (clipped to the horizon at the end).
    std::vector<Time> fall(n, INF);
    // Count of fallen fanins, for OR (max) gates.
    std::vector<uint32_t> fallenIns(n, 0);

    // Seed the agenda with the externally driven falls.
    std::vector<std::pair<Time::rep, WireId>> external;
    for (size_t g = 0; g < n; ++g) {
        const Gate &gate = gates[g];
        if (gate.kind == GateKind::Input && inputs[g].isFinite()) {
            external.emplace_back(inputs[g].value(),
                                  static_cast<WireId>(g));
        } else if (gate.kind == GateKind::Const &&
                   gate.constTime.isFinite()) {
            external.emplace_back(gate.constTime.value(),
                                  static_cast<WireId>(g));
        }
    }
    CalendarQueue agenda(fanout.maxDelayStages, n, std::move(external));

    auto fallen = [&](WireId g) { return fall[g].isFinite(); };

    // Fault hooks, resolved once per run. Gate-delay perturbation is
    // keyed by the consumer wire alone (a physically mis-sized shift
    // register, identical on every fall); stuck wires never fall.
    const fault::FaultInjector *inj = fault::activeInjector();
    const fault::FaultInjector *delay_inj =
        inj != nullptr && inj->spec().gateDelayJitter > 0 ? inj
                                                          : nullptr;
    const bool stuck_on = inj != nullptr && inj->spec().stuckProb > 0;
    obs::Counter *stuck_counter =
        stuck_on ? &obs::MetricsRegistry::instance().counter(
                       "fault.injected.stuck")
                 : nullptr;
    const bool guard_order =
        fault::guardActive(fault::kGuardAgendaOrder);

    // Belt-and-braces against a malformed agenda (validate() should
    // make this unreachable): every wire is examined at most once per
    // incoming edge plus once per external/initial event, so a run
    // that pops past this budget is cycling, and we bail with a
    // diagnostic instead of spinning or scanning out of bounds.
    const uint64_t popBudget =
        4 * (static_cast<uint64_t>(n) + fanout.consumer.size()) + 64;
    uint64_t popped = 0;
    Time::rep prevNow = 0;

    ST_OBS_ONLY(uint64_t fell = 0;)
    while (agenda.pending()) {
        const Time now = Time(agenda.advance());
        if (guard_order && now.isFinite() && now.value() < prevNow) {
            fault::reportViolation(
                "agenda_order", "grl.agenda",
                "advance moved time backwards: " +
                    std::to_string(prevNow) + " -> " + now.str());
        }
        if (now.isFinite())
            prevNow = now.value();

        while (agenda.readyPending()) {
            WireId id = agenda.popReady();
            if (++popped > popBudget) {
                throw StatusError(Status(
                    StatusCode::ResourceExhausted,
                    "event budget exceeded (" +
                        std::to_string(popBudget) +
                        " pops) — zero-delay cycle in the agenda",
                    "wire " + std::to_string(id)));
            }
            if (fallen(id))
                continue;
            if (stuck_on && inj->stuckAtInf(id)) {
                stuck_counter->add(1);
                continue;
            }

            const Gate &gate = gates[id];
            bool falls = false;
            switch (gate.kind) {
              case GateKind::Input:
                falls = inputs[id] == now;
                break;
              case GateKind::Const:
                falls = gate.constTime == now;
                break;
              case GateKind::And:
                // min: falls with the first fanin fall.
                for (WireId src : gate.fanin)
                    falls |= fall[src] == now;
                break;
              case GateKind::Or:
                // max: falls once every fanin has fallen.
                falls = fallenIns[id] == gate.fanin.size();
                break;
              case GateKind::LtCell: {
                WireId a = gate.fanin[0], b = gate.fanin[1];
                // a's fall passes unless b fell at-or-before it; b's
                // id precedes ours, so its status at `now` is final.
                falls = fall[a] == now && !(fallen(b) && fall[b] <= now);
                break;
              }
              case GateKind::Delay:
                // Scheduled exactly at source fall + stages.
                falls = true;
                break;
            }
            if (!falls)
                continue;

            ST_OBS_ONLY(++fell;)
            fall[id] = now;
            // The cached per-edge schedule offsets (stage count for
            // Delay consumers, 0 otherwise) keep this walk off the
            // Gate table entirely.
            const auto consumers = fanout.of(id);
            const auto delays = fanout.delaysOf(id);
            for (size_t k = 0; k < consumers.size(); ++k) {
                const WireId consumer = consumers[k];
                ++fallenIns[consumer];
                if (!fallen(consumer)) {
                    Time::rep offset = delays[k];
                    if (delay_inj != nullptr && offset > 0) {
                        offset = delay_inj->perturbGateDelay(offset,
                                                             consumer);
                    }
                    agenda.schedule(consumer, offset);
                }
            }
        }
    }

    // Flush the run's tallies in one batch of registry records —
    // nothing above this line touches an atomic for them.
    ST_OBS_ONLY({
        ST_OBS_ADD("grl.events.popped", popped);
        ST_OBS_ADD("grl.events.fired", fell);
        ST_OBS_ADD("grl.agenda.advances", agenda.statAdvances);
        ST_OBS_ADD("grl.agenda.ready_pushes", agenda.statReadyPushes);
        ST_OBS_ADD("grl.agenda.ring_pushes", agenda.statRingPushes);
        ST_OBS_ADD("grl.agenda.far_pushes", agenda.statFarPushes);
        ST_OBS_GAUGE_MAX("grl.agenda.max_depth", agenda.statMaxDepth);
    })

    // Assemble the SimResult with the same accounting as the clocked
    // engine, derived arithmetically from the fall times.
    SimResult result;
    result.cyclesSimulated = horizon + 1;
    result.fallTime.assign(n, INF);
    for (size_t g = 0; g < n; ++g) {
        const Gate &gate = gates[g];
        bool visible = fall[g].isFinite() && fall[g].value() <= horizon;
        if (visible)
            result.fallTime[g] = fall[g];

        switch (gate.kind) {
          case GateKind::Input:
          case GateKind::Const:
            result.inputTransitions += visible;
            break;
          case GateKind::And:
          case GateKind::Or:
            result.gateTransitions += visible;
            break;
          case GateKind::LtCell: {
            result.ltOutputTransitions += visible;
            // Latch capture: b fell within the horizon while the
            // output had not already fallen (i.e., NOT a strictly
            // before b).
            Time fa = fall[gate.fanin[0]], fb = fall[gate.fanin[1]];
            bool b_visible = fb.isFinite() && fb.value() <= horizon;
            bool a_first = fa.isFinite() && fa < fb;
            result.ltLatchTransitions += b_visible && !a_first;
            break;
          }
          case GateKind::Delay: {
            Time fin = fall[gate.fanin[0]];
            if (fin.isFinite() && fin.value() < horizon) {
                Time::rep drained = std::min<Time::rep>(
                    gate.stages, horizon - fin.value());
                result.flopDataTransitions += drained;
                result.flopZeroBits += drained;
            }
            break;
          }
        }
        if (result.fallTime[g].isFinite())
            ++result.fallenLines;
    }
    // Latch state for reset accounting = captures (each sets once).
    result.latchesCaptured = result.ltLatchTransitions;

    result.outputs.reserve(circuit.outputs().size());
    for (WireId id : circuit.outputs())
        result.outputs.push_back(result.fallTime[id]);
    return result;
}

} // namespace st::grl
