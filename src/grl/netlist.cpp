#include "grl/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace st::grl {

const char *
gateKindName(GateKind kind)
{
    switch (kind) {
      case GateKind::Input:
        return "input";
      case GateKind::Const:
        return "const";
      case GateKind::And:
        return "and";
      case GateKind::Or:
        return "or";
      case GateKind::LtCell:
        return "ltcell";
      case GateKind::Delay:
        return "delay";
    }
    return "?";
}

Circuit::Circuit(size_t num_inputs)
    : numInputs_(num_inputs)
{
    gates_.reserve(num_inputs);
    for (size_t i = 0; i < num_inputs; ++i)
        gates_.push_back(Gate{GateKind::Input, {}, 0, INF});
}

WireId
Circuit::input(size_t i) const
{
    if (i >= numInputs_)
        throw std::out_of_range("Circuit: no such input");
    return static_cast<WireId>(i);
}

void
Circuit::checkId(WireId id) const
{
    if (id >= gates_.size())
        throw std::out_of_range("Circuit: reference to nonexistent gate");
}

WireId
Circuit::add(Gate gate)
{
    for (WireId src : gate.fanin)
        checkId(src);
    gates_.push_back(std::move(gate));
    return static_cast<WireId>(gates_.size() - 1);
}

WireId
Circuit::constant(Time t)
{
    return add(Gate{GateKind::Const, {}, 0, t});
}

WireId
Circuit::andGate(std::span<const WireId> ins)
{
    if (ins.empty())
        throw std::invalid_argument("Circuit: and needs >= 1 input");
    return add(Gate{GateKind::And, {ins.begin(), ins.end()}, 0, INF});
}

WireId
Circuit::andGate(WireId a, WireId b)
{
    return add(Gate{GateKind::And, {a, b}, 0, INF});
}

WireId
Circuit::orGate(std::span<const WireId> ins)
{
    if (ins.empty())
        throw std::invalid_argument("Circuit: or needs >= 1 input");
    return add(Gate{GateKind::Or, {ins.begin(), ins.end()}, 0, INF});
}

WireId
Circuit::orGate(WireId a, WireId b)
{
    return add(Gate{GateKind::Or, {a, b}, 0, INF});
}

WireId
Circuit::ltCell(WireId a, WireId b)
{
    return add(Gate{GateKind::LtCell, {a, b}, 0, INF});
}

WireId
Circuit::delay(WireId src, uint32_t stages)
{
    return add(Gate{GateKind::Delay, {src}, stages, INF});
}

void
Circuit::markOutput(WireId id)
{
    checkId(id);
    outputs_.push_back(id);
}

size_t
Circuit::countOf(GateKind kind) const
{
    return static_cast<size_t>(
        std::count_if(gates_.begin(), gates_.end(),
                      [kind](const Gate &g) { return g.kind == kind; }));
}

uint64_t
Circuit::totalStages() const
{
    uint64_t total = 0;
    for (const Gate &g : gates_) {
        if (g.kind == GateKind::Delay)
            total += g.stages;
    }
    return total;
}

} // namespace st::grl
