#include "grl/netlist.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

namespace st::grl {

const char *
gateKindName(GateKind kind)
{
    switch (kind) {
      case GateKind::Input:
        return "input";
      case GateKind::Const:
        return "const";
      case GateKind::And:
        return "and";
      case GateKind::Or:
        return "or";
      case GateKind::LtCell:
        return "ltcell";
      case GateKind::Delay:
        return "delay";
    }
    return "?";
}

Circuit::Circuit(size_t num_inputs)
    : numInputs_(num_inputs)
{
    gates_.reserve(num_inputs);
    for (size_t i = 0; i < num_inputs; ++i)
        gates_.push_back(Gate{GateKind::Input, {}, 0, INF});
}

Circuit::Circuit(const Circuit &other)
    : gates_(other.gates_), outputs_(other.outputs_),
      numInputs_(other.numInputs_)
{
}

Circuit &
Circuit::operator=(const Circuit &other)
{
    if (this != &other) {
        gates_ = other.gates_;
        outputs_ = other.outputs_;
        numInputs_ = other.numInputs_;
        invalidateFanout();
    }
    return *this;
}

Circuit::Circuit(Circuit &&other) noexcept
    : gates_(std::move(other.gates_)),
      outputs_(std::move(other.outputs_)),
      numInputs_(other.numInputs_),
      fanout_(other.fanout_.exchange(nullptr, std::memory_order_acq_rel)),
      components_(
          other.components_.exchange(nullptr, std::memory_order_acq_rel))
{
}

Circuit &
Circuit::operator=(Circuit &&other) noexcept
{
    if (this != &other) {
        gates_ = std::move(other.gates_);
        outputs_ = std::move(other.outputs_);
        numInputs_ = other.numInputs_;
        delete fanout_.exchange(
            other.fanout_.exchange(nullptr, std::memory_order_acq_rel),
            std::memory_order_acq_rel);
        delete components_.exchange(
            other.components_.exchange(nullptr,
                                       std::memory_order_acq_rel),
            std::memory_order_acq_rel);
    }
    return *this;
}

Circuit::~Circuit()
{
    delete fanout_.load(std::memory_order_relaxed);
    delete components_.load(std::memory_order_relaxed);
}

void
Circuit::invalidateFanout()
{
    delete fanout_.exchange(nullptr, std::memory_order_acq_rel);
    delete components_.exchange(nullptr, std::memory_order_acq_rel);
}

const CircuitFanout &
Circuit::fanout() const
{
    if (const CircuitFanout *hit =
            fanout_.load(std::memory_order_acquire)) {
        return *hit;
    }
    // Validate before the CSR build: a fanin id out of range would
    // corrupt the offset histogram below, and a zero-delay cycle would
    // break the event engine's ready-scan invariant. One scan per
    // circuit build; the cached hit path above pays nothing.
    if (Status status = validate(); !status.isOk())
        throw StatusError(std::move(status));
    auto fresh = std::make_unique<CircuitFanout>();
    const size_t n = gates_.size();
    fresh->offset.assign(n + 1, 0);
    for (const Gate &g : gates_) {
        for (WireId src : g.fanin)
            ++fresh->offset[src + 1];
        if (g.kind == GateKind::Delay)
            fresh->maxDelayStages =
                std::max(fresh->maxDelayStages, g.stages);
    }
    for (size_t w = 0; w < n; ++w)
        fresh->offset[w + 1] += fresh->offset[w];
    fresh->consumer.resize(fresh->offset[n]);
    fresh->consumerDelay.resize(fresh->offset[n]);
    std::vector<uint32_t> cursor(fresh->offset.begin(),
                                 fresh->offset.end() - 1);
    for (size_t g = 0; g < n; ++g) {
        const uint32_t sched_delay =
            gates_[g].kind == GateKind::Delay ? gates_[g].stages : 0;
        for (WireId src : gates_[g].fanin) {
            fresh->consumer[cursor[src]] = static_cast<WireId>(g);
            fresh->consumerDelay[cursor[src]++] = sched_delay;
        }
    }
    // Racing builders agree on one winner; losers discard their copy.
    const CircuitFanout *expected = nullptr;
    if (fanout_.compare_exchange_strong(expected, fresh.get(),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return *fresh.release();
    }
    return *expected;
}

const CircuitComponents &
Circuit::components() const
{
    if (const CircuitComponents *hit =
            components_.load(std::memory_order_acquire)) {
        return *hit;
    }
    (void)fanout(); // validation gate; a malformed circuit throws here
    const size_t n = gates_.size();

    // Union-find over the zero-delay edges: an edge src -> g merges
    // the two gates unless g is a Delay with stages >= 1 (the only
    // edge kind with a nonzero schedule offset — see CircuitFanout's
    // consumerDelay). Delay gates with stages >= 1 join the component
    // of their *consumers* (their output edges are zero-delay), which
    // is where a partition must examine them.
    std::vector<uint32_t> parent(n);
    for (size_t g = 0; g < n; ++g)
        parent[g] = static_cast<uint32_t>(g);
    auto find = [&parent](uint32_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        return x;
    };
    for (size_t g = 0; g < n; ++g) {
        const Gate &gate = gates_[g];
        if (gate.kind == GateKind::Delay && gate.stages >= 1)
            continue;
        for (WireId src : gate.fanin) {
            uint32_t a = find(static_cast<uint32_t>(g));
            uint32_t b = find(src);
            if (a != b)
                parent[std::max(a, b)] = std::min(a, b);
        }
    }

    // Dense component ids in order of each component's lowest gate id,
    // so the labeling (and everything the partitioner derives from it)
    // is deterministic.
    auto fresh = std::make_unique<CircuitComponents>();
    fresh->componentOf.resize(n);
    std::vector<uint32_t> idOf(n, UINT32_MAX);
    for (size_t g = 0; g < n; ++g) {
        const uint32_t root = find(static_cast<uint32_t>(g));
        if (idOf[root] == UINT32_MAX) {
            idOf[root] = static_cast<uint32_t>(fresh->sizeOf.size());
            fresh->sizeOf.push_back(0);
        }
        fresh->componentOf[g] = idOf[root];
        ++fresh->sizeOf[idOf[root]];
    }

    const CircuitComponents *expected = nullptr;
    if (components_.compare_exchange_strong(expected, fresh.get(),
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
        return *fresh.release();
    }
    return *expected;
}

WireId
Circuit::input(size_t i) const
{
    if (i >= numInputs_)
        throw std::out_of_range("Circuit: no such input");
    return static_cast<WireId>(i);
}

void
Circuit::checkId(WireId id) const
{
    if (id >= gates_.size())
        throw std::out_of_range("Circuit: reference to nonexistent gate");
}

WireId
Circuit::add(Gate gate)
{
    for (WireId src : gate.fanin)
        checkId(src);
    gates_.push_back(std::move(gate));
    invalidateFanout();
    return static_cast<WireId>(gates_.size() - 1);
}

WireId
Circuit::constant(Time t)
{
    return add(Gate{GateKind::Const, {}, 0, t});
}

WireId
Circuit::andGate(std::span<const WireId> ins)
{
    if (ins.empty())
        throw std::invalid_argument("Circuit: and needs >= 1 input");
    return add(Gate{GateKind::And, {ins.begin(), ins.end()}, 0, INF});
}

WireId
Circuit::andGate(WireId a, WireId b)
{
    return add(Gate{GateKind::And, {a, b}, 0, INF});
}

WireId
Circuit::orGate(std::span<const WireId> ins)
{
    if (ins.empty())
        throw std::invalid_argument("Circuit: or needs >= 1 input");
    return add(Gate{GateKind::Or, {ins.begin(), ins.end()}, 0, INF});
}

WireId
Circuit::orGate(WireId a, WireId b)
{
    return add(Gate{GateKind::Or, {a, b}, 0, INF});
}

WireId
Circuit::ltCell(WireId a, WireId b)
{
    return add(Gate{GateKind::LtCell, {a, b}, 0, INF});
}

WireId
Circuit::delay(WireId src, uint32_t stages)
{
    return add(Gate{GateKind::Delay, {src}, stages, INF});
}

WireId
Circuit::addGateUnchecked(Gate gate)
{
    gates_.push_back(std::move(gate));
    invalidateFanout();
    return static_cast<WireId>(gates_.size() - 1);
}

Status
Circuit::validate() const
{
    const size_t n = gates_.size();
    auto at = [](size_t g) { return "wire " + std::to_string(g); };
    for (size_t g = 0; g < n; ++g) {
        const Gate &gate = gates_[g];
        for (WireId src : gate.fanin) {
            if (src >= n) {
                return Status(StatusCode::OutOfRange,
                              "fanin references nonexistent gate " +
                                  std::to_string(src),
                              at(g));
            }
        }
        const size_t arity = gate.fanin.size();
        switch (gate.kind) {
          case GateKind::Input:
            if (g >= numInputs_) {
                return Status(StatusCode::FailedPrecondition,
                              "input gate outside the primary-input "
                              "prefix (no fall time is supplied for "
                              "it)",
                              at(g));
            }
            [[fallthrough]];
          case GateKind::Const:
            if (arity != 0) {
                return Status(StatusCode::FailedPrecondition,
                              "externally driven gate must have no "
                              "fanin",
                              at(g));
            }
            break;
          case GateKind::And:
          case GateKind::Or:
            if (arity == 0) {
                return Status(StatusCode::FailedPrecondition,
                              std::string(gateKindName(gate.kind)) +
                                  " gate needs >= 1 fanin",
                              at(g));
            }
            break;
          case GateKind::LtCell:
            if (arity != 2) {
                return Status(StatusCode::FailedPrecondition,
                              "lt cell needs exactly fanin [a, b]",
                              at(g));
            }
            break;
          case GateKind::Delay:
            if (arity != 1) {
                return Status(StatusCode::FailedPrecondition,
                              "delay gate needs exactly one fanin",
                              at(g));
            }
            break;
        }
    }

    // Zero-delay cycle scan over the combinational subgraph: an edge
    // src -> g is instantaneous unless g is a Delay with stages >= 1
    // (the flipflops break the loop). Grey = on the current DFS path.
    enum : uint8_t { kWhite, kGrey, kBlack };
    std::vector<uint8_t> color(n, kWhite);
    std::vector<std::pair<uint32_t, uint32_t>> stack; // (gate, next fanin)
    for (size_t root = 0; root < n; ++root) {
        if (color[root] != kWhite)
            continue;
        color[root] = kGrey;
        stack.emplace_back(static_cast<uint32_t>(root), 0);
        while (!stack.empty()) {
            auto &[g, k] = stack.back();
            const Gate &gate = gates_[g];
            const bool breaks_loop =
                gate.kind == GateKind::Delay && gate.stages >= 1;
            if (breaks_loop || k == gate.fanin.size()) {
                color[g] = kBlack;
                stack.pop_back();
                continue;
            }
            const WireId src = gate.fanin[k++];
            if (color[src] == kGrey) {
                const Gate &sg = gates_[src];
                if (gate.kind == GateKind::Delay ||
                    sg.kind == GateKind::Delay) {
                    // A zero-stage Delay is a plain wire; on a feedback
                    // edge its delay is nonpositive — it cannot break
                    // the loop, and it cannot carry a cross-partition
                    // edge (the parallel engine's lookahead needs
                    // every cut delay strictly positive). Note only a
                    // stages == 0 Delay can sit on this path at all:
                    // stages >= 1 breaks the walk above.
                    const uint32_t culprit =
                        gate.kind == GateKind::Delay ? g : src;
                    return Status(
                        StatusCode::FailedPrecondition,
                        "delay gate " + std::to_string(culprit) +
                            " closes a feedback loop with nonpositive "
                            "delay; stages must be >= 1 on a feedback "
                            "or cross-partition edge",
                        at(src));
                }
                return Status(StatusCode::FailedPrecondition,
                              "zero-delay combinational cycle "
                              "(insert a delay gate with stages >= 1 "
                              "to break it)",
                              at(src));
            }
            if (color[src] == kWhite) {
                color[src] = kGrey;
                stack.emplace_back(src, 0);
            }
        }
    }

    // Even without a cycle, a zero-delay forward reference breaks the
    // engines' settle order (fanins must precede consumers in id
    // order unless the edge crosses a flipflop).
    for (size_t g = 0; g < n; ++g) {
        const Gate &gate = gates_[g];
        if (gate.kind == GateKind::Delay && gate.stages >= 1)
            continue;
        for (WireId src : gate.fanin) {
            if (src >= g) {
                if (gate.kind == GateKind::Delay) {
                    return Status(
                        StatusCode::FailedPrecondition,
                        "delay gate takes fanin from gate " +
                            std::to_string(src) +
                            " ahead of it with nonpositive delay; "
                            "stages must be >= 1 on a feedback or "
                            "cross-partition edge",
                        at(g));
                }
                return Status(StatusCode::FailedPrecondition,
                              "zero-delay fanin from gate " +
                                  std::to_string(src) +
                                  " does not precede its consumer",
                              at(g));
            }
        }
    }
    return Status::ok();
}

void
Circuit::markOutput(WireId id)
{
    checkId(id);
    outputs_.push_back(id);
}

size_t
Circuit::countOf(GateKind kind) const
{
    return static_cast<size_t>(
        std::count_if(gates_.begin(), gates_.end(),
                      [kind](const Gate &g) { return g.kind == kind; }));
}

uint64_t
Circuit::totalStages() const
{
    uint64_t total = 0;
    for (const Gate &g : gates_) {
        if (g.kind == GateKind::Delay)
            total += g.stages;
    }
    return total;
}

} // namespace st::grl
