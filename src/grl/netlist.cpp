#include "grl/netlist.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace st::grl {

const char *
gateKindName(GateKind kind)
{
    switch (kind) {
      case GateKind::Input:
        return "input";
      case GateKind::Const:
        return "const";
      case GateKind::And:
        return "and";
      case GateKind::Or:
        return "or";
      case GateKind::LtCell:
        return "ltcell";
      case GateKind::Delay:
        return "delay";
    }
    return "?";
}

Circuit::Circuit(size_t num_inputs)
    : numInputs_(num_inputs)
{
    gates_.reserve(num_inputs);
    for (size_t i = 0; i < num_inputs; ++i)
        gates_.push_back(Gate{GateKind::Input, {}, 0, INF});
}

Circuit::Circuit(const Circuit &other)
    : gates_(other.gates_), outputs_(other.outputs_),
      numInputs_(other.numInputs_)
{
}

Circuit &
Circuit::operator=(const Circuit &other)
{
    if (this != &other) {
        gates_ = other.gates_;
        outputs_ = other.outputs_;
        numInputs_ = other.numInputs_;
        invalidateFanout();
    }
    return *this;
}

Circuit::Circuit(Circuit &&other) noexcept
    : gates_(std::move(other.gates_)),
      outputs_(std::move(other.outputs_)),
      numInputs_(other.numInputs_),
      fanout_(other.fanout_.exchange(nullptr, std::memory_order_acq_rel))
{
}

Circuit &
Circuit::operator=(Circuit &&other) noexcept
{
    if (this != &other) {
        gates_ = std::move(other.gates_);
        outputs_ = std::move(other.outputs_);
        numInputs_ = other.numInputs_;
        delete fanout_.exchange(
            other.fanout_.exchange(nullptr, std::memory_order_acq_rel),
            std::memory_order_acq_rel);
    }
    return *this;
}

Circuit::~Circuit()
{
    delete fanout_.load(std::memory_order_relaxed);
}

void
Circuit::invalidateFanout()
{
    delete fanout_.exchange(nullptr, std::memory_order_acq_rel);
}

const CircuitFanout &
Circuit::fanout() const
{
    if (const CircuitFanout *hit =
            fanout_.load(std::memory_order_acquire)) {
        return *hit;
    }
    auto fresh = std::make_unique<CircuitFanout>();
    const size_t n = gates_.size();
    fresh->offset.assign(n + 1, 0);
    for (const Gate &g : gates_) {
        for (WireId src : g.fanin)
            ++fresh->offset[src + 1];
        if (g.kind == GateKind::Delay)
            fresh->maxDelayStages =
                std::max(fresh->maxDelayStages, g.stages);
    }
    for (size_t w = 0; w < n; ++w)
        fresh->offset[w + 1] += fresh->offset[w];
    fresh->consumer.resize(fresh->offset[n]);
    fresh->consumerDelay.resize(fresh->offset[n]);
    std::vector<uint32_t> cursor(fresh->offset.begin(),
                                 fresh->offset.end() - 1);
    for (size_t g = 0; g < n; ++g) {
        const uint32_t sched_delay =
            gates_[g].kind == GateKind::Delay ? gates_[g].stages : 0;
        for (WireId src : gates_[g].fanin) {
            fresh->consumer[cursor[src]] = static_cast<WireId>(g);
            fresh->consumerDelay[cursor[src]++] = sched_delay;
        }
    }
    // Racing builders agree on one winner; losers discard their copy.
    const CircuitFanout *expected = nullptr;
    if (fanout_.compare_exchange_strong(expected, fresh.get(),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return *fresh.release();
    }
    return *expected;
}

WireId
Circuit::input(size_t i) const
{
    if (i >= numInputs_)
        throw std::out_of_range("Circuit: no such input");
    return static_cast<WireId>(i);
}

void
Circuit::checkId(WireId id) const
{
    if (id >= gates_.size())
        throw std::out_of_range("Circuit: reference to nonexistent gate");
}

WireId
Circuit::add(Gate gate)
{
    for (WireId src : gate.fanin)
        checkId(src);
    gates_.push_back(std::move(gate));
    invalidateFanout();
    return static_cast<WireId>(gates_.size() - 1);
}

WireId
Circuit::constant(Time t)
{
    return add(Gate{GateKind::Const, {}, 0, t});
}

WireId
Circuit::andGate(std::span<const WireId> ins)
{
    if (ins.empty())
        throw std::invalid_argument("Circuit: and needs >= 1 input");
    return add(Gate{GateKind::And, {ins.begin(), ins.end()}, 0, INF});
}

WireId
Circuit::andGate(WireId a, WireId b)
{
    return add(Gate{GateKind::And, {a, b}, 0, INF});
}

WireId
Circuit::orGate(std::span<const WireId> ins)
{
    if (ins.empty())
        throw std::invalid_argument("Circuit: or needs >= 1 input");
    return add(Gate{GateKind::Or, {ins.begin(), ins.end()}, 0, INF});
}

WireId
Circuit::orGate(WireId a, WireId b)
{
    return add(Gate{GateKind::Or, {a, b}, 0, INF});
}

WireId
Circuit::ltCell(WireId a, WireId b)
{
    return add(Gate{GateKind::LtCell, {a, b}, 0, INF});
}

WireId
Circuit::delay(WireId src, uint32_t stages)
{
    return add(Gate{GateKind::Delay, {src}, stages, INF});
}

void
Circuit::markOutput(WireId id)
{
    checkId(id);
    outputs_.push_back(id);
}

size_t
Circuit::countOf(GateKind kind) const
{
    return static_cast<size_t>(
        std::count_if(gates_.begin(), gates_.end(),
                      [kind](const Gate &g) { return g.kind == kind; }));
}

uint64_t
Circuit::totalStages() const
{
    uint64_t total = 0;
    for (const Gate &g : gates_) {
        if (g.kind == GateKind::Delay)
            total += g.stages;
    }
    return total;
}

} // namespace st::grl
