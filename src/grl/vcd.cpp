#include "grl/vcd.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace st::grl {

namespace {

/** Compact VCD identifier: printable ASCII 33..126, base-94. */
std::string
vcdId(size_t index)
{
    std::string id;
    do {
        id += static_cast<char>(33 + index % 94);
        index /= 94;
    } while (index > 0);
    return id;
}

} // namespace

std::string
toVcd(const Circuit &circuit, const SimResult &sim,
      const VcdOptions &options)
{
    const auto &gates = circuit.gates();
    std::ostringstream os;
    os << "$comment space-time algebra GRL trace $end\n";
    os << "$timescale " << options.timescale << " $end\n";
    os << "$scope module " << options.module << " $end\n";
    for (size_t g = 0; g < gates.size(); ++g) {
        std::string name =
            g < options.names.size() && !options.names[g].empty()
                ? options.names[g]
                : std::string(gateKindName(gates[g].kind)) +
                      std::to_string(g);
        // VCD identifiers must not contain whitespace.
        std::replace(name.begin(), name.end(), ' ', '_');
        os << "$var wire 1 " << vcdId(g) << ' ' << name << " $end\n";
    }
    os << "$upscope $end\n$enddefinitions $end\n";

    // Initial state: every line idles high.
    os << "#0\n$dumpvars\n";
    for (size_t g = 0; g < gates.size(); ++g) {
        bool falls_at_zero =
            sim.fallTime[g].isFinite() && sim.fallTime[g] == 0_t;
        os << (falls_at_zero ? '0' : '1') << vcdId(g) << '\n';
    }
    os << "$end\n";

    // Falls in time order.
    std::map<Time, std::vector<size_t>> falls;
    for (size_t g = 0; g < gates.size(); ++g) {
        if (sim.fallTime[g].isFinite() && sim.fallTime[g] > 0_t)
            falls[sim.fallTime[g]].push_back(g);
    }
    for (const auto &[t, ids] : falls) {
        os << '#' << t.value() << '\n';
        for (size_t g : ids)
            os << '0' << vcdId(g) << '\n';
    }
    // Close the trace at the simulation horizon.
    os << '#' << sim.cyclesSimulated << '\n';
    return os.str();
}

} // namespace st::grl
