#include "grl/sheet.hpp"

#include <stdexcept>
#include <utility>

#include "grl/compile.hpp"
#include "neuron/response.hpp"
#include "neuron/srm0_network.hpp"
#include "neuron/wta.hpp"

namespace st::grl {

namespace {

/** Counter-based draw (same construction as the fault injector): a
 *  pure function of the ids, so sheet generation is reproducible and
 *  order-independent. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

uint64_t
draw(uint64_t seed, uint64_t a, uint64_t b, uint64_t c)
{
    return mix64(mix64(mix64(seed ^ a) + b) + c);
}

/** The synapse response of (neuron, tap j). Every response has a step
 *  at t = 0 — compiled, that is a zero-stage inc (a wire), which is
 *  what fuses each column's incoming link registers into the column's
 *  zero-delay component (see the file comment in sheet.hpp). Tap 0 is
 *  strong enough (theta up-steps) that no neuron degenerates into the
 *  SRM0 compiler's "never-fires" constant, which would drop its taps
 *  entirely. */
ResponseFunction
synapseResponse(uint64_t seed, size_t neuron, size_t j,
                int32_t threshold)
{
    if (j == 0) {
        const auto theta =
            static_cast<ResponseFunction::Amp>(threshold);
        return ResponseFunction(
            std::vector<ResponseFunction::Amp>{1, theta, theta, 1, 1});
    }
    const uint64_t d = draw(seed, 0x5e11, neuron, j);
    const auto peak =
        static_cast<ResponseFunction::Amp>(1 + d % 3);
    std::vector<ResponseFunction::Amp> s =
        ResponseFunction::biexponential(peak).samples();
    if (s.empty())
        s.push_back(0);
    if (s[0] == 0)
        s[0] = 1; // the t = 0 step that makes the tap a plain wire
    ResponseFunction r{std::move(s)};
    // A sprinkle of inhibition on the later taps, like the paper's
    // mixed excitatory/inhibitory columns — never on taps 0/1, so
    // every neuron keeps an excitatory path to threshold. (Negation
    // keeps the t = 0 step; it just becomes a down-step.)
    if (j >= 2 && (d >> 32) % 8 == 0)
        r = r.negated();
    return r;
}

/**
 * Splice a copy of @p src into @p dst, substituting @p feeds for its
 * primary inputs (Input gates occupy the id prefix, enforced by
 * validate()). Returns src's outputs mapped into dst.
 */
std::vector<WireId>
stamp(Circuit &dst, const Circuit &src, std::span<const WireId> feeds)
{
    const auto &gates = src.gates();
    // Only gates on a fanin path to an output survive the stamp. The
    // SRM0 compiler leaves dead gates behind (unused sorter ranks, an
    // unused inf-pad const), and an edge-free dead const would be its
    // own zero-delay component — breaking the one-component-per-
    // column guarantee the parallel partitioner relies on.
    std::vector<char> live(gates.size(), 0);
    std::vector<WireId> stack;
    for (WireId o : src.outputs()) {
        if (!live[o]) {
            live[o] = 1;
            stack.push_back(o);
        }
    }
    while (!stack.empty()) {
        const WireId g = stack.back();
        stack.pop_back();
        for (WireId in : gates[g].fanin) {
            if (!live[in]) {
                live[in] = 1;
                stack.push_back(in);
            }
        }
    }
    std::vector<WireId> map(gates.size(), ~WireId{0});
    for (size_t g = 0; g < gates.size(); ++g) {
        if (gates[g].kind == GateKind::Input) {
            map[g] = feeds[g];
            continue;
        }
        if (!live[g])
            continue;
        Gate copy = gates[g];
        for (WireId &in : copy.fanin)
            in = map[in];
        map[g] = dst.addGateUnchecked(std::move(copy));
    }
    std::vector<WireId> outs;
    outs.reserve(src.outputs().size());
    for (WireId o : src.outputs())
        outs.push_back(map[o]);
    return outs;
}

} // namespace

Sheet
buildCorticalSheet(const SheetParams &params)
{
    if (params.rows < 1 || params.cols < 1 || params.neurons < 1)
        throw std::invalid_argument(
            "buildCorticalSheet: rows, cols and neurons must be >= 1");
    if (params.synapses < 1 || params.synapses > params.neurons)
        throw std::invalid_argument(
            "buildCorticalSheet: need 1 <= synapses <= neurons");
    if (params.interDelay < 1)
        throw std::invalid_argument(
            "buildCorticalSheet: interDelay must be >= 1");
    if (params.threshold < 1)
        throw std::invalid_argument(
            "buildCorticalSheet: threshold must be >= 1");

    // Compile each distinct neuron and the WTA stage once; every
    // column stamps copies of the same compiled bodies ("replicated
    // column" is literal).
    std::vector<Circuit> neuronCkt;
    neuronCkt.reserve(params.neurons);
    for (size_t i = 0; i < params.neurons; ++i) {
        std::vector<ResponseFunction> synapses;
        synapses.reserve(params.synapses);
        for (size_t j = 0; j < params.synapses; ++j)
            synapses.push_back(synapseResponse(params.seed, i, j,
                                               params.threshold));
        neuronCkt.push_back(
            compileToGrl(buildSrm0Network(synapses, params.threshold))
                .circuit);
    }
    Circuit wtaCkt =
        compileToGrl(wtaNetwork(params.neurons, params.tau)).circuit;

    const size_t rows = params.rows, cols = params.cols;
    const size_t width = params.neurons;
    Sheet sheet{Circuit(rows * width), params, {}};
    Circuit &ckt = sheet.circuit;
    sheet.columnOutputs.reserve(rows * cols * width);

    // above[c][i]: line i of column (r-1, c), for the vertical links.
    std::vector<std::vector<WireId>> above(cols);
    for (size_t r = 0; r < rows; ++r) {
        std::vector<WireId> left; // outputs of (r, c-1)
        for (size_t c = 0; c < cols; ++c) {
            // The column's feed lines.
            std::vector<WireId> feed(width);
            for (size_t i = 0; i < width; ++i) {
                WireId f;
                if (c == 0)
                    f = ckt.input(r * width + i);
                else
                    f = ckt.delay(left[i], params.interDelay);
                if (r > 0 && params.vertDelay > 0) {
                    WireId v =
                        ckt.delay(above[c][i], params.vertDelay);
                    f = ckt.andGate(f, v); // min: earliest spike wins
                }
                feed[i] = f;
            }

            // Neuron bank: neuron i taps feed lines (i + j) % width.
            std::vector<WireId> neuronOut(width);
            std::vector<WireId> taps(params.synapses);
            for (size_t i = 0; i < width; ++i) {
                for (size_t j = 0; j < params.synapses; ++j)
                    taps[j] = feed[(i + j) % width];
                neuronOut[i] = stamp(ckt, neuronCkt[i], taps)[0];
            }

            // Structural fusion guarantee: one zero-delay drain gate
            // consuming every feed line plus a neuron output ties the
            // incoming link registers and the column body into a
            // single component even if some neuron's tap into a feed
            // line was optimized away. Its output is deliberately
            // unused — an OR falls only when *all* fanins fall, so a
            // mostly-silent column never pays an event for it.
            std::vector<WireId> glue = feed;
            glue.push_back(neuronOut[0]);
            ckt.orGate(std::span<const WireId>(glue));

            // WTA inhibition over the bank's spikes.
            std::vector<WireId> outs = stamp(ckt, wtaCkt, neuronOut);
            sheet.columnOutputs.insert(sheet.columnOutputs.end(),
                                       outs.begin(), outs.end());
            above[c] = outs;
            left = std::move(outs);
        }
        if (r + 1 == rows) {
            for (WireId o : left)
                ckt.markOutput(o);
        }
    }
    // Also surface each remaining row's tail when vertical wiring is
    // off (the rows are then independent chains, each with its own
    // result volley).
    if (params.vertDelay == 0 && rows > 1) {
        for (size_t r = 0; r + 1 < rows; ++r) {
            for (WireId o : sheet.column(r, cols - 1))
                ckt.markOutput(o);
        }
    }
    return sheet;
}

std::vector<Time>
sheetInputVolley(const Sheet &sheet, uint64_t salt)
{
    const size_t n = sheet.circuit.numInputs();
    std::vector<Time> volley;
    volley.reserve(n);
    for (size_t line = 0; line < n; ++line) {
        const uint64_t d =
            draw(sheet.params.seed, 0x7011e7, salt, line);
        if (d % 7 == 0)
            volley.push_back(INF); // a silent line now and then
        else
            volley.push_back(Time((d >> 8) % 8));
    }
    return volley;
}

} // namespace st::grl
