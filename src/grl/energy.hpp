/**
 * @file
 * Switching-energy accounting for GRL circuits (paper Sec. VI,
 * conjecture 1).
 *
 * The paper conjectures that direct s-t implementations are intrinsically
 * energy efficient: per computation each combinational line switches at
 * most once (or, under sparse codings, not at all), with the clocked
 * shift registers flagged as the main overhead ("energy consumption may
 * increase significantly due to the clocked shift registers. Further
 * research is required to quantify ... this effect"). This module does
 * that quantification for the simulator: transition counts weighted by
 * per-event energies, with the clock-tree load of every flipflop charged
 * every cycle.
 */

#ifndef ST_GRL_ENERGY_HPP
#define ST_GRL_ENERGY_HPP

#include "grl/logic_sim.hpp"
#include "grl/netlist.hpp"

namespace st::grl {

/** Per-event energy weights (arbitrary units; defaults ~ relative CMOS
 *  costs: a flipflop toggle costs more than a simple gate, and the clock
 *  pin of every flipflop is charged twice per cycle). */
struct EnergyParams
{
    double gateSwitch = 1.0;     //!< AND/OR output transition
    double ltSwitch = 1.0;       //!< LT cell output transition
    double latchCapture = 1.5;   //!< LT latch internal capture
    double flopDataSwitch = 2.0; //!< flipflop data toggle
    double clockPerStagePerCycle = 0.4; //!< clock load, per FF per cycle
    double inputDrive = 1.0;     //!< externally driven input fall
    double resetSwitch = 1.0;    //!< rising edge during the reset phase
};

/** Energy breakdown of one simulated computation. */
struct EnergyReport
{
    double combinational = 0; //!< AND/OR switching
    double ltCells = 0;       //!< LT output + latch switching
    double flopData = 0;      //!< shift-register data switching
    double clock = 0;         //!< clock distribution into flipflops
    double inputs = 0;        //!< external drivers
    double reset = 0;         //!< returning to idle high (streams only)
    double total = 0;

    /** Fraction of total burned in the delay elements (data + clock) —
     *  the paper's flagged overhead. */
    double delayFraction() const;
};

/** Weight a simulation's transition counts into an energy estimate. */
EnergyReport estimateEnergy(const Circuit &circuit, const SimResult &sim,
                            const EnergyParams &params = {});

/**
 * Energy of one *slice* of a circuit: transition counts accumulated
 * over @p stages flipflop stages' worth of hardware. This is the
 * per-partition form the chip-scale report (parallel_sim.hpp) uses —
 * each partition charges the clock tree only for the flipflops it
 * owns, and because every term is linear in its count, the partition
 * reports sum exactly to estimateEnergy() of the whole circuit.
 */
EnergyReport estimatePartEnergy(uint64_t stages, const SimResult &counts,
                                const EnergyParams &params = {});

/**
 * Energy of a whole computation stream including the per-computation
 * reset phases (the cost the paper's Sec. VI parenthetical flags).
 */
EnergyReport estimateStreamEnergy(const Circuit &circuit,
                                  const StreamResult &stream,
                                  const EnergyParams &params = {});

} // namespace st::grl

#endif // ST_GRL_ENERGY_HPP
