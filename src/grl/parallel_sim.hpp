/**
 * @file
 * Conservative time-window parallel GRL event simulation (chip scale).
 *
 * The paper's endgame is neocortex-scale hardware: Fig. 12-16 columns
 * replicated into cortical sheets with millions of GRL gates. GRL is
 * unusually friendly to *conservative* parallel discrete-event
 * simulation (Chandy-Misra-Bryant without null messages): every
 * cross-partition edge is a clocked shift register with a strictly
 * positive, statically known stage count, so the minimum cut delay is
 * a guaranteed lookahead — partitions may advance a full lookahead
 * window past the global minimum pending time with zero possibility of
 * a straggler event arriving in that window, hence zero rollback.
 *
 * Structure:
 *
 *  - Partitioning. Gates joined by zero-delay edges (anything except a
 *    fanin into a Delay gate with stages >= 1) may interact within one
 *    time step, so the unit of placement is a zero-delay component
 *    (Circuit::components(), cached beside fanout()). Components are
 *    assigned to partitions contiguously in component-id order,
 *    balanced by gate count — deterministic, so every run with the
 *    same (circuit, partitions) sees the same placement.
 *
 *  - Window loop. Each partition owns a private calendar-queue agenda
 *    (the serial engine's agenda restricted to its wires). Each
 *    iteration picks tmin = the earliest pending time across all
 *    agendas, and every partition drains its agenda through the
 *    window [tmin, tmin + lookahead) in one ThreadPool::parallelFor
 *    barrier. Events produced for another partition (always a Delay
 *    gate: cut edges cross a shift register) are appended to a
 *    per-(src, dst) outbox and spliced into the destination agenda at
 *    the next barrier — they provably land at or past the next window
 *    start, so no partition ever receives an event in its past.
 *
 *  - Determinism. Within a window a partition replays exactly the
 *    serial engine's loop: same agenda, same ascending-wire-id ready
 *    scan (the documented LT tie order), same fault hooks (pure
 *    counter-based draws). Boundary events carry absolute times and
 *    calendar queues order by (time, wire id) regardless of insertion
 *    order, so the merged schedule is bit-identical to the serial one
 *    — the whole SimResult, counters included, matches bit for bit.
 *
 * When the circuit cannot be cut safely (lookahead < 1 — e.g. heavy
 * fault-injected delay jitter eats the cut margin — or only one
 * partition is possible) the engine falls back to serial
 * simulateEvents() and ticks the grl.par.fallback counter.
 */

#ifndef ST_GRL_PARALLEL_SIM_HPP
#define ST_GRL_PARALLEL_SIM_HPP

#include <cstdint>
#include <vector>

#include "grl/energy.hpp"
#include "grl/logic_sim.hpp"

namespace st::grl {

/** Tuning knobs for simulateEventsParallel(). */
struct ParallelSimOptions
{
    /** Partition count; 0 = one per thread. Clamped to the number of
     *  zero-delay components (a partition must own whole components). */
    size_t partitions = 0;

    /** Worker-lane cap for the window barriers; 0 = the process
     *  default (ThreadPool::defaultThreads()). */
    size_t threads = 0;
};

/**
 * Per-partition accounting: the share of the netlist a partition owns
 * plus its slice of every SimResult counter. The slices sum *exactly*
 * to the serial engine's totals (each counter is attributed to the
 * gate that caused it, and every gate has exactly one owner) — that
 * identity is what makes the per-partition chip energy report honest.
 */
struct PartitionStats
{
    uint64_t gates = 0;         //!< gates owned
    uint64_t stages = 0;        //!< flipflop stages owned
    uint64_t eventsPopped = 0;  //!< agenda pops executed
    uint64_t eventsFired = 0;   //!< falls committed
    uint64_t boundarySent = 0;  //!< events exported to other partitions

    /** This partition's slice of the SimResult counters (vectors and
     *  cyclesSimulated are global; cyclesSimulated is replicated so
     *  the slice is self-contained for estimatePartEnergy()). */
    SimResult counts;
};

/** What one parallel run did (filled when a report sink is passed). */
struct ParallelSimReport
{
    size_t partitions = 0;       //!< partitions actually used
    size_t threads = 0;          //!< worker-lane cap in effect
    Time::rep lookahead = 0;     //!< conservative window width
    uint64_t windows = 0;        //!< barrier iterations executed
    uint64_t boundaryEvents = 0; //!< cross-partition events exchanged
    bool fellBack = false;       //!< true = serial engine ran instead
    std::vector<PartitionStats> perPartition;
};

/**
 * Parallel equivalent of simulateEvents(): same inputs, same horizon
 * convention (0 = safeHorizon), bit-identical SimResult — fall times,
 * LT tie resolution, and every transition counter — at any partition
 * and thread count, with or without an active FaultInjector.
 *
 * @param report  Optional sink for partition/window statistics.
 */
SimResult simulateEventsParallel(const Circuit &circuit,
                                 std::span<const Time> inputs,
                                 Time::rep horizon = 0,
                                 const ParallelSimOptions &opts = {},
                                 ParallelSimReport *report = nullptr);

/** Chip-scale energy: per-partition breakdowns plus their sum. */
struct ChipEnergyReport
{
    std::vector<EnergyReport> perPartition;
    EnergyReport total;
};

/**
 * Weight a parallel run's per-partition transition counts into a
 * chip-scale energy report: each partition is charged for its own
 * switching plus the clock tree of the flipflops it owns, and the
 * totals equal estimateEnergy() of the whole circuit on the same run
 * (every term is linear in a counter that sums exactly).
 */
ChipEnergyReport chipEnergy(const ParallelSimReport &report,
                            const EnergyParams &params = {});

} // namespace st::grl

#endif // ST_GRL_PARALLEL_SIM_HPP
