#include "grl/parallel_sim.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "grl/calendar_queue.hpp"
#include "grl/event_sim.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace st::grl {

namespace {

using detail::CalendarQueue;

/** One cross-partition event: @p consumer (always a Delay gate — cut
 *  edges cross a shift register) becomes examinable at absolute time
 *  @p at. Produced during a window, spliced into the destination
 *  agenda at the next barrier. */
struct BoundaryEvent
{
    Time::rep at;
    WireId consumer;
};

/** Mutable per-partition state for one run. */
struct Partition
{
    CalendarQueue agenda;
    uint64_t gates = 0;
    uint64_t stages = 0;
    uint64_t inEdges = 0; //!< fanin edges into owned gates
    uint64_t popped = 0;
    uint64_t fired = 0;
    uint64_t boundarySent = 0;
    Time::rep prevNow = 0;
    ST_OBS_ONLY(uint64_t busyNs = 0;)

    explicit Partition(CalendarQueue q)
        : agenda(std::move(q))
    {
    }
};

/** Saturating absolute time: inf + anything stays inf. */
Time::rep
satAdd(Time::rep base, Time::rep offset)
{
    const Time t = Time(base) + offset;
    return t.isInf() ? CalendarQueue::kInfRep : t.value();
}

/** Serial escape hatch: tick the fallback counter, run the oracle,
 *  and report the whole circuit as one partition. */
SimResult
runFallback(const Circuit &circuit, std::span<const Time> inputs,
            Time::rep horizon, size_t threads, Time::rep lookahead,
            ParallelSimReport *report)
{
    ST_OBS_ADD("grl.par.fallback", 1);
    SimResult result = simulateEvents(circuit, inputs, horizon);
    if (report != nullptr) {
        report->partitions = 1;
        report->threads = threads;
        report->lookahead = lookahead;
        report->windows = 0;
        report->boundaryEvents = 0;
        report->fellBack = true;
        report->perPartition.assign(1, PartitionStats{});
        PartitionStats &ps = report->perPartition[0];
        ps.gates = circuit.size();
        ps.stages = circuit.totalStages();
        ps.eventsFired = result.fallenLines; // one fire per fallen wire
        ps.counts.gateTransitions = result.gateTransitions;
        ps.counts.ltOutputTransitions = result.ltOutputTransitions;
        ps.counts.ltLatchTransitions = result.ltLatchTransitions;
        ps.counts.flopDataTransitions = result.flopDataTransitions;
        ps.counts.inputTransitions = result.inputTransitions;
        ps.counts.cyclesSimulated = result.cyclesSimulated;
        ps.counts.fallenLines = result.fallenLines;
        ps.counts.flopZeroBits = result.flopZeroBits;
        ps.counts.latchesCaptured = result.latchesCaptured;
    }
    return result;
}

} // namespace

SimResult
simulateEventsParallel(const Circuit &circuit,
                       std::span<const Time> inputs, Time::rep horizon,
                       const ParallelSimOptions &opts,
                       ParallelSimReport *report)
{
    if (inputs.size() != circuit.numInputs())
        throw std::invalid_argument(
            "grl::simulateEventsParallel: input count mismatch");
    if (horizon == 0)
        horizon = safeHorizon(circuit, inputs);
    ST_TRACE_SPAN("grl.parallel_sim");

    const auto &gates = circuit.gates();
    const size_t n = gates.size();
    const CircuitFanout &fanout = circuit.fanout();
    const CircuitComponents &comps = circuit.components();

    const size_t threads =
        opts.threads != 0 ? opts.threads : ThreadPool::defaultThreads();
    size_t num_parts =
        opts.partitions != 0 ? opts.partitions : threads;
    num_parts = std::min<size_t>(num_parts, comps.count());
    num_parts = std::max<size_t>(num_parts, 1);

    if (num_parts <= 1)
        return runFallback(circuit, inputs, horizon, threads, 0, report);

    // Placement: components in id order, split contiguously so each
    // partition's cumulative gate count tracks n / num_parts. A pure
    // function of (circuit, num_parts) — no scheduling dependence.
    std::vector<uint32_t> partOfComp(comps.count());
    {
        uint64_t before = 0;
        for (uint32_t c = 0; c < comps.count(); ++c) {
            partOfComp[c] = static_cast<uint32_t>(std::min<uint64_t>(
                num_parts - 1, before * num_parts / n));
            before += comps.sizeOf[c];
        }
    }
    std::vector<uint32_t> partOf(n);
    for (size_t g = 0; g < n; ++g)
        partOf[g] = partOfComp[comps.componentOf[g]];

    // Conservative lookahead = the minimum cut-edge delay. Every cut
    // edge feeds a Delay gate with stages >= 1 (zero-delay edges never
    // leave a component), and an active injector may shave up to
    // gateDelayJitter stages off any of them — derate for that without
    // calling perturbGateDelay() here, which would tick the injection
    // counters for edges that might never fire.
    const fault::FaultInjector *inj = fault::activeInjector();
    const Time::rep jitter =
        inj != nullptr ? inj->spec().gateDelayJitter : 0;
    Time::rep min_cut = CalendarQueue::kInfRep;
    for (size_t g = 0; g < n; ++g) {
        const Gate &gate = gates[g];
        if (gate.kind != GateKind::Delay || gate.stages < 1)
            continue;
        if (partOf[gate.fanin[0]] != partOf[g])
            min_cut = std::min<Time::rep>(min_cut, gate.stages);
    }
    const Time::rep lookahead =
        min_cut == CalendarQueue::kInfRep
            ? CalendarQueue::kInfRep
            : (min_cut > jitter ? min_cut - jitter : 0);
    if (lookahead < 1) {
        return runFallback(circuit, inputs, horizon, threads, lookahead,
                           report);
    }

    // Per-partition agendas seeded with the owned external falls.
    const size_t P = num_parts;
    std::vector<std::vector<std::pair<Time::rep, WireId>>> external(P);
    std::vector<Partition> parts;
    parts.reserve(P);
    for (size_t g = 0; g < n; ++g) {
        const Gate &gate = gates[g];
        if (gate.kind == GateKind::Input && inputs[g].isFinite()) {
            external[partOf[g]].emplace_back(inputs[g].value(),
                                             static_cast<WireId>(g));
        } else if (gate.kind == GateKind::Const &&
                   gate.constTime.isFinite()) {
            external[partOf[g]].emplace_back(gate.constTime.value(),
                                             static_cast<WireId>(g));
        }
    }
    for (size_t p = 0; p < P; ++p) {
        parts.emplace_back(CalendarQueue(fanout.maxDelayStages, n,
                                         std::move(external[p])));
    }
    for (size_t g = 0; g < n; ++g) {
        Partition &part = parts[partOf[g]];
        ++part.gates;
        part.inEdges += gates[g].fanin.size();
        if (gates[g].kind == GateKind::Delay)
            part.stages += gates[g].stages;
    }

    // Shared fall state, written disjointly: partition p only touches
    // fall[g] / fallenIns[g] for gates it owns (cross-partition
    // consumers are Delay gates whose fallenIns is never read, so the
    // producer skips the increment entirely). Window barriers order
    // the assembly reads after every write.
    std::vector<Time> fall(n, INF);
    std::vector<uint32_t> fallenIns(n, 0);

    const fault::FaultInjector *delay_inj =
        inj != nullptr && inj->spec().gateDelayJitter > 0 ? inj
                                                          : nullptr;
    const bool stuck_on = inj != nullptr && inj->spec().stuckProb > 0;
    obs::Counter *stuck_counter =
        stuck_on ? &obs::MetricsRegistry::instance().counter(
                       "fault.injected.stuck")
                 : nullptr;
    const bool guard_order =
        fault::guardActive(fault::kGuardAgendaOrder);

    // Same cycle backstop as the serial engine, per partition: every
    // owned wire is examined at most once per incoming edge (boundary
    // events arrive on incoming edges) plus once per external seed.
    std::vector<uint64_t> popBudget(P);
    for (size_t p = 0; p < P; ++p)
        popBudget[p] = 4 * (parts[p].gates + parts[p].inEdges) + 64;

    // outbox[src][dst]: events produced by src for dst this window.
    std::vector<std::vector<std::vector<BoundaryEvent>>> outbox(
        P, std::vector<std::vector<BoundaryEvent>>(P));

    auto runWindow = [&](size_t p, Time::rep wend) {
        Partition &part = parts[p];
        CalendarQueue &agenda = part.agenda;
        auto fallen = [&](WireId g) { return fall[g].isFinite(); };

        while (agenda.pending() && agenda.nextTime() < wend) {
            const Time now = Time(agenda.advance());
            if (guard_order && now.isFinite() &&
                now.value() < part.prevNow) {
                fault::reportViolation(
                    "agenda_order", "grl.agenda",
                    "advance moved time backwards: " +
                        std::to_string(part.prevNow) + " -> " +
                        now.str());
            }
            if (now.isFinite())
                part.prevNow = now.value();

            while (agenda.readyPending()) {
                WireId id = agenda.popReady();
                if (++part.popped > popBudget[p]) {
                    throw StatusError(Status(
                        StatusCode::ResourceExhausted,
                        "event budget exceeded (" +
                            std::to_string(popBudget[p]) +
                            " pops) — zero-delay cycle in partition " +
                            std::to_string(p),
                        "wire " + std::to_string(id)));
                }
                if (fallen(id))
                    continue;
                if (stuck_on && inj->stuckAtInf(id)) {
                    stuck_counter->add(1);
                    continue;
                }

                const Gate &gate = gates[id];
                bool falls = false;
                switch (gate.kind) {
                  case GateKind::Input:
                    falls = inputs[id] == now;
                    break;
                  case GateKind::Const:
                    falls = gate.constTime == now;
                    break;
                  case GateKind::And:
                    for (WireId src : gate.fanin)
                        falls |= fall[src] == now;
                    break;
                  case GateKind::Or:
                    falls = fallenIns[id] == gate.fanin.size();
                    break;
                  case GateKind::LtCell: {
                    WireId a = gate.fanin[0], b = gate.fanin[1];
                    falls =
                        fall[a] == now && !(fallen(b) && fall[b] <= now);
                    break;
                  }
                  case GateKind::Delay:
                    falls = true;
                    break;
                }
                if (!falls)
                    continue;

                ++part.fired;
                fall[id] = now;
                const auto consumers = fanout.of(id);
                const auto delays = fanout.delaysOf(id);
                for (size_t k = 0; k < consumers.size(); ++k) {
                    const WireId consumer = consumers[k];
                    if (partOf[consumer] == p) {
                        ++fallenIns[consumer];
                        if (!fallen(consumer)) {
                            Time::rep offset = delays[k];
                            if (delay_inj != nullptr && offset > 0) {
                                offset = delay_inj->perturbGateDelay(
                                    offset, consumer);
                            }
                            agenda.schedule(consumer, offset);
                        }
                    } else {
                        // Cut edges feed single-fanin Delay gates:
                        // this edge is the consumer's only fall
                        // source, so it cannot already have fallen,
                        // and its fallenIns is never read — no remote
                        // state to touch.
                        Time::rep offset = delays[k];
                        if (delay_inj != nullptr) {
                            offset = delay_inj->perturbGateDelay(
                                offset, consumer);
                        }
                        outbox[p][partOf[consumer]].push_back(
                            {satAdd(now.value(), offset), consumer});
                        ++part.boundarySent;
                    }
                }
            }
        }
    };

    ThreadPool &pool = ThreadPool::shared();
    uint64_t windows = 0;
    uint64_t boundaryTotal = 0;
    ST_OBS_ONLY(const auto wall_start =
                    std::chrono::steady_clock::now();)
    for (;;) {
        // Barrier splice: boundary events produced last window enter
        // the destination agendas before the next tmin is chosen, so
        // no partition can advance past an event addressed to it.
        for (size_t dst = 0; dst < P; ++dst) {
            for (size_t src = 0; src < P; ++src) {
                for (const BoundaryEvent &ev : outbox[src][dst])
                    parts[dst].agenda.scheduleAt(ev.consumer, ev.at);
                boundaryTotal += outbox[src][dst].size();
                outbox[src][dst].clear();
            }
        }
        Time::rep tmin = CalendarQueue::kInfRep;
        for (size_t p = 0; p < P; ++p)
            tmin = std::min(tmin, parts[p].agenda.nextTime());
        // Events past the horizon provably cannot change the result
        // (their falls are invisible to the assembly below), so the
        // conservative window walk stops here.
        if (tmin == CalendarQueue::kInfRep || tmin > horizon)
            break;
        const Time::rep wend = lookahead == CalendarQueue::kInfRep
                                   ? CalendarQueue::kInfRep
                                   : satAdd(tmin, lookahead);
        ++windows;
        pool.parallelFor(
            0, P, 1,
            [&](size_t p) {
                ST_OBS_ONLY(const auto t0 =
                                std::chrono::steady_clock::now();)
                runWindow(p, wend);
                ST_OBS_ONLY(
                    parts[p].busyNs += static_cast<uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count());)
            },
            threads);
    }

    ST_OBS_ONLY({
        uint64_t popped = 0, fired = 0, busy = 0;
        for (const Partition &part : parts) {
            popped += part.popped;
            fired += part.fired;
            busy += part.busyNs;
        }
        ST_OBS_ADD("grl.events.popped", popped);
        ST_OBS_ADD("grl.events.fired", fired);
        ST_OBS_ADD("grl.par.windows", windows);
        ST_OBS_ADD("grl.par.boundary_events", boundaryTotal);
        ST_OBS_ADD("grl.par.busy_ns", busy);
        ST_OBS_ADD("grl.par.wall_ns",
                   static_cast<uint64_t>(
                       std::chrono::duration_cast<
                           std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() -
                           wall_start)
                           .count()));
        ST_OBS_GAUGE_MAX("grl.par.partitions", P);
    })

    // Assembly: the serial engine's per-gate accounting, attributed to
    // the owning partition and then summed — so the global counters
    // are *defined* as the sum of the per-partition slices.
    SimResult result;
    result.cyclesSimulated = horizon + 1;
    result.fallTime.assign(n, INF);
    std::vector<PartitionStats> stats(P);
    for (size_t p = 0; p < P; ++p) {
        stats[p].gates = parts[p].gates;
        stats[p].stages = parts[p].stages;
        stats[p].eventsPopped = parts[p].popped;
        stats[p].eventsFired = parts[p].fired;
        stats[p].boundarySent = parts[p].boundarySent;
        stats[p].counts.cyclesSimulated = horizon + 1;
    }
    for (size_t g = 0; g < n; ++g) {
        const Gate &gate = gates[g];
        SimResult &slice = stats[partOf[g]].counts;
        bool visible = fall[g].isFinite() && fall[g].value() <= horizon;
        if (visible)
            result.fallTime[g] = fall[g];

        switch (gate.kind) {
          case GateKind::Input:
          case GateKind::Const:
            slice.inputTransitions += visible;
            break;
          case GateKind::And:
          case GateKind::Or:
            slice.gateTransitions += visible;
            break;
          case GateKind::LtCell: {
            slice.ltOutputTransitions += visible;
            Time fa = fall[gate.fanin[0]], fb = fall[gate.fanin[1]];
            bool b_visible = fb.isFinite() && fb.value() <= horizon;
            bool a_first = fa.isFinite() && fa < fb;
            slice.ltLatchTransitions += b_visible && !a_first;
            break;
          }
          case GateKind::Delay: {
            Time fin = fall[gate.fanin[0]];
            if (fin.isFinite() && fin.value() < horizon) {
                Time::rep drained = std::min<Time::rep>(
                    gate.stages, horizon - fin.value());
                slice.flopDataTransitions += drained;
                slice.flopZeroBits += drained;
            }
            break;
          }
        }
        if (visible)
            ++slice.fallenLines;
    }
    for (PartitionStats &ps : stats) {
        ps.counts.latchesCaptured = ps.counts.ltLatchTransitions;
        result.gateTransitions += ps.counts.gateTransitions;
        result.ltOutputTransitions += ps.counts.ltOutputTransitions;
        result.ltLatchTransitions += ps.counts.ltLatchTransitions;
        result.flopDataTransitions += ps.counts.flopDataTransitions;
        result.inputTransitions += ps.counts.inputTransitions;
        result.fallenLines += ps.counts.fallenLines;
        result.flopZeroBits += ps.counts.flopZeroBits;
        result.latchesCaptured += ps.counts.latchesCaptured;
    }

    result.outputs.reserve(circuit.outputs().size());
    for (WireId id : circuit.outputs())
        result.outputs.push_back(result.fallTime[id]);

    if (report != nullptr) {
        report->partitions = P;
        report->threads = threads;
        report->lookahead = lookahead;
        report->windows = windows;
        report->boundaryEvents = boundaryTotal;
        report->fellBack = false;
        report->perPartition = std::move(stats);
    }
    return result;
}

ChipEnergyReport
chipEnergy(const ParallelSimReport &report, const EnergyParams &params)
{
    ChipEnergyReport chip;
    chip.perPartition.reserve(report.perPartition.size());
    for (const PartitionStats &ps : report.perPartition) {
        EnergyReport one =
            estimatePartEnergy(ps.stages, ps.counts, params);
        chip.total.combinational += one.combinational;
        chip.total.ltCells += one.ltCells;
        chip.total.flopData += one.flopData;
        chip.total.clock += one.clock;
        chip.total.inputs += one.inputs;
        chip.total.total += one.total;
        chip.perPartition.push_back(one);
    }
    return chip;
}

} // namespace st::grl
