/**
 * @file
 * Conventional binary (indirect) logic — the baseline for the paper's
 * energy argument (Sec. V.C and VI).
 *
 * An *indirect* implementation encodes times as binary numbers and
 * computes with ordinary Boolean datapaths. To compare switching activity
 * against GRL's one-transition-per-line property, this module provides a
 * small combinational Boolean netlist simulator with per-gate toggle
 * accounting across a stream of input vectors (the standard dynamic-power
 * activity model), plus builders for the binary counterparts of the s-t
 * primitives: an n-bit ripple comparator/mux computing min(a, b) and an
 * n-bit ripple-carry adder computing a + c (the binary inc).
 */

#ifndef ST_GRL_BOOLSIM_HPP
#define ST_GRL_BOOLSIM_HPP

#include <cstdint>
#include <span>
#include <vector>

namespace st::grl {

/** Boolean gate kinds for the baseline netlists. */
enum class BoolOp : uint8_t
{
    Input,
    Const0,
    Const1,
    Not,
    And,
    Or,
    Xor,
};

/** One Boolean gate (binary ops; Not has one fanin). */
struct BoolGate
{
    BoolOp op = BoolOp::Input;
    uint32_t a = 0; //!< first operand gate
    uint32_t b = 0; //!< second operand gate (binary ops)
};

/**
 * A combinational Boolean netlist in topological order.
 */
class BoolCircuit
{
  public:
    explicit BoolCircuit(size_t num_inputs);

    uint32_t input(size_t i) const;
    size_t numInputs() const { return numInputs_; }

    uint32_t constGate(bool value);
    uint32_t notGate(uint32_t a);
    uint32_t andGate(uint32_t a, uint32_t b);
    uint32_t orGate(uint32_t a, uint32_t b);
    uint32_t xorGate(uint32_t a, uint32_t b);

    void markOutput(uint32_t id);
    const std::vector<uint32_t> &outputs() const { return outputs_; }

    const std::vector<BoolGate> &gates() const { return gates_; }
    size_t size() const { return gates_.size(); }

    /** Evaluate all gates for one input vector. */
    std::vector<uint8_t> evaluateAll(std::span<const uint8_t> in) const;

    /** Evaluate and return output bits only. */
    std::vector<uint8_t> evaluate(std::span<const uint8_t> in) const;

  private:
    uint32_t add(BoolGate g);

    std::vector<BoolGate> gates_;
    std::vector<uint32_t> outputs_;
    size_t numInputs_;
};

/**
 * Switching-activity counter: apply a stream of input vectors and count
 * how many gate outputs toggle between consecutive evaluations.
 */
class BoolActivity
{
  public:
    explicit BoolActivity(const BoolCircuit &circuit);

    /** Evaluate one vector; counts toggles vs the previous state. */
    std::vector<uint8_t> apply(std::span<const uint8_t> in);

    /** Total internal gate toggles so far (excludes inputs). */
    uint64_t gateToggles() const { return gateToggles_; }

    /** Total input-line toggles so far. */
    uint64_t inputToggles() const { return inputToggles_; }

    /** Vectors applied so far. */
    uint64_t evaluations() const { return evaluations_; }

  private:
    const BoolCircuit &circuit_;
    std::vector<uint8_t> state_;
    bool hasState_ = false;
    uint64_t gateToggles_ = 0;
    uint64_t inputToggles_ = 0;
    uint64_t evaluations_ = 0;
};

/**
 * n-bit binary min(a, b): ripple comparator (a < b) selecting through a
 * 2:1 mux per bit. Inputs: a[0..n) LSB-first then b[0..n); outputs:
 * min bits LSB-first.
 */
BoolCircuit buildBinaryMin(size_t bits);

/**
 * n-bit ripple-carry adder a + b. Inputs: a bits then b bits (LSB
 * first); outputs: n sum bits then carry-out.
 */
BoolCircuit buildBinaryAdder(size_t bits);

/** Pack an unsigned value into LSB-first bits. */
std::vector<uint8_t> toBits(uint64_t value, size_t bits);

/** Unpack LSB-first bits into an unsigned value. */
uint64_t fromBits(std::span<const uint8_t> bits);

} // namespace st::grl

#endif // ST_GRL_BOOLSIM_HPP
