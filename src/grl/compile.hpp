/**
 * @file
 * Compilation of space-time networks to GRL circuits (paper Sec. V).
 *
 * The translation is the paper's central implementation claim: every s-t
 * primitive has an off-the-shelf CMOS realization (Fig. 16), so any
 * space-time network — hence any TNN — compiles 1:1 into a digital
 * circuit processing edge times instead of logic values:
 *
 * (in the falling-edge domain the first fall pulls an AND low and an OR
 * waits for the last fall):
 *
 *     min -> AND gate         max -> OR gate
 *     lt  -> latched LT cell  inc(c) -> c-stage shift register
 *     config -> externally driven constant line
 *
 * The equivalence (network evaluation == circuit simulation) is the
 * subject of tests/grl_compile_test.cpp's property sweeps.
 */

#ifndef ST_GRL_COMPILE_HPP
#define ST_GRL_COMPILE_HPP

#include <vector>

#include "core/network.hpp"
#include "grl/netlist.hpp"

namespace st::grl {

/** A compiled circuit plus the node -> wire correspondence. */
struct CompileResult
{
    Circuit circuit;
    /** wireOf[node] = the circuit wire carrying that node's value. */
    std::vector<WireId> wireOf;
};

/**
 * Compile a network into a GRL circuit.
 *
 * Config node values are snapshotted as constant lines; recompile after
 * reprogramming micro-weights (or drive them as inputs instead).
 */
CompileResult compileToGrl(const Network &net);

} // namespace st::grl

#endif // ST_GRL_COMPILE_HPP
