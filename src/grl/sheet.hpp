/**
 * @file
 * Cortical-sheet netlist generator: the paper's Fig. 12-16 column
 * (a bank of SRM0 neurons compiled to GRL plus a WTA inhibition
 * stage), replicated rows x cols with configurable inter-column delay
 * wiring. This is the chip-scale workload for the conservative
 * parallel event engine (parallel_sim.hpp): the paper argues the
 * neocortex is exactly such a replicated-column fabric, and a few
 * hundred columns put the netlist into the multi-100k-gate regime the
 * engine exists for.
 *
 * Wiring (all per-line, width = neurons):
 *
 *   - Column (r, 0) is fed by the sheet's primary inputs for row r.
 *   - Column (r, c > 0) is fed by column (r, c-1)'s WTA outputs
 *     through interDelay-stage shift registers.
 *   - With vertDelay > 0, column (r > 0, c) additionally receives
 *     column (r-1, c)'s outputs through vertDelay-stage registers,
 *     merged per line with an AND gate (min — earliest spike wins).
 *
 * Partitioning guarantee: every neuron's first synapse response has a
 * unit step at t = 0, which compiles to a zero-stage inc — a plain
 * wire — so each column's incoming link registers are zero-delay-
 * connected into the column body. Each column is therefore exactly
 * one zero-delay component (components().count() == rows * cols), and
 * every cross-column edge crosses a link register: the parallel
 * engine's lookahead is min(interDelay, vertDelay) by construction.
 */

#ifndef ST_GRL_SHEET_HPP
#define ST_GRL_SHEET_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "grl/netlist.hpp"

namespace st::grl {

/** Shape and wiring of a cortical sheet. */
struct SheetParams
{
    size_t rows = 2;     //!< column rows (independent unless vertDelay)
    size_t cols = 2;     //!< columns per row, chained left to right
    size_t neurons = 4;  //!< SRM0 neurons (= lines) per column
    size_t synapses = 3; //!< synapse taps per neuron (<= neurons)
    int32_t threshold = 4;   //!< SRM0 firing threshold theta
    Time::rep tau = 2;       //!< WTA uninhibited window width
    uint32_t interDelay = 4; //!< stages on each row-wise column link
    uint32_t vertDelay = 0;  //!< stages on column-to-column-below
                             //!< links; 0 = rows fully independent
    uint64_t seed = 1;       //!< synapse-weight draw seed
};

/** A generated sheet: the netlist plus its line bookkeeping. */
struct Sheet
{
    Circuit circuit;
    SheetParams params;

    /** WTA output wires, column-major within a column: entry
     *  (r * cols + c) * neurons + i is line i of column (r, c). */
    std::vector<WireId> columnOutputs;

    /** Output lines of column (r, c). */
    std::span<const WireId>
    column(size_t r, size_t c) const
    {
        return {columnOutputs.data() +
                    (r * params.cols + c) * params.neurons,
                params.neurons};
    }
};

/**
 * Build the sheet. The circuit has rows * neurons primary inputs
 * (row-major) and marks every line of each row's last column as an
 * output. Throws std::invalid_argument on degenerate parameters
 * (zero dimensions, synapses > neurons, interDelay < 1).
 */
Sheet buildCorticalSheet(const SheetParams &params = {});

/**
 * A deterministic pseudo-random input volley for a sheet: one time
 * per primary input, mostly finite in [0, 8), occasionally inf —
 * the shape the differential tests and the bench feed the engines.
 */
std::vector<Time> sheetInputVolley(const Sheet &sheet, uint64_t salt);

} // namespace st::grl

#endif // ST_GRL_SHEET_HPP
