#include "grl/compile.hpp"

#include <limits>
#include <stdexcept>

namespace st::grl {

CompileResult
compileToGrl(const Network &net)
{
    CompileResult result{Circuit(net.numInputs()), {}};
    Circuit &circuit = result.circuit;
    std::vector<WireId> &wire = result.wireOf;
    wire.resize(net.size());

    const auto &nodes = net.nodes();
    for (size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        switch (n.op) {
          case Op::Input:
            wire[i] = static_cast<WireId>(i);
            break;
          case Op::Config:
            wire[i] = circuit.constant(n.configValue);
            break;
          case Op::Inc: {
            if (n.delay > std::numeric_limits<uint32_t>::max()) {
                throw std::invalid_argument("compileToGrl: inc constant "
                                            "too large for a shift "
                                            "register");
            }
            wire[i] = circuit.delay(wire[n.fanin[0]],
                                    static_cast<uint32_t>(n.delay));
            break;
          }
          case Op::Min: {
            // Falling-edge domain: AND drops at the FIRST input fall.
            std::vector<WireId> ins;
            ins.reserve(n.fanin.size());
            for (NodeId src : n.fanin)
                ins.push_back(wire[src]);
            wire[i] = circuit.andGate(ins);
            break;
          }
          case Op::Max: {
            // OR stays high until the LAST input falls.
            std::vector<WireId> ins;
            ins.reserve(n.fanin.size());
            for (NodeId src : n.fanin)
                ins.push_back(wire[src]);
            wire[i] = circuit.orGate(ins);
            break;
          }
          case Op::Lt:
            wire[i] = circuit.ltCell(wire[n.fanin[0]], wire[n.fanin[1]]);
            break;
        }
    }

    for (NodeId id : net.outputs())
        circuit.markOutput(wire[id]);
    // The emission above goes through the checked builders, but a
    // compiler bug would otherwise surface as an engine hang or a
    // corrupt fanout walk — validate here so it surfaces as a
    // diagnostic at compile time instead.
    if (Status status = circuit.validate(); !status.isOk())
        throw StatusError(std::move(status));
    return result;
}

} // namespace st::grl
