/**
 * @file
 * Event-driven GRL simulation.
 *
 * A second, independent execution engine for race-logic circuits: where
 * logic_sim.hpp advances a global clock and settles every gate every
 * cycle (O(horizon x gates)), this engine propagates fall events in
 * time order (O(events log events)) — the natural choice for large or
 * long-running circuits whose activity is sparse, which is precisely
 * the regime the paper's energy argument targets.
 *
 * The agenda is an indexed calendar queue: a bitmap over wire ids for
 * the current time step (drained by an ascending bit scan — exactly
 * the clocked engine's topological settle order, which is what
 * resolves LT ties, with same-fall duplicates deduped for free), a
 * power-of-two ring of time buckets sized by the circuit's largest
 * delay line for near-future events, and a binary-heap overflow lane
 * for anything beyond the ring window. Fanout adjacency (and each
 * edge's schedule offset) comes from Circuit::fanout(), built once per
 * circuit rather than per call.
 *
 * The two engines implement the same semantics and must produce
 * identical SimResults (fall times AND transition counters); the test
 * suite sweeps that equivalence, giving the GRL domain the same
 * two-engine cross-check the algebra has (evaluate vs TraceSimulator).
 */

#ifndef ST_GRL_EVENT_SIM_HPP
#define ST_GRL_EVENT_SIM_HPP

#include "grl/logic_sim.hpp"

namespace st::grl {

/**
 * Event-driven equivalent of simulate(): same inputs, same horizon
 * convention (0 = safeHorizon), same result structure.
 */
SimResult simulateEvents(const Circuit &circuit,
                         std::span<const Time> inputs,
                         Time::rep horizon = 0);

} // namespace st::grl

#endif // ST_GRL_EVENT_SIM_HPP
