/**
 * @file
 * Generalized Race Logic netlists (paper Sec. V, Fig. 16).
 *
 * GRL implements the s-t algebra with off-the-shelf CMOS digital
 * primitives. Information is encoded in the times of 1 -> 0 transitions
 * (all lines idle high; "no event" = the line never falls). The gate
 * library mirrors Fig. 16:
 *
 *   - AND gate: output falls at the FIRST input fall   -> min
 *   - OR  gate: output falls at the LAST input fall    -> max
 *   - LT cell:  OR(a, NOT b) with a latch that pins the output low once
 *               it falls (so b falling after a cannot raise it again,
 *               and b falling at-or-before a keeps it high forever);
 *               reset high before each computation      -> lt
 *   - DELAY:    a clocked shift register of c stages    -> inc(c)
 *   - CONST:    an externally driven line falling at a fixed time
 *               (never, for inf) — used for compiled config nodes
 *
 * A Circuit is a feedforward netlist in topological order, produced
 * either by hand or by compiling a core::Network (compile.hpp).
 */

#ifndef ST_GRL_NETLIST_HPP
#define ST_GRL_NETLIST_HPP

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/time.hpp"
#include "fault/status.hpp"

namespace st::grl {

/** CMOS primitive kinds available in a GRL netlist. */
enum class GateKind : uint8_t
{
    Input, //!< primary input line (fall time supplied per run)
    Const, //!< fixed-time line (config constants; inf = never falls)
    And,   //!< n-ary AND: first fall wins (min)
    Or,    //!< n-ary OR: last fall wins (max)
    LtCell, //!< latched a-before-b pass gate (fanin = [a, b])
    Delay, //!< clocked shift register of `stages` flipflops
};

/** Printable gate-kind name. */
const char *gateKindName(GateKind kind);

/** One gate instance. */
struct Gate
{
    GateKind kind = GateKind::Input;
    std::vector<uint32_t> fanin; //!< driver gate indices
    uint32_t stages = 0;         //!< Delay only: flipflop count
    Time constTime = INF;        //!< Const only: externally driven fall
};

/** Wire identifier (= driving gate index). */
using WireId = uint32_t;

/**
 * Fanout adjacency of a circuit in CSR form: the consumers of wire w
 * are consumer[offset[w] .. offset[w + 1]). Built once per circuit and
 * shared by every simulation engine, instead of reconstructing a
 * vector-of-vectors on each simulateEvents() call.
 */
struct CircuitFanout
{
    std::vector<uint32_t> offset; //!< size() + 1 entries
    std::vector<WireId> consumer; //!< one entry per fanin edge
    /** Schedule offset per fanin edge, parallel to consumer: the
     *  consumer's stage count for Delay gates, 0 otherwise. Lets the
     *  event engine's fanout walk schedule without touching the Gate
     *  table. */
    std::vector<uint32_t> consumerDelay;
    /** Largest Delay-gate stage count (sizes the event-engine ring). */
    uint32_t maxDelayStages = 0;

    /** Consumers of wire @p w. */
    std::span<const WireId>
    of(WireId w) const
    {
        return {consumer.data() + offset[w],
                consumer.data() + offset[w + 1]};
    }

    /** Schedule offsets of wire @p w's consumers, parallel to of(). */
    std::span<const uint32_t>
    delaysOf(WireId w) const
    {
        return {consumerDelay.data() + offset[w],
                consumerDelay.data() + offset[w + 1]};
    }
};

/**
 * Zero-delay connectivity of a circuit: gates joined by any edge whose
 * schedule offset is 0 (every fanin edge except those into Delay gates
 * with stages >= 1) share a component. Components are the atomic units
 * of the conservative parallel event simulator (parallel_sim.hpp) —
 * two gates in one component may interact within a single time step,
 * so a partition must own whole components; edges *between* components
 * always cross at least one flipflop stage, which is the strictly
 * positive lookahead that lets partitions advance a full delay window
 * without rollback. Built once per circuit (BFS over the fanout CSR)
 * and cached beside fanout(); component ids are assigned in order of
 * each component's lowest gate id, so the labeling is deterministic.
 */
struct CircuitComponents
{
    /** Component id per gate (dense, 0-based). */
    std::vector<uint32_t> componentOf;
    /** Gate count per component, indexed by component id. */
    std::vector<uint32_t> sizeOf;

    /** Number of zero-delay components. */
    uint32_t count() const { return static_cast<uint32_t>(sizeOf.size()); }
};

/**
 * A feedforward GRL netlist.
 *
 * Gates may only reference lower-numbered gates, so gate order is a
 * topological order (enforced by the builder methods).
 *
 * Thread safety: const simulation paths (including fanout()) may run
 * concurrently — the fanout cache publishes via compare-exchange.
 * Mutation (the builder methods, assignment) is single-writer and
 * must not overlap other calls on the same Circuit.
 */
class Circuit
{
  public:
    /** Create a circuit with @p num_inputs primary input lines. */
    explicit Circuit(size_t num_inputs);

    /** Copies rebuild the fanout cache lazily; it is never shared. */
    Circuit(const Circuit &other);
    Circuit &operator=(const Circuit &other);
    Circuit(Circuit &&other) noexcept;
    Circuit &operator=(Circuit &&other) noexcept;
    ~Circuit();

    /** Wire of primary input @p i. */
    WireId input(size_t i) const;

    /** Number of primary inputs. */
    size_t numInputs() const { return numInputs_; }

    /** Add a constant line falling at @p t (inf = never). */
    WireId constant(Time t);

    /** Add an n-ary AND gate (>= 1 inputs). */
    WireId andGate(std::span<const WireId> ins);

    /** Binary AND convenience. */
    WireId andGate(WireId a, WireId b);

    /** Add an n-ary OR gate (>= 1 inputs). */
    WireId orGate(std::span<const WireId> ins);

    /** Binary OR convenience. */
    WireId orGate(WireId a, WireId b);

    /** Add an LT cell: passes a's fall iff strictly before b's. */
    WireId ltCell(WireId a, WireId b);

    /** Add a shift-register delay of @p stages cycles. */
    WireId delay(WireId src, uint32_t stages);

    /**
     * Append a gate with NO builder checks — the escape hatch for
     * deserializers and tests constructing possibly-malformed netlists.
     * validate() reports everything the checked builders would have
     * rejected, and the simulation engines run it (via fanout())
     * before touching the gate table, so a malformed circuit surfaces
     * as a StatusError diagnostic instead of undefined behavior.
     */
    WireId addGateUnchecked(Gate gate);

    /**
     * Structural validation: fanin ids in range, Input gates confined
     * to the primary-input prefix, per-kind arities (Delay 1, LtCell 2,
     * And/Or >= 1, Input/Const 0), and no zero-delay combinational
     * cycle or forward reference — every feedback path must pass
     * through a Delay gate with stages >= 1, and zero-delay fanin must
     * come from lower-numbered gates (the settle-order invariant the
     * event engine's ready scan relies on).
     *
     * @return The first problem found, or Status::ok(). Circuits built
     *         exclusively through the checked builders always pass.
     */
    Status validate() const;

    /** Declare an output wire (ordered). */
    void markOutput(WireId id);

    /** Ordered output wires. */
    const std::vector<WireId> &outputs() const { return outputs_; }

    /** All gates in topological order. */
    const std::vector<Gate> &gates() const { return gates_; }

    /** Total gate count. */
    size_t size() const { return gates_.size(); }

    /** Count gates of one kind. */
    size_t countOf(GateKind kind) const;

    /** Total flipflop stages across all Delay gates. */
    uint64_t totalStages() const;

    /**
     * The circuit's fanout adjacency, built on first use and cached
     * (builder calls invalidate it). Safe under concurrent readers.
     * The build runs validate() first and throws StatusError on a
     * malformed circuit — valid circuits pay the scan once, and the
     * engines downstream never see a corrupt gate table.
     */
    const CircuitFanout &fanout() const;

    /**
     * The circuit's zero-delay component labeling, built on first use
     * from the fanout CSR and cached exactly like fanout() (builder
     * calls invalidate it; concurrent readers race safely via
     * compare-exchange). Throws StatusError on a malformed circuit,
     * through the fanout() validation gate.
     */
    const CircuitComponents &components() const;

  private:
    WireId add(Gate gate);
    void checkId(WireId id) const;
    void invalidateFanout();

    std::vector<Gate> gates_;
    std::vector<WireId> outputs_;
    size_t numInputs_;

    /** Lazily built fanout CSR, published with a compare-exchange. */
    mutable std::atomic<const CircuitFanout *> fanout_{nullptr};
    /** Lazily built zero-delay components, published the same way. */
    mutable std::atomic<const CircuitComponents *> components_{nullptr};
};

} // namespace st::grl

#endif // ST_GRL_NETLIST_HPP
