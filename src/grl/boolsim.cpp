#include "grl/boolsim.hpp"

#include <stdexcept>

namespace st::grl {

BoolCircuit::BoolCircuit(size_t num_inputs)
    : numInputs_(num_inputs)
{
    gates_.reserve(num_inputs);
    for (size_t i = 0; i < num_inputs; ++i)
        gates_.push_back(BoolGate{BoolOp::Input, 0, 0});
}

uint32_t
BoolCircuit::input(size_t i) const
{
    if (i >= numInputs_)
        throw std::out_of_range("BoolCircuit: no such input");
    return static_cast<uint32_t>(i);
}

uint32_t
BoolCircuit::add(BoolGate g)
{
    if (g.op != BoolOp::Input && g.op != BoolOp::Const0 &&
        g.op != BoolOp::Const1) {
        if (g.a >= gates_.size() ||
            (g.op != BoolOp::Not && g.b >= gates_.size())) {
            throw std::out_of_range("BoolCircuit: bad operand");
        }
    }
    gates_.push_back(g);
    return static_cast<uint32_t>(gates_.size() - 1);
}

uint32_t
BoolCircuit::constGate(bool value)
{
    return add({value ? BoolOp::Const1 : BoolOp::Const0, 0, 0});
}

uint32_t
BoolCircuit::notGate(uint32_t a)
{
    return add({BoolOp::Not, a, 0});
}

uint32_t
BoolCircuit::andGate(uint32_t a, uint32_t b)
{
    return add({BoolOp::And, a, b});
}

uint32_t
BoolCircuit::orGate(uint32_t a, uint32_t b)
{
    return add({BoolOp::Or, a, b});
}

uint32_t
BoolCircuit::xorGate(uint32_t a, uint32_t b)
{
    return add({BoolOp::Xor, a, b});
}

void
BoolCircuit::markOutput(uint32_t id)
{
    if (id >= gates_.size())
        throw std::out_of_range("BoolCircuit: bad output");
    outputs_.push_back(id);
}

std::vector<uint8_t>
BoolCircuit::evaluateAll(std::span<const uint8_t> in) const
{
    if (in.size() != numInputs_)
        throw std::invalid_argument("BoolCircuit: input arity mismatch");
    std::vector<uint8_t> value(gates_.size());
    for (size_t i = 0; i < gates_.size(); ++i) {
        const BoolGate &g = gates_[i];
        switch (g.op) {
          case BoolOp::Input:
            value[i] = in[i] ? 1 : 0;
            break;
          case BoolOp::Const0:
            value[i] = 0;
            break;
          case BoolOp::Const1:
            value[i] = 1;
            break;
          case BoolOp::Not:
            value[i] = value[g.a] ^ 1;
            break;
          case BoolOp::And:
            value[i] = value[g.a] & value[g.b];
            break;
          case BoolOp::Or:
            value[i] = value[g.a] | value[g.b];
            break;
          case BoolOp::Xor:
            value[i] = value[g.a] ^ value[g.b];
            break;
        }
    }
    return value;
}

std::vector<uint8_t>
BoolCircuit::evaluate(std::span<const uint8_t> in) const
{
    std::vector<uint8_t> value = evaluateAll(in);
    std::vector<uint8_t> out;
    out.reserve(outputs_.size());
    for (uint32_t id : outputs_)
        out.push_back(value[id]);
    return out;
}

BoolActivity::BoolActivity(const BoolCircuit &circuit)
    : circuit_(circuit)
{
}

std::vector<uint8_t>
BoolActivity::apply(std::span<const uint8_t> in)
{
    std::vector<uint8_t> value = circuit_.evaluateAll(in);
    if (hasState_) {
        const auto &gates = circuit_.gates();
        for (size_t i = 0; i < value.size(); ++i) {
            if (value[i] != state_[i]) {
                if (gates[i].op == BoolOp::Input)
                    ++inputToggles_;
                else
                    ++gateToggles_;
            }
        }
    }
    state_ = std::move(value);
    hasState_ = true;
    ++evaluations_;

    std::vector<uint8_t> out;
    out.reserve(circuit_.outputs().size());
    for (uint32_t id : circuit_.outputs())
        out.push_back(state_[id]);
    return out;
}

BoolCircuit
buildBinaryMin(size_t bits)
{
    if (bits == 0)
        throw std::invalid_argument("buildBinaryMin: bits >= 1");
    BoolCircuit c(2 * bits);
    // a < b, rippling from LSB to MSB:
    //   lt_i = (!a_i & b_i ... note: a<b needs b_i & !a_i at higher bit)
    // Standard recurrence (LSB-up): lt = (!a_i & b_i) | (eq_i & lt_prev).
    uint32_t lt = c.constGate(false);
    for (size_t i = 0; i < bits; ++i) {
        uint32_t ai = c.input(i);
        uint32_t bi = c.input(bits + i);
        uint32_t na = c.notGate(ai);
        uint32_t a_lt_b = c.andGate(na, bi);
        uint32_t eq = c.notGate(c.xorGate(ai, bi));
        lt = c.orGate(a_lt_b, c.andGate(eq, lt));
    }
    // min = lt ? a : b, one mux per bit.
    uint32_t nsel = c.notGate(lt);
    for (size_t i = 0; i < bits; ++i) {
        uint32_t ai = c.input(i);
        uint32_t bi = c.input(bits + i);
        uint32_t pick_a = c.andGate(lt, ai);
        uint32_t pick_b = c.andGate(nsel, bi);
        c.markOutput(c.orGate(pick_a, pick_b));
    }
    return c;
}

BoolCircuit
buildBinaryAdder(size_t bits)
{
    if (bits == 0)
        throw std::invalid_argument("buildBinaryAdder: bits >= 1");
    BoolCircuit c(2 * bits);
    uint32_t carry = c.constGate(false);
    std::vector<uint32_t> sums;
    sums.reserve(bits);
    for (size_t i = 0; i < bits; ++i) {
        uint32_t ai = c.input(i);
        uint32_t bi = c.input(bits + i);
        uint32_t axb = c.xorGate(ai, bi);
        uint32_t sum = c.xorGate(axb, carry);
        uint32_t cout =
            c.orGate(c.andGate(ai, bi), c.andGate(axb, carry));
        sums.push_back(sum);
        carry = cout;
    }
    for (uint32_t s : sums)
        c.markOutput(s);
    c.markOutput(carry);
    return c;
}

std::vector<uint8_t>
toBits(uint64_t value, size_t bits)
{
    std::vector<uint8_t> out(bits);
    for (size_t i = 0; i < bits; ++i)
        out[i] = static_cast<uint8_t>((value >> i) & 1);
    return out;
}

uint64_t
fromBits(std::span<const uint8_t> bits)
{
    uint64_t value = 0;
    for (size_t i = 0; i < bits.size(); ++i) {
        if (bits[i])
            value |= uint64_t{1} << i;
    }
    return value;
}

} // namespace st::grl
