/**
 * @file
 * Cycle-accurate logic simulation of GRL circuits (paper Sec. V.B).
 *
 * The simulator models the digital-circuit domain directly: every line
 * idles at logic 1 and may fall to 0 exactly once per computation; a
 * single clock demarcates idealized unit time for the shift-register
 * delay elements, while AND/OR/LT gates are zero-delay combinational
 * (the paper's "clock cycle long enough to cover all inter-shift-register
 * wire and gate delays"). Within a time step gates settle in topological
 * order, so an LT cell whose a and b inputs fall in the same cycle blocks
 * — identical to the algebra's tie rule and the trace simulator.
 *
 * The simulator counts every switching event (gate output falls, LT latch
 * captures, flipflop data toggles) because the paper's energy-efficiency
 * conjecture (Sec. VI) is precisely a claim about transition counts;
 * energy.hpp turns the counts into energy estimates.
 */

#ifndef ST_GRL_LOGIC_SIM_HPP
#define ST_GRL_LOGIC_SIM_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "grl/netlist.hpp"

namespace st::grl {

/** Result of simulating one feedforward computation. */
struct SimResult
{
    /** Per-gate output fall time (inf = stayed high). */
    std::vector<Time> fallTime;
    /** Output fall times in markOutput() order. */
    std::vector<Time> outputs;

    /** 1->0 output transitions of AND/OR gates. */
    uint64_t gateTransitions = 0;
    /** 1->0 output transitions of LT cells. */
    uint64_t ltOutputTransitions = 0;
    /** LT latch capture events (internal node switches). */
    uint64_t ltLatchTransitions = 0;
    /** Flipflop data bits that toggled inside delay lines. */
    uint64_t flopDataTransitions = 0;
    /** Externally driven falls (inputs and consts). */
    uint64_t inputTransitions = 0;
    /** Clock cycles simulated (for clock-energy accounting). */
    uint64_t cyclesSimulated = 0;

    /** Lines (gates, inputs, consts) that ended the computation low. */
    uint64_t fallenLines = 0;
    /** Flipflop bits holding 0 at the end of the computation. */
    uint64_t flopZeroBits = 0;
    /** LT latches captured (must be re-opened by reset). */
    uint64_t latchesCaptured = 0;

    /** All internally generated transitions (excludes driven inputs). */
    uint64_t
    totalInternalTransitions() const
    {
        return gateTransitions + ltOutputTransitions +
               ltLatchTransitions + flopDataTransitions;
    }

    /**
     * Rising transitions the reset phase must pay before the next
     * computation (paper Sec. VI: "they must be reset prior to the next
     * computation"): every fallen line, zeroed flipflop bit and captured
     * latch returns to idle high.
     */
    uint64_t
    resetTransitions() const
    {
        return fallenLines + flopZeroBits + latchesCaptured;
    }
};

/**
 * A horizon that provably covers every possible fall: latest external
 * event plus the total delay-line depth, plus one settling cycle.
 */
Time::rep safeHorizon(const Circuit &circuit,
                      std::span<const Time> inputs);

/**
 * Simulate one computation.
 *
 * @param circuit  The netlist.
 * @param inputs   Fall time per primary input (inf = line stays high).
 * @param horizon  Cycles to simulate; falls after this read as inf.
 *                 Pass 0 to use safeHorizon().
 */
SimResult simulate(const Circuit &circuit, std::span<const Time> inputs,
                   Time::rep horizon = 0);

/** Aggregate result of a stream of computations with resets between. */
struct StreamResult
{
    /** Per-computation results, in order. */
    std::vector<SimResult> computations;
    /** Rising transitions paid by all reset phases. */
    uint64_t resetTransitions = 0;
    /** Forward transitions (internal + inputs) across the stream. */
    uint64_t forwardTransitions = 0;
    /** Clock cycles across the stream (compute phases only). */
    uint64_t totalCycles = 0;

    /** Forward + reset switching. */
    uint64_t
    totalTransitions() const
    {
        return forwardTransitions + resetTransitions;
    }
};

/**
 * Run a sequence of feedforward computations, resetting the circuit to
 * the idle-high state between them (the paper's per-computation reset).
 *
 * @param volleys  One input volley per computation.
 * @param horizon  Per-computation horizon (0 = safeHorizon of each).
 */
StreamResult
simulateStream(const Circuit &circuit,
               std::span<const std::vector<Time>> volleys,
               Time::rep horizon = 0);

} // namespace st::grl

#endif // ST_GRL_LOGIC_SIM_HPP
