/**
 * @file
 * The indexed calendar queue behind the event-driven GRL engines.
 *
 * Extracted from event_sim.cpp so the serial engine and the
 * conservative time-window parallel engine (parallel_sim.hpp) share
 * one agenda implementation: a per-partition instance of this queue is
 * exactly the serial agenda restricted to the partition's wires, which
 * is what makes the parallel engine's per-window replay bit-identical
 * to the serial scan.
 *
 * Three lanes, cheapest first:
 *
 *   - ready: wires to examine at the *current* time, kept as a bitmap
 *     over wire ids and drained by an ascending bit scan. Fanins
 *     precede consumers in id order, so draining ascending ids
 *     reproduces the clocked engine's settle order exactly (the
 *     documented LT tie-resolution order), and the scan cursor never
 *     backs up: a newly scheduled same-time consumer always carries a
 *     larger id than the wire being processed. The bitmap also dedups
 *     for free — a gate whose fanins fall together is examined once.
 *
 *   - ring: a power-of-two array of time buckets for near-future
 *     events (delay-gate outputs). Every scheduling offset is bounded
 *     by the largest delay-line stage count, so with ringSize >
 *     maxDelayStages + 1 a bucket can only ever hold events for one
 *     absolute time — draining bucket (t & mask) at time t never
 *     touches foreign events.
 *
 *   - far: a std::priority_queue fallback for offsets beyond the ring
 *     window (a delay line deeper than kMaxRingSize stages, or a
 *     boundary event landing far past a partition's local clock).
 *
 * External events (input/const falls at arbitrary times) are kept in
 * one sorted array walked by a cursor, so a wide input spread does not
 * force a huge ring.
 */

#ifndef ST_GRL_CALENDAR_QUEUE_HPP
#define ST_GRL_CALENDAR_QUEUE_HPP

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "grl/netlist.hpp"
#include "obs/obs.hpp"

namespace st::grl::detail {

/** The event agenda: an indexed calendar queue tuned to GRL's event
 *  pattern (see file comment). Single-threaded; the parallel engine
 *  gives each partition its own instance. */
class CalendarQueue
{
  public:
    /** Raw inf pattern; no event can be scheduled later. */
    static constexpr Time::rep kInfRep =
        std::numeric_limits<Time::rep>::max();

    CalendarQueue(uint32_t max_delay_stages, size_t num_wires,
                  std::vector<std::pair<Time::rep, WireId>> external)
        : external_(std::move(external)),
          readyBits_((num_wires + 63) / 64, 0)
    {
        std::sort(external_.begin(), external_.end());
        const uint64_t span =
            std::min<uint64_t>(uint64_t{max_delay_stages} + 2,
                               kMaxRingSize);
        ringMask_ = std::bit_ceil(span) - 1;
        ring_.resize(ringMask_ + 1);
    }

    /** True while any lane still holds an event. */
    bool
    pending() const
    {
        return cursor_ < external_.size() || ringCount_ > 0 ||
               !far_.empty();
    }

    /** The earliest pending time, without advancing (kInfRep if none).
     *  The parallel engine peeks this at every window barrier to pick
     *  the next conservative window start. */
    Time::rep
    nextTime() const
    {
        Time::rep next = kInfRep;
        bool have = false;
        if (cursor_ < external_.size()) {
            next = external_[cursor_].first;
            have = true;
        }
        if (!far_.empty() && (!have || far_.top().first < next)) {
            next = far_.top().first;
            have = true;
        }
        if (ringCount_ > 0) {
            // All ring events lie in (now, now + ringSize), so a
            // bounded scan finds the earliest occupied bucket.
            for (Time::rep t = now_ + 1; !have || t < next; ++t) {
                if (!ring_[t & ringMask_].empty()) {
                    next = t;
                    break;
                }
            }
        }
        return next;
    }

    /** The current time (last advance() result). */
    Time::rep now() const { return now_; }

    /**
     * Advance to the earliest pending time and move every event at
     * that time into the ready bitmap.
     *
     * @return The new current time.
     */
    Time::rep
    advance()
    {
        now_ = nextTime();
        while (cursor_ < external_.size() &&
               external_[cursor_].first == now_) {
            pushReady(external_[cursor_++].second);
        }
        while (!far_.empty() && far_.top().first == now_) {
            pushReady(far_.top().second);
            far_.pop();
        }
        std::vector<WireId> &bucket = ring_[now_ & ringMask_];
        for (WireId id : bucket)
            pushReady(id);
        ringCount_ -= bucket.size();
        bucket.clear();
        // A new time step may make any wire ready; restart the scan
        // (skipping zero words is a handful of cycles per step).
        scanWord_ = 0;
        // Agenda-shape tallies, flushed to the registry once per
        // simulate call. The per-step histogram record is two relaxed
        // atomics; everything else is a plain local add.
        ST_OBS_ONLY(++statAdvances;
                    statMaxDepth = std::max<uint64_t>(
                        statMaxDepth,
                        ringCount_ + far_.size() + readyCount_);
                    ST_OBS_HIST("grl.agenda.ring_occupancy",
                                ringCount_);)
        return now_;
    }

    /** Schedule @p id for examination at now + @p offset. */
    void
    schedule(WireId id, Time::rep offset)
    {
        // Saturate like the old Time-keyed agenda (inf + c = inf):
        // an overflowing schedule lands at inf, not at a wrapped time.
        const Time target = Time(now_) + offset;
        scheduleAt(id, target.isInf() ? kInfRep : target.value());
    }

    /** Schedule @p id at the absolute time @p at (must be >= now).
     *  Window-barrier drains use this: a boundary event carries the
     *  producing partition's absolute fall + delay time, which lies at
     *  or past the receiving partition's window start. */
    void
    scheduleAt(WireId id, Time::rep at)
    {
        const Time::rep delta = at - now_;
        if (delta == 0) {
            ST_OBS_ONLY(++statReadyPushes;)
            pushReady(id);
        } else if (delta <= ringMask_) {
            ST_OBS_ONLY(++statRingPushes;)
            ring_[at & ringMask_].push_back(id);
            ++ringCount_;
        } else {
            ST_OBS_ONLY(++statFarPushes;)
            far_.emplace(at, id);
        }
    }

    /** True while the current time step still has wires to examine. */
    bool
    readyPending() const
    {
        return readyCount_ > 0;
    }

    /** Pop the lowest-id wire of the current time step. */
    WireId
    popReady()
    {
        while (readyBits_[scanWord_] == 0)
            ++scanWord_;
        const uint64_t word = readyBits_[scanWord_];
        readyBits_[scanWord_] = word & (word - 1); // clear lowest bit
        --readyCount_;
        return static_cast<WireId>(
            scanWord_ * 64 +
            static_cast<size_t>(std::countr_zero(word)));
    }

    // Local observation tallies (see advance()/schedule()); public so
    // the engines can flush them into the metrics registry in one
    // batch per run.
    ST_OBS_ONLY(uint64_t statAdvances = 0; uint64_t statMaxDepth = 0;
                uint64_t statReadyPushes = 0;
                uint64_t statRingPushes = 0;
                uint64_t statFarPushes = 0;)

  private:
    /** Ring sizes beyond this spill to the far heap instead. */
    static constexpr uint64_t kMaxRingSize = uint64_t{1} << 14;

    void
    pushReady(WireId id)
    {
        uint64_t &word = readyBits_[id >> 6];
        const uint64_t bit = uint64_t{1} << (id & 63);
        readyCount_ += (word & bit) == 0;
        word |= bit;
    }

    std::vector<std::pair<Time::rep, WireId>> external_;
    size_t cursor_ = 0;

    std::vector<std::vector<WireId>> ring_;
    uint64_t ringMask_ = 0;
    size_t ringCount_ = 0;

    std::priority_queue<std::pair<Time::rep, WireId>,
                        std::vector<std::pair<Time::rep, WireId>>,
                        std::greater<>>
        far_;

    std::vector<uint64_t> readyBits_;
    size_t readyCount_ = 0;
    size_t scanWord_ = 0;
    Time::rep now_ = 0;
};

} // namespace st::grl::detail

#endif // ST_GRL_CALENDAR_QUEUE_HPP
