#include "obs/flight.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>

#include "obs/log.hpp"     // logNowMs: shared steady-clock domain
#include "obs/metrics.hpp" // detail::jsonEscape

namespace st::obs {

FlightRecorder &
FlightRecorder::instance()
{
    // Immortal for the same reason as MetricsRegistry::instance():
    // signal/atexit paths may still dump during static destruction.
    static FlightRecorder *rec = [] {
        auto *r = new FlightRecorder;
        const char *env = std::getenv("ST_FLIGHT");
        if (env != nullptr && *env != '\0')
            r->setDumpPath(env);
        return r;
    }();
    return *rec;
}

void
FlightRecorder::record(const char *kind, uint64_t a, uint64_t b,
                       std::string detail)
{
    Event event{logNowMs(), kind, a, b, std::move(detail)};
    std::lock_guard<std::mutex> guard(mutex_);
    if (ring_.size() < kRingCap) {
        ring_.push_back(std::move(event));
    } else {
        ring_[head_] = std::move(event);
        head_ = (head_ + 1) % kRingCap;
        ++dropped_;
    }
}

void
FlightRecorder::setDumpPath(std::string path)
{
    std::lock_guard<std::mutex> guard(mutex_);
    path_ = std::move(path);
}

std::string
FlightRecorder::dumpPath() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return path_;
}

void
FlightRecorder::writeJson(std::ostream &out) const
{
    // Copy under the lock first so serialization cannot stall
    // recorders (same discipline as TraceSession::writeJson).
    std::vector<Event> events;
    uint64_t dropped;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        dropped = dropped_;
        events.reserve(ring_.size());
        for (size_t i = 0; i < ring_.size(); ++i)
            events.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    out << "{\"dropped\": " << dropped << ", \"events\": [\n";
    for (size_t i = 0; i < events.size(); ++i) {
        const Event &e = events[i];
        out << (i ? ",\n" : "") << "  {\"ts_ms\": " << e.tsMs
            << ", \"kind\": \"" << detail::jsonEscape(e.kind)
            << "\", \"a\": " << e.a << ", \"b\": " << e.b
            << ", \"detail\": \"" << detail::jsonEscape(e.detail)
            << "\"}";
    }
    out << "\n]}\n";
}

std::string
FlightRecorder::toJson() const
{
    std::ostringstream out;
    writeJson(out);
    return out.str();
}

bool
FlightRecorder::dump()
{
    const std::string path = dumpPath();
    if (path.empty())
        return false;
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out) {
            std::cerr << "obs: cannot write flight recorder dump "
                      << tmp << "\n";
            MetricsRegistry::instance()
                .counter("flight.dump_failed")
                .add(1);
            return false;
        }
        writeJson(out);
        out.flush();
        if (!out) {
            MetricsRegistry::instance()
                .counter("flight.dump_failed")
                .add(1);
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::cerr << "obs: cannot rename flight recorder dump to "
                  << path << "\n";
        MetricsRegistry::instance()
            .counter("flight.dump_failed")
            .add(1);
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

size_t
FlightRecorder::eventCount() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return ring_.size();
}

uint64_t
FlightRecorder::droppedEvents() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return dropped_;
}

void
FlightRecorder::clear()
{
    std::lock_guard<std::mutex> guard(mutex_);
    ring_.clear();
    head_ = 0;
    dropped_ = 0;
}

} // namespace st::obs
