/**
 * @file
 * Lock-free metrics registry: counters, gauges and power-of-two
 * histograms for the engine hot paths (DESIGN.md Sec. 8).
 *
 * The paper's quantitative claims are event economics — spike counts,
 * gate transitions, energy proxies — so the engines must be able to
 * report what they did, not just how long they took. The registry is
 * built so that the *recording* side is cheap enough to live inside
 * the compiled evaluator and the event agenda:
 *
 *   - registration (cold, by static string name) takes a mutex and
 *     hands back a stable Counter/Gauge/Histogram handle;
 *   - recording (hot) is one relaxed fetch_add into the calling
 *     thread's shard — no locks, no contention between threads, and
 *     no synchronization with readers beyond the atomic itself;
 *   - aggregation happens on snapshot(): the reader sums every
 *     thread's shard, so totals are exact once writers quiesce and
 *     monotonically approximate while they run.
 *
 * Shards are owned by the registry and survive thread exit, so a
 * worker's contribution is never lost. A registry must outlive every
 * thread that recorded into it; the process-wide instance() is
 * immortal (leaked singleton) precisely so pool workers can record
 * during static destruction.
 *
 * Instrument sites should go through the ST_OBS_* macros in
 * obs/obs.hpp, which compile to nothing when the build sets
 * ST_OBS_ENABLED=0; the registry itself always compiles (snapshots
 * are then simply empty).
 */

#ifndef ST_OBS_METRICS_HPP
#define ST_OBS_METRICS_HPP

#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace st::obs {

class MetricsRegistry;

namespace detail {

/** Minimal JSON string escape shared by metrics and trace export. */
std::string jsonEscape(std::string_view s);

/**
 * Mangle a dotted metric name into a Prometheus-legal series name:
 * every character outside [a-zA-Z0-9_] becomes '_' and the result is
 * prefixed "st_" (which also guards against a leading digit).
 */
std::string promMangle(std::string_view name);

} // namespace detail

/**
 * Quantile estimate over power-of-two histogram buckets (bucket 0
 * holds v == 0, bucket k holds [2^(k-1), 2^k)): find the bucket the
 * rank-th sample falls in and interpolate linearly inside it. @p q is
 * clamped to [0, 1]; an empty histogram yields 0.
 */
double bucketQuantile(std::span<const uint64_t> buckets, double q);

namespace detail {

/**
 * Registry lifetime ids. The per-thread shard cache keys on this id,
 * not the registry address, so a stale cache entry left behind by a
 * destroyed (test) registry can never match a new registry that the
 * allocator placed at the same address.
 */
inline std::atomic<uint64_t> g_registry_ids{0};

/**
 * Transparent string hash so the registry's name index can be probed
 * with a std::string_view directly — registration hits (every call
 * site after its first) allocate nothing.
 */
struct TransparentStringHash
{
    using is_transparent = void;

    size_t
    operator()(std::string_view s) const noexcept
    {
        return std::hash<std::string_view>{}(s);
    }
};

} // namespace detail

/** Monotone event counter; add() is one relaxed atomic per call. */
class Counter
{
  public:
    void add(uint64_t n = 1);
    void operator+=(uint64_t n) { add(n); }

    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

  private:
    friend class MetricsRegistry;
    Counter(MetricsRegistry *reg, uint32_t slot)
        : reg_(reg), slot_(slot)
    {
    }

    MetricsRegistry *reg_;
    uint32_t slot_;
};

/**
 * Last-value / high-watermark cell. Unlike counters a gauge is a
 * single process-global atomic (per-thread "last value" shards have
 * no meaningful aggregation), so set() and setMax() stay lock-free.
 */
class Gauge
{
  public:
    /** Overwrite the value (last writer wins). */
    void
    set(uint64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    /** Raise the value to @p v if it is larger (CAS max loop). */
    void
    setMax(uint64_t v)
    {
        uint64_t cur = value_.load(std::memory_order_relaxed);
        while (cur < v && !value_.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

  private:
    friend class MetricsRegistry;
    Gauge() = default;

    std::atomic<uint64_t> value_{0};
};

/**
 * Histogram with power-of-two buckets: record(v) lands in bucket
 * bit_width(v), i.e. bucket 0 holds v == 0 and bucket k holds
 * [2^(k-1), 2^k). 65 buckets cover the full uint64 range; a running
 * sum slot makes the mean recoverable. One record() is two relaxed
 * atomics into the thread shard.
 */
class Histogram
{
  public:
    /** Buckets per histogram (bit_width of a uint64 is 0..64). */
    static constexpr uint32_t kBuckets = 65;

    void record(uint64_t v);

    /** The shard-slot bucket index value @p v lands in. */
    static uint32_t
    bucketOf(uint64_t v)
    {
        return static_cast<uint32_t>(std::bit_width(v));
    }

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

  private:
    friend class MetricsRegistry;
    Histogram(MetricsRegistry *reg, uint32_t base)
        : reg_(reg), base_(base)
    {
    }

    MetricsRegistry *reg_;
    uint32_t base_; //!< first shard slot: [sum][buckets 0..64]
};

/** Aggregated view of every registered metric, in registration order. */
struct MetricsSnapshot
{
    struct Scalar
    {
        std::string name;
        uint64_t value = 0;
    };

    struct Hist
    {
        std::string name;
        uint64_t count = 0;
        uint64_t sum = 0;
        /** Bucket counts, trailing zero buckets trimmed. */
        std::vector<uint64_t> buckets;

        /** Quantile estimate (see bucketQuantile). */
        double percentile(double q) const;
    };

    std::vector<Scalar> counters;
    std::vector<Scalar> gauges;
    std::vector<Hist> histograms;

    /**
     * Serialize as one JSON object with three sub-objects keyed
     * "counters", "gauges" (name -> value) and "histograms" (name ->
     * {count, sum, buckets}), so metric names can never collide with
     * the structural keys. This is the object bench --json embeds
     * under "metrics".
     */
    void writeJson(std::ostream &out) const;
    std::string toJson() const;

    /**
     * Serialize in the Prometheus text exposition format (version
     * 0.0.4): counters as `st_<name>_total`, gauges as `st_<name>`,
     * histograms as cumulative `st_<name>_bucket{le="..."}` series
     * plus `_sum`/`_count` and p50/p90/p99/p999 gauge estimates. Each
     * family carries HELP/TYPE lines naming the original dotted
     * metric.
     */
    void writeProm(std::ostream &out) const;
    std::string toProm() const;
};

/**
 * Owner of the metric name table and the per-thread shards. Handles
 * returned by counter()/gauge()/histogram() are stable for the
 * registry's lifetime; re-registering a name of the same kind returns
 * the same handle, a kind mismatch throws std::invalid_argument.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry (immortal; see file comment). */
    static MetricsRegistry &instance();

    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name);

    /** Aggregate every shard into one snapshot (registration order). */
    MetricsSnapshot snapshot() const;

    /** Number of registered metrics (all kinds). */
    size_t metricCount() const;

  private:
    friend class Counter;
    friend class Histogram;

    /** Shard slot budget; registration past this throws. */
    static constexpr uint32_t kShardSlots = 1024;

    /** One thread's slot block (zero-initialized atomics). */
    struct Shard
    {
        std::atomic<uint64_t> slots[kShardSlots] = {};
    };

    enum class Kind : uint8_t
    {
        Counter,
        Gauge,
        Histogram,
    };

    struct MetricInfo
    {
        std::string name;
        Kind kind;
        uint32_t slot; //!< shard slot base (unused for gauges)
        uint32_t span; //!< shard slots consumed (0 for gauges)
        void *obj;     //!< the Counter/Gauge/Histogram, per kind
    };

    struct TlsEntry
    {
        uint64_t id;
        std::atomic<uint64_t> *slots;
    };

    /** The calling thread's shard-slot cache (all registries). */
    static std::vector<TlsEntry> &
    tlsCache()
    {
        thread_local std::vector<TlsEntry> cache;
        return cache;
    }

    /** Hot path: resolve the calling thread's slots for *this. */
    std::atomic<uint64_t> *
    localSlots()
    {
        for (const TlsEntry &entry : tlsCache()) {
            if (entry.id == id_)
                return entry.slots;
        }
        return localSlotsSlow();
    }

    std::atomic<uint64_t> *localSlotsSlow();

    /**
     * Find-or-create under mutex_ and return the metric *object*
     * pointer, resolved while the lock is still held. Callers must
     * not touch metrics_/index_ or the handle deques themselves: a
     * concurrent registration may reallocate metrics_ and mutate the
     * deques, so only the returned object (stable, unique_ptr-owned)
     * is safe to use after the lock is released.
     */
    void *registerMetric(std::string_view name, Kind kind,
                         uint32_t span);
    uint64_t sumSlot(uint32_t slot) const;

    const uint64_t id_ =
        detail::g_registry_ids.fetch_add(1, std::memory_order_relaxed);
    mutable std::mutex mutex_;
    std::vector<MetricInfo> metrics_;
    std::unordered_map<std::string, size_t,
                       detail::TransparentStringHash, std::equal_to<>>
        index_;
    std::deque<std::unique_ptr<Counter>> counters_;
    std::deque<std::unique_ptr<Gauge>> gauges_;
    std::deque<std::unique_ptr<Histogram>> histograms_;
    std::vector<std::unique_ptr<Shard>> shards_;
    uint32_t nextSlot_ = 0;
};

inline void
Counter::add(uint64_t n)
{
    reg_->localSlots()[slot_].fetch_add(n, std::memory_order_relaxed);
}

inline void
Histogram::record(uint64_t v)
{
    std::atomic<uint64_t> *slots = reg_->localSlots();
    slots[base_].fetch_add(v, std::memory_order_relaxed);
    slots[base_ + 1 + bucketOf(v)].fetch_add(
        1, std::memory_order_relaxed);
}

} // namespace st::obs

#endif // ST_OBS_METRICS_HPP
