#include "obs/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "obs/metrics.hpp"

namespace st::obs {

namespace {

std::atomic<int> g_log_fd{STDERR_FILENO};

LogLevel
parseLevel(const char *s, LogLevel fallback)
{
    if (s == nullptr || *s == '\0')
        return fallback;
    if (std::strcmp(s, "debug") == 0)
        return LogLevel::Debug;
    if (std::strcmp(s, "info") == 0)
        return LogLevel::Info;
    if (std::strcmp(s, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(s, "error") == 0)
        return LogLevel::Error;
    if (std::strcmp(s, "off") == 0)
        return LogLevel::Off;
    // Unknown spelling: keep logging rather than going dark.
    return fallback;
}

std::atomic<LogLevel> g_threshold{
    parseLevel(std::getenv("ST_LOG"), LogLevel::Info)};

} // namespace

const char *
logLevelName(LogLevel lv)
{
    switch (lv) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Error:
        return "error";
      case LogLevel::Off:
        return "off";
    }
    return "info";
}

LogLevel
logThreshold()
{
    return g_threshold.load(std::memory_order_relaxed);
}

void
setLogThreshold(LogLevel lv)
{
    g_threshold.store(lv, std::memory_order_relaxed);
}

void
setLogFd(int fd)
{
    g_log_fd.store(fd, std::memory_order_relaxed);
}

uint64_t
logNowMs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
logWrite(LogLevel lv, const char *site, std::string_view msg)
{
    std::string line;
    line.reserve(msg.size() + 64);
    line += "ts_ms=";
    line += std::to_string(logNowMs());
    line += " level=";
    line += logLevelName(lv);
    line += " site=";
    line += site;
    line += " msg=\"";
    for (char c : msg) {
        if (c == '"' || c == '\\')
            line += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            c = ' ';
        line += c;
    }
    line += "\"\n";
    // One write(2) for the whole line: POSIX keeps small pipe/file
    // writes atomic enough that concurrent loggers never interleave
    // mid-record. A short write (signal, full pipe) loses the tail
    // of this one record; retrying would reopen the interleaving
    // window, so we don't.
    [[maybe_unused]] ssize_t n =
        write(g_log_fd.load(std::memory_order_relaxed), line.data(),
              line.size());
}

void
logDropTick()
{
    MetricsRegistry::instance().counter("logged.dropped").add(1);
}

} // namespace st::obs
