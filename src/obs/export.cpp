#include "obs/export.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "obs/metrics.hpp"

namespace st::obs {

MetricsExporter::MetricsExporter(std::string path,
                                 uint64_t interval_ms)
    : path_(std::move(path)),
      intervalMs_(interval_ms < kMinIntervalMs ? kMinIntervalMs
                                               : interval_ms)
{
}

MetricsExporter::~MetricsExporter()
{
    stop();
}

std::unique_ptr<MetricsExporter>
MetricsExporter::fromEnv()
{
    // Raw getenv on purpose: st_obs sits below st_util, so the
    // envString/envUint helpers are not linkable from here (see
    // trace.cpp for the same boundary).
    const char *env = std::getenv("ST_METRICS_EXPORT");
    if (env == nullptr)
        return nullptr;
    std::string spec(env);
    if (spec.empty()) {
        std::cerr << "st: ignoring ST_METRICS_EXPORT='' (empty "
                     "value); export stays off\n";
        MetricsRegistry::instance()
            .counter("env.parse_rejected")
            .add(1);
        return nullptr;
    }
    std::string path = spec;
    uint64_t interval = kDefaultIntervalMs;
    // `path,interval_ms`: the interval is the suffix after the LAST
    // comma iff it is all digits, so comma-bearing paths still work.
    const size_t comma = spec.rfind(',');
    if (comma != std::string::npos && comma + 1 < spec.size()) {
        const std::string tail = spec.substr(comma + 1);
        bool digits = true;
        for (char c : tail)
            digits = digits &&
                     std::isdigit(static_cast<unsigned char>(c));
        if (digits && tail.size() <= 9) {
            path = spec.substr(0, comma);
            interval = std::strtoull(tail.c_str(), nullptr, 10);
        }
    }
    if (path.empty()) {
        std::cerr << "st: ignoring ST_METRICS_EXPORT='" << spec
                  << "' (empty path); export stays off\n";
        MetricsRegistry::instance()
            .counter("env.parse_rejected")
            .add(1);
        return nullptr;
    }
    return std::make_unique<MetricsExporter>(std::move(path),
                                             interval);
}

void
MetricsExporter::start()
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (running_)
        return;
    stopping_ = false;
    running_ = true;
    thread_ = std::thread([this] { loop(); });
}

void
MetricsExporter::stop()
{
    {
        std::lock_guard<std::mutex> guard(mutex_);
        if (!running_)
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    {
        std::lock_guard<std::mutex> guard(mutex_);
        running_ = false;
    }
    // Final publish so the artifact reflects the complete run even
    // when the last interval tick never fired.
    writeOnce();
}

bool
MetricsExporter::writeOnce()
{
    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out) {
            std::cerr << "obs: cannot write metrics export " << tmp
                      << "\n";
            MetricsRegistry::instance()
                .counter("metrics.export_failed")
                .add(1);
            return false;
        }
        MetricsRegistry::instance().snapshot().writeProm(out);
        out.flush();
        if (!out) {
            MetricsRegistry::instance()
                .counter("metrics.export_failed")
                .add(1);
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
        std::cerr << "obs: cannot rename metrics export to " << path_
                  << "\n";
        MetricsRegistry::instance()
            .counter("metrics.export_failed")
            .add(1);
        std::remove(tmp.c_str());
        return false;
    }
    MetricsRegistry::instance().counter("metrics.exported").add(1);
    return true;
}

void
MetricsExporter::loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
        lock.unlock();
        writeOnce();
        lock.lock();
        cv_.wait_for(lock, std::chrono::milliseconds(intervalMs_),
                     [this] { return stopping_; });
    }
}

} // namespace st::obs
