/**
 * @file
 * Scoped-span tracing with Chrome trace-event JSON export.
 *
 * ST_TRACE_SPAN("compile") (obs/obs.hpp) drops a ScopedSpan on the
 * stack; when tracing is enabled its destructor records one complete
 * ("ph":"X") event into the calling thread's ring buffer. Buffers are
 * flushed to the Chrome trace-event JSON format, loadable in
 * chrome://tracing and Perfetto (ui.perfetto.dev), with one track per
 * thread.
 *
 * Enablement is runtime: exporting ST_TRACE=out.json turns tracing on
 * at process start and registers an atexit flush to that path (see
 * trace.cpp); tests and benches can instead call enable()/writeJson()
 * directly. When tracing is off a span costs exactly one relaxed
 * atomic load — cheap enough to leave spans in per-volley paths.
 *
 * The recording side takes a per-thread mutex per completed span (a
 * span is a coarse unit — a compile, a batch, an event-sim run — so
 * an uncontended lock is noise); the mutex exists so a concurrent
 * flush can drain buffers race-free while pool workers keep tracing.
 * Ring buffers cap memory: past kRingCap events per thread the oldest
 * events are overwritten and counted as dropped.
 *
 * Flush sorts each thread's events by start time, so the emitted
 * "ts" sequence is monotone per "tid" — the invariant the golden test
 * in tests/obs_test.cpp locks down.
 */

#ifndef ST_OBS_TRACE_HPP
#define ST_OBS_TRACE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace st::obs {

namespace detail {

/** Global on/off flag read (relaxed) by every span constructor. */
inline std::atomic<bool> g_trace_on{false};

} // namespace detail

/** Monotonic wall clock in nanoseconds (steady_clock). */
inline uint64_t
traceNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** One completed span (name must be a static string). */
struct TraceEvent
{
    const char *name;
    uint64_t startNs;
    uint64_t durNs;
};

/**
 * Process-wide trace collector. Like MetricsRegistry::instance() the
 * singleton is immortal, so spans on pool workers stay safe during
 * static destruction.
 */
class TraceSession
{
  public:
    /** Events kept per thread before the ring starts dropping. */
    static constexpr size_t kRingCap = size_t{1} << 15;

    static TraceSession &instance();

    /**
     * Start capturing spans. @p path, if nonempty, is written by an
     * atexit handler (the ST_TRACE=file flow); pass "" when the
     * caller will flush explicitly via writeJson().
     */
    void enable(std::string path = "");

    /** Stop capturing (already-buffered events are kept). */
    void disable();

    bool
    enabled() const
    {
        return detail::g_trace_on.load(std::memory_order_relaxed);
    }

    /** Drop every buffered event (test isolation). */
    void clear();

    /** Buffered event count across all threads. */
    size_t eventCount() const;

    /** Events lost to ring overwrite across all threads. */
    size_t droppedEvents() const;

    /**
     * Emit everything buffered as Chrome trace-event JSON. Events are
     * copied under the buffer locks and left in place, so tracing may
     * continue afterwards. Per thread, events are sorted by start
     * time (monotone "ts" per "tid").
     */
    void writeJson(std::ostream &out) const;

    /** writeJson() to @p path; false (with a stderr note) on I/O error. */
    bool writeJsonFile(const std::string &path) const;

    /** The atexit flush destination ("" when none). */
    std::string filePath() const;

    /** Called by ~ScopedSpan; records into the thread's ring. */
    void record(const char *name, uint64_t start_ns, uint64_t end_ns);

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

  private:
    TraceSession() = default;

    struct ThreadLog
    {
        std::mutex mutex;
        uint32_t tid = 0;
        std::vector<TraceEvent> ring;
        size_t head = 0;     //!< overwrite cursor once full
        uint64_t dropped = 0;
    };

    ThreadLog &localLog();

    mutable std::mutex mutex_; //!< guards logs_, path_, baseNs_
    std::vector<std::unique_ptr<ThreadLog>> logs_;
    std::string path_;
    uint64_t baseNs_ = 0; //!< ts origin: first enable()
};

/**
 * RAII span: measures construction-to-destruction when tracing is
 * enabled at construction time, otherwise does nothing.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name)
    {
        if (detail::g_trace_on.load(std::memory_order_relaxed)) {
            name_ = name;
            start_ = traceNowNs();
        }
    }

    ~ScopedSpan()
    {
        if (name_ != nullptr)
            TraceSession::instance().record(name_, start_,
                                            traceNowNs());
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *name_ = nullptr;
    uint64_t start_ = 0;
};

} // namespace st::obs

#endif // ST_OBS_TRACE_HPP
