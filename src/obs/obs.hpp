/**
 * @file
 * Instrumentation entry points: the ST_OBS_* / ST_TRACE_SPAN macros.
 *
 * Engine code records through these macros only, never through the
 * registry API directly, so one build switch removes every
 * instrumentation site: configuring with -DST_OBS_ENABLED=OFF (CMake
 * option, default ON) defines the ST_OBS_ENABLED macro to 0 and every
 * macro below compiles to nothing — the guarantee behind the
 * "observation never perturbs computation" differential tests and the
 * BENCH_obs.json overhead check.
 *
 * Counter/histogram/gauge macros resolve their handle once per call
 * site (function-local static behind the registry mutex) and then pay
 * one or two relaxed atomics per record. A disabled-at-runtime trace
 * span costs a single relaxed load.
 *
 *   ST_OBS_ADD("eval.compile.cache_hit", 1);
 *   ST_OBS_HIST("grl.agenda.ring_occupancy", ring_count);
 *   ST_OBS_GAUGE_MAX("grl.agenda.max_depth", depth);
 *   ST_TRACE_SPAN("st.compile");   // ends at scope exit
 *
 * ST_OBS_ONLY(code) keeps obs-supporting statements (local tallies,
 * clock reads) out of the disabled build entirely.
 */

#ifndef ST_OBS_OBS_HPP
#define ST_OBS_OBS_HPP

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifndef ST_OBS_ENABLED
#define ST_OBS_ENABLED 1
#endif

#if ST_OBS_ENABLED

#define ST_OBS_CAT2(a, b) a##b
#define ST_OBS_CAT(a, b) ST_OBS_CAT2(a, b)

/** Add @p n to the counter registered as @p name (static string). */
#define ST_OBS_ADD(name, n)                                             \
    do {                                                                \
        static st::obs::Counter &st_obs_c =                             \
            st::obs::MetricsRegistry::instance().counter(name);         \
        st_obs_c.add(n);                                                \
    } while (0)

/** Record @p v into the power-of-two histogram @p name. */
#define ST_OBS_HIST(name, v)                                            \
    do {                                                                \
        static st::obs::Histogram &st_obs_h =                           \
            st::obs::MetricsRegistry::instance().histogram(name);       \
        st_obs_h.record(v);                                             \
    } while (0)

/** Overwrite the gauge @p name with @p v. */
#define ST_OBS_GAUGE_SET(name, v)                                       \
    do {                                                                \
        static st::obs::Gauge &st_obs_g =                               \
            st::obs::MetricsRegistry::instance().gauge(name);           \
        st_obs_g.set(v);                                                \
    } while (0)

/** Raise the gauge @p name to @p v if larger (high-watermark). */
#define ST_OBS_GAUGE_MAX(name, v)                                       \
    do {                                                                \
        static st::obs::Gauge &st_obs_g =                               \
            st::obs::MetricsRegistry::instance().gauge(name);           \
        st_obs_g.setMax(v);                                             \
    } while (0)

/** Open a trace span covering the rest of the enclosing scope. */
#define ST_TRACE_SPAN(name)                                             \
    st::obs::ScopedSpan ST_OBS_CAT(st_obs_span_, __LINE__)(name)

/** Emit @p ... only in instrumented builds. */
#define ST_OBS_ONLY(...) __VA_ARGS__

#else // !ST_OBS_ENABLED

#define ST_OBS_ADD(name, n)                                             \
    do {                                                                \
    } while (0)
#define ST_OBS_HIST(name, v)                                            \
    do {                                                                \
    } while (0)
#define ST_OBS_GAUGE_SET(name, v)                                       \
    do {                                                                \
    } while (0)
#define ST_OBS_GAUGE_MAX(name, v)                                       \
    do {                                                                \
    } while (0)
#define ST_TRACE_SPAN(name)                                             \
    do {                                                                \
    } while (0)
#define ST_OBS_ONLY(...)

#endif // ST_OBS_ENABLED

#endif // ST_OBS_OBS_HPP
