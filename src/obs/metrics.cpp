#include "obs/metrics.hpp"

#include <array>
#include <cassert>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace st::obs {

namespace detail {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            c = ' ';
        out += c;
    }
    return out;
}

std::string
promMangle(std::string_view name)
{
    std::string out = "st_";
    out.reserve(name.size() + 3);
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

} // namespace detail

namespace {

/** Inclusive upper bound of power-of-two bucket @p k. */
uint64_t
bucketUpper(uint32_t k)
{
    if (k == 0)
        return 0;
    if (k >= 64)
        return UINT64_MAX;
    return (uint64_t{1} << k) - 1;
}

} // namespace

double
bucketQuantile(std::span<const uint64_t> buckets, double q)
{
    uint64_t total = 0;
    for (uint64_t b : buckets)
        total += b;
    if (total == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Nearest-rank with interpolation: the target is the rank-th
    // sample (1-based) in sorted order.
    double rank = q * static_cast<double>(total);
    if (rank < 1.0)
        rank = 1.0;
    double cum = 0.0;
    for (size_t k = 0; k < buckets.size(); ++k) {
        if (buckets[k] == 0)
            continue;
        const double next = cum + static_cast<double>(buckets[k]);
        if (rank <= next) {
            if (k == 0)
                return 0.0; // bucket 0 holds only v == 0
            // Interpolate linearly across the bucket's value range
            // [2^(k-1), 2^k) by the fraction of the bucket's samples
            // below the target rank.
            const double lo = std::ldexp(1.0, static_cast<int>(k) - 1);
            const double hi = std::ldexp(1.0, static_cast<int>(k));
            const double frac =
                (rank - cum) / static_cast<double>(buckets[k]);
            return lo + frac * (hi - lo);
        }
        cum = next;
    }
    // Unreachable when total > 0; keep a sane answer for safety.
    return std::ldexp(1.0, static_cast<int>(buckets.size()));
}

MetricsRegistry &
MetricsRegistry::instance()
{
    // Deliberately leaked: pool workers and atexit handlers may still
    // record during static destruction, so the global registry must
    // never die. The single block stays reachable through this
    // pointer, so LeakSanitizer does not flag it.
    static MetricsRegistry *reg = new MetricsRegistry;
    return *reg;
}

void *
MetricsRegistry::registerMetric(std::string_view name, Kind kind,
                                uint32_t span)
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto hit = index_.find(name);
    if (hit != index_.end()) {
        MetricInfo &info = metrics_[hit->second];
        if (info.kind != kind) {
            throw std::invalid_argument(
                "obs: metric '" + info.name +
                "' re-registered with a different kind");
        }
        assert(info.span == span &&
               "obs: metric re-registered with a different span");
        return info.obj;
    }
    if (span > 0 && nextSlot_ + span > kShardSlots) {
        throw std::length_error(
            "obs: shard slot budget exhausted (kShardSlots)");
    }
    MetricInfo info;
    info.name = std::string(name);
    info.kind = kind;
    info.slot = nextSlot_;
    info.span = span;
    nextSlot_ += span;
    switch (kind) {
      case Kind::Counter: {
        auto owned =
            std::unique_ptr<Counter>(new Counter(this, info.slot));
        info.obj = owned.get();
        counters_.push_back(std::move(owned));
        break;
      }
      case Kind::Gauge: {
        auto owned = std::unique_ptr<Gauge>(new Gauge());
        info.obj = owned.get();
        gauges_.push_back(std::move(owned));
        break;
      }
      case Kind::Histogram: {
        auto owned = std::unique_ptr<Histogram>(
            new Histogram(this, info.slot));
        info.obj = owned.get();
        histograms_.push_back(std::move(owned));
        break;
      }
    }
    metrics_.push_back(std::move(info));
    index_.emplace(metrics_.back().name, metrics_.size() - 1);
    return metrics_.back().obj;
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    return *static_cast<Counter *>(
        registerMetric(name, Kind::Counter, 1));
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    return *static_cast<Gauge *>(registerMetric(name, Kind::Gauge, 0));
}

Histogram &
MetricsRegistry::histogram(std::string_view name)
{
    // Layout per histogram: [sum][buckets 0..64].
    return *static_cast<Histogram *>(registerMetric(
        name, Kind::Histogram, 1 + Histogram::kBuckets));
}

std::atomic<uint64_t> *
MetricsRegistry::localSlotsSlow()
{
    Shard *shard;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        shards_.push_back(std::make_unique<Shard>());
        shard = shards_.back().get();
    }
    tlsCache().push_back({id_, shard->slots});
    return shard->slots;
}

uint64_t
MetricsRegistry::sumSlot(uint32_t slot) const
{
    uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard->slots[slot].load(std::memory_order_relaxed);
    return total;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    MetricsSnapshot snap;
    for (const MetricInfo &info : metrics_) {
        switch (info.kind) {
          case Kind::Counter:
            snap.counters.push_back({info.name, sumSlot(info.slot)});
            break;
          case Kind::Gauge:
            snap.gauges.push_back(
                {info.name,
                 static_cast<const Gauge *>(info.obj)->value()});
            break;
          case Kind::Histogram: {
            MetricsSnapshot::Hist h;
            h.name = info.name;
            h.sum = sumSlot(info.slot);
            h.buckets.resize(Histogram::kBuckets);
            for (uint32_t b = 0; b < Histogram::kBuckets; ++b) {
                h.buckets[b] = sumSlot(info.slot + 1 + b);
                h.count += h.buckets[b];
            }
            while (!h.buckets.empty() && h.buckets.back() == 0)
                h.buckets.pop_back();
            snap.histograms.push_back(std::move(h));
            break;
          }
        }
    }
    return snap;
}

size_t
MetricsRegistry::metricCount() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return metrics_.size();
}

double
MetricsSnapshot::Hist::percentile(double q) const
{
    return bucketQuantile(buckets, q);
}

void
MetricsSnapshot::writeJson(std::ostream &out) const
{
    // Counters and gauges each get their own sub-object so a metric
    // name can never collide with the structural "histograms" key.
    auto scalars = [&](const char *key,
                       const std::vector<Scalar> &group) {
        out << "\"" << key << "\": {";
        for (size_t i = 0; i < group.size(); ++i) {
            out << (i ? ", " : "") << "\""
                << detail::jsonEscape(group[i].name)
                << "\": " << group[i].value;
        }
        out << "}";
    };
    out << "{";
    scalars("counters", counters);
    out << ", ";
    scalars("gauges", gauges);
    out << ", \"histograms\": {";
    for (size_t i = 0; i < histograms.size(); ++i) {
        const Hist &h = histograms[i];
        out << (i ? ", " : "") << "\""
            << detail::jsonEscape(h.name) << "\": {\"count\": "
            << h.count << ", \"sum\": " << h.sum
            << ", \"p50\": " << h.percentile(0.50)
            << ", \"p90\": " << h.percentile(0.90)
            << ", \"p99\": " << h.percentile(0.99)
            << ", \"p999\": " << h.percentile(0.999)
            << ", \"buckets\": [";
        for (size_t b = 0; b < h.buckets.size(); ++b)
            out << (b ? ", " : "") << h.buckets[b];
        out << "]}";
    }
    out << "}}";
}

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream out;
    writeJson(out);
    return out.str();
}

void
MetricsSnapshot::writeProm(std::ostream &out) const
{
    for (const Scalar &c : counters) {
        const std::string m = detail::promMangle(c.name);
        out << "# HELP " << m << "_total counter " << c.name << "\n";
        out << "# TYPE " << m << "_total counter\n";
        out << m << "_total " << c.value << "\n";
    }
    for (const Scalar &g : gauges) {
        const std::string m = detail::promMangle(g.name);
        out << "# HELP " << m << " gauge " << g.name << "\n";
        out << "# TYPE " << m << " gauge\n";
        out << m << " " << g.value << "\n";
    }
    for (const Hist &h : histograms) {
        const std::string m = detail::promMangle(h.name);
        out << "# HELP " << m << " histogram " << h.name << "\n";
        out << "# TYPE " << m << " histogram\n";
        uint64_t cum = 0;
        for (size_t k = 0; k < h.buckets.size(); ++k) {
            cum += h.buckets[k];
            out << m << "_bucket{le=\""
                << bucketUpper(static_cast<uint32_t>(k)) << "\"} "
                << cum << "\n";
        }
        out << m << "_bucket{le=\"+Inf\"} " << h.count << "\n";
        out << m << "_sum " << h.sum << "\n";
        out << m << "_count " << h.count << "\n";
        // Quantile estimates as companion gauges: scrapers that only
        // speak flat series still get the tail without re-deriving
        // the power-of-two interpolation.
        static constexpr std::array<std::pair<const char *, double>, 4>
            kQuantiles = {{{"p50", 0.50},
                           {"p90", 0.90},
                           {"p99", 0.99},
                           {"p999", 0.999}}};
        for (const auto &[suffix, q] : kQuantiles) {
            out << "# TYPE " << m << "_" << suffix << " gauge\n";
            out << m << "_" << suffix << " " << h.percentile(q)
                << "\n";
        }
    }
}

std::string
MetricsSnapshot::toProm() const
{
    std::ostringstream out;
    writeProm(out);
    return out.str();
}

} // namespace st::obs
