/**
 * @file
 * Structured, rate-limited operational logging (DESIGN.md Sec. 13).
 *
 * The serve layer's warning sites were bare fprintf(stderr): unbounded
 * under fault storms, interleavable across threads, and unparseable.
 * This header replaces them with one-line key=value records:
 *
 *   ts_ms=182392 level=warn site=serve.watchdog msg="stall 1200 ms"
 *
 * Guarantees:
 *   - each record is emitted with a single write(2), so concurrent
 *     writers cannot interleave mid-line;
 *   - each ST_LOG site carries its own token bucket (burst 8, refill
 *     1/s) so a pathological loop cannot flood the log — rejected
 *     lines tick the `logged.dropped` counter instead;
 *   - the threshold comes from ST_LOG (debug|info|warn|error|off,
 *     default info), read once at first use.
 *
 * The logging layer always compiles, independent of ST_OBS_ENABLED:
 * operator-facing warnings are part of the server's contract, not
 * optional instrumentation. Only the drop *accounting* rides on the
 * metrics registry (which also always compiles).
 */

#ifndef ST_OBS_LOG_HPP
#define ST_OBS_LOG_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace st::obs {

enum class LogLevel : uint8_t
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Off = 4,
};

/** Printable lowercase name ("debug".."error"; Off yields "off"). */
const char *logLevelName(LogLevel lv);

/** The active threshold (ST_LOG env, read once; default Info). */
LogLevel logThreshold();

/** Override the threshold (tests, embedders). */
void setLogThreshold(LogLevel lv);

/** Redirect log output (default STDERR_FILENO; tests use a pipe). */
void setLogFd(int fd);

/** True when records at @p lv pass the active threshold. */
inline bool
logEnabled(LogLevel lv)
{
    return lv >= logThreshold() && logThreshold() != LogLevel::Off;
}

/** Milliseconds on the steady clock (same domain as serve stamps). */
uint64_t logNowMs();

/**
 * Assemble and emit one record with a single write(2). @p site is a
 * static dotted identifier ("serve.watchdog"); @p msg is free text
 * (quotes/backslashes escaped, control bytes flattened to spaces).
 */
void logWrite(LogLevel lv, const char *site, std::string_view msg);

/** Account one rate-limited rejection (`logged.dropped`). */
void logDropTick();

/**
 * Token bucket: admit() spends one token when available; tokens
 * refill continuously at @p refill_per_sec up to @p capacity.
 * Thread-safe; one instance lives at each ST_LOG call site.
 */
class LogRateLimiter
{
  public:
    LogRateLimiter(double capacity, double refill_per_sec)
        : capacity_(capacity), refillPerSec_(refill_per_sec),
          tokens_(capacity)
    {
    }

    bool
    admit(uint64_t now_ms)
    {
        std::lock_guard<std::mutex> guard(mutex_);
        if (lastMs_ == 0)
            lastMs_ = now_ms;
        const double elapsed_s =
            static_cast<double>(now_ms - lastMs_) / 1000.0;
        lastMs_ = now_ms;
        tokens_ += elapsed_s * refillPerSec_;
        if (tokens_ > capacity_)
            tokens_ = capacity_;
        if (tokens_ < 1.0) {
            ++dropped_;
            return false;
        }
        tokens_ -= 1.0;
        return true;
    }

    uint64_t
    dropped() const
    {
        std::lock_guard<std::mutex> guard(mutex_);
        return dropped_;
    }

  private:
    const double capacity_;
    const double refillPerSec_;
    mutable std::mutex mutex_;
    double tokens_;
    uint64_t lastMs_ = 0;
    uint64_t dropped_ = 0;
};

} // namespace st::obs

/**
 * Site-scoped structured log line. The function-local limiter gives
 * every textual call site an independent budget: burst of 8, then
 * one line per second, rejects ticking `logged.dropped`.
 */
#define ST_LOG(lvl, site, msg)                                         \
    do {                                                               \
        if (::st::obs::logEnabled(lvl)) {                              \
            static ::st::obs::LogRateLimiter st_log_limiter_(8.0,      \
                                                             1.0);     \
            if (st_log_limiter_.admit(::st::obs::logNowMs()))          \
                ::st::obs::logWrite(lvl, site, msg);                   \
            else                                                       \
                ::st::obs::logDropTick();                              \
        }                                                              \
    } while (0)

#define ST_LOG_DEBUG(site, msg)                                        \
    ST_LOG(::st::obs::LogLevel::Debug, site, msg)
#define ST_LOG_INFO(site, msg)                                         \
    ST_LOG(::st::obs::LogLevel::Info, site, msg)
#define ST_LOG_WARN(site, msg)                                         \
    ST_LOG(::st::obs::LogLevel::Warn, site, msg)
#define ST_LOG_ERROR(site, msg)                                        \
    ST_LOG(::st::obs::LogLevel::Error, site, msg)

#endif // ST_OBS_LOG_HPP
