/**
 * @file
 * Flight recorder: a bounded in-memory ring of recent structured
 * events, dumped to a JSON artifact on watchdog trips, batch panics
 * and SIGTERM drains (DESIGN.md Sec. 13).
 *
 * Chaos-soak failures and production incidents used to reduce to
 * "exit code 1"; the recorder turns them into a replayable timeline:
 * session opens/closes, volley drops with reason, quarantines,
 * force-closes and watchdog trips, each stamped on the steady clock.
 *
 * The ring keeps the newest kRingCap events (drop-oldest) so the
 * dump always covers the window leading up to the incident; the
 * count of evicted events is reported in the artifact ("dropped").
 *
 * Activation mirrors ST_TRACE: `ST_FLIGHT=path` arms the process-wide
 * instance() with a dump path at first use; dump() is also callable
 * explicitly (the serve watchdog and stnet_serve's SIGTERM path do).
 * Recording is mutex-guarded and cheap (one string copy); it is NOT
 * compiled out under ST_OBS_ENABLED=0 because the recorder is a
 * crash-forensics surface, not throughput instrumentation — callers
 * on hot paths must keep their record() sites on cold branches.
 */

#ifndef ST_OBS_FLIGHT_HPP
#define ST_OBS_FLIGHT_HPP

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace st::obs {

class FlightRecorder
{
  public:
    /** Events retained; older ones are evicted oldest-first. */
    static constexpr size_t kRingCap = 1024;

    /** One recorded event. Meaning of a/b is per-kind (ids, ms). */
    struct Event
    {
        uint64_t tsMs;
        std::string kind;
        uint64_t a;
        uint64_t b;
        std::string detail;
    };

    FlightRecorder() = default;
    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /**
     * The process-wide recorder (immortal, like
     * MetricsRegistry::instance()). Reads ST_FLIGHT once on first
     * use to arm the dump path.
     */
    static FlightRecorder &instance();

    /** Append one event (drop-oldest beyond kRingCap). */
    void record(const char *kind, uint64_t a = 0, uint64_t b = 0,
                std::string detail = std::string());

    /** Set/replace the artifact path used by dump(). */
    void setDumpPath(std::string path);
    std::string dumpPath() const;

    /**
     * Write the artifact atomically (tmp+rename) to the armed path.
     * Returns false (silently) when no path is armed; failures to
     * write tick `flight.dump_failed`.
     */
    bool dump();

    /** Write the artifact to an explicit stream (tests). */
    void writeJson(std::ostream &out) const;
    std::string toJson() const;

    size_t eventCount() const;
    uint64_t droppedEvents() const;
    void clear();

  private:
    mutable std::mutex mutex_;
    std::vector<Event> ring_; //!< circular once full
    size_t head_ = 0;         //!< oldest element when ring is full
    uint64_t dropped_ = 0;
    std::string path_;
};

} // namespace st::obs

#endif // ST_OBS_FLIGHT_HPP
