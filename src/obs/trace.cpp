#include "obs/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>

#include "obs/metrics.hpp" // detail::jsonEscape

namespace st::obs {

namespace {

/** atexit hook of the ST_TRACE=file flow. */
void
flushTraceAtExit()
{
    TraceSession &session = TraceSession::instance();
    const std::string path = session.filePath();
    if (!path.empty())
        session.writeJsonFile(path);
}

/**
 * Reads ST_TRACE once at process start. Lives in this TU so any
 * binary that links a span (or the flush API) gets env activation
 * without an explicit init call.
 */
struct TraceEnvInit
{
    TraceEnvInit()
    {
        const char *env = std::getenv("ST_TRACE");
        if (env == nullptr)
            return;
        // Hardened env boundary (same contract as st::envString, which
        // lives above this library): a set-but-empty ST_TRACE almost
        // certainly meant to name a file — warn and account the
        // reject instead of silently not tracing.
        if (*env == '\0') {
            std::cerr << "st: ignoring ST_TRACE='' (empty value); "
                         "tracing stays off\n";
            MetricsRegistry::instance()
                .counter("env.parse_rejected")
                .add(1);
            return;
        }
        TraceSession::instance().enable(env);
    }
};

TraceEnvInit trace_env_init;

} // namespace

TraceSession &
TraceSession::instance()
{
    // Immortal for the same reason as MetricsRegistry::instance().
    static TraceSession *session = new TraceSession;
    return *session;
}

void
TraceSession::enable(std::string path)
{
    bool arm_atexit = false;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        if (baseNs_ == 0)
            baseNs_ = traceNowNs();
        if (!path.empty() && path_.empty()) {
            path_ = std::move(path);
            arm_atexit = true;
        }
    }
    if (arm_atexit)
        std::atexit(flushTraceAtExit);
    detail::g_trace_on.store(true, std::memory_order_relaxed);
}

void
TraceSession::disable()
{
    detail::g_trace_on.store(false, std::memory_order_relaxed);
}

void
TraceSession::clear()
{
    std::lock_guard<std::mutex> guard(mutex_);
    for (const auto &log : logs_) {
        std::lock_guard<std::mutex> log_guard(log->mutex);
        log->ring.clear();
        log->head = 0;
        log->dropped = 0;
    }
}

size_t
TraceSession::eventCount() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    size_t n = 0;
    for (const auto &log : logs_) {
        std::lock_guard<std::mutex> log_guard(log->mutex);
        n += log->ring.size();
    }
    return n;
}

size_t
TraceSession::droppedEvents() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    size_t n = 0;
    for (const auto &log : logs_) {
        std::lock_guard<std::mutex> log_guard(log->mutex);
        n += log->dropped;
    }
    return n;
}

std::string
TraceSession::filePath() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return path_;
}

TraceSession::ThreadLog &
TraceSession::localLog()
{
    thread_local ThreadLog *tls_log = nullptr;
    // One session per process, so a plain per-thread pointer works; a
    // fresh thread registers its log under the session mutex once.
    if (tls_log == nullptr) {
        auto fresh = std::make_unique<ThreadLog>();
        std::lock_guard<std::mutex> guard(mutex_);
        fresh->tid = static_cast<uint32_t>(logs_.size());
        logs_.push_back(std::move(fresh));
        tls_log = logs_.back().get();
    }
    return *tls_log;
}

void
TraceSession::record(const char *name, uint64_t start_ns,
                     uint64_t end_ns)
{
    ThreadLog &log = localLog();
    std::lock_guard<std::mutex> guard(log.mutex);
    TraceEvent event{name, start_ns, end_ns - start_ns};
    if (log.ring.size() < kRingCap) {
        log.ring.push_back(event);
    } else {
        log.ring[log.head] = event;
        log.head = (log.head + 1) % kRingCap;
        ++log.dropped;
    }
}

void
TraceSession::writeJson(std::ostream &out) const
{
    // Copy everything under the locks first so serialization does not
    // stall the tracers.
    struct ThreadDump
    {
        uint32_t tid;
        std::vector<TraceEvent> events;
    };
    std::vector<ThreadDump> dump;
    uint64_t base;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        base = baseNs_;
        dump.reserve(logs_.size());
        for (const auto &log : logs_) {
            std::lock_guard<std::mutex> log_guard(log->mutex);
            dump.push_back({log->tid, log->ring});
        }
    }

    out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    out << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": 0, \"args\": {\"name\": \"spacetime\"}}";
    auto us = [&](uint64_t ns) {
        // Whole-microsecond ts keeps the output exact (no float
        // rounding) and monotone after the per-thread sort.
        return (ns - base) / 1000;
    };
    for (ThreadDump &t : dump) {
        out << ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", "
               "\"pid\": 1, \"tid\": "
            << t.tid << ", \"args\": {\"name\": \"st-thread-" << t.tid
            << "\"}}";
        std::stable_sort(t.events.begin(), t.events.end(),
                         [](const TraceEvent &a, const TraceEvent &b) {
                             return a.startNs < b.startNs;
                         });
        for (const TraceEvent &e : t.events) {
            out << ",\n  {\"name\": \""
                << detail::jsonEscape(e.name)
                << "\", \"cat\": \"st\", \"ph\": \"X\", \"pid\": 1, "
                   "\"tid\": "
                << t.tid << ", \"ts\": " << us(e.startNs)
                << ", \"dur\": " << std::max<uint64_t>(e.durNs / 1000, 1)
                << "}";
        }
    }
    out << "\n]}\n";
}

bool
TraceSession::writeJsonFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        // One warning per failed path, plus a metric the exit-time
        // flush can't print: a misspelled ST_TRACE directory must not
        // drop the trace wordlessly.
        std::cerr << "obs: cannot write trace file " << path << "\n";
        MetricsRegistry::instance().counter("trace.open_failed").add(1);
        return false;
    }
    writeJson(out);
    return true;
}

} // namespace st::obs
