/**
 * @file
 * Background Prometheus-text snapshot publisher (DESIGN.md Sec. 13).
 *
 * Long-running daemons need a scrape surface without growing an HTTP
 * stack: the exporter periodically renders the global registry's
 * snapshot in the Prometheus text exposition format to a file, using
 * the same write-to-tmp-then-rename discipline as bench --json so a
 * concurrent reader (node_exporter textfile collector, a test, `cat`)
 * never observes a torn file.
 *
 * Activation mirrors ST_TRACE: `ST_METRICS_EXPORT=path[,interval_ms]`
 * read once via fromEnv(). This library sits below st_util, so the
 * env parsing here is deliberately raw getenv (same precedent as
 * trace.cpp).
 */

#ifndef ST_OBS_EXPORT_HPP
#define ST_OBS_EXPORT_HPP

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace st::obs {

class MetricsExporter
{
  public:
    /** Default publish period when the env var names only a path. */
    static constexpr uint64_t kDefaultIntervalMs = 1000;

    /** Floor: re-rendering faster than this is pure contention. */
    static constexpr uint64_t kMinIntervalMs = 10;

    MetricsExporter(std::string path, uint64_t interval_ms);
    ~MetricsExporter();

    MetricsExporter(const MetricsExporter &) = delete;
    MetricsExporter &operator=(const MetricsExporter &) = delete;

    /**
     * Build an exporter from `ST_METRICS_EXPORT=path[,interval_ms]`,
     * or nullptr when the variable is unset/empty. A malformed
     * interval suffix is treated as part of the path (paths may
     * contain commas); the exporter is returned stopped — call
     * start().
     */
    static std::unique_ptr<MetricsExporter> fromEnv();

    /** Launch the publisher thread (idempotent). */
    void start();

    /** Stop the thread after one final publish (idempotent). */
    void stop();

    /**
     * Render one snapshot to the target path atomically
     * (tmp+rename). Returns false when the tmp file cannot be
     * written or renamed; failures tick `metrics.export_failed`.
     */
    bool writeOnce();

    const std::string &path() const { return path_; }
    uint64_t intervalMs() const { return intervalMs_; }

  private:
    void loop();

    std::string path_;
    uint64_t intervalMs_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    bool running_ = false;
    std::thread thread_;
};

} // namespace st::obs

#endif // ST_OBS_EXPORT_HPP
