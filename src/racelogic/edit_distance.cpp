#include "racelogic/edit_distance.hpp"

#include <algorithm>
#include <vector>

namespace st::racelogic {

uint64_t
editDistanceDp(std::string_view a, std::string_view b,
               const EditCosts &costs)
{
    const size_t m = a.size(), n = b.size();
    std::vector<uint64_t> prev(n + 1), curr(n + 1);
    for (size_t j = 0; j <= n; ++j)
        prev[j] = j * costs.insert;
    for (size_t i = 1; i <= m; ++i) {
        curr[0] = i * costs.erase;
        for (size_t j = 1; j <= n; ++j) {
            uint64_t diag =
                prev[j - 1] +
                (a[i - 1] == b[j - 1] ? costs.match : costs.substitute);
            uint64_t del = prev[j] + costs.erase;
            uint64_t ins = curr[j - 1] + costs.insert;
            curr[j] = std::min({diag, del, ins});
        }
        std::swap(prev, curr);
    }
    return prev[n];
}

Network
buildEditDistanceNetwork(std::string_view a, std::string_view b,
                         const EditCosts &costs)
{
    const size_t m = a.size(), n = b.size();
    Network net(1);
    NodeId start = net.input(0);

    auto delayed = [&net](NodeId src, uint64_t c) {
        return c == 0 ? src : net.inc(src, c);
    };

    // cell[i][j] carries the spike arriving at lattice cell (i, j).
    std::vector<std::vector<NodeId>> cell(
        m + 1, std::vector<NodeId>(n + 1, start));
    for (size_t j = 1; j <= n; ++j)
        cell[0][j] = delayed(cell[0][j - 1], costs.insert);
    for (size_t i = 1; i <= m; ++i)
        cell[i][0] = delayed(cell[i - 1][0], costs.erase);

    for (size_t i = 1; i <= m; ++i) {
        for (size_t j = 1; j <= n; ++j) {
            uint64_t diag_cost =
                a[i - 1] == b[j - 1] ? costs.match : costs.substitute;
            std::vector<NodeId> ways{
                delayed(cell[i - 1][j - 1], diag_cost),
                delayed(cell[i - 1][j], costs.erase),
                delayed(cell[i][j - 1], costs.insert),
            };
            cell[i][j] = net.min(std::span<const NodeId>(ways));
        }
    }

    net.setLabel(cell[m][n], "distance");
    net.markOutput(cell[m][n]);
    return net;
}

} // namespace st::racelogic
