#include "racelogic/race_path.hpp"

#include <queue>
#include <stdexcept>

namespace st::racelogic {

Network
buildRaceNetwork(const Graph &g, uint32_t source)
{
    auto order = g.topologicalOrder();
    if (!order)
        throw std::invalid_argument("buildRaceNetwork: graph has a cycle");
    if (source >= g.numVertices())
        throw std::out_of_range("buildRaceNetwork: source out of range");

    Network net(1);
    NodeId start = net.input(0);
    NodeId never = net.config(INF);
    net.setLabel(never, "unreachable");

    // node_of[v]: the s-t node carrying v's arrival wavefront.
    std::vector<NodeId> node_of(g.numVertices(), never);
    node_of[source] = start;

    for (uint32_t v : *order) {
        std::vector<NodeId> arrivals;
        if (v == source)
            arrivals.push_back(start);
        for (uint32_t idx : g.inEdges(v)) {
            const Edge &e = g.edges()[idx];
            // Skip edges from provably unreachable vertices: their
            // wavefront is the shared inf constant; a delayed inf is
            // still inf, so the tap is redundant.
            if (node_of[e.from] == never)
                continue;
            arrivals.push_back(net.inc(node_of[e.from], e.weight));
        }
        if (arrivals.empty())
            continue; // stays mapped to the inf constant
        node_of[v] = arrivals.size() == 1
                         ? arrivals[0]
                         : net.min(std::span<const NodeId>(arrivals));
        net.setLabel(node_of[v], "v" + std::to_string(v));
    }

    for (uint32_t v = 0; v < g.numVertices(); ++v)
        net.markOutput(node_of[v]);
    return net;
}

std::vector<Time>
raceWavefront(const Graph &g, uint32_t source)
{
    if (source >= g.numVertices())
        throw std::out_of_range("raceWavefront: source out of range");

    // Each vertex latches the first spike it sees; a spike leaving v at
    // time t arrives over edge (v, u, w) at t + w. Processing arrivals
    // in time order makes the first arrival the shortest distance —
    // the temporal reading of Dijkstra's invariant.
    std::vector<Time> arrival(g.numVertices(), INF);
    using Item = std::pair<uint64_t, uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> wavefront;
    wavefront.push({0, source});

    while (!wavefront.empty()) {
        auto [t, v] = wavefront.top();
        wavefront.pop();
        if (arrival[v].isFinite())
            continue; // vertex already latched an earlier spike
        arrival[v] = Time(t);
        for (uint32_t idx : g.outEdges(v)) {
            const Edge &e = g.edges()[idx];
            if (arrival[e.to].isInf())
                wavefront.push({t + e.weight, e.to});
        }
    }
    return arrival;
}

} // namespace st::racelogic
