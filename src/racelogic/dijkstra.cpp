#include "racelogic/dijkstra.hpp"

#include <queue>
#include <stdexcept>

namespace st::racelogic {

std::vector<Time>
dijkstra(const Graph &g, uint32_t source)
{
    if (source >= g.numVertices())
        throw std::out_of_range("dijkstra: source out of range");

    std::vector<Time> dist(g.numVertices(), INF);
    using Item = std::pair<uint64_t, uint32_t>; // (distance, vertex)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;

    dist[source] = 0_t;
    heap.push({0, source});
    while (!heap.empty()) {
        auto [d, v] = heap.top();
        heap.pop();
        if (dist[v].isInf() || d != dist[v].value())
            continue; // stale entry
        for (uint32_t idx : g.outEdges(v)) {
            const Edge &e = g.edges()[idx];
            Time candidate = Time(d + e.weight);
            if (candidate < dist[e.to]) {
                dist[e.to] = candidate;
                heap.push({candidate.value(), e.to});
            }
        }
    }
    return dist;
}

} // namespace st::racelogic
