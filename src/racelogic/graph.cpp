#include "racelogic/graph.hpp"

#include <stdexcept>

namespace st::racelogic {

Graph::Graph(size_t n)
    : numVertices_(n), out_(n), in_(n)
{
    if (n == 0)
        throw std::invalid_argument("Graph: needs >= 1 vertex");
}

void
Graph::addEdge(uint32_t from, uint32_t to, uint64_t weight)
{
    if (from >= numVertices_ || to >= numVertices_)
        throw std::out_of_range("Graph: vertex out of range");
    auto index = static_cast<uint32_t>(edges_.size());
    edges_.push_back({from, to, weight});
    out_[from].push_back(index);
    in_[to].push_back(index);
}

const std::vector<uint32_t> &
Graph::outEdges(uint32_t v) const
{
    return out_.at(v);
}

const std::vector<uint32_t> &
Graph::inEdges(uint32_t v) const
{
    return in_.at(v);
}

std::optional<std::vector<uint32_t>>
Graph::topologicalOrder() const
{
    std::vector<size_t> indegree(numVertices_, 0);
    for (const Edge &e : edges_)
        ++indegree[e.to];

    std::vector<uint32_t> order;
    order.reserve(numVertices_);
    for (uint32_t v = 0; v < numVertices_; ++v) {
        if (indegree[v] == 0)
            order.push_back(v);
    }
    for (size_t head = 0; head < order.size(); ++head) {
        for (uint32_t idx : out_[order[head]]) {
            if (--indegree[edges_[idx].to] == 0)
                order.push_back(edges_[idx].to);
        }
    }
    if (order.size() != numVertices_)
        return std::nullopt; // a cycle survived
    return order;
}

Graph
Graph::randomDag(Rng &rng, size_t n, double edge_prob,
                 uint64_t max_weight)
{
    Graph g(n);
    for (uint32_t u = 0; u < n; ++u) {
        for (uint32_t v = u + 1; v < n; ++v) {
            if (rng.chance(edge_prob))
                g.addEdge(u, v, rng.below(max_weight + 1));
        }
    }
    return g;
}

Graph
Graph::grid(Rng &rng, size_t rows, size_t cols, uint64_t max_weight)
{
    if (rows == 0 || cols == 0)
        throw std::invalid_argument("Graph::grid: empty grid");
    Graph g(rows * cols);
    auto id = [cols](size_t r, size_t c) {
        return static_cast<uint32_t>(r * cols + c);
    };
    for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                g.addEdge(id(r, c), id(r, c + 1),
                          rng.below(max_weight + 1));
            if (r + 1 < rows)
                g.addEdge(id(r, c), id(r + 1, c),
                          rng.below(max_weight + 1));
        }
    }
    return g;
}

} // namespace st::racelogic
