/**
 * @file
 * Race-logic shortest paths (paper Sec. V; Madhavan et al. [31]).
 *
 * The encoding: inject one start spike at the source; each edge of weight
 * w delays it by w (an inc / shift register); each vertex takes the min
 * (an OR gate) of its incoming wavefronts. The first time a spike reaches
 * a vertex IS its shortest-path distance — "the time it takes to compute
 * a value is the value" (paper Sec. VI).
 *
 * Two evaluators are provided:
 *  - buildRaceNetwork(): a feedforward s-t Network for a DAG (composable
 *    with the GRL compiler, so the experiment can run in the digital-
 *    circuit domain and count transitions);
 *  - raceWavefront(): an event-driven temporal wavefront for arbitrary
 *    graphs (what the physical circuit does when wired with cycles —
 *    relaxation in time), equivalent to Dijkstra on nonnegative weights.
 */

#ifndef ST_RACELOGIC_RACE_PATH_HPP
#define ST_RACELOGIC_RACE_PATH_HPP

#include "core/network.hpp"
#include "racelogic/graph.hpp"

namespace st::racelogic {

/**
 * Build the feedforward race network of a DAG.
 *
 * The network has one input (the start spike, normally 0). Output v
 * carries vertex v's arrival time: input time + shortest distance from
 * @p source (inf if unreachable). Vertices other than the source with no
 * incoming path read inf.
 *
 * @throws std::invalid_argument if @p g is not acyclic.
 */
Network buildRaceNetwork(const Graph &g, uint32_t source);

/**
 * Event-driven temporal wavefront on an arbitrary nonnegative-weight
 * graph: spikes race along delays, each vertex latches its first
 * arrival. Returns per-vertex arrival times (source at 0).
 */
std::vector<Time> raceWavefront(const Graph &g, uint32_t source);

} // namespace st::racelogic

#endif // ST_RACELOGIC_RACE_PATH_HPP
