/**
 * @file
 * Edit distance in race logic — the original application domain of
 * Madhavan et al. [31] (DNA sequence alignment), reproduced on the s-t
 * substrate.
 *
 * The dynamic-programming lattice of Levenshtein distance is a DAG: cell
 * (i, j) is reached from (i-1, j-1) with the match/substitute cost, and
 * from (i-1, j) / (i, j-1) with the deletion/insertion cost. Racing a
 * single spike through that lattice — delays for costs, min for the DP
 * minimization — makes the spike's arrival time at (|a|, |b|) the edit
 * distance. buildEditDistanceNetwork() emits the lattice as an s-t
 * Network (compilable to GRL); editDistanceDp() is the conventional
 * baseline.
 */

#ifndef ST_RACELOGIC_EDIT_DISTANCE_HPP
#define ST_RACELOGIC_EDIT_DISTANCE_HPP

#include <cstdint>
#include <string_view>

#include "core/network.hpp"

namespace st::racelogic {

/** Integer operation costs for the edit-distance lattice. */
struct EditCosts
{
    uint64_t match = 0;
    uint64_t substitute = 1;
    uint64_t insert = 1;
    uint64_t erase = 1;
};

/** Conventional DP edit distance (the baseline). */
uint64_t editDistanceDp(std::string_view a, std::string_view b,
                        const EditCosts &costs = {});

/**
 * Build the race-logic lattice: one input (start spike) and one output
 * whose time is input + editDistance(a, b).
 */
Network buildEditDistanceNetwork(std::string_view a, std::string_view b,
                                 const EditCosts &costs = {});

} // namespace st::racelogic

#endif // ST_RACELOGIC_EDIT_DISTANCE_HPP
