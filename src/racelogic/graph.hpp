/**
 * @file
 * Weighted directed graphs for the race-logic applications (paper Sec. V,
 * after Madhavan et al. [31]).
 *
 * Race logic computes shortest paths by racing wavefronts through delay
 * elements: an edge of weight w is a w-cycle delay and a vertex is an OR
 * (min) gate. The feedforward network form requires a DAG; the module
 * also provides random DAG/grid generators for the benchmarks.
 */

#ifndef ST_RACELOGIC_GRAPH_HPP
#define ST_RACELOGIC_GRAPH_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace st::racelogic {

/** One weighted directed edge. */
struct Edge
{
    uint32_t from = 0;
    uint32_t to = 0;
    uint64_t weight = 0;

    bool operator==(const Edge &other) const = default;
};

/** A directed graph with nonnegative integer edge weights. */
class Graph
{
  public:
    /** Create a graph with @p n vertices and no edges. */
    explicit Graph(size_t n);

    /** Add a directed edge (parallel edges and self-loops allowed). */
    void addEdge(uint32_t from, uint32_t to, uint64_t weight);

    size_t numVertices() const { return numVertices_; }
    size_t numEdges() const { return edges_.size(); }

    /** All edges, in insertion order. */
    const std::vector<Edge> &edges() const { return edges_; }

    /** Outgoing edge indices of a vertex. */
    const std::vector<uint32_t> &outEdges(uint32_t v) const;

    /** Incoming edge indices of a vertex. */
    const std::vector<uint32_t> &inEdges(uint32_t v) const;

    /**
     * A topological order of the vertices, or nullopt if the graph has a
     * cycle (Kahn's algorithm).
     */
    std::optional<std::vector<uint32_t>> topologicalOrder() const;

    /** True iff acyclic. */
    bool isDag() const { return topologicalOrder().has_value(); }

    /**
     * Random DAG: vertices 0..n-1, each forward pair (u < v) connected
     * with probability @p edge_prob, weights uniform in [0, max_weight].
     */
    static Graph randomDag(Rng &rng, size_t n, double edge_prob,
                           uint64_t max_weight);

    /**
     * Grid DAG: rows x cols lattice with right and down edges, weights
     * uniform in [0, max_weight]. Vertex (r, c) has index r * cols + c.
     */
    static Graph grid(Rng &rng, size_t rows, size_t cols,
                      uint64_t max_weight);

  private:
    size_t numVertices_;
    std::vector<Edge> edges_;
    std::vector<std::vector<uint32_t>> out_, in_;
};

} // namespace st::racelogic

#endif // ST_RACELOGIC_GRAPH_HPP
