/**
 * @file
 * Dijkstra's algorithm — the conventional-baseline comparator for the
 * race-logic shortest-path experiments.
 */

#ifndef ST_RACELOGIC_DIJKSTRA_HPP
#define ST_RACELOGIC_DIJKSTRA_HPP

#include <vector>

#include "core/time.hpp"
#include "racelogic/graph.hpp"

namespace st::racelogic {

/**
 * Single-source shortest path lengths (binary-heap Dijkstra).
 * Unreachable vertices read inf.
 */
std::vector<Time> dijkstra(const Graph &g, uint32_t source);

} // namespace st::racelogic

#endif // ST_RACELOGIC_DIJKSTRA_HPP
