#include "core/function_table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace st {

FunctionTable::FunctionTable(size_t arity)
    : arity_(arity)
{
    if (arity == 0)
        throw std::invalid_argument("FunctionTable: arity must be >= 1");
}

void
FunctionTable::canonicalize(TableRow &row)
{
    for (Time &x : row.inputs) {
        if (x.isFinite() && x > row.output)
            x = INF;
    }
}

bool
FunctionTable::overlaps(const TableRow &a, const TableRow &b)
{
    // Two canonical rows admit a common normalized input iff every
    // coordinate's match sets intersect:
    //   finite vs finite : equal values
    //   finite vs inf    : the finite value exceeds the inf-row's output
    //   inf vs inf       : always (inf itself)
    for (size_t i = 0; i < a.inputs.size(); ++i) {
        Time ai = a.inputs[i], bi = b.inputs[i];
        if (ai.isFinite() && bi.isFinite()) {
            if (ai != bi)
                return false;
        } else if (ai.isFinite()) {
            if (!(ai > b.output))
                return false;
        } else if (bi.isFinite()) {
            if (!(bi > a.output))
                return false;
        }
    }
    return true;
}

std::string
FunctionTable::exactKey(std::span<const Time> u)
{
    std::string key;
    key.reserve(u.size() * sizeof(Time::rep));
    for (Time x : u) {
        Time::rep raw = x.isInf() ? ~Time::rep{0} : x.value();
        key.append(reinterpret_cast<const char *>(&raw), sizeof(raw));
    }
    return key;
}

void
FunctionTable::addRow(std::vector<Time> inputs, Time output)
{
    if (inputs.size() != arity_)
        throw std::invalid_argument("FunctionTable: row arity mismatch");
    if (output.isInf())
        throw std::invalid_argument("FunctionTable: row output must be "
                                    "finite (inf rows are implicit)");

    TableRow row{std::move(inputs), output};
    canonicalize(row);

    bool has_zero = std::any_of(row.inputs.begin(), row.inputs.end(),
                                [](Time x) { return x == 0_t; });
    if (!has_zero) {
        throw std::invalid_argument("FunctionTable: normalized row needs "
                                    "at least one 0 input");
    }

    for (const TableRow &existing : rows_) {
        if (existing == row)
            throw std::invalid_argument("FunctionTable: duplicate row");
        if (existing.output != row.output && overlaps(existing, row)) {
            throw std::invalid_argument("FunctionTable: row conflicts with "
                                        "an existing row (ambiguous table)");
        }
    }

    size_t index = rows_.size();
    bool all_finite = std::all_of(row.inputs.begin(), row.inputs.end(),
                                  [](Time x) { return x.isFinite(); });
    if (all_finite)
        exactIndex_.emplace(exactKey(row.inputs), index);
    else
        closureRows_.push_back(index);
    rows_.push_back(std::move(row));
}

bool
FunctionTable::matches(const TableRow &row, std::span<const Time> u)
{
    if (row.inputs.size() != u.size())
        return false;
    for (size_t i = 0; i < u.size(); ++i) {
        Time ri = row.inputs[i];
        if (ri.isFinite()) {
            if (u[i] != ri)
                return false;
        } else {
            // Causality closure: inf matches inf or anything strictly
            // later than the row's output.
            if (u[i].isFinite() && !(u[i] > row.output))
                return false;
        }
    }
    return true;
}

Time
FunctionTable::evaluate(std::span<const Time> xs) const
{
    if (xs.size() != arity_)
        throw std::invalid_argument("FunctionTable: evaluate arity "
                                    "mismatch");
    Normalized norm = normalize(xs);
    if (norm.shift.isInf())
        return INF; // no input spikes => no output spike

    auto exact = exactIndex_.find(exactKey(norm.values));
    if (exact != exactIndex_.end())
        return rows_[exact->second].output + norm.shift.value();

    for (size_t index : closureRows_) {
        if (matches(rows_[index], norm.values))
            return rows_[index].output + norm.shift.value();
    }
    return INF;
}

Time::rep
FunctionTable::historyBound() const
{
    Time::rep k = 0;
    for (const TableRow &row : rows_) {
        k = std::max(k, row.output.value());
        for (Time x : row.inputs) {
            if (x.isFinite())
                k = std::max(k, x.value());
        }
    }
    return k;
}

FunctionTable
FunctionTable::infer(size_t arity, Time::rep k, const Fn &fn)
{
    FunctionTable table(arity);
    // Enumerate every vector over {0..k, inf}^arity containing a 0.
    // Values are encoded 0..k, with k+1 standing for inf.
    std::vector<Time::rep> digits(arity, 0);
    std::vector<Time> u(arity);
    for (;;) {
        bool has_zero = false;
        for (size_t i = 0; i < arity; ++i) {
            if (digits[i] == k + 1) {
                u[i] = INF;
            } else {
                u[i] = Time(digits[i]);
                has_zero |= digits[i] == 0;
            }
        }
        if (has_zero) {
            Time y = fn(u);
            if (y.isFinite()) {
                // Canonicalization may fold several enumerated vectors
                // onto one row; skip exact duplicates.
                TableRow candidate{u, y};
                canonicalize(candidate);
                bool known = std::any_of(
                    table.rows_.begin(), table.rows_.end(),
                    [&](const TableRow &r) { return r == candidate; });
                if (!known)
                    table.addRow(u, y);
            }
        }
        // Odometer step.
        size_t pos = 0;
        while (pos < arity && digits[pos] == k + 1)
            digits[pos++] = 0;
        if (pos == arity)
            break;
        ++digits[pos];
    }
    return table;
}

FunctionTable
FunctionTable::parse(size_t arity, const std::string &text)
{
    FunctionTable table(arity);
    std::istringstream lines(text);
    std::string line;
    size_t line_no = 0;
    while (std::getline(lines, line)) {
        ++line_no;
        // Strip comments.
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream fields(line);
        std::vector<Time> entries;
        std::string tok;
        while (fields >> tok) {
            if (tok == "inf") {
                entries.push_back(INF);
            } else {
                try {
                    entries.push_back(Time(std::stoull(tok)));
                } catch (const std::exception &) {
                    throw std::invalid_argument(
                        "FunctionTable::parse: bad token '" + tok +
                        "' on line " + std::to_string(line_no));
                }
            }
        }
        if (entries.empty())
            continue; // blank/comment line
        if (entries.size() != arity + 1) {
            throw std::invalid_argument(
                "FunctionTable::parse: expected " +
                std::to_string(arity + 1) + " entries on line " +
                std::to_string(line_no));
        }
        Time output = entries.back();
        entries.pop_back();
        table.addRow(std::move(entries), output);
    }
    return table;
}

std::string
FunctionTable::str() const
{
    std::ostringstream os;
    for (const TableRow &row : rows_) {
        for (Time x : row.inputs)
            os << x << ' ';
        os << row.output << '\n';
    }
    return os.str();
}

} // namespace st
