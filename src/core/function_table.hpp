/**
 * @file
 * Normalized function tables for bounded space-time functions
 * (paper Sec. III.E/III.F, Fig. 7).
 *
 * A bounded s-t function can be specified, analogously to a Boolean truth
 * table, by a finite table of *normalized* rows: each row's inputs contain
 * at least one 0 and its output is finite. Invariance extends the table to
 * the whole of N0^inf: to evaluate an arbitrary input volley, subtract
 * x_min, look up the normalized vector, and add x_min back; a missing
 * entry means inf.
 *
 * Causality closure. Causality (property 2 of s-t functions) forces
 * F(..., x_i, ...) = F(..., inf, ...) whenever x_i > z. Consequently a row
 * entry *strictly greater than the row's output* is indistinguishable from
 * inf, and an inf entry matches any input strictly later than the row's
 * output. This class canonicalizes entries accordingly and uses the
 * closure rule during lookup; without it, a table would disagree with any
 * causal implementation of itself (e.g., the Fig. 9 minterm network).
 */

#ifndef ST_CORE_FUNCTION_TABLE_HPP
#define ST_CORE_FUNCTION_TABLE_HPP

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/algebra.hpp"
#include "core/time.hpp"

namespace st {

/** One normalized table row: input pattern and (finite) output. */
struct TableRow
{
    std::vector<Time> inputs; //!< normalized, canonicalized pattern
    Time output;              //!< finite output for this pattern

    bool operator==(const TableRow &other) const = default;
};

/**
 * A normalized function table defining a bounded s-t function.
 *
 * Rows are canonicalized on insertion (entries greater than the row output
 * become inf) and checked for normal form and consistency; an insertion
 * that would make the table ambiguous (two rows matching one input with
 * different outputs) throws std::invalid_argument.
 */
class FunctionTable
{
  public:
    /** An evaluator signature for black-box s-t functions. */
    using Fn = std::function<Time(std::span<const Time>)>;

    /** Create an empty table of the given input arity (>= 1). */
    explicit FunctionTable(size_t arity);

    /**
     * Add a normalized row.
     *
     * @param inputs  Normalized input pattern (must contain a 0 after
     *                canonicalization, arity must match).
     * @param output  Finite output value.
     * @throws std::invalid_argument on arity mismatch, non-normal rows,
     *         exact duplicates, or inconsistency with existing rows.
     */
    void addRow(std::vector<Time> inputs, Time output);

    /** Number of inputs. */
    size_t arity() const { return arity_; }

    /** Number of rows. */
    size_t rowCount() const { return rows_.size(); }

    /** All rows, in insertion order, canonicalized. */
    const std::vector<TableRow> &rows() const { return rows_; }

    /**
     * Evaluate the defined function on an arbitrary (unnormalized) input.
     *
     * Normalizes, looks up with causality closure, shifts back. Returns
     * inf when no row matches (including the all-inf input).
     */
    Time evaluate(std::span<const Time> xs) const;

    /**
     * The history bound k of the defined function: the largest finite
     * value appearing in any row (inputs or output). 0 for empty tables.
     */
    Time::rep historyBound() const;

    /**
     * Does a canonical row match a normalized input vector?
     *
     * Finite entries must be equal; inf entries match inf or any value
     * strictly greater than the row output (causality closure).
     */
    static bool matches(const TableRow &row, std::span<const Time> u);

    /**
     * Build the table of a black-box bounded s-t function by enumerating
     * every normalized input over the window {0..k, inf}.
     *
     * @param arity  Input arity q.
     * @param k      History window to enumerate (inclusive).
     * @param fn     The function; must behave as a causal, invariant,
     *               bounded s-t function or insertion may throw.
     * @throws std::invalid_argument if fn is inconsistent with causality.
     */
    static FunctionTable infer(size_t arity, Time::rep k, const Fn &fn);

    /**
     * Parse a table from text. Format: one row per line, whitespace
     * separated entries, "inf" for no-spike, last entry is the output.
     * Lines starting with '#' and blank lines are ignored.
     */
    static FunctionTable parse(size_t arity, const std::string &text);

    /** Render the table in the parse() format. */
    std::string str() const;

    bool operator==(const FunctionTable &other) const = default;

  private:
    /** Replace entries greater than the output with inf (causality). */
    static void canonicalize(TableRow &row);

    /** Would two rows match a common normalized input? */
    static bool overlaps(const TableRow &a, const TableRow &b);

    /** Hash key for all-finite rows (exact lookup fast path). */
    static std::string exactKey(std::span<const Time> u);

    size_t arity_;
    std::vector<TableRow> rows_;
    /** Exact-match index for rows without inf entries. */
    std::unordered_map<std::string, size_t> exactIndex_;
    /** Indices of rows containing inf entries (closure scan list). */
    std::vector<size_t> closureRows_;
};

} // namespace st

#endif // ST_CORE_FUNCTION_TABLE_HPP
