#include "core/properties.hpp"

#include <sstream>

#include "core/algebra.hpp"

namespace st {

StFn
fnOf(const Network &net)
{
    if (net.outputs().size() != 1) {
        throw std::invalid_argument("fnOf: network must have exactly one "
                                    "output");
    }
    // Copy the network so the returned closure owns its state.
    return [net](std::span<const Time> xs) {
        return net.evaluate(xs)[0];
    };
}

std::string
volleyStr(std::span<const Time> xs)
{
    std::ostringstream os;
    os << '[';
    for (size_t i = 0; i < xs.size(); ++i) {
        if (i)
            os << ", ";
        os << xs[i];
    }
    os << ']';
    return os.str();
}

namespace {

/**
 * Enumerate every volley over {0..k, inf}^arity and invoke visit(volley).
 * visit returns an empty string to continue or a counterexample message.
 */
PropertyReport
enumerate(size_t arity, Time::rep k,
          const std::function<std::string(std::span<const Time>)> &visit)
{
    std::vector<Time::rep> digits(arity, 0);
    std::vector<Time> u(arity);
    for (;;) {
        for (size_t i = 0; i < arity; ++i)
            u[i] = digits[i] == k + 1 ? INF : Time(digits[i]);
        std::string msg = visit(u);
        if (!msg.empty())
            return {false, msg};
        size_t pos = 0;
        while (pos < arity && digits[pos] == k + 1)
            digits[pos++] = 0;
        if (pos == arity)
            return {true, ""};
        ++digits[pos];
    }
}

std::string
causalityViolation(const StFn &fn, std::span<const Time> u)
{
    std::vector<Time> x(u.begin(), u.end());
    Time z = fn(x);
    if (z.isFinite()) {
        Time xmin = minOf(x);
        if (z < xmin) {
            return "output " + z.str() + " precedes earliest input for " +
                   volleyStr(x) + " (no spontaneous spikes)";
        }
    }
    for (size_t i = 0; i < x.size(); ++i) {
        if (x[i].isFinite() && x[i] > z) {
            Time saved = x[i];
            x[i] = INF;
            Time z2 = fn(x);
            x[i] = saved;
            if (z2 != z) {
                return "input " + std::to_string(i) + " of " +
                       volleyStr(x) + " is later than output " + z.str() +
                       " yet replacing it with inf gives " + z2.str();
            }
        }
    }
    return "";
}

std::string
invarianceViolation(const StFn &fn, std::span<const Time> u,
                    Time::rep shifts)
{
    std::vector<Time> x(u.begin(), u.end());
    Time z = fn(x);
    for (Time::rep c = 1; c <= shifts; ++c) {
        std::vector<Time> xs = shifted(x, c);
        Time zs = fn(xs);
        if (zs != z + c) {
            return "F(" + volleyStr(x) + ") = " + z.str() + " but F(" +
                   volleyStr(xs) + ") = " + zs.str() + " (expected " +
                   (z + c).str() + ")";
        }
    }
    return "";
}

} // namespace

PropertyReport
checkCausality(size_t arity, Time::rep k, const StFn &fn)
{
    return enumerate(arity, k, [&](std::span<const Time> u) {
        return causalityViolation(fn, u);
    });
}

PropertyReport
checkInvariance(size_t arity, Time::rep k, const StFn &fn,
                Time::rep shifts)
{
    return enumerate(arity, k, [&](std::span<const Time> u) {
        return invarianceViolation(fn, u, shifts);
    });
}

PropertyReport
checkBoundedHistory(size_t arity, Time::rep k, const StFn &fn,
                    Time::rep window)
{
    return enumerate(arity, k, [&](std::span<const Time> u) -> std::string {
        std::vector<Time> x(u.begin(), u.end());
        Time xmax = maxFiniteOf(x);
        if (xmax.isInf() || xmax.value() <= window)
            return "";
        Time cutoff = xmax - window; // entries strictly before are stale
        Time z = fn(x);
        for (size_t i = 0; i < x.size(); ++i) {
            if (x[i].isFinite() && x[i] < cutoff) {
                Time saved = x[i];
                x[i] = INF;
                Time z2 = fn(x);
                x[i] = saved;
                if (z2 != z) {
                    return "stale input " + std::to_string(i) + " of " +
                           volleyStr(x) + " (window " +
                           std::to_string(window) + ") changes output " +
                           z.str() + " -> " + z2.str();
                }
            }
        }
        return "";
    });
}

PropertyReport
checkCausalityObserved(std::span<const Time> in,
                       std::span<const Time> out)
{
    const Time min_in = minOf(in);
    const Time min_out = minOf(out);
    if (min_out < min_in) {
        return {false, "output " + min_out.str() +
                           " precedes earliest input " + min_in.str()};
    }
    return {true, ""};
}

PropertyReport
checkBoundedObserved(std::span<const Time> in, std::span<const Time> out,
                     Time::rep window)
{
    const Time max_out = maxFiniteOf(out);
    if (max_out.isInf())
        return {true, ""};
    const Time max_in = maxFiniteOf(in);
    if (max_in.isInf()) {
        return {false, "finite output " + max_out.str() +
                           " from an all-quiet input"};
    }
    // Saturating bound: max_in + window is inf-safe by Time::operator+.
    if (max_out > max_in + window) {
        return {false, "output " + max_out.str() +
                           " trails latest input " + max_in.str() +
                           " by more than window " +
                           std::to_string(window)};
    }
    return {true, ""};
}

PropertyReport
checkShiftConsistency(std::span<const Time> base_out,
                      std::span<const Time> shifted_out, Time::rep c)
{
    if (base_out.size() != shifted_out.size()) {
        return {false, "output widths differ: " +
                           std::to_string(base_out.size()) + " vs " +
                           std::to_string(shifted_out.size())};
    }
    for (size_t i = 0; i < base_out.size(); ++i) {
        const Time expected = base_out[i] + c;
        if (shifted_out[i] != expected) {
            return {false, "line " + std::to_string(i) +
                               ": shifted run gives " +
                               shifted_out[i].str() + ", expected " +
                               expected.str() + " (base " +
                               base_out[i].str() + " + " +
                               std::to_string(c) + ")"};
        }
    }
    return {true, ""};
}

PropertyReport
checkMonotonicity(size_t arity, Time::rep k, const StFn &fn)
{
    return enumerate(arity, k, [&](std::span<const Time> u) -> std::string {
        std::vector<Time> x(u.begin(), u.end());
        Time z = fn(x);
        // Delay each input by one step (finite -> +1, and finite ->
        // inf as the limit case); the output must not get earlier.
        for (size_t i = 0; i < x.size(); ++i) {
            if (x[i].isInf())
                continue;
            Time saved = x[i];
            for (Time later : {saved + 1, INF}) {
                x[i] = later;
                Time z2 = fn(x);
                if (z2 < z) {
                    std::string msg =
                        "delaying input " + std::to_string(i) + " of " +
                        volleyStr(std::vector<Time>(u.begin(), u.end())) +
                        " to " + later.str() + " made the output " +
                        "earlier: " + z.str() + " -> " + z2.str();
                    x[i] = saved;
                    return msg;
                }
            }
            x[i] = saved;
        }
        return "";
    });
}

namespace {

std::vector<Time>
randomVolley(size_t arity, Time::rep limit, Rng &rng, double p_inf)
{
    std::vector<Time> x(arity);
    for (Time &v : x)
        v = rng.chance(p_inf) ? INF : Time(rng.below(limit + 1));
    return x;
}

} // namespace

PropertyReport
checkCausalityRandom(size_t arity, Time::rep limit, const StFn &fn,
                     Rng &rng, size_t trials, double p_inf)
{
    for (size_t t = 0; t < trials; ++t) {
        std::vector<Time> x = randomVolley(arity, limit, rng, p_inf);
        std::string msg = causalityViolation(fn, x);
        if (!msg.empty())
            return {false, msg};
    }
    return {true, ""};
}

PropertyReport
checkInvarianceRandom(size_t arity, Time::rep limit, const StFn &fn,
                      Rng &rng, size_t trials, double p_inf)
{
    for (size_t t = 0; t < trials; ++t) {
        std::vector<Time> x = randomVolley(arity, limit, rng, p_inf);
        std::string msg = invarianceViolation(fn, x, 2);
        if (!msg.empty())
            return {false, msg};
    }
    return {true, ""};
}

} // namespace st
