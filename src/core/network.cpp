#include "core/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/eval_plan.hpp"
#include "core/properties.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace st {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Input:
        return "input";
      case Op::Config:
        return "config";
      case Op::Inc:
        return "inc";
      case Op::Min:
        return "min";
      case Op::Max:
        return "max";
      case Op::Lt:
        return "lt";
    }
    return "?";
}

Network::Network(size_t num_inputs)
    : numInputs_(num_inputs)
{
    nodes_.reserve(num_inputs);
    for (size_t i = 0; i < num_inputs; ++i)
        nodes_.push_back(Node{Op::Input, 0, INF, {}});
    labels_.resize(num_inputs);
}

Network::Network(const Network &other)
    : nodes_(other.nodes_), labels_(other.labels_),
      outputs_(other.outputs_), numInputs_(other.numInputs_)
{
}

Network &
Network::operator=(const Network &other)
{
    if (this != &other) {
        nodes_ = other.nodes_;
        labels_ = other.labels_;
        outputs_ = other.outputs_;
        numInputs_ = other.numInputs_;
        invalidatePlan();
    }
    return *this;
}

Network::Network(Network &&other) noexcept
    : nodes_(std::move(other.nodes_)),
      labels_(std::move(other.labels_)),
      outputs_(std::move(other.outputs_)),
      numInputs_(other.numInputs_),
      plan_(other.plan_.exchange(nullptr, std::memory_order_acq_rel))
{
}

Network &
Network::operator=(Network &&other) noexcept
{
    if (this != &other) {
        nodes_ = std::move(other.nodes_);
        labels_ = std::move(other.labels_);
        outputs_ = std::move(other.outputs_);
        numInputs_ = other.numInputs_;
        delete plan_.exchange(
            other.plan_.exchange(nullptr, std::memory_order_acq_rel),
            std::memory_order_acq_rel);
    }
    return *this;
}

Network::~Network()
{
    delete plan_.load(std::memory_order_relaxed);
}

void
Network::invalidatePlan()
{
    delete plan_.exchange(nullptr, std::memory_order_acq_rel);
}

const EvalPlan &
Network::compile() const
{
    if (const EvalPlan *hit = plan_.load(std::memory_order_acquire)) {
        ST_OBS_ADD("eval.compile.cache_hit", 1);
        return *hit;
    }
    ST_OBS_ADD("eval.compile.cache_miss", 1);
    auto *fresh = new EvalPlan(buildEvalPlan(*this));
    // Concurrent evaluators may race to compile; the CAS picks one
    // winner and losers discard their (identical) build.
    const EvalPlan *expected = nullptr;
    if (plan_.compare_exchange_strong(expected, fresh,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return *fresh;
    }
    delete fresh;
    return *expected;
}

bool
Network::isCompiled() const
{
    return plan_.load(std::memory_order_acquire) != nullptr;
}

NodeId
Network::input(size_t i) const
{
    if (i >= numInputs_)
        throw std::out_of_range("Network: no such input");
    return static_cast<NodeId>(i);
}

void
Network::checkId(NodeId id) const
{
    if (id >= nodes_.size())
        throw std::out_of_range("Network: reference to nonexistent node");
}

NodeId
Network::addNode(Node node)
{
    for (NodeId src : node.fanin)
        checkId(src);
    nodes_.push_back(std::move(node));
    labels_.emplace_back();
    invalidatePlan();
    return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId
Network::config(Time initial)
{
    return addNode(Node{Op::Config, 0, initial, {}});
}

void
Network::setConfig(NodeId id, Time value)
{
    checkId(id);
    if (nodes_[id].op != Op::Config)
        throw std::invalid_argument("Network: setConfig on non-config node");
    nodes_[id].configValue = value;
}

Time
Network::getConfig(NodeId id) const
{
    checkId(id);
    if (nodes_[id].op != Op::Config)
        throw std::invalid_argument("Network: getConfig on non-config node");
    return nodes_[id].configValue;
}

NodeId
Network::inc(NodeId src, Time::rep c)
{
    return addNode(Node{Op::Inc, c, INF, {src}});
}

NodeId
Network::min(NodeId a, NodeId b)
{
    return addNode(Node{Op::Min, 0, INF, {a, b}});
}

NodeId
Network::min(std::span<const NodeId> srcs)
{
    if (srcs.empty())
        throw std::invalid_argument("Network: min needs >= 1 operand");
    return addNode(Node{Op::Min, 0, INF, {srcs.begin(), srcs.end()}});
}

NodeId
Network::max(NodeId a, NodeId b)
{
    return addNode(Node{Op::Max, 0, INF, {a, b}});
}

NodeId
Network::max(std::span<const NodeId> srcs)
{
    if (srcs.empty())
        throw std::invalid_argument("Network: max needs >= 1 operand");
    return addNode(Node{Op::Max, 0, INF, {srcs.begin(), srcs.end()}});
}

NodeId
Network::lt(NodeId a, NodeId b)
{
    return addNode(Node{Op::Lt, 0, INF, {a, b}});
}

void
Network::markOutput(NodeId id)
{
    checkId(id);
    outputs_.push_back(id);
    invalidatePlan();
}

size_t
Network::countOf(Op op) const
{
    return static_cast<size_t>(
        std::count_if(nodes_.begin(), nodes_.end(),
                      [op](const Node &n) { return n.op == op; }));
}

size_t
Network::depth() const
{
    std::vector<size_t> d(nodes_.size(), 0);
    size_t result = 0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const Node &n = nodes_[i];
        if (n.op == Op::Input || n.op == Op::Config)
            continue;
        size_t best = 0;
        for (NodeId src : n.fanin)
            best = std::max(best, d[src]);
        d[i] = best + 1;
        result = std::max(result, d[i]);
    }
    return result;
}

Time::rep
Network::totalIncStages() const
{
    Time::rep total = 0;
    for (const Node &n : nodes_) {
        if (n.op == Op::Inc)
            total += n.delay;
    }
    return total;
}

std::vector<Time>
Network::evaluateAllInterpreted(std::span<const Time> inputs) const
{
    if (inputs.size() != numInputs_)
        throw std::invalid_argument("Network: evaluate arity mismatch");
    std::vector<Time> value(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const Node &n = nodes_[i];
        switch (n.op) {
          case Op::Input:
            value[i] = inputs[i];
            break;
          case Op::Config:
            value[i] = n.configValue;
            break;
          case Op::Inc:
            value[i] = value[n.fanin[0]] + n.delay;
            break;
          case Op::Min: {
            Time m = INF;
            for (NodeId src : n.fanin)
                m = tmin(m, value[src]);
            value[i] = m;
            break;
          }
          case Op::Max: {
            Time m = 0_t;
            for (NodeId src : n.fanin)
                m = tmax(m, value[src]);
            value[i] = m;
            break;
          }
          case Op::Lt:
            value[i] = tlt(value[n.fanin[0]], value[n.fanin[1]]);
            break;
        }
    }
    return value;
}

std::vector<Time>
Network::evaluateInterpreted(std::span<const Time> inputs) const
{
    std::vector<Time> value = evaluateAllInterpreted(inputs);
    std::vector<Time> out;
    out.reserve(outputs_.size());
    for (NodeId id : outputs_)
        out.push_back(value[id]);
    return out;
}

namespace {

/** Per-thread arena so evaluate() allocates nothing once warm. */
EvalScratch &
threadScratch()
{
    static thread_local EvalScratch scratch;
    return scratch;
}

/**
 * True iff any of the plan's live Config nodes currently holds a
 * finite value. A finite configured constant legitimately produces
 * output spikes earlier than any input, so the runtime causality guard
 * only applies to config-free (or all-inf-config) evaluations. Config
 * values are live (setConfig does not recompile), hence the per-call
 * rescan of the — typically tiny — configNodes list.
 */
bool
hasFiniteConfig(std::span<const Node> nodes,
                std::span<const uint32_t> config_nodes)
{
    for (uint32_t id : config_nodes) {
        if (nodes[id].configValue.isFinite())
            return true;
    }
    return false;
}

} // namespace

std::vector<Time>
Network::evaluateAll(std::span<const Time> inputs) const
{
    if (inputs.size() != numInputs_)
        throw std::invalid_argument("Network: evaluate arity mismatch");
    std::vector<Time> value;
    compile().full.run(nodes_, inputs, value);
    return value;
}

void
Network::evaluateInto(std::span<const Time> inputs, EvalScratch &scratch,
                      std::vector<Time> &out) const
{
    if (inputs.size() != numInputs_)
        throw std::invalid_argument("Network: evaluate arity mismatch");
    const EvalPlan &plan = compile();
    const EvalProgram &prog = plan.live;
    prog.run(nodes_, inputs, scratch.values);
    out.resize(prog.outSlot.size());
    for (size_t k = 0; k < prog.outSlot.size(); ++k)
        out[k] = scratch.values[prog.outSlot[k]];
    if (fault::guardActive(fault::kGuardCausality) &&
        !hasFiniteConfig(nodes_, plan.configNodes)) {
        PropertyReport r = checkCausalityObserved(inputs, out);
        if (!r.holds)
            fault::reportViolation("causality", "core.evaluate",
                                   r.counterexample);
    }
}

std::vector<Time>
Network::evaluate(std::span<const Time> inputs) const
{
    // Evaluate into the per-thread scratch and gather the outputs
    // directly — no full node-value vector is materialized.
    std::vector<Time> out;
    evaluateInto(inputs, threadScratch(), out);
    return out;
}

std::vector<std::vector<Time>>
Network::evaluateBatch(std::span<const std::vector<Time>> batch,
                       size_t nthreads) const
{
    // One compile up front (not one race per lane), then lane-blocked
    // execution: each unit of work is a block of kEvalBlockLanes
    // volleys pushed through the program together. The block layout is
    // a pure function of the batch, so results are bit-identical at
    // every thread count.
    ST_TRACE_SPAN("eval.batch");
    ST_OBS_ADD("eval.batch.volleys", batch.size());
    const EvalPlan &plan = compile();
    const EvalProgram &prog = plan.live;
    const bool guard_causality =
        fault::guardActive(fault::kGuardCausality) &&
        !hasFiniteConfig(nodes_, plan.configNodes);
    std::vector<std::vector<Time>> out(batch.size());
    const size_t blocks =
        (batch.size() + kEvalBlockLanes - 1) / kEvalBlockLanes;
    size_t lanes = nthreads == 0 ? ThreadPool::defaultThreads()
                                 : nthreads;
    ThreadPool::shared().parallelFor(
        0, blocks, 1,
        [&](size_t blk) {
            const size_t begin = blk * kEvalBlockLanes;
            const size_t count =
                std::min(kEvalBlockLanes, batch.size() - begin);
            for (size_t l = 0; l < count; ++l) {
                if (batch[begin + l].size() != numInputs_)
                    throw std::invalid_argument(
                        "Network: evaluate arity mismatch");
            }
            EvalScratch &scratch = threadScratch();
            prog.runBlock(nodes_, batch.subspan(begin, count),
                          scratch.values);
            for (size_t l = 0; l < count; ++l) {
                std::vector<Time> &o = out[begin + l];
                o.resize(prog.outSlot.size());
                for (size_t k = 0; k < prog.outSlot.size(); ++k) {
                    o[k] = scratch.values[size_t{prog.outSlot[k]} *
                                              count +
                                          l];
                }
                if (guard_causality) {
                    PropertyReport r =
                        checkCausalityObserved(batch[begin + l], o);
                    if (!r.holds) {
                        fault::reportViolation(
                            "causality",
                            "core.evaluateBatch.volley" +
                                std::to_string(begin + l),
                            r.counterexample);
                    }
                }
            }
        },
        lanes);
    return out;
}

std::vector<NodeId>
Network::append(const Network &sub, std::span<const NodeId> actuals)
{
    if (actuals.size() != sub.numInputs())
        throw std::invalid_argument("Network: append input count mismatch");
    for (NodeId id : actuals)
        checkId(id);

    std::vector<NodeId> map(sub.nodes_.size());
    for (size_t i = 0; i < sub.nodes_.size(); ++i) {
        const Node &n = sub.nodes_[i];
        if (n.op == Op::Input) {
            map[i] = actuals[i];
            continue;
        }
        Node copy = n;
        for (NodeId &src : copy.fanin)
            src = map[src];
        map[i] = addNode(std::move(copy));
        if (!sub.labels_[i].empty())
            labels_.back() = sub.labels_[i];
    }

    std::vector<NodeId> outs;
    outs.reserve(sub.outputs_.size());
    for (NodeId id : sub.outputs_)
        outs.push_back(map[id]);
    return outs;
}

void
Network::setLabel(NodeId id, std::string label)
{
    checkId(id);
    labels_[id] = std::move(label);
}

const std::string &
Network::label(NodeId id) const
{
    checkId(id);
    return labels_[id];
}

} // namespace st
