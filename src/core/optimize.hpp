/**
 * @file
 * Structural optimization passes for space-time networks.
 *
 * The paper's constructions are deliberately regular (one minterm per
 * table row, one fanout tap per response step), which leaves easy
 * redundancy on the table: identical inc taps feeding several minterms,
 * repeated min/max pairs inside sorters built over shared taps, and
 * blocks whose output nobody reads. These passes clean that up while
 * provably preserving the computed function (tests sweep equivalence):
 *
 *  - shareCommonSubexpressions(): hash-consing. Two blocks with the same
 *    op and the same operand set compute the same value (min/max are
 *    commutative, so operands are canonicalized by sorting; lt is
 *    ordered). Config nodes are never merged — they are independently
 *    programmable state.
 *  - eliminateDeadNodes(): drops blocks not reachable from any output.
 *  - optimize(): CSE followed by DCE.
 *
 * bench_ablation quantifies what these passes save on each paper
 * construction.
 */

#ifndef ST_CORE_OPTIMIZE_HPP
#define ST_CORE_OPTIMIZE_HPP

#include "core/network.hpp"

namespace st {

/** Merge structurally identical blocks (never merges Config nodes). */
Network shareCommonSubexpressions(const Network &net);

/**
 * Factor parallel delay taps into shared chains.
 *
 * A Fig. 11 fanout drives many inc taps from one source (delays d1 <
 * d2 < ... < dk); implemented naively in GRL that costs sum(d_i)
 * flipflop stages. Rewriting the taps as a chain — inc(x, d1), then
 * +(d2-d1), then +(d3-d2)... — yields identical event times (saturating
 * addition is associative) at only max(d_i) stages. This is exactly the
 * shift-register energy problem the paper flags in Sec. V.B
 * ("energy consumption may increase significantly due to the clocked
 * shift registers ... further research is required to ... perhaps
 * minimize this effect"); bench_ablation quantifies the savings.
 */
Network factorDelays(const Network &net);

/** Remove blocks unreachable from the outputs (inputs always remain). */
Network eliminateDeadNodes(const Network &net);

/** CSE, then delay factoring, then DCE. */
Network optimize(const Network &net);

} // namespace st

#endif // ST_CORE_OPTIMIZE_HPP
