#include "core/synthesis.hpp"

#include <stdexcept>

#include "core/optimize.hpp"

namespace st {

NodeId
emitMaxFromMinLt(Network &net, NodeId a, NodeId b)
{
    // max(a,b) = min( lt(b, lt(b,a)), lt(a, lt(a,b)) ).
    //
    // lt(b, lt(b,a)) fires at b exactly when a <= b: if b < a the inner
    // gate re-emits b and ties block the outer gate; otherwise the inner
    // gate is quiet (inf) and b passes. Symmetrically for the other arm,
    // so the min picks the later of the two inputs, and inf absorbs.
    NodeId ba = net.lt(b, a);
    NodeId arm1 = net.lt(b, ba);
    NodeId ab = net.lt(a, b);
    NodeId arm2 = net.lt(a, ab);
    return net.min(arm1, arm2);
}

Network
maxFromMinLtNetwork()
{
    Network net(2);
    NodeId out = emitMaxFromMinLt(net, net.input(0), net.input(1));
    net.setLabel(out, "max");
    net.markOutput(out);
    return net;
}

Network
lowerMax(const Network &net)
{
    Network out(net.numInputs());
    std::vector<NodeId> map(net.size());

    const auto &nodes = net.nodes();
    for (size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        switch (n.op) {
          case Op::Input:
            map[i] = static_cast<NodeId>(i);
            break;
          case Op::Config:
            map[i] = out.config(n.configValue);
            break;
          case Op::Inc:
            map[i] = out.inc(map[n.fanin[0]], n.delay);
            break;
          case Op::Min: {
            std::vector<NodeId> srcs;
            srcs.reserve(n.fanin.size());
            for (NodeId src : n.fanin)
                srcs.push_back(map[src]);
            map[i] = out.min(srcs);
            break;
          }
          case Op::Max: {
            NodeId acc = map[n.fanin[0]];
            for (size_t j = 1; j < n.fanin.size(); ++j)
                acc = emitMaxFromMinLt(out, acc, map[n.fanin[j]]);
            if (n.fanin.size() == 1) {
                // Unary max is the identity; model it as a zero-delay inc
                // so the node exists and ids stay distinct.
                acc = out.inc(acc, 0);
            }
            map[i] = acc;
            break;
          }
          case Op::Lt:
            map[i] = out.lt(map[n.fanin[0]], map[n.fanin[1]]);
            break;
        }
        if (!net.label(static_cast<NodeId>(i)).empty())
            out.setLabel(map[i], net.label(static_cast<NodeId>(i)));
    }

    for (NodeId id : net.outputs())
        out.markOutput(map[id]);
    return out;
}

Network
synthesizeMinterms(const FunctionTable &table,
                   const SynthesisOptions &options)
{
    Network net(table.arity());

    auto delayed = [&](NodeId src, Time::rep c) {
        if (c == 0 && options.skipZeroIncs)
            return src;
        return net.inc(src, c);
    };

    std::vector<NodeId> minterms;
    minterms.reserve(table.rowCount());

    for (const TableRow &row : table.rows()) {
        // Delay each finite input so that, on an exact (shifted) match,
        // every delayed value equals the shifted row output y_j + s.
        std::vector<NodeId> matched;   // feed both max and min sides
        std::vector<NodeId> inf_taps;  // inf entries: raw, min side only
        for (size_t i = 0; i < row.inputs.size(); ++i) {
            Time entry = row.inputs[i];
            NodeId in = net.input(i);
            if (entry.isFinite()) {
                Time::rep delta = row.output.value() - entry.value();
                matched.push_back(delayed(in, delta));
            } else {
                inf_taps.push_back(in);
            }
        }

        // matched is never empty: a normalized row contains a 0.
        NodeId mx;
        if (matched.size() == 1) {
            mx = matched[0];
        } else if (options.useNativeMax) {
            mx = net.max(std::span<const NodeId>(matched));
        } else {
            mx = matched[0];
            for (size_t j = 1; j < matched.size(); ++j)
                mx = emitMaxFromMinLt(net, mx, matched[j]);
        }

        NodeId mn_finite =
            matched.size() == 1
                ? matched[0]
                : net.min(std::span<const NodeId>(matched));
        // The strictness offset: on a match the min side must be one unit
        // later than the max side so the lt gate opens.
        NodeId mn = net.inc(mn_finite, 1);
        if (!inf_taps.empty()) {
            // inf entries join *after* the +1: an input at exactly the
            // row output ties the lt shut (no match), one later passes.
            std::vector<NodeId> parts{mn};
            parts.insert(parts.end(), inf_taps.begin(), inf_taps.end());
            mn = net.min(std::span<const NodeId>(parts));
        }

        minterms.push_back(net.lt(mx, mn));
    }

    NodeId out;
    if (minterms.empty()) {
        // Empty table: the constant-inf function (never spikes).
        out = net.config(INF);
    } else if (minterms.size() == 1) {
        out = minterms[0];
    } else {
        out = net.min(std::span<const NodeId>(minterms));
    }
    net.setLabel(out, "y");
    net.markOutput(out);
    return net;
}

Network
synthesizeMultiOutput(std::span<const FunctionTable> tables,
                      const SynthesisOptions &options)
{
    if (tables.empty())
        throw std::invalid_argument("synthesizeMultiOutput: no tables");
    const size_t arity = tables[0].arity();
    for (const FunctionTable &t : tables) {
        if (t.arity() != arity) {
            throw std::invalid_argument("synthesizeMultiOutput: tables "
                                        "must share one arity");
        }
    }

    Network net(arity);
    std::vector<NodeId> inputs;
    inputs.reserve(arity);
    for (size_t i = 0; i < arity; ++i)
        inputs.push_back(net.input(i));

    size_t k = 0;
    for (const FunctionTable &t : tables) {
        Network one = synthesizeMinterms(t, options);
        auto outs = net.append(one, inputs);
        net.setLabel(outs[0], "y" + std::to_string(k++));
        net.markOutput(outs[0]);
    }
    // Shared taps and identical minterms across outputs merge here.
    return optimize(net);
}

} // namespace st
