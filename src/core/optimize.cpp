#include "core/optimize.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace st {

namespace {

/** Structural key of a (non-config, non-input) node after remapping. */
struct NodeKey
{
    Op op;
    Time::rep delay;
    std::vector<NodeId> fanin; // canonicalized

    bool
    operator<(const NodeKey &other) const
    {
        if (op != other.op)
            return op < other.op;
        if (delay != other.delay)
            return delay < other.delay;
        return fanin < other.fanin;
    }
};

} // namespace

Network
shareCommonSubexpressions(const Network &net)
{
    Network out(net.numInputs());
    std::vector<NodeId> map(net.size());
    std::map<NodeKey, NodeId> seen;

    const auto &nodes = net.nodes();
    for (size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        if (n.op == Op::Input) {
            map[i] = static_cast<NodeId>(i);
            continue;
        }
        if (n.op == Op::Config) {
            // Programmable state: never merged, always copied.
            map[i] = out.config(n.configValue);
            continue;
        }

        NodeKey key{n.op, n.op == Op::Inc ? n.delay : 0, {}};
        key.fanin.reserve(n.fanin.size());
        for (NodeId src : n.fanin)
            key.fanin.push_back(map[src]);
        if (n.op == Op::Min || n.op == Op::Max) {
            // Commutative and idempotent: canonicalize and dedupe.
            std::sort(key.fanin.begin(), key.fanin.end());
            key.fanin.erase(
                std::unique(key.fanin.begin(), key.fanin.end()),
                key.fanin.end());
        }

        auto hit = seen.find(key);
        if (hit != seen.end()) {
            map[i] = hit->second;
            continue;
        }

        // Idempotence: a min/max whose operands all merged into one
        // node IS that node — forward instead of materializing.
        if ((n.op == Op::Min || n.op == Op::Max) &&
            key.fanin.size() == 1) {
            map[i] = key.fanin[0];
            continue;
        }

        NodeId id = 0;
        switch (n.op) {
          case Op::Inc:
            id = out.inc(key.fanin[0], n.delay);
            break;
          case Op::Min:
            id = out.min(std::span<const NodeId>(key.fanin));
            break;
          case Op::Max:
            id = out.max(std::span<const NodeId>(key.fanin));
            break;
          case Op::Lt:
            id = out.lt(key.fanin[0], key.fanin[1]);
            break;
          case Op::Input:
          case Op::Config:
            break; // handled above
        }
        seen.emplace(std::move(key), id);
        map[i] = id;
        if (!net.label(static_cast<NodeId>(i)).empty())
            out.setLabel(id, net.label(static_cast<NodeId>(i)));
    }

    for (NodeId o : net.outputs())
        out.markOutput(map[o]);
    return out;
}

Network
eliminateDeadNodes(const Network &net)
{
    const auto &nodes = net.nodes();
    std::vector<bool> live(net.size(), false);
    // Inputs always survive (they define the interface).
    for (size_t i = 0; i < net.numInputs(); ++i)
        live[i] = true;
    for (NodeId o : net.outputs())
        live[o] = true;
    // One reverse sweep suffices: fanin ids are smaller than the node's.
    for (size_t i = nodes.size(); i-- > 0;) {
        if (!live[i])
            continue;
        for (NodeId src : nodes[i].fanin)
            live[src] = true;
    }

    Network out(net.numInputs());
    std::vector<NodeId> map(net.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
        if (!live[i])
            continue;
        const Node &n = nodes[i];
        if (n.op == Op::Input) {
            map[i] = static_cast<NodeId>(i);
            continue;
        }
        Node copy = n;
        for (NodeId &src : copy.fanin)
            src = map[src];
        switch (n.op) {
          case Op::Config:
            map[i] = out.config(n.configValue);
            break;
          case Op::Inc:
            map[i] = out.inc(copy.fanin[0], n.delay);
            break;
          case Op::Min:
            map[i] = out.min(std::span<const NodeId>(copy.fanin));
            break;
          case Op::Max:
            map[i] = out.max(std::span<const NodeId>(copy.fanin));
            break;
          case Op::Lt:
            map[i] = out.lt(copy.fanin[0], copy.fanin[1]);
            break;
          case Op::Input:
            break;
        }
        if (!net.label(static_cast<NodeId>(i)).empty())
            out.setLabel(map[i], net.label(static_cast<NodeId>(i)));
    }
    for (NodeId o : net.outputs())
        out.markOutput(map[o]);
    return out;
}

Network
factorDelays(const Network &net)
{
    const auto &nodes = net.nodes();

    // Group inc nodes by source; collect each group's delay set.
    std::map<NodeId, std::vector<Time::rep>> delays_of;
    for (const Node &n : nodes) {
        if (n.op == Op::Inc && n.delay > 0)
            delays_of[n.fanin[0]].push_back(n.delay);
    }
    for (auto &[src, delays] : delays_of) {
        std::sort(delays.begin(), delays.end());
        delays.erase(std::unique(delays.begin(), delays.end()),
                     delays.end());
    }

    Network out(net.numInputs());
    std::vector<NodeId> map(net.size());
    // chain_of[src][d] = node carrying src + d in the rebuilt network.
    std::map<NodeId, std::map<Time::rep, NodeId>> chain_of;

    auto chainNode = [&](NodeId original_src, Time::rep delay) {
        auto &chain = chain_of[original_src];
        auto hit = chain.find(delay);
        if (hit != chain.end())
            return hit->second;
        // Emit the whole ascending chain for this source on first use;
        // the source is already mapped (its id precedes every tap).
        NodeId prev = map[original_src];
        Time::rep at = 0;
        for (Time::rep d : delays_of[original_src]) {
            prev = out.inc(prev, d - at);
            at = d;
            chain.emplace(d, prev);
        }
        return chain.at(delay);
    };

    for (size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        switch (n.op) {
          case Op::Input:
            map[i] = static_cast<NodeId>(i);
            break;
          case Op::Config:
            map[i] = out.config(n.configValue);
            break;
          case Op::Inc:
            map[i] = n.delay == 0 ? out.inc(map[n.fanin[0]], 0)
                                  : chainNode(n.fanin[0], n.delay);
            break;
          case Op::Min:
          case Op::Max: {
            std::vector<NodeId> srcs;
            srcs.reserve(n.fanin.size());
            for (NodeId src : n.fanin)
                srcs.push_back(map[src]);
            map[i] = n.op == Op::Min
                         ? out.min(std::span<const NodeId>(srcs))
                         : out.max(std::span<const NodeId>(srcs));
            break;
          }
          case Op::Lt:
            map[i] = out.lt(map[n.fanin[0]], map[n.fanin[1]]);
            break;
        }
        if (!net.label(static_cast<NodeId>(i)).empty())
            out.setLabel(map[i], net.label(static_cast<NodeId>(i)));
    }
    for (NodeId o : net.outputs())
        out.markOutput(map[o]);
    return out;
}

Network
optimize(const Network &net)
{
    return eliminateDeadNodes(
        factorDelays(shareCommonSubexpressions(net)));
}

} // namespace st
