/**
 * @file
 * Graphviz DOT export of space-time networks, for figure regeneration and
 * debugging. The rendering mirrors the paper's block diagrams: inputs on
 * the left, one box per primitive, outputs marked with double borders.
 */

#ifndef ST_CORE_NETWORK_DOT_HPP
#define ST_CORE_NETWORK_DOT_HPP

#include <string>

#include "core/network.hpp"

namespace st {

/** Render @p net as a DOT digraph named @p name. */
std::string toDot(const Network &net, const std::string &name = "stnet");

} // namespace st

#endif // ST_CORE_NETWORK_DOT_HPP
