#include "core/trace_sim.hpp"

#include <map>
#include <set>
#include <stdexcept>

namespace st {

TraceSimulator::TraceSimulator(const Network &net)
    : net_(net), fanout_(net.size())
{
    const auto &nodes = net_.nodes();
    for (size_t i = 0; i < nodes.size(); ++i) {
        for (NodeId src : nodes[i].fanin)
            fanout_[src].push_back(static_cast<NodeId>(i));
    }
}

Trace
TraceSimulator::run(std::span<const Time> inputs) const
{
    if (inputs.size() != net_.numInputs())
        throw std::invalid_argument("TraceSimulator: arity mismatch");

    const auto &nodes = net_.nodes();
    Trace trace;
    trace.fireTime.assign(nodes.size(), INF);

    // Agenda of pending node activations keyed by time. Within one time
    // step nodes are visited in increasing id order; since every fanin id
    // precedes its consumer, all inputs of a node are final when it is
    // visited — this is what makes simultaneous-arrival lt ties block,
    // matching both the algebraic tlt() and the GRL latch.
    std::map<Time, std::set<NodeId>> agenda;

    auto fired = [&](NodeId n) { return trace.fireTime[n].isFinite(); };

    // Seed: primary inputs and finite config constants.
    for (size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        if (n.op == Op::Input && inputs[i].isFinite())
            agenda[inputs[i]].insert(static_cast<NodeId>(i));
        else if (n.op == Op::Config && n.configValue.isFinite())
            agenda[n.configValue].insert(static_cast<NodeId>(i));
    }

    while (!agenda.empty()) {
        auto it = agenda.begin();
        const Time now = it->first;
        std::set<NodeId> &ready = it->second;

        while (!ready.empty()) {
            NodeId id = *ready.begin();
            ready.erase(ready.begin());
            if (fired(id))
                continue;

            const Node &n = nodes[id];
            bool fires = false;
            switch (n.op) {
              case Op::Input:
                fires = inputs[id] == now;
                break;
              case Op::Config:
                fires = n.configValue == now;
                break;
              case Op::Inc:
                // Scheduled exactly at source-fire + delay.
                fires = true;
                break;
              case Op::Min:
                // Wakes when the first fanin fires.
                for (NodeId src : n.fanin)
                    fires |= trace.fireTime[src] == now;
                break;
              case Op::Max: {
                // Fires once every fanin has fired; the wave reaching it
                // now means "now" is the latest arrival.
                fires = true;
                for (NodeId src : n.fanin)
                    fires &= fired(src);
                break;
              }
              case Op::Lt: {
                NodeId a = n.fanin[0], b = n.fanin[1];
                // Passes a's event unless b fired at-or-before it. b's
                // status is final here (b's id precedes ours).
                fires = trace.fireTime[a] == now &&
                        !(fired(b) && trace.fireTime[b] <= now);
                break;
              }
            }
            if (!fires)
                continue;

            trace.fireTime[id] = now;
            trace.events.push_back({now, id});
            for (NodeId consumer : fanout_[id]) {
                if (fired(consumer))
                    continue;
                if (nodes[consumer].op == Op::Inc)
                    agenda[now + nodes[consumer].delay].insert(consumer);
                else
                    agenda[now].insert(consumer);
            }
        }
        agenda.erase(agenda.begin());
    }

    trace.outputs.reserve(net_.outputs().size());
    for (NodeId id : net_.outputs())
        trace.outputs.push_back(trace.fireTime[id]);
    return trace;
}

} // namespace st
