/**
 * @file
 * Event-driven simulation of space-time networks.
 *
 * The paper's computation overview (Sec. III.B) describes a single wave of
 * spikes sweeping forward through the network, each block waking when its
 * first input spike arrives. TraceSimulator reproduces exactly that
 * operational view: it propagates discrete firing events in time order
 * (and, within one time step, in feedforward order, which resolves lt
 * ties identically to the GRL latch). The result is a spike trace — which
 * node fired when — useful for visualization, debugging, and for
 * cross-checking the denotational evaluator (Network::evaluateAll) against
 * an independent operational semantics.
 */

#ifndef ST_CORE_TRACE_SIM_HPP
#define ST_CORE_TRACE_SIM_HPP

#include <vector>

#include "core/network.hpp"

namespace st {

/** One firing event in a simulation trace. */
struct TraceEvent
{
    Time time;   //!< when the node fired
    NodeId node; //!< which node fired

    bool operator==(const TraceEvent &other) const = default;
};

/** Full result of one event-driven run. */
struct Trace
{
    /** Firing events in (time, node-id) order; each node at most once. */
    std::vector<TraceEvent> events;
    /** Per-node firing time (inf = never fired), indexed by NodeId. */
    std::vector<Time> fireTime;
    /** Output values in markOutput() order. */
    std::vector<Time> outputs;
    /** Total number of spikes propagated (== events.size()). */
    size_t spikeCount() const { return events.size(); }
};

/**
 * Event-driven simulator for a Network.
 *
 * The simulator is stateless across runs; run() may be called repeatedly
 * (e.g., after reprogramming config nodes).
 */
class TraceSimulator
{
  public:
    /** Bind to a network (kept by reference; must outlive the sim). */
    explicit TraceSimulator(const Network &net);

    /** Simulate one feedforward wave for the given input volley. */
    Trace run(std::span<const Time> inputs) const;

  private:
    const Network &net_;
    /** Consumers of each node, precomputed once. */
    std::vector<std::vector<NodeId>> fanout_;
};

} // namespace st

#endif // ST_CORE_TRACE_SIM_HPP
