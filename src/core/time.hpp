/**
 * @file
 * The space-time value domain N0^inf.
 *
 * Smith's space-time algebra (ISCA 2018, Sec. III.C/III.D) models event
 * times as the set N0^inf = {0, 1, 2, ...} u {inf}, where inf denotes
 * "no event on this line". st::Time is a value type over that set with
 * the paper's defined semantics:
 *
 *   - inf > n            for every natural n
 *   - inf + n = inf      (addition saturates; time never wraps)
 *
 * Time is totally ordered, hashable, and streamable ("inf" prints for the
 * top element), so it can be used directly in standard containers and in
 * gtest assertions.
 */

#ifndef ST_CORE_TIME_HPP
#define ST_CORE_TIME_HPP

#include <compare>
#include <cstdint>
#include <functional>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>

namespace st {

/**
 * A point in discretized time, or inf ("no event").
 *
 * The representation is a uint64_t with the all-ones pattern reserved for
 * inf. All arithmetic saturates at inf, matching the algebraic law
 * inf + n = inf. Construction from a raw integer is explicit; use
 * Time::infinity() or the INF constant for the top element.
 */
class Time
{
  public:
    /** Raw representation type. */
    using rep = uint64_t;

    /** Default construction yields time 0 (the lattice bottom). */
    constexpr Time() : v_(0) {}

    /** Construct a finite time point; @p v must not be the inf pattern. */
    constexpr explicit Time(rep v) : v_(v) {}

    /** The top element inf ("no event"). */
    static constexpr Time
    infinity()
    {
        Time t;
        t.v_ = infRep;
        return t;
    }

    /** True iff this is the top element inf. */
    constexpr bool isInf() const { return v_ == infRep; }

    /** True iff this is a natural number (not inf). */
    constexpr bool isFinite() const { return v_ != infRep; }

    /**
     * The underlying natural number.
     * @pre isFinite()
     */
    constexpr rep
    value() const
    {
        return v_;
    }

    /** Total order with inf as the unique greatest element. */
    constexpr auto operator<=>(const Time &other) const = default;

    /**
     * Saturating addition of a constant delay (the paper's repeated inc).
     * inf + c = inf; finite values saturate to inf on overflow, which can
     * only happen with astronomically large operands.
     */
    constexpr Time
    operator+(rep c) const
    {
        if (isInf())
            return *this;
        rep sum = v_ + c;
        if (sum < v_) // unsigned overflow
            return infinity();
        return Time(sum);
    }

    /** Saturating addition of two times (used by shift/normalization). */
    constexpr Time
    operator+(Time other) const
    {
        if (other.isInf())
            return infinity();
        return *this + other.v_;
    }

    /** In-place saturating addition. */
    constexpr Time &
    operator+=(rep c)
    {
        *this = *this + c;
        return *this;
    }

    /**
     * Subtract a constant shift (used when un-normalizing volleys).
     * inf - c = inf; subtracting below zero is a logic error (time
     * never runs backwards) and throws.
     */
    constexpr Time
    operator-(rep c) const
    {
        if (isInf())
            return *this;
        if (c > v_)
            throw std::underflow_error("Time: negative result");
        return Time(v_ - c);
    }

    /** Render as decimal digits, or "inf" for the top element. */
    std::string
    str() const
    {
        return isInf() ? "inf" : std::to_string(v_);
    }

  private:
    static constexpr rep infRep = std::numeric_limits<rep>::max();

    rep v_;
};

/** The top element, for terse call sites: min(INF, t) == t. */
inline constexpr Time INF = Time::infinity();

/** User-defined literal: 3_t is Time(3). */
constexpr Time
operator""_t(unsigned long long v)
{
    return Time(static_cast<Time::rep>(v));
}

/** Stream a time value ("inf" for the top element). */
inline std::ostream &
operator<<(std::ostream &os, Time t)
{
    return os << t.str();
}

} // namespace st

/** Hash support so Time keys work in unordered containers. */
template <>
struct std::hash<st::Time>
{
    size_t
    operator()(st::Time t) const noexcept
    {
        // isInf() maps to the all-ones pattern which hashes fine as-is.
        uint64_t v = t.isInf() ? ~0ULL : t.value();
        v ^= v >> 33;
        v *= 0xff51afd7ed558ccdULL;
        v ^= v >> 33;
        return static_cast<size_t>(v);
    }
};

#endif // ST_CORE_TIME_HPP
